#!/usr/bin/env bash
# bench.sh — run the rmr simulator microbenchmarks and emit BENCH_rmr.json.
#
# Usage:  scripts/bench.sh [output.json]
#
# Runs BenchmarkMemOps (operation-path throughput, CC and DSM) and
# BenchmarkExplorerThroughput (bounded-exhaustive schedules/s at worker
# counts 1/2/4/8) with -benchmem, then converts the Go benchmark output to
# a JSON report. BENCHTIME overrides -benchtime (CI uses 1x for a smoke
# run; the default 1s gives stable numbers).
#
# The report's "locks" key is the registry-driven per-lock × per-model
# (CC/DSM) RMR matrix from `rmrbench -matrix`: one entry per registered
# lock and supported memory model, so a newly registered lock shows up in
# BENCH_rmr.json with no change here. BENCHTIME=1x shrinks the matrix
# workloads too (-quick).
#
# The "baseline" block records the pre-optimization seed numbers measured
# on the reference 1-CPU container, so a report is self-describing: the
# acceptance targets were >=2x baseline ops/s for MemOps and >=3x baseline
# schedules/s for the explorer.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_rmr.json}"
benchtime="${BENCHTIME:-1s}"
raw="$(mktemp)"
matrix="$(mktemp)"
trap 'rm -f "$raw" "$matrix"' EXIT

go test -run '^$' -bench 'BenchmarkMemOps|BenchmarkExplorerThroughput' \
	-benchtime "$benchtime" -benchmem -timeout 20m ./rmr/ | tee "$raw"

matrix_flags=()
if [ "$benchtime" = "1x" ]; then
	matrix_flags+=(-quick)
fi
go run ./cmd/rmrbench "${matrix_flags[@]}" -matrix "$matrix"

{
	printf '{\n'
	printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
	printf '  "benchtime": "%s",\n' "$benchtime"
	printf '  "baseline": {\n'
	printf '    "MemOps/CC ops/s": 17583938,\n'
	printf '    "MemOps/DSM ops/s": 18193806,\n'
	printf '    "ExplorerThroughput schedules/s": 67822\n'
	printf '  },\n'
	# Splice in the registry matrix: drop the outer braces of rmrbench's
	# {"locks": [...]} document and keep the "locks" member as-is.
	printf '%s,\n' "$(sed '1d;$d' "$matrix")"
	printf '  "benchmarks": [\n'
	awk '
	/^Benchmark/ {
		name = $1
		sub(/-[0-9]+$/, "", name)
		if (n++) printf ",\n"
		printf "    {\"name\": \"%s\", \"iterations\": %s", name, $2
		for (i = 3; i + 1 <= NF; i += 2) {
			unit = $(i + 1)
			gsub(/[^A-Za-z0-9_\/]/, "_", unit)
			printf ", \"%s\": %s", unit, $i
		}
		printf "}"
	}
	END { print "" }
	' "$raw"
	printf '  ]\n'
	printf '}\n'
} >"$out"

echo "wrote $out"
