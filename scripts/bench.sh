#!/usr/bin/env bash
# bench.sh — run the benchmark suites and emit BENCH_rmr.json,
# BENCH_native.json and BENCH_lockd.json.
#
# Usage:  scripts/bench.sh [rmr-output.json] [native-output.json] [lockd-output.json]
#
# After the reports are written, the benchmark-regression pipeline runs:
# cmd/benchdiff compares them against the committed quick baseline
# (bench/baseline.json, quick runs only) or the last matching entry of the
# append-only run log bench/history.jsonl, writes the per-cell delta report
# to BENCH_delta.txt, and appends this run to the log. Deterministic
# simulator cells gate exactly; wall-clock cells are report-only. A gated
# regression fails the script only when BENCHDIFF_GATE=1 (CI's obs job);
# interactive runs just get the report.
#
# BENCH_rmr.json: runs BenchmarkMemOps (operation-path throughput, CC and
# DSM) and BenchmarkExplorerThroughput (bounded-exhaustive replays/s at
# worker counts 1/2/4/8, with partial-order reduction off and on over the
# same tree) with -benchmem, then converts the Go benchmark output to a
# JSON report. BENCHTIME overrides -benchtime (CI uses 1x for a smoke run;
# the default 1s gives stable numbers).
#
# The report's "locks" key is the registry-driven per-lock × per-model
# (CC/DSM) RMR matrix from `rmrbench -matrix`: one entry per registered
# lock and supported memory model, so a newly registered lock shows up in
# BENCH_rmr.json with no change here. The same rmrbench invocation emits
# the "latency" key: the simulated-latency matrix — per lock × memory
# model × cost model (COST_MODELS, default "ccnuma,dsmremote", priced with
# the deterministic seed COST_SEED, default 1) — whose p50/p95/p99 cells
# are bit-deterministic and gate exactly in benchdiff like the RMR cells.
# The "explorer" key is the E8 exhaustive-exploration record from
# `rmrbench -explore`: replays, pruned and equivalent-cut counts, and
# replays/sec per configuration with reduction off and on, so the
# reduction's leverage is diffable across PRs. BENCHTIME=1x shrinks the
# matrix workloads and the exploration bound too (-quick).
#
# BENCH_native.json: the wall-clock matrix from `nativebench` — the native
# abortable lock vs sync.Mutex vs every registry lock (free-running
# simulated memory), passage-latency percentiles and throughput per
# goroutine count. BENCHTIME=1x selects its -quick op budgets as well.
# See docs/PERF.md for how to read it.
#
# BENCH_lockd.json: the lock-service load matrix from `lockdload` — an
# in-process lockd instance driven over HTTP with uniform and Zipf-skewed
# key distributions plus a chaos scenario (killed holders and cancelled
# waiters), acquire-latency percentiles and server-side shed/expiry
# counters per cell. Wall-clock, so benchdiff treats it report-only.
# BENCHTIME=1x selects its -quick budgets.
#
# The "baseline" block records the pre-optimization seed numbers measured
# on the reference 1-CPU container, so a report is self-describing: the
# acceptance targets were >=2x baseline ops/s for MemOps, >=3x baseline
# schedules/s for the explorer, and >=5x wall-clock to exhaust the bench
# tree with reduction on vs off.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_rmr.json}"
native_out="${2:-BENCH_native.json}"
lockd_out="${3:-BENCH_lockd.json}"
benchtime="${BENCHTIME:-1s}"
cost_models="${COST_MODELS:-ccnuma,dsmremote}"
cost_seed="${COST_SEED:-1}"
# BENCH_SKIP_EXPLORE=1 drops the rmrbench -explore reduction-lattice pass
# (the slowest deterministic section). The report then has no "explorer"
# key; benchdiff treats the missing array as not-comparable-by-absence and
# the deep-explore CI job covers exploration depth instead.
skip_explore="${BENCH_SKIP_EXPLORE:-0}"
# BENCH_SKIP_LOCKD=1 drops the lockdload service-load pass. No BENCH_lockd
# artifact is written and benchdiff gets no -lockd flag; its lockd section
# is simply absent from the run, which diffLockd treats as not comparable.
skip_lockd="${BENCH_SKIP_LOCKD:-0}"
raw="$(mktemp)"
matrix="$(mktemp)"
explore="$(mktemp)"
trap 'rm -f "$raw" "$matrix" "$explore"' EXIT

quick_flags=()
if [ "$benchtime" = "1x" ]; then
	quick_flags+=(-quick)
fi

# run_artifact TOOL CMD... — run an artifact-producing command, failing
# loudly. `set -e` alone would still let a later splice or upload consume a
# truncated file if the tool died after creating it, so the exit status is
# checked explicitly here and the artifact validated below.
run_artifact() {
	local tool="$1"
	shift
	if ! "$@"; then
		echo "bench.sh: $tool failed; aborting" >&2
		exit 1
	fi
}

# validate_json FILE — require a complete, brace-delimited JSON document.
validate_json() {
	if [ "$(head -c 1 "$1")" != "{" ] || [ "$(tail -c 2 "$1")" != "}" ]; then
		echo "bench.sh: $1 is not a complete JSON document; aborting" >&2
		exit 1
	fi
}

# splice FILE — emit FILE's members without its outer braces, for embedding
# a single-key JSON document into a larger one. A skipped section leaves its
# artifact absent; emitting nothing (with a log line, since the caller's
# guard should normally prevent this) keeps the assembly from dying on sed.
splice() {
	if [ ! -s "$1" ]; then
		echo "bench.sh: splice: $1 absent or empty (section skipped?); emitting nothing" >&2
		return 0
	fi
	sed '1d;$d' "$1"
}

go test -run '^$' -bench 'BenchmarkMemOps|BenchmarkExplorerThroughput' \
	-benchtime "$benchtime" -benchmem -timeout 20m ./rmr/ | tee "$raw"

explore_flags=(-explore "$explore")
if [ "$skip_explore" = "1" ]; then
	echo "bench.sh: BENCH_SKIP_EXPLORE=1 — skipping the exploration lattice" >&2
	explore_flags=()
fi
run_artifact rmrbench go run ./cmd/rmrbench "${quick_flags[@]}" -deadline 15m \
	-cost "$cost_models" -cost-seed "$cost_seed" \
	-matrix "$matrix" "${explore_flags[@]}"
validate_json "$matrix"
if [ "$skip_explore" != "1" ]; then
	validate_json "$explore"
fi

run_artifact nativebench go run ./cmd/nativebench "${quick_flags[@]}" -o "$native_out"
validate_json "$native_out"

if [ "$skip_lockd" = "1" ]; then
	echo "bench.sh: BENCH_SKIP_LOCKD=1 — skipping the lockd service-load pass" >&2
else
	run_artifact lockdload go run ./cmd/lockdload "${quick_flags[@]}" -o "$lockd_out"
	validate_json "$lockd_out"
fi

{
	printf '{\n'
	printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
	printf '  "benchtime": "%s",\n' "$benchtime"
	printf '  "baseline": {\n'
	printf '    "MemOps/CC ops/s": 17583938,\n'
	printf '    "MemOps/DSM ops/s": 18193806,\n'
	printf '    "ExplorerThroughput schedules/s": 67822\n'
	printf '  },\n'
	# Splice in the registry matrix (its "locks" and "latency" members) and
	# the exploration record: drop the outer braces of rmrbench's
	# {"latency": [...], "locks": [...]} / {"explorer": [...]} documents and
	# keep the members as-is.
	printf '%s,\n' "$(splice "$matrix")"
	if [ "$skip_explore" != "1" ]; then
		printf '%s,\n' "$(splice "$explore")"
	fi
	printf '  "benchmarks": [\n'
	awk '
	/^Benchmark/ {
		name = $1
		sub(/-[0-9]+$/, "", name)
		if (n++) printf ",\n"
		printf "    {\"name\": \"%s\", \"iterations\": %s", name, $2
		for (i = 3; i + 1 <= NF; i += 2) {
			unit = $(i + 1)
			gsub(/[^A-Za-z0-9_\/]/, "_", unit)
			printf ", \"%s\": %s", unit, $i
		}
		printf "}"
	}
	END { print "" }
	' "$raw"
	printf '  ]\n'
	printf '}\n'
} >"$out"

echo "wrote $out"
echo "wrote $native_out"
if [ "$skip_lockd" != "1" ]; then
	echo "wrote $lockd_out"
fi

# Benchmark-regression pipeline (see cmd/benchdiff). The committed baseline
# is a quick run, so it only anchors quick runs; full runs diff against the
# last full entry in the history log.
diff_args=(-rmr "$out" -native "$native_out" -history bench/history.jsonl -append)
if [ "$skip_lockd" != "1" ]; then
	diff_args+=(-lockd "$lockd_out")
fi
if commit="$(git rev-parse --short HEAD 2>/dev/null)"; then
	diff_args+=(-commit "$commit")
fi
if [ "$benchtime" = "1x" ] && [ -f bench/baseline.json ]; then
	diff_args+=(-baseline bench/baseline.json)
fi
diff_status=0
go run ./cmd/benchdiff "${diff_args[@]}" -o BENCH_delta.txt || diff_status=$?
cat BENCH_delta.txt
if [ "$diff_status" -ge 2 ]; then
	echo "bench.sh: benchdiff failed (status $diff_status)" >&2
	exit "$diff_status"
fi
if [ "$diff_status" -eq 1 ] && [ "${BENCHDIFF_GATE:-0}" = "1" ]; then
	echo "bench.sh: benchdiff gated a regression (BENCHDIFF_GATE=1)" >&2
	exit 1
fi
echo "wrote BENCH_delta.txt"
