#!/usr/bin/env bash
# bench.sh — run the rmr simulator microbenchmarks and emit BENCH_rmr.json.
#
# Usage:  scripts/bench.sh [output.json]
#
# Runs BenchmarkMemOps (operation-path throughput, CC and DSM) and
# BenchmarkExplorerThroughput (bounded-exhaustive replays/s at worker
# counts 1/2/4/8, with partial-order reduction off and on over the same
# tree) with -benchmem, then converts the Go benchmark output to a JSON
# report. BENCHTIME overrides -benchtime (CI uses 1x for a smoke run; the
# default 1s gives stable numbers).
#
# The report's "locks" key is the registry-driven per-lock × per-model
# (CC/DSM) RMR matrix from `rmrbench -matrix`: one entry per registered
# lock and supported memory model, so a newly registered lock shows up in
# BENCH_rmr.json with no change here. The "explorer" key is the E8
# exhaustive-exploration record from `rmrbench -explore`: replays, pruned
# and equivalent-cut counts, and replays/sec per configuration with
# reduction off and on, so the reduction's leverage is diffable across PRs.
# BENCHTIME=1x shrinks the matrix workloads and the exploration bound too
# (-quick).
#
# The "baseline" block records the pre-optimization seed numbers measured
# on the reference 1-CPU container, so a report is self-describing: the
# acceptance targets were >=2x baseline ops/s for MemOps, >=3x baseline
# schedules/s for the explorer, and >=5x wall-clock to exhaust the bench
# tree with reduction on vs off.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_rmr.json}"
benchtime="${BENCHTIME:-1s}"
raw="$(mktemp)"
matrix="$(mktemp)"
explore="$(mktemp)"
trap 'rm -f "$raw" "$matrix" "$explore"' EXIT

go test -run '^$' -bench 'BenchmarkMemOps|BenchmarkExplorerThroughput' \
	-benchtime "$benchtime" -benchmem -timeout 20m ./rmr/ | tee "$raw"

artifact_flags=()
if [ "$benchtime" = "1x" ]; then
	artifact_flags+=(-quick)
fi
# The artifact run must fail loudly: `set -e` alone would still let the
# splice below consume a truncated file if rmrbench died after creating it,
# so its exit status is checked explicitly and each artifact is validated
# as a complete JSON document (brace-delimited) before being embedded.
if ! go run ./cmd/rmrbench "${artifact_flags[@]}" -deadline 15m \
	-matrix "$matrix" -explore "$explore"; then
	echo "bench.sh: rmrbench failed; not writing $out" >&2
	exit 1
fi
for artifact in "$matrix" "$explore"; do
	if [ "$(head -c 1 "$artifact")" != "{" ] || [ "$(tail -c 2 "$artifact")" != "}" ]; then
		echo "bench.sh: $artifact is not a complete JSON document; not writing $out" >&2
		exit 1
	fi
done

{
	printf '{\n'
	printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
	printf '  "benchtime": "%s",\n' "$benchtime"
	printf '  "baseline": {\n'
	printf '    "MemOps/CC ops/s": 17583938,\n'
	printf '    "MemOps/DSM ops/s": 18193806,\n'
	printf '    "ExplorerThroughput schedules/s": 67822\n'
	printf '  },\n'
	# Splice in the registry matrix and the exploration record: drop the
	# outer braces of rmrbench's {"locks": [...]} / {"explorer": [...]}
	# documents and keep the members as-is.
	printf '%s,\n' "$(sed '1d;$d' "$matrix")"
	printf '%s,\n' "$(sed '1d;$d' "$explore")"
	printf '  "benchmarks": [\n'
	awk '
	/^Benchmark/ {
		name = $1
		sub(/-[0-9]+$/, "", name)
		if (n++) printf ",\n"
		printf "    {\"name\": \"%s\", \"iterations\": %s", name, $2
		for (i = 3; i + 1 <= NF; i += 2) {
			unit = $(i + 1)
			gsub(/[^A-Za-z0-9_\/]/, "_", unit)
			printf ", \"%s\": %s", unit, $i
		}
		printf "}"
	}
	END { print "" }
	' "$raw"
	printf '  ]\n'
	printf '}\n'
} >"$out"

echo "wrote $out"
