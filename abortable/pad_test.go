package abortable

import (
	"testing"
	"unsafe"
)

// The false-sharing audit contract (docs/PERF.md): every struct whose
// instances are laid out back-to-back and hammered by different goroutines
// occupies a whole number of falseSharingRange units, so neighbouring
// elements can never share a padded range. A refactor that adds a field
// without growing the pad — or drops the pad — fails here instead of
// showing up as a contended p99.

func TestPaddedStructSizes(t *testing.T) {
	cases := []struct {
		name string
		size uintptr
	}{
		{"waitSlot", unsafe.Sizeof(waitSlot{})},
		{"padWord", unsafe.Sizeof(padWord{})},
		{"treeWord", unsafe.Sizeof(treeWord{})},
		{"Handle", unsafe.Sizeof(Handle{})},
	}
	for _, c := range cases {
		if c.size == 0 || c.size%falseSharingRange != 0 {
			t.Errorf("%s: size %d is not a positive multiple of falseSharingRange (%d)",
				c.name, c.size, falseSharingRange)
		}
	}
}

// The hot word of each padded struct must sit at offset 0: the pad is a
// suffix, so element i's word and element i+1's pad share nothing.
func TestPaddedHotWordOffsets(t *testing.T) {
	if off := unsafe.Offsetof(waitSlot{}.v); off != 0 {
		t.Errorf("waitSlot.v at offset %d, want 0", off)
	}
	if off := unsafe.Offsetof(padWord{}.v); off != 0 {
		t.Errorf("padWord.v at offset %d, want 0", off)
	}
	if off := unsafe.Offsetof(treeWord{}.v); off != 0 {
		t.Errorf("treeWord.v at offset %d, want 0", off)
	}
}

// falseSharingRange must cover two cache lines (the adjacent-line
// prefetcher rule) and waitSlot's payload (grant flag + parker pointer)
// must fit the first line, so the spinning word and the published parker
// stay co-resident.
func TestFalseSharingRangeInvariants(t *testing.T) {
	if falseSharingRange != 2*cacheLine {
		t.Errorf("falseSharingRange = %d, want 2*cacheLine = %d", falseSharingRange, 2*cacheLine)
	}
	payload := unsafe.Offsetof(waitSlot{}.parked) + unsafe.Sizeof(waitSlot{}.parked)
	if payload > cacheLine {
		t.Errorf("waitSlot payload spans %d bytes, exceeds one cache line (%d)", payload, cacheLine)
	}
}
