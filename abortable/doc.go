// Package abortable provides deterministic abortable mutual exclusion with
// sublogarithmic adaptive RMR complexity, implementing the algorithm of
// Alon & Morrison, "Deterministic Abortable Mutual Exclusion with
// Sublogarithmic Adaptive RMR Complexity" (PODC 2018) on Go's native
// atomics.
//
// An abortable lock is a mutual-exclusion lock whose waiters can abandon
// their acquisition attempt in a bounded number of their own steps — the
// primitive behind responsive deadlock recovery, priority handoff, and
// work-stealing under serialization (§1 of the paper). Unlike a try-lock,
// an abortable lock lets a waiter join the queue and only later decide to
// leave, preserving FCFS-style handoff efficiency on the fast path.
//
// # The algorithm
//
// The lock is an array-based queue lock (fetch-and-add doorway, per-slot
// grant flags) augmented with a 64-ary tree that tracks abandoned queue
// slots. On machines with 64-bit words this gives, in the cache-coherent
// RMR cost model the paper analyzes:
//
//   - O(1) remote memory references per passage when nobody aborts,
//   - O(log₆₄ A) per passage when A processes abort during it,
//   - bounded abort: an abort completes within O(log₆₄ N) own steps.
//
// A generic transformation (§6 of the paper) turns the one-shot queue into
// a long-lived lock by atomically switching to a fresh one-shot instance
// whenever the old one quiesces; stale instances are reclaimed by Go's
// garbage collector, which substitutes for the paper's §6.2 manual
// reclamation schemes without changing the RMR behaviour.
//
// # Usage
//
// Each participating goroutine obtains a Handle (its "process" identity)
// and then acquires through it:
//
//	lk := abortable.New(abortable.Config{MaxHandles: 64})
//	h, _ := lk.NewHandle()
//	...
//	if h.Enter() {           // or h.EnterContext(ctx)
//	    defer h.Exit()
//	    // critical section
//	}
//
// Abortion is requested asynchronously — from a watchdog, a prioritizer, a
// timeout — via h.Abort(), which makes the pending (or next) Enter return
// false in a bounded number of steps.
//
// The package also ships SpinTry, the test-and-test-and-set reference lock
// its benchmark suite compares against. (The MCS queue-lock anchor lives in
// the simulator, as the registered "mcs" lock under locks/mcs.)
package abortable
