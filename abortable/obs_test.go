package abortable

import (
	"bytes"
	"context"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sublock/abortable/obs"
	"sublock/internal/promtext"
)

// Observed-path integration tests: a collector attached via SetObserver
// must see every passage, and the endpoint must stay scrapeable (and
// lint-clean) while the lock is churning under -race.

func TestLockObserverCountsPassages(t *testing.T) {
	lk := New(Config{MaxHandles: 8})
	m := obs.New("lk", obs.Config{ProfileLabels: true})
	lk.SetObserver(m)
	if lk.Observer() != m {
		t.Fatal("Observer() did not return the attached collector")
	}

	h, err := lk.NewHandle()
	if err != nil {
		t.Fatal(err)
	}
	const passages = 10
	for i := 0; i < passages; i++ {
		if !h.Enter() {
			t.Fatal("uncontended Enter failed")
		}
		h.Exit()
	}

	s := m.Snapshot()
	if s.Acquires != passages {
		t.Errorf("Acquires = %d, want %d", s.Acquires, passages)
	}
	if s.Arrivals != passages {
		t.Errorf("Arrivals = %d, want %d", s.Arrivals, passages)
	}
	if s.Acquire.Count() != passages {
		t.Errorf("acquire histogram count = %d, want %d", s.Acquire.Count(), passages)
	}
	if s.Handoff.Count() != passages {
		t.Errorf("handoff histogram count = %d, want %d", s.Handoff.Count(), passages)
	}
	if s.Aborts != 0 {
		t.Errorf("Aborts = %d, want 0", s.Aborts)
	}

	// Detach: counters freeze.
	lk.SetObserver(nil)
	if !h.Enter() {
		t.Fatal("Enter after detach failed")
	}
	h.Exit()
	if got := m.Snapshot().Acquires; got != passages {
		t.Errorf("detached collector advanced to %d acquires", got)
	}
}

func TestLockObserverCountsAborts(t *testing.T) {
	lk := New(Config{MaxHandles: 2})
	m := obs.New("lk", obs.Config{})
	lk.SetObserver(m)

	holder, _ := lk.NewHandle()
	waiter, _ := lk.NewHandle()
	if !holder.Enter() {
		t.Fatal("holder Enter failed")
	}
	res := make(chan bool, 1)
	go func() { res <- waiter.Enter() }()
	waitForParks(t, func() int64 { return lk.Stats().Parks }, 1)
	waiter.Abort()
	if <-res {
		t.Fatal("aborted waiter entered the CS")
	}
	holder.Exit()

	s := m.Snapshot()
	if s.Aborts != 1 {
		t.Errorf("Aborts = %d, want 1", s.Aborts)
	}
	if s.Abort.Count() != 1 {
		t.Errorf("abort histogram count = %d, want 1", s.Abort.Count())
	}
	if s.Parks != 1 {
		t.Errorf("Parks = %d, want 1", s.Parks)
	}
	if s.Park.Count() != 1 {
		t.Errorf("park histogram count = %d, want 1", s.Park.Count())
	}
}

func TestOneShotObserverAndStats(t *testing.T) {
	l := NewOneShot(2)
	m := obs.New("os", obs.Config{})
	l.SetObserver(m)
	if l.Observer() != m {
		t.Fatal("Observer() did not return the attached collector")
	}

	h0, _ := l.NewHandle()
	h1, _ := l.NewHandle()
	if !h0.Enter() {
		t.Fatal("first one-shot Enter failed")
	}
	h1.Abort()
	if h1.Enter() {
		t.Fatal("pre-aborted one-shot Enter acquired")
	}
	h0.Exit()

	st := l.Stats()
	if st.Handles != 2 || st.Aborts != 1 {
		t.Errorf("Stats = %+v, want Handles=2 Aborts=1", st)
	}
	if st.Parks != l.Parks() {
		t.Errorf("Stats().Parks = %d disagrees with Parks() = %d", st.Parks, l.Parks())
	}

	s := m.Snapshot()
	if s.Acquires != 1 || s.Aborts != 1 {
		t.Errorf("snapshot Acquires=%d Aborts=%d, want 1/1", s.Acquires, s.Aborts)
	}
	if s.Arrivals != 2 {
		t.Errorf("Arrivals = %d, want 2", s.Arrivals)
	}
	if s.Handoff.Count() != 1 {
		t.Errorf("handoff count = %d, want 1", s.Handoff.Count())
	}
}

func TestPoolObserverAndStats(t *testing.T) {
	lk := New(Config{MaxHandles: 2})
	p, err := NewHandlePool(lk, 1)
	if err != nil {
		t.Fatal(err)
	}
	m := obs.New("pool", obs.Config{})
	p.SetObserver(m)
	if p.Observer() != m {
		t.Fatal("Observer() did not return the attached collector")
	}

	// Uncontended borrow.
	h := p.Enter()
	// Contended borrow: a second borrower must block until Release.
	got := make(chan *Handle)
	go func() { got <- p.Enter() }()
	for p.Stats().BorrowWaits == 0 {
		time.Sleep(time.Millisecond)
	}
	p.Release(h)
	p.Release(<-got)

	// TryEnter borrow.
	if h := p.TryEnter(); h != nil {
		p.Release(h)
	}
	// EnterContext borrow.
	if h, err := p.EnterContext(context.Background()); err == nil {
		p.Release(h)
	}

	st := p.Stats()
	if st.Borrows < 4 {
		t.Errorf("Borrows = %d, want >= 4", st.Borrows)
	}
	if st.BorrowWaits != 1 {
		t.Errorf("BorrowWaits = %d, want 1", st.BorrowWaits)
	}
	s := m.Snapshot()
	if s.Borrows != st.Borrows || s.BorrowWaits != st.BorrowWaits {
		t.Errorf("collector Borrows=%d/Waits=%d disagree with Stats %+v",
			s.Borrows, s.BorrowWaits, st)
	}
	if s.Borrow.Count() != s.Borrows {
		t.Errorf("borrow histogram count = %d, want %d", s.Borrow.Count(), s.Borrows)
	}
}

// TestObservedEnterExitDoesNotAllocate: with a collector attached (labels
// on, tracing unconfigured), the passage path must still be allocation-free
// — recording is atomic adds plus clock reads.
func TestObservedEnterExitDoesNotAllocate(t *testing.T) {
	const runs = 512
	lk := New(Config{MaxHandles: 4 * runs})
	m := obs.New("alloc", obs.Config{ProfileLabels: true})
	lk.SetObserver(m)
	handles := make([]*Handle, runs+1)
	for i := range handles {
		h, err := lk.NewHandle()
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	i := 0
	avg := testing.AllocsPerRun(runs, func() {
		h := handles[i]
		i++
		if !h.Enter() {
			t.Fatal("uncontended observed Enter failed")
		}
		h.Exit()
	})
	if avg != 0 {
		t.Errorf("observed Enter/Exit allocates %.1f objects per passage, want 0", avg)
	}
	if got := m.Snapshot().Acquires; got < runs {
		t.Errorf("collector saw %d acquires, want >= %d", got, runs)
	}
}

// TestScrapeUnderChurn races the metrics endpoint against heavy lock
// traffic: 128 goroutines churn an observed Lock (with aborts, parks, and
// instance switches in play) while the scraper repeatedly fetches and
// lints the Prometheus exposition. Run under -race this is the data-race
// guard for the whole recording/snapshot surface.
func TestScrapeUnderChurn(t *testing.T) {
	const (
		churners = 128
		passages = 200
	)
	lk := New(Config{MaxHandles: churners})
	m := obs.New("churn", obs.Config{ProfileLabels: true})
	lk.SetObserver(m)

	reg := obs.NewRegistry()
	reg.MustRegister(m)
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	var wg sync.WaitGroup
	for i := 0; i < churners; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			h, err := lk.NewHandle()
			if err != nil {
				t.Error(err)
				return
			}
			for n := 0; n < passages; n++ {
				if id%4 == 3 && n%8 == 7 {
					// Keep the abort paths hot: pre-signal some attempts.
					h.Abort()
				}
				if h.Enter() {
					h.Exit()
				}
			}
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	scrape := func() string {
		resp, err := srv.Client().Get(srv.URL)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := io.Copy(&buf, resp.Body); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	scrapes := 0
	for {
		body := scrape()
		scrapes++
		for _, err := range promtext.Lint(strings.NewReader(body)) {
			t.Errorf("scrape %d lint: %v", scrapes, err)
		}
		select {
		case <-done:
			// Final quiescent scrape must account every passage.
			body := scrape()
			if !strings.Contains(body, `abortable_doorway_arrivals_total{lock="churn"}`) {
				t.Error("final scrape missing doorway arrivals series")
			}
			s := m.Snapshot()
			if s.Acquires+s.Aborts != churners*passages {
				t.Errorf("passages recorded = %d acquires + %d aborts, want %d total",
					s.Acquires, s.Aborts, churners*passages)
			}
			if s.Arrivals < s.Acquires {
				t.Errorf("arrivals %d < acquires %d", s.Arrivals, s.Acquires)
			}
			return
		default:
		}
	}
}
