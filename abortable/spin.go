package abortable

import "runtime"

// spinner implements bounded busy-waiting: a short burst of pure spins
// (cheap when the wait is short and cores are plentiful), then cooperative
// yields so waiters cannot starve the lock holder on small GOMAXPROCS.
type spinner struct {
	i int
}

const spinBurst = 32

func (s *spinner) wait() {
	if s.i < spinBurst {
		s.i++
		return
	}
	runtime.Gosched()
}
