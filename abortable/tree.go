package abortable

import (
	"sync/atomic"

	"sublock/internal/bitops"
)

// treeW is the node arity of the native tree: the machine word width.
const treeW = 64

// outcome classifies a findNext result (the paper's q / ⊥ / ⊤).
type outcome int

const (
	outFound   outcome = iota + 1
	outNone            // ⊥
	outCrossed         // ⊤
)

// treeWord is one tree node word, padded to falseSharingRange: removal
// traffic is fetch-and-add on the word covering the remover's subtree, and
// neighbouring subtrees must not invalidate each other's ascents.
type treeWord struct {
	v atomic.Uint64
	_ [falseSharingRange - 8]byte
}

// tree is the native W=64 abandonment tree (§4 of the paper). Level 0 is
// the (implicit) leaves; levels 1..h hold one atomic word per node.
type tree struct {
	n      int
	h      int
	pow    []int
	levels [][]treeWord
}

// newTree builds a tree over n leaves with all padding bits (leaves ≥ n)
// pre-set, so the initial live set is exactly {0,…,n−1}.
func newTree(n int) *tree {
	t := &tree{n: n, h: 1}
	for size := treeW; size < n; size *= treeW {
		t.h++
	}
	t.pow = make([]int, t.h+1)
	t.pow[0] = 1
	for i := 1; i <= t.h; i++ {
		t.pow[i] = t.pow[i-1] * treeW
	}
	t.levels = make([][]treeWord, t.h+1)
	for l := 1; l <= t.h; l++ {
		t.levels[l] = make([]treeWord, t.pow[t.h-l])
	}
	// Pre-set padding bits.
	for l := 1; l <= t.h; l++ {
		span := t.pow[l-1]
		for idx := range t.levels[l] {
			var v uint64
			for o := 0; o < treeW; o++ {
				if (idx*treeW+o)*span >= n {
					v |= bitops.Mask(treeW, o)
				}
			}
			if v != 0 {
				t.levels[l][idx].v.Store(v)
			}
		}
	}
	return t
}

const emptyWord = ^uint64(0)

func (t *tree) nodeOf(p, l int) int   { return p / t.pow[l] }
func (t *tree) offsetOf(p, l int) int { return (p / t.pow[l-1]) % treeW }

// remove abandons leaf p (Algorithm 4.2).
func (t *tree) remove(p int) {
	for lvl := 1; lvl <= t.h; lvl++ {
		j := bitops.Mask(treeW, t.offsetOf(p, lvl))
		snap := t.levels[lvl][t.nodeOf(p, lvl)].v.Add(j) - j // fetch-and-add
		if snap+j != emptyWord {
			break
		}
	}
}

// findNext locates the first live leaf right of p using the adaptive
// sidestepping ascent (Algorithm 4.3), which costs O(log₆₄ A) where A is
// the number of removed leaves right of p — O(1) when none are.
func (t *tree) findNext(p int) (int, outcome) {
	node := t.nodeOf(p, 1)
	offset := t.offsetOf(p, 1)
	var (
		lvl   int
		snap  uint64
		found bool
	)
	for lvl = 1; lvl <= t.h; lvl++ {
		if offset == treeW-1 {
			if node == len(t.levels[lvl])-1 {
				return 0, outNone
			}
			node++ // sidestep to the right cousin
			offset = -1
		}
		snap = t.levels[lvl][node].v.Load()
		if bitops.HasZeroToTheRight(snap, treeW, offset) {
			found = true
			break
		}
		if offset == -1 {
			offset = node%treeW - 1
		} else {
			offset = node % treeW
		}
		node /= treeW
	}
	if !found {
		return 0, outNone
	}
	// Descend toward the leaf.
	index := bitops.FirstZeroToTheRight(snap, treeW, offset)
	child := node*treeW + index
	for l := lvl - 1; l >= 1; l-- {
		snap = t.levels[l][child].v.Load()
		if snap == emptyWord {
			return 0, outCrossed
		}
		child = child*treeW + bitops.FirstZero(snap, treeW)
	}
	return child, outFound
}
