// Package obs is the native-path observability layer for the abortable
// lock family: per-passage latency histograms, waiting-tier counters, and
// doorway/retirement event counts for abortable.Lock, abortable.OneShot,
// and abortable.HandlePool, exported as Prometheus text and expvar-style
// JSON over HTTP and — optionally — as runtime/trace tasks/regions and
// runtime/pprof goroutine labels.
//
// The design mirrors the simulator layer (docs/OBSERVABILITY.md): free
// when off. A lock carries one atomic pointer to a *Metrics; with the
// pointer nil the fast path pays exactly that one load and allocates
// nothing (CI-guarded by the abortable alloc tests). With a collector
// attached, recording is wait-free atomic adds into preallocated
// histograms — still allocation-free — so a live service can keep the
// endpoint scraped under full load.
//
//	m := obs.New("orders", obs.Config{})
//	obs.MustRegister(m)
//	lk.SetObserver(m)
//	http.Handle("/metrics", obs.Handler())
package obs

import (
	"context"
	"runtime/pprof"
	"runtime/trace"
	"sync/atomic"
	"time"
)

// Config selects the optional, costlier integrations of a Metrics.
type Config struct {
	// Trace wraps every passage in a runtime/trace task named after the
	// lock, with doorway/wait/cs/exit regions, whenever a trace is being
	// captured (trace.IsEnabled). go tool trace then attributes wall time
	// to named locks and phases. Tasks allocate, so this is off by default.
	Trace bool
	// ProfileLabels tags the goroutine with pprof labels lock=<name> and
	// phase=acquire|cs for the duration of a passage, so CPU profiles
	// split samples by lock and phase. Labels are goroutine-wide: the
	// passage overwrites any labels the caller had set.
	ProfileLabels bool
}

// Metrics collects one lock's (or pool's) native-path events. All methods
// are safe for concurrent use and allocation-free; the recording methods
// are wait-free. Attach with abortable's SetObserver methods.
type Metrics struct {
	name string
	cfg  Config

	// pprof label contexts, precomputed so passage-time labeling is two
	// runtime calls and no allocation.
	acquireCtx, csCtx context.Context

	// Passage latency histograms (nanoseconds).
	acquire Hist // successful Enter, call to grant
	abort   Hist // attempts that returned unacquired
	handoff Hist // Exit: release, handoff signal, retirement work
	park    Hist // one tier-3 park: sleep to wake (park wake latency)
	borrow  Hist // HandlePool: wait for a free handle

	// Waiting-tier counters.
	spins   atomic.Int64 // tier-1 spin rounds burned
	yields  atomic.Int64 // tier-2 Gosched rounds
	parks   atomic.Int64 // tier-3 parks taken
	unparks atomic.Int64 // parker wakes delivered by signallers

	// Doorway and lifecycle events.
	acquires      atomic.Int64 // passages granted
	aborts        atomic.Int64 // attempts abandoned
	arrivals      atomic.Int64 // doorway F&A slots claimed
	closedGate    atomic.Int64 // arrivals bounced off a retired instance
	switchWaits   atomic.Int64 // waits for an instance switch (lines 57–61)
	switches      atomic.Int64 // instance retirements completed
	waiterRetires atomic.Int64 // retirements won by a switch-waiter

	// HandlePool counters.
	borrows     atomic.Int64 // handles borrowed
	borrowWaits atomic.Int64 // borrows that blocked for a handle
}

// New creates a collector named name (the value of the lock label on
// every exported series).
func New(name string, cfg Config) *Metrics {
	m := &Metrics{name: name, cfg: cfg}
	if cfg.ProfileLabels {
		m.acquireCtx = pprof.WithLabels(context.Background(),
			pprof.Labels("lock", name, "phase", "acquire"))
		m.csCtx = pprof.WithLabels(context.Background(),
			pprof.Labels("lock", name, "phase", "cs"))
	}
	return m
}

// Name returns the collector's lock label.
func (m *Metrics) Name() string { return m.name }

// --- recording (called from the abortable hot paths) ------------------------

// RecordAcquire accounts one granted passage and its acquisition latency.
func (m *Metrics) RecordAcquire(d time.Duration) {
	m.acquires.Add(1)
	m.acquire.Observe(d.Nanoseconds())
}

// RecordAbort accounts one abandoned attempt and its latency.
func (m *Metrics) RecordAbort(d time.Duration) {
	m.aborts.Add(1)
	m.abort.Observe(d.Nanoseconds())
}

// RecordHandoff accounts one release (Exit) and its latency.
func (m *Metrics) RecordHandoff(d time.Duration) { m.handoff.Observe(d.Nanoseconds()) }

// RecordPark accounts one tier-3 park and its wake latency (time slept).
func (m *Metrics) RecordPark(d time.Duration) {
	m.parks.Add(1)
	m.park.Observe(d.Nanoseconds())
}

// RecordBorrow accounts one HandlePool borrow; waited reports whether the
// borrower blocked for a handle, d how long the borrow took.
func (m *Metrics) RecordBorrow(d time.Duration, waited bool) {
	m.borrows.Add(1)
	if waited {
		m.borrowWaits.Add(1)
	}
	m.borrow.Observe(d.Nanoseconds())
}

// AddWaitRounds accounts the spin and yield rounds one wait loop burned.
func (m *Metrics) AddWaitRounds(spins, yields int64) {
	if spins > 0 {
		m.spins.Add(spins)
	}
	if yields > 0 {
		m.yields.Add(yields)
	}
}

// IncUnpark accounts one parker wake delivered by a signaller.
func (m *Metrics) IncUnpark() { m.unparks.Add(1) }

// IncArrival accounts one doorway slot claim.
func (m *Metrics) IncArrival() { m.arrivals.Add(1) }

// IncClosedGate accounts one arrival bounced off a retired instance.
func (m *Metrics) IncClosedGate() { m.closedGate.Add(1) }

// IncSwitchWait accounts one wait for an instance switch.
func (m *Metrics) IncSwitchWait() { m.switchWaits.Add(1) }

// IncSwitch accounts one completed instance retirement (switch).
func (m *Metrics) IncSwitch() { m.switches.Add(1) }

// IncWaiterRetire accounts a retirement won by a switch-waiter rather
// than a departing process.
func (m *Metrics) IncWaiterRetire() { m.waiterRetires.Add(1) }

// --- pprof labels -----------------------------------------------------------

// SetAcquireLabels tags the calling goroutine lock=<name>,phase=acquire.
// No-op unless ProfileLabels is configured.
func (m *Metrics) SetAcquireLabels() {
	if m.acquireCtx != nil {
		pprof.SetGoroutineLabels(m.acquireCtx)
	}
}

// SetCSLabels tags the calling goroutine lock=<name>,phase=cs.
func (m *Metrics) SetCSLabels() {
	if m.csCtx != nil {
		pprof.SetGoroutineLabels(m.csCtx)
	}
}

// ClearLabels resets the calling goroutine's pprof labels.
func (m *Metrics) ClearLabels() {
	if m.cfg.ProfileLabels {
		pprof.SetGoroutineLabels(context.Background())
	}
}

// --- runtime/trace spans ----------------------------------------------------

// Span is one passage's runtime/trace task with a current phase region.
// The zero Span (tracing off) is inert: all methods are cheap no-ops.
type Span struct {
	ctx    context.Context
	task   *trace.Task
	region *trace.Region
}

// StartPassage opens a trace task named "lock:<name>" with an initial
// phase region, when Trace is configured and a trace is being captured.
// Otherwise it returns the inert zero Span.
func (m *Metrics) StartPassage(phase string) Span {
	if !m.cfg.Trace || !trace.IsEnabled() {
		return Span{}
	}
	ctx, task := trace.NewTask(context.Background(), "lock:"+m.name)
	return Span{ctx: ctx, task: task, region: trace.StartRegion(ctx, phase)}
}

// Phase ends the current region and opens the named one.
func (s *Span) Phase(phase string) {
	if s.task == nil {
		return
	}
	if s.region != nil {
		s.region.End()
	}
	s.region = trace.StartRegion(s.ctx, phase)
}

// End closes the current region and the task.
func (s *Span) End() {
	if s.task == nil {
		return
	}
	if s.region != nil {
		s.region.End()
		s.region = nil
	}
	s.task.End()
	s.task = nil
}

// --- snapshots --------------------------------------------------------------

// Snapshot is a point-in-time copy of a Metrics, safe to read, aggregate,
// and serialize without synchronization. Counters are individually atomic
// and may be mutually skewed while the lock is in active use.
type Snapshot struct {
	Name string `json:"name"`

	Acquire HistSnapshot `json:"acquire_ns"`
	Abort   HistSnapshot `json:"abort_ns"`
	Handoff HistSnapshot `json:"handoff_ns"`
	Park    HistSnapshot `json:"park_wait_ns"`
	Borrow  HistSnapshot `json:"borrow_wait_ns"`

	Spins   int64 `json:"spin_rounds"`
	Yields  int64 `json:"yields"`
	Parks   int64 `json:"parks"`
	Unparks int64 `json:"unparks"`

	Acquires      int64 `json:"acquires"`
	Aborts        int64 `json:"aborts"`
	Arrivals      int64 `json:"arrivals"`
	ClosedGate    int64 `json:"closed_gate"`
	SwitchWaits   int64 `json:"switch_waits"`
	Switches      int64 `json:"switches"`
	WaiterRetires int64 `json:"waiter_retires"`

	Borrows     int64 `json:"borrows"`
	BorrowWaits int64 `json:"borrow_waits"`
}

// Snapshot copies the current counters.
func (m *Metrics) Snapshot() *Snapshot {
	return &Snapshot{
		Name:          m.name,
		Acquire:       m.acquire.Snapshot(),
		Abort:         m.abort.Snapshot(),
		Handoff:       m.handoff.Snapshot(),
		Park:          m.park.Snapshot(),
		Borrow:        m.borrow.Snapshot(),
		Spins:         m.spins.Load(),
		Yields:        m.yields.Load(),
		Parks:         m.parks.Load(),
		Unparks:       m.unparks.Load(),
		Acquires:      m.acquires.Load(),
		Aborts:        m.aborts.Load(),
		Arrivals:      m.arrivals.Load(),
		ClosedGate:    m.closedGate.Load(),
		SwitchWaits:   m.switchWaits.Load(),
		Switches:      m.switches.Load(),
		WaiterRetires: m.waiterRetires.Load(),
		Borrows:       m.borrows.Load(),
		BorrowWaits:   m.borrowWaits.Load(),
	}
}
