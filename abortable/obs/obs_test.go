package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"sublock/internal/promtext"
)

func TestHistBucketing(t *testing.T) {
	var h Hist
	cases := []struct {
		v      int64
		bucket int
	}{
		{0, 0}, {-5, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 38, 39}, {1<<62 + 1, numBuckets - 1},
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	s := h.Snapshot()
	want := make([]int64, numBuckets)
	for _, c := range cases {
		want[c.bucket]++
	}
	for b := range want {
		if s.Counts[b] != want[b] {
			t.Errorf("bucket %d = %d, want %d", b, s.Counts[b], want[b])
		}
	}
	if got := s.Count(); got != int64(len(cases)) {
		t.Errorf("Count() = %d, want %d", got, len(cases))
	}
}

func TestHistSumClampsNegatives(t *testing.T) {
	var h Hist
	h.Observe(-100)
	h.Observe(10)
	if s := h.Snapshot(); s.Sum != 10 {
		t.Errorf("Sum = %d, want 10 (negative sample must clamp to 0)", s.Sum)
	}
}

func TestHistSnapshotStats(t *testing.T) {
	var h Hist
	for i := 0; i < 90; i++ {
		h.Observe(1) // bucket 1, upper edge 1
	}
	for i := 0; i < 10; i++ {
		h.Observe(1000) // bucket 10, upper edge 1023
	}
	s := h.Snapshot()
	if got := s.Mean(); got != float64(90+10*1000)/100 {
		t.Errorf("Mean = %v", got)
	}
	if got := s.Quantile(0.5); got != 1 {
		t.Errorf("p50 = %d, want 1", got)
	}
	if got := s.Quantile(0.99); got != 1023 {
		t.Errorf("p99 = %d, want 1023 (upper edge of bucket 10)", got)
	}
	if got := s.Quantile(2); got != 1023 { // clamps to 1
		t.Errorf("Quantile(2) = %d, want 1023", got)
	}
	var empty HistSnapshot
	if empty.Mean() != 0 || empty.Quantile(0.5) != 0 {
		t.Error("empty snapshot stats must be zero")
	}
}

func TestMetricsRecording(t *testing.T) {
	m := New("t", Config{})
	m.RecordAcquire(3 * time.Nanosecond)
	m.RecordAcquire(5 * time.Nanosecond)
	m.RecordAbort(7 * time.Nanosecond)
	m.RecordHandoff(2 * time.Nanosecond)
	m.RecordPark(11 * time.Nanosecond)
	m.RecordBorrow(0, false)
	m.RecordBorrow(13*time.Nanosecond, true)
	m.AddWaitRounds(4, 2)
	m.AddWaitRounds(0, 0) // must not disturb anything
	m.IncUnpark()
	m.IncArrival()
	m.IncClosedGate()
	m.IncSwitchWait()
	m.IncSwitch()
	m.IncWaiterRetire()

	s := m.Snapshot()
	if s.Name != "t" {
		t.Errorf("Name = %q", s.Name)
	}
	checks := []struct {
		name string
		got  int64
		want int64
	}{
		{"Acquires", s.Acquires, 2},
		{"Aborts", s.Aborts, 1},
		{"Acquire.Count", s.Acquire.Count(), 2},
		{"Acquire.Sum", s.Acquire.Sum, 8},
		{"Abort.Count", s.Abort.Count(), 1},
		{"Handoff.Count", s.Handoff.Count(), 1},
		{"Park.Count", s.Park.Count(), 1},
		{"Parks", s.Parks, 1},
		{"Borrow.Count", s.Borrow.Count(), 2},
		{"Borrows", s.Borrows, 2},
		{"BorrowWaits", s.BorrowWaits, 1},
		{"Spins", s.Spins, 4},
		{"Yields", s.Yields, 2},
		{"Unparks", s.Unparks, 1},
		{"Arrivals", s.Arrivals, 1},
		{"ClosedGate", s.ClosedGate, 1},
		{"SwitchWaits", s.SwitchWaits, 1},
		{"Switches", s.Switches, 1},
		{"WaiterRetires", s.WaiterRetires, 1},
	}
	for _, c := range checks {
		if c.got != c.want {
			t.Errorf("%s = %d, want %d", c.name, c.got, c.want)
		}
	}
}

// TestSpanInertWhenTraceOff: with no trace being captured, StartPassage
// must return the zero Span — no task allocation — and the zero Span's
// methods must be safe.
func TestSpanInertWhenTraceOff(t *testing.T) {
	m := New("t", Config{Trace: true})
	sp := m.StartPassage("doorway")
	if sp.task != nil {
		t.Fatal("StartPassage allocated a task with tracing off")
	}
	sp.Phase("cs")
	sp.End()
	sp.End() // double End must be safe

	var zero Span
	zero.Phase("x")
	zero.End()
}

func TestLabelsNoopWithoutConfig(t *testing.T) {
	m := New("t", Config{})
	// Must not panic or set anything; contexts are nil.
	m.SetAcquireLabels()
	m.SetCSLabels()
	m.ClearLabels()

	withLabels := New("t2", Config{ProfileLabels: true})
	withLabels.SetAcquireLabels()
	withLabels.SetCSLabels()
	withLabels.ClearLabels()
}

func TestRegistryRegisterUnregister(t *testing.T) {
	r := NewRegistry()
	m := New("a", Config{})
	if err := r.Register(m); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(New("a", Config{})); err == nil {
		t.Fatal("duplicate Register must fail")
	}
	r.Unregister("a")
	if err := r.Register(m); err != nil {
		t.Fatalf("re-register after Unregister: %v", err)
	}
}

func registryWithTraffic(t *testing.T) *Registry {
	t.Helper()
	r := NewRegistry()
	a, b := New("alpha", Config{}), New("beta", Config{})
	r.MustRegister(b) // registration order must not leak into output order
	r.MustRegister(a)
	a.RecordAcquire(100 * time.Nanosecond)
	a.RecordAbort(50 * time.Nanosecond)
	a.RecordHandoff(10 * time.Nanosecond)
	a.AddWaitRounds(3, 1)
	b.RecordAcquire(time.Microsecond)
	b.RecordPark(time.Millisecond)
	b.RecordBorrow(time.Microsecond, true)
	return r
}

func TestWritePrometheusLintsClean(t *testing.T) {
	r := registryWithTraffic(t)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, err := range promtext.Lint(strings.NewReader(buf.String())) {
		t.Errorf("lint: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		`abortable_acquire_ns_bucket{lock="alpha",le="+Inf"} 1`,
		`abortable_acquire_ns_count{lock="beta"} 1`,
		`abortable_wait_tier_total{lock="alpha",tier="spin"} 3`,
		`abortable_wait_tier_total{lock="beta",tier="park"} 1`,
		`abortable_passages_total{lock="alpha",result="aborted"} 1`,
		`abortable_pool_borrow_waits_total{lock="beta"} 1`,
		"# TYPE abortable_park_wait_ns histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	// Zero-count histogram series are omitted; headers still present.
	if strings.Contains(out, `abortable_park_wait_ns_count{lock="alpha"}`) {
		t.Error("zero-count histogram series for alpha should be omitted")
	}
	// Deterministic output.
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != out {
		t.Error("WritePrometheus output is not deterministic")
	}
}

func TestHandlerFormats(t *testing.T) {
	r := registryWithTraffic(t)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("prom Content-Type = %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "abortable_passages_total") {
		t.Error("prom body missing counter family")
	}

	resp, err = srv.Client().Get(srv.URL + "?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("json Content-Type = %q", ct)
	}
	var snaps []Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snaps); err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 || snaps[0].Name != "alpha" || snaps[1].Name != "beta" {
		t.Fatalf("json snapshots = %+v", snaps)
	}
	if snaps[0].Acquires != 1 || snaps[1].Parks != 1 {
		t.Errorf("json counters wrong: %+v", snaps)
	}
}

func TestExpvarFunc(t *testing.T) {
	r := registryWithTraffic(t)
	var snaps []Snapshot
	if err := json.Unmarshal([]byte(r.Expvar().String()), &snaps); err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 {
		t.Fatalf("expvar snapshots = %d, want 2", len(snaps))
	}
}

// TestRecordingDoesNotAllocate guards the obs-on discipline: recording is
// atomic adds into preallocated state, so an attached collector must not
// introduce allocations on lock paths.
func TestRecordingDoesNotAllocate(t *testing.T) {
	m := New("t", Config{ProfileLabels: true})
	avg := testing.AllocsPerRun(200, func() {
		m.SetAcquireLabels()
		m.RecordAcquire(123 * time.Nanosecond)
		m.SetCSLabels()
		m.AddWaitRounds(2, 1)
		m.RecordPark(time.Microsecond)
		m.IncUnpark()
		m.IncArrival()
		m.RecordHandoff(45 * time.Nanosecond)
		m.ClearLabels()
	})
	if avg != 0 {
		t.Errorf("recording allocates %.1f objects per passage, want 0", avg)
	}
}
