package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"

	"sublock/internal/promtext"
)

// Registry is a named set of Metrics served by one endpoint. The zero
// value is not usable; create with NewRegistry or use Default.
type Registry struct {
	mu sync.Mutex
	ms map[string]*Metrics
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry { return &Registry{ms: map[string]*Metrics{}} }

// Default is the process-wide registry served by the package-level
// Handler.
var Default = NewRegistry()

// Register adds m; it fails if a collector with the same name is already
// registered.
func (r *Registry) Register(m *Metrics) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.ms[m.name]; dup {
		return fmt.Errorf("obs: collector %q already registered", m.name)
	}
	r.ms[m.name] = m
	return nil
}

// MustRegister is Register, panicking on error.
func (r *Registry) MustRegister(m *Metrics) {
	if err := r.Register(m); err != nil {
		panic(err)
	}
}

// Unregister removes the collector named name, if registered.
func (r *Registry) Unregister(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.ms, name)
}

// Register adds m to the Default registry.
func Register(m *Metrics) error { return Default.Register(m) }

// MustRegister adds m to the Default registry, panicking on a duplicate.
func MustRegister(m *Metrics) { Default.MustRegister(m) }

// Snapshots returns a snapshot per registered collector, sorted by name.
func (r *Registry) Snapshots() []*Snapshot {
	r.mu.Lock()
	ms := make([]*Metrics, 0, len(r.ms))
	for _, m := range r.ms {
		ms = append(ms, m)
	}
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	out := make([]*Snapshot, len(ms))
	for i, m := range ms {
		out[i] = m.Snapshot()
	}
	return out
}

// histFamilies maps each exported histogram family to its snapshot field.
var histFamilies = []struct {
	name, help string
	get        func(*Snapshot) HistSnapshot
}{
	{"abortable_acquire_ns", "Latency of granted passages: Enter call to grant.",
		func(s *Snapshot) HistSnapshot { return s.Acquire }},
	{"abortable_abort_ns", "Latency of abandoned attempts: Enter call to unacquired return.",
		func(s *Snapshot) HistSnapshot { return s.Abort }},
	{"abortable_handoff_ns", "Latency of Exit: release, handoff signal, and retirement work.",
		func(s *Snapshot) HistSnapshot { return s.Handoff }},
	{"abortable_park_wait_ns", "Park wake latency: time one tier-3 park slept before waking.",
		func(s *Snapshot) HistSnapshot { return s.Park }},
	{"abortable_pool_borrow_wait_ns", "HandlePool borrow latency: request to handle in hand.",
		func(s *Snapshot) HistSnapshot { return s.Borrow }},
}

// counterFamilies maps each exported counter family to its snapshot field.
// Tier counters carry a tier label; the rest are plain per-lock counters.
var counterFamilies = []struct {
	name, help string
	labels     []promtext.Label
	get        func(*Snapshot) int64
}{
	{"abortable_wait_tier_total", "Waiting-tier rounds burned, by tier.",
		[]promtext.Label{{Name: "tier", Value: "spin"}}, func(s *Snapshot) int64 { return s.Spins }},
	{"abortable_wait_tier_total", "",
		[]promtext.Label{{Name: "tier", Value: "yield"}}, func(s *Snapshot) int64 { return s.Yields }},
	{"abortable_wait_tier_total", "",
		[]promtext.Label{{Name: "tier", Value: "park"}}, func(s *Snapshot) int64 { return s.Parks }},
	{"abortable_unparks_total", "Parker wakes delivered by signallers.",
		nil, func(s *Snapshot) int64 { return s.Unparks }},
	{"abortable_passages_total", "Finished passages by result.",
		[]promtext.Label{{Name: "result", Value: "acquired"}}, func(s *Snapshot) int64 { return s.Acquires }},
	{"abortable_passages_total", "",
		[]promtext.Label{{Name: "result", Value: "aborted"}}, func(s *Snapshot) int64 { return s.Aborts }},
	{"abortable_doorway_arrivals_total", "Doorway F&A slot claims.",
		nil, func(s *Snapshot) int64 { return s.Arrivals }},
	{"abortable_doorway_closed_total", "Arrivals bounced off a retired instance.",
		nil, func(s *Snapshot) int64 { return s.ClosedGate }},
	{"abortable_switch_waits_total", "Waits for an instance switch (paper lines 57-61).",
		nil, func(s *Snapshot) int64 { return s.SwitchWaits }},
	{"abortable_switches_total", "Instance retirements completed.",
		nil, func(s *Snapshot) int64 { return s.Switches }},
	{"abortable_waiter_retires_total", "Retirements won by a switch-waiter instead of a departure.",
		nil, func(s *Snapshot) int64 { return s.WaiterRetires }},
	{"abortable_pool_borrows_total", "HandlePool borrows.",
		nil, func(s *Snapshot) int64 { return s.Borrows }},
	{"abortable_pool_borrow_waits_total", "HandlePool borrows that blocked for a handle.",
		nil, func(s *Snapshot) int64 { return s.BorrowWaits }},
}

// WritePrometheus writes every registered collector in the Prometheus
// text exposition format (shared with the simulator exporter through
// internal/promtext). Series carry a lock label; families whose series
// are all zero still emit their headers, zero-count histogram series are
// omitted, and ordering is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	snaps := r.Snapshots()
	pw := promtext.NewWriter(w)
	for _, hf := range histFamilies {
		pw.Metric(hf.name, hf.help, "histogram")
		for _, s := range snaps {
			h := hf.get(s)
			if h.Count() == 0 {
				continue
			}
			buckets := make([]promtext.Bucket, 0, len(h.Counts))
			var cum int64
			for b := 0; b < len(h.Counts)-1; b++ {
				cum += h.Counts[b]
				buckets = append(buckets, promtext.Bucket{LE: fmt.Sprintf("%d", int64(1)<<b-1), Cum: cum})
			}
			cum += h.Counts[len(h.Counts)-1]
			buckets = append(buckets, promtext.Bucket{LE: "+Inf", Cum: cum})
			pw.Histogram(hf.name, []promtext.Label{{Name: "lock", Value: s.Name}}, buckets, h.Sum)
		}
	}
	seen := map[string]bool{}
	for _, cf := range counterFamilies {
		if !seen[cf.name] {
			pw.Metric(cf.name, cf.help, "counter")
			seen[cf.name] = true
		}
		for _, s := range snaps {
			labels := append([]promtext.Label{{Name: "lock", Value: s.Name}}, cf.labels...)
			pw.Sample(cf.name, labels, cf.get(s))
		}
	}
	return pw.Err()
}

// Expvar returns the registry's snapshots as an expvar.Var, for mounting
// on the standard /debug/vars page: expvar.Publish("abortable",
// registry.Expvar()).
func (r *Registry) Expvar() expvar.Var {
	return expvar.Func(func() any { return r.Snapshots() })
}

var publishOnce sync.Once

// PublishExpvar publishes the Default registry's snapshots as the expvar
// variable "abortable" (idempotent).
func PublishExpvar() {
	publishOnce.Do(func() { expvar.Publish("abortable", Default.Expvar()) })
}

// Handler serves r. GET returns the Prometheus text exposition by
// default; ?format=json returns the expvar-style JSON snapshot array.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(r.Snapshots())
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// Handler serves the Default registry.
func Handler() http.Handler { return Default.Handler() }
