package obs

import (
	"math/bits"
	"sync/atomic"
)

// numBuckets sizes the power-of-two histograms: bucket 0 counts zero
// samples and bucket b ≥ 1 counts samples in [2^(b-1), 2^b); the last
// bucket absorbs everything beyond (≈ 9 minutes when samples are
// nanoseconds). The bucketing matches the simulator's passage-cost
// histogram (rmr.Stats), so native latency and model RMR distributions
// read the same way.
const numBuckets = 40

// Hist is a lock-free power-of-two histogram of non-negative int64
// samples (latencies in nanoseconds throughout this package). The zero
// value is ready to use; Observe is wait-free (two atomic adds) and
// allocation-free, so recording can sit on lock slow paths without
// perturbing them.
type Hist struct {
	buckets [numBuckets]atomic.Int64
	sum     atomic.Int64
}

// Observe records one sample. Negative samples clamp to zero.
func (h *Hist) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	b := bits.Len64(uint64(v))
	if b >= numBuckets {
		b = numBuckets - 1
	}
	h.buckets[b].Add(1)
	h.sum.Add(v)
}

// Snapshot copies the current state. Counters are individually atomic;
// a snapshot taken mid-Observe may see the bucket without the sum.
func (h *Hist) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Counts: make([]int64, numBuckets),
		Sum:    h.sum.Load(),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	return s
}

// HistSnapshot is a point-in-time copy of a Hist: Counts[0] holds zero
// samples, Counts[b] samples in [2^(b-1), 2^b).
type HistSnapshot struct {
	Counts []int64 `json:"counts"`
	Sum    int64   `json:"sum"`
}

// Count returns the total number of samples.
func (s HistSnapshot) Count() int64 {
	var n int64
	for _, c := range s.Counts {
		n += c
	}
	return n
}

// Mean returns the mean sample, or 0 with no samples.
func (s HistSnapshot) Mean() float64 {
	n := s.Count()
	if n == 0 {
		return 0
	}
	return float64(s.Sum) / float64(n)
}

// Quantile returns an upper bound on the q-quantile sample (the upper
// edge of the bucket the quantile falls in), or 0 with no samples.
// q is clamped to [0, 1].
func (s HistSnapshot) Quantile(q float64) int64 {
	n := s.Count()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q * float64(n-1))
	var cum int64
	for b, c := range s.Counts {
		cum += c
		if cum > rank {
			if b == 0 {
				return 0
			}
			return 1<<b - 1
		}
	}
	return 1<<(len(s.Counts)-1) - 1
}
