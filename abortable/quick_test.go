package abortable

import (
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

// TestQuickNativeTree drives quick-generated remove/query sequences against
// the ordered-set model at machine word arity.
func TestQuickNativeTree(t *testing.T) {
	type seq struct {
		N       uint16
		Removes []uint16
		Queries []uint16
	}
	f := func(s seq) bool {
		n := 1 + int(s.N)%5000
		tr := newTree(n)
		live := make([]bool, n)
		for i := range live {
			live[i] = true
		}
		seen := map[int]bool{}
		for _, r := range s.Removes {
			leaf := int(r) % n
			if seen[leaf] {
				continue
			}
			seen[leaf] = true
			live[leaf] = false
			tr.remove(leaf)
		}
		for _, qy := range s.Queries {
			p := int(qy) % n
			q, out := tr.findNext(p)
			wantQ, wantOut := refFindNext(live, p)
			if q != wantQ || out != wantOut {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestTryEnterStorm(t *testing.T) {
	// Many goroutines hammer TryEnter concurrently: exactly one holds at a
	// time, nobody deadlocks, and the loser path never corrupts the queue
	// (every loser's slot is abandoned and skipped by later handoffs).
	const goroutines, rounds = 8, 200
	lk := New(Config{MaxHandles: goroutines})
	var inCS, violations atomic.Int32
	var acquired atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		h, err := lk.NewHandle()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				if h.TryEnter() {
					if inCS.Add(1) > 1 {
						violations.Add(1)
					}
					acquired.Add(1)
					inCS.Add(-1)
					h.Exit()
				}
			}
		}()
	}
	wg.Wait()
	if violations.Load() != 0 {
		t.Fatalf("%d mutual-exclusion violations", violations.Load())
	}
	if acquired.Load() == 0 {
		t.Fatal("no TryEnter ever succeeded")
	}
	// The lock must still be functional after the storm.
	h, err := lk.NewHandle()
	if err == nil {
		// Handle limit may be reached; only test if we got one.
		if !h.Enter() {
			t.Fatal("post-storm Enter failed")
		}
		h.Exit()
	}
}

func TestMixedEnterTryEnterAbort(t *testing.T) {
	const goroutines = 9
	lk := New(Config{MaxHandles: goroutines})
	var inCS, violations atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		h, err := lk.NewHandle()
		if err != nil {
			t.Fatal(err)
		}
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				var ok bool
				switch g % 3 {
				case 0:
					ok = h.Enter()
				case 1:
					ok = h.TryEnter()
				case 2:
					if i%2 == 1 {
						h.Abort() // pre-delivered: next Enter may abort
					}
					ok = h.Enter()
				}
				if ok {
					if inCS.Add(1) > 1 {
						violations.Add(1)
					}
					inCS.Add(-1)
					h.Exit()
				}
			}
		}()
	}
	wg.Wait()
	if violations.Load() != 0 {
		t.Fatalf("%d mutual-exclusion violations", violations.Load())
	}
}

func TestManyInstanceSwitches(t *testing.T) {
	// Alternating solo passages force a switch per passage; the descriptor
	// protocol (closed bit, oldInst gating) must hold up over thousands of
	// instance generations.
	lk := New(Config{MaxHandles: 2})
	a, _ := lk.NewHandle()
	b, _ := lk.NewHandle()
	for i := 0; i < 5000; i++ {
		h := a
		if i%2 == 1 {
			h = b
		}
		if !h.Enter() {
			t.Fatalf("passage %d failed", i)
		}
		h.Exit()
	}
}
