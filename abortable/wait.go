package abortable

import (
	"runtime"

	"sublock/abortable/obs"
)

// Adaptive waiting (the three-tier waiter of docs/PERF.md).
//
// Every wait loop in this package paces itself with a waiter, which
// escalates through three tiers:
//
//  1. bounded spin — a short burst of pause-style busy iterations, cheap
//     when the wait is short and cores are plentiful. The tier is skipped
//     entirely on single-P hosts (GOMAXPROCS(0) == 1), where spinning can
//     only delay the goroutine that would release us.
//  2. cooperative yield — runtime.Gosched rounds, so waiters cannot starve
//     the lock holder once the spin budget is burned.
//  3. park — the waiter blocks on its parker, a one-slot wake-hint channel,
//     and consumes no CPU until a signaller, an Abort, or a context
//     cancellation wakes it. Parking is futex-like: the waiter publishes
//     its parker where the signaller will look (the queue slot's parked
//     word, or a select on the instance's switch broadcast) and re-checks
//     the wait condition before sleeping, so a wakeup that raced with the
//     publication is never lost. Because the spin word is published before
//     the park decision, a signaller still pays O(1) RMRs per handoff: one
//     flag write plus at most one parker wake.
//
// Parker tokens are hints, not guarantees: a sleep may return spuriously
// (a stale token from an earlier passage, a wake for a condition that has
// since re-armed). Every wait loop therefore re-checks its condition after
// waking, which keeps the wake side free of handshakes.

const (
	// cacheLine is the coherence granularity assumed by the padding in
	// this package (64 bytes on every platform Go supports today).
	cacheLine = 64
	// falseSharingRange is the padding unit for hot concurrent words: two
	// cache lines, so the adjacent-line spatial prefetcher of modern x86
	// parts cannot re-introduce false sharing across a single-line pad.
	// sync.Pool and the runtime use the same 128-byte rule.
	falseSharingRange = 2 * cacheLine
)

const (
	// spinRounds is the tier-1 budget: rounds of spinCycles empty
	// iterations between re-reads of the watched word.
	spinRounds = 4
	// spinCycles is the length of one tier-1 pause burst.
	spinCycles = 40
	// yieldRounds is the tier-2 budget: Gosched rounds before parking.
	yieldRounds = 8
)

// waiter paces one goroutine through the waiting tiers. The zero value is
// ready to use; state persists across iterations of one wait loop so that
// escalation is monotone within a single acquisition attempt.
type waiter struct {
	round int
	spin  int // tier-1 budget, resolved on first pause
}

// spinBudget returns the tier-1 round budget for a host running on procs
// Ps: zero on a single-P host, where a spinning waiter only delays the
// holder it is waiting for.
func spinBudget(procs int) int {
	if procs <= 1 {
		return 0
	}
	return spinRounds
}

// pause burns one waiting round in the current tier and reports whether
// the caller should now park (tier 3). Callers with no wake source use
// relax instead, which degrades tier 3 to a yield.
func (w *waiter) pause() bool {
	if w.round == 0 {
		w.spin = spinBudget(runtime.GOMAXPROCS(0))
	}
	r := w.round
	w.round++
	switch {
	case r < w.spin:
		relax(spinCycles)
		return false
	case r < w.spin+yieldRounds:
		runtime.Gosched()
		return false
	}
	return true
}

// tiers reports the spin and yield rounds burned so far: pause rounds
// past the two budgets returned "park" and burned nothing here, so they
// are excluded (actual parks are counted at the sleep sites).
func (w *waiter) tiers() (spins, yields int64) {
	s := w.round
	if s > w.spin {
		s = w.spin
	}
	y := w.round - w.spin
	if y < 0 {
		y = 0
	}
	if y > yieldRounds {
		y = yieldRounds
	}
	return int64(s), int64(y)
}

// flushWait records a finished wait loop's tier rounds to m, if observing.
func flushWait(m *obs.Metrics, w *waiter) {
	if m != nil && w.round > 0 {
		m.AddWaitRounds(w.tiers())
	}
}

// relaxRound burns one waiting round without ever parking, for waits whose
// releaser is known to be running and brief (e.g. an instance switcher
// between retiring the old instance and publishing the new one): spin
// tiers first, then cooperative yields forever.
func (w *waiter) relaxRound() {
	if w.pause() {
		runtime.Gosched()
	}
}

// relax spins for the given number of empty iterations — a portable stand-in
// for a PAUSE-style busy loop. The gc compiler does not eliminate counted
// empty loops, and noinline keeps the call from folding into callers.
//
//go:noinline
func relax(cycles int) {
	for i := 0; i < cycles; i++ {
	}
}

// parker is a goroutine's park/unpark primitive: a one-slot channel of
// wake hints. wake never blocks, sleeping tolerates spurious tokens, and a
// token posted while nobody sleeps is consumed by the next sleep (or
// drained before the next publication).
type parker struct {
	ch chan struct{}
}

func newParker() parker { return parker{ch: make(chan struct{}, 1)} }

// wake posts a wake hint; a no-op if one is already pending.
func (p *parker) wake() {
	select {
	case p.ch <- struct{}{}:
	default:
	}
}

// drain consumes a stale pending hint, if any. Callers drain immediately
// before publishing the parker so a leftover token from a previous passage
// cannot satisfy the upcoming sleep.
func (p *parker) drain() {
	select {
	case <-p.ch:
	default:
	}
}

// sleep blocks until a wake hint arrives or either done channel closes.
// Nil channels never fire. Returns are allowed to be spurious; the caller
// re-checks its wait condition.
func (p *parker) sleep(done, extra <-chan struct{}) {
	select {
	case <-p.ch:
	case <-done:
	case <-extra:
	}
}

// aborter is what the shared instance wait loop needs from a handle: the
// abort probe, the park state (the handle's parker plus the context-done
// channel, nil when the attempt is not context-bound), the park counter
// hook, and the attached obs collector (nil when observability is off).
type aborter interface {
	abortPending() bool
	parkState() (*parker, <-chan struct{})
	notePark()
	observer() *obs.Metrics
}
