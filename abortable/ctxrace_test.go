package abortable

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sublock/internal/testutil"
)

// TestEnterContextCancelRace stresses the window where a context cancel
// races the waiter's park/unpark decision: cancels are fired at randomized
// delays straddling the spin->park transition, and every EnterContext call
// must return promptly — granted or cancelled — with no waiter left parked
// and no goroutine leaked. This is the abort path lockd relies on to reap
// disconnected clients, exercised at its narrowest race.
func TestEnterContextCancelRace(t *testing.T) {
	base := runtime.NumGoroutine()
	const (
		waiters = 8
		rounds  = 60
	)
	lk := New(Config{MaxHandles: waiters + 1})
	holder, err := lk.NewHandle()
	if err != nil {
		t.Fatal(err)
	}

	// Handles are permanent slots on the lock: create one per waiter and
	// reuse it across rounds (one goroutine at a time per handle).
	handles := make([]*Handle, waiters)
	for i := range handles {
		if handles[i], err = lk.NewHandle(); err != nil {
			t.Fatal(err)
		}
	}

	rng := rand.New(rand.NewSource(1))
	var granted, cancelled atomic.Int64
	for round := 0; round < rounds; round++ {
		if !holder.Enter() {
			t.Fatal("holder Enter failed")
		}

		// Randomized cancel delays: 0 hits before the Enter, tiny delays
		// land mid-spin, larger ones after the waiter has parked.
		delays := make([]time.Duration, waiters)
		for i := range delays {
			delays[i] = time.Duration(rng.Intn(200)) * time.Microsecond
		}

		var wg sync.WaitGroup
		for i := 0; i < waiters; i++ {
			wg.Add(1)
			go func(h *Handle, delay time.Duration) {
				defer wg.Done()
				ctx, cancel := context.WithCancel(context.Background())
				timer := time.AfterFunc(delay, cancel)
				defer timer.Stop()
				defer cancel()
				start := time.Now()
				err := h.EnterContext(ctx)
				if err == nil {
					granted.Add(1)
					h.Exit()
					return
				}
				if !errors.Is(err, context.Canceled) {
					t.Errorf("EnterContext = %v, want nil or context.Canceled", err)
					return
				}
				cancelled.Add(1)
				// Promptness: a cancelled waiter must not sit parked until
				// the holder exits (which is >= 1ms away every round).
				if waited := time.Since(start); waited > 500*time.Millisecond {
					t.Errorf("cancelled waiter took %v to return", waited)
				}
			}(handles[i], delays[i])
		}

		// Hold across the cancel volley so park really happens, then free
		// the lock for whichever waiters were not cancelled.
		time.Sleep(time.Millisecond)
		holder.Exit()
		wg.Wait()
	}

	if cancelled.Load() == 0 {
		t.Error("stress never exercised the cancel path")
	}
	if granted.Load() == 0 {
		t.Error("stress never exercised the grant path")
	}
	testutil.WaitGoroutinesSettle(t, base, 3*time.Second)
}

// TestEnterContextCancelWhileParkedPool drives the same race through the
// HandlePool borrow queue (lockd's first-level queue): waiters blocked in
// pool.EnterContext are cancelled while parked and must be reaped promptly.
func TestEnterContextCancelWhileParkedPool(t *testing.T) {
	base := runtime.NumGoroutine()
	lk := New(Config{MaxHandles: 2})
	pool, err := NewHandlePool(lk, 2)
	if err != nil {
		t.Fatal(err)
	}
	h := pool.Enter() // hold the lock so all borrows queue behind it

	const waiters = 6
	errc := make(chan error, waiters)
	ctx, cancel := context.WithCancel(context.Background())
	for i := 0; i < waiters; i++ {
		go func() {
			wh, err := pool.EnterContext(ctx)
			if err == nil {
				pool.Release(wh)
			}
			errc <- err
		}()
	}
	time.Sleep(2 * time.Millisecond) // let the waiters park
	cancel()
	for i := 0; i < waiters; i++ {
		select {
		case err := <-errc:
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Fatalf("pool waiter = %v, want nil or context.Canceled", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("cancelled pool waiter not reaped within 2s")
		}
	}
	pool.Release(h)
	testutil.WaitGoroutinesSettle(t, base, 3*time.Second)
}
