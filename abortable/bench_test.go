package abortable

// Experiment E12: wall-clock throughput of the native lock against
// sync.Mutex and a test-and-set spin lock. These benches measure the Go
// library deliverable on real hardware, complementing the RMR-model benches
// at the repository root. (The MCS anchor lives in the simulator, under
// locks/mcs, and is benchmarked by experiment E11.)

import (
	"context"
	"runtime"
	"sync"
	"testing"
)

func BenchmarkNativeUncontended(b *testing.B) {
	lk := New(Config{MaxHandles: 1})
	h, err := lk.NewHandle()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !h.Enter() {
			b.Fatal("Enter failed")
		}
		h.Exit()
	}
}

func BenchmarkNativeUncontendedTryEnter(b *testing.B) {
	lk := New(Config{MaxHandles: 1})
	h, err := lk.NewHandle()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !h.TryEnter() {
			b.Fatal("TryEnter failed")
		}
		h.Exit()
	}
}

func BenchmarkSyncMutexUncontended(b *testing.B) {
	var mu sync.Mutex
	for i := 0; i < b.N; i++ {
		mu.Lock()
		mu.Unlock() //nolint:staticcheck // benchmark measures the pair
	}
}

func BenchmarkSpinTryUncontended(b *testing.B) {
	var l SpinTry
	for i := 0; i < b.N; i++ {
		l.Enter(nil)
		l.Exit()
	}
}

// contended runs b.N total passages split across GOMAXPROCS goroutines.
func contended(b *testing.B, acquire func(g int) func()) {
	b.Helper()
	procs := runtime.GOMAXPROCS(0)
	if procs < 2 {
		procs = 2
	}
	per := b.N/procs + 1
	var wg sync.WaitGroup
	b.ResetTimer()
	for g := 0; g < procs; g++ {
		pass := acquire(g)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				pass()
			}
		}()
	}
	wg.Wait()
}

func BenchmarkNativeContended(b *testing.B) {
	lk := New(Config{MaxHandles: 64})
	contended(b, func(int) func() {
		h, err := lk.NewHandle()
		if err != nil {
			b.Fatal(err)
		}
		return func() {
			if h.Enter() {
				h.Exit()
			}
		}
	})
}

func BenchmarkSyncMutexContended(b *testing.B) {
	var mu sync.Mutex
	contended(b, func(int) func() {
		return func() {
			mu.Lock()
			mu.Unlock() //nolint:staticcheck
		}
	})
}

func BenchmarkSpinTryContended(b *testing.B) {
	var l SpinTry
	contended(b, func(int) func() {
		return func() {
			if l.Enter(nil) {
				l.Exit()
			}
		}
	})
}

// BenchmarkNativeAbortChurn measures the abort path: every other goroutine
// runs with a pre-cancelled context, exercising enqueue-then-abandon, while
// the rest make progress.
func BenchmarkNativeAbortChurn(b *testing.B) {
	lk := New(Config{MaxHandles: 64})
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	contended(b, func(g int) func() {
		h, err := lk.NewHandle()
		if err != nil {
			b.Fatal(err)
		}
		if g%2 == 1 {
			return func() { _ = h.EnterContext(cancelled) }
		}
		return func() {
			if h.Enter() {
				h.Exit()
			}
		}
	})
}

// BenchmarkNativeTreeOps micro-benchmarks the W=64 tree.
func BenchmarkNativeTreeOps(b *testing.B) {
	b.Run("findNext/hot", func(b *testing.B) {
		tr := newTree(4096)
		for i := 0; i < b.N; i++ {
			tr.findNext(63)
		}
	})
	b.Run("remove+findNext", func(b *testing.B) {
		// Fresh tree per batch to keep remove single-shot per leaf.
		for i := 0; i < b.N; i += 4094 {
			tr := newTree(4096)
			n := min(4094, b.N-i)
			for p := 1; p <= n; p++ {
				tr.remove(p)
			}
		}
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func BenchmarkOneShotChain(b *testing.B) {
	// One-shot locks are single-use: per iteration, build one and run a
	// full FCFS chain of 64 handles through it.
	for i := 0; i < b.N; i++ {
		l := NewOneShot(64)
		for k := 0; k < 64; k++ {
			h, err := l.NewHandle()
			if err != nil {
				b.Fatal(err)
			}
			if !h.Enter() {
				b.Fatal("enter failed")
			}
			h.Exit()
		}
	}
}

func BenchmarkHandlePool(b *testing.B) {
	lk := New(Config{MaxHandles: 8})
	pool, err := NewHandlePool(lk, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h := pool.Enter()
			pool.Release(h)
		}
	})
}
