package abortable

import (
	"fmt"
	"sync/atomic"
	"time"

	"sublock/abortable/obs"
)

// OneShot is the paper's §3 one-shot abortable lock as a standalone
// native primitive: an FCFS abortable mutual-exclusion lock in which each
// handle may attempt acquisition at most once.
//
// Unlike the long-lived Lock, OneShot is first-come-first-served: among
// attempts that do not abort, the order of Acquire calls (more precisely,
// of their doorway steps) is the order of critical-section entry. That
// makes it useful for single-round coordination — leader handoff chains,
// ordered shutdown, turn-taking protocols — where fairness matters and
// each participant goes through once.
type OneShot struct {
	ins     *instance
	n       int
	handles atomic.Int64
	parks   atomic.Int64
	aborts  atomic.Int64
	obsm    atomic.Pointer[obs.Metrics]
}

// NewOneShot creates a one-shot lock for up to n acquisition attempts.
func NewOneShot(n int) *OneShot {
	if n < 1 {
		panic(fmt.Sprintf("abortable: NewOneShot(%d): n must be positive", n))
	}
	if n > maxMaxHandles {
		panic(fmt.Sprintf("abortable: NewOneShot(%d): n exceeds the doorway limit %d", n, maxMaxHandles))
	}
	return &OneShot{ins: newInstance(n), n: n}
}

// OneShotStats is a point-in-time observability snapshot of a OneShot,
// the one-shot shape of Lock's Stats (switch fields do not apply: a
// one-shot instance is never retired).
type OneShotStats struct {
	// Handles is the number of registered handles.
	Handles int
	// Aborts counts Enter attempts that returned unacquired.
	Aborts int64
	// Parks counts waits that escalated to the parking tier.
	Parks int64
}

// Stats returns current counters. Values are individually atomic
// snapshots and may be mutually skewed while the lock is in active use.
func (l *OneShot) Stats() OneShotStats {
	return OneShotStats{
		Handles: int(l.handles.Load()),
		Aborts:  l.aborts.Load(),
		Parks:   l.parks.Load(),
	}
}

// Parks reports how many acquisition waits escalated to the parking tier
// (see docs/PERF.md).
//
// Deprecated: use Stats().Parks, the counter's uniform home across Lock,
// OneShot, and HandlePool.
func (l *OneShot) Parks() int64 { return l.parks.Load() }

// SetObserver attaches an obs.Metrics collector (nil detaches), exactly
// as Lock.SetObserver does.
func (l *OneShot) SetObserver(m *obs.Metrics) { l.obsm.Store(m) }

// Observer returns the attached collector, or nil.
func (l *OneShot) Observer() *obs.Metrics { return l.obsm.Load() }

// NewHandle registers a participant. It fails after n handles.
func (l *OneShot) NewHandle() (*OneShotHandle, error) {
	if l.handles.Add(1) > int64(l.n) {
		l.handles.Add(-1)
		return nil, fmt.Errorf("abortable: one-shot handle limit %d reached", l.n)
	}
	return &OneShotHandle{l: l, park: newParker()}, nil
}

// OneShotHandle is one participant's single-use interface to a OneShot
// lock. Abort may be called from any goroutine; everything else must be
// called by the owning goroutine.
type OneShotHandle struct {
	l         *OneShot
	slot      int
	state     int // 0 = fresh, 1 = holding, 2 = spent
	park      parker
	abortFlag atomic.Bool
	span      obs.Span
}

// Abort asynchronously requests that the pending (or upcoming) Enter
// abandon its attempt. It also wakes the handle if it is parked.
func (h *OneShotHandle) Abort() {
	h.abortFlag.Store(true)
	h.park.wake()
}

// abortPending reports whether the attempt should abandon (adapter to the
// instance code, which takes an aborter-shaped probe).
func (h *OneShotHandle) abortPending() bool { return h.abortFlag.Load() }

// parkState returns the handle's parker; one-shot attempts are never
// context-bound, so the done channel is nil.
func (h *OneShotHandle) parkState() (*parker, <-chan struct{}) { return &h.park, nil }

// notePark feeds the lock's park counter.
func (h *OneShotHandle) notePark() { h.l.parks.Add(1) }

// observer reports the attached obs collector, for the instance wait loop.
func (h *OneShotHandle) observer() *obs.Metrics { return h.l.obsm.Load() }

// Enter attempts to acquire the lock once, blocking until granted or
// aborted. It reports whether the lock is held; after true the caller
// must call Exit. A second call panics.
func (h *OneShotHandle) Enter() bool {
	if h.state != 0 {
		panic("abortable: one-shot Enter called twice")
	}
	if m := h.l.obsm.Load(); m != nil {
		return h.enterObserved(m)
	}
	return h.enter()
}

// enterObserved wraps enter with the obs recording that needs passage
// boundaries: latency, pprof labels, and the trace task.
func (h *OneShotHandle) enterObserved(m *obs.Metrics) bool {
	start := time.Now()
	m.SetAcquireLabels()
	h.span = m.StartPassage("doorway")
	ok := h.enter()
	if ok {
		m.RecordAcquire(time.Since(start))
		m.SetCSLabels()
		h.span.Phase("cs")
	} else {
		m.RecordAbort(time.Since(start))
		m.ClearLabels()
		h.span.End()
	}
	return ok
}

// enter is the uninstrumented body of Enter (observed or not: the
// instance wait loop picks up the collector itself via observer()).
func (h *OneShotHandle) enter() bool {
	m := h.l.obsm.Load()
	slot, ok := h.l.ins.arrive()
	if !ok {
		// A OneShot instance is never retired: the closed bit is
		// unreachable because no departure path runs depart().
		panic("abortable: one-shot instance unexpectedly closed")
	}
	if m != nil {
		m.IncArrival()
		h.span.Phase("wait")
	}
	h.slot = slot
	if !h.l.ins.enter(h, slot) {
		h.l.aborts.Add(1)
		h.state = 2
		return false
	}
	h.state = 1
	return true
}

// Exit releases the lock, handing it to the next non-aborted attempt.
func (h *OneShotHandle) Exit() {
	if h.state != 1 {
		panic("abortable: one-shot Exit without holding the lock")
	}
	if m := h.l.obsm.Load(); m != nil {
		h.span.Phase("exit")
		start := time.Now()
		h.l.ins.exit(m)
		h.state = 2
		m.RecordHandoff(time.Since(start))
		m.ClearLabels()
		h.span.End()
		return
	}
	h.span.End() // close a task left open if the observer detached mid-CS
	h.l.ins.exit(nil)
	h.state = 2
}

// Slot returns the FCFS position the doorway assigned, or -1 before Enter.
func (h *OneShotHandle) Slot() int {
	if h.state == 0 {
		return -1
	}
	return h.slot
}
