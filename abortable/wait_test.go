package abortable

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitForParks polls until the counter reported by parks reaches want, so
// a test can line its next act up against waiters that have demonstrably
// escalated to tier 3. Fails the test after a generous deadline.
func waitForParks(t *testing.T, parks func() int64, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for parks() < want {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d parks (have %d)", want, parks())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestSpinBudget(t *testing.T) {
	if got := spinBudget(1); got != 0 {
		t.Errorf("spinBudget(1) = %d, want 0: spinning on a single-P host only delays the holder", got)
	}
	if got := spinBudget(2); got != spinRounds {
		t.Errorf("spinBudget(2) = %d, want %d", got, spinRounds)
	}
}

// TestSinglePContendedAcquire is the single-P regression: with
// GOMAXPROCS(1) the spin tier is skipped, and contended passages must
// still make progress (a waiter that busy-spun here would livelock until
// the scheduler preempted it; a waiter that parked without a wake source
// would hang).
func TestSinglePContendedAcquire(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(1))
	const workers, rounds = 4, 50

	lk := New(Config{MaxHandles: workers})
	var inCS, violations atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		h, err := lk.NewHandle()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				for !h.Enter() {
				}
				if inCS.Add(1) > 1 {
					violations.Add(1)
				}
				inCS.Add(-1)
				h.Exit()
			}
		}()
	}
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("mutual exclusion violated %d times", v)
	}
}

// TestParkUnderOversubscription drives waiters against a held lock until
// they escalate to tier 3, then releases the holder and checks every
// parked waiter is woken through the grant chain.
func TestParkUnderOversubscription(t *testing.T) {
	const waiters = 8
	lk := New(Config{MaxHandles: waiters + 1})
	holder, err := lk.NewHandle()
	if err != nil {
		t.Fatal(err)
	}
	if !holder.Enter() {
		t.Fatal("uncontended Enter failed")
	}

	var wg sync.WaitGroup
	var acquired atomic.Int32
	for i := 0; i < waiters; i++ {
		h, err := lk.NewHandle()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if h.Enter() {
				acquired.Add(1)
				h.Exit()
			}
		}()
	}

	// Every waiter must reach tier 3 while the lock is held.
	waitForParks(t, func() int64 { return lk.Stats().Parks }, waiters)

	holder.Exit()
	wg.Wait()
	if got := acquired.Load(); got != waiters {
		t.Fatalf("%d of %d parked waiters acquired after release", got, waiters)
	}
}

// TestAbortUnparksWaiter: a waiter parked against a held lock must return
// false promptly after Abort — the signal may not wait for the release.
func TestAbortUnparksWaiter(t *testing.T) {
	lk := New(Config{MaxHandles: 2})
	holder, err := lk.NewHandle()
	if err != nil {
		t.Fatal(err)
	}
	if !holder.Enter() {
		t.Fatal("uncontended Enter failed")
	}
	waiter, err := lk.NewHandle()
	if err != nil {
		t.Fatal(err)
	}
	res := make(chan bool, 1)
	go func() { res <- waiter.Enter() }()
	waitForParks(t, func() int64 { return lk.Stats().Parks }, 1)

	waiter.Abort()
	select {
	case got := <-res:
		if got {
			t.Fatal("aborted waiter entered the CS while the lock was held")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Abort did not unpark the waiter")
	}
	holder.Exit()
}

// TestEnterContextCancelUnparks: context cancellation must reach a parked
// waiter just like Abort does.
func TestEnterContextCancelUnparks(t *testing.T) {
	lk := New(Config{MaxHandles: 2})
	holder, err := lk.NewHandle()
	if err != nil {
		t.Fatal(err)
	}
	if !holder.Enter() {
		t.Fatal("uncontended Enter failed")
	}
	waiter, err := lk.NewHandle()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	res := make(chan error, 1)
	go func() { res <- waiter.EnterContext(ctx) }()
	waitForParks(t, func() int64 { return lk.Stats().Parks }, 1)

	cancel()
	select {
	case err := <-res:
		if err != context.Canceled {
			t.Fatalf("EnterContext returned %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation did not unpark the waiter")
	}
	holder.Exit()
}

// TestOneShotAbortUnparks: the standalone one-shot lock shares the waiting
// tiers; a parked one-shot waiter must be unparked by its Abort.
func TestOneShotAbortUnparks(t *testing.T) {
	l := NewOneShot(2)
	h0, err := l.NewHandle()
	if err != nil {
		t.Fatal(err)
	}
	h1, err := l.NewHandle()
	if err != nil {
		t.Fatal(err)
	}
	if !h0.Enter() {
		t.Fatal("slot 0 must be granted immediately")
	}
	res := make(chan bool, 1)
	go func() { res <- h1.Enter() }()
	waitForParks(t, l.Parks, 1)

	h1.Abort()
	select {
	case got := <-res:
		if got {
			t.Fatal("aborted one-shot waiter entered the CS while the lock was held")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Abort did not unpark the one-shot waiter")
	}
	h0.Exit()
}

// Zero-alloc guards for the fast path with parking compiled in: a passage
// that rides an already-installed instance (a fresh handle's slot is
// pre-granted by the predecessor's handoff) must not allocate. Instance
// switches allocate by design — the §6 transformation replaces the
// one-shot instance — so the guards use distinct handles on one instance.

func TestEnterExitFastPathDoesNotAllocate(t *testing.T) {
	const runs = 512
	lk := New(Config{MaxHandles: 4 * runs})
	handles := make([]*Handle, runs+1)
	for i := range handles {
		h, err := lk.NewHandle()
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	i := 0
	avg := testing.AllocsPerRun(runs, func() {
		h := handles[i]
		i++
		if !h.Enter() {
			t.Fatal("uncontended Enter failed")
		}
		h.Exit()
	})
	if avg != 0 {
		t.Errorf("Enter/Exit fast path allocates %.1f objects per passage, want 0", avg)
	}
}

func TestTryEnterFastPathDoesNotAllocate(t *testing.T) {
	const runs = 512
	lk := New(Config{MaxHandles: 4 * runs})
	handles := make([]*Handle, runs+1)
	for i := range handles {
		h, err := lk.NewHandle()
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	i := 0
	avg := testing.AllocsPerRun(runs, func() {
		h := handles[i]
		i++
		if !h.TryEnter() {
			t.Fatal("uncontended TryEnter failed")
		}
		h.Exit()
	})
	if avg != 0 {
		t.Errorf("TryEnter fast path allocates %.1f objects per passage, want 0", avg)
	}
}

func TestEnterContextFastPathDoesNotAllocate(t *testing.T) {
	const runs = 512
	lk := New(Config{MaxHandles: 4 * runs})
	handles := make([]*Handle, runs+1)
	for i := range handles {
		h, err := lk.NewHandle()
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	ctx := context.Background()
	i := 0
	avg := testing.AllocsPerRun(runs, func() {
		h := handles[i]
		i++
		if err := h.EnterContext(ctx); err != nil {
			t.Fatal(err)
		}
		h.Exit()
	})
	if avg != 0 {
		t.Errorf("EnterContext fast path allocates %.1f objects per passage, want 0", avg)
	}
}

func TestSpinTryDoesNotAllocate(t *testing.T) {
	var l SpinTry
	avg := testing.AllocsPerRun(512, func() {
		if !l.Enter(nil) {
			t.Fatal("uncontended SpinTry.Enter failed")
		}
		l.Exit()
	})
	if avg != 0 {
		t.Errorf("SpinTry passage allocates %.1f objects, want 0", avg)
	}
}

// TestSpinTryAbortBeforeFirstCAS: the abort probe is consulted before the
// first acquisition attempt, so a signal delivered before the call never
// acquires — and in particular never dirties the lock word of a free lock.
func TestSpinTryAbortBeforeFirstCAS(t *testing.T) {
	var l SpinTry
	if l.Enter(func() bool { return true }) {
		t.Fatal("Enter acquired despite a pre-delivered abort")
	}
	if !l.TryEnter() {
		t.Fatal("aborted Enter left the free lock taken")
	}
	// Against a held lock the probe must terminate the wait, not just gate
	// the CAS.
	probes := 0
	if l.Enter(func() bool { probes++; return true }) {
		t.Fatal("Enter acquired a held lock under an abort signal")
	}
	if probes == 0 {
		t.Fatal("abort probe never consulted")
	}
	l.Exit()
}
