package abortable

import (
	"math/rand"
	"testing"
)

func refFindNext(live []bool, p int) (int, outcome) {
	for q := p + 1; q < len(live); q++ {
		if live[q] {
			return q, outFound
		}
	}
	return 0, outNone
}

func TestTreeHeights(t *testing.T) {
	for _, tt := range []struct{ n, wantH int }{
		{1, 1}, {64, 1}, {65, 2}, {4096, 2}, {4097, 3}, {262144, 3},
	} {
		tr := newTree(tt.n)
		if tr.h != tt.wantH {
			t.Errorf("newTree(%d).h = %d, want %d", tt.n, tr.h, tt.wantH)
		}
	}
}

func TestTreeSequentialModel(t *testing.T) {
	for _, n := range []int{1, 2, 63, 64, 65, 100, 500, 5000} {
		rng := rand.New(rand.NewSource(int64(n)))
		tr := newTree(n)
		live := make([]bool, n)
		for i := range live {
			live[i] = true
		}
		for step := 0; step < 2*n; step++ {
			if p := rng.Intn(n); live[p] && rng.Intn(2) == 0 {
				live[p] = false
				tr.remove(p)
			}
			p := rng.Intn(n)
			q, out := tr.findNext(p)
			wantQ, wantOut := refFindNext(live, p)
			if q != wantQ || out != wantOut {
				t.Fatalf("n=%d findNext(%d) = (%d,%d), want (%d,%d)", n, p, q, out, wantQ, wantOut)
			}
		}
	}
}

func TestTreeRemoveAll(t *testing.T) {
	tr := newTree(130) // three levels of fan-out at W=64? two: 64^2=4096 ≥ 130
	for p := 1; p < 130; p++ {
		tr.remove(p)
	}
	if _, out := tr.findNext(0); out != outNone {
		t.Fatalf("findNext(0) after removing all = %d, want ⊥", out)
	}
}

func TestTreeAdaptiveSidestep(t *testing.T) {
	// p = rightmost leaf of the leftmost 64-leaf block; next live leaf is
	// adjacent in the next block. The adaptive ascent must find it without
	// climbing to the root regardless of n.
	for _, n := range []int{4096, 262144} {
		tr := newTree(n)
		q, out := tr.findNext(63)
		if q != 64 || out != outFound {
			t.Fatalf("n=%d: findNext(63) = (%d,%d), want (64,found)", n, q, out)
		}
	}
}
