package abortable

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestOneShotSequentialChain(t *testing.T) {
	l := NewOneShot(8)
	for i := 0; i < 8; i++ {
		h, err := l.NewHandle()
		if err != nil {
			t.Fatal(err)
		}
		if !h.Enter() {
			t.Fatalf("handle %d failed to enter", i)
		}
		if h.Slot() != i {
			t.Fatalf("handle %d got slot %d", i, h.Slot())
		}
		h.Exit()
	}
}

func TestOneShotHandleLimit(t *testing.T) {
	l := NewOneShot(1)
	if _, err := l.NewHandle(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.NewHandle(); err == nil {
		t.Fatal("second handle accepted with n=1")
	}
}

func TestOneShotFCFS(t *testing.T) {
	// Among non-aborting attempts, CS entry order equals slot order.
	const n = 16
	for round := 0; round < 20; round++ {
		l := NewOneShot(n)
		var mu sync.Mutex // protects order (appended inside the CS)
		var order []int
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			h, err := l.NewHandle()
			if err != nil {
				t.Fatal(err)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				if h.Enter() {
					mu.Lock()
					order = append(order, h.Slot())
					mu.Unlock()
					h.Exit()
				}
			}()
		}
		wg.Wait()
		if len(order) != n {
			t.Fatalf("round %d: %d of %d entered", round, len(order), n)
		}
		for k := 1; k < n; k++ {
			if order[k] < order[k-1] {
				t.Fatalf("round %d: FCFS violated: %v", round, order)
			}
		}
	}
}

func TestOneShotMutualExclusion(t *testing.T) {
	const n = 12
	l := NewOneShot(n)
	var inCS, violations atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		h, err := l.NewHandle()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if h.Enter() {
				if inCS.Add(1) > 1 {
					violations.Add(1)
				}
				inCS.Add(-1)
				h.Exit()
			}
		}()
	}
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d mutual-exclusion violations", v)
	}
}

func TestOneShotAborts(t *testing.T) {
	const n = 10
	l := NewOneShot(n)
	holder, err := l.NewHandle()
	if err != nil {
		t.Fatal(err)
	}
	if !holder.Enter() {
		t.Fatal("holder failed")
	}

	// Aborters enqueue then abandon while the holder is in the CS.
	type res struct {
		ok   bool
		done chan struct{}
	}
	var aborters []*OneShotHandle
	var results []*res
	for i := 0; i < 6; i++ {
		h, err := l.NewHandle()
		if err != nil {
			t.Fatal(err)
		}
		r := &res{done: make(chan struct{})}
		go func() {
			defer close(r.done)
			r.ok = h.Enter()
		}()
		time.Sleep(time.Millisecond)
		aborters = append(aborters, h)
		results = append(results, r)
	}
	for _, h := range aborters {
		h.Abort()
	}
	for _, r := range results {
		<-r.done
		if r.ok {
			t.Fatal("aborter entered while the lock was held")
		}
	}

	// A live waiter behind all the aborted slots still acquires.
	waiter, err := l.NewHandle()
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan bool, 1)
	go func() { got <- waiter.Enter() }()
	holder.Exit()
	select {
	case ok := <-got:
		if !ok {
			t.Fatal("waiter failed to acquire")
		}
		waiter.Exit()
	case <-time.After(5 * time.Second):
		t.Fatal("waiter stranded behind aborted slots")
	}
}

func TestOneShotMisuse(t *testing.T) {
	t.Run("double enter", func(t *testing.T) {
		l := NewOneShot(2)
		h, _ := l.NewHandle()
		if !h.Enter() {
			t.Fatal("enter failed")
		}
		h.Exit()
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		h.Enter()
	})
	t.Run("exit without enter", func(t *testing.T) {
		l := NewOneShot(2)
		h, _ := l.NewHandle()
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		h.Exit()
	})
	t.Run("bad n", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		NewOneShot(0)
	})
}

func TestOneShotSlotBeforeEnter(t *testing.T) {
	l := NewOneShot(1)
	h, _ := l.NewHandle()
	if h.Slot() != -1 {
		t.Fatalf("Slot before Enter = %d, want -1", h.Slot())
	}
}
