package abortable

import (
	"fmt"
	"sync/atomic"
	"time"

	"sublock/abortable/obs"
)

// noProc is the out-of-band LastExited value before any exit (paper's −1).
const noProc = ^uint64(0)

// padWord is a 64-bit atomic on a cache-line range of its own, for the
// instance's independently-hammered head words (gate, head, last): they are
// written by different processes and must not invalidate one another.
type padWord struct {
	v atomic.Uint64
	_ [falseSharingRange - 8]byte
}

// waitSlot is one queue slot: the paper's grant flag plus the waiter's
// published parker, padded to falseSharingRange so a waiter's spinning and
// parking traffic never contends with its neighbours' slots.
type waitSlot struct {
	v      atomic.Uint32          // grant flag: 1 = slot owns the lock
	parked atomic.Pointer[parker] // parker published before tier-3 sleep
	_      [falseSharingRange - 16]byte
}

// The instance doorway is a single fetch-and-add word packing three fields,
// so that one F&A both pins the instance (the §6 reference count) and
// claims a FIFO queue slot (the §3 doorway) — an arrival burst of k
// processes costs k contended atomics instead of 2k:
//
//	bits  0..30  arrivals   — pins issued; arrivals−1 of a successful
//	                          (non-closed) F&A is the arrival's queue slot
//	bits 31..61  departures — pins released by cleanup
//	bit  62      closed     — the instance is retired; an arrival whose
//	                          F&A observes this bit must reload the lock
//	                          descriptor (its arrivals increment is
//	                          harmless: a closed instance's fields are
//	                          never trusted again)
//
// Retirement is lazy: a quiescent instance (arrivals == departures) is
// retired — by the departure's CAS of the closed bit — only when its slots
// are exhausted (arrivals == len(gos)) or a process is waiting for the
// switch (swWait). Otherwise the instance stays installed and keeps
// serving arrivals, so an idle or lightly-loaded lock does not allocate a
// fresh instance per quiescence. A switch-waiter that finds the instance
// quiescent retires it itself (tryRetire) rather than parking forever;
// together with the swWait check in depart this is deadlock-free: either
// the departer sees the registered waiter, or the waiter's gate load sees
// the quiescing departure (both orders are covered by the seq-cst total
// order over the gate and swWait operations).
//
// Successful (non-closed) arrivals are bounded by the handle protocol
// (each handle pins an instance at most once), so the slot index cannot
// overflow the queue; closed-instance arrivals can exceed it but their
// slots are ignored.
const (
	gateDepShift  = 31
	gateFieldMask = uint64(1)<<gateDepShift - 1
	gateDep1      = uint64(1) << gateDepShift
	gateClosed    = uint64(1) << 62
)

func gateArrivals(g uint64) uint64   { return g & gateFieldMask }
func gateDepartures(g uint64) uint64 { return (g >> gateDepShift) & gateFieldMask }

// instance is one one-shot abortable lock (Figure 1 of the paper) plus the
// per-instance state of the long-lived transformation (§6): the packed
// arrival/departure/closed gate above, and the switched flag (with its
// broadcast channel) that substitutes for the paper's spin node — a
// process that already used this instance waits on switched instead of
// re-reading the lock descriptor.
type instance struct {
	gate padWord // packed doorway: arrivals | departures | closed
	head padWord
	last padWord // LastExited
	gos  []waitSlot
	tr   *tree

	switched atomic.Bool
	switchCh chan struct{} // closed after switched is set: park broadcast
	swWait   atomic.Int64  // processes in the switch-wait loop (retire hint)
}

// newInstance builds a fresh one-shot instance for n queue slots.
func newInstance(n int) *instance {
	ins := &instance{
		gos:      make([]waitSlot, n),
		tr:       newTree(n),
		switchCh: make(chan struct{}),
	}
	ins.last.v.Store(noProc)
	ins.gos[0].v.Store(1) // slot 0 owns the lock initially
	return ins
}

// arrive claims the next queue slot through the packed doorway. ok is
// false when the instance was already retired (closed bit observed).
func (ins *instance) arrive() (slot int, ok bool) {
	g := ins.gate.v.Add(1)
	if g&gateClosed != 0 {
		return 0, false
	}
	i := gateArrivals(g) - 1
	if i >= uint64(len(ins.gos)) {
		// Unreachable under the handle-count protocol (each handle enters
		// an instance at most once); a panic here means API misuse such as
		// sharing a Handle between goroutines.
		panic(fmt.Sprintf("abortable: instance doorway overflow (slot %d of %d)", i, len(ins.gos)))
	}
	return int(i), true
}

// depart releases one pin. It reports whether this departure retired the
// instance (the lazy-retirement rule above held and the closed CAS won):
// the caller then owns the switch.
func (ins *instance) depart() bool {
	g := ins.gate.v.Add(gateDep1)
	if g&gateClosed != 0 || gateArrivals(g) != gateDepartures(g) {
		return false
	}
	if gateArrivals(g) < uint64(len(ins.gos)) && ins.swWait.Load() == 0 {
		return false // keep the quiescent instance: slots remain, nobody waits
	}
	return ins.gate.v.CompareAndSwap(g, g|gateClosed)
}

// tryRetire retires a quiescent instance on behalf of a switch-waiter. It
// reports whether the caller won the closed CAS and now owns the switch.
func (ins *instance) tryRetire() bool {
	g := ins.gate.v.Load()
	return g&gateClosed == 0 && gateArrivals(g) == gateDepartures(g) &&
		ins.gate.v.CompareAndSwap(g, g|gateClosed)
}

// enter is Algorithm 3.1's waiting phase for an already-claimed slot. It
// reports whether the CS was entered; on abort it has already run
// Algorithm 3.3. Waiting escalates spin → yield → park: the parker is
// published in the slot (so signalNext can wake it with one pointer swap
// after setting the grant flag) and the grant flag and abort probe are
// re-checked before every sleep, so no wakeup is lost.
//
// With an obs collector attached (a.observer() non-nil) the loop
// additionally records tier rounds and per-park wake latency; with it nil
// the only extra cost is the pointer load and dead branches.
func (ins *instance) enter(a aborter, slot int) bool {
	m := a.observer()
	s := &ins.gos[slot]
	var w waiter
	for s.v.Load() == 0 {
		if a.abortPending() {
			ins.abort(slot, m)
			flushWait(m, &w)
			return false
		}
		if !w.pause() {
			continue
		}
		pk, done := a.parkState()
		pk.drain()
		s.parked.Store(pk)
		if s.v.Load() != 0 || a.abortPending() {
			s.parked.CompareAndSwap(pk, nil)
			continue
		}
		a.notePark()
		if m != nil {
			t0 := time.Now()
			pk.sleep(done, nil)
			m.RecordPark(time.Since(t0))
		} else {
			pk.sleep(done, nil)
		}
		s.parked.CompareAndSwap(pk, nil)
	}
	ins.head.v.Store(uint64(slot))
	flushWait(m, &w)
	return true
}

// exit is Algorithm 3.2.
func (ins *instance) exit(m *obs.Metrics) {
	head := ins.head.v.Load()
	ins.last.v.Store(head)
	ins.signalNext(int(head), m)
}

// abort is Algorithm 3.3: abandon the slot; if the last exiter may have
// crossed paths with our tree removal, take over its handoff.
func (ins *instance) abort(slot int, m *obs.Metrics) {
	ins.tr.remove(slot)
	head := ins.head.v.Load()
	if head != ins.last.v.Load() {
		return
	}
	ins.signalNext(int(head), m)
}

// signalNext is Algorithm 3.4, extended with the park handoff: set the
// grant flag first (the published spin word), then wake the parker if one
// is registered — O(1) RMRs per handoff either way.
func (ins *instance) signalNext(head int, m *obs.Metrics) {
	j, out := ins.tr.findNext(head)
	if out != outFound {
		return
	}
	s := &ins.gos[j]
	s.v.Store(1)
	if pk := s.parked.Swap(nil); pk != nil {
		pk.wake()
		if m != nil {
			m.IncUnpark()
		}
	}
}
