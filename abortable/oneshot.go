package abortable

import (
	"fmt"
	"sync/atomic"
)

// noProc is the out-of-band LastExited value before any exit (paper's −1).
const noProc = ^uint64(0)

// grantFlag is a per-slot grant flag padded to its own cache line so that
// a waiter's spinning does not contend with its neighbours' flags.
type grantFlag struct {
	v atomic.Uint32
	_ [60]byte
}

// instance is one one-shot abortable lock (Figure 1 of the paper) plus the
// per-instance state of the long-lived transformation (§6): the reference
// count with its closed bit, and the switched flag that substitutes for the
// paper's spin node (a process that already used this instance waits on
// switched instead of re-reading the lock descriptor).
type instance struct {
	tail atomic.Uint64
	head atomic.Uint64
	last atomic.Uint64 // LastExited
	gos  []grantFlag
	tr   *tree

	refcnt   atomic.Int64
	switched atomic.Bool
}

// closedBit marks a refcount whose instance has been retired; an Enter
// whose increment lands on a closed instance must reload the descriptor.
const closedBit = int64(1) << 62

// newInstance builds a fresh one-shot instance for n queue slots.
func newInstance(n int) *instance {
	ins := &instance{
		gos: make([]grantFlag, n),
		tr:  newTree(n),
	}
	ins.last.Store(noProc)
	ins.gos[0].v.Store(1) // slot 0 owns the lock initially
	return ins
}

// enter is Algorithm 3.1. It returns the process's slot and whether the CS
// was entered; on abort it has already run Algorithm 3.3.
func (ins *instance) enter(h *Handle) bool {
	i := ins.tail.Add(1) - 1
	if i >= uint64(len(ins.gos)) {
		// Unreachable under the handle-count protocol (each handle enters
		// an instance at most once); a panic here means API misuse such as
		// sharing a Handle between goroutines.
		panic(fmt.Sprintf("abortable: instance doorway overflow (slot %d of %d)", i, len(ins.gos)))
	}
	slot := int(i)
	var spin spinner
	for ins.gos[slot].v.Load() == 0 {
		if h.abortPending() {
			ins.abort(slot)
			return false
		}
		spin.wait()
	}
	ins.head.Store(uint64(slot))
	h.slot = slot
	return true
}

// exit is Algorithm 3.2.
func (ins *instance) exit() {
	head := ins.head.Load()
	ins.last.Store(head)
	ins.signalNext(int(head))
}

// abort is Algorithm 3.3: abandon the slot; if the last exiter may have
// crossed paths with our tree removal, take over its handoff.
func (ins *instance) abort(slot int) {
	ins.tr.remove(slot)
	head := ins.head.Load()
	if head != ins.last.Load() {
		return
	}
	ins.signalNext(int(head))
}

// signalNext is Algorithm 3.4.
func (ins *instance) signalNext(head int) {
	j, out := ins.tr.findNext(head)
	if out != outFound {
		return
	}
	ins.gos[j].v.Store(1)
}
