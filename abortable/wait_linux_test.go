//go:build linux

package abortable

import (
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// processCPU returns the process's cumulative user+system CPU time.
func processCPU(t *testing.T) time.Duration {
	t.Helper()
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		t.Fatalf("getrusage: %v", err)
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}

// TestParkedWaitersDoNotBurnCPU is the tier-3 CPU assertion: once every
// waiter against a held lock has escalated to parking, the process's CPU
// time must stay nearly flat over a wall-clock window — spinning or
// yield-looping waiters would consume the window's worth of CPU on every
// busy P, parked ones consume none.
func TestParkedWaitersDoNotBurnCPU(t *testing.T) {
	const (
		waiters = 16
		window  = 200 * time.Millisecond
		// Allow runtime background work (GC, sysmon) and the few
		// microseconds between a waiter's park counter increment and its
		// actual sleep; spinning waiters would burn ~window per busy P.
		cpuBudget = window / 2
	)
	lk := New(Config{MaxHandles: waiters + 1})
	holder, err := lk.NewHandle()
	if err != nil {
		t.Fatal(err)
	}
	if !holder.Enter() {
		t.Fatal("uncontended Enter failed")
	}
	var wg sync.WaitGroup
	var acquired atomic.Int32
	for i := 0; i < waiters; i++ {
		h, err := lk.NewHandle()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			if h.Enter() {
				acquired.Add(1)
				h.Exit()
			}
		}()
	}
	waitForParks(t, func() int64 { return lk.Stats().Parks }, waiters)

	cpu0 := processCPU(t)
	time.Sleep(window)
	burned := processCPU(t) - cpu0
	if burned > cpuBudget {
		t.Errorf("parked waiters burned %v CPU over a %v window (budget %v)", burned, window, cpuBudget)
	}

	holder.Exit()
	wg.Wait()
	if got := acquired.Load(); got != waiters {
		t.Fatalf("%d of %d parked waiters acquired after release", got, waiters)
	}
}
