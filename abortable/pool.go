package abortable

import (
	"context"
	"fmt"
)

// HandlePool shares a fixed set of lock handles among arbitrarily many
// goroutines. A Handle is single-goroutine state, and a Lock admits at most
// MaxHandles of them; when more (or anonymous, short-lived) goroutines need
// the lock, they borrow a handle for the duration of one passage:
//
//	pool, _ := abortable.NewHandlePool(lk, 8)
//	h, err := pool.EnterContext(ctx)
//	if err != nil { return err }
//	defer pool.Release(h)
//	// critical section
//
// Borrowing blocks while all handles are in flight, which also caps the
// number of goroutines simultaneously queued at the lock.
type HandlePool struct {
	free chan *Handle
}

// NewHandlePool registers n fresh handles on lk and pools them.
func NewHandlePool(lk *Lock, n int) (*HandlePool, error) {
	if n < 1 {
		return nil, fmt.Errorf("abortable: pool size %d must be positive", n)
	}
	p := &HandlePool{free: make(chan *Handle, n)}
	for i := 0; i < n; i++ {
		h, err := lk.NewHandle()
		if err != nil {
			return nil, fmt.Errorf("abortable: pool handle %d: %w", i, err)
		}
		p.free <- h
	}
	return p, nil
}

// Enter borrows a handle and acquires the lock, blocking for both. The
// returned handle must be passed to Release after the critical section.
func (p *HandlePool) Enter() *Handle {
	h := <-p.free
	for !h.Enter() {
		// The pooled handle carries no pending abort (Release clears any
		// stray signal), so a false return can only follow an explicit
		// Abort by the borrower's collaborators — retry on their behalf.
	}
	return h
}

// EnterContext borrows a handle and acquires the lock, giving up when ctx
// is cancelled. On success the handle must be passed to Release.
func (p *HandlePool) EnterContext(ctx context.Context) (*Handle, error) {
	select {
	case h := <-p.free:
		if err := h.EnterContext(ctx); err != nil {
			p.free <- h
			return nil, err
		}
		return h, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// TryEnter borrows a handle and try-locks. It returns nil if no handle was
// immediately available or the lock was not immediately grantable.
func (p *HandlePool) TryEnter() *Handle {
	select {
	case h := <-p.free:
		if h.TryEnter() {
			return h
		}
		p.free <- h
		return nil
	default:
		return nil
	}
}

// Release exits the critical section and returns the handle to the pool.
func (p *HandlePool) Release(h *Handle) {
	h.Exit()
	h.abortFlag.Store(false) // drop any signal aimed at the previous borrower
	p.free <- h
}
