package abortable

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"sublock/abortable/obs"
)

// HandlePool shares a fixed set of lock handles among arbitrarily many
// goroutines. A Handle is single-goroutine state, and a Lock admits at most
// MaxHandles of them; when more (or anonymous, short-lived) goroutines need
// the lock, they borrow a handle for the duration of one passage:
//
//	pool, _ := abortable.NewHandlePool(lk, 8)
//	h, err := pool.EnterContext(ctx)
//	if err != nil { return err }
//	defer pool.Release(h)
//	// critical section
//
// Borrowing blocks while all handles are in flight, which also caps the
// number of goroutines simultaneously queued at the lock.
type HandlePool struct {
	free chan *Handle

	borrows     atomic.Int64
	borrowWaits atomic.Int64
	obsm        atomic.Pointer[obs.Metrics]
}

// NewHandlePool registers n fresh handles on lk and pools them.
func NewHandlePool(lk *Lock, n int) (*HandlePool, error) {
	if n < 1 {
		return nil, fmt.Errorf("abortable: pool size %d must be positive", n)
	}
	p := &HandlePool{free: make(chan *Handle, n)}
	for i := 0; i < n; i++ {
		h, err := lk.NewHandle()
		if err != nil {
			return nil, fmt.Errorf("abortable: pool handle %d: %w", i, err)
		}
		p.free <- h
	}
	return p, nil
}

// PoolStats is a point-in-time observability snapshot of a HandlePool,
// the pool-side companion of Lock's Stats.
type PoolStats struct {
	// Borrows counts successful handle borrows (Enter, EnterContext, and
	// TryEnter that obtained a handle, whether or not the lock followed).
	Borrows int64
	// BorrowWaits counts borrows that blocked because every handle was in
	// flight when the borrow began.
	BorrowWaits int64
}

// Stats returns current counters. Values are individually atomic
// snapshots and may be mutually skewed while the pool is in active use.
func (p *HandlePool) Stats() PoolStats {
	return PoolStats{
		Borrows:     p.borrows.Load(),
		BorrowWaits: p.borrowWaits.Load(),
	}
}

// SetObserver attaches an obs.Metrics collector recording borrow latency
// (nil detaches). This observes the pool only; attach the same collector
// to the underlying Lock with Lock.SetObserver to also record passages.
func (p *HandlePool) SetObserver(m *obs.Metrics) { p.obsm.Store(m) }

// Observer returns the attached collector, or nil.
func (p *HandlePool) Observer() *obs.Metrics { return p.obsm.Load() }

// borrow receives a free handle, blocking if none is available, and feeds
// the borrow counters and (when observing) the borrow-latency histogram.
func (p *HandlePool) borrow() *Handle {
	m := p.obsm.Load()
	select {
	case h := <-p.free:
		p.noteBorrow(m, 0, false)
		return h
	default:
	}
	p.borrowWaits.Add(1)
	if m == nil {
		h := <-p.free
		p.borrows.Add(1)
		return h
	}
	t0 := time.Now()
	h := <-p.free
	p.noteBorrow(m, time.Since(t0), true)
	return h
}

// noteBorrow counts one completed borrow.
func (p *HandlePool) noteBorrow(m *obs.Metrics, d time.Duration, waited bool) {
	p.borrows.Add(1)
	if m != nil {
		m.RecordBorrow(d, waited)
	}
}

// Enter borrows a handle and acquires the lock, blocking for both. The
// returned handle must be passed to Release after the critical section.
func (p *HandlePool) Enter() *Handle {
	h := p.borrow()
	for !h.Enter() {
		// The pooled handle carries no pending abort (Release clears any
		// stray signal), so a false return can only follow an explicit
		// Abort by the borrower's collaborators — retry on their behalf.
	}
	return h
}

// EnterContext borrows a handle and acquires the lock, giving up when ctx
// is cancelled. On success the handle must be passed to Release.
func (p *HandlePool) EnterContext(ctx context.Context) (*Handle, error) {
	m := p.obsm.Load()
	var (
		h      *Handle
		waited bool
		t0     time.Time
	)
	select {
	case h = <-p.free:
	default:
		p.borrowWaits.Add(1)
		waited = true
		if m != nil {
			t0 = time.Now()
		}
		select {
		case h = <-p.free:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	if waited && m != nil {
		p.noteBorrow(m, time.Since(t0), true)
	} else {
		p.noteBorrow(m, 0, false)
	}
	if err := h.EnterContext(ctx); err != nil {
		p.free <- h
		return nil, err
	}
	return h, nil
}

// TryEnter borrows a handle and try-locks. It returns nil if no handle was
// immediately available or the lock was not immediately grantable.
func (p *HandlePool) TryEnter() *Handle {
	select {
	case h := <-p.free:
		p.noteBorrow(p.obsm.Load(), 0, false)
		if h.TryEnter() {
			return h
		}
		p.free <- h
		return nil
	default:
		return nil
	}
}

// Release exits the critical section and returns the handle to the pool.
func (p *HandlePool) Release(h *Handle) {
	h.Exit()
	h.abortFlag.Store(false) // drop any signal aimed at the previous borrower
	p.free <- h
}
