package abortable

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"sublock/abortable/obs"
)

// ErrAborted is returned by EnterContext when the attempt was abandoned by
// an explicit Abort rather than by context cancellation.
var ErrAborted = errors.New("abortable: lock acquisition aborted")

// Config configures a Lock.
type Config struct {
	// MaxHandles caps the number of handles (participating goroutines).
	// It sizes each one-shot instance's queue. 0 selects DefaultMaxHandles.
	MaxHandles int
}

// DefaultMaxHandles is the handle capacity used when Config.MaxHandles is 0.
const DefaultMaxHandles = 128

// maxMaxHandles bounds MaxHandles to what the packed doorway's arrival
// field can count (see oneshot.go).
const maxMaxHandles = 1<<gateDepShift - 1

// Lock is a long-lived abortable mutual-exclusion lock (the paper's final
// algorithm, §6 applied to §3, with W = 64). Its methods are safe for
// concurrent use; per-goroutine state lives in Handles.
type Lock struct {
	n       int
	handles atomic.Int64
	desc    atomic.Pointer[instance] // the paper's LockDesc

	switches      atomic.Int64 // completed instance switches (observability)
	aborts        atomic.Int64 // attempts abandoned via the abort path
	switchWaits   atomic.Int64 // Enter calls that blocked on an instance switch
	parks         atomic.Int64 // tier-3 parks taken by waiters (see docs/PERF.md)
	waiterRetires atomic.Int64 // retirements won by a switch-waiter (vs a departure)

	// obsm is the attached obs collector, nil when observability is off.
	// Every passage path loads it exactly once; with it nil the extra
	// cost is that load and dead branches (the fast path stays
	// zero-alloc, CI-guarded).
	obsm atomic.Pointer[obs.Metrics]
}

// SetObserver attaches an obs.Metrics collector: passage latencies,
// waiting-tier rounds, park wake latencies, and doorway/retirement events
// are recorded into it until detached with SetObserver(nil). Attachment
// is atomic and may happen while the lock is in use; a passage in flight
// may straddle the boundary and record only its later events.
func (l *Lock) SetObserver(m *obs.Metrics) { l.obsm.Store(m) }

// Observer returns the attached collector, or nil.
func (l *Lock) Observer() *obs.Metrics { return l.obsm.Load() }

// Stats is a point-in-time observability snapshot of a Lock.
type Stats struct {
	// Handles is the number of registered handles.
	Handles int
	// Switches counts one-shot instance replacements so far: the lock
	// quiesced (every active attempt finished) that many times. Each
	// switch allocates a fresh instance, so this is also the GC-pressure
	// metric.
	Switches int64
	// Aborts counts Enter attempts that returned unacquired.
	Aborts int64
	// SwitchWaits counts Enter attempts that found their previous one-shot
	// instance still installed and had to wait for it to be switched out
	// (the paper's lines 57–61). A high ratio of SwitchWaits to Switches
	// means handles re-enter faster than the lock quiesces.
	SwitchWaits int64
	// Parks counts waits that escalated to the parking tier (the waiter
	// blocked on its parker instead of spinning). Zero under light
	// contention; rises under oversubscription, where parking is the
	// point — see docs/PERF.md.
	Parks int64
	// WaiterRetires counts the subset of Switches whose retirement was
	// won by a waiting process (tryRetire) rather than a departing one —
	// the lazy-retirement slow case where a switch-waiter found the
	// instance quiescent and closed it itself.
	WaiterRetires int64
}

// Stats returns current counters. Values are individually atomic snapshots
// and may be mutually skewed while the lock is in active use. OneShot and
// HandlePool expose the same shape through OneShot.Stats and
// HandlePool.Stats; richer telemetry (latency histograms, tier counters)
// comes from attaching an abortable/obs collector via SetObserver.
func (l *Lock) Stats() Stats {
	return Stats{
		Handles:       int(l.handles.Load()),
		Switches:      l.switches.Load(),
		Aborts:        l.aborts.Load(),
		SwitchWaits:   l.switchWaits.Load(),
		Parks:         l.parks.Load(),
		WaiterRetires: l.waiterRetires.Load(),
	}
}

// New creates a Lock.
func New(cfg Config) *Lock {
	n := cfg.MaxHandles
	if n == 0 {
		n = DefaultMaxHandles
	}
	if n < 1 {
		panic(fmt.Sprintf("abortable: MaxHandles=%d must be positive", n))
	}
	if n > maxMaxHandles {
		panic(fmt.Sprintf("abortable: MaxHandles=%d exceeds the doorway limit %d", n, maxMaxHandles))
	}
	l := &Lock{n: n}
	l.desc.Store(newInstance(n))
	return l
}

// NewHandle registers a participant and returns its handle. A Handle must
// be used by one goroutine at a time. NewHandle fails once MaxHandles
// handles exist (handles are not reclaimed; pool them if participants are
// short-lived).
func (l *Lock) NewHandle() (*Handle, error) {
	if l.handles.Add(1) > int64(l.n) {
		l.handles.Add(-1)
		return nil, fmt.Errorf("abortable: handle limit %d reached", l.n)
	}
	return &Handle{lk: l, park: newParker()}, nil
}

// Handle is one goroutine's identity at the lock. It is not safe for
// concurrent use, with the exception of Abort, which may be called from
// any goroutine.
//
// The struct is padded to a falseSharingRange multiple: handles are
// pooled and allocated back-to-back (HandlePool), and a collaborator's
// Abort store on one handle must not invalidate the cache line a
// neighbouring handle is spinning from.
type Handle struct {
	lk      *Lock
	oldInst *instance // instance used by the previous acquisition
	cur     *instance // instance currently held (between Enter and Exit)
	slot    int       // queue slot in cur (set by a successful enter)
	park    parker    // tier-3 park/unpark channel (wake hints)

	abortFlag atomic.Bool
	ctx       context.Context // non-nil only inside EnterContext
	span      obs.Span        // open trace task (between Enter and Exit, tracing on)

	_ [falseSharingRange - 96]byte
}

// Abort asynchronously requests that the handle's pending (or next) Enter
// abandon its attempt and return false. The signal is consumed when Enter
// returns, whichever way it returns: an Enter that is granted the lock
// before observing the signal returns true and the signal is dropped
// (paper footnote 2 — the caller holds the lock and should Exit normally).
// Abort also wakes the handle if it is parked, so a blocked waiter
// observes the signal within a bounded number of steps.
func (h *Handle) Abort() {
	h.abortFlag.Store(true)
	h.park.wake()
}

// abortPending reports whether the current attempt should abandon.
func (h *Handle) abortPending() bool {
	if h.abortFlag.Load() {
		return true
	}
	if h.ctx != nil {
		select {
		case <-h.ctx.Done():
			return true
		default:
		}
	}
	return false
}

// parkState returns the handle's parker and, inside EnterContext, the
// context's done channel (nil otherwise) — the wake sources a tier-3
// sleep must select on besides the grant signal.
func (h *Handle) parkState() (*parker, <-chan struct{}) {
	if h.ctx != nil {
		return &h.park, h.ctx.Done()
	}
	return &h.park, nil
}

// notePark feeds the Parks observability counter.
func (h *Handle) notePark() { h.lk.parks.Add(1) }

// observer returns the lock's attached obs collector, or nil.
func (h *Handle) observer() *obs.Metrics { return h.lk.obsm.Load() }

// Enter acquires the lock, blocking until it is granted or until Abort is
// called. It reports whether the lock was acquired; after true the caller
// must eventually call Exit.
func (h *Handle) Enter() bool {
	if m := h.lk.obsm.Load(); m != nil {
		return h.enterObserved(m)
	}
	return h.enter(nil)
}

// enterObserved wraps the acquisition with the obs event surface: passage
// latency, pprof goroutine labels, and — when a runtime trace is being
// captured — a per-lock task with doorway/wait/cs regions.
func (h *Handle) enterObserved(m *obs.Metrics) bool {
	start := time.Now()
	m.SetAcquireLabels()
	h.span = m.StartPassage("doorway")
	ok := h.enter(m)
	if ok {
		m.RecordAcquire(time.Since(start))
		m.SetCSLabels()
		h.span.Phase("cs")
	} else {
		m.RecordAbort(time.Since(start))
		m.ClearLabels()
		h.span.End()
	}
	return ok
}

// enter is the acquisition loop. m is the obs collector loaded by the
// caller (nil when observability is off: the branches below are dead and
// the path allocates nothing).
func (h *Handle) enter(m *obs.Metrics) bool {
	if h.cur != nil {
		panic("abortable: Enter while holding the lock")
	}
	defer h.abortFlag.Store(false) // consume the signal
	var w waiter
	for {
		ins := h.lk.desc.Load()
		if ins == h.oldInst {
			// Lines 57–61: we already used this instance; wait until it is
			// switched out (O(1) RMRs: one flag, set once). Retirement is
			// lazy, so the waiter first tries to retire a quiescent
			// instance itself; swWait makes the registration visible to
			// departures, whose closing CAS otherwise skips an instance
			// with unused slots.
			h.lk.switchWaits.Add(1)
			if m != nil {
				m.IncSwitchWait()
			}
			ins.swWait.Add(1)
			for !ins.switched.Load() {
				if h.abortPending() {
					ins.swWait.Add(-1)
					h.lk.aborts.Add(1)
					flushWait(m, &w)
					return false
				}
				if ins.tryRetire() {
					h.lk.waiterRetires.Add(1)
					if m != nil {
						m.IncWaiterRetire()
					}
					h.lk.switchOut(ins)
					break
				}
				if !w.pause() {
					continue
				}
				// Park until the switch broadcast (switchCh is closed by
				// the retiring process strictly after switched is set, so
				// a close seen here implies the loop condition flips), an
				// Abort wake, or context cancellation.
				_, done := h.parkState()
				h.park.drain()
				h.notePark()
				if m != nil {
					t0 := time.Now()
					h.park.sleep(done, ins.switchCh)
					m.RecordPark(time.Since(t0))
				} else {
					h.park.sleep(done, ins.switchCh)
				}
			}
			ins.swWait.Add(-1)
			continue
		}
		// Line 62: pin the instance and claim a queue slot with the packed
		// single-F&A doorway. The closed bit makes "pin and obtain the
		// instance" atomic with respect to the switch: an arrival that
		// lands after retirement is rejected.
		slot, ok := ins.arrive()
		if !ok {
			if m != nil {
				m.IncClosedGate()
			}
			w.relaxRound() // switcher is about to publish the new instance
			continue
		}
		if m != nil {
			m.IncArrival()
			flushWait(m, &w)
			h.span.Phase("wait")
		}
		if !ins.enter(h, slot) {
			h.cleanup(ins)
			h.lk.aborts.Add(1)
			return false
		}
		h.cur = ins
		h.slot = slot
		return true
	}
}

// EnterContext acquires the lock, abandoning the attempt when ctx is
// cancelled (returning ctx.Err()) or Abort is called (returning
// ErrAborted). A nil error means the lock is held and Exit is owed.
func (h *Handle) EnterContext(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	h.ctx = ctx
	ok := h.Enter()
	h.ctx = nil
	if ok {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	return ErrAborted
}

// exitObserved wraps the release with the obs event surface.
func (h *Handle) exitObserved(ins *instance, m *obs.Metrics) {
	h.span.Phase("exit")
	start := time.Now()
	ins.exit(m)
	h.cur = nil
	h.cleanup(ins)
	m.RecordHandoff(time.Since(start))
	m.ClearLabels()
	h.span.End()
}

// TryEnter acquires the lock only if it is granted without waiting: it
// joins the queue and abandons immediately if the slot is not already
// granted. It reports whether the lock was acquired.
func (h *Handle) TryEnter() bool {
	h.abortFlag.Store(true)
	return h.Enter()
}

// Exit releases the lock. It panics if the handle does not hold it.
func (h *Handle) Exit() {
	ins := h.cur
	if ins == nil {
		panic("abortable: Exit without holding the lock")
	}
	if m := h.lk.obsm.Load(); m != nil {
		h.exitObserved(ins, m)
		return
	}
	h.span.End() // close a task left open if the observer detached mid-CS
	ins.exit(nil)
	h.cur = nil
	h.cleanup(ins)
}

// cleanup is Algorithm 6.3 with lazy retirement: unpin the instance; the
// departure whose retirement test holds (slots exhausted, or a registered
// switch-waiter, with arrivals balanced either way) retires it and owns
// the switch. A quiescent instance with unused slots and no waiters stays
// installed, so an idle lock does not allocate per quiescence.
func (h *Handle) cleanup(ins *instance) {
	h.oldInst = ins
	if ins.depart() {
		h.lk.switchOut(ins)
	}
}

// switchOut completes a won retirement: install a fresh instance, then
// flip the switched flag and close the broadcast channel that releases any
// parked switch-waiters (strictly in that order — a waiter that observes
// the close re-reads switched and must see it set). The retired instance
// becomes garbage once the last oldInst reference to it is overwritten, so
// reclamation falls to the garbage collector (see DESIGN.md).
func (l *Lock) switchOut(ins *instance) {
	l.desc.Store(newInstance(l.n))
	ins.switched.Store(true)
	close(ins.switchCh)
	l.switches.Add(1)
	if m := l.obsm.Load(); m != nil {
		m.IncSwitch()
	}
}
