package abortable

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestHandlePoolBasic(t *testing.T) {
	lk := New(Config{MaxHandles: 4})
	pool, err := NewHandlePool(lk, 4)
	if err != nil {
		t.Fatal(err)
	}
	h := pool.Enter()
	pool.Release(h)
	h2, err := pool.EnterContext(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	pool.Release(h2)
}

func TestHandlePoolValidation(t *testing.T) {
	lk := New(Config{MaxHandles: 2})
	if _, err := NewHandlePool(lk, 0); err == nil {
		t.Fatal("size 0 accepted")
	}
	if _, err := NewHandlePool(lk, 3); err == nil {
		t.Fatal("pool larger than MaxHandles accepted")
	}
}

func TestHandlePoolManyGoroutines(t *testing.T) {
	// 32 goroutines share 4 handles; mutual exclusion and full completion.
	lk := New(Config{MaxHandles: 4})
	pool, err := NewHandlePool(lk, 4)
	if err != nil {
		t.Fatal(err)
	}
	var inCS, violations atomic.Int32
	var done atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				h := pool.Enter()
				if inCS.Add(1) > 1 {
					violations.Add(1)
				}
				done.Add(1)
				inCS.Add(-1)
				pool.Release(h)
			}
		}()
	}
	wg.Wait()
	if violations.Load() != 0 {
		t.Fatalf("%d mutual-exclusion violations", violations.Load())
	}
	if done.Load() != 32*25 {
		t.Fatalf("completed %d passages, want %d", done.Load(), 32*25)
	}
}

func TestHandlePoolContextWhileExhausted(t *testing.T) {
	lk := New(Config{MaxHandles: 1})
	pool, err := NewHandlePool(lk, 1)
	if err != nil {
		t.Fatal(err)
	}
	h := pool.Enter() // drain the pool
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if _, err := pool.EnterContext(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	pool.Release(h)
}

func TestHandlePoolTryEnter(t *testing.T) {
	lk := New(Config{MaxHandles: 2})
	pool, err := NewHandlePool(lk, 2)
	if err != nil {
		t.Fatal(err)
	}
	a := pool.TryEnter()
	if a == nil {
		t.Fatal("TryEnter on free lock failed")
	}
	if b := pool.TryEnter(); b != nil {
		t.Fatal("TryEnter succeeded while held")
	}
	pool.Release(a)
	if c := pool.TryEnter(); c == nil {
		t.Fatal("TryEnter after release failed")
	} else {
		pool.Release(c)
	}
}
