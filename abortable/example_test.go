package abortable_test

import (
	"context"
	"fmt"
	"time"

	"sublock/abortable"
)

// The basic Enter/Exit discipline: one handle per goroutine.
func ExampleLock() {
	lk := abortable.New(abortable.Config{MaxHandles: 4})
	h, err := lk.NewHandle()
	if err != nil {
		fmt.Println(err)
		return
	}
	if h.Enter() {
		fmt.Println("holding the lock")
		h.Exit()
	}
	// Output: holding the lock
}

// TryEnter joins the queue and abandons instantly unless the lock is
// already grantable — an FCFS-polite try-lock.
func ExampleHandle_TryEnter() {
	lk := abortable.New(abortable.Config{MaxHandles: 2})
	a, _ := lk.NewHandle()
	b, _ := lk.NewHandle()

	if a.TryEnter() {
		fmt.Println("a acquired")
	}
	if !b.TryEnter() {
		fmt.Println("b bounced off the held lock")
	}
	a.Exit()
	// Output:
	// a acquired
	// b bounced off the held lock
}

// EnterContext bounds the wait: cancellation aborts the attempt in a
// bounded number of steps (the paper's bounded-abort property).
func ExampleHandle_EnterContext() {
	lk := abortable.New(abortable.Config{MaxHandles: 2})
	holder, _ := lk.NewHandle()
	waiter, _ := lk.NewHandle()

	holder.Enter()
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	if err := waiter.EnterContext(ctx); err != nil {
		fmt.Println("gave up:", err == context.DeadlineExceeded)
	}
	holder.Exit()
	// Output: gave up: true
}

// Abort releases a waiter from another goroutine — the watchdog pattern.
func ExampleHandle_Abort() {
	lk := abortable.New(abortable.Config{MaxHandles: 2})
	holder, _ := lk.NewHandle()
	waiter, _ := lk.NewHandle()

	holder.Enter()
	done := make(chan bool)
	go func() { done <- waiter.Enter() }()
	time.Sleep(time.Millisecond) // watchdog decides the wait is too long
	waiter.Abort()
	fmt.Println("waiter acquired:", <-done)
	holder.Exit()
	// Output: waiter acquired: false
}

// A HandlePool serves more goroutines than the lock has handles.
func ExampleHandlePool() {
	lk := abortable.New(abortable.Config{MaxHandles: 2})
	pool, _ := abortable.NewHandlePool(lk, 2)

	results := make(chan int, 8)
	for i := 0; i < 8; i++ {
		i := i
		go func() {
			h := pool.Enter()
			defer pool.Release(h)
			results <- i
		}()
	}
	sum := 0
	for i := 0; i < 8; i++ {
		sum += <-results
	}
	fmt.Println("all critical sections ran; sum =", sum)
	// Output: all critical sections ran; sum = 28
}

// The one-shot lock is FCFS: doorway order is entry order.
func ExampleOneShot() {
	l := abortable.NewOneShot(3)
	for i := 0; i < 3; i++ {
		h, _ := l.NewHandle()
		if h.Enter() {
			fmt.Println("slot", h.Slot())
			h.Exit()
		}
	}
	// Output:
	// slot 0
	// slot 1
	// slot 2
}
