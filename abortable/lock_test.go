package abortable

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSingleHandle(t *testing.T) {
	lk := New(Config{MaxHandles: 4})
	h, err := lk.NewHandle()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if !h.Enter() {
			t.Fatalf("passage %d: Enter failed", i)
		}
		h.Exit()
	}
}

func TestDefaultConfig(t *testing.T) {
	lk := New(Config{})
	if lk.n != DefaultMaxHandles {
		t.Fatalf("default MaxHandles = %d, want %d", lk.n, DefaultMaxHandles)
	}
}

func TestHandleLimit(t *testing.T) {
	lk := New(Config{MaxHandles: 2})
	for i := 0; i < 2; i++ {
		if _, err := lk.NewHandle(); err != nil {
			t.Fatalf("handle %d: %v", i, err)
		}
	}
	if _, err := lk.NewHandle(); err == nil {
		t.Fatal("third handle accepted with MaxHandles=2")
	}
}

func TestMutualExclusionStress(t *testing.T) {
	const goroutines, passages = 8, 300
	lk := New(Config{MaxHandles: goroutines})
	var inCS, violations atomic.Int32
	var total atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		h, err := lk.NewHandle()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < passages; i++ {
				if !h.Enter() {
					t.Error("Enter failed without abort")
					return
				}
				if inCS.Add(1) > 1 {
					violations.Add(1)
				}
				total.Add(1)
				inCS.Add(-1)
				h.Exit()
			}
		}()
	}
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d mutual exclusion violations", v)
	}
	if got := total.Load(); got != goroutines*passages {
		t.Fatalf("completed %d passages, want %d", got, goroutines*passages)
	}
}

func TestAbortWhileWaiting(t *testing.T) {
	lk := New(Config{MaxHandles: 2})
	holder, _ := lk.NewHandle()
	waiter, _ := lk.NewHandle()
	if !holder.Enter() {
		t.Fatal("holder failed")
	}

	entered := make(chan bool)
	go func() { entered <- waiter.Enter() }()
	time.Sleep(10 * time.Millisecond) // let the waiter reach its spin
	waiter.Abort()
	select {
	case ok := <-entered:
		if ok {
			t.Fatal("waiter entered while the lock was held")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("abort did not unblock the waiter (bounded abort violated)")
	}
	holder.Exit()
	// The lock must still work after an abort.
	if !waiter.Enter() {
		t.Fatal("post-abort Enter failed")
	}
	waiter.Exit()
}

func TestAbortSignalConsumed(t *testing.T) {
	lk := New(Config{MaxHandles: 1})
	h, _ := lk.NewHandle()
	h.Abort()
	// Uncontended Enter may win before noticing the signal (slot 0 is
	// pre-granted) — either outcome is legal, but the signal must be gone
	// afterwards.
	if h.Enter() {
		h.Exit()
	}
	if h.abortFlag.Load() {
		t.Fatal("abort signal not consumed by Enter")
	}
	if !h.Enter() {
		t.Fatal("Enter failed after the signal was consumed")
	}
	h.Exit()
}

func TestEnterContextCancellation(t *testing.T) {
	lk := New(Config{MaxHandles: 2})
	holder, _ := lk.NewHandle()
	waiter, _ := lk.NewHandle()
	if !holder.Enter() {
		t.Fatal("holder failed")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err := waiter.EnterContext(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("EnterContext = %v, want DeadlineExceeded", err)
	}
	holder.Exit()
	if err := waiter.EnterContext(context.Background()); err != nil {
		t.Fatalf("EnterContext after release = %v", err)
	}
	waiter.Exit()
}

func TestEnterContextPreCancelled(t *testing.T) {
	lk := New(Config{MaxHandles: 1})
	h, _ := lk.NewHandle()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := h.EnterContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("EnterContext = %v, want Canceled", err)
	}
}

func TestEnterContextAbortErr(t *testing.T) {
	lk := New(Config{MaxHandles: 2})
	holder, _ := lk.NewHandle()
	waiter, _ := lk.NewHandle()
	if !holder.Enter() {
		t.Fatal("holder failed")
	}
	done := make(chan error)
	go func() { done <- waiter.EnterContext(context.Background()) }()
	time.Sleep(10 * time.Millisecond)
	waiter.Abort()
	if err := <-done; !errors.Is(err, ErrAborted) {
		t.Fatalf("EnterContext = %v, want ErrAborted", err)
	}
	holder.Exit()
}

func TestTryEnter(t *testing.T) {
	lk := New(Config{MaxHandles: 2})
	a, _ := lk.NewHandle()
	b, _ := lk.NewHandle()
	if !a.TryEnter() {
		t.Fatal("TryEnter on a free lock failed")
	}
	if b.TryEnter() {
		t.Fatal("TryEnter succeeded while held")
	}
	a.Exit()
	if !b.TryEnter() {
		t.Fatal("TryEnter after release failed")
	}
	b.Exit()
}

func TestAbortStress(t *testing.T) {
	// Heavy mixed workload: half the goroutines abort aggressively via a
	// background canceller; everything must stay mutually exclusive and
	// non-aborters must make progress.
	const goroutines = 8
	lk := New(Config{MaxHandles: goroutines})
	var inCS, violations atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		h, err := lk.NewHandle()
		if err != nil {
			t.Fatal(err)
		}
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if g%2 == 1 {
					ctx, cancel := context.WithTimeout(context.Background(), time.Duration(i%3)*time.Millisecond)
					err := h.EnterContext(ctx)
					cancel()
					if err != nil {
						continue
					}
				} else if !h.Enter() {
					t.Error("non-aborter failed to enter")
					return
				}
				if inCS.Add(1) > 1 {
					violations.Add(1)
				}
				inCS.Add(-1)
				h.Exit()
			}
		}()
	}
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d mutual exclusion violations", v)
	}
}

func TestMisusePanics(t *testing.T) {
	lk := New(Config{MaxHandles: 2})
	t.Run("exit without enter", func(t *testing.T) {
		h, _ := lk.NewHandle()
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		h.Exit()
	})
	t.Run("enter while holding", func(t *testing.T) {
		h, _ := lk.NewHandle()
		if !h.Enter() {
			t.Fatal("Enter failed")
		}
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
			h.Exit()
		}()
		h.Enter()
	})
	t.Run("bad config", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		New(Config{MaxHandles: -1})
	})
}

func TestInstanceSwitchReuse(t *testing.T) {
	// Every quiescent release switches instances; a handle re-acquiring
	// must never reuse an instance it already used (doorway overflow or a
	// stuck spin would surface here).
	lk := New(Config{MaxHandles: 3})
	handles := make([]*Handle, 3)
	for i := range handles {
		h, err := lk.NewHandle()
		if err != nil {
			t.Fatal(err)
		}
		handles[i] = h
	}
	for round := 0; round < 200; round++ {
		h := handles[round%3]
		if !h.Enter() {
			t.Fatalf("round %d: Enter failed", round)
		}
		h.Exit()
	}
}

func TestSpinTry(t *testing.T) {
	var l SpinTry
	if !l.TryEnter() {
		t.Fatal("TryEnter on free lock failed")
	}
	if l.TryEnter() {
		t.Fatal("TryEnter on held lock succeeded")
	}
	l.Exit()
	if !l.Enter(nil) {
		t.Fatal("Enter failed")
	}
	done := make(chan bool)
	var stop atomic.Bool
	go func() { done <- l.Enter(stop.Load) }()
	time.Sleep(5 * time.Millisecond)
	stop.Store(true)
	if <-done {
		t.Fatal("aborted Enter reported success")
	}
	l.Exit()
}

func TestStats(t *testing.T) {
	lk := New(Config{MaxHandles: 2})
	h, _ := lk.NewHandle()
	for i := 0; i < 3; i++ {
		if !h.Enter() {
			t.Fatal("Enter failed")
		}
		h.Exit()
	}
	h.Abort()
	holder, _ := lk.NewHandle()
	if !holder.Enter() {
		t.Fatal("holder failed")
	}
	done := make(chan bool)
	go func() { done <- h.Enter() }()
	time.Sleep(5 * time.Millisecond)
	h.Abort()
	if <-done {
		t.Fatal("aborted Enter succeeded")
	}
	holder.Exit()

	st := lk.Stats()
	if st.Handles != 2 {
		t.Fatalf("Handles = %d, want 2", st.Handles)
	}
	if st.Switches < 3 {
		t.Fatalf("Switches = %d, want ≥ 3 (one per solo passage)", st.Switches)
	}
	if st.Aborts < 1 {
		t.Fatalf("Aborts = %d, want ≥ 1", st.Aborts)
	}
}
