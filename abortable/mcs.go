package abortable

import "sync/atomic"

// MCS is the classic Mellor-Crummey–Scott queue lock: non-abortable, FCFS,
// O(1) RMRs per passage. It is the reference point the paper's introduction
// compares against and the strongest non-abortable baseline in the
// benchmark suite. The zero value is ready to use.
type MCS struct {
	tail atomic.Pointer[mcsNode]
}

type mcsNode struct {
	next   atomic.Pointer[mcsNode]
	locked atomic.Bool
	_      [46]byte // pad to a cache line
}

// MCSHandle carries a goroutine's reusable queue node.
type MCSHandle struct {
	l    *MCS
	node *mcsNode
}

// NewHandle returns a handle for one goroutine.
func (l *MCS) NewHandle() *MCSHandle {
	return &MCSHandle{l: l, node: &mcsNode{}}
}

// Enter acquires the lock.
func (h *MCSHandle) Enter() {
	n := h.node
	n.next.Store(nil)
	pred := h.l.tail.Swap(n)
	if pred == nil {
		return
	}
	n.locked.Store(true)
	pred.next.Store(n)
	var spin spinner
	for n.locked.Load() {
		spin.wait()
	}
}

// Exit releases the lock.
func (h *MCSHandle) Exit() {
	n := h.node
	if n.next.Load() == nil {
		if h.l.tail.CompareAndSwap(n, nil) {
			return
		}
		var spin spinner
		for n.next.Load() == nil {
			spin.wait()
		}
	}
	n.next.Load().locked.Store(false)
}

// SpinTry is a test-and-test-and-set spin lock with abortable acquisition:
// the simplest abortable lock, unfair and RMR-unbounded under contention.
// The zero value is ready to use.
type SpinTry struct {
	word atomic.Uint32
}

// Enter acquires the lock, returning false if abort() reports true first.
// abort may be nil for an unbounded wait.
func (l *SpinTry) Enter(abort func() bool) bool {
	var spin spinner
	for {
		if l.word.Load() == 0 && l.word.CompareAndSwap(0, 1) {
			return true
		}
		if abort != nil && abort() {
			return false
		}
		spin.wait()
	}
}

// TryEnter acquires the lock only if it is immediately free.
func (l *SpinTry) TryEnter() bool {
	return l.word.Load() == 0 && l.word.CompareAndSwap(0, 1)
}

// Exit releases the lock.
func (l *SpinTry) Exit() {
	l.word.Store(0)
}
