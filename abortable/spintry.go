package abortable

import "sync/atomic"

// SpinTry is a test-and-test-and-set spin lock with abortable acquisition:
// the simplest abortable lock, unfair and RMR-unbounded under contention.
// The zero value is ready to use.
//
// SpinTry has no wake source (Exit is a single store with no waiter
// registry), so its waiting degrades from bounded spin to cooperative
// yields rather than parking; use Lock when waiters must not burn CPU.
//
// The MCS queue lock that once lived beside it moved to the simulator-side
// locks/mcs package, the single MCS implementation in the repository; this
// package keeps only the native-runtime locks its benchmarks compare.
type SpinTry struct {
	word atomic.Uint32
}

// Enter acquires the lock, returning false if abort() reports true first.
// abort may be nil for an unbounded wait. The probe is consulted before
// the first acquisition attempt, so an already-delivered signal (e.g. a
// context cancelled before the call) never acquires the lock.
func (l *SpinTry) Enter(abort func() bool) bool {
	var w waiter
	for {
		if abort != nil && abort() {
			return false
		}
		if l.word.Load() == 0 && l.word.CompareAndSwap(0, 1) {
			return true
		}
		w.relaxRound()
	}
}

// TryEnter acquires the lock only if it is immediately free.
func (l *SpinTry) TryEnter() bool {
	return l.word.Load() == 0 && l.word.CompareAndSwap(0, 1)
}

// Exit releases the lock.
func (l *SpinTry) Exit() {
	l.word.Store(0)
}
