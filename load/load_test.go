package load

import (
	"context"
	"testing"
	"time"
)

func TestRunUniform(t *testing.T) {
	cfg := Defaults()
	cfg.Clients = 4
	cfg.Names = 16
	cfg.Duration = 300 * time.Millisecond
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("uniform run made no progress")
	}
	if res.P50 <= 0 || res.P99 < res.P50 {
		t.Fatalf("percentiles p50=%d p99=%d, want positive and ordered", res.P50, res.P99)
	}
	if res.Throughput <= 0 {
		t.Fatalf("throughput = %v, want > 0", res.Throughput)
	}
	if res.Server == nil {
		t.Fatal("in-process run must report server stats")
	}
	if res.Server.Acquires < res.Ops {
		t.Fatalf("server acquires %d < client ops %d", res.Server.Acquires, res.Ops)
	}
	if res.Chaos {
		t.Fatal("chaos flagged on a chaos-free run")
	}
}

func TestRunZipfChaos(t *testing.T) {
	cfg := Defaults()
	cfg.Clients = 8
	cfg.Names = 32
	cfg.Dist = "zipf"
	cfg.Duration = 400 * time.Millisecond
	cfg.TTL = 100 * time.Millisecond
	cfg.Chaos = Chaos{KillHold: 0.2, KillWait: 0.1}
	res, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("zipf chaos run made no progress")
	}
	if !res.Chaos {
		t.Fatal("chaos not flagged")
	}
	if res.KilledHolds == 0 {
		t.Fatal("chaos never killed a holder (KillHold=0.2 over the whole run)")
	}
	// Every killed hold left a lease to lapse: the server must have
	// reclaimed them (the post-run settle window in Run waits for this).
	if res.Server.Expiries == 0 {
		t.Fatalf("server reclaimed no leases after %d killed holds", res.KilledHolds)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	cfg := Defaults()
	cfg.Dist = "pareto"
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Fatal("unknown distribution accepted")
	}
	cfg = Defaults()
	cfg.Clients = 0
	if _, err := Run(context.Background(), cfg); err == nil {
		t.Fatal("zero clients accepted")
	}
}
