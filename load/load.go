// Package load is the lockd load harness: concurrent clients hammer a
// lock service — in-process by default, or a remote addr — under a
// uniform or hot-key (Zipf) name distribution, optionally with chaos
// (clients killed mid-hold and mid-wait), and report acquire-latency
// percentiles, throughput, and the server's robustness counters.
package load

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sublock/lockd"
	"sublock/lockd/client"
)

// Chaos configures client-failure injection.
type Chaos struct {
	// KillHold is the probability a successful acquire "crashes" mid-hold:
	// the release is skipped, so the lease must lapse via TTL expiry.
	KillHold float64
	// KillWait is the probability an acquire's context is cancelled
	// mid-wait, simulating a waiter that disconnects while parked.
	KillWait float64
}

func (c Chaos) enabled() bool { return c.KillHold > 0 || c.KillWait > 0 }

// Config describes one load run. The zero value is not runnable; use
// Defaults() and override.
type Config struct {
	// Addr targets a running lockd server ("host:port"); empty starts an
	// in-process server and reports its Stats in the result.
	Addr string
	// Clients is the number of concurrent client goroutines.
	Clients int
	// Names is the size of the lock-name space.
	Names int
	// Dist is the name distribution: "uniform" or "zipf" (hot-key).
	Dist string
	// ZipfS is the Zipf skew parameter (>1; larger = hotter head).
	ZipfS float64
	// Duration bounds the run.
	Duration time.Duration
	// Hold is the dwell inside the critical section.
	Hold time.Duration
	// TTL and Wait are passed through to every acquire. A short TTL keeps
	// chaos-killed holds reclaimable within the run.
	TTL, Wait time.Duration
	// Chaos injects client failures.
	Chaos Chaos
	// Seed makes name choice and chaos reproducible.
	Seed int64

	// Server tunes the in-process server (ignored with Addr set).
	Server lockd.Config
}

// Defaults returns a small, safe baseline configuration.
func Defaults() Config {
	return Config{
		Clients:  8,
		Names:    64,
		Dist:     "uniform",
		ZipfS:    1.2,
		Duration: time.Second,
		Hold:     200 * time.Microsecond,
		TTL:      500 * time.Millisecond,
		Wait:     2 * time.Second,
		Seed:     1,
		Server:   lockd.Config{SweepInterval: 20 * time.Millisecond},
	}
}

// Result is one run's report.
type Result struct {
	Dist    string        `json:"dist"`
	Clients int           `json:"clients"`
	Names   int           `json:"names"`
	Chaos   bool          `json:"chaos"`
	Elapsed time.Duration `json:"elapsed_ns"`

	Ops        int64   `json:"ops"` // granted acquires
	Throughput float64 `json:"throughput_ops_per_sec"`
	P50        int64   `json:"acquire_p50_ns"`
	P95        int64   `json:"acquire_p95_ns"`
	P99        int64   `json:"acquire_p99_ns"`

	Timeouts    int64 `json:"timeouts"`     // client-observed wait timeouts
	Sheds       int64 `json:"sheds"`        // client-observed 503s (post-retry)
	KilledHolds int64 `json:"killed_holds"` // chaos: releases skipped
	KilledWaits int64 `json:"killed_waits"` // chaos: waits cancelled
	StaleErrs   int64 `json:"stale_errs"`   // releases fenced out (post-expiry)
	OtherErrs   int64 `json:"other_errs"`

	// Server holds the in-process server's counters (nil against a remote
	// addr, where the server's /metrics is the source of truth).
	Server *lockd.Stats `json:"server,omitempty"`
}

// namePicker returns a per-client generator of name indices.
func namePicker(cfg Config, rng *rand.Rand) (func() int, error) {
	switch cfg.Dist {
	case "uniform":
		return func() int { return rng.Intn(cfg.Names) }, nil
	case "zipf":
		z := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Names-1))
		return func() int { return int(z.Uint64()) }, nil
	default:
		return nil, fmt.Errorf("load: unknown distribution %q (want uniform or zipf)", cfg.Dist)
	}
}

// Run executes one load run and merges the per-client measurements.
func Run(ctx context.Context, cfg Config) (Result, error) {
	if cfg.Clients <= 0 || cfg.Names <= 0 || cfg.Duration <= 0 {
		return Result{}, fmt.Errorf("load: Clients, Names and Duration must be positive")
	}
	if _, err := namePicker(cfg, rand.New(rand.NewSource(0))); err != nil {
		return Result{}, err
	}

	addr := cfg.Addr
	var srv *lockd.Server
	if addr == "" {
		srv = lockd.New(cfg.Server)
		ts := httptest.NewServer(srv.Handler())
		defer func() {
			ts.Close()
			srv.Close()
		}()
		addr = ts.URL
	}

	var (
		ops, timeouts, sheds     atomic.Int64
		killedHolds, killedWaits atomic.Int64
		staleErrs, otherErrs     atomic.Int64
		latMu                    sync.Mutex
		latencies                []int64
		wg                       sync.WaitGroup
		runCtx, runCancel        = context.WithTimeout(ctx, cfg.Duration)
	)
	defer runCancel()
	start := time.Now()

	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(cfg.Seed + int64(id)*7919))
			pick, _ := namePicker(cfg, rng)
			cl := client.New(addr, client.Config{
				MaxAttempts: 2,
				BaseBackoff: 5 * time.Millisecond,
				MaxBackoff:  100 * time.Millisecond,
			})
			local := make([]int64, 0, 4096)
			for runCtx.Err() == nil {
				name := fmt.Sprintf("key-%05d", pick())
				actx, acancel := context.WithCancel(runCtx)
				killWait := cfg.Chaos.KillWait > 0 && rng.Float64() < cfg.Chaos.KillWait
				var killTimer *time.Timer
				if killWait {
					frac := 0.05 + 0.9*rng.Float64()
					killTimer = time.AfterFunc(time.Duration(float64(cfg.Wait)*frac), acancel)
				}
				t0 := time.Now()
				ls, err := cl.Acquire(actx, name, cfg.TTL, cfg.Wait)
				if killTimer != nil {
					killTimer.Stop()
				}
				if err != nil {
					acancel()
					switch {
					case errors.Is(err, context.Canceled) && runCtx.Err() != nil:
						// run over; not an error
					case errors.Is(err, context.Canceled):
						killedWaits.Add(1)
					case errors.Is(err, client.ErrWaitTimeout):
						timeouts.Add(1)
					case errors.Is(err, client.ErrOverloaded), errors.Is(err, client.ErrDraining):
						sheds.Add(1)
					default:
						otherErrs.Add(1)
					}
					continue
				}
				local = append(local, time.Since(t0).Nanoseconds())
				ops.Add(1)
				if cfg.Hold > 0 {
					time.Sleep(cfg.Hold)
				}
				if cfg.Chaos.KillHold > 0 && rng.Float64() < cfg.Chaos.KillHold {
					// Crash mid-hold: never release; the lease must lapse.
					killedHolds.Add(1)
					acancel()
					continue
				}
				switch err := cl.Release(context.Background(), ls); {
				case err == nil:
				case errors.Is(err, client.ErrStale), errors.Is(err, client.ErrExpired):
					// Held past the TTL (scheduler stall or hot-key queue):
					// the server already reclaimed it. Expected under chaos.
					staleErrs.Add(1)
				default:
					otherErrs.Add(1)
				}
				acancel()
			}
			latMu.Lock()
			latencies = append(latencies, local...)
			latMu.Unlock()
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := Result{
		Dist:        cfg.Dist,
		Clients:     cfg.Clients,
		Names:       cfg.Names,
		Chaos:       cfg.Chaos.enabled(),
		Elapsed:     elapsed,
		Ops:         ops.Load(),
		Timeouts:    timeouts.Load(),
		Sheds:       sheds.Load(),
		KilledHolds: killedHolds.Load(),
		KilledWaits: killedWaits.Load(),
		StaleErrs:   staleErrs.Load(),
		OtherErrs:   otherErrs.Load(),
	}
	if elapsed > 0 {
		res.Throughput = float64(res.Ops) / elapsed.Seconds()
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	res.P50 = percentile(latencies, 0.50)
	res.P95 = percentile(latencies, 0.95)
	res.P99 = percentile(latencies, 0.99)
	if srv != nil {
		// Let in-flight expiries from killed holds land before snapshotting.
		if cfg.Chaos.enabled() {
			time.Sleep(cfg.TTL + 2*cfg.Server.SweepInterval + 50*time.Millisecond)
		}
		st := srv.Stats()
		res.Server = &st
	}
	return res, nil
}

// percentile reads the q-quantile from sorted (ascending) samples.
func percentile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
