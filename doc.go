// Package sublock is a reproduction of "Deterministic Abortable Mutual
// Exclusion with Sublogarithmic Adaptive RMR Complexity" (Alon & Morrison,
// PODC 2018).
//
// The importable libraries live in subdirectories:
//
//   - abortable: the paper's lock on native Go atomics (the library a
//     downstream user adopts);
//   - rmr: the RMR-metered shared-memory simulator the evaluation runs on.
//
// The root package exists to host the repository-level benchmark suite
// (bench_test.go), which regenerates every table and figure of the paper;
// see DESIGN.md and EXPERIMENTS.md.
package sublock
