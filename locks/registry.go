package locks

import (
	"fmt"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"

	"sublock/rmr"
)

// Info describes one registered lock: the metadata the harness, the CLIs,
// the benchmark matrix, and the conformance suite need to drive it without
// lock-specific code.
type Info struct {
	// Name is the registry key — the value of the CLIs' -lock flag and the
	// row name of every generated table.
	Name string
	// Summary is a one-line description for -list-locks and the docs.
	Summary string
	// Abortable reports whether Enter observes the abort signal. Workloads
	// that deliver abort signals skip non-abortable locks.
	Abortable bool
	// OneShot reports whether each handle (and each process) may enter at
	// most once per built instance. Multi-passage workloads skip one-shot
	// locks or rebuild the instance per passage.
	OneShot bool
	// CCOnly reports whether the lock requires the CC memory model; its
	// factory fails on a DSM memory.
	CCOnly bool
	// Labels lists the shared-memory region label prefixes the lock interns
	// at construction (e.g. "mcs/"). The conformance suite checks that RMRs
	// attributed to labeled words carry one of these prefixes.
	Labels []string
	// IDSymmetric reports that the lock's behavior is invariant under
	// process-id permutation within a role: no per-id data structures whose
	// scan order leaks the id (tournament-tree locks, for example, assign
	// ids to fixed leaf slots and are NOT id-symmetric). The exhaustive
	// harness only enables the Explorer's symmetry reduction for locks that
	// set this.
	IDSymmetric bool
	// New builds an instance of the lock.
	New Factory

	// pkg is the directory basename of the package that called Register,
	// recorded so the conformance suite can diff registered locks against
	// the lock packages present on disk.
	pkg string
}

// Package returns the directory basename of the package that registered
// this lock (e.g. "mcs" for locks/mcs).
func (i Info) Package() string { return i.pkg }

var (
	regMu    sync.RWMutex
	registry = map[string]Info{}
)

// Register adds a lock to the registry. It is meant to be called from the
// lock package's init function and panics on a nil factory, an empty name,
// or a duplicate name — a duplicate is always a programming error, and
// failing loudly at init keeps the name space coherent.
func Register(info Info) {
	if info.Name == "" {
		panic("locks: Register with an empty name")
	}
	if info.New == nil {
		panic(fmt.Sprintf("locks: Register(%q) with a nil factory", info.Name))
	}
	if info.pkg == "" {
		if _, file, _, ok := runtime.Caller(1); ok {
			info.pkg = filepath.Base(filepath.Dir(file))
		}
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[info.Name]; dup {
		panic(fmt.Sprintf("locks: Register called twice for %q", info.Name))
	}
	registry[info.Name] = info
}

// Names returns every registered lock name in sorted order. The order is
// deterministic so table rows, benchmark matrices, and conformance subtests
// are stable across runs.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Infos returns every registered lock's Info, sorted by name.
func Infos() []Info {
	regMu.RLock()
	defer regMu.RUnlock()
	infos := make([]Info, 0, len(registry))
	for _, info := range registry {
		infos = append(infos, info)
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	return infos
}

// Packages returns the sorted set of package directory basenames that have
// registered at least one lock.
func Packages() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	seen := map[string]bool{}
	for _, info := range registry {
		if info.pkg != "" {
			seen[info.pkg] = true
		}
	}
	pkgs := make([]string, 0, len(seen))
	for p := range seen {
		pkgs = append(pkgs, p)
	}
	sort.Strings(pkgs)
	return pkgs
}

// Lookup returns the Info registered under name.
func Lookup(name string) (Info, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	info, ok := registry[name]
	return info, ok
}

// ErrUnknown is the error returned by Build for an unregistered name. The
// message carries the sorted registry so a CLI can surface the valid set
// without extra plumbing.
type ErrUnknown struct {
	Name       string
	Registered []string // sorted
}

func (e *ErrUnknown) Error() string {
	return fmt.Sprintf("locks: unknown lock %q (registered: %s)",
		e.Name, strings.Join(e.Registered, ", "))
}

// Build constructs the named lock in m, sized for capacity participants,
// and returns the per-process handle constructor. w is the tree arity for
// tree-based locks. Unknown names yield an *ErrUnknown listing the
// registered set.
func Build(m *rmr.Memory, name string, w, capacity int) (HandleFunc, error) {
	info, ok := Lookup(name)
	if !ok {
		return nil, &ErrUnknown{Name: name, Registered: Names()}
	}
	return info.New(m, w, capacity)
}
