// Package tas implements an abortable test-and-test-and-set lock on the
// simulated shared memory. It is the simplest possible abortable lock —
// O(1) space, trivially abortable because waiters own no queue state — and
// serves as the harness's unfair anchor: its RMR cost per passage is
// unbounded under contention (every handoff invalidates every spinner),
// which is exactly the pathology queue locks exist to avoid.
package tas

import (
	"sublock/locks"
	"sublock/rmr"
)

func init() {
	locks.Register(locks.Info{
		Name:      "tas",
		Summary:   "abortable test-and-test-and-set lock: O(1) space, unbounded RMRs under contention (unfair anchor)",
		Abortable: true,
		Labels:    []string{"tas/"},
		// Processes race on one shared word and keep no id-indexed layout.
		IDSymmetric: true,
		New: func(m *rmr.Memory, _, _ int) (locks.HandleFunc, error) {
			l := New(m)
			return func(p *rmr.Proc) locks.Abortable { return l.Handle(p) }, nil
		},
	})
}

// Lock is a single-word test-and-test-and-set lock.
type Lock struct {
	word rmr.Addr // 0 = free, 1 = held
}

// New allocates a TAS lock in m.
func New(m *rmr.Memory) *Lock {
	l := &Lock{word: m.Alloc(0)}
	m.Label(l.word, 1, "tas/word")
	return l
}

// Handle returns process p's handle to the lock.
func (l *Lock) Handle(p *rmr.Proc) *Handle {
	return &Handle{l: l, p: p}
}

// Handle is one process's interface to the lock.
type Handle struct {
	l *Lock
	p *rmr.Proc
}

// Enter acquires the lock, or returns false if the abort signal arrives
// while waiting.
func (h *Handle) Enter() bool {
	// TAS has no doorway: the passage is one long contended wait.
	h.p.EnterPhase(rmr.PhaseWaiting)
	for {
		if h.p.Read(h.l.word) == 0 && h.p.CAS(h.l.word, 0, 1) {
			h.p.EnterPhase(rmr.PhaseCS)
			return true
		}
		if h.p.AbortSignal() {
			h.p.EnterPhase(rmr.PhaseAbort)
			h.p.EnterPhase(rmr.PhaseIdle)
			return false
		}
		// The word is 1 while held; wait adaptively for the releasing
		// write (every spinner is woken — TAS's thundering herd is the
		// pathology queue locks avoid, parked or not).
		h.p.Wait(h.l.word, 1)
	}
}

// Exit releases the lock.
func (h *Handle) Exit() {
	h.p.EnterPhase(rmr.PhaseExit)
	h.p.Write(h.l.word, 0)
	h.p.EnterPhase(rmr.PhaseIdle)
}
