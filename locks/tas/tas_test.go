package tas

import (
	"testing"

	"sublock/internal/locktest"
	"sublock/rmr"
)

func factory(m *rmr.Memory, _ int) (func(p *rmr.Proc) locktest.Handle, error) {
	l := New(m)
	return func(p *rmr.Proc) locktest.Handle { return l.Handle(p) }, nil
}

func TestSequential(t *testing.T) {
	m := rmr.NewMemory(rmr.CC, 1, nil)
	l := New(m)
	h := l.Handle(m.Proc(0))
	for i := 0; i < 5; i++ {
		if !h.Enter() {
			t.Fatal("Enter failed")
		}
		h.Exit()
	}
}

func TestMutualExclusion(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		res := locktest.Run(t, rmr.CC, 10, seed, factory, nil)
		locktest.RequireAllEntered(t, res, seed, nil)
	}
}

func TestAborts(t *testing.T) {
	aborters := map[int]bool{1: true, 2: true, 5: true}
	for seed := int64(0); seed < 25; seed++ {
		res := locktest.Run(t, rmr.CC, 8, seed, factory, aborters)
		locktest.RequireAllEntered(t, res, seed, aborters)
	}
}

func TestSpaceIsOneWord(t *testing.T) {
	m := rmr.NewMemory(rmr.CC, 4, nil)
	New(m)
	if got := m.Size(); got != 1 {
		t.Fatalf("TAS lock uses %d words, want 1", got)
	}
}
