// Package all wires every lock implementation in the repository into the
// locks registry: blank-importing it (directly or through the harness)
// makes every lock buildable by name via locks.Build.
//
// Adding a new lock: create its package under locks/ with an init that
// calls locks.Register, then add one blank import here. The conformance
// suite, the CLIs' -lock flags, and the benchmark matrix pick it up
// automatically — see DESIGN.md ("Adding a new lock in one file").
package all

import (
	_ "sublock/locks/linearscan"
	_ "sublock/locks/mcs"
	_ "sublock/locks/paper"
	_ "sublock/locks/scott"
	_ "sublock/locks/tas"
	_ "sublock/locks/tournament"
)
