package linearscan

import (
	"testing"

	"sublock/internal/locktest"
	"sublock/rmr"
)

func factory(m *rmr.Memory, nprocs int) (func(p *rmr.Proc) locktest.Handle, error) {
	l, err := New(m, nprocs)
	if err != nil {
		return nil, err
	}
	return func(p *rmr.Proc) locktest.Handle { return l.Handle(p) }, nil
}

func TestValidation(t *testing.T) {
	m := rmr.NewMemory(rmr.CC, 1, nil)
	if _, err := New(m, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestSequentialChain(t *testing.T) {
	const n = 8
	m := rmr.NewMemory(rmr.CC, n, nil)
	l, err := New(m, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		h := l.Handle(m.Proc(i))
		if !h.Enter() {
			t.Fatalf("process %d failed to enter", i)
		}
		if h.Slot() != i {
			t.Fatalf("process %d got slot %d", i, h.Slot())
		}
		h.Exit()
	}
}

func TestMutualExclusion(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		res := locktest.Run(t, rmr.CC, 12, seed, factory, nil)
		locktest.RequireAllEntered(t, res, seed, nil)
	}
}

func TestAborts(t *testing.T) {
	aborters := map[int]bool{1: true, 4: true, 5: true, 6: true}
	for seed := int64(0); seed < 25; seed++ {
		res := locktest.Run(t, rmr.CC, 12, seed, factory, aborters)
		locktest.RequireAllEntered(t, res, seed, aborters)
	}
}

func TestAllAbort(t *testing.T) {
	all := map[int]bool{}
	for i := 0; i < 10; i++ {
		all[i] = true
	}
	for seed := int64(0); seed < 25; seed++ {
		// Termination (checked by Run) is the property; the slot-0 process
		// enters regardless since its slot is pre-granted.
		locktest.Run(t, rmr.CC, 10, seed, factory, all)
	}
}

func TestTooManyEntrantsPanics(t *testing.T) {
	m := rmr.NewMemory(rmr.CC, 2, nil)
	l, err := New(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	h := l.Handle(m.Proc(0))
	h.Enter()
	h.Exit()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l.Handle(m.Proc(1)).Enter()
}

func TestHandoffCostLinearInAborts(t *testing.T) {
	// An exiter followed by k consecutive abandoned slots pays k+1 CASes:
	// the Θ(A) adaptive shape the paper's tree reduces to O(log_W A).
	for _, aborts := range []int{1, 4, 16, 64} {
		n := aborts + 3
		m := rmr.NewMemory(rmr.CC, n, nil)
		l, err := New(m, n)
		if err != nil {
			t.Fatal(err)
		}
		holder := l.Handle(m.Proc(0))
		if !holder.Enter() {
			t.Fatal("holder failed")
		}
		// k waiters enqueue and abort (sequentially: signal already set).
		for i := 1; i <= aborts; i++ {
			p := m.Proc(i)
			p.SignalAbort()
			if l.Handle(p).Enter() {
				t.Fatalf("aborter %d entered", i)
			}
		}
		// One live waiter enqueues (it will be granted by the holder).
		waiterProc := m.Proc(n - 1)
		waiter := l.Handle(waiterProc)
		ok := make(chan bool, 1)
		go func() { ok <- waiter.Enter() }()

		p0 := m.Proc(0)
		before := p0.RMRs()
		holder.Exit()
		cost := p0.RMRs() - before
		if !<-ok {
			t.Fatal("waiter failed to acquire")
		}
		waiter.Exit()
		want := int64(aborts + 1) // one failed CAS per abandoned slot + grant
		if cost != want {
			t.Errorf("aborts=%d: exit RMRs = %d, want %d", aborts, cost, want)
		}
	}
}

func TestNoAbortPassageO1(t *testing.T) {
	const n = 24
	for seed := int64(0); seed < 5; seed++ {
		res := locktest.Run(t, rmr.CC, n, seed, factory, nil)
		for i, cost := range res.RMRs {
			if cost > 6 {
				t.Errorf("seed %d: process %d passage RMRs = %d, want ≤ 6", seed, i, cost)
			}
		}
	}
}

func TestGrantDuringAbortHandsOff(t *testing.T) {
	// The grant/abort race: slot1's process decides to abort, the holder
	// grants slot1 concurrently, and the aborter must pass the lock to
	// slot2 itself.
	const n = 3
	c := rmr.NewController(n)
	m := rmr.NewMemory(rmr.CC, n, nil)
	l, err := New(m, n)
	if err != nil {
		t.Fatal(err)
	}
	handles := make([]*Handle, n)
	for i := range handles {
		handles[i] = l.Handle(m.Proc(i))
	}
	m.SetGate(c)

	res := make([]bool, n)
	c.Go(0, func() {
		res[0] = handles[0].Enter()
		handles[0].Exit()
	})
	c.StepN(0, 2) // F&A + slot read (granted) → in CS
	c.Go(1, func() { res[1] = handles[1].Enter() })
	c.StepN(1, 2) // F&A + slot read (waiting) → spinning
	c.Go(2, func() { res[2] = handles[2].Enter() })
	c.StepN(2, 2)

	// slot1's process takes one more spin read (still waiting), then the
	// signal arrives: its next operation will be the CAS(waiting→abandoned).
	c.Step(1)
	m.Proc(1).SignalAbort()
	c.Step(1) // one more read of waiting; now committed to the abort CAS

	// The holder exits first, granting slot 1 — so the abort CAS fails
	// against the grant and the aborter must hand the lock to slot 2.
	c.Finish(0, 1000)
	c.Finish(1, 1000)
	if res[1] {
		t.Fatal("aborter reported success")
	}
	c.Finish(2, 1000)
	c.Wait()
	if !res[2] {
		t.Fatal("slot 2 stranded: grant/abort race lost the lock")
	}
}
