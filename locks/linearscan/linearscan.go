// Package linearscan implements an F&A-based array queue lock whose exit
// path skips aborted slots one at a time. It stands in for Lee's abortable
// lock (OPODIS 2010) in the Table 1 experiments: same primitives (F&A plus
// CAS), FCFS, O(1) RMRs per passage when no process aborts, and an adaptive
// RMR cost *linear* in the number of aborts — the shape the paper's
// O(log_W A) tree improves on. Like the paper's one-shot lock it is
// one-shot: each process may enter at most once.
//
// Slot states: 0 = waiting, 1 = granted, 2 = abandoned. A waiter that must
// abort CASes its slot 0→2; if the CAS fails the lock was granted to it
// concurrently, so the aborter performs the handoff itself before leaving
// (the same responsibility idea as the paper's Abort, made trivial by the
// atomically-resolved slot state).
package linearscan

import (
	"fmt"

	"sublock/locks"
	"sublock/rmr"
)

func init() {
	locks.Register(locks.Info{
		Name:      "linearscan",
		Summary:   "Lee-shaped F&A queue lock, linear skip over aborted slots: O(1) abort-free, Θ(A) adaptive (Table 1 row 3)",
		Abortable: true,
		OneShot:   true,
		Labels:    []string{"linearscan/"},
		// Slots are assigned by F&A arrival order, not by process id.
		IDSymmetric: true,
		New: func(m *rmr.Memory, _, capacity int) (locks.HandleFunc, error) {
			l, err := New(m, capacity)
			if err != nil {
				return nil, err
			}
			return func(p *rmr.Proc) locks.Abortable { return l.Handle(p) }, nil
		},
	})
}

const (
	waiting   = 0
	granted   = 1
	abandoned = 2
)

// Lock is a one-shot abortable linear-scan queue lock.
type Lock struct {
	n     int
	tail  rmr.Addr
	slots rmr.Addr // n slot-state words
}

// New allocates the lock for at most n entrants in m.
func New(m *rmr.Memory, n int) (*Lock, error) {
	if n < 1 {
		return nil, fmt.Errorf("linearscan: n=%d must be positive", n)
	}
	l := &Lock{n: n, tail: m.Alloc(0), slots: m.AllocN(n, waiting)}
	m.Label(l.tail, 1, "linearscan/tail")
	m.Label(l.slots, n, "linearscan/slots")
	m.Poke(l.slots, granted) // slot 0 holds the lock initially
	return l, nil
}

// Handle returns process p's handle to the lock.
func (l *Lock) Handle(p *rmr.Proc) *Handle {
	return &Handle{l: l, p: p, slot: -1}
}

// Handle is one process's one-shot interface to the lock.
type Handle struct {
	l    *Lock
	p    *rmr.Proc
	slot int
}

// Slot returns the queue slot assigned by the doorway, or -1 before Enter.
func (h *Handle) Slot() int { return h.slot }

// Enter acquires the lock, or returns false if the abort signal arrives
// while waiting. If the grant races with the abort, the aborter passes the
// lock on itself and still returns false.
func (h *Handle) Enter() bool {
	p := h.p
	p.EnterPhase(rmr.PhaseDoorway)
	i := int(p.FAA(h.l.tail, 1))
	if i >= h.l.n {
		panic(fmt.Sprintf("linearscan: %d processes entered a lock configured for n=%d", i+1, h.l.n))
	}
	h.slot = i
	a := h.l.slots + rmr.Addr(i)
	p.EnterPhase(rmr.PhaseWaiting)
	for {
		if p.Read(a) == granted {
			p.EnterPhase(rmr.PhaseCS)
			return true
		}
		if p.AbortSignal() {
			p.EnterPhase(rmr.PhaseAbort)
			if p.CAS(a, waiting, abandoned) {
				p.EnterPhase(rmr.PhaseIdle)
				return false
			}
			// The grant landed first: we own the lock; hand it off.
			h.grantNext(i)
			p.EnterPhase(rmr.PhaseIdle)
			return false
		}
		p.Wait(a, waiting) // the grant (or nothing) is written into our slot
	}
}

// Exit releases the lock, granting the next non-abandoned slot.
func (h *Handle) Exit() {
	h.p.EnterPhase(rmr.PhaseExit)
	h.grantNext(h.slot)
	h.p.EnterPhase(rmr.PhaseIdle)
}

// grantNext scans forward from slot i, skipping abandoned slots. Granting a
// slot whose process has not arrived yet is sound: the arrival will read
// the grant immediately. The scan cost — one CAS per abandoned slot — is
// the linear-in-aborts adaptive bound this baseline exists to exhibit.
func (h *Handle) grantNext(i int) {
	for j := i + 1; j < h.l.n; j++ {
		if h.p.CAS(h.l.slots+rmr.Addr(j), waiting, granted) {
			return
		}
		// CAS fails only on an abandoned slot; keep scanning.
	}
}
