// Package locks is the single seam between the lock algorithms of this
// repository and everything that drives them: the experiment harness, the
// CLIs (locktest, rmrbench, rmrtrace), the benchmark matrix, and the
// registry-wide conformance suite.
//
// Every lock — the paper's one-shot lock and its long-lived transformation
// as well as the Table 1 baselines — is reachable only through the
// name→factory Registry in this package. A lock implementation lives in its
// own subpackage (locks/mcs, locks/scott, …), registers itself in an init
// function, and is wired into the build by one blank import in locks/all.
// Anything that imports locks/all can build any lock by name; the
// conformance suite and the benchmark matrix iterate the registry, so a new
// lock gets the whole test and benchmark battery without touching either.
//
// See DESIGN.md ("Adding a new lock in one file") for the walkthrough.
package locks

import "sublock/rmr"

// Abortable is the canonical per-process lock handle: the uniform interface
// the harness, the CLIs, and the conformance suite operate on.
//
// The abort signal is not part of the method set by design: in the paper's
// model the signal is an external event, not a shared-memory word, and it
// is delivered through the simulator (rmr.Proc.SignalAbort). Enter observes
// it via rmr.Proc.AbortSignal and returns false when the attempt was
// abandoned. Non-abortable locks (MCS) ignore the signal and always return
// true.
//
// A handle represents one process's program order and is not safe for
// concurrent use by multiple goroutines.
type Abortable interface {
	// Enter acquires the lock; false means the attempt aborted.
	Enter() bool
	// Exit releases the lock after a successful Enter.
	Exit()
}

// HandleFunc produces process p's handle to a built lock instance.
type HandleFunc func(p *rmr.Proc) Abortable

// Factory builds one lock instance in m, sized for capacity participants,
// and returns the per-process handle constructor. w is the tree arity for
// the paper's tree-based locks; locks without a tree ignore it. The memory
// may host fewer runners than capacity (the point-contention setup).
type Factory func(m *rmr.Memory, w, capacity int) (HandleFunc, error)

// Optional capability interfaces. A handle advertises a capability by
// implementing the interface; consumers type-assert and degrade gracefully
// when the assertion fails.

// Slotted is implemented by handles of FCFS queue locks that expose the
// queue slot their doorway step assigned (-1 before Enter). The doorway
// order defines the FCFS order.
type Slotted interface {
	Slot() int
}

// PhaseAnnotated marks handles whose Enter/Exit annotate the passage with
// rmr passage phases (rmr.Proc.EnterPhase), so phase-resolved Stats rows
// and trace spans are meaningful for this lock. Every lock in this
// repository annotates phases; the marker exists so the conformance suite
// can assert it and so external locks can opt out explicitly.
type PhaseAnnotated interface {
	// PhaseAnnotated reports whether the handle declares passage phases.
	PhaseAnnotated() bool
}

// AnnotatesPhases reports whether h declares passage phases: true unless h
// explicitly opts out via the PhaseAnnotated capability. The conformance
// suite combines this with an rmr.Stats run to verify the annotations.
func AnnotatesPhases(h Abortable) bool {
	if pa, ok := h.(PhaseAnnotated); ok {
		return pa.PhaseAnnotated()
	}
	return true
}
