package tournament

import (
	"testing"

	"sublock/internal/locktest"
	"sublock/rmr"
)

func factory(m *rmr.Memory, nprocs int) (func(p *rmr.Proc) locktest.Handle, error) {
	l, err := New(m, nprocs)
	if err != nil {
		return nil, err
	}
	return func(p *rmr.Proc) locktest.Handle { return l.Handle(p) }, nil
}

func TestValidation(t *testing.T) {
	m := rmr.NewMemory(rmr.CC, 1, nil)
	if _, err := New(m, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestHeight(t *testing.T) {
	for _, tt := range []struct{ n, want int }{
		{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {1024, 10},
	} {
		m := rmr.NewMemory(rmr.CC, 1, nil)
		l, err := New(m, tt.n)
		if err != nil {
			t.Fatal(err)
		}
		if l.Height() != tt.want {
			t.Errorf("Height(n=%d) = %d, want %d", tt.n, l.Height(), tt.want)
		}
	}
}

func TestSequential(t *testing.T) {
	m := rmr.NewMemory(rmr.CC, 4, nil)
	l, err := New(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		h := l.Handle(m.Proc(i))
		if !h.Enter() {
			t.Fatalf("process %d failed to enter", i)
		}
		h.Exit()
	}
}

func TestMutualExclusion(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		res := locktest.Run(t, rmr.CC, 11, seed, factory, nil)
		locktest.RequireAllEntered(t, res, seed, nil)
	}
}

func TestAborts(t *testing.T) {
	// An aborter that wins every CAS without waiting never observes its
	// signal and legitimately enters, so only liveness of the non-aborters
	// (plus mutual exclusion, checked by Run) is asserted.
	aborters := map[int]bool{2: true, 6: true, 7: true}
	for seed := int64(0); seed < 25; seed++ {
		res := locktest.Run(t, rmr.CC, 9, seed, factory, aborters)
		locktest.RequireAllEntered(t, res, seed, aborters)
	}
}

func TestAbortReleasesHeldNodes(t *testing.T) {
	// A process that aborts halfway up must leave no node held, or its
	// sibling subtree deadlocks. Script: proc0 holds the root; proc2 climbs
	// one level and aborts; proc3 (proc2's level-1 sibling) must then
	// acquire once proc0 releases.
	const n = 4
	c := rmr.NewController(n)
	m := rmr.NewMemory(rmr.CC, n, nil)
	l, err := New(m, n)
	if err != nil {
		t.Fatal(err)
	}
	handles := make([]*Handle, n)
	for i := range handles {
		handles[i] = l.Handle(m.Proc(i))
	}
	m.SetGate(c)

	var ok0 bool
	c.Go(0, func() {
		ok0 = handles[0].Enter()
		handles[0].Exit()
	})
	c.StepN(0, 4) // level1: read+CAS, root: read+CAS → in CS

	res := make([]bool, n)
	c.Go(2, func() { res[2] = handles[2].Enter() })
	c.StepN(2, 3) // level1 {2,3}: read+CAS (held), root: read (busy) → spinning
	m.Proc(2).SignalAbort()
	c.Finish(2, 1000)
	if res[2] {
		t.Fatal("aborter entered")
	}

	c.Go(3, func() {
		res[3] = handles[3].Enter()
		handles[3].Exit()
	})
	c.Finish(0, 1000)
	c.Finish(3, 100_000)
	c.Wait()
	if !ok0 {
		t.Fatal("holder failed")
	}
	if !res[3] {
		t.Fatal("sibling deadlocked: abort did not release held nodes")
	}
}

func TestPassageCostIsLogN(t *testing.T) {
	// Every passage — even uncontended — pays Θ(log N): the shape Table 1's
	// Jayanti row contributes to the comparison.
	var costs []int64
	for _, n := range []int{4, 16, 64, 256, 1024} {
		m := rmr.NewMemory(rmr.CC, n, nil)
		l, err := New(m, n)
		if err != nil {
			t.Fatal(err)
		}
		p := m.Proc(0)
		h := l.Handle(p)
		before := p.RMRs()
		if !h.Enter() {
			t.Fatal("Enter failed")
		}
		h.Exit()
		cost := p.RMRs() - before
		// Exactly 3 RMRs per level uncontended: read (miss), CAS, release
		// write. The read after our own CAS is cached.
		if want := int64(3 * l.Height()); cost != want {
			t.Errorf("n=%d: passage RMRs = %d, want %d", n, cost, want)
		}
		costs = append(costs, cost)
	}
	for i := 1; i < len(costs); i++ {
		if costs[i] <= costs[i-1] {
			t.Fatalf("passage cost did not grow with N: %v", costs)
		}
	}
}
