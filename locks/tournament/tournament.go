// Package tournament implements an abortable binary arbitration-tree
// ("tournament") lock: each process owns a leaf of a binary tree and climbs
// to the root, acquiring a two-competitor CAS lock at every internal node;
// holding the root is holding the lock. Aborting releases the nodes
// acquired so far and leaves.
//
// It stands in for Jayanti's abortable lock (PODC 2003) in the Table 1
// experiments: same primitives (CAS), same Θ(log N) RMR shape for every
// passage — including abort-free ones — which is the column the experiments
// contrast with the paper's O(1)/O(log_W A) costs. Unlike Jayanti's
// algorithm it is not FCFS and not adaptive to point contention; see
// DESIGN.md ("Substitutions") for why that does not affect the comparison.
package tournament

import (
	"fmt"

	"sublock/locks"
	"sublock/rmr"
)

func init() {
	locks.Register(locks.Info{
		Name:      "tournament",
		Summary:   "Jayanti-shaped abortable binary arbitration-tree lock: Θ(log N) RMRs per passage (Table 1 row 2)",
		Abortable: true,
		Labels:    []string{"tournament/"},
		// Ids are assigned to fixed arbitration-tree leaves; which internal
		// nodes a process competes at is a function of its id, so permuting
		// ids permutes the contention pattern.
		IDSymmetric: false,
		New: func(m *rmr.Memory, _, capacity int) (locks.HandleFunc, error) {
			l, err := New(m, capacity)
			if err != nil {
				return nil, err
			}
			return func(p *rmr.Proc) locks.Abortable { return l.Handle(p) }, nil
		},
	})
}

// Lock is an abortable tournament lock for up to N processes.
type Lock struct {
	n      int
	height int        // number of internal levels
	levels []rmr.Addr // levels[l] = base of level l+1's words (1-based levels)
}

// New allocates a tournament lock for n processes (ids 0..n-1) in m.
func New(m *rmr.Memory, n int) (*Lock, error) {
	if n < 1 {
		return nil, fmt.Errorf("tournament: n=%d must be positive", n)
	}
	l := &Lock{n: n, height: 1}
	for size := 2; size < n; size *= 2 {
		l.height++
	}
	l.levels = make([]rmr.Addr, l.height+1)
	width := 1 << (l.height - 1)
	for lvl := 1; lvl <= l.height; lvl++ {
		l.levels[lvl] = m.AllocN(width, 0)
		m.Label(l.levels[lvl], width, fmt.Sprintf("tournament/level%d", lvl))
		width /= 2
	}
	return l, nil
}

// Height returns the number of internal tree levels (⌈log₂ N⌉, minimum 1).
func (l *Lock) Height() int { return l.height }

// Handle returns process p's handle. The process id must be < N.
func (l *Lock) Handle(p *rmr.Proc) *Handle {
	if p.ID() >= l.n {
		panic(fmt.Sprintf("tournament: process id %d out of range for n=%d", p.ID(), l.n))
	}
	return &Handle{l: l, p: p}
}

// Handle is one process's interface to the lock.
type Handle struct {
	l    *Lock
	p    *rmr.Proc
	held int // number of levels currently held (from level 1 upward)
}

// node returns the address of the arbitration word on p's path at level lvl.
func (h *Handle) node(lvl int) rmr.Addr {
	return h.l.levels[lvl] + rmr.Addr(h.p.ID()>>uint(lvl))
}

// Enter climbs the tree, acquiring every node on the path to the root. It
// returns false — after releasing any nodes already held — if the abort
// signal arrives while waiting at some level.
func (h *Handle) Enter() bool {
	p := h.p
	me := uint64(p.ID()) + 1
	// The tournament has no doorway: the whole climb is contended waiting.
	p.EnterPhase(rmr.PhaseWaiting)
	for lvl := 1; lvl <= h.l.height; lvl++ {
		a := h.node(lvl)
		for {
			v := p.Read(a)
			if v == 0 && p.CAS(a, 0, me) {
				break
			}
			if p.AbortSignal() {
				p.EnterPhase(rmr.PhaseAbort)
				h.releaseHeld()
				p.EnterPhase(rmr.PhaseIdle)
				return false
			}
			p.Wait(a, v) // the holder's releasing write clears the node
		}
		h.held = lvl
	}
	p.EnterPhase(rmr.PhaseCS)
	return true
}

// Exit releases the lock: every node on the path, root first so the next
// winner reaches the critical section as early as possible.
func (h *Handle) Exit() {
	h.p.EnterPhase(rmr.PhaseExit)
	h.releaseHeld()
	h.p.EnterPhase(rmr.PhaseIdle)
}

func (h *Handle) releaseHeld() {
	for lvl := h.held; lvl >= 1; lvl-- {
		h.p.Write(h.node(lvl), 0)
	}
	h.held = 0
}
