// Package conformance is the registry-wide lock test battery: every lock
// registered in sublock/locks is run, by name and without lock-specific
// code, through the properties the repository promises for all of them —
// mutual exclusion, schedule termination (deadlock freedom for the given
// workload), bounded abort responsiveness, and RMR-attribution invariants
// (the stats matrix conserves every charged RMR and labeled words carry the
// registered prefixes).
//
// The suite's own tests iterate locks.Infos(), so registering a lock is
// what opts it in: a new lock package gets the whole battery from its one
// blank import in locks/all. The exported Test entry point also lets an
// external lock package run the battery against its own registration.
//
// Two modes: the seeded checks here always run, and the bounded-exhaustive
// schedule enumeration (TestExhaustive in this package's test suite) is
// skipped under -short.
package conformance

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"sublock/locks"
	_ "sublock/locks/all"
	"sublock/rmr"
)

const (
	// defaultW is the tree arity handed to tree-based locks; locks without
	// a tree ignore it.
	defaultW = 4
	// stepBudget bounds a seeded schedule; exceeding it is a termination
	// failure.
	stepBudget = 100_000_000
	// abortBudget bounds the shared-memory steps an aborting waiter may
	// take between receiving the signal and returning from Enter. The
	// paper's locks abort in O(min(k, log W N)) RMRs; the budget is loose
	// enough for every registered baseline and tight enough to catch a
	// waiter that ignores the signal.
	abortBudget = 50_000
)

// Models returns the memory models info supports: CC always, DSM unless
// the lock is CC-only.
func Models(info locks.Info) []rmr.Model {
	if info.CCOnly {
		return []rmr.Model{rmr.CC}
	}
	return []rmr.Model{rmr.CC, rmr.DSM}
}

// Test runs the seeded conformance battery for one registered lock as
// subtests of t, once per supported memory model.
func Test(t *testing.T, info locks.Info) {
	for _, model := range Models(info) {
		model := model
		t.Run(strings.ToLower(model.String()), func(t *testing.T) {
			t.Run("mutex", func(t *testing.T) { testMutex(t, info, model) })
			if info.Abortable {
				t.Run("abort-mix", func(t *testing.T) { testAbortMix(t, info, model) })
				t.Run("abort-responsive", func(t *testing.T) { testAbortResponsive(t, info, model) })
				t.Run("abort-before-entry", func(t *testing.T) { testAbortBeforeEntry(t, info, model) })
			}
			t.Run("attribution", func(t *testing.T) { testAttribution(t, info, model) })
			t.Run("cost-transparency", func(t *testing.T) { testCostTransparency(t, info, model) })
			if !info.OneShot {
				t.Run("multi-passage", func(t *testing.T) { testMultiPassage(t, info, model) })
			}
		})
	}
}

// runResult reports one seeded run of runPassages.
type runResult struct {
	entered []bool
	// annotates reports whether the lock's handles declare passage phases
	// (locks.AnnotatesPhases), gating the passage-accounting checks.
	annotates bool
}

// runPassages executes one Enter/CS/Exit passage per process under a seeded
// random schedule, delivering the abort signal to processes [0, aborters)
// before they start. It fails t on mutual-exclusion violations and
// non-terminating schedules. When st is non-nil it is installed as the
// memory's stats collector before any process runs.
func runPassages(t *testing.T, info locks.Info, model rmr.Model, nprocs, aborters int, seed int64, st **rmr.Stats) (*rmr.Memory, runResult) {
	t.Helper()
	s := rmr.NewScheduler(nprocs, rmr.RandomPick(seed))
	m := rmr.NewMemory(model, nprocs, nil)
	fn, err := locks.Build(m, info.Name, defaultW, nprocs)
	if err != nil {
		t.Fatalf("seed %d: build: %v", seed, err)
	}
	if st != nil {
		// Sized after Build so the label dimension covers everything the
		// lock interned during construction.
		*st = rmr.NewStats(m)
		m.SetStats(*st)
	}
	m.SetGate(s)

	res := runResult{entered: make([]bool, nprocs), annotates: true}
	var inCS, violations atomic.Int32
	for i := 0; i < nprocs; i++ {
		p := m.Proc(i)
		if i < aborters {
			p.SignalAbort()
		}
		h := fn(p)
		if i == 0 {
			res.annotates = locks.AnnotatesPhases(h)
		}
		i := i
		s.Go(func() {
			if h.Enter() {
				if inCS.Add(1) > 1 {
					violations.Add(1)
				}
				res.entered[i] = true
				inCS.Add(-1)
				h.Exit()
			}
		})
	}
	if err := s.Run(stepBudget); err != nil {
		// Release the stalled processes before failing: deliver abort
		// signals so waiters leave their spin loops, then drain the gate.
		for i := 0; i < nprocs; i++ {
			m.Proc(i).SignalAbort()
		}
		s.Drain()
		t.Fatalf("seed %d: schedule did not terminate: %v", seed, err)
	}
	if v := violations.Load(); v != 0 {
		t.Fatalf("seed %d: mutual exclusion violated %d times", seed, v)
	}
	return m, res
}

// testMutex: with no aborts, every process completes exactly one passage
// under mutual exclusion, across several seeds.
func testMutex(t *testing.T, info locks.Info, model rmr.Model) {
	const nprocs = 6
	for seed := int64(0); seed < 5; seed++ {
		_, res := runPassages(t, info, model, nprocs, 0, seed, nil)
		for i, e := range res.entered {
			if !e {
				t.Fatalf("seed %d: process %d never entered", seed, i)
			}
		}
	}
}

// testAbortMix: with a third of the processes signalled to abort before
// starting, mutual exclusion holds and every non-aborter still completes
// (deadlock freedom is not lost to aborts).
func testAbortMix(t *testing.T, info locks.Info, model rmr.Model) {
	const nprocs, aborters = 6, 2
	for seed := int64(0); seed < 5; seed++ {
		_, res := runPassages(t, info, model, nprocs, aborters, seed, nil)
		for i := aborters; i < nprocs; i++ {
			if !res.entered[i] {
				t.Fatalf("seed %d: non-aborting process %d never entered", seed, i)
			}
		}
	}
}

// testAbortResponsive scripts the bounded-abort property with a hand-driven
// controller: a holder is parked inside the critical section, a waiter is
// enqueued and left spinning, and after SignalAbort the waiter must return
// false from Enter within abortBudget shared-memory steps — an abort must
// not wait for the lock to be released.
func testAbortResponsive(t *testing.T, info locks.Info, model rmr.Model) {
	const n = 2
	c := rmr.NewController(n)
	m := rmr.NewMemory(model, n, nil)
	fn, err := locks.Build(m, info.Name, defaultW, n)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	m.SetGate(c)
	h0, h1 := fn(m.Proc(0)), fn(m.Proc(1))

	finish := func(pid, budget int, what string) int {
		t.Helper()
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("%s: %v", what, r)
			}
		}()
		return c.Finish(pid, budget)
	}

	// The holder runs Enter and then pauses at the gate on Exit's first
	// shared-memory operation — holding the lock until stepped again.
	var holderIn atomic.Bool
	var holderEntered, waiterEntered bool
	c.Go(0, func() {
		if h0.Enter() {
			holderEntered = true
			holderIn.Store(true)
			h0.Exit()
		}
	})
	for i := 0; i < abortBudget && !holderIn.Load(); i++ {
		if !c.Step(0) {
			break
		}
	}
	if !holderIn.Load() {
		t.Fatal("uncontended holder failed to enter")
	}

	// The waiter enqueues and spins against the held lock.
	c.Go(1, func() {
		waiterEntered = h1.Enter()
		if waiterEntered {
			h1.Exit()
		}
	})
	c.StepN(1, 200)

	// The signal arrives while the lock is still held: the waiter must
	// finish — with a false Enter — within the budget.
	m.Proc(1).SignalAbort()
	finish(1, abortBudget, "aborting waiter did not return")
	if waiterEntered {
		t.Fatal("waiter entered the CS despite holding an abort signal against a held lock")
	}

	finish(0, abortBudget, "holder's Exit did not complete")
	c.Wait()
	if !holderEntered {
		t.Fatal("holder's Enter returned false without an abort signal")
	}
}

// testAbortBeforeEntry scripts the already-delivered signal: the abort
// arrives before the waiter's Enter takes its first shared-memory step,
// while the lock is held. The attempt must return false within abortBudget
// steps — a pre-signalled process must be turned away at (or before) the
// doorway, not committed to waiting against a lock that is never released
// within the budget.
func testAbortBeforeEntry(t *testing.T, info locks.Info, model rmr.Model) {
	const n = 2
	c := rmr.NewController(n)
	m := rmr.NewMemory(model, n, nil)
	fn, err := locks.Build(m, info.Name, defaultW, n)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	m.SetGate(c)
	h0, h1 := fn(m.Proc(0)), fn(m.Proc(1))

	finish := func(pid, budget int, what string) {
		t.Helper()
		defer func() {
			if r := recover(); r != nil {
				t.Fatalf("%s: %v", what, r)
			}
		}()
		c.Finish(pid, budget)
	}

	// The holder acquires and pauses at the gate inside Exit, keeping the
	// lock held for the whole scripted scenario.
	var holderIn atomic.Bool
	var holderEntered, waiterEntered bool
	c.Go(0, func() {
		if h0.Enter() {
			holderEntered = true
			holderIn.Store(true)
			h0.Exit()
		}
	})
	for i := 0; i < abortBudget && !holderIn.Load(); i++ {
		if !c.Step(0) {
			break
		}
	}
	if !holderIn.Load() {
		t.Fatal("uncontended holder failed to enter")
	}

	// The signal lands before the waiter's Enter is even started.
	m.Proc(1).SignalAbort()
	c.Go(1, func() {
		waiterEntered = h1.Enter()
		if waiterEntered {
			h1.Exit()
		}
	})
	finish(1, abortBudget, "pre-signalled waiter did not return")
	if waiterEntered {
		t.Fatal("waiter entered the CS despite a signal delivered before Enter against a held lock")
	}

	finish(0, abortBudget, "holder's Exit did not complete")
	c.Wait()
	if !holderEntered {
		t.Fatal("holder's Enter returned false without an abort signal")
	}
}

// testAttribution runs a stats-instrumented mixed workload and checks the
// RMR-attribution invariants: the (process × phase × label) matrix
// conserves every charged RMR, every labeled word carries one of the
// registered label prefixes, and the passage accounting matches the
// observed passage outcomes.
func testAttribution(t *testing.T, info locks.Info, model rmr.Model) {
	const nprocs = 6
	aborters := 0
	if info.Abortable {
		aborters = 2
	}
	var st *rmr.Stats
	m, res := runPassages(t, info, model, nprocs, aborters, 1, &st)
	snap := st.Snapshot()

	// Conservation: stats were installed before any process ran, so each
	// process's matrix row must sum to its simulator RMR counter exactly.
	for i := 0; i < nprocs; i++ {
		var sum int64
		for ph := rmr.Phase(0); ph < rmr.NumPhases; ph++ {
			sum += snap.ProcPhaseRMRs(i, ph)
		}
		if got := m.Proc(i).RMRs(); sum != got {
			t.Errorf("process %d: stats matrix sums to %d RMRs, simulator charged %d", i, sum, got)
		}
	}

	// Labels: everything the lock interned must carry a registered prefix,
	// so per-label reports attribute its RMRs to the right lock.
	if len(info.Labels) > 0 {
		for _, name := range m.Labels() {
			if name == "" {
				continue
			}
			ok := false
			for _, prefix := range info.Labels {
				if strings.HasPrefix(name, prefix) {
					ok = true
					break
				}
			}
			if !ok {
				t.Errorf("interned label %q outside the registered prefixes %v", name, info.Labels)
			}
		}
	}

	// Passage accounting (driven by the locks' phase annotations): every
	// process ran exactly one passage, completed iff it entered.
	var entered int64
	for _, e := range res.entered {
		if e {
			entered++
		}
	}
	if res.annotates {
		if snap.Passages != entered {
			t.Errorf("stats counted %d completed passages, %d processes entered", snap.Passages, entered)
		}
		if snap.Passages+snap.AbortedPassages != int64(nprocs) {
			t.Errorf("stats counted %d finished passages (completed %d + aborted %d), want %d",
				snap.Passages+snap.AbortedPassages, snap.Passages, snap.AbortedPassages, nprocs)
		}
	}
}

// costRun is one fully-observed seeded run for the cost-transparency check:
// everything a cost model must NOT change (schedule, per-process RMR and
// step counters, passage outcomes, final memory words, and the event stream
// up to its simulated-time annotations).
type costRun struct {
	schedule []int
	events   []rmr.Event
	rmrs     []int64
	steps    []int64
	entered  []bool
	words    []uint64
}

// testCostTransparency is the registry-wide observe-only guarantee: running
// the same seeded schedule under a non-Unit cost model yields a
// bit-identical execution — the identical schedule, RMR and step counters,
// passage outcomes, memory contents, and trace — except for the events'
// Cost and STime annotations, which are exactly what the model is for. A
// cost model that steered an execution would invalidate every priced
// experiment, so this is checked for every lock under every memory model.
func testCostTransparency(t *testing.T, info locks.Info, model rmr.Model) {
	const nprocs, seed = 6, 3
	aborters := 0
	if info.Abortable {
		aborters = 2
	}
	run := func(cm rmr.CostModel) costRun {
		t.Helper()
		s := rmr.NewScheduler(nprocs, rmr.RandomPick(seed))
		s.RecordSchedule(true)
		m := rmr.NewMemory(model, nprocs, nil)
		var mu sync.Mutex
		var events []rmr.Event
		m.SetTracer(func(ev rmr.Event) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		})
		fn, err := locks.Build(m, info.Name, defaultW, nprocs)
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		if cm != nil {
			m.SetCostModel(cm)
		}
		m.SetGate(s)
		r := costRun{entered: make([]bool, nprocs)}
		var inCS, violations atomic.Int32
		for i := 0; i < nprocs; i++ {
			p := m.Proc(i)
			if i < aborters {
				p.SignalAbort()
			}
			h := fn(p)
			i := i
			s.Go(func() {
				if h.Enter() {
					if inCS.Add(1) > 1 {
						violations.Add(1)
					}
					r.entered[i] = true
					inCS.Add(-1)
					h.Exit()
				}
			})
		}
		if err := s.Run(stepBudget); err != nil {
			for i := 0; i < nprocs; i++ {
				m.Proc(i).SignalAbort()
			}
			s.Drain()
			t.Fatalf("schedule did not terminate: %v", err)
		}
		if v := violations.Load(); v != 0 {
			t.Fatalf("mutual exclusion violated %d times", v)
		}
		r.schedule = s.Schedule()
		r.events = events
		for i := 0; i < nprocs; i++ {
			r.rmrs = append(r.rmrs, m.Proc(i).RMRs())
			r.steps = append(r.steps, m.Proc(i).Steps())
		}
		for a := rmr.Addr(0); int(a) < m.Size(); a++ {
			r.words = append(r.words, m.Peek(a))
		}
		return r
	}

	cm := rmr.CostModel(rmr.NewCCNuma(9))
	if model == rmr.DSM {
		cm = rmr.NewDsmRemote(9)
	}
	base, priced := run(nil), run(cm)

	if len(base.schedule) != len(priced.schedule) {
		t.Fatalf("schedule length changed under cost=%s: %d -> %d",
			cm.Name(), len(base.schedule), len(priced.schedule))
	}
	for i := range base.schedule {
		if base.schedule[i] != priced.schedule[i] {
			t.Fatalf("schedule diverged at step %d under cost=%s: proc %d -> %d",
				i, cm.Name(), base.schedule[i], priced.schedule[i])
		}
	}
	for i := 0; i < nprocs; i++ {
		if base.rmrs[i] != priced.rmrs[i] {
			t.Errorf("proc %d: RMRs changed under cost=%s: %d -> %d", i, cm.Name(), base.rmrs[i], priced.rmrs[i])
		}
		if base.steps[i] != priced.steps[i] {
			t.Errorf("proc %d: steps changed under cost=%s: %d -> %d", i, cm.Name(), base.steps[i], priced.steps[i])
		}
		if base.entered[i] != priced.entered[i] {
			t.Errorf("proc %d: passage outcome changed under cost=%s: %v -> %v",
				i, cm.Name(), base.entered[i], priced.entered[i])
		}
	}
	for a, v := range base.words {
		if priced.words[a] != v {
			t.Errorf("word %d: final value changed under cost=%s: %d -> %d", a, cm.Name(), v, priced.words[a])
		}
	}
	if len(base.events) != len(priced.events) {
		t.Fatalf("trace length changed under cost=%s: %d -> %d events",
			cm.Name(), len(base.events), len(priced.events))
	}
	for i := range base.events {
		b, p := base.events[i], priced.events[i]
		// Cost and STime are the model's output — the one legitimate
		// difference. Everything else must match bit for bit.
		b.Cost, b.STime = 0, 0
		p.Cost, p.STime = 0, 0
		if b != p {
			t.Fatalf("event %d changed under cost=%s:\n  unit:   %+v\n  priced: %+v",
				i, cm.Name(), base.events[i], priced.events[i])
		}
	}
}

// testMultiPassage: a handle of a non-one-shot lock supports repeated
// passages — every process completes several rounds under mutual exclusion.
func testMultiPassage(t *testing.T, info locks.Info, model rmr.Model) {
	const nprocs, rounds = 4, 3
	s := rmr.NewScheduler(nprocs, rmr.RandomPick(7))
	m := rmr.NewMemory(model, nprocs, nil)
	fn, err := locks.Build(m, info.Name, defaultW, nprocs)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	m.SetGate(s)

	var inCS, violations atomic.Int32
	completed := make([]int, nprocs)
	for i := 0; i < nprocs; i++ {
		h := fn(m.Proc(i))
		i := i
		s.Go(func() {
			for r := 0; r < rounds; r++ {
				if !h.Enter() {
					return
				}
				if inCS.Add(1) > 1 {
					violations.Add(1)
				}
				inCS.Add(-1)
				h.Exit()
				completed[i]++
			}
		})
	}
	if err := s.Run(stepBudget); err != nil {
		t.Fatalf("schedule did not terminate: %v", err)
	}
	if v := violations.Load(); v != 0 {
		t.Fatalf("mutual exclusion violated %d times", v)
	}
	for i, got := range completed {
		if got != rounds {
			t.Errorf("process %d completed %d/%d passages", i, got, rounds)
		}
	}
}

// Covered returns the sorted names the conformance suite will run: exactly
// the registry. It exists for the CI guard, which diffs this against the
// lock packages present on disk so a package that forgets to register (and
// would silently escape the suite) fails the build.
func Covered() []string {
	return locks.Names()
}
