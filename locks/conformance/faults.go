package conformance

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"sublock/locks"
	"sublock/rmr"
)

const (
	// faultStepBudget bounds a fault-injected schedule. A crash can
	// legitimately wedge the survivors — none of the registered algorithms
	// claims crash recoverability, so a victim that dies holding the lock
	// (or mid-queue) may block its successors forever. The battery's
	// promise is that such a run degrades to a prompt step-budget error
	// with the fault attributed, never a wall-clock hang, so the budget is
	// far below the regular stepBudget.
	faultStepBudget = 300_000
	// stallWindow is the stall duration (in global steps) the stall and
	// abort-while-stalled checks inject.
	stallWindow = 400
)

// crashPoints are the victim operation attempts the crash sweep strikes:
// early doorway operations, the spin loop, and deep into the passage.
var crashPoints = []int{1, 2, 3, 5, 8, 13}

// TestFaults runs the fault-injection battery for one registered lock as
// subtests of t, once per supported memory model: crash-stop sweeps, stall
// windows, panic containment, abort-while-stalled responsiveness, and
// watchdog-clean seeded runs. Registering a lock opts it in, exactly like
// the seeded battery in Test.
func TestFaults(t *testing.T, info locks.Info) {
	for _, model := range Models(info) {
		model := model
		t.Run(strings.ToLower(model.String()), func(t *testing.T) {
			t.Run("crash", func(t *testing.T) { testCrashSweep(t, info, model) })
			t.Run("stall", func(t *testing.T) { testStallAll(t, info, model) })
			t.Run("panic", func(t *testing.T) { testPanicContained(t, info, model) })
			if info.Abortable {
				t.Run("abort-while-stalled", func(t *testing.T) { testAbortWhileStalled(t, info, model) })
			}
			t.Run("watchdog-clean", func(t *testing.T) { testWatchdogClean(t, info, model) })
		})
	}
}

// faultRun is one seeded passage-per-process run with a pre-configured
// scheduler (fault plan, watchdog, recording). It checks mutual exclusion
// itself and returns the run error for the caller to classify. On a
// non-nil error the processes are still parked at the gate; the caller
// must end with release().
type faultRun struct {
	s       *rmr.Scheduler
	m       *rmr.Memory
	entered []bool
	err     error
}

// release unwinds a run that ended early. A crash can wedge survivors
// beyond cooperation — a non-abortable lock's spin loop over an abandoned
// lock never exits — so the stalled run is killed, not drained: every
// released process is unwound at its next operation.
func (fr *faultRun) release(info locks.Info) {
	if fr.err == nil {
		return
	}
	fr.s.DrainKill()
}

// runFaulted drives one seeded run of nprocs single passages with
// configure applied to the scheduler before any process launches.
func runFaulted(t *testing.T, info locks.Info, model rmr.Model, nprocs int, seed int64, configure func(*rmr.Scheduler)) *faultRun {
	t.Helper()
	s := rmr.NewScheduler(nprocs, rmr.RandomPick(seed))
	s.RecordSchedule(true)
	configure(s)
	m := rmr.NewMemory(model, nprocs, nil)
	fn, err := locks.Build(m, info.Name, defaultW, nprocs)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	m.SetGate(s)
	fr := &faultRun{s: s, m: m, entered: make([]bool, nprocs)}
	var inCS, violations atomic.Int32
	for i := 0; i < nprocs; i++ {
		i := i
		h := fn(m.Proc(i))
		s.Go(func() {
			if h.Enter() {
				if inCS.Add(1) > 1 {
					violations.Add(1)
				}
				fr.entered[i] = true
				inCS.Add(-1)
				h.Exit()
			}
		})
	}
	fr.err = s.Run(faultStepBudget)
	if v := violations.Load(); v != 0 {
		dumpArtifact(t, s.Faults(), s.Schedule())
		fr.release(info)
		t.Fatalf("seed %d: mutual exclusion violated %d times under faults", seed, v)
	}
	return fr
}

// testCrashSweep crashes process 0 at each crash point of its passage. A
// clean finish must show every survivor completing; a wedged finish (the
// crash abandoned state the survivors need) must degrade to the step
// budget with the crash attributed — and must only happen when the crash
// actually fired.
func testCrashSweep(t *testing.T, info locks.Info, model rmr.Model) {
	const nprocs = 6
	for _, op := range crashPoints {
		plan := &rmr.FaultPlan{Faults: []rmr.FaultSpec{{Proc: 0, Kind: rmr.FaultCrash, Op: op}}}
		fr := runFaulted(t, info, model, nprocs, 1, func(s *rmr.Scheduler) { s.SetFaultPlan(plan) })
		faults := fr.s.Faults()
		switch {
		case fr.err == nil:
			// The run terminated: every process the crash did not take
			// must have completed its passage.
			crashed := len(faults) == 1 && faults[0].Kind == rmr.FaultCrash
			for i, e := range fr.entered {
				if i == 0 && crashed {
					continue
				}
				if !e {
					dumpArtifact(t, faults, fr.s.Schedule())
					t.Fatalf("crash at op %d: survivor %d never completed in a terminating run", op, i)
				}
			}
		case errors.Is(fr.err, rmr.ErrStepLimit):
			if len(faults) != 1 {
				dumpArtifact(t, faults, fr.s.Schedule())
				fr.release(info)
				t.Fatalf("crash at op %d: schedule wedged with no injected fault fired: %v", op, fr.err)
			}
			if len(faults[0].Schedule) == 0 {
				t.Fatalf("crash at op %d: attributed fault carries no replay schedule", op)
			}
			fr.release(info)
		default:
			dumpArtifact(t, faults, fr.s.Schedule())
			fr.release(info)
			t.Fatalf("crash at op %d: %v", op, fr.err)
		}
	}
}

// testStallAll stalls every process at its first operation with staggered
// windows: stalls delay but never kill, so the run must terminate with
// every passage complete and every stall attributed.
func testStallAll(t *testing.T, info locks.Info, model rmr.Model) {
	const nprocs = 4
	plan := &rmr.FaultPlan{}
	for i := 0; i < nprocs; i++ {
		plan.Faults = append(plan.Faults, rmr.FaultSpec{
			Proc: i, Kind: rmr.FaultStall, Op: 1, Delay: (i + 1) * (stallWindow / nprocs),
		})
	}
	fr := runFaulted(t, info, model, nprocs, 1, func(s *rmr.Scheduler) { s.SetFaultPlan(plan) })
	if fr.err != nil {
		dumpArtifact(t, fr.s.Faults(), fr.s.Schedule())
		fr.release(info)
		t.Fatalf("stalled run did not terminate: %v", fr.err)
	}
	for i, e := range fr.entered {
		if !e {
			t.Fatalf("stalled process %d never completed (a stall must only delay)", i)
		}
	}
	if faults := fr.s.Faults(); len(faults) != nprocs {
		t.Fatalf("%d stalls attributed, want %d: %v", len(faults), nprocs, faults)
	}
}

// testPanicContained injects a panic inside process 0's critical section:
// the host test binary must survive, the run must end with a *rmr.FaultError
// attributing the panic to process 0 with a replayable schedule, and the
// gate must not deadlock even though the lock is never released.
func testPanicContained(t *testing.T, info locks.Info, model rmr.Model) {
	const nprocs = 3
	s := rmr.NewScheduler(nprocs, rmr.RandomPick(2))
	s.RecordSchedule(true)
	m := rmr.NewMemory(model, nprocs, nil)
	fn, err := locks.Build(m, info.Name, defaultW, nprocs)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	m.SetGate(s)
	for i := 0; i < nprocs; i++ {
		h := fn(m.Proc(i))
		if i == 0 {
			s.Go(func() {
				if h.Enter() {
					panic("injected CS panic")
				}
			})
			continue
		}
		s.Go(func() {
			if h.Enter() {
				h.Exit()
			}
		})
	}
	runErr := s.Run(faultStepBudget)
	fr := &faultRun{s: s, m: m, entered: make([]bool, nprocs), err: runErr}
	defer fr.release(info)
	if !errors.Is(runErr, rmr.ErrPanicked) {
		dumpArtifact(t, s.Faults(), s.Schedule())
		t.Fatalf("Run = %v, want a contained panic", runErr)
	}
	var fe *rmr.FaultError
	if !errors.As(runErr, &fe) {
		t.Fatalf("Run = %T, want *rmr.FaultError", runErr)
	}
	if fe.Fault.Proc != 0 || fe.Fault.Value != "injected CS panic" {
		t.Fatalf("fault = %+v, want the injected panic attributed to process 0", fe.Fault)
	}
	if len(fe.Fault.Schedule) == 0 {
		t.Fatal("contained panic carries no replay schedule")
	}
}

// testAbortWhileStalled is the satellite coverage gap: an abort signal
// delivered while the waiter sits inside an injected stall window must
// still be honored within the abort budget once the window passes — the
// stall must not break abort responsiveness.
func testAbortWhileStalled(t *testing.T, info locks.Info, model rmr.Model) {
	const n = 2
	c := rmr.NewController(n)
	m := rmr.NewMemory(model, n, nil)
	fn, err := locks.Build(m, info.Name, defaultW, n)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	m.SetGate(c)
	h0, h1 := fn(m.Proc(0)), fn(m.Proc(1))

	// The holder pauses inside the critical section, keeping the lock held.
	var holderIn atomic.Bool
	var waiterEntered bool
	c.Go(0, func() {
		if h0.Enter() {
			holderIn.Store(true)
			h0.Exit()
		}
	})
	for i := 0; i < abortBudget && !holderIn.Load(); i++ {
		if !c.Step(0) {
			break
		}
	}
	if !holderIn.Load() {
		t.Fatal("uncontended holder failed to enter")
	}

	// The waiter enqueues, spins, and is then stalled; the abort signal
	// lands inside the window.
	c.Go(1, func() {
		waiterEntered = h1.Enter()
		if waiterEntered {
			h1.Exit()
		}
	})
	c.StepN(1, 200)
	c.StallNext(1, stallWindow)
	if !c.Stalled(1) {
		t.Fatal("waiter not stalled after StallNext")
	}
	m.Proc(1).SignalAbort()

	steps, err := c.FinishBudget(1, stallWindow+abortBudget)
	if err != nil {
		t.Fatalf("stalled aborter did not return: %v", err)
	}
	if steps < stallWindow {
		t.Fatalf("aborter finished in %d grants, want >= the %d-step stall window first", steps, stallWindow)
	}
	if waiterEntered {
		t.Fatal("waiter entered the CS despite an abort signal against a held lock")
	}
	if faults := c.Faults(); len(faults) != 1 || faults[0].Kind != rmr.FaultStall {
		t.Fatalf("faults = %v, want the injected stall attributed", faults)
	}

	if _, err := c.FinishBudget(0, abortBudget); err != nil {
		t.Fatalf("holder's Exit did not complete: %v", err)
	}
	if err := c.WaitBudget(abortBudget); err != nil {
		t.Fatalf("WaitBudget: %v", err)
	}
}

// testWatchdogClean runs seeded passages with the starvation watchdog
// armed at a bound no single-passage workload can legitimately cross
// (each process enters the critical section once, so a waiter is overtaken
// at most nprocs-1 times): the watchdog must stay silent.
func testWatchdogClean(t *testing.T, info locks.Info, model rmr.Model) {
	const nprocs = 6
	for seed := int64(0); seed < 3; seed++ {
		fr := runFaulted(t, info, model, nprocs, seed, func(s *rmr.Scheduler) { s.SetWatchdog(nprocs + 2) })
		if fr.err != nil {
			dumpArtifact(t, fr.s.Faults(), fr.s.Schedule())
			fr.release(info)
			t.Fatalf("seed %d: watchdog-armed run failed: %v", seed, fr.err)
		}
		for i, e := range fr.entered {
			if !e {
				t.Fatalf("seed %d: process %d never completed", seed, i)
			}
		}
	}
}

// dumpArtifact writes the fault report and replay schedule to
// $SUBLOCK_FAULT_DIR (one file per failing test, named after the test) so
// CI can upload fault-replay artifacts; it is a no-op when the variable is
// unset.
func dumpArtifact(t *testing.T, faults []rmr.Fault, schedule []int) {
	dir := os.Getenv("SUBLOCK_FAULT_DIR")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("fault artifact: %v", err)
		return
	}
	var b strings.Builder
	for _, flt := range faults {
		fmt.Fprintf(&b, "fault: %v\n", flt)
	}
	fmt.Fprintf(&b, "replay schedule: %v\n", schedule)
	name := strings.NewReplacer("/", "_", " ", "_").Replace(t.Name()) + ".txt"
	if err := os.WriteFile(filepath.Join(dir, name), []byte(b.String()), 0o644); err != nil {
		t.Logf("fault artifact: %v", err)
	}
}
