package conformance_test

import (
	"os"
	"strings"
	"testing"

	"sublock/locks"
	_ "sublock/locks/all"
)

// TestSymmetryAudit enforces the symmetry-flag audit: every registered
// lock must have a row in docs/MODEL.md's symmetry-audit table whose
// yes/no verdict matches its registered IDSymmetric flag, and the table
// must not name locks that do not exist. Go's zero value makes an
// *unset* IDSymmetric indistinguishable from a deliberate false at the
// type level; this table is where the deliberate stance (and its
// rationale) is recorded, so a new lock registered without an audit row
// fails here instead of silently defaulting.
func TestSymmetryAudit(t *testing.T) {
	rows := parseAuditTable(t, "../../docs/MODEL.md")

	registered := map[string]bool{}
	for _, in := range locks.Infos() {
		registered[in.Name] = true
		row, ok := rows[in.Name]
		if !ok {
			t.Errorf("lock %q registered but missing from the docs/MODEL.md symmetry-audit table", in.Name)
			continue
		}
		if row.symmetric != in.IDSymmetric {
			t.Errorf("lock %q: audit table says IDSymmetric=%v, registry says %v",
				in.Name, row.symmetric, in.IDSymmetric)
		}
		if strings.TrimSpace(row.rationale) == "" {
			t.Errorf("lock %q: audit row has no rationale", in.Name)
		}
	}
	for name := range rows {
		if !registered[name] {
			t.Errorf("audit table row %q names a lock that is not registered", name)
		}
	}
}

type auditRow struct {
	symmetric bool
	rationale string
}

// parseAuditTable extracts the markdown table between the
// symmetry-audit:begin/end markers: | `name` | yes/no | rationale |.
func parseAuditTable(t *testing.T, path string) map[string]auditRow {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read audit table: %v", err)
	}
	text := string(raw)
	const begin, end = "<!-- symmetry-audit:begin -->", "<!-- symmetry-audit:end -->"
	i := strings.Index(text, begin)
	j := strings.Index(text, end)
	if i < 0 || j < 0 || j < i {
		t.Fatalf("%s: symmetry-audit markers missing or out of order", path)
	}
	rows := map[string]auditRow{}
	for lineNo, line := range strings.Split(text[i+len(begin):j], "\n") {
		line = strings.TrimSpace(line)
		if line == "" || !strings.HasPrefix(line, "|") {
			continue
		}
		cells := strings.Split(strings.Trim(line, "|"), "|")
		if len(cells) != 3 {
			t.Fatalf("audit table line %d: want 3 cells, got %d: %q", lineNo, len(cells), line)
		}
		name := strings.Trim(strings.TrimSpace(cells[0]), "`")
		if name == "Lock" || strings.HasPrefix(name, "---") {
			continue // header or separator
		}
		verdict := strings.ToLower(strings.TrimSpace(cells[1]))
		row := auditRow{rationale: strings.TrimSpace(cells[2])}
		switch verdict {
		case "yes":
			row.symmetric = true
		case "no":
			row.symmetric = false
		default:
			t.Fatalf("audit table row %q: verdict %q is not yes/no", name, verdict)
		}
		if _, dup := rows[name]; dup {
			t.Fatalf("audit table row %q duplicated", name)
		}
		rows[name] = row
	}
	if len(rows) == 0 {
		t.Fatal("audit table has no rows")
	}
	return rows
}

// TestSymmetryAuditRegistrationComments spot-checks that the registration
// sites actually spell the flag out (the audit's second half): every
// locks.Register call site must contain an explicit "IDSymmetric:" field.
func TestSymmetryAuditRegistrationComments(t *testing.T) {
	// Registration files, relative to this package.
	files := []string{
		"../tas/tas.go",
		"../mcs/mcs.go",
		"../scott/scott.go",
		"../linearscan/linearscan.go",
		"../tournament/tournament.go",
		"../paper/paper.go",
	}
	for _, f := range files {
		raw, err := os.ReadFile(f)
		if err != nil {
			t.Fatalf("read %s: %v", f, err)
		}
		text := string(raw)
		regs := strings.Count(text, "locks.Register(")
		explicit := strings.Count(text, "IDSymmetric:")
		if regs == 0 {
			t.Errorf("%s: expected at least one locks.Register call", f)
		}
		if explicit < regs {
			t.Errorf("%s: %d locks.Register call(s) but only %d explicit IDSymmetric field(s); every registration must take a stance",
				f, regs, explicit)
		}
	}
	// The audit table and this list must cover the same registry: if a new
	// lock package registers elsewhere, fail loudly so it gets added here.
	names := map[string]bool{}
	for _, in := range locks.Infos() {
		names[in.Name] = true
	}
	if len(names) != 9 {
		var got []string
		for n := range names {
			got = append(got, n)
		}
		t.Errorf("registry has %d locks %v; update symmetry_audit_test.go's file list and docs/MODEL.md's audit table (want the audited 9)",
			len(names), got)
	}
}
