package conformance_test

import (
	"os"
	"testing"

	"sublock/internal/harness"
	"sublock/locks"
	"sublock/locks/conformance"
	"sublock/rmr"
)

// TestConformance runs the seeded battery against every registered lock —
// registering a lock is what opts it in, so a new lock package gets the
// whole suite from its blank import in locks/all.
func TestConformance(t *testing.T) {
	infos := locks.Infos()
	if len(infos) == 0 {
		t.Fatal("empty lock registry")
	}
	for _, info := range infos {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			t.Parallel()
			conformance.Test(t, info)
		})
	}
}

// TestFaultConformance runs the fault-injection battery — crash sweeps,
// stall windows, panic containment, abort-while-stalled, watchdog-clean —
// against every registered lock. Like the seeded battery, registration is
// what opts a lock in.
func TestFaultConformance(t *testing.T) {
	for _, info := range locks.Infos() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			t.Parallel()
			conformance.TestFaults(t, info)
		})
	}
}

// TestExhaustiveCrashRobust explores every registered abortable lock at
// N=2 under single crash-stop plans (harness.ExploreFaults): mutual
// exclusion must hold and every surviving non-aborter must complete in
// every schedule of every crash plan. Skipped under -short.
func TestExhaustiveCrashRobust(t *testing.T) {
	if testing.Short() {
		t.Skip("bounded-exhaustive exploration skipped in -short mode")
	}
	const (
		n                            = 2
		maxScheds                    = 3000
		minSteps, stepGrow, maxSteps = 14, 6, 56
	)
	for _, info := range locks.Infos() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			t.Parallel()
			explored := false
			for steps := minSteps; steps <= maxSteps; steps += stepGrow {
				res, _, err := harness.ExploreFaults(harness.ExploreConfig{
					Model: rmr.CC, Algo: harness.Algo(info.Name), W: 4, N: n,
					MaxSteps: steps, MaxSchedules: maxScheds, Workers: 2,
					Reduction: rmr.SleepSets,
				}, harness.Faults{CrashPoints: []int{1, 2, 3}})
				if err != nil {
					t.Fatalf("steps=%d: %v", steps, err)
				}
				if res.Explored > 0 {
					explored = true
					t.Logf("steps=%d: %d explored, %d pruned, %d equivalent across crash plans",
						steps, res.Explored, res.Pruned, res.Equivalent)
					break
				}
			}
			if !explored {
				t.Fatalf("no complete schedule within %d steps under crash plans", maxSteps)
			}
		})
	}
}

// TestExhaustive enumerates every schedule of bounded length for every
// registered lock at N=2 (bounded model checking via harness.Explore),
// without aborts and — for abortable locks — with one aborter whose signal
// the explorer places at every possible point. Partial-order reduction is
// on: the schedule budget buys equivalence classes instead of redundant
// reorderings of commuting steps, so the same cap reaches deeper into the
// tree. Skipped under -short.
func TestExhaustive(t *testing.T) {
	if testing.Short() {
		t.Skip("bounded-exhaustive exploration skipped in -short mode")
	}
	const (
		n         = 2
		maxScheds = 3000
		// The step bound starts small and grows until at least one complete
		// schedule fits: a passage of the long-lived transformation takes
		// ~24 shared-memory steps (~50 with bounded memory management) where
		// the one-shot lock needs ~10, and a fixed bound would either
		// explore nothing or waste the budget.
		minSteps, stepGrow, maxSteps = 14, 6, 56
	)
	for _, info := range locks.Infos() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			t.Parallel()
			aborterCounts := []int{0}
			if info.Abortable {
				aborterCounts = append(aborterCounts, 1)
			}
			for _, a := range aborterCounts {
				explored := false
				for steps := minSteps; steps <= maxSteps; steps += stepGrow {
					res, err := harness.Explore(harness.ExploreConfig{
						Model: rmr.CC, Algo: harness.Algo(info.Name), W: 4, N: n, Aborters: a,
						MaxSteps: steps, MaxSchedules: maxScheds, Workers: 2,
						Reduction: rmr.SleepSets,
					})
					if err != nil {
						t.Fatalf("aborters=%d steps=%d: %v", a, steps, err)
					}
					if res.Explored > 0 {
						explored = true
						t.Logf("aborters=%d steps=%d: %d explored, %d pruned, %d equivalent, exhausted=%v",
							a, steps, res.Explored, res.Pruned, res.Equivalent, res.Exhausted)
						break
					}
				}
				if !explored {
					t.Fatalf("aborters=%d: no complete schedule within %d steps", a, maxSteps)
				}
			}
		})
	}
}

// TestExhaustiveReductionLattice is the registry-wide agreement check over
// the Explorer's reduction lattice: for every lock whose full choice tree
// is affordable to exhaust, the points full, POR, POR+visited, and
// POR+visited+symmetry must report the identical Exhausted verdict and the
// identical violation/no-violation outcome, with every reduced point
// replaying at most as many schedules as the unreduced search. The chain
// is deliberately not required to shrink monotonically: cutting a subtree
// at a visited hit also removes the sleep-set backfill that subtree would
// have produced, so a stronger reduction can occasionally replay a few
// more schedules than a weaker one while still beating the full count.
// The reduced points run at multiple worker counts; Exhausted must agree across them
// (replay counts are scheduling-dependent at Workers > 1 and are checked
// per-point, not across counts). Symmetry participates only where the
// registry marks the lock IDSymmetric — elsewhere the harness keeps it off
// and the last two points coincide. Skipped under -short.
func TestExhaustiveReductionLattice(t *testing.T) {
	if testing.Short() {
		t.Skip("bounded-exhaustive exploration skipped in -short mode")
	}
	const (
		n = 2
		// fullCap guards against locks whose full tree is too large to
		// enumerate at this bound: when the unreduced run hits it, the lock
		// is compared at no deeper bound rather than burning minutes.
		fullCap                      = 40000
		minSteps, stepGrow, maxSteps = 14, 6, 56
	)
	lattice := []struct {
		name          string
		visited, symm bool
	}{
		{"por", false, false},
		{"por+visited", true, false},
		{"por+visited+symmetry", true, true},
	}
	for _, info := range locks.Infos() {
		info := info
		t.Run(info.Name, func(t *testing.T) {
			t.Parallel()
			aborterCounts := []int{0}
			if info.Abortable {
				aborterCounts = append(aborterCounts, 1)
			}
			for _, a := range aborterCounts {
				compared := false
				for steps := minSteps; steps <= maxSteps; steps += stepGrow {
					cfg := harness.ExploreConfig{
						Model: rmr.CC, Algo: harness.Algo(info.Name), W: 4, N: n, Aborters: a,
						MaxSteps: steps, MaxSchedules: fullCap, Workers: 2,
					}
					full, err := harness.Explore(cfg)
					if err != nil {
						t.Fatalf("aborters=%d steps=%d: full: %v", a, steps, err)
					}
					if !full.Exhausted {
						break // the cap stopped the full search; deeper bounds only grow
					}
					for _, pt := range lattice {
						rcfg := cfg
						rcfg.Reduction = rmr.SleepSets
						rcfg.MaxSchedules = 0
						rcfg.Visited, rcfg.Symmetry = pt.visited, pt.symm
						for _, workers := range []int{1, 2} {
							rcfg.Workers = workers
							res, err := harness.Explore(rcfg)
							if err != nil {
								t.Fatalf("aborters=%d steps=%d: %s w=%d: %v", a, steps, pt.name, workers, err)
							}
							if !res.Exhausted {
								t.Fatalf("aborters=%d steps=%d: %s w=%d not exhausted where full was",
									a, steps, pt.name, workers)
							}
							if res.Replays() > full.Replays() {
								t.Fatalf("aborters=%d steps=%d: %s w=%d replayed %d > full %d",
									a, steps, pt.name, workers, res.Replays(), full.Replays())
							}
							if workers == 1 && full.Explored > 0 {
								t.Logf("aborters=%d steps=%d: %s %d replays (full: %d)",
									a, steps, pt.name, res.Replays(), full.Replays())
							}
						}
					}
					if full.Explored > 0 {
						compared = true
						break
					}
				}
				if !compared {
					t.Logf("aborters=%d: full tree unaffordable before any complete schedule; agreement checked on shallower bounds only", a)
				}
			}
		})
	}
}

// TestRegistryCoversDiskPackages is the CI coverage guard: every lock
// package present under locks/ must register at least one lock, because
// the conformance suite reaches locks only through the registry — a
// package that forgets to register would silently escape the battery.
func TestRegistryCoversDiskPackages(t *testing.T) {
	entries, err := os.ReadDir("..")
	if err != nil {
		t.Fatal(err)
	}
	registered := map[string]bool{}
	for _, pkg := range locks.Packages() {
		registered[pkg] = true
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		switch e.Name() {
		case "all", "conformance":
			continue // infrastructure, not lock implementations
		}
		if !registered[e.Name()] {
			t.Errorf("locks/%s exists on disk but registered no lock: it escapes the conformance suite (add a locks.Register init and a blank import in locks/all)", e.Name())
		}
	}
}

// TestCoveredMatchesRegistry pins the suite's coverage claim: Covered is
// exactly the sorted registry.
func TestCoveredMatchesRegistry(t *testing.T) {
	covered := conformance.Covered()
	names := locks.Names()
	if len(covered) != len(names) {
		t.Fatalf("Covered() lists %d locks, registry has %d", len(covered), len(names))
	}
	for i := range names {
		if covered[i] != names[i] {
			t.Fatalf("Covered()[%d] = %q, registry has %q", i, covered[i], names[i])
		}
	}
}
