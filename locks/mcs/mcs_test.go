package mcs

import (
	"testing"

	"sublock/internal/locktest"
	"sublock/rmr"
)

func factory(m *rmr.Memory, _ int) (func(p *rmr.Proc) locktest.Handle, error) {
	l := New(m)
	return func(p *rmr.Proc) locktest.Handle { return l.Handle(p) }, nil
}

func TestSequential(t *testing.T) {
	m := rmr.NewMemory(rmr.CC, 1, nil)
	l := New(m)
	h := l.Handle(m.Proc(0))
	for i := 0; i < 5; i++ {
		if !h.Enter() {
			t.Fatal("Enter failed")
		}
		h.Exit()
	}
}

func TestMutualExclusion(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		res := locktest.Run(t, rmr.CC, 12, seed, factory, nil)
		locktest.RequireAllEntered(t, res, seed, nil)
	}
}

func TestMultiplePassages(t *testing.T) {
	// Node reuse across acquisitions: each process performs 3 passages.
	const n, passages = 6, 3
	for seed := int64(0); seed < 10; seed++ {
		s := rmr.NewScheduler(n, rmr.RandomPick(seed))
		m := rmr.NewMemory(rmr.CC, n, nil)
		l := New(m)
		handles := make([]*Handle, n)
		for i := range handles {
			handles[i] = l.Handle(m.Proc(i))
		}
		m.SetGate(s)
		counts := make([]int, n)
		for i := 0; i < n; i++ {
			i := i
			s.Go(func() {
				for k := 0; k < passages; k++ {
					if handles[i].Enter() {
						counts[i]++
						handles[i].Exit()
					}
				}
			})
		}
		if err := s.Run(50_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i, c := range counts {
			if c != passages {
				t.Fatalf("seed %d: process %d completed %d/%d passages", seed, i, c, passages)
			}
		}
	}
}

func TestUncontendedPassageRMRs(t *testing.T) {
	// The MCS selling point: an uncontended passage is a small constant
	// (SWAP + next write + CAS on exit), independent of anything.
	m := rmr.NewMemory(rmr.CC, 1, nil)
	l := New(m)
	p := m.Proc(0)
	h := l.Handle(p)
	h.Enter()
	h.Exit()
	// Steady state (second passage, caches warm):
	before := p.RMRs()
	h.Enter()
	h.Exit()
	if got := p.RMRs() - before; got > 3 {
		t.Fatalf("uncontended passage RMRs = %d, want ≤ 3", got)
	}
}

func TestQueueHandoffRMRsConstant(t *testing.T) {
	// Under a full queue with no aborts, each passage costs O(1) RMRs.
	const n = 24
	for seed := int64(0); seed < 5; seed++ {
		res := locktest.Run(t, rmr.CC, n, seed, factory, nil)
		for i, c := range res.RMRs {
			if c > 8 {
				t.Errorf("seed %d: process %d passage RMRs = %d, want ≤ 8", seed, i, c)
			}
		}
	}
}
