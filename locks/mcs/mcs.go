// Package mcs implements the queue lock of Mellor-Crummey and Scott (ACM
// TOCS 1991) on the simulated shared memory. It is the paper's §1 anchor
// for non-abortable locks: O(1) RMRs per passage in the CC model using a
// single Fetch-And-Store (SWAP) beyond reads, writes, and CAS.
//
// MCS is not abortable; it exists to calibrate the harness (the "MCS has
// O(1) RMR cost" claim the introduction builds on) and to price the cost of
// abortability in the Table 1 experiments.
package mcs

import (
	"sublock/locks"
	"sublock/rmr"
)

func init() {
	locks.Register(locks.Info{
		Name:      "mcs",
		Summary:   "Mellor-Crummey–Scott queue lock: non-abortable, FCFS, O(1) RMRs (§1 anchor)",
		Abortable: false,
		Labels:    []string{"mcs/"},
		// Per-process qnodes are used uniformly; queue order depends only
		// on arrival order, not on which id arrived.
		IDSymmetric: true,
		New: func(m *rmr.Memory, _, _ int) (locks.HandleFunc, error) {
			l := New(m)
			return func(p *rmr.Proc) locks.Abortable { return l.Handle(p) }, nil
		},
	})
}

// Lock is an MCS queue lock.
type Lock struct {
	tail rmr.Addr // queue tail: qnode address + 1, 0 = empty
}

// New allocates an MCS lock in m.
func New(m *rmr.Memory) *Lock {
	l := &Lock{tail: m.Alloc(0)}
	m.Label(l.tail, 1, "mcs/tail")
	return l
}

// Handle returns process p's handle. Each process reuses a single queue
// node across acquisitions, as in the original algorithm. The node is a
// two-word record: next at the base address, locked at base+1.
func (l *Lock) Handle(p *rmr.Proc) *Handle {
	base := p.Memory().AllocNLocal(p.ID(), 2, 0)
	p.Memory().Label(base, 2, "mcs/qnode")
	return &Handle{
		l:      l,
		p:      p,
		next:   base,
		locked: base + 1,
	}
}

// Handle is one process's interface to the lock. Not safe for concurrent
// use by multiple goroutines.
type Handle struct {
	l      *Lock
	p      *rmr.Proc
	next   rmr.Addr // successor's locked-word address + 1, 0 = none
	locked rmr.Addr // spun on by this process while waiting
}

// Enter acquires the lock. It always succeeds (MCS has no abort path); the
// boolean return matches the abortable-lock handle shape used by the
// experiment harness.
func (h *Handle) Enter() bool {
	p := h.p
	p.EnterPhase(rmr.PhaseDoorway)
	p.Write(h.next, 0)
	pred := p.Swap(h.l.tail, uint64(h.locked)+1)
	if pred == 0 {
		p.EnterPhase(rmr.PhaseCS)
		return true
	}
	p.EnterPhase(rmr.PhaseWaiting)
	p.Write(h.locked, 1)
	// Publish ourselves as the predecessor's successor. The predecessor's
	// next word is adjacent to its locked word (allocated consecutively by
	// Handle); we encode tail entries as locked-word addresses and recover
	// next as locked−1.
	predLocked := rmr.Addr(pred - 1)
	p.Write(predLocked-1, uint64(h.locked)+1)
	for p.Read(h.locked) != 0 {
		p.Wait(h.locked, 1) // cleared by the predecessor's handoff write
	}
	p.EnterPhase(rmr.PhaseCS)
	return true
}

// Exit releases the lock, handing it to the queued successor if any.
func (h *Handle) Exit() {
	p := h.p
	p.EnterPhase(rmr.PhaseExit)
	defer p.EnterPhase(rmr.PhaseIdle)
	if p.Read(h.next) == 0 {
		if p.CAS(h.l.tail, uint64(h.locked)+1, 0) {
			return
		}
		// A successor is mid-enqueue: wait for it to announce itself.
		for p.Read(h.next) == 0 {
			p.Wait(h.next, 0)
		}
	}
	succ := rmr.Addr(p.Read(h.next) - 1)
	p.Write(succ, 0)
}
