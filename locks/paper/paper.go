// Package paper registers the paper's lock algorithms — the §3 one-shot
// abortable lock (adaptive and plain FindNext variants) and the §6
// long-lived transformation (unbounded and §6.2 bounded memory management)
// — in the locks registry, re-homing their constructors behind the
// canonical factory signature.
//
// The implementations live in internal/oneshot and internal/longlived; this
// package is only the seam that makes them buildable by name, exactly like
// every baseline.
package paper

import (
	"sublock/internal/longlived"
	"sublock/internal/oneshot"
	"sublock/locks"
	"sublock/rmr"
)

func init() {
	locks.Register(locks.Info{
		Name:      "paper",
		Summary:   "the paper's §3 one-shot abortable lock with AdaptiveFindNext: O(1) abort-free, O(log_W A) adaptive (Table 1 row 4)",
		Abortable: true,
		OneShot:   true,
		Labels:    []string{"oneshot/", "tree/"},
		// The §3 tree registers processes at id-determined leaves (the
		// split trees index by id); permuting ids moves processes across
		// the tree, so runs are not invariant under id permutation.
		IDSymmetric: false,
		New:         oneShotFactory(true),
	})
	locks.Register(locks.Info{
		Name:      "paper-plain",
		Summary:   "the one-shot lock with the non-adaptive FindNext (Algorithm 4.1), the Figure 4 ablation",
		Abortable: true,
		OneShot:   true,
		Labels:    []string{"oneshot/", "tree/"},
		// Same id-determined leaf layout as "paper"; FindNext adaptivity
		// does not change where ids live in the tree.
		IDSymmetric: false,
		New:         oneShotFactory(false),
	})
	locks.Register(locks.Info{
		Name:      "paper-longlived",
		Summary:   "the §6 long-lived transformation, unbounded allocation (fresh instances per switch)",
		Abortable: true,
		CCOnly:    true,
		Labels:    []string{"oneshot/", "tree/", "longlived/"},
		// Wraps the one-shot tree (id-determined leaves) and adds per-id
		// announce/retire slots in the long-lived frame.
		IDSymmetric: false,
		New:         longLivedFactory(false),
	})
	locks.Register(locks.Info{
		Name:      "paper-longlived-bounded",
		Summary:   "the long-lived transformation with the §6.2 bounded memory management (recycled instances)",
		Abortable: true,
		CCOnly:    true,
		Labels:    []string{"oneshot/", "tree/", "longlived/"},
		// Same layout as paper-longlived, plus §6.2's per-id recycling
		// pools — more id-indexed state, not less.
		IDSymmetric: false,
		New:         longLivedFactory(true),
	})
}

func oneShotFactory(adaptive bool) locks.Factory {
	return func(m *rmr.Memory, w, capacity int) (locks.HandleFunc, error) {
		l, err := oneshot.New(m, oneshot.Config{W: w, N: capacity, Adaptive: adaptive})
		if err != nil {
			return nil, err
		}
		return func(p *rmr.Proc) locks.Abortable { return l.Handle(p) }, nil
	}
}

func longLivedFactory(bounded bool) locks.Factory {
	return func(m *rmr.Memory, w, capacity int) (locks.HandleFunc, error) {
		l, err := longlived.New(m, longlived.Config{
			W: w, N: capacity, Adaptive: true, Bounded: bounded,
		})
		if err != nil {
			return nil, err
		}
		return func(p *rmr.Proc) locks.Abortable { return l.Handle(p) }, nil
	}
}
