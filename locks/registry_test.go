package locks_test

import (
	"errors"
	"sort"
	"strings"
	"sync"
	"testing"

	"sublock/locks"
	_ "sublock/locks/all"
	"sublock/rmr"
)

// fakePrefix namespaces the registrations this file makes so the tests
// against the real registry can filter them out.
const fakePrefix = "zz-registry-test-"

func fakeFactory(m *rmr.Memory, w, capacity int) (locks.HandleFunc, error) {
	return nil, errors.New("fake factory: not buildable")
}

// TestConcurrentFactoryInvocation builds every registered lock from many
// goroutines at once — each on its own memory — interleaved with registry
// reads. Run under -race this pins down that factories and the registry
// share no unsynchronized state.
func TestConcurrentFactoryInvocation(t *testing.T) {
	var wg sync.WaitGroup
	for _, info := range locks.Infos() {
		if strings.HasPrefix(info.Name, fakePrefix) {
			continue
		}
		for k := 0; k < 4; k++ {
			info := info
			wg.Add(1)
			go func() {
				defer wg.Done()
				m := rmr.NewMemory(rmr.CC, 4, nil)
				fn, err := locks.Build(m, info.Name, 4, 4)
				if err != nil {
					t.Errorf("%s: %v", info.Name, err)
					return
				}
				// An uncontended passage must succeed on the fresh instance.
				h := fn(m.Proc(0))
				if !h.Enter() {
					t.Errorf("%s: uncontended Enter returned false", info.Name)
					return
				}
				h.Exit()
				if _, ok := locks.Lookup(info.Name); !ok {
					t.Errorf("%s: Lookup failed mid-build", info.Name)
				}
				_ = locks.Names()
			}()
		}
	}
	wg.Wait()
}

func TestNamesSortedAndDeterministic(t *testing.T) {
	names := locks.Names()
	if !sort.StringsAreSorted(names) {
		t.Fatalf("Names() not sorted: %v", names)
	}
	for i := 0; i < 3; i++ {
		if again := locks.Names(); !equalStrings(names, again) {
			t.Fatalf("Names() not deterministic: %v vs %v", names, again)
		}
	}
	infos := locks.Infos()
	if len(infos) != len(names) {
		t.Fatalf("Infos() has %d entries, Names() %d", len(infos), len(names))
	}
	for i, info := range infos {
		if info.Name != names[i] {
			t.Fatalf("Infos()[%d] = %q, Names()[%d] = %q", i, info.Name, i, names[i])
		}
	}
	// The canonical seven locks of the paper's evaluation (plus the two
	// paper ablation variants) must be present.
	for _, want := range []string{
		"linearscan", "mcs", "paper", "paper-longlived",
		"paper-longlived-bounded", "paper-plain", "scott", "tas", "tournament",
	} {
		if _, ok := locks.Lookup(want); !ok {
			t.Errorf("registry missing %q", want)
		}
	}
}

func TestBuildUnknownLock(t *testing.T) {
	m := rmr.NewMemory(rmr.CC, 2, nil)
	_, err := locks.Build(m, "no-such-lock", 4, 2)
	var eu *locks.ErrUnknown
	if !errors.As(err, &eu) {
		t.Fatalf("err = %T (%v), want *locks.ErrUnknown", err, err)
	}
	if eu.Name != "no-such-lock" {
		t.Errorf("ErrUnknown.Name = %q", eu.Name)
	}
	if !sort.StringsAreSorted(eu.Registered) {
		t.Errorf("ErrUnknown.Registered not sorted: %v", eu.Registered)
	}
	for _, name := range locks.Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("message %q omits registered name %q", err, name)
		}
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	name := fakePrefix + "dup"
	locks.Register(locks.Info{Name: name, New: fakeFactory})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	locks.Register(locks.Info{Name: name, New: fakeFactory})
}

func TestRegisterEmptyNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Register with an empty name did not panic")
		}
	}()
	locks.Register(locks.Info{New: fakeFactory})
}

func TestRegisterNilFactoryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Register with a nil factory did not panic")
		}
	}()
	locks.Register(locks.Info{Name: fakePrefix + "nil-factory"})
}

// TestRegisterRecordsPackage: Register captures the registering package's
// directory basename, the hook the conformance suite's disk guard diffs
// against the packages on disk.
func TestRegisterRecordsPackage(t *testing.T) {
	info, ok := locks.Lookup("mcs")
	if !ok {
		t.Fatal("mcs not registered")
	}
	if got := info.Package(); got != "mcs" {
		t.Errorf("mcs registered from package %q, want %q", got, "mcs")
	}
	pkgs := locks.Packages()
	if !sort.StringsAreSorted(pkgs) {
		t.Errorf("Packages() not sorted: %v", pkgs)
	}
	for _, want := range []string{"linearscan", "mcs", "paper", "scott", "tas", "tournament"} {
		found := false
		for _, p := range pkgs {
			if p == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("Packages() = %v missing %q", pkgs, want)
		}
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
