package scott

import (
	"testing"

	"sublock/internal/locktest"
	"sublock/rmr"
)

func factory(m *rmr.Memory, _ int) (func(p *rmr.Proc) locktest.Handle, error) {
	l := New(m)
	return func(p *rmr.Proc) locktest.Handle { return l.Handle(p) }, nil
}

func TestSequential(t *testing.T) {
	m := rmr.NewMemory(rmr.CC, 1, nil)
	l := New(m)
	h := l.Handle(m.Proc(0))
	for i := 0; i < 5; i++ {
		if !h.Enter() {
			t.Fatal("Enter failed")
		}
		h.Exit()
	}
}

func TestMutualExclusion(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		res := locktest.Run(t, rmr.CC, 12, seed, factory, nil)
		locktest.RequireAllEntered(t, res, seed, nil)
	}
}

func TestAborts(t *testing.T) {
	aborters := map[int]bool{0: true, 3: true, 4: true, 9: true}
	for seed := int64(0); seed < 25; seed++ {
		res := locktest.Run(t, rmr.CC, 12, seed, factory, aborters)
		locktest.RequireAllEntered(t, res, seed, aborters)
	}
}

func TestAllAbortThenFreshArrival(t *testing.T) {
	// Every waiter aborts; a later arrival must still acquire by adopting
	// through the chain of aborted nodes.
	const n = 6
	c := rmr.NewController(n)
	m := rmr.NewMemory(rmr.CC, n, nil)
	l := New(m)
	handles := make([]*Handle, n)
	for i := range handles {
		handles[i] = l.Handle(m.Proc(i))
	}
	m.SetGate(c)

	// proc0 acquires: swap + read of the available dummy. It is now in the
	// CS, blocked at Exit's release write.
	var ok0 bool
	c.Go(0, func() {
		ok0 = handles[0].Enter()
		handles[0].Exit()
	})
	c.StepN(0, 2)

	// procs 1..4 enqueue and then abort while waiting.
	res := make([]bool, n)
	for i := 1; i <= 4; i++ {
		i := i
		c.Go(i, func() { res[i] = handles[i].Enter() })
		c.StepN(i, 2) // swap + first pred read (waiting)
	}
	for i := 1; i <= 4; i++ {
		m.Proc(i).SignalAbort()
		c.Finish(i, 1000)
		if res[i] {
			t.Fatalf("aborter %d entered", i)
		}
	}

	// proc0 releases; proc5 arrives fresh and must adopt through the four
	// aborted nodes to find the available grant.
	c.Finish(0, 1000)
	if !ok0 {
		t.Fatal("holder failed")
	}
	c.Go(5, func() {
		res[5] = handles[5].Enter()
		handles[5].Exit()
	})
	c.Finish(5, 1000)
	c.Wait()
	if !res[5] {
		t.Fatal("fresh arrival failed to adopt through aborted chain")
	}
}

func TestNoAbortPassageO1(t *testing.T) {
	const n = 24
	for seed := int64(0); seed < 5; seed++ {
		res := locktest.Run(t, rmr.CC, n, seed, factory, nil)
		for i, cost := range res.RMRs {
			if cost > 8 {
				t.Errorf("seed %d: process %d passage RMRs = %d, want ≤ 8", seed, i, cost)
			}
		}
	}
}

func TestAdoptionCostLinearInAborts(t *testing.T) {
	// A waiter behind k aborted nodes pays ~k RMRs adopting through them:
	// the linear-in-aborts adaptive shape of Table 1's Scott row.
	const aborts = 16
	nprocs := aborts + 2
	c := rmr.NewController(nprocs)
	m := rmr.NewMemory(rmr.CC, nprocs, nil)
	l := New(m)
	handles := make([]*Handle, nprocs)
	for i := range handles {
		handles[i] = l.Handle(m.Proc(i))
	}
	m.SetGate(c)

	c.Go(0, func() {
		handles[0].Enter()
		handles[0].Exit()
	})
	c.StepN(0, 2) // holder in CS, blocked at the release write
	// Enqueue all aborters first, then abort them in reverse order: each
	// aborts while its own predecessor is still waiting, so every aborted
	// node records its direct predecessor and the full chain survives for
	// the waiter to adopt through. (Aborting front-to-back would let each
	// waiter adopt past the already-aborted prefix first, collapsing the
	// chain to O(1) — a nice property of the algorithm, but not the
	// worst case this test prices.)
	for i := 1; i <= aborts; i++ {
		i := i
		c.Go(i, func() { handles[i].Enter() })
		c.StepN(i, 2) // swap + first pred read (waiting)
	}
	for i := aborts; i >= 1; i-- {
		m.Proc(i).SignalAbort()
		c.Finish(i, 1000)
	}
	// The holder releases, then the measured waiter arrives behind the
	// whole chain of aborted nodes and must adopt through every one.
	c.Finish(0, 1000)
	waiter := m.Proc(nprocs - 1)
	var ok bool
	c.Go(nprocs-1, func() {
		ok = handles[nprocs-1].Enter()
		handles[nprocs-1].Exit()
	})
	c.Finish(nprocs-1, 10_000)
	c.Wait()
	if !ok {
		t.Fatal("waiter failed to acquire")
	}
	// Passage cost: swap + one read per aborted node adopted + the read of
	// the holder's available node + release write ≈ aborts + 3.
	cost := waiter.RMRs()
	if cost < int64(aborts) || cost > int64(3*aborts) {
		t.Fatalf("waiter passage RMRs = %d for %d aborts, want ≈ linear (between %d and %d)",
			cost, aborts, aborts, 3*aborts)
	}
}

func TestSpaceGrowsPerAcquisition(t *testing.T) {
	// Table 1: unbounded space — every acquisition allocates a node.
	m := rmr.NewMemory(rmr.CC, 1, nil)
	l := New(m)
	h := l.Handle(m.Proc(0))
	base := m.Size()
	for i := 0; i < 10; i++ {
		h.Enter()
		h.Exit()
	}
	if got := m.Size() - base; got != 10 {
		t.Fatalf("10 passages allocated %d words, want 10", got)
	}
}
