// Package scott implements an abortable CLH-style queue lock in the spirit
// of Scott's non-blocking-timeout locks (PODC 2002), the first row of the
// paper's Table 1: SWAP+CAS primitives, FCFS, O(1) RMRs per passage when no
// process aborts, RMR cost linear in the number of aborts otherwise, and
// unbounded space (a fresh queue node per acquisition, never reclaimed —
// Scott's reclamation machinery is orthogonal to the RMR behaviour Table 1
// compares).
//
// Each queue node is one word. A waiter spins on its predecessor's node:
//
//	0      — predecessor still waiting or in the critical section
//	1      — predecessor released the lock: the waiter now holds it
//	addr+2 — predecessor aborted; addr is *its* predecessor, whom the
//	         waiter adopts and resumes spinning on
package scott

import (
	"sublock/locks"
	"sublock/rmr"
)

func init() {
	locks.Register(locks.Info{
		Name:      "scott",
		Summary:   "Scott-style abortable CLH queue lock: FCFS, O(1) RMRs abort-free, linear in aborts (Table 1 row 1)",
		Abortable: true,
		Labels:    []string{"scott/"},
		// CLH-style per-process qnodes used uniformly; arrival order alone
		// shapes the queue.
		IDSymmetric: true,
		New: func(m *rmr.Memory, _, _ int) (locks.HandleFunc, error) {
			l := New(m)
			return func(p *rmr.Proc) locks.Abortable { return l.Handle(p) }, nil
		},
	})
}

const (
	waiting   = 0
	available = 1
	// status ≥ abortedBase encodes "aborted, adopt node (status−abortedBase)".
	abortedBase = 2
)

// Lock is an abortable CLH-NB-style queue lock.
type Lock struct {
	tail rmr.Addr // address of the most recent node + 1
}

// New allocates the lock in m, seeded with a dummy node in the released
// state so the first arrival acquires immediately.
func New(m *rmr.Memory) *Lock {
	dummy := m.Alloc(available)
	l := &Lock{tail: m.Alloc(uint64(dummy) + 1)}
	m.Label(dummy, 1, "scott/qnode")
	m.Label(l.tail, 1, "scott/tail")
	return l
}

// Handle returns process p's handle to the lock.
func (l *Lock) Handle(p *rmr.Proc) *Handle {
	return &Handle{l: l, p: p}
}

// Handle is one process's interface to the lock.
type Handle struct {
	l    *Lock
	p    *rmr.Proc
	node rmr.Addr // the node we enqueued in the current acquisition
}

// Enter acquires the lock, or returns false if the abort signal arrives
// while waiting. Aborting publishes our predecessor in our own node so the
// successor (or a later arrival) adopts it — no handshake with either side
// is needed, hence bounded abort.
func (h *Handle) Enter() bool {
	p := h.p
	p.EnterPhase(rmr.PhaseDoorway)
	node := p.Memory().Alloc(waiting)
	p.Memory().Label(node, 1, "scott/qnode")
	h.node = node
	pred := rmr.Addr(p.Swap(h.l.tail, uint64(node)+1) - 1)
	p.EnterPhase(rmr.PhaseWaiting)
	for {
		switch s := p.Read(pred); {
		case s == available:
			p.EnterPhase(rmr.PhaseCS)
			return true
		case s >= abortedBase:
			pred = rmr.Addr(s - abortedBase) // adopt the aborter's predecessor
		default: // predecessor still waiting
			if p.AbortSignal() {
				p.EnterPhase(rmr.PhaseAbort)
				p.Write(node, uint64(pred)+abortedBase)
				p.EnterPhase(rmr.PhaseIdle)
				return false
			}
			p.Wait(pred, waiting) // released or adopted via a write to pred
		}
	}
}

// Exit releases the lock by marking this acquisition's node available.
func (h *Handle) Exit() {
	h.p.EnterPhase(rmr.PhaseExit)
	h.p.Write(h.node, available)
	h.p.EnterPhase(rmr.PhaseIdle)
}
