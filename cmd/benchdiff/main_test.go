package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const rmrDoc = `{
  "date": "2026-08-08T00:00:00Z",
  "benchtime": "1x",
  "locks": [
    {"lock": "paper-oneshot", "model": "cc", "procs": 16,
     "passage_rmrs_max": 9, "passage_rmrs_mean": 6.5, "words": 120,
     "aborters": 6, "storm_holder_rmrs": 4, "storm_waiter_rmrs": 7,
     "storm_aborted_rmrs_max": 5},
    {"lock": "mcs", "model": "cc", "procs": 16,
     "passage_rmrs_max": 4, "passage_rmrs_mean": 3.0, "words": 40}
  ],
  "latency": [
    {"lock": "paper-oneshot", "model": "cc", "cost": "ccnuma", "cost_seed": 1,
     "procs": 16, "queue_sim_p50_ns": 1200, "queue_sim_p95_ns": 2100,
     "queue_sim_p99_ns": 2400, "queue_sim_max_ns": 2600,
     "aborters": 6, "storm_holder_sim_ns": 800, "storm_waiter_sim_ns": 1500,
     "storm_aborted_sim_max_ns": 1100},
    {"lock": "mcs", "model": "cc", "cost": "dsmremote", "cost_seed": 1,
     "procs": 16, "queue_sim_p50_ns": 6100, "queue_sim_p95_ns": 6900,
     "queue_sim_p99_ns": 7200, "queue_sim_max_ns": 7500}
  ],
  "explorer": [
    {"config": "n=2", "n": 2, "w": 4, "aborters": 0, "maxsteps": 12,
     "por": true, "explored": 500, "pruned": 200, "equivalent": 100,
     "replays": 700, "seconds": 0.5, "replays_per_sec": 1400, "exhausted": true},
    {"config": "n=2", "n": 2, "w": 4, "aborters": 0, "maxsteps": 12,
     "por": true, "visited": true, "symmetry": true,
     "explored": 60, "pruned": 20, "equivalent": 10,
     "visited_hits": 40, "symmetry_cuts": 8,
     "replays": 63, "seconds": 0.1, "replays_per_sec": 630, "exhausted": true}
  ],
  "benchmarks": [
    {"name": "BenchmarkMemOps/CC", "iterations": 1000, "ns/op": 55.0, "B/op": 0, "allocs/op": 0, "replays/s": 100}
  ]
}`

const nativeDoc = `{
  "schema": "nativebench/v1",
  "quick": true,
  "native": [
    {"lock": "abortable", "impl": "native", "goroutines": 4, "procs": 4,
     "ops": 256, "p50_ns": 300, "p95_ns": 900, "p99_ns": 2000,
     "throughput_ops_per_s": 1.5e6}
  ]
}`

const lockdDoc = `{
  "schema": "lockdload/v1",
  "quick": true,
  "lockd": [
    {"dist": "uniform", "clients": 8, "names": 64, "chaos": false,
     "ops": 4000, "throughput_ops_per_sec": 8000,
     "acquire_p50_ns": 90000, "acquire_p95_ns": 400000, "acquire_p99_ns": 900000,
     "timeouts": 0, "sheds": 0, "killed_holds": 0, "killed_waits": 0,
     "expiries": 0, "fencing_rejections": 0},
    {"dist": "zipf", "clients": 8, "names": 64, "chaos": true,
     "ops": 2500, "throughput_ops_per_sec": 5000,
     "acquire_p50_ns": 120000, "acquire_p95_ns": 800000, "acquire_p99_ns": 2000000,
     "timeouts": 3, "sheds": 1, "killed_holds": 40, "killed_waits": 20,
     "expiries": 38, "fencing_rejections": 12}
  ]
}`

func writeTemp(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func loadTestRun(t *testing.T) *entry {
	t.Helper()
	e, err := loadRun(writeTemp(t, "rmr.json", rmrDoc), writeTemp(t, "native.json", nativeDoc),
		writeTemp(t, "lockd.json", lockdDoc), "abc123")
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestLoadRunParsesBothReports(t *testing.T) {
	e := loadTestRun(t)
	if !e.Quick {
		t.Error("benchtime 1x must mark the entry quick")
	}
	if e.Commit != "abc123" || e.Date != "2026-08-08T00:00:00Z" {
		t.Errorf("stamps wrong: %+v", e)
	}
	if len(e.RMR) != 2 || e.RMR[0].PassageMax != 9 {
		t.Errorf("rmr cells = %+v", e.RMR)
	}
	if len(e.Explorer) != 2 || e.Explorer[0].Replays != 700 || e.Explorer[1].VisitedHits != 40 {
		t.Errorf("explorer cells = %+v", e.Explorer)
	}
	if len(e.Latency) != 2 || e.Latency[0].QueueP95 != 2100 || e.Latency[0].Cost != "ccnuma" {
		t.Errorf("latency cells = %+v", e.Latency)
	}
	if len(e.Native) != 1 || e.Native[0].Throughput != 1.5e6 {
		t.Errorf("native cells = %+v", e.Native)
	}
	if len(e.GoBench) != 1 || e.GoBench[0].Units["ns/op"] != 55 {
		t.Errorf("gobench = %+v", e.GoBench)
	}
	if len(e.Lockd) != 2 || e.Lockd[1].Expiries != 38 || !e.Lockd[1].Chaos {
		t.Errorf("lockd cells = %+v", e.Lockd)
	}
}

func TestIdenticalRunsPass(t *testing.T) {
	base, cur := loadTestRun(t), loadTestRun(t)
	var buf bytes.Buffer
	if n := report(&buf, base, cur, "test", thresholds{}); n != 0 {
		t.Fatalf("identical runs produced %d regressions:\n%s", n, buf.String())
	}
	if strings.Contains(buf.String(), "REGRESSION") {
		t.Errorf("report flags regressions on identical runs:\n%s", buf.String())
	}
}

// TestInjectedRMRRegressionFails is the pipeline's negative test: a
// synthetic +1 on a deterministic RMR cell must gate.
func TestInjectedRMRRegressionFails(t *testing.T) {
	base, cur := loadTestRun(t), loadTestRun(t)
	cur.RMR[0].PassageMax++ // 9 -> 10
	var buf bytes.Buffer
	n := report(&buf, base, cur, "test", thresholds{})
	if n != 1 {
		t.Fatalf("injected RMR regression produced %d gated regressions, want 1\n%s", n, buf.String())
	}
	if !strings.Contains(buf.String(), "REGRESSION") {
		t.Errorf("report does not flag the regression:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "paper-oneshot/cc") {
		t.Errorf("report does not name the offending cell:\n%s", buf.String())
	}
}

func TestRMRThresholdAllowsSlack(t *testing.T) {
	base, cur := loadTestRun(t), loadTestRun(t)
	cur.RMR[0].PassageMean *= 1.04 // +4%
	var buf bytes.Buffer
	if n := report(&buf, base, cur, "test", thresholds{rmr: 5}); n != 0 {
		t.Fatalf("+4%% under a 5%% threshold gated (%d):\n%s", n, buf.String())
	}
	if n := report(&buf, base, cur, "test", thresholds{rmr: 2}); n != 1 {
		t.Fatalf("+4%% under a 2%% threshold did not gate (%d)", n)
	}
}

func TestImprovementIsReportedNotGated(t *testing.T) {
	base, cur := loadTestRun(t), loadTestRun(t)
	cur.RMR[0].PassageMax-- // improvement
	var buf bytes.Buffer
	if n := report(&buf, base, cur, "test", thresholds{}); n != 0 {
		t.Fatalf("improvement gated as regression (%d)", n)
	}
	if !strings.Contains(buf.String(), "improved") {
		t.Errorf("improvement not reported:\n%s", buf.String())
	}
}

func TestExplorerReplayRegressionGates(t *testing.T) {
	base, cur := loadTestRun(t), loadTestRun(t)
	cur.Explorer[0].Replays += 100
	var buf bytes.Buffer
	if n := report(&buf, base, cur, "test", thresholds{}); n != 1 {
		t.Fatalf("replay-count regression produced %d, want 1\n%s", n, buf.String())
	}
}

// TestVisitedHitsDriftGates is the reduction lattice's negative test: the
// visited/symmetry cells run at Workers=1 so their cut counters are exact,
// and any drift in them must gate even when the replay count is unchanged.
func TestVisitedHitsDriftGates(t *testing.T) {
	base, cur := loadTestRun(t), loadTestRun(t)
	cur.Explorer[1].VisitedHits += 5
	var buf bytes.Buffer
	if n := report(&buf, base, cur, "test", thresholds{}); n != 1 {
		t.Fatalf("visited_hits drift produced %d gated regressions, want 1\n%s", n, buf.String())
	}
	if !strings.Contains(buf.String(), "visited_hits") {
		t.Errorf("report does not name visited_hits:\n%s", buf.String())
	}

	base, cur = loadTestRun(t), loadTestRun(t)
	cur.Explorer[1].SymmetryCuts++
	buf.Reset()
	if n := report(&buf, base, cur, "test", thresholds{}); n != 1 {
		t.Fatalf("symmetry_cuts drift produced %d gated regressions, want 1\n%s", n, buf.String())
	}
}

// TestLatticeCellsKeyedSeparately: the plain-POR cell and the
// POR+visited+symmetry cell share a config string but are distinct lattice
// points — a regression in one must not be masked by (or diffed against)
// the other.
func TestLatticeCellsKeyedSeparately(t *testing.T) {
	base, cur := loadTestRun(t), loadTestRun(t)
	if k0, k1 := exploreKey(base.Explorer[0]), exploreKey(base.Explorer[1]); k0 == k1 {
		t.Fatalf("lattice points collide on key %q", k0)
	}
	cur.Explorer[1].Replays += 10
	var buf bytes.Buffer
	if n := report(&buf, base, cur, "test", thresholds{}); n != 1 {
		t.Fatalf("lattice-cell replay regression produced %d, want 1\n%s", n, buf.String())
	}
	if !strings.Contains(buf.String(), "visited=true/sym=true") {
		t.Errorf("report does not name the lattice cell:\n%s", buf.String())
	}
}

// TestShardChangeIsNotComparable: depth and shard changes re-shape the
// explored tree, so the cell is reported but never gated.
func TestShardChangeIsNotComparable(t *testing.T) {
	base, cur := loadTestRun(t), loadTestRun(t)
	cur.Explorer[1].Shard, cur.Explorer[1].ShardCount = 1, 4
	cur.Explorer[1].Replays += 500 // would gate if compared
	var buf bytes.Buffer
	if n := report(&buf, base, cur, "test", thresholds{}); n != 0 {
		t.Fatalf("shard change gated (%d):\n%s", n, buf.String())
	}
	if !strings.Contains(buf.String(), "not comparable") {
		t.Errorf("shard change not called out:\n%s", buf.String())
	}
}

func TestNativeReportOnlyByDefault(t *testing.T) {
	base, cur := loadTestRun(t), loadTestRun(t)
	cur.Native[0].P99ns *= 10
	cur.Native[0].Throughput /= 2
	var buf bytes.Buffer
	if n := report(&buf, base, cur, "test", thresholds{}); n != 0 {
		t.Fatalf("wall-clock deltas gated with threshold 0 (%d)", n)
	}
	if !strings.Contains(buf.String(), "p99_ns") {
		t.Errorf("p99 delta not reported:\n%s", buf.String())
	}
	// With a threshold set, both the latency and throughput cells gate.
	if n := report(&buf, base, cur, "test", thresholds{native: 20}); n != 2 {
		t.Fatalf("gated native run produced %d regressions, want 2", n)
	}
}

// TestLockdNeverGates: the service-load cells are wall-clock and
// chaos-driven, so even a 10x latency cliff is reported, never gated —
// regardless of any thresholds set for the other wall-clock families.
func TestLockdNeverGates(t *testing.T) {
	base, cur := loadTestRun(t), loadTestRun(t)
	cur.Lockd[1].P99ns *= 10
	cur.Lockd[1].Expiries = 0
	cur.Lockd[1].Throughput /= 2
	var buf bytes.Buffer
	if n := report(&buf, base, cur, "test", thresholds{rmr: 0, native: 20, bench: 20}); n != 0 {
		t.Fatalf("lockd deltas gated (%d):\n%s", n, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "lockd/zipf/c=8/n=64/chaos") {
		t.Errorf("lockd cell not named:\n%s", out)
	}
	if !strings.Contains(out, "acquire_p99_ns") || !strings.Contains(out, "expiries") {
		t.Errorf("lockd deltas not reported:\n%s", out)
	}
	if strings.Contains(out, "REGRESSION") {
		t.Errorf("lockd delta flagged as regression:\n%s", out)
	}
}

// TestLockdScenarioChangeClassified: a re-shaped scenario (different client
// count) keys differently and is classified added+removed, not diffed.
func TestLockdScenarioChangeClassified(t *testing.T) {
	base, cur := loadTestRun(t), loadTestRun(t)
	cur.Lockd[0].Clients = 32
	var buf bytes.Buffer
	if n := report(&buf, base, cur, "test", thresholds{}); n != 0 {
		t.Fatalf("scenario change gated (%d):\n%s", n, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "lockd/uniform/c=32/n=64: added") ||
		!strings.Contains(out, "lockd/uniform/c=8/n=64: removed") {
		t.Errorf("scenario change not classified:\n%s", out)
	}
}

func TestGoBenchRatesNeverGate(t *testing.T) {
	base, cur := loadTestRun(t), loadTestRun(t)
	cur.GoBench[0].Units["replays/s"] = 10 // collapsed rate: reported, never gated
	cur.GoBench[0].Units["ns/op"] = 220    // 4x cost: gates under a threshold
	var buf bytes.Buffer
	if n := report(&buf, base, cur, "test", thresholds{bench: 50}); n != 1 {
		t.Fatalf("want only the ns/op cell gated, got %d:\n%s", n, buf.String())
	}
}

func TestWorkloadChangeIsNotComparable(t *testing.T) {
	base, cur := loadTestRun(t), loadTestRun(t)
	cur.RMR[0].Procs = 64
	cur.RMR[0].PassageMax = 100 // would gate if compared
	var buf bytes.Buffer
	if n := report(&buf, base, cur, "test", thresholds{}); n != 0 {
		t.Fatalf("workload change gated (%d)", n)
	}
	if !strings.Contains(buf.String(), "not comparable") {
		t.Errorf("workload change not called out:\n%s", buf.String())
	}
}

// TestInjectedLatencyRegressionGates: the simulated-latency cells are
// deterministic, so a +1ns bump on a quantile gates exactly like an RMR
// cell.
func TestInjectedLatencyRegressionGates(t *testing.T) {
	base, cur := loadTestRun(t), loadTestRun(t)
	cur.Latency[0].QueueP99++
	var buf bytes.Buffer
	n := report(&buf, base, cur, "test", thresholds{})
	if n != 1 {
		t.Fatalf("injected latency regression produced %d gated regressions, want 1\n%s", n, buf.String())
	}
	out := buf.String()
	if !strings.Contains(out, "paper-oneshot/cc/cost=ccnuma") || !strings.Contains(out, "queue_sim_p99_ns") {
		t.Errorf("report does not name the offending latency cell:\n%s", out)
	}
}

// TestLatencySeedChangeNotComparable: cells priced under a different cost
// seed are a different experiment — reported, never gated.
func TestLatencySeedChangeNotComparable(t *testing.T) {
	base, cur := loadTestRun(t), loadTestRun(t)
	cur.Latency[0].CostSeed = 9
	cur.Latency[0].QueueP50 *= 10 // would gate if compared
	var buf bytes.Buffer
	if n := report(&buf, base, cur, "test", thresholds{}); n != 0 {
		t.Fatalf("seed-changed cell gated (%d):\n%s", n, buf.String())
	}
	if !strings.Contains(buf.String(), "cost_seed 1->9); not comparable") {
		t.Errorf("seed change not reported as not comparable:\n%s", buf.String())
	}
}

// TestCellClassification: a cell only in the current run is added, one only
// in the baseline is removed, and an added/removed pair with identical
// metrics collapses into a renamed line — none of them gate.
func TestCellClassification(t *testing.T) {
	t.Run("added", func(t *testing.T) {
		base, cur := loadTestRun(t), loadTestRun(t)
		extra := cur.RMR[1]
		extra.Lock = "brand-new"
		extra.PassageMax = 99 // unlike any baseline cell, so no rename pairing
		cur.RMR = append(cur.RMR, extra)
		var buf bytes.Buffer
		if n := report(&buf, base, cur, "test", thresholds{}); n != 0 {
			t.Fatalf("added cell gated (%d):\n%s", n, buf.String())
		}
		if !strings.Contains(buf.String(), "brand-new/cc: added (no baseline; not comparable)") {
			t.Errorf("added cell not classified:\n%s", buf.String())
		}
	})
	t.Run("removed", func(t *testing.T) {
		base, cur := loadTestRun(t), loadTestRun(t)
		cur.RMR = cur.RMR[:1] // drop mcs/cc from the current run
		var buf bytes.Buffer
		if n := report(&buf, base, cur, "test", thresholds{}); n != 0 {
			t.Fatalf("removed cell gated (%d):\n%s", n, buf.String())
		}
		if !strings.Contains(buf.String(), "mcs/cc: removed (present in baseline only)") {
			t.Errorf("removed cell not classified:\n%s", buf.String())
		}
	})
	t.Run("renamed", func(t *testing.T) {
		base, cur := loadTestRun(t), loadTestRun(t)
		cur.RMR[1].Lock = "mcs-v2" // same metrics, new key
		var buf bytes.Buffer
		if n := report(&buf, base, cur, "test", thresholds{}); n != 0 {
			t.Fatalf("renamed cell gated (%d):\n%s", n, buf.String())
		}
		out := buf.String()
		if !strings.Contains(out, "mcs/cc -> mcs-v2/cc: renamed (identical metrics)") {
			t.Errorf("renamed cell not classified:\n%s", out)
		}
		if strings.Contains(out, "mcs/cc: removed") || strings.Contains(out, "mcs-v2/cc: added") {
			t.Errorf("renamed cell double-reported as added+removed:\n%s", out)
		}
	})
	t.Run("renamed latency", func(t *testing.T) {
		base, cur := loadTestRun(t), loadTestRun(t)
		for i := range cur.Latency {
			if cur.Latency[i].Lock == "mcs" {
				cur.Latency[i].Lock = "mcs-v2"
			}
		}
		var buf bytes.Buffer
		if n := report(&buf, base, cur, "test", thresholds{}); n != 0 {
			t.Fatalf("renamed latency cell gated (%d):\n%s", n, buf.String())
		}
		if !strings.Contains(buf.String(), "mcs/cc/cost=dsmremote -> mcs-v2/cc/cost=dsmremote: renamed") {
			t.Errorf("renamed latency cell not classified:\n%s", buf.String())
		}
	})
}

func TestHistoryAppendAndResolve(t *testing.T) {
	hist := filepath.Join(t.TempDir(), "history.jsonl")
	e1 := loadTestRun(t)
	e1.Commit = "one"
	e2 := loadTestRun(t)
	e2.Commit = "two"
	full := loadTestRun(t)
	full.Quick = false
	full.Commit = "full"
	for _, e := range []*entry{e1, full, e2} {
		if err := appendEntry(hist, e); err != nil {
			t.Fatal(err)
		}
	}

	cur := loadTestRun(t)
	base, desc, err := resolveBaseline("", hist, cur)
	if err != nil {
		t.Fatal(err)
	}
	if base == nil || base.Commit != "two" {
		t.Fatalf("resolved %+v, want last quick entry (commit two)", base)
	}
	if !strings.Contains(desc, "two") {
		t.Errorf("baseline description %q does not name the commit", desc)
	}

	cur.Quick = false
	base, _, err = resolveBaseline("", hist, cur)
	if err != nil {
		t.Fatal(err)
	}
	if base == nil || base.Commit != "full" {
		t.Fatalf("full run resolved %+v, want the full entry", base)
	}

	// Appending must not rewrite existing lines.
	before, err := os.ReadFile(hist)
	if err != nil {
		t.Fatal(err)
	}
	if err := appendEntry(hist, e1); err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(hist)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(after, before) {
		t.Error("append rewrote existing history lines")
	}
}

func TestResolveBaselineMissingHistory(t *testing.T) {
	cur := loadTestRun(t)
	base, desc, err := resolveBaseline("", filepath.Join(t.TempDir(), "none.jsonl"), cur)
	if err != nil {
		t.Fatal(err)
	}
	if base != nil {
		t.Fatalf("missing history resolved %+v", base)
	}
	if !strings.Contains(desc, "no history") {
		t.Errorf("desc = %q", desc)
	}
}

func TestWriteBaselineRoundTrips(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench", "baseline.json")
	e := loadTestRun(t)
	if err := writeEntry(path, e); err != nil {
		t.Fatal(err)
	}
	got, _, err := resolveBaseline(path, "", e)
	if err != nil {
		t.Fatal(err)
	}
	if got.Commit != e.Commit || len(got.RMR) != len(e.RMR) || got.RMR[0].PassageMax != 9 {
		t.Errorf("round-trip mismatch: %+v", got)
	}
}
