// benchdiff is the benchmark-regression pipeline: it parses the reports
// scripts/bench.sh produces (BENCH_rmr.json and BENCH_native.json),
// compares them cell-by-cell against a baseline, prints a human-readable
// delta report, and maintains the append-only run log bench/history.jsonl.
//
// Two kinds of cells get different treatment:
//
//   - Deterministic simulator cells — the per-lock × per-model RMR matrix,
//     the simulated-latency matrix (per lock × memory model × cost model,
//     seeded), and the explorer's replay counts — are identical across
//     machines, so they gate exactly by default (-rmr-threshold 0): any
//     increase in a "higher is worse" metric fails the run. An intentional
//     algorithm change updates the committed baseline in the same PR.
//
// Cells present in only one run are classified rather than silently
// skipped: a cell only in the current run is "added" (no baseline — not
// comparable, never gated), a cell only in the baseline is "removed", and
// an added/removed pair with an identical metric fingerprint is folded
// into a single "renamed" line so a re-keyed lock or benchmark is not
// misread as one regression plus one improvement.
//
//   - Wall-clock cells — native throughput/latency, the lockd service-load
//     matrix (BENCH_lockd.json, -lockd) and the Go benchmark ns/op lines —
//     are machine- and load-dependent, so they are report-only unless a
//     threshold is set (-native-threshold / -bench-threshold, percent;
//     0 disables gating; the lockd cells never gate — chaos scenarios are
//     intentionally noisy).
//
// Usage:
//
//	benchdiff -rmr BENCH_rmr.json -native BENCH_native.json \
//	    -baseline bench/baseline.json -history bench/history.jsonl -append
//
// Exit status: 0 on success or no baseline (first run), 1 on a gated
// regression, 2 on usage or I/O errors.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// rmrCell is one deterministic (lock, model) cell of the simulator matrix,
// mirroring rmrbench's matrixEntry.
type rmrCell struct {
	Lock          string  `json:"lock"`
	Model         string  `json:"model"`
	Procs         int     `json:"procs"`
	PassageMax    int64   `json:"passage_rmrs_max"`
	PassageMean   float64 `json:"passage_rmrs_mean"`
	Words         int     `json:"words"`
	Aborters      int     `json:"aborters,omitempty"`
	HolderPassage int64   `json:"storm_holder_rmrs,omitempty"`
	WaiterPassage int64   `json:"storm_waiter_rmrs,omitempty"`
	AbortedMax    int64   `json:"storm_aborted_rmrs_max,omitempty"`
}

// latencyCell is one deterministic (lock, memory model, cost model) cell of
// the simulated-latency matrix, mirroring rmrbench's latencyEntry. All
// fields are seeded-deterministic, so the cells gate exactly like the RMR
// matrix — but only between runs with the same workload and cost seed.
type latencyCell struct {
	Lock          string `json:"lock"`
	Model         string `json:"model"`
	Cost          string `json:"cost"`
	CostSeed      int64  `json:"cost_seed"`
	Procs         int    `json:"procs"`
	QueueP50      int64  `json:"queue_sim_p50_ns"`
	QueueP95      int64  `json:"queue_sim_p95_ns"`
	QueueP99      int64  `json:"queue_sim_p99_ns"`
	QueueMax      int64  `json:"queue_sim_max_ns"`
	Aborters      int    `json:"aborters,omitempty"`
	HolderSim     int64  `json:"storm_holder_sim_ns,omitempty"`
	WaiterSim     int64  `json:"storm_waiter_sim_ns,omitempty"`
	AbortedSimMax int64  `json:"storm_aborted_sim_max_ns,omitempty"`
}

// exploreCell is one exhaustive-exploration record, mirroring rmrbench's
// exploreEntry. Count fields are deterministic; timing fields are not.
type exploreCell struct {
	Config        string  `json:"config"`
	POR           bool    `json:"por"`
	Visited       bool    `json:"visited"`
	Symmetry      bool    `json:"symmetry"`
	Shard         int     `json:"shard"`
	ShardCount    int     `json:"shard_count"`
	MaxSteps      int     `json:"maxsteps"`
	Explored      int     `json:"explored"`
	Pruned        int     `json:"pruned"`
	Equivalent    int     `json:"equivalent"`
	VisitedHits   int     `json:"visited_hits"`
	SymmetryCuts  int     `json:"symmetry_cuts"`
	Replays       int     `json:"replays"`
	ReplaysPerSec float64 `json:"replays_per_sec"`
	Exhausted     bool    `json:"exhausted"`
}

// exploreKey identifies a cell across runs: the configuration plus its
// point on the reduction lattice. Plain POR cells keep their historical
// key so old baselines still match; the visited/symmetry suffixes only
// appear on the new lattice points.
func exploreKey(c exploreCell) string {
	key := fmt.Sprintf("%s/por=%v", c.Config, c.POR)
	if c.Visited {
		key += "/visited=true"
	}
	if c.Symmetry {
		key += "/sym=true"
	}
	return key
}

// lockdCell is one wall-clock row of lockdload's service-load matrix: a
// (distribution, chaos) scenario's acquire percentiles plus the server's
// robustness counters. Always report-only — the chaos scenarios kill
// holders and waiters on purpose, so even the counter columns are noisy.
type lockdCell struct {
	Dist        string  `json:"dist"`
	Clients     int     `json:"clients"`
	Names       int     `json:"names"`
	Chaos       bool    `json:"chaos"`
	Ops         int64   `json:"ops"`
	Throughput  float64 `json:"throughput_ops_per_sec"`
	P50ns       int64   `json:"acquire_p50_ns"`
	P95ns       int64   `json:"acquire_p95_ns"`
	P99ns       int64   `json:"acquire_p99_ns"`
	Timeouts    int64   `json:"timeouts"`
	Sheds       int64   `json:"sheds"`
	KilledHolds int64   `json:"killed_holds"`
	KilledWaits int64   `json:"killed_waits"`
	Expiries    int64   `json:"expiries"`
	FenceRej    int64   `json:"fencing_rejections"`
}

// nativeCell is one wall-clock row of nativebench's matrix.
type nativeCell struct {
	Lock       string  `json:"lock"`
	Impl       string  `json:"impl"`
	Goroutines int     `json:"goroutines"`
	Procs      int     `json:"procs"`
	Ops        int     `json:"ops"`
	P50ns      int64   `json:"p50_ns"`
	P95ns      int64   `json:"p95_ns"`
	P99ns      int64   `json:"p99_ns"`
	Throughput float64 `json:"throughput_ops_per_s"`
}

// goBench is one Go testing-benchmark line from the rmr report; units
// beyond the fixed fields (ns/op, B/op, ...) live in Units.
type goBench struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Units      map[string]float64 `json:"units,omitempty"`
}

// entry is one benchmark run: the normalized union of the two reports,
// one JSON line of bench/history.jsonl.
type entry struct {
	Date      string        `json:"date,omitempty"`
	Commit    string        `json:"commit,omitempty"`
	Quick     bool          `json:"quick"`
	Benchtime string        `json:"benchtime,omitempty"`
	RMR       []rmrCell     `json:"rmr,omitempty"`
	Latency   []latencyCell `json:"latency,omitempty"`
	Explorer  []exploreCell `json:"explorer,omitempty"`
	Native    []nativeCell  `json:"native,omitempty"`
	Lockd     []lockdCell   `json:"lockd,omitempty"`
	GoBench   []goBench     `json:"gobench,omitempty"`
}

func main() {
	var (
		rmrPath    = flag.String("rmr", "", "BENCH_rmr.json to read (empty = skip)")
		nativePath = flag.String("native", "", "BENCH_native.json to read (empty = skip)")
		lockdPath  = flag.String("lockd", "", "BENCH_lockd.json to read (empty = skip)")
		histPath   = flag.String("history", "bench/history.jsonl", "append-only run log")
		appendHist = flag.Bool("append", false, "append this run to -history")
		basePath   = flag.String("baseline", "", "baseline entry JSON (empty = last matching history line)")
		writeBase  = flag.String("write-baseline", "", "write this run as a baseline entry here and exit")
		commit     = flag.String("commit", "", "commit id to stamp into the history entry")
		rmrThresh  = flag.Float64("rmr-threshold", 0, "allowed % increase in deterministic RMR/replay cells (0 = exact)")
		natThresh  = flag.Float64("native-threshold", 0, "gate native throughput regressions beyond this % (0 = report only)")
		benchThr   = flag.Float64("bench-threshold", 0, "gate Go-benchmark ns/op regressions beyond this % (0 = report only)")
		outPath    = flag.String("o", "", "write the delta report here instead of stdout")
	)
	flag.Parse()

	if *rmrPath == "" && *nativePath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: need -rmr and/or -native")
		os.Exit(2)
	}
	cur, err := loadRun(*rmrPath, *nativePath, *lockdPath, *commit)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	if *writeBase != "" {
		if err := writeEntry(*writeBase, cur); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		fmt.Printf("wrote baseline %s\n", *writeBase)
		return
	}

	base, baseDesc, err := resolveBaseline(*basePath, *histPath, cur)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		defer f.Close()
		out = f
	}

	regressions := 0
	if base == nil {
		fmt.Fprintf(out, "benchdiff: no baseline (%s); nothing to compare\n", baseDesc)
	} else {
		regressions = report(out, base, cur, baseDesc, thresholds{
			rmr: *rmrThresh, native: *natThresh, bench: *benchThr,
		})
	}

	if *appendHist {
		if err := appendEntry(*histPath, cur); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff:", err)
			os.Exit(2)
		}
		fmt.Fprintf(out, "appended run to %s\n", *histPath)
	}
	if regressions > 0 {
		fmt.Fprintf(out, "FAIL: %d gated regression(s)\n", regressions)
		os.Exit(1)
	}
	if base != nil {
		fmt.Fprintln(out, "OK: no gated regressions")
	}
}

// loadRun parses the bench.sh reports into one normalized entry.
func loadRun(rmrPath, nativePath, lockdPath, commit string) (*entry, error) {
	e := &entry{Commit: commit}
	if rmrPath != "" {
		var doc struct {
			Date       string           `json:"date"`
			Benchtime  string           `json:"benchtime"`
			Locks      []rmrCell        `json:"locks"`
			Latency    []latencyCell    `json:"latency"`
			Explorer   []exploreCell    `json:"explorer"`
			Benchmarks []map[string]any `json:"benchmarks"`
		}
		if err := readJSON(rmrPath, &doc); err != nil {
			return nil, err
		}
		e.Date = doc.Date
		e.Benchtime = doc.Benchtime
		e.RMR = doc.Locks
		e.Latency = doc.Latency
		e.Explorer = doc.Explorer
		e.GoBench = normalizeGoBench(doc.Benchmarks)
		if doc.Benchtime == "1x" {
			e.Quick = true
		}
	}
	if nativePath != "" {
		var doc struct {
			Quick  bool         `json:"quick"`
			Native []nativeCell `json:"native"`
		}
		if err := readJSON(nativePath, &doc); err != nil {
			return nil, err
		}
		e.Native = doc.Native
		e.Quick = e.Quick || doc.Quick
	}
	if lockdPath != "" {
		var doc struct {
			Quick bool        `json:"quick"`
			Lockd []lockdCell `json:"lockd"`
		}
		if err := readJSON(lockdPath, &doc); err != nil {
			return nil, err
		}
		e.Lockd = doc.Lockd
		e.Quick = e.Quick || doc.Quick
	}
	return e, nil
}

// normalizeGoBench lifts bench.sh's loosely-keyed benchmark objects into
// goBench values: fixed name/iterations fields, everything else a unit.
func normalizeGoBench(rows []map[string]any) []goBench {
	var out []goBench
	for _, row := range rows {
		b := goBench{Units: map[string]float64{}}
		for k, v := range row {
			switch k {
			case "name":
				b.Name, _ = v.(string)
			case "iterations":
				if f, ok := v.(float64); ok {
					b.Iterations = int64(f)
				}
			default:
				if f, ok := v.(float64); ok {
					b.Units[k] = f
				}
			}
		}
		if b.Name != "" {
			out = append(out, b)
		}
	}
	return out
}

func readJSON(path string, v any) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(buf, v); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

func writeEntry(path string, e *entry) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	buf, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// appendEntry appends e as one line of the history log, creating it (and
// its directory) on first use. The log is append-only by construction:
// existing lines are never rewritten.
func appendEntry(path string, e *entry) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	buf, err := json.Marshal(e)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(buf, '\n')); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// resolveBaseline picks the entry to diff against: an explicit -baseline
// file, else the newest history line whose quick mode matches the current
// run (quick and full runs are not comparable). A nil entry with a nil
// error means "no baseline yet".
func resolveBaseline(basePath, histPath string, cur *entry) (*entry, string, error) {
	if basePath != "" {
		var e entry
		if err := readJSON(basePath, &e); err != nil {
			return nil, "", err
		}
		return &e, basePath, nil
	}
	f, err := os.Open(histPath)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, "no history at " + histPath, nil
		}
		return nil, "", err
	}
	defer f.Close()
	var last *entry
	line := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e entry
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, "", fmt.Errorf("%s:%d: %w", histPath, line, err)
		}
		if e.Quick == cur.Quick {
			ec := e
			last = &ec
		}
	}
	if err := sc.Err(); err != nil {
		return nil, "", err
	}
	if last == nil {
		return nil, fmt.Sprintf("no %s entry in %s", mode(cur.Quick), histPath), nil
	}
	desc := fmt.Sprintf("%s (last %s entry", histPath, mode(cur.Quick))
	if last.Commit != "" {
		desc += ", commit " + last.Commit
	}
	return last, desc + ")", nil
}

func mode(quick bool) string {
	if quick {
		return "quick"
	}
	return "full"
}

type thresholds struct{ rmr, native, bench float64 }

// report prints every per-cell delta and returns the number of gated
// regressions.
func report(w io.Writer, base, cur *entry, baseDesc string, th thresholds) int {
	fmt.Fprintf(w, "benchdiff: comparing against %s\n", baseDesc)
	if base.Quick != cur.Quick {
		fmt.Fprintf(w, "warning: comparing %s run against %s baseline; wall-clock deltas are meaningless\n",
			mode(cur.Quick), mode(base.Quick))
	}
	regressions := 0
	regressions += diffRMR(w, base.RMR, cur.RMR, th.rmr)
	regressions += diffLatency(w, base.Latency, cur.Latency, th.rmr)
	regressions += diffExplorer(w, base.Explorer, cur.Explorer, th.rmr)
	regressions += diffNative(w, base.Native, cur.Native, th.native)
	diffLockd(w, base.Lockd, cur.Lockd)
	regressions += diffGoBench(w, base.GoBench, cur.GoBench, th.bench)
	return regressions
}

// exceeds reports whether cur regressed past base by more than pct percent
// (for "higher is worse" metrics).
func exceeds(base, cur, pct float64) bool {
	if cur <= base {
		return false
	}
	return cur > base*(1+pct/100)
}

// delta formats a signed percent change, guarding zero baselines.
func delta(base, cur float64) string {
	if base == 0 {
		if cur == 0 {
			return "+0.0%"
		}
		return "new"
	}
	return fmt.Sprintf("%+.1f%%", (cur-base)/base*100)
}

// metric is one compared number within a cell.
type metric struct {
	name        string
	base, cur   float64
	higherWorse bool
}

// diffMetrics prints one cell's metric lines and counts gated regressions.
// Cells whose metrics all match are kept quiet to keep the report legible.
func diffMetrics(w io.Writer, cellName string, ms []metric, pct float64, gate bool) int {
	changed := false
	for _, m := range ms {
		if m.base != m.cur {
			changed = true
			break
		}
	}
	if !changed {
		return 0
	}
	regressions := 0
	fmt.Fprintf(w, "  %s\n", cellName)
	for _, m := range ms {
		if m.base == m.cur {
			continue
		}
		verdict := ""
		if m.higherWorse && exceeds(m.base, m.cur, pct) {
			if gate {
				verdict = "  REGRESSION"
				regressions++
			} else {
				verdict = "  worse (not gated)"
			}
		} else if m.higherWorse && m.cur < m.base {
			verdict = "  improved"
		}
		fmt.Fprintf(w, "    %-24s %14.6g -> %-14.6g %s%s\n",
			m.name, m.base, m.cur, delta(m.base, m.cur), verdict)
	}
	return regressions
}

// classifyCells explains key-set differences within one cell family: a key
// only in the current run is "added" (no baseline — not comparable, never
// gated), a key only in the baseline is "removed", and an added/removed
// pair whose metric fingerprints are identical collapses into one
// "renamed" line. added and removed map each key to its fingerprint; the
// output order is deterministic (sorted keys, greedy first-match pairing).
func classifyCells(w io.Writer, added, removed map[string]string) {
	renamedTo := map[string]string{}
	taken := map[string]bool{}
	for _, rk := range sortedStringKeys(removed) {
		for _, ak := range sortedStringKeys(added) {
			if taken[ak] || removed[rk] != added[ak] {
				continue
			}
			renamedTo[rk] = ak
			taken[ak] = true
			break
		}
	}
	for _, rk := range sortedStringKeys(removed) {
		if ak, ok := renamedTo[rk]; ok {
			fmt.Fprintf(w, "  %s -> %s: renamed (identical metrics); update the baseline to re-key the cell\n", rk, ak)
		}
	}
	for _, ak := range sortedStringKeys(added) {
		if !taken[ak] {
			fmt.Fprintf(w, "  %s: added (no baseline; not comparable)\n", ak)
		}
	}
	for _, rk := range sortedStringKeys(removed) {
		if _, ok := renamedTo[rk]; !ok {
			fmt.Fprintf(w, "  %s: removed (present in baseline only)\n", rk)
		}
	}
}

func sortedStringKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// rmrFingerprint is an rmrCell's metric signature with the lock name
// blanked, so a renamed lock's cells still match their old selves.
func rmrFingerprint(c rmrCell) string {
	c.Lock = ""
	return fmt.Sprintf("%+v", c)
}

func diffRMR(w io.Writer, base, cur []rmrCell, pct float64) int {
	if len(base) == 0 || len(cur) == 0 {
		return 0
	}
	fmt.Fprintln(w, "rmr matrix (deterministic, gated):")
	bm := map[string]rmrCell{}
	for _, c := range base {
		bm[c.Lock+"/"+c.Model] = c
	}
	regressions := 0
	matched := 0
	added := map[string]string{}
	seen := map[string]bool{}
	for _, c := range sortedRMR(cur) {
		key := c.Lock + "/" + c.Model
		b, ok := bm[key]
		if !ok {
			added[key] = rmrFingerprint(c)
			continue
		}
		seen[key] = true
		matched++
		if b.Procs != c.Procs || b.Aborters != c.Aborters {
			fmt.Fprintf(w, "  %s: workload changed (procs %d->%d, aborters %d->%d); not comparable\n",
				key, b.Procs, c.Procs, b.Aborters, c.Aborters)
			continue
		}
		ms := []metric{
			{"passage_rmrs_max", float64(b.PassageMax), float64(c.PassageMax), true},
			{"passage_rmrs_mean", b.PassageMean, c.PassageMean, true},
			{"words", float64(b.Words), float64(c.Words), true},
		}
		if c.Aborters > 0 {
			ms = append(ms,
				metric{"storm_holder_rmrs", float64(b.HolderPassage), float64(c.HolderPassage), true},
				metric{"storm_waiter_rmrs", float64(b.WaiterPassage), float64(c.WaiterPassage), true},
				metric{"storm_aborted_rmrs_max", float64(b.AbortedMax), float64(c.AbortedMax), true},
			)
		}
		regressions += diffMetrics(w, key, ms, pct, true)
	}
	removed := map[string]string{}
	for key, b := range bm {
		if !seen[key] {
			removed[key] = rmrFingerprint(b)
		}
	}
	classifyCells(w, added, removed)
	fmt.Fprintf(w, "  %d cell(s) compared\n", matched)
	return regressions
}

// latencyFingerprint blanks the lock name of a latencyCell's signature,
// mirroring rmrFingerprint.
func latencyFingerprint(c latencyCell) string {
	c.Lock = ""
	return fmt.Sprintf("%+v", c)
}

// diffLatency gates the simulated-latency matrix exactly like the RMR
// matrix: the cells are seeded-deterministic, so any increase past the rmr
// threshold fails. A cell whose workload or cost seed changed is reported
// as not comparable instead of diffed.
func diffLatency(w io.Writer, base, cur []latencyCell, pct float64) int {
	if len(base) == 0 || len(cur) == 0 {
		return 0
	}
	fmt.Fprintln(w, "latency matrix (simulated, deterministic, gated):")
	bm := map[string]latencyCell{}
	for _, c := range base {
		bm[c.Lock+"/"+c.Model+"/cost="+c.Cost] = c
	}
	regressions := 0
	matched := 0
	added := map[string]string{}
	seen := map[string]bool{}
	out := append([]latencyCell(nil), cur...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Lock != out[j].Lock {
			return out[i].Lock < out[j].Lock
		}
		if out[i].Model != out[j].Model {
			return out[i].Model < out[j].Model
		}
		return out[i].Cost < out[j].Cost
	})
	for _, c := range out {
		key := c.Lock + "/" + c.Model + "/cost=" + c.Cost
		b, ok := bm[key]
		if !ok {
			added[key] = latencyFingerprint(c)
			continue
		}
		seen[key] = true
		matched++
		if b.Procs != c.Procs || b.Aborters != c.Aborters || b.CostSeed != c.CostSeed {
			fmt.Fprintf(w, "  %s: workload changed (procs %d->%d, aborters %d->%d, cost_seed %d->%d); not comparable\n",
				key, b.Procs, c.Procs, b.Aborters, c.Aborters, b.CostSeed, c.CostSeed)
			continue
		}
		ms := []metric{
			{"queue_sim_p50_ns", float64(b.QueueP50), float64(c.QueueP50), true},
			{"queue_sim_p95_ns", float64(b.QueueP95), float64(c.QueueP95), true},
			{"queue_sim_p99_ns", float64(b.QueueP99), float64(c.QueueP99), true},
			{"queue_sim_max_ns", float64(b.QueueMax), float64(c.QueueMax), true},
		}
		if c.Aborters > 0 {
			ms = append(ms,
				metric{"storm_holder_sim_ns", float64(b.HolderSim), float64(c.HolderSim), true},
				metric{"storm_waiter_sim_ns", float64(b.WaiterSim), float64(c.WaiterSim), true},
				metric{"storm_aborted_sim_max_ns", float64(b.AbortedSimMax), float64(c.AbortedSimMax), true},
			)
		}
		regressions += diffMetrics(w, key, ms, pct, true)
	}
	removed := map[string]string{}
	for key, b := range bm {
		if !seen[key] {
			removed[key] = latencyFingerprint(b)
		}
	}
	classifyCells(w, added, removed)
	fmt.Fprintf(w, "  %d cell(s) compared\n", matched)
	return regressions
}

func sortedRMR(cells []rmrCell) []rmrCell {
	out := append([]rmrCell(nil), cells...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Lock != out[j].Lock {
			return out[i].Lock < out[j].Lock
		}
		return out[i].Model < out[j].Model
	})
	return out
}

func diffExplorer(w io.Writer, base, cur []exploreCell, pct float64) int {
	if len(base) == 0 || len(cur) == 0 {
		return 0
	}
	fmt.Fprintln(w, "explorer (replay counts deterministic, gated; rates report-only):")
	bm := map[string]exploreCell{}
	for _, c := range base {
		bm[exploreKey(c)] = c
	}
	regressions := 0
	added := map[string]string{}
	seen := map[string]bool{}
	for _, c := range cur {
		key := exploreKey(c)
		b, ok := bm[key]
		if !ok {
			added[key] = exploreFingerprint(c)
			continue
		}
		seen[key] = true
		if b.MaxSteps != c.MaxSteps {
			fmt.Fprintf(w, "  %s: step bound changed (%d->%d); not comparable\n", key, b.MaxSteps, c.MaxSteps)
			continue
		}
		if b.Shard != c.Shard || b.ShardCount != c.ShardCount {
			fmt.Fprintf(w, "  %s: shard changed (%d/%d -> %d/%d); not comparable\n",
				key, b.Shard, b.ShardCount, c.Shard, c.ShardCount)
			continue
		}
		if b.Exhausted != c.Exhausted {
			fmt.Fprintf(w, "  %s: exhausted %v -> %v\n", key, b.Exhausted, c.Exhausted)
			if !c.Exhausted {
				regressions++
			}
		}
		regressions += diffMetrics(w, key, []metric{
			{"replays", float64(b.Replays), float64(c.Replays), true},
			{"explored", float64(b.Explored), float64(c.Explored), true},
			{"visited_hits", float64(b.VisitedHits), float64(c.VisitedHits), true},
			{"symmetry_cuts", float64(b.SymmetryCuts), float64(c.SymmetryCuts), true},
			{"replays_per_sec", b.ReplaysPerSec, c.ReplaysPerSec, false},
		}, pct, true)
	}
	removed := map[string]string{}
	for key, b := range bm {
		if !seen[key] {
			removed[key] = exploreFingerprint(b)
		}
	}
	classifyCells(w, added, removed)
	return regressions
}

// exploreFingerprint is an exploreCell's deterministic-count signature with
// the config name blanked (rates excluded — they never repeat exactly).
func exploreFingerprint(c exploreCell) string {
	fp := fmt.Sprintf("por=%v maxsteps=%d explored=%d pruned=%d equivalent=%d replays=%d exhausted=%v",
		c.POR, c.MaxSteps, c.Explored, c.Pruned, c.Equivalent, c.Replays, c.Exhausted)
	if c.Visited || c.Symmetry {
		fp += fmt.Sprintf(" visited=%v sym=%v hits=%d cuts=%d",
			c.Visited, c.Symmetry, c.VisitedHits, c.SymmetryCuts)
	}
	return fp
}

func diffNative(w io.Writer, base, cur []nativeCell, pct float64) int {
	if len(base) == 0 || len(cur) == 0 {
		return 0
	}
	gate := pct > 0
	how := "report-only"
	if gate {
		how = fmt.Sprintf("gated at %.0f%%", pct)
	}
	fmt.Fprintf(w, "native matrix (wall-clock, %s):\n", how)
	bm := map[string]nativeCell{}
	for _, c := range base {
		bm[fmt.Sprintf("%s/%s/g=%d", c.Lock, c.Impl, c.Goroutines)] = c
	}
	regressions := 0
	added := map[string]string{}
	seen := map[string]bool{}
	for _, c := range cur {
		key := fmt.Sprintf("%s/%s/g=%d", c.Lock, c.Impl, c.Goroutines)
		b, ok := bm[key]
		if !ok {
			added[key] = nativeFingerprint(c)
			continue
		}
		seen[key] = true
		// Throughput is "lower is worse": compare inverted so exceeds()
		// sees a higher-worse metric.
		ms := []metric{
			{"p50_ns", float64(b.P50ns), float64(c.P50ns), true},
			{"p95_ns", float64(b.P95ns), float64(c.P95ns), true},
			{"p99_ns", float64(b.P99ns), float64(c.P99ns), true},
		}
		regressions += diffMetrics(w, key, ms, pct, gate)
		if b.Throughput != c.Throughput {
			worse := gate && b.Throughput > 0 && c.Throughput < b.Throughput*(1-pct/100)
			verdict := ""
			if worse {
				verdict = "  REGRESSION"
				regressions++
			}
			fmt.Fprintf(w, "    %-24s %14.6g -> %-14.6g %s%s\n",
				key+" ops/s", b.Throughput, c.Throughput, delta(b.Throughput, c.Throughput), verdict)
		}
	}
	removed := map[string]string{}
	for key, b := range bm {
		if !seen[key] {
			removed[key] = nativeFingerprint(b)
		}
	}
	classifyCells(w, added, removed)
	return regressions
}

// lockdKey identifies one service-load scenario across runs.
func lockdKey(c lockdCell) string {
	key := fmt.Sprintf("lockd/%s/c=%d/n=%d", c.Dist, c.Clients, c.Names)
	if c.Chaos {
		key += "/chaos"
	}
	return key
}

// diffLockd reports the service-load deltas. It never gates: every column
// is wall-clock or chaos-driven (the chaos scenarios kill holders and
// cancel waiters at random, so even expiry and shed counts jitter run to
// run); the section exists so a latency cliff or a counter going to zero
// is visible in the delta report, not to fail CI.
func diffLockd(w io.Writer, base, cur []lockdCell) {
	if len(base) == 0 || len(cur) == 0 {
		return
	}
	fmt.Fprintln(w, "lockd service load (wall-clock + chaos counters, report-only):")
	bm := map[string]lockdCell{}
	for _, c := range base {
		bm[lockdKey(c)] = c
	}
	added := map[string]string{}
	seen := map[string]bool{}
	for _, c := range cur {
		key := lockdKey(c)
		b, ok := bm[key]
		if !ok {
			added[key] = lockdFingerprint(c)
			continue
		}
		seen[key] = true
		ms := []metric{
			{"acquire_p50_ns", float64(b.P50ns), float64(c.P50ns), true},
			{"acquire_p95_ns", float64(b.P95ns), float64(c.P95ns), true},
			{"acquire_p99_ns", float64(b.P99ns), float64(c.P99ns), true},
			{"timeouts", float64(b.Timeouts), float64(c.Timeouts), true},
			{"sheds", float64(b.Sheds), float64(c.Sheds), true},
			{"expiries", float64(b.Expiries), float64(c.Expiries), false},
			{"fencing_rejections", float64(b.FenceRej), float64(c.FenceRej), false},
			{"killed_holds", float64(b.KilledHolds), float64(c.KilledHolds), false},
			{"killed_waits", float64(b.KilledWaits), float64(c.KilledWaits), false},
		}
		diffMetrics(w, key, ms, 0, false)
		if b.Throughput != c.Throughput {
			fmt.Fprintf(w, "    %-24s %14.6g -> %-14.6g %s\n",
				key+" ops/s", b.Throughput, c.Throughput, delta(b.Throughput, c.Throughput))
		}
	}
	removed := map[string]string{}
	for key, b := range bm {
		if !seen[key] {
			removed[key] = lockdFingerprint(b)
		}
	}
	classifyCells(w, added, removed)
}

// lockdFingerprint is a lockdCell's workload signature (not its measured
// numbers — wall-clock values never repeat, so a renamed scenario matches
// on shape alone).
func lockdFingerprint(c lockdCell) string {
	return fmt.Sprintf("dist=%s clients=%d names=%d chaos=%v", c.Dist, c.Clients, c.Names, c.Chaos)
}

// nativeFingerprint blanks the lock name of a nativeCell's signature.
// Wall-clock numbers rarely repeat exactly, so native renames usually
// surface as added+removed — the fingerprint exists for symmetry and for
// replayed reports.
func nativeFingerprint(c nativeCell) string {
	c.Lock = ""
	return fmt.Sprintf("%+v", c)
}

func diffGoBench(w io.Writer, base, cur []goBench, pct float64) int {
	if len(base) == 0 || len(cur) == 0 {
		return 0
	}
	gate := pct > 0
	how := "report-only"
	if gate {
		how = fmt.Sprintf("gated at %.0f%%", pct)
	}
	fmt.Fprintf(w, "go benchmarks (wall-clock, %s):\n", how)
	bm := map[string]goBench{}
	for _, b := range base {
		bm[b.Name] = b
	}
	regressions := 0
	added := map[string]string{}
	seen := map[string]bool{}
	for _, c := range cur {
		b, ok := bm[c.Name]
		if !ok {
			added[c.Name] = benchFingerprint(c)
			continue
		}
		seen[c.Name] = true
		var ms []metric
		for _, unit := range sortedKeys(c.Units) {
			bv, ok := b.Units[unit]
			if !ok {
				continue
			}
			// Per-op costs (ns/op, B/op, allocs/op) are higher-is-worse;
			// per-second rates (replays/s, ...) are the opposite and
			// never gate.
			ms = append(ms, metric{unit, bv, c.Units[unit], !strings.HasSuffix(unit, "/s")})
		}
		regressions += diffMetrics(w, c.Name, ms, pct, gate)
	}
	removed := map[string]string{}
	for name, b := range bm {
		if !seen[name] {
			removed[name] = benchFingerprint(b)
		}
	}
	classifyCells(w, added, removed)
	return regressions
}

// benchFingerprint is a Go benchmark's unit signature without its name.
func benchFingerprint(b goBench) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "iters=%d", b.Iterations)
	for _, unit := range sortedKeys(b.Units) {
		fmt.Fprintf(&sb, " %s=%g", unit, b.Units[unit])
	}
	return sb.String()
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
