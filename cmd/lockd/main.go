// Command lockd serves the sharded lock service over HTTP/JSON: named
// locks with leases and fencing tokens, hardened against client failure
// (see docs/LOCKD.md).
//
//	lockd -listen :7513
//
// SIGINT/SIGTERM triggers a graceful drain: /healthz flips to 503 so load
// balancers stop routing here, new acquires are shed with "draining",
// every parked waiter is aborted via context cancellation (the paper's
// bounded abort), and the process exits once in-flight requests hit zero
// or the drain deadline expires.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sublock/lockd"
)

func main() {
	var (
		listen     = flag.String("listen", ":7513", "HTTP listen address")
		shards     = flag.Int("shards", lockd.DefaultShards, "lock-table stripes")
		poolSize   = flag.Int("pool", lockd.DefaultPoolSize, "abortable handles per named lock")
		budget     = flag.Int("waiter-budget", lockd.DefaultShardWaiterBudget, "in-flight acquires per shard before shedding")
		inflight   = flag.Int("max-inflight", lockd.DefaultMaxInFlight, "in-flight acquires across all shards before shedding")
		ttl        = flag.Duration("ttl", lockd.DefaultTTL, "default lease TTL")
		maxTTL     = flag.Duration("max-ttl", lockd.DefaultMaxTTL, "requested TTLs are clamped here")
		wait       = flag.Duration("wait", lockd.DefaultWait, "default acquire wait budget")
		maxWait    = flag.Duration("max-wait", lockd.DefaultMaxWait, "requested waits are clamped here")
		sweep      = flag.Duration("sweep", lockd.DefaultSweepInterval, "lease-expiry sweeper interval")
		idle       = flag.Duration("idle-retire", lockd.DefaultIdleRetire, "retire a name's lock after this long idle")
		maxLocks   = flag.Int("max-locks-per-shard", lockd.DefaultMaxLocksPerShard, "live names per shard before LRU eviction")
		retryAfter = flag.Duration("retry-after", lockd.DefaultRetryAfter, "hint attached to 503 responses")
		writeTO    = flag.Duration("write-timeout", lockd.DefaultWriteTimeout, "per-response write deadline (slow clients)")
		drainTO    = flag.Duration("drain-timeout", 15*time.Second, "graceful-drain deadline on SIGINT/SIGTERM")
	)
	flag.Parse()

	s := lockd.New(lockd.Config{
		Shards:            *shards,
		PoolSize:          *poolSize,
		ShardWaiterBudget: *budget,
		MaxInFlight:       *inflight,
		TTL:               *ttl,
		MaxTTL:            *maxTTL,
		Wait:              *wait,
		MaxWait:           *maxWait,
		SweepInterval:     *sweep,
		IdleRetire:        *idle,
		MaxLocksPerShard:  *maxLocks,
		RetryAfter:        *retryAfter,
		WriteTimeout:      *writeTO,
	})

	hs := &http.Server{
		Addr:              *listen,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
		// No blanket WriteTimeout: acquire handlers legitimately block for
		// the wait budget; response writes are bounded per-write instead
		// (Config.WriteTimeout via http.ResponseController).
	}

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "lockd: listening on %s (%d shards, lease TTL %v)\n", *listen, *shards, *ttl)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "lockd:", err)
		os.Exit(1)
	case sig := <-sigc:
		fmt.Fprintf(os.Stderr, "lockd: %v: draining (deadline %v)\n", sig, *drainTO)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	drainErr := s.Drain(ctx)
	if err := hs.Shutdown(ctx); err != nil {
		hs.Close()
	}
	s.Close()
	if drainErr != nil {
		fmt.Fprintln(os.Stderr, "lockd:", drainErr)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "lockd: drained clean")
}
