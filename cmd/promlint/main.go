// promlint validates Prometheus text-exposition documents with the shared
// internal/promtext linter — the same checks the exporter tests run,
// packaged for pipelines: CI scrapes an endpoint and pipes the body here.
//
// Usage:
//
//	promlint [file ...]        # lint files ("-" or none = stdin)
//	promlint -url http://localhost:6060/metrics
//
// Exit status: 0 when every input is clean, 1 on lint findings, 2 on I/O
// errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"

	"sublock/internal/promtext"
)

func main() {
	url := flag.String("url", "", "scrape and lint this URL instead of files")
	flag.Parse()

	findings := 0
	lint := func(name string, r io.Reader) {
		for _, err := range promtext.Lint(r) {
			fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
			findings++
		}
	}

	if *url != "" {
		resp, err := http.Get(*url)
		if err != nil {
			fmt.Fprintln(os.Stderr, "promlint:", err)
			os.Exit(2)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fmt.Fprintf(os.Stderr, "promlint: %s: %s\n", *url, resp.Status)
			os.Exit(2)
		}
		lint(*url, resp.Body)
	} else if flag.NArg() == 0 {
		lint("stdin", os.Stdin)
	} else {
		for _, path := range flag.Args() {
			if path == "-" {
				lint("stdin", os.Stdin)
				continue
			}
			f, err := os.Open(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "promlint:", err)
				os.Exit(2)
			}
			lint(path, f)
			f.Close()
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "promlint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}
