// Command lockdload drives the lockd load harness and writes the results
// as BENCH_lockd.json: acquire-latency percentiles (p50/p95/p99,
// nanoseconds), throughput, and the server's robustness counters (lease
// expiries, sheds, fencing rejections) for three scenarios — uniform
// names, hot-key Zipf names, and hot-key Zipf with chaos (clients killed
// mid-hold and mid-wait).
//
// By default each scenario runs against its own in-process server, which
// is what CI and scripts/bench.sh use; -addr points every scenario at an
// already-running lockd instead (server counters are then omitted — scrape
// the server's /metrics for them).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"sublock/load"
)

// cell is one scenario's row in BENCH_lockd.json, shaped for
// cmd/benchdiff's lockd section.
type cell struct {
	Dist        string  `json:"dist"`
	Clients     int     `json:"clients"`
	Names       int     `json:"names"`
	Chaos       bool    `json:"chaos"`
	Ops         int64   `json:"ops"`
	Throughput  float64 `json:"throughput_ops_per_sec"`
	P50ns       int64   `json:"acquire_p50_ns"`
	P95ns       int64   `json:"acquire_p95_ns"`
	P99ns       int64   `json:"acquire_p99_ns"`
	Timeouts    int64   `json:"timeouts"`
	Sheds       int64   `json:"sheds"`
	KilledHolds int64   `json:"killed_holds"`
	KilledWaits int64   `json:"killed_waits"`
	Expiries    int64   `json:"expiries"`
	FenceRej    int64   `json:"fencing_rejections"`
}

func toCell(r load.Result) cell {
	c := cell{
		Dist:        r.Dist,
		Clients:     r.Clients,
		Names:       r.Names,
		Chaos:       r.Chaos,
		Ops:         r.Ops,
		Throughput:  r.Throughput,
		P50ns:       r.P50,
		P95ns:       r.P95,
		P99ns:       r.P99,
		Timeouts:    r.Timeouts,
		Sheds:       r.Sheds,
		KilledHolds: r.KilledHolds,
		KilledWaits: r.KilledWaits,
	}
	if r.Server != nil {
		c.Expiries = r.Server.Expiries
		c.FenceRej = r.Server.FencingRejects
	}
	return c
}

func main() {
	var (
		out      = flag.String("o", "", "write JSON here (default stdout)")
		addr     = flag.String("addr", "", "target a running lockd (host:port) instead of in-process servers")
		quick    = flag.Bool("quick", false, "small fast run for CI smoke")
		clients  = flag.Int("clients", 32, "concurrent clients per scenario")
		names    = flag.Int("names", 256, "lock-name space size")
		duration = flag.Duration("duration", 3*time.Second, "run length per scenario")
		seed     = flag.Int64("seed", 1, "PRNG seed (name choice and chaos)")
	)
	flag.Parse()

	base := load.Defaults()
	base.Addr = *addr
	base.Clients = *clients
	base.Names = *names
	base.Duration = *duration
	base.Seed = *seed
	if *quick {
		base.Clients = 8
		base.Names = 64
		base.Duration = 500 * time.Millisecond
	}

	scenarios := []struct {
		name string
		mut  func(*load.Config)
	}{
		{"uniform", func(c *load.Config) { c.Dist = "uniform" }},
		{"zipf", func(c *load.Config) { c.Dist = "zipf" }},
		{"zipf+chaos", func(c *load.Config) {
			c.Dist = "zipf"
			c.TTL = 200 * time.Millisecond
			c.Chaos = load.Chaos{KillHold: 0.05, KillWait: 0.05}
		}},
	}

	cells := make([]cell, 0, len(scenarios))
	for _, sc := range scenarios {
		cfg := base
		sc.mut(&cfg)
		fmt.Fprintf(os.Stderr, "lockdload: %s (%d clients, %d names, %v)\n",
			sc.name, cfg.Clients, cfg.Names, cfg.Duration)
		res, err := load.Run(context.Background(), cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lockdload:", err)
			os.Exit(1)
		}
		cells = append(cells, toCell(res))
	}

	doc := map[string]any{
		"schema": "lockdload/v1",
		"quick":  *quick,
		"lockd":  cells,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "lockdload:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
	} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "lockdload:", err)
		os.Exit(1)
	}
}
