// Command rmrbench regenerates the evaluation artifacts of Alon & Morrison
// (PODC 2018) on the RMR-metered shared-memory simulator: every column of
// Table 1 and the figure-derived experiments of §4 and §6.
//
// Usage:
//
//	rmrbench [-quick] [experiment ...]
//
// With no arguments every experiment runs (-list enumerates: e1–e7 and
// e9–e16; e8, the Theorem 2 property checking, lives in cmd/locktest and
// the test suite). -quick shrinks the sweeps for a fast smoke run, -csv
// emits machine-readable series, -chart N renders column N as an ASCII bar
// chart, -seed feeds the randomized workloads (e14), and -prom FILE
// additionally writes a stats-instrumented abort storm's counters in the
// Prometheus text exposition format.
//
// -matrix FILE writes a per-lock × per-model (CC/DSM) benchmark matrix as
// JSON, iterating the locks registry instead of any hand-listed lock set
// (-list-locks enumerates the registry). With -matrix and no experiment
// arguments, only the matrix is produced; scripts/bench.sh embeds it in
// BENCH_rmr.json.
//
// -deadline D bounds the whole run in wall-clock time: a benchmark that
// livelocks past it reports the in-flight experiment to stderr and exits
// with status 3 instead of hanging the pipeline (scripts/bench.sh relies
// on the non-zero exit to stop rather than splice partial output).
//
// -explore FILE writes the bounded-exhaustive exploration record as JSON:
// the paper lock's E8 configurations (with and without an aborter) explored
// to exhaustion with partial-order reduction off and on, recording replays,
// pruned-equivalent counts, and replays/sec for each. -por=false restricts
// it to the unreduced baseline. scripts/bench.sh embeds this too.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"sublock/internal/harness"
	"sublock/locks"
	"sublock/rmr"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rmrbench:", err)
		os.Exit(1)
	}
}

type experiment struct {
	id   string
	desc string
	full func() (*harness.Table, error)
	fast func() (*harness.Table, error)
}

func experiments(seed int64) []experiment {
	const w = harness.DefaultW
	return []experiment{
		{
			id: "e1", desc: "Table 1 worst-case column",
			full: func() (*harness.Table, error) { return harness.Table1WorstCase([]int{64, 256, 1024, 4096}, w) },
			fast: func() (*harness.Table, error) { return harness.Table1WorstCase([]int{16, 64}, w) },
		},
		{
			id: "e2", desc: "Table 1 no-aborts column",
			full: func() (*harness.Table, error) { return harness.Table1NoAborts([]int{64, 256, 1024}, w) },
			fast: func() (*harness.Table, error) { return harness.Table1NoAborts([]int{16, 64}, w) },
		},
		{
			id: "e3", desc: "Table 1 adaptive-bound column",
			full: func() (*harness.Table, error) {
				return harness.Table1Adaptive(4096, w, []int{0, 1, 4, 16, 64, 256, 1024})
			},
			fast: func() (*harness.Table, error) { return harness.Table1Adaptive(64, w, []int{0, 4, 16}) },
		},
		{
			id: "e4", desc: "Table 1 space column",
			full: func() (*harness.Table, error) { return harness.Table1Space([]int{64, 256, 1024}, w) },
			fast: func() (*harness.Table, error) { return harness.Table1Space([]int{16, 64}, w) },
		},
		{
			id: "e5", desc: "§1 time/space tradeoff: RMRs vs word width W",
			full: func() (*harness.Table, error) { return harness.WSweep(4096, []int{2, 4, 8, 16, 32, 64}) },
			fast: func() (*harness.Table, error) { return harness.WSweep(256, []int{2, 8, 64}) },
		},
		{
			id: "e6", desc: "Figure 2 FindNext scenarios",
			full: harness.Fig2Scenarios,
			fast: harness.Fig2Scenarios,
		},
		{
			id: "e7", desc: "Figure 4 adaptive vs plain FindNext",
			full: func() (*harness.Table, error) { return harness.Fig4Adaptive([]int{64, 512, 4096, 32768}, w) },
			fast: func() (*harness.Table, error) { return harness.Fig4Adaptive([]int{64, 512}, w) },
		},
		{
			id: "e9", desc: "§6 long-lived transformation overhead",
			full: func() (*harness.Table, error) { return harness.LongLivedOverhead(16, 32, w) },
			fast: func() (*harness.Table, error) { return harness.LongLivedOverhead(4, 8, w) },
		},
		{
			id: "e10", desc: "§3 DSM spin-bit indirection",
			full: func() (*harness.Table, error) { return harness.DSMVariant([]int{100, 1000, 10000}) },
			fast: func() (*harness.Table, error) { return harness.DSMVariant([]int{100, 1000}) },
		},
		{
			id: "e11", desc: "MCS O(1) anchor",
			full: func() (*harness.Table, error) { return harness.MCSAnchor([]int{64, 256, 1024}) },
			fast: func() (*harness.Table, error) { return harness.MCSAnchor([]int{16, 64}) },
		},
		{
			id: "e13", desc: "§6 spin-node ablation",
			full: func() (*harness.Table, error) { return harness.SpinNodeAblation([]int{4, 16, 64, 256}) },
			fast: func() (*harness.Table, error) { return harness.SpinNodeAblation([]int{4, 16}) },
		},
		{
			id: "e14", desc: "dynamic churn: long-lived lock under abort-probability sweep",
			full: func() (*harness.Table, error) {
				return harness.ChurnSweep(harness.AlgoPaperLLBounded, w, 16, 64,
					[]float64{0, 0.1, 0.25, 0.5, 0.75, 0.95}, seed)
			},
			fast: func() (*harness.Table, error) {
				return harness.ChurnSweep(harness.AlgoPaperLLBounded, w, 6, 16, []float64{0, 0.5}, seed)
			},
		},
		{
			id: "e16", desc: "DSM model: the one-shot lock's Table 1 CC/DSM claim",
			full: func() (*harness.Table, error) { return harness.DSMTable([]int{64, 256, 1024}, w) },
			fast: func() (*harness.Table, error) { return harness.DSMTable([]int{16, 64}, w) },
		},
		{
			id: "e15", desc: "point contention: cost vs active processes at fixed capacity",
			full: func() (*harness.Table, error) {
				return harness.PointContention(1024, w, []int{2, 8, 64, 512})
			},
			fast: func() (*harness.Table, error) {
				return harness.PointContention(64, w, []int{2, 8, 32})
			},
		},
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rmrbench", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "shrink sweeps for a fast smoke run")
	list := fs.Bool("list", false, "list experiments and exit")
	csvOut := fs.Bool("csv", false, "emit CSV instead of formatted tables")
	chartCol := fs.Int("chart", 0, "also render the given column index as an ASCII bar chart")
	seed := fs.Int64("seed", 42, "seed for the randomized workloads (e14)")
	promFile := fs.String("prom", "", "also write abort-storm counters to `file` in Prometheus text format")
	matrixFile := fs.String("matrix", "", "write the per-lock × per-model benchmark matrix to `file` as JSON")
	exploreFile := fs.String("explore", "", "write the E8 exhaustive-exploration record to `file` as JSON")
	por := fs.Bool("por", true, "include the partial-order-reduction passes in -explore")
	listLocks := fs.Bool("list-locks", false, "list the registered locks and exit")
	deadline := fs.Duration("deadline", 0, "wall-clock bound for the whole run; on expiry report the in-flight experiment and exit 3")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// inflight names the experiment or artifact currently running, so an
	// expired deadline can say what was stuck instead of dying silently.
	var inflight atomic.Value
	inflight.Store("startup")
	if *deadline > 0 {
		timer := time.AfterFunc(*deadline, func() {
			fmt.Fprintf(os.Stderr, "rmrbench: deadline %v exceeded (in flight: %s)\n",
				*deadline, inflight.Load())
			os.Exit(3)
		})
		defer timer.Stop()
	}
	if *listLocks {
		for _, info := range locks.Infos() {
			fmt.Printf("  %-24s %s\n", info.Name, info.Summary)
		}
		return nil
	}
	exps := experiments(*seed)
	if *list {
		for _, e := range exps {
			fmt.Printf("  %-4s %s\n", e.id, e.desc)
		}
		return nil
	}
	if *matrixFile != "" {
		inflight.Store("matrix")
		if err := writeMatrix(*matrixFile, *quick); err != nil {
			return fmt.Errorf("matrix: %w", err)
		}
	}
	if *exploreFile != "" {
		inflight.Store("explore")
		if err := writeExplore(*exploreFile, *quick, *por); err != nil {
			return fmt.Errorf("explore: %w", err)
		}
	}
	// An artifact-only invocation skips the experiments.
	if (*matrixFile != "" || *exploreFile != "") && fs.NArg() == 0 && *promFile == "" {
		return nil
	}
	known := map[string]bool{}
	for _, e := range exps {
		known[e.id] = true
	}
	// Validate in argument order so the reported error is deterministic.
	want := map[string]bool{}
	for _, a := range fs.Args() {
		a = strings.ToLower(a)
		if a == "all" {
			want = map[string]bool{}
			break
		}
		if !known[a] {
			return fmt.Errorf("unknown experiment %q (use -list)", a)
		}
		want[a] = true
	}
	for _, e := range exps {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		fn := e.full
		if *quick {
			fn = e.fast
		}
		inflight.Store(e.id)
		tbl, err := fn()
		if err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		if *csvOut {
			fmt.Printf("# %s\n", tbl.Title)
			if err := tbl.FprintCSV(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		} else {
			tbl.Fprint(os.Stdout)
		}
		if *chartCol > 0 {
			if err := tbl.FprintChart(os.Stdout, *chartCol); err != nil {
				fmt.Fprintf(os.Stderr, "rmrbench: %s: chart: %v\n", e.id, err)
			}
		}
	}
	if *promFile != "" {
		inflight.Store("prom")
		if err := writeProm(*promFile, *quick); err != nil {
			return fmt.Errorf("prom: %w", err)
		}
	}
	return nil
}

// matrixEntry is one (lock, model) cell of the benchmark matrix.
type matrixEntry struct {
	Lock  string `json:"lock"`
	Model string `json:"model"`
	// Queue drain (the Table 1 "No aborts" workload).
	Procs       int     `json:"procs"`
	PassageMax  int64   `json:"passage_rmrs_max"`
	PassageMean float64 `json:"passage_rmrs_mean"`
	Words       int     `json:"words"`
	// Abort storm (the Table 1 "Worst-case" workload); omitted for
	// non-abortable locks.
	Aborters      int   `json:"aborters,omitempty"`
	HolderPassage int64 `json:"storm_holder_rmrs,omitempty"`
	WaiterPassage int64 `json:"storm_waiter_rmrs,omitempty"`
	AbortedMax    int64 `json:"storm_aborted_rmrs_max,omitempty"`
}

// writeMatrix benchmarks every registered lock under every memory model it
// supports — the registry replaces any hand-listed lock set — and writes
// the result as JSON: {"locks": [entry, ...]} in registry (sorted) order.
func writeMatrix(path string, quick bool) error {
	nprocs, aborters := 64, 30
	if quick {
		nprocs, aborters = 16, 6
	}
	entries := []matrixEntry{}
	for _, info := range locks.Infos() {
		models := []rmr.Model{rmr.CC}
		if !info.CCOnly {
			models = append(models, rmr.DSM)
		}
		for _, model := range models {
			algo := harness.Algo(info.Name)
			queue, err := harness.QueueWorkloadModel(model, algo, harness.DefaultW, nprocs)
			if err != nil {
				return fmt.Errorf("%s/%s: queue: %w", info.Name, model, err)
			}
			e := matrixEntry{
				Lock: info.Name, Model: strings.ToLower(model.String()), Procs: nprocs,
				PassageMax: queue.Passages.Max(), PassageMean: queue.Passages.Mean(),
				Words: queue.Words,
			}
			if info.Abortable {
				storm, err := harness.AbortStormModel(model, algo, harness.DefaultW, aborters, false)
				if err != nil {
					return fmt.Errorf("%s/%s: storm: %w", info.Name, model, err)
				}
				e.Aborters = aborters
				e.HolderPassage = storm.HolderPassage
				e.WaiterPassage = storm.WaiterPassage
				e.AbortedMax = storm.Aborted.Max()
			}
			entries = append(entries, e)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(map[string]any{"locks": entries}); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// exploreEntry is one exhaustive-exploration record: an E8 configuration
// explored to the step bound with the given reduction mode.
type exploreEntry struct {
	Config        string  `json:"config"`
	N             int     `json:"n"`
	W             int     `json:"w"`
	Aborters      int     `json:"aborters"`
	MaxSteps      int     `json:"maxsteps"`
	POR           bool    `json:"por"`
	Explored      int     `json:"explored"`
	Pruned        int     `json:"pruned"`
	Equivalent    int     `json:"equivalent"`
	Replays       int     `json:"replays"`
	Seconds       float64 `json:"seconds"`
	ReplaysPerSec float64 `json:"replays_per_sec"`
	Exhausted     bool    `json:"exhausted"`
}

// writeExplore explores the paper lock's E8 configurations — n=2
// contenders, with and without an aborter — to exhaustion at a fixed step
// bound, once per reduction mode, and writes the counts and throughput as
// JSON: {"explorer": [entry, ...]}. The unreduced and reduced passes cover
// the same tree, so the replay and wall-clock ratios are the reduction's
// measured leverage.
func writeExplore(path string, quick, por bool) error {
	const n, w = 2, 4
	maxSteps := 16
	if quick {
		maxSteps = 12
	}
	reductions := []rmr.Reduction{rmr.NoReduction}
	if por {
		reductions = append(reductions, rmr.SleepSets)
	}
	entries := []exploreEntry{}
	for _, aborters := range []int{0, 1} {
		for _, red := range reductions {
			cfg := harness.ExploreConfig{
				Model: rmr.CC, Algo: harness.AlgoPaper, W: w, N: n, Aborters: aborters,
				MaxSteps: maxSteps, Workers: runtime.GOMAXPROCS(0), Reduction: red,
			}
			start := time.Now()
			res, err := harness.Explore(cfg)
			secs := time.Since(start).Seconds()
			if err != nil {
				return fmt.Errorf("aborters=%d por=%v: %w", aborters, red == rmr.SleepSets, err)
			}
			e := exploreEntry{
				Config: fmt.Sprintf("paper CC n=%d w=%d aborters=%d", n, w, aborters),
				N:      n, W: w, Aborters: aborters, MaxSteps: maxSteps,
				POR:      red == rmr.SleepSets,
				Explored: res.Explored, Pruned: res.Pruned, Equivalent: res.Equivalent,
				Replays: res.Replays(), Seconds: secs, Exhausted: res.Exhausted,
			}
			if secs > 0 {
				e.ReplaysPerSec = float64(res.Replays()) / secs
			}
			entries = append(entries, e)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(map[string]any{"explorer": entries}); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeProm runs a stats-instrumented abort storm on the paper's lock and
// writes the resulting counter matrix in the Prometheus text exposition
// format (version 0.0.4).
func writeProm(path string, quick bool) error {
	aborters := 64
	if quick {
		aborters = 8
	}
	_, snap, err := harness.AbortStormStats(rmr.CC, harness.AlgoPaper, harness.DefaultW, aborters, false)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := snap.WritePrometheus(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
