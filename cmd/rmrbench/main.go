// Command rmrbench regenerates the evaluation artifacts of Alon & Morrison
// (PODC 2018) on the RMR-metered shared-memory simulator: every column of
// Table 1 and the figure-derived experiments of §4 and §6.
//
// Usage:
//
//	rmrbench [-quick] [experiment ...]
//
// With no arguments every experiment runs (-list enumerates: e1–e7 and
// e9–e17; e8, the Theorem 2 property checking, lives in cmd/locktest and
// the test suite). -quick shrinks the sweeps for a fast smoke run, -csv
// emits machine-readable series, -chart N renders column N as an ASCII bar
// chart, -seed feeds the randomized workloads (e14), and -prom FILE
// additionally writes a stats-instrumented abort storm's counters in the
// Prometheus text exposition format.
//
// -cost NAMES (comma-separated; see rmr.CostModelNames) and -cost-seed S
// select the deterministic latency models priced by the E17 experiment and
// the matrix's latency section. Cost models are observe-only: they never
// change schedules or RMR counts, only the simulated-time annotations.
//
// -matrix FILE writes a per-lock × per-model (CC/DSM) benchmark matrix as
// JSON, iterating the locks registry instead of any hand-listed lock set
// (-list-locks enumerates the registry). The matrix carries two sections:
// "locks" (RMR/space cells) and "latency" (simulated p50/p95/p99 passage
// latency per lock × memory model × cost model, keyed by -cost-seed).
// -matrix-locks restricts the matrix to a comma-separated subset of the
// registry (the CI determinism guard prices one lock twice and diffs the
// bytes), and -workers bounds the matrix's parallelism — every cell is an
// independent deterministic run, so the output is byte-identical at any
// worker count. With -matrix and no experiment arguments, only the matrix
// is produced; scripts/bench.sh embeds it in BENCH_rmr.json.
//
// -deadline D bounds the whole run in wall-clock time: a benchmark that
// livelocks past it reports the in-flight experiment to stderr and exits
// with status 3 instead of hanging the pipeline (scripts/bench.sh relies
// on the non-zero exit to stop rather than splice partial output).
//
// -explore FILE writes the bounded-exhaustive exploration record as JSON:
// the paper lock's E8 configurations (with and without an aborter) explored
// to exhaustion with partial-order reduction off and on, recording replays,
// pruned-equivalent counts, and replays/sec for each. -por=false restricts
// it to the unreduced baseline. scripts/bench.sh embeds this too.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sublock/internal/harness"
	"sublock/locks"
	"sublock/rmr"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rmrbench:", err)
		os.Exit(1)
	}
}

type experiment struct {
	id   string
	desc string
	full func() (*harness.Table, error)
	fast func() (*harness.Table, error)
}

func experiments(seed int64, costs []string, costSeed int64) []experiment {
	const w = harness.DefaultW
	return []experiment{
		{
			id: "e1", desc: "Table 1 worst-case column",
			full: func() (*harness.Table, error) { return harness.Table1WorstCase([]int{64, 256, 1024, 4096}, w) },
			fast: func() (*harness.Table, error) { return harness.Table1WorstCase([]int{16, 64}, w) },
		},
		{
			id: "e2", desc: "Table 1 no-aborts column",
			full: func() (*harness.Table, error) { return harness.Table1NoAborts([]int{64, 256, 1024}, w) },
			fast: func() (*harness.Table, error) { return harness.Table1NoAborts([]int{16, 64}, w) },
		},
		{
			id: "e3", desc: "Table 1 adaptive-bound column",
			full: func() (*harness.Table, error) {
				return harness.Table1Adaptive(4096, w, []int{0, 1, 4, 16, 64, 256, 1024})
			},
			fast: func() (*harness.Table, error) { return harness.Table1Adaptive(64, w, []int{0, 4, 16}) },
		},
		{
			id: "e4", desc: "Table 1 space column",
			full: func() (*harness.Table, error) { return harness.Table1Space([]int{64, 256, 1024}, w) },
			fast: func() (*harness.Table, error) { return harness.Table1Space([]int{16, 64}, w) },
		},
		{
			id: "e5", desc: "§1 time/space tradeoff: RMRs vs word width W",
			full: func() (*harness.Table, error) { return harness.WSweep(4096, []int{2, 4, 8, 16, 32, 64}) },
			fast: func() (*harness.Table, error) { return harness.WSweep(256, []int{2, 8, 64}) },
		},
		{
			id: "e6", desc: "Figure 2 FindNext scenarios",
			full: harness.Fig2Scenarios,
			fast: harness.Fig2Scenarios,
		},
		{
			id: "e7", desc: "Figure 4 adaptive vs plain FindNext",
			full: func() (*harness.Table, error) { return harness.Fig4Adaptive([]int{64, 512, 4096, 32768}, w) },
			fast: func() (*harness.Table, error) { return harness.Fig4Adaptive([]int{64, 512}, w) },
		},
		{
			id: "e9", desc: "§6 long-lived transformation overhead",
			full: func() (*harness.Table, error) { return harness.LongLivedOverhead(16, 32, w) },
			fast: func() (*harness.Table, error) { return harness.LongLivedOverhead(4, 8, w) },
		},
		{
			id: "e10", desc: "§3 DSM spin-bit indirection",
			full: func() (*harness.Table, error) { return harness.DSMVariant([]int{100, 1000, 10000}) },
			fast: func() (*harness.Table, error) { return harness.DSMVariant([]int{100, 1000}) },
		},
		{
			id: "e11", desc: "MCS O(1) anchor",
			full: func() (*harness.Table, error) { return harness.MCSAnchor([]int{64, 256, 1024}) },
			fast: func() (*harness.Table, error) { return harness.MCSAnchor([]int{16, 64}) },
		},
		{
			id: "e13", desc: "§6 spin-node ablation",
			full: func() (*harness.Table, error) { return harness.SpinNodeAblation([]int{4, 16, 64, 256}) },
			fast: func() (*harness.Table, error) { return harness.SpinNodeAblation([]int{4, 16}) },
		},
		{
			id: "e14", desc: "dynamic churn: long-lived lock under abort-probability sweep",
			full: func() (*harness.Table, error) {
				return harness.ChurnSweep(harness.AlgoPaperLLBounded, w, 16, 64,
					[]float64{0, 0.1, 0.25, 0.5, 0.75, 0.95}, seed)
			},
			fast: func() (*harness.Table, error) {
				return harness.ChurnSweep(harness.AlgoPaperLLBounded, w, 6, 16, []float64{0, 0.5}, seed)
			},
		},
		{
			id: "e16", desc: "DSM model: the one-shot lock's Table 1 CC/DSM claim",
			full: func() (*harness.Table, error) { return harness.DSMTable([]int{64, 256, 1024}, w) },
			fast: func() (*harness.Table, error) { return harness.DSMTable([]int{16, 64}, w) },
		},
		{
			id: "e15", desc: "point contention: cost vs active processes at fixed capacity",
			full: func() (*harness.Table, error) {
				return harness.PointContention(1024, w, []int{2, 8, 64, 512})
			},
			fast: func() (*harness.Table, error) {
				return harness.PointContention(64, w, []int{2, 8, 32})
			},
		},
		{
			id: "e17", desc: "simulated passage latency by cost model, full lock registry",
			full: func() (*harness.Table, error) { return harness.LatencyTable(costs, costSeed, 64) },
			fast: func() (*harness.Table, error) { return harness.LatencyTable(costs, costSeed, 16) },
		},
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rmrbench", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "shrink sweeps for a fast smoke run")
	list := fs.Bool("list", false, "list experiments and exit")
	csvOut := fs.Bool("csv", false, "emit CSV instead of formatted tables")
	chartCol := fs.Int("chart", 0, "also render the given column index as an ASCII bar chart")
	seed := fs.Int64("seed", 42, "seed for the randomized workloads (e14)")
	promFile := fs.String("prom", "", "also write abort-storm counters to `file` in Prometheus text format")
	matrixFile := fs.String("matrix", "", "write the per-lock × per-model benchmark matrix to `file` as JSON")
	costFlag := fs.String("cost", "ccnuma,dsmremote", "comma-separated cost `models` priced by e17 and the matrix's latency section")
	costSeed := fs.Int64("cost-seed", 1, "seed for the deterministic cost models")
	workers := fs.Int("workers", 0, "matrix parallelism (0 = GOMAXPROCS); the output is byte-identical at any value")
	matrixLocks := fs.String("matrix-locks", "", "restrict the matrix to these comma-separated `locks` (default: the whole registry)")
	exploreFile := fs.String("explore", "", "write the E8 exhaustive-exploration record to `file` as JSON")
	por := fs.Bool("por", true, "include the partial-order-reduction passes in -explore")
	listLocks := fs.Bool("list-locks", false, "list the registered locks and exit")
	deadline := fs.Duration("deadline", 0, "wall-clock bound for the whole run; on expiry report the in-flight experiment and exit 3")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// inflight names the experiment or artifact currently running, so an
	// expired deadline can say what was stuck instead of dying silently.
	var inflight atomic.Value
	inflight.Store("startup")
	if *deadline > 0 {
		timer := time.AfterFunc(*deadline, func() {
			fmt.Fprintf(os.Stderr, "rmrbench: deadline %v exceeded (in flight: %s)\n",
				*deadline, inflight.Load())
			os.Exit(3)
		})
		defer timer.Stop()
	}
	if *listLocks {
		for _, info := range locks.Infos() {
			fmt.Printf("  %-24s %s\n", info.Name, info.Summary)
		}
		return nil
	}
	costs, err := splitCosts(*costFlag, *costSeed)
	if err != nil {
		return err
	}
	exps := experiments(*seed, costs, *costSeed)
	if *list {
		for _, e := range exps {
			fmt.Printf("  %-4s %s\n", e.id, e.desc)
		}
		return nil
	}
	if *matrixFile != "" {
		inflight.Store("matrix")
		if err := writeMatrix(*matrixFile, *quick, costs, *costSeed, *workers, *matrixLocks); err != nil {
			return fmt.Errorf("matrix: %w", err)
		}
	}
	if *exploreFile != "" {
		inflight.Store("explore")
		if err := writeExplore(*exploreFile, *quick, *por); err != nil {
			return fmt.Errorf("explore: %w", err)
		}
	}
	// An artifact-only invocation skips the experiments.
	if (*matrixFile != "" || *exploreFile != "") && fs.NArg() == 0 && *promFile == "" {
		return nil
	}
	known := map[string]bool{}
	for _, e := range exps {
		known[e.id] = true
	}
	// Validate in argument order so the reported error is deterministic.
	want := map[string]bool{}
	for _, a := range fs.Args() {
		a = strings.ToLower(a)
		if a == "all" {
			want = map[string]bool{}
			break
		}
		if !known[a] {
			return fmt.Errorf("unknown experiment %q (use -list)", a)
		}
		want[a] = true
	}
	for _, e := range exps {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		fn := e.full
		if *quick {
			fn = e.fast
		}
		inflight.Store(e.id)
		tbl, err := fn()
		if err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		if *csvOut {
			fmt.Printf("# %s\n", tbl.Title)
			if err := tbl.FprintCSV(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		} else {
			tbl.Fprint(os.Stdout)
		}
		if *chartCol > 0 {
			if err := tbl.FprintChart(os.Stdout, *chartCol); err != nil {
				fmt.Fprintf(os.Stderr, "rmrbench: %s: chart: %v\n", e.id, err)
			}
		}
	}
	if *promFile != "" {
		inflight.Store("prom")
		if err := writeProm(*promFile, *quick); err != nil {
			return fmt.Errorf("prom: %w", err)
		}
	}
	return nil
}

// matrixEntry is one (lock, model) cell of the benchmark matrix.
type matrixEntry struct {
	Lock  string `json:"lock"`
	Model string `json:"model"`
	// Queue drain (the Table 1 "No aborts" workload).
	Procs       int     `json:"procs"`
	PassageMax  int64   `json:"passage_rmrs_max"`
	PassageMean float64 `json:"passage_rmrs_mean"`
	Words       int     `json:"words"`
	// Abort storm (the Table 1 "Worst-case" workload); omitted for
	// non-abortable locks.
	Aborters      int   `json:"aborters,omitempty"`
	HolderPassage int64 `json:"storm_holder_rmrs,omitempty"`
	WaiterPassage int64 `json:"storm_waiter_rmrs,omitempty"`
	AbortedMax    int64 `json:"storm_aborted_rmrs_max,omitempty"`
}

// latencyEntry is one (lock, memory model, cost model) cell of the
// simulated-latency matrix: the queue-drain workload priced by a
// deterministic cost model, plus the abort storm's priced passages for
// abortable locks. Every field is bit-deterministic in (procs, cost,
// cost_seed) — benchdiff gates these cells exactly.
type latencyEntry struct {
	Lock     string `json:"lock"`
	Model    string `json:"model"`
	Cost     string `json:"cost"`
	CostSeed int64  `json:"cost_seed"`
	// Queue drain: nearest-rank quantiles of per-passage simulated ns.
	Procs    int   `json:"procs"`
	QueueP50 int64 `json:"queue_sim_p50_ns"`
	QueueP95 int64 `json:"queue_sim_p95_ns"`
	QueueP99 int64 `json:"queue_sim_p99_ns"`
	QueueMax int64 `json:"queue_sim_max_ns"`
	// Abort storm; omitted for non-abortable locks.
	Aborters      int   `json:"aborters,omitempty"`
	HolderSim     int64 `json:"storm_holder_sim_ns,omitempty"`
	WaiterSim     int64 `json:"storm_waiter_sim_ns,omitempty"`
	AbortedSimMax int64 `json:"storm_aborted_sim_max_ns,omitempty"`
}

// splitCosts parses a comma-separated cost-model list, validating every
// name (and the constructions themselves) up front so a typo fails before
// any benchmark runs.
func splitCosts(list string, seed int64) ([]string, error) {
	var costs []string
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		cm, err := rmr.NewCostModel(name, seed)
		if err != nil {
			return nil, err
		}
		costs = append(costs, cm.Name())
	}
	if len(costs) == 0 {
		return nil, fmt.Errorf("-cost lists no models (known: %s)", strings.Join(rmr.CostModelNames(), ", "))
	}
	return costs, nil
}

// filterLocks resolves -matrix-locks against the registry: empty keeps the
// whole (sorted) registry, otherwise the listed locks in registry order,
// with unknown names rejected.
func filterLocks(list string) ([]locks.Info, error) {
	infos := locks.Infos()
	if strings.TrimSpace(list) == "" {
		return infos, nil
	}
	want := map[string]bool{}
	for _, name := range strings.Split(list, ",") {
		if name = strings.TrimSpace(name); name != "" {
			want[name] = true
		}
	}
	kept := []locks.Info{}
	for _, info := range infos {
		if want[info.Name] {
			kept = append(kept, info)
			delete(want, info.Name)
		}
	}
	for name := range want {
		return nil, fmt.Errorf("-matrix-locks: unknown lock %q (use -list-locks)", name)
	}
	if len(kept) == 0 {
		return nil, fmt.Errorf("-matrix-locks selected no locks")
	}
	return kept, nil
}

// matrixCell benchmarks one (lock, memory model) pair: the queue and storm
// workloads under the harness's gated fixed-seed schedule (rmr.Unit pricing,
// the nil fast path) for the RMR cells, then one gated priced run per cost
// model for the latency cells. Every cell is bit-deterministic — including
// the locks whose free-running RMR counts jitter (CC-optimal locks spinning
// on remote words under DSM) — which is what lets benchdiff gate the matrix
// exactly.
func matrixCell(info locks.Info, model rmr.Model, nprocs, aborters int,
	costs []string, costSeed int64) (matrixEntry, []latencyEntry, error) {
	algo := harness.Algo(info.Name)
	modelName := strings.ToLower(model.String())
	queue, err := harness.QueueWorkloadCost(model, rmr.Unit, algo, harness.DefaultW, nprocs)
	if err != nil {
		return matrixEntry{}, nil, fmt.Errorf("%s/%s: queue: %w", info.Name, model, err)
	}
	e := matrixEntry{
		Lock: info.Name, Model: modelName, Procs: nprocs,
		PassageMax: queue.Passages.Max(), PassageMean: queue.Passages.Mean(),
		Words: queue.Words,
	}
	if info.Abortable {
		storm, err := harness.AbortStormCost(model, rmr.Unit, algo, harness.DefaultW, aborters, false)
		if err != nil {
			return matrixEntry{}, nil, fmt.Errorf("%s/%s: storm: %w", info.Name, model, err)
		}
		e.Aborters = aborters
		e.HolderPassage = storm.HolderPassage
		e.WaiterPassage = storm.WaiterPassage
		e.AbortedMax = storm.Aborted.Max()
	}
	lat := make([]latencyEntry, 0, len(costs))
	for _, name := range costs {
		cm, err := rmr.NewCostModel(name, costSeed)
		if err != nil {
			return matrixEntry{}, nil, err
		}
		pq, err := harness.QueueWorkloadCost(model, cm, algo, harness.DefaultW, nprocs)
		if err != nil {
			return matrixEntry{}, nil, fmt.Errorf("%s/%s/cost=%s: queue: %w", info.Name, model, name, err)
		}
		le := latencyEntry{
			Lock: info.Name, Model: modelName, Cost: name, CostSeed: costSeed,
			Procs:    nprocs,
			QueueP50: pq.Sim.Percentile(0.50), QueueP95: pq.Sim.Percentile(0.95),
			QueueP99: pq.Sim.Percentile(0.99), QueueMax: pq.Sim.Max(),
		}
		if info.Abortable {
			ps, err := harness.AbortStormCost(model, cm, algo, harness.DefaultW, aborters, false)
			if err != nil {
				return matrixEntry{}, nil, fmt.Errorf("%s/%s/cost=%s: storm: %w", info.Name, model, name, err)
			}
			le.Aborters = aborters
			le.HolderSim = ps.HolderSim
			le.WaiterSim = ps.WaiterSim
			le.AbortedSimMax = ps.AbortedSim.Max()
		}
		lat = append(lat, le)
	}
	return e, lat, nil
}

// writeMatrix benchmarks every selected lock under every memory model it
// supports — the registry replaces any hand-listed lock set — and writes
// the result as JSON: {"locks": [...], "latency": [...]} in registry
// (sorted) order. Cells are independent deterministic runs, so they run on
// a worker pool and land in preallocated index slots: the output bytes are
// identical at any worker count.
func writeMatrix(path string, quick bool, costs []string, costSeed int64, workers int, lockFilter string) error {
	nprocs, aborters := 64, 30
	if quick {
		nprocs, aborters = 16, 6
	}
	infos, err := filterLocks(lockFilter)
	if err != nil {
		return err
	}
	type job struct {
		info  locks.Info
		model rmr.Model
	}
	jobs := []job{}
	for _, info := range infos {
		models := []rmr.Model{rmr.CC}
		if !info.CCOnly {
			models = append(models, rmr.DSM)
		}
		for _, model := range models {
			jobs = append(jobs, job{info, model})
		}
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	entries := make([]matrixEntry, len(jobs))
	latency := make([][]latencyEntry, len(jobs))
	errs := make([]error, len(jobs))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			entries[i], latency[i], errs[i] = matrixCell(j.info, j.model, nprocs, aborters, costs, costSeed)
		}(i, j)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	flat := []latencyEntry{}
	for _, lat := range latency {
		flat = append(flat, lat...)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(map[string]any{"locks": entries, "latency": flat}); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// exploreEntry is one exhaustive-exploration record: an E8 configuration
// explored to the step bound at one point of the reduction lattice.
type exploreEntry struct {
	Config        string  `json:"config"`
	N             int     `json:"n"`
	W             int     `json:"w"`
	Aborters      int     `json:"aborters"`
	MaxSteps      int     `json:"maxsteps"`
	POR           bool    `json:"por"`
	Visited       bool    `json:"visited,omitempty"`
	Symmetry      bool    `json:"symmetry,omitempty"`
	Explored      int     `json:"explored"`
	Pruned        int     `json:"pruned"`
	Equivalent    int     `json:"equivalent"`
	VisitedHits   int     `json:"visited_hits,omitempty"`
	SymmetryCuts  int     `json:"symmetry_cuts,omitempty"`
	Replays       int     `json:"replays"`
	Seconds       float64 `json:"seconds"`
	ReplaysPerSec float64 `json:"replays_per_sec"`
	Exhausted     bool    `json:"exhausted"`
}

// writeExplore explores the E8-class configurations — the paper lock with
// n=2 contenders, with and without an aborter, plus the id-symmetric tas
// lock at n=3 where the symmetry reduction has leverage — to exhaustion at
// a fixed step bound, once per point of the reduction lattice (off, POR,
// POR+hash, POR+hash+symmetry), and writes the counts and throughput as
// JSON: {"explorer": [entry, ...]}. Every pass covers the same tree, so
// the replay ratios are each reduction's measured leverage; benchdiff
// gates the counts exactly. Lattice points with visited caching run one
// worker: racing workers make the Pruned/VisitedHits split timing-
// dependent, and a gated artifact must be reproducible.
func writeExplore(path string, quick, por bool) error {
	type latticePoint struct{ por, vis, sym bool }
	lattice := []latticePoint{{}}
	if por {
		lattice = append(lattice,
			latticePoint{por: true},
			latticePoint{por: true, vis: true},
			latticePoint{por: true, vis: true, sym: true},
		)
	}
	paperSteps, tasSteps := 16, 14
	if quick {
		paperSteps, tasSteps = 12, 11
	}
	configs := []struct {
		algo     harness.Algo
		n, w     int
		aborters int
		maxSteps int
	}{
		{harness.AlgoPaper, 2, 4, 0, paperSteps},
		{harness.AlgoPaper, 2, 4, 1, paperSteps},
		{harness.AlgoTAS, 3, 4, 0, tasSteps},
	}
	entries := []exploreEntry{}
	for _, c := range configs {
		for _, pt := range lattice {
			red := rmr.NoReduction
			if pt.por {
				red = rmr.SleepSets
			}
			workers := runtime.GOMAXPROCS(0)
			if pt.vis {
				workers = 1
			}
			cfg := harness.ExploreConfig{
				Model: rmr.CC, Algo: c.algo, W: c.w, N: c.n, Aborters: c.aborters,
				MaxSteps: c.maxSteps, Workers: workers, Reduction: red,
				Visited: pt.vis, Symmetry: pt.sym,
			}
			start := time.Now()
			res, err := harness.Explore(cfg)
			secs := time.Since(start).Seconds()
			if err != nil {
				return fmt.Errorf("%s aborters=%d por=%v visited=%v sym=%v: %w",
					c.algo, c.aborters, pt.por, pt.vis, pt.sym, err)
			}
			e := exploreEntry{
				Config: fmt.Sprintf("%s CC n=%d w=%d aborters=%d", c.algo, c.n, c.w, c.aborters),
				N:      c.n, W: c.w, Aborters: c.aborters, MaxSteps: c.maxSteps,
				POR: pt.por, Visited: pt.vis, Symmetry: pt.sym,
				Explored: res.Explored, Pruned: res.Pruned, Equivalent: res.Equivalent,
				VisitedHits: res.VisitedHits, SymmetryCuts: res.SymmetryCuts,
				Replays: res.Replays(), Seconds: secs, Exhausted: res.Exhausted,
			}
			if secs > 0 {
				e.ReplaysPerSec = float64(res.Replays()) / secs
			}
			entries = append(entries, e)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(map[string]any{"explorer": entries}); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeProm runs a stats-instrumented abort storm on the paper's lock and
// writes the resulting counter matrix in the Prometheus text exposition
// format (version 0.0.4).
func writeProm(path string, quick bool) error {
	aborters := 64
	if quick {
		aborters = 8
	}
	_, snap, err := harness.AbortStormStats(rmr.CC, harness.AlgoPaper, harness.DefaultW, aborters, false)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := snap.WritePrometheus(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
