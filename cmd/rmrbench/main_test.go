package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sublock/locks"
)

// TestWriteMatrix: every registered lock must appear in the matrix, with a
// CC entry always and a DSM entry unless the lock is CC-only.
func TestWriteMatrix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "matrix.json")
	if err := run([]string{"-quick", "-matrix", path}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Locks []matrixEntry `json:"locks"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	got := map[string]map[string]bool{}
	for _, e := range doc.Locks {
		if e.PassageMax <= 0 || e.Words <= 0 {
			t.Errorf("%s/%s: implausible entry %+v", e.Lock, e.Model, e)
		}
		if got[e.Lock] == nil {
			got[e.Lock] = map[string]bool{}
		}
		got[e.Lock][e.Model] = true
	}
	for _, info := range locks.Infos() {
		if !got[info.Name]["cc"] {
			t.Errorf("%s: missing cc entry", info.Name)
		}
		if !info.CCOnly && !got[info.Name]["dsm"] {
			t.Errorf("%s: missing dsm entry", info.Name)
		}
		if info.CCOnly && got[info.Name]["dsm"] {
			t.Errorf("%s: CC-only lock has a dsm entry", info.Name)
		}
	}
}

func TestRunListLocks(t *testing.T) {
	if err := run([]string{"-list-locks"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunQuickSingleExperiment(t *testing.T) {
	if err := run([]string{"-quick", "e6"}); err != nil {
		t.Fatal(err)
	}
}

// TestRunWithGenerousDeadline: a deadline the run comfortably beats arms
// and disarms without firing.
func TestRunWithGenerousDeadline(t *testing.T) {
	if err := run([]string{"-quick", "-deadline", "10m", "e6"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCSV(t *testing.T) {
	if err := run([]string{"-quick", "-csv", "e7"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	err := run([]string{"zzz"})
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v, want unknown-experiment error", err)
	}
}

func TestExperimentIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range experiments(42) {
		if seen[e.id] {
			t.Fatalf("duplicate experiment id %q", e.id)
		}
		seen[e.id] = true
		if e.full == nil || e.fast == nil {
			t.Fatalf("experiment %q missing a runner", e.id)
		}
	}
}

func TestEveryFastExperimentRuns(t *testing.T) {
	for _, e := range experiments(42) {
		e := e
		t.Run(e.id, func(t *testing.T) {
			tbl, err := e.fast()
			if err != nil {
				t.Fatal(err)
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("empty table")
			}
		})
	}
}
