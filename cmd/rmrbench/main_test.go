package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sublock/locks"
)

// TestWriteMatrix: every registered lock must appear in the matrix, with a
// CC entry always and a DSM entry unless the lock is CC-only — and the
// latency section must cover the same (lock, model) set once per requested
// cost model, with plausible priced quantiles.
func TestWriteMatrix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "matrix.json")
	if err := run([]string{"-quick", "-matrix", path}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Locks   []matrixEntry  `json:"locks"`
		Latency []latencyEntry `json:"latency"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	got := map[string]map[string]bool{}
	for _, e := range doc.Locks {
		if e.PassageMax <= 0 || e.Words <= 0 {
			t.Errorf("%s/%s: implausible entry %+v", e.Lock, e.Model, e)
		}
		if got[e.Lock] == nil {
			got[e.Lock] = map[string]bool{}
		}
		got[e.Lock][e.Model] = true
	}
	for _, info := range locks.Infos() {
		if !got[info.Name]["cc"] {
			t.Errorf("%s: missing cc entry", info.Name)
		}
		if !info.CCOnly && !got[info.Name]["dsm"] {
			t.Errorf("%s: missing dsm entry", info.Name)
		}
		if info.CCOnly && got[info.Name]["dsm"] {
			t.Errorf("%s: CC-only lock has a dsm entry", info.Name)
		}
	}
	latGot := map[string]bool{}
	for _, e := range doc.Latency {
		if e.QueueP50 <= 0 || e.QueueP50 > e.QueueP95 || e.QueueP95 > e.QueueP99 || e.QueueP99 > e.QueueMax {
			t.Errorf("%s/%s/%s: implausible quantiles %+v", e.Lock, e.Model, e.Cost, e)
		}
		if e.CostSeed != 1 {
			t.Errorf("%s/%s/%s: cost_seed = %d, want default 1", e.Lock, e.Model, e.Cost, e.CostSeed)
		}
		key := e.Lock + "/" + e.Model + "/" + e.Cost
		if latGot[key] {
			t.Errorf("duplicate latency entry %s", key)
		}
		latGot[key] = true
	}
	for lock, models := range got {
		for model := range models {
			for _, cost := range []string{"ccnuma", "dsmremote"} {
				if !latGot[lock+"/"+model+"/"+cost] {
					t.Errorf("%s/%s: missing latency entry for cost=%s", lock, model, cost)
				}
			}
		}
	}
	if want := 2 * len(doc.Locks); len(doc.Latency) != want {
		t.Errorf("latency section has %d entries, want %d", len(doc.Latency), want)
	}
}

// TestWriteMatrixDeterministicAcrossWorkers: the matrix's bytes must not
// depend on the worker count — cells land in preallocated index slots and
// every cell is a gated fixed-seed run. linearscan is in the set because
// its free-running RMR counts jitter under DSM (remote spin re-reads), so
// it regresses if the cells ever go back to free-running workloads.
func TestWriteMatrixDeterministicAcrossWorkers(t *testing.T) {
	dir := t.TempDir()
	outs := make([][]byte, 2)
	for i, workers := range []string{"1", "4"} {
		path := filepath.Join(dir, "matrix"+workers+".json")
		if err := run([]string{"-quick", "-matrix", path,
			"-matrix-locks", "paper,mcs,linearscan", "-cost-seed", "7", "-workers", workers}); err != nil {
			t.Fatal(err)
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		outs[i] = raw
	}
	if string(outs[0]) != string(outs[1]) {
		t.Error("matrix bytes differ between -workers 1 and -workers 4")
	}
}

// TestWriteMatrixLockFilter: -matrix-locks restricts the matrix and rejects
// unknown names.
func TestWriteMatrixLockFilter(t *testing.T) {
	path := filepath.Join(t.TempDir(), "matrix.json")
	if err := run([]string{"-quick", "-matrix", path, "-matrix-locks", "paper", "-cost", "ccnuma"}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Locks   []matrixEntry  `json:"locks"`
		Latency []latencyEntry `json:"latency"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Locks) != 2 { // paper: cc + dsm
		t.Errorf("filtered matrix has %d lock entries, want 2: %+v", len(doc.Locks), doc.Locks)
	}
	for _, e := range doc.Locks {
		if e.Lock != "paper" {
			t.Errorf("unexpected lock %q in filtered matrix", e.Lock)
		}
	}
	if len(doc.Latency) != 2 {
		t.Errorf("filtered latency section has %d entries, want 2", len(doc.Latency))
	}
	for _, e := range doc.Latency {
		if e.Cost != "ccnuma" {
			t.Errorf("unexpected cost %q with -cost ccnuma", e.Cost)
		}
	}
	err = run([]string{"-quick", "-matrix", path, "-matrix-locks", "nope"})
	if err == nil || !strings.Contains(err.Error(), "unknown lock") {
		t.Fatalf("err = %v, want unknown-lock error", err)
	}
}

// TestRunBadCostFlag: a bogus -cost fails before anything runs, naming the
// known models.
func TestRunBadCostFlag(t *testing.T) {
	err := run([]string{"-cost", "bogus", "-list"})
	if err == nil || !strings.Contains(err.Error(), "ccnuma") {
		t.Fatalf("err = %v, want error listing known cost models", err)
	}
}

func TestRunListLocks(t *testing.T) {
	if err := run([]string{"-list-locks"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunQuickSingleExperiment(t *testing.T) {
	if err := run([]string{"-quick", "e6"}); err != nil {
		t.Fatal(err)
	}
}

// TestRunWithGenerousDeadline: a deadline the run comfortably beats arms
// and disarms without firing.
func TestRunWithGenerousDeadline(t *testing.T) {
	if err := run([]string{"-quick", "-deadline", "10m", "e6"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCSV(t *testing.T) {
	if err := run([]string{"-quick", "-csv", "e7"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	err := run([]string{"zzz"})
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v, want unknown-experiment error", err)
	}
}

func TestExperimentIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range experiments(42, []string{"ccnuma"}, 1) {
		if seen[e.id] {
			t.Fatalf("duplicate experiment id %q", e.id)
		}
		seen[e.id] = true
		if e.full == nil || e.fast == nil {
			t.Fatalf("experiment %q missing a runner", e.id)
		}
	}
}

func TestEveryFastExperimentRuns(t *testing.T) {
	for _, e := range experiments(42, []string{"ccnuma", "dsmremote"}, 1) {
		e := e
		t.Run(e.id, func(t *testing.T) {
			tbl, err := e.fast()
			if err != nil {
				t.Fatal(err)
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("empty table")
			}
		})
	}
}
