package main

import (
	"strings"
	"testing"
)

func TestRunQuickSingleExperiment(t *testing.T) {
	if err := run([]string{"-quick", "e6"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunCSV(t *testing.T) {
	if err := run([]string{"-quick", "-csv", "e7"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	err := run([]string{"zzz"})
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v, want unknown-experiment error", err)
	}
}

func TestExperimentIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range experiments(42) {
		if seen[e.id] {
			t.Fatalf("duplicate experiment id %q", e.id)
		}
		seen[e.id] = true
		if e.full == nil || e.fast == nil {
			t.Fatalf("experiment %q missing a runner", e.id)
		}
	}
}

func TestEveryFastExperimentRuns(t *testing.T) {
	for _, e := range experiments(42) {
		e := e
		t.Run(e.id, func(t *testing.T) {
			tbl, err := e.fast()
			if err != nil {
				t.Fatal(err)
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("empty table")
			}
		})
	}
}
