package main

import (
	"bytes"
	"testing"
	"time"

	"sublock/abortable/obs"
	"sublock/internal/promtext"
	"sublock/locks"
	_ "sublock/locks/all"
)

func TestParseCounts(t *testing.T) {
	got, err := parseCounts(" 1, 4 ,64 ")
	if err != nil || len(got) != 3 || got[0] != 1 || got[1] != 4 || got[2] != 64 {
		t.Fatalf("parseCounts = %v, %v", got, err)
	}
	for _, bad := range []string{"", "0", "x", "4,-1"} {
		if _, err := parseCounts(bad); err == nil {
			t.Errorf("parseCounts(%q) accepted", bad)
		}
	}
}

func TestSummarizePercentiles(t *testing.T) {
	var samples []int64
	for v := int64(101); v >= 1; v-- { // sorted: 1..101
		samples = append(samples, v)
	}
	c := summarize("x", "native", 2, 2, samples, time.Second)
	if c.P50ns != 51 || c.P95ns != 96 || c.P99ns != 100 || c.Ops != 101 {
		t.Fatalf("summarize = %+v", c)
	}
	if c.Throughput < 100.9 || c.Throughput > 101.1 {
		t.Fatalf("throughput = %v, want 101", c.Throughput)
	}
}

// TestCellsSmoke runs one tiny cell per row kind — native, stdlib, and
// every registry lock (one-shot and long-lived paths both included) — so
// a registry or waiting-tier change that breaks the matrix fails here
// rather than in the CI bench job.
func TestCellsSmoke(t *testing.T) {
	const g, ops = 3, 8
	check := func(c cell) {
		t.Helper()
		if c.Ops < ops {
			t.Errorf("%s: only %d of %d passages timed", c.Lock, c.Ops, ops)
		}
		if c.Goroutines != g || c.Procs < 1 || c.Procs > g {
			t.Errorf("%s: bad shape %+v", c.Lock, c)
		}
		if c.P50ns < 0 || c.P50ns > c.P99ns || c.Throughput <= 0 {
			t.Errorf("%s: bad summary %+v", c.Lock, c)
		}
	}
	check(benchAbortable(g, ops))
	check(benchOneShotNative(g, ops))
	check(benchStdlib(g, ops))
	for _, info := range locks.Infos() {
		check(benchRegistry(info, g, ops))
	}
}

// TestObservedCells runs the native rows with collectors attached and
// checks the passages landed in the obs registry — the -obs path CI's
// metrics smoke test scrapes.
func TestObservedCells(t *testing.T) {
	obsEnabled = true
	defer func() {
		obsEnabled = false
		for name := range collectors {
			obs.Default.Unregister(name)
			delete(collectors, name)
		}
	}()

	const g, ops = 3, 8
	benchAbortable(g, ops)
	benchOneShotNative(g, ops)

	for _, name := range []string{"abortable", "abortable-oneshot"} {
		m, ok := collectors[name]
		if !ok {
			t.Fatalf("no collector for %s", name)
		}
		if got := m.Snapshot().Acquires; got < ops {
			t.Errorf("%s: %d acquires recorded, want >= %d", name, got, ops)
		}
	}

	var buf bytes.Buffer
	if err := obs.Default.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, err := range promtext.Lint(bytes.NewReader(buf.Bytes())) {
		t.Errorf("lint: %v", err)
	}
	for _, want := range []string{`lock="abortable"`, `lock="abortable-oneshot"`} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("exposition missing %s series", want)
		}
	}
}

// TestRegistryPooledCell exercises the oversubscribed path: more
// goroutines than the proc cap allows, forcing the handle pool for a
// long-lived lock and the work-channel rounds for a one-shot lock.
func TestRegistryPooledCell(t *testing.T) {
	old := rmrProcCapOverride
	rmrProcCapOverride = map[string]int{"tas": 2, "linearscan": 2}
	defer func() { rmrProcCapOverride = old }()

	for _, name := range []string{"tas", "linearscan"} {
		info, ok := locks.Lookup(name)
		if !ok {
			t.Fatalf("%s not registered", name)
		}
		c := benchRegistry(info, 5, 8)
		if c.Procs != 2 || c.Goroutines != 5 {
			t.Fatalf("%s: procs=%d goroutines=%d, want 2/5", name, c.Procs, c.Goroutines)
		}
		if c.Ops < 8 {
			t.Fatalf("%s: only %d passages timed", name, c.Ops)
		}
	}
}
