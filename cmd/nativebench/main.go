// Command nativebench measures wall-clock lock performance: the native
// abortable lock against sync.Mutex and every registry lock running
// free-running (ungated) on the simulated memory. For each lock × goroutine
// count it reports passage-latency percentiles (p50/p95/p99, nanoseconds)
// and throughput (passages per second), as JSON suitable for BENCH_native.json.
//
// Unlike rmrbench — which counts model RMRs on deterministic schedules —
// this benchmark exercises the adaptive waiting tiers (spin → yield → park)
// for real: oversubscribed waiters park on their wake-hint channels and are
// unparked by the handoff writes. Registry locks run on a free-running
// rmr.Memory (DSM unless the lock is CC-only), so their numbers include
// simulated-memory overhead; they are comparable to each other, while the
// abortable, abortable-oneshot, and sync.Mutex rows are comparable to
// native code.
//
// The native rows double as the observability demo (docs/OBSERVABILITY.md,
// "Native path"): -obs attaches obs collectors to the native locks, -serve
// exposes them (plus expvar and pprof) over HTTP while — and after — the
// matrix runs, -metrics-out snapshots the Prometheus exposition to a file,
// and -trace captures a runtime/trace with per-lock passage tasks.
package main

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	netpprof "net/http/pprof"
	"os"
	"os/signal"
	"runtime/pprof"
	"runtime/trace"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"sublock/abortable"
	"sublock/abortable/obs"
	"sublock/locks"
	_ "sublock/locks/all"
	"sublock/rmr"
)

// treeW is the tree arity for the paper's locks, matching the experiments'
// default (W=8 keeps tree heights in the 2–4 range).
const treeW = 8

// poolCap caps the native lock's registered handles; goroutine counts above
// it borrow from a HandlePool, which is the documented oversubscription
// idiom (and puts the pool itself under measurement).
const poolCap = 4096

// rmrProcCap caps the number of simulated processes for registry locks. The
// simulated memory and the locks' data structures are sized per process, so
// letting every one of 16384 goroutines be its own process would benchmark
// allocator churn, not lock handoffs. Above the cap, goroutines share the
// capped process handles through a channel pool — the same oversubscription
// idiom as the native HandlePool row — and the row's "procs" field records
// the real participant count.
const rmrProcCap = 1024

// rmrProcCapOverride lowers the cap for locks whose space is superlinear in
// the process count: the §6.2 bounded-space transformation allocates Θ(N²)
// simulated words, which is intractable to even construct at N=1024 here.
var rmrProcCapOverride = map[string]int{
	"paper-longlived-bounded": 128,
}

type cell struct {
	Lock       string  `json:"lock"`
	Impl       string  `json:"impl"` // native | stdlib | rmr/dsm | rmr/cc
	Goroutines int     `json:"goroutines"`
	Procs      int     `json:"procs"` // distinct lock participants (≤ goroutines when pooled)
	Ops        int     `json:"ops"`
	P50ns      int64   `json:"p50_ns"`
	P95ns      int64   `json:"p95_ns"`
	P99ns      int64   `json:"p99_ns"`
	Throughput float64 `json:"throughput_ops_per_s"`
}

// Native-path observability state (-obs and friends). Collectors are
// created lazily, one per native lock name, and aggregate across every
// cell that lock appears in; the bench loop is single-threaded, so the
// map needs no lock (the registry behind the HTTP endpoint has its own).
var (
	obsEnabled bool
	obsTrace   bool
	collectors = map[string]*obs.Metrics{}
)

// collector returns the (registered) collector for a native lock name, or
// nil when observability is off — the value SetObserver expects either way.
func collector(name string) *obs.Metrics {
	if !obsEnabled {
		return nil
	}
	m, ok := collectors[name]
	if !ok {
		m = obs.New(name, obs.Config{Trace: obsTrace, ProfileLabels: true})
		obs.MustRegister(m)
		collectors[name] = m
	}
	return m
}

func main() {
	var (
		out        = flag.String("o", "", "write JSON here instead of stdout")
		quick      = flag.Bool("quick", false, "small op budgets (CI-sized run)")
		gcsFlag    = flag.String("gcounts", "1,4,64,1024,16384", "comma-separated goroutine counts")
		opsFlag    = flag.Int("ops", 0, "target passages per cell (0 = default: 2048, quick 256)")
		lksFlag    = flag.String("locks", "", "comma-separated row filter (abortable, abortable-oneshot, sync.Mutex, registry names); empty = all")
		cpuProf    = flag.String("cpuprofile", "", "write a CPU profile here")
		obsFlag    = flag.Bool("obs", false, "attach obs collectors to the native locks")
		serveAddr  = flag.String("serve", "", "serve /metrics, /debug/vars, and /debug/pprof on this address (implies -obs; keeps serving after the run until interrupted)")
		traceFile  = flag.String("trace", "", "capture a runtime/trace of the run here (implies -obs, with per-passage tasks)")
		metricsOut = flag.String("metrics-out", "", "write the final Prometheus exposition here (implies -obs)")
	)
	flag.Parse()

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nativebench:", err)
			os.Exit(1)
		}
		pprof.StartCPUProfile(f)
		defer pprof.StopCPUProfile()
	}

	obsEnabled = *obsFlag || *serveAddr != "" || *traceFile != "" || *metricsOut != ""
	obsTrace = *traceFile != ""

	if *serveAddr != "" {
		obs.PublishExpvar()
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.Handler())
		mux.Handle("/debug/vars", expvar.Handler())
		mux.HandleFunc("/debug/pprof/", netpprof.Index)
		mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
		mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
		ln, err := net.Listen("tcp", *serveAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nativebench:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "nativebench: serving metrics on http://%s/metrics\n", ln.Addr())
		go http.Serve(ln, mux)
	}

	if *traceFile != "" {
		f, err := os.Create(*traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nativebench:", err)
			os.Exit(1)
		}
		if err := trace.Start(f); err != nil {
			fmt.Fprintln(os.Stderr, "nativebench: trace:", err)
			os.Exit(1)
		}
		stopTrace = func() {
			trace.Stop()
			f.Close()
			stopTrace = func() {}
		}
		defer func() { stopTrace() }()
	}

	want := func(string) bool { return true }
	if *lksFlag != "" {
		set := map[string]bool{}
		for _, f := range strings.Split(*lksFlag, ",") {
			set[strings.TrimSpace(f)] = true
		}
		want = func(name string) bool { return set[name] }
	}

	gcounts, err := parseCounts(*gcsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nativebench:", err)
		os.Exit(2)
	}
	ops := *opsFlag
	if ops <= 0 {
		ops = 2048
		if *quick {
			ops = 256
		}
	}

	var cells []cell
	for _, g := range gcounts {
		if want("abortable") {
			cells = append(cells, benchAbortable(g, ops))
		}
		if want("abortable-oneshot") {
			cells = append(cells, benchOneShotNative(g, ops))
		}
		if want("sync.Mutex") {
			cells = append(cells, benchStdlib(g, ops))
		}
		for _, info := range locks.Infos() {
			if want(info.Name) {
				cells = append(cells, benchRegistry(info, g, ops))
			}
		}
	}
	stopTrace()

	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nativebench:", err)
			os.Exit(1)
		}
		if err := obs.Default.WritePrometheus(f); err == nil {
			err = f.Close()
		} else {
			f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "nativebench:", err)
			os.Exit(1)
		}
	}

	doc := map[string]any{
		"schema": "nativebench/v1",
		"quick":  *quick,
		"native": cells,
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "nativebench:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
	} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "nativebench:", err)
		os.Exit(1)
	}

	if *serveAddr != "" {
		fmt.Fprintln(os.Stderr, "nativebench: matrix done; still serving (interrupt to exit)")
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		<-ch
	}
}

// stopTrace ends the runtime/trace capture, once; replaced when -trace is
// active so the trace closes before the post-run exports and the serve
// linger, not at process exit.
var stopTrace = func() {}

func parseCounts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad goroutine count %q", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no goroutine counts")
	}
	return out, nil
}

// run drives g goroutines through repeated passages until the shared op
// budget is drained. passage(worker) performs Enter/CS/Exit once; it is
// timed around the whole call. It returns the merged latency samples and
// the wall-clock duration of the contended phase.
func run(g, ops int, passage func(worker int)) ([]int64, time.Duration) {
	var (
		budget  = int64(ops)
		next    int64
		mu      sync.Mutex
		samples = make([]int64, 0, ops)
		wg      sync.WaitGroup
		start   = make(chan struct{})
	)
	var nextMu sync.Mutex
	take := func() bool {
		nextMu.Lock()
		ok := next < budget
		if ok {
			next++
		}
		nextMu.Unlock()
		return ok
	}
	wg.Add(g)
	for w := 0; w < g; w++ {
		go func(w int) {
			defer wg.Done()
			local := make([]int64, 0, ops/g+2)
			<-start
			for take() {
				t0 := time.Now()
				passage(w)
				local = append(local, time.Since(t0).Nanoseconds())
			}
			mu.Lock()
			samples = append(samples, local...)
			mu.Unlock()
		}(w)
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	return samples, time.Since(t0)
}

// runOneShot measures one-shot locks: build() constructs a fresh instance
// and returns one single-passage closure per participant. g persistent
// workers race to pull passages off a work channel, one round (= one fresh
// instance) at a time, until ops passages have been timed. When g exceeds
// the participant count, the surplus workers contend for the next round's
// passages — the pooled-oversubscription analogue for one-shot locks.
// Setup (build) time is excluded from the measured wall clock.
func runOneShot(g, ops int, build func() []func()) ([]int64, time.Duration) {
	var (
		samples = make([]int64, 0, ops)
		mu      sync.Mutex
		work    = make(chan func())
		roundWG sync.WaitGroup
		stop    = make(chan struct{})
		wg      sync.WaitGroup
	)
	wg.Add(g)
	for w := 0; w < g; w++ {
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				case pass := <-work:
					t0 := time.Now()
					pass()
					d := time.Since(t0).Nanoseconds()
					mu.Lock()
					samples = append(samples, d)
					mu.Unlock()
					roundWG.Done()
				}
			}
		}()
	}
	var wall time.Duration
	for {
		mu.Lock()
		n := len(samples)
		mu.Unlock()
		if n >= ops {
			break
		}
		passages := build()
		roundWG.Add(len(passages))
		t0 := time.Now()
		for _, p := range passages {
			work <- p
		}
		roundWG.Wait()
		wall += time.Since(t0)
	}
	close(stop)
	wg.Wait()
	return samples, wall
}

func summarize(lock, impl string, g, procs int, samples []int64, wall time.Duration) cell {
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	pct := func(p float64) int64 {
		if len(samples) == 0 {
			return 0
		}
		i := int(p * float64(len(samples)-1))
		return samples[i]
	}
	tput := 0.0
	if wall > 0 {
		tput = float64(len(samples)) / wall.Seconds()
	}
	return cell{
		Lock: lock, Impl: impl, Goroutines: g, Procs: procs, Ops: len(samples),
		P50ns: pct(0.50), P95ns: pct(0.95), P99ns: pct(0.99),
		Throughput: tput,
	}
}

func benchAbortable(g, ops int) cell {
	n := g
	if n > poolCap {
		n = poolCap
	}
	lk := abortable.New(abortable.Config{MaxHandles: n})
	lk.SetObserver(collector("abortable"))
	var held int64
	cs := func() {
		held++ // a data race here would mean mutual exclusion broke
		held--
	}
	var passage func(int)
	if g <= poolCap {
		handles := make([]*abortable.Handle, g)
		for i := range handles {
			h, err := lk.NewHandle()
			if err != nil {
				panic(err)
			}
			handles[i] = h
		}
		passage = func(w int) {
			h := handles[w]
			for !h.Enter() {
			}
			cs()
			h.Exit()
		}
	} else {
		pool, err := abortable.NewHandlePool(lk, poolCap)
		if err != nil {
			panic(err)
		}
		pool.SetObserver(collector("abortable-pool"))
		passage = func(int) {
			h := pool.Enter()
			cs()
			pool.Release(h)
		}
	}
	samples, wall := run(g, ops, passage)
	return summarize("abortable", "native", g, n, samples, wall)
}

// benchOneShotNative measures the native OneShot: each round builds a
// fresh instance sized to the participant count and times one passage per
// handle, the same round structure as the registry one-shot rows. The
// participant count is capped like the registry rows' — a fresh
// 16384-slot instance per round would benchmark the allocator.
func benchOneShotNative(g, ops int) cell {
	procs := g
	if procs > rmrProcCap {
		procs = rmrProcCap
	}
	build := func() []func() {
		l := abortable.NewOneShot(procs)
		l.SetObserver(collector("abortable-oneshot"))
		passages := make([]func(), procs)
		for i := range passages {
			h, err := l.NewHandle()
			if err != nil {
				panic(err)
			}
			passages[i] = func() {
				if h.Enter() {
					h.Exit()
				}
			}
		}
		return passages
	}
	samples, wall := runOneShot(g, ops, build)
	return summarize("abortable-oneshot", "native", g, procs, samples, wall)
}

func benchStdlib(g, ops int) cell {
	var mu sync.Mutex
	var held int64
	samples, wall := run(g, ops, func(int) {
		mu.Lock()
		held++
		held--
		mu.Unlock()
	})
	return summarize("sync.Mutex", "stdlib", g, g, samples, wall)
}

func benchRegistry(info locks.Info, g, ops int) cell {
	model, impl := rmr.DSM, "rmr/dsm"
	if info.CCOnly {
		model, impl = rmr.CC, "rmr/cc"
	}
	procs := g
	if procs > rmrProcCap {
		procs = rmrProcCap
	}
	if cap, ok := rmrProcCapOverride[info.Name]; ok && procs > cap {
		procs = cap
	}
	if info.OneShot {
		build := func() []func() {
			m := rmr.NewMemory(model, procs, nil)
			fn, err := info.New(m, treeW, procs)
			if err != nil {
				panic(fmt.Sprintf("%s: %v", info.Name, err))
			}
			passages := make([]func(), procs)
			for i := 0; i < procs; i++ {
				h := fn(m.Proc(i))
				passages[i] = func() {
					if h.Enter() {
						h.Exit()
					}
				}
			}
			return passages
		}
		samples, wall := runOneShot(g, ops, build)
		return summarize(info.Name, impl, g, procs, samples, wall)
	}
	m := rmr.NewMemory(model, procs, nil)
	fn, err := info.New(m, treeW, procs)
	if err != nil {
		panic(fmt.Sprintf("%s: %v", info.Name, err))
	}
	handles := make([]locks.Abortable, procs)
	for i := range handles {
		handles[i] = fn(m.Proc(i))
	}
	var passage func(int)
	if procs == g {
		passage = func(w int) {
			h := handles[w]
			for !h.Enter() {
			}
			h.Exit()
		}
	} else {
		// Oversubscribed: goroutines borrow process handles from a channel
		// pool. The channel send/receive carries the happens-before edge a
		// handle needs between successive borrowers.
		pool := make(chan locks.Abortable, procs)
		for _, h := range handles {
			pool <- h
		}
		passage = func(int) {
			h := <-pool
			for !h.Enter() {
			}
			h.Exit()
			pool <- h
		}
	}
	samples, wall := run(g, ops, passage)
	return summarize(info.Name, impl, g, procs, samples, wall)
}
