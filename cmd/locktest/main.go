// Command locktest stress-tests and schedule-explores the simulated lock
// algorithms: it runs one passage per process under many seeded random
// interleavings, checking mutual exclusion and termination, with optional
// abort injection — the E8 (Theorem 2 properties) entry point.
//
// Usage:
//
//	locktest [-algo paper] [-n 16] [-w 8] [-seeds 100] [-aborters 0] [-model cc]
package main

import (
	"flag"
	"fmt"
	"os"
	"sync/atomic"

	"sublock/internal/harness"
	"sublock/rmr"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "locktest:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("locktest", flag.ContinueOnError)
	algo := fs.String("algo", "paper", "algorithm: paper, paper-plain, paper-longlived, paper-longlived-bounded, scott, tournament, linearscan, mcs, tas")
	n := fs.Int("n", 16, "number of processes")
	w := fs.Int("w", 8, "tree arity for the paper's algorithms")
	seeds := fs.Int("seeds", 100, "number of seeded schedules to explore")
	aborters := fs.Int("aborters", 0, "processes that receive the abort signal before starting")
	model := fs.String("model", "cc", "memory model: cc or dsm")
	maxSteps := fs.Int("maxsteps", 100_000_000, "schedule step budget")
	exhaustive := fs.Bool("exhaustive", false, "bounded-exhaustive exploration instead of seeded sampling (use small -n)")
	exhaustSteps := fs.Int("exhauststeps", 24, "schedule length bound for -exhaustive")
	exhaustCap := fs.Int("exhaustcap", 200000, "schedule cap for -exhaustive (0 = none)")
	workers := fs.Int("workers", 1, "parallel exploration workers for -exhaustive")
	if err := fs.Parse(args); err != nil {
		return err
	}
	mdl := rmr.CC
	if *model == "dsm" {
		mdl = rmr.DSM
	} else if *model != "cc" {
		return fmt.Errorf("unknown model %q", *model)
	}
	if *aborters >= *n {
		return fmt.Errorf("aborters (%d) must be < n (%d)", *aborters, *n)
	}
	if *aborters > 0 && !harness.Algo(*algo).Abortable() {
		return fmt.Errorf("%s is not abortable", *algo)
	}

	if *exhaustive {
		return runExhaustive(mdl, harness.Algo(*algo), *w, *n, *aborters, *exhaustSteps, *exhaustCap, *workers)
	}

	var totalEntered, totalAborted int
	for seed := int64(0); seed < int64(*seeds); seed++ {
		entered, aborted, err := explore(mdl, harness.Algo(*algo), *w, *n, *aborters, seed, *maxSteps)
		if err != nil {
			return fmt.Errorf("seed %d: %w", seed, err)
		}
		totalEntered += entered
		totalAborted += aborted
	}
	fmt.Printf("%s: %d seeds × %d processes (%d aborters): OK\n", *algo, *seeds, *n, *aborters)
	fmt.Printf("  passages completed: %d, attempts aborted: %d\n", totalEntered, totalAborted)
	fmt.Println("  mutual exclusion held in every explored schedule; every schedule terminated")
	return nil
}

// explore runs one seeded schedule and returns (entered, aborted) counts.
func explore(model rmr.Model, algo harness.Algo, w, n, aborters int, seed int64, maxSteps int) (int, int, error) {
	s := rmr.NewScheduler(n, rmr.RandomPick(seed))
	m := rmr.NewMemory(model, n, nil)
	fn, err := harness.Build(m, algo, w, n)
	if err != nil {
		return 0, 0, err
	}
	m.SetGate(s)

	var inCS, violations atomic.Int32
	var entered, aborted atomic.Int32
	for i := 0; i < n; i++ {
		p := m.Proc(i)
		if i < aborters {
			p.SignalAbort()
		}
		h := fn(p)
		s.Go(func() {
			if h.Enter() {
				if inCS.Add(1) > 1 {
					violations.Add(1)
				}
				entered.Add(1)
				inCS.Add(-1)
				h.Exit()
			} else {
				aborted.Add(1)
			}
		})
	}
	if err := s.Run(maxSteps); err != nil {
		// Release the stalled processes before reporting: deliver abort
		// signals so waiters leave their spin loops, then drain the gate.
		for i := 0; i < n; i++ {
			m.Proc(i).SignalAbort()
		}
		s.Drain()
		return 0, 0, fmt.Errorf("schedule stalled: %w", err)
	}
	if v := violations.Load(); v != 0 {
		return 0, 0, fmt.Errorf("%d mutual-exclusion violations", v)
	}
	return int(entered.Load()), int(aborted.Load()), nil
}

// runExhaustive enumerates every schedule of length ≤ maxSteps (bounded
// model checking via rmr.Explorer over harness.ExhaustiveBody): processes
// in [0, aborters) receive their abort signal from a dedicated signal
// process whose single step the explorer places at every possible point.
// workers > 1 partitions the choice tree across that many goroutines; an
// uncapped run reports the same counts at any worker count.
func runExhaustive(model rmr.Model, algo harness.Algo, w, n, aborters, maxSteps, cap, workers int) error {
	nprocs := n
	if aborters > 0 {
		nprocs++
	}
	body := harness.ExhaustiveBody(model, algo, w, n, aborters)
	e := &rmr.Explorer{MaxSteps: maxSteps, MaxSchedules: cap, Workers: workers}
	res, err := e.Run(nprocs, body)
	if err != nil {
		return err
	}
	fmt.Printf("%s: bounded-exhaustive exploration (≤%d steps): %d schedules explored, %d pruned, exhausted=%v\n",
		algo, maxSteps, res.Explored, res.Pruned, res.Exhausted)
	fmt.Println("  mutual exclusion and non-aborter completion held in every explored schedule")
	return nil
}
