// Command locktest stress-tests and schedule-explores the simulated lock
// algorithms: it runs one passage per process under many seeded random
// interleavings, checking mutual exclusion and termination, with optional
// abort injection — the E8 (Theorem 2 properties) entry point.
//
// Usage:
//
//	locktest [-lock paper] [-n 16] [-w 8] [-seeds 100] [-aborters 0] [-model cc]
//
// The lock is any name in the locks registry (-list-locks enumerates them;
// -algo is a deprecated alias for -lock).
//
// With -exhaustive, -progress prints live explored/pruned schedule counts
// and throughput to stderr, and the final report includes the depth
// histogram of explored choice sequences. When the exploration finds a
// property violation, the offending schedule is replayed with a
// flight-recorder tracer and the last events before the violation are
// dumped alongside the schedule.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"sublock/internal/harness"
	"sublock/locks"
	"sublock/rmr"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "locktest:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("locktest", flag.ContinueOnError)
	var lock string
	fs.StringVar(&lock, "lock", "paper", "lock to test: any registered name (see -list-locks)")
	fs.StringVar(&lock, "algo", "paper", "deprecated alias for -lock")
	listLocks := fs.Bool("list-locks", false, "list the registered locks and exit")
	n := fs.Int("n", 16, "number of processes")
	w := fs.Int("w", 8, "tree arity for the paper's algorithms")
	seeds := fs.Int("seeds", 100, "number of seeded schedules to explore")
	aborters := fs.Int("aborters", 0, "processes that receive the abort signal before starting")
	model := fs.String("model", "cc", "memory model: cc or dsm")
	maxSteps := fs.Int("maxsteps", 100_000_000, "schedule step budget")
	exhaustive := fs.Bool("exhaustive", false, "bounded-exhaustive exploration instead of seeded sampling (use small -n)")
	exhaustSteps := fs.Int("exhauststeps", 24, "schedule length bound for -exhaustive")
	exhaustCap := fs.Int("exhaustcap", 200000, "schedule cap for -exhaustive (0 = none)")
	workers := fs.Int("workers", 0, "parallel exploration workers for -exhaustive (0 = GOMAXPROCS)")
	por := fs.Bool("por", false, "partial-order reduction for -exhaustive (sleep sets; prunes equivalent interleavings)")
	progress := fs.Bool("progress", false, "print live exploration counters to stderr (-exhaustive)")
	ringSize := fs.Int("ring", 64, "flight-recorder size for violation dumps (-exhaustive)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *listLocks {
		for _, info := range locks.Infos() {
			fmt.Printf("  %-24s %s\n", info.Name, info.Summary)
		}
		return nil
	}
	info, ok := locks.Lookup(lock)
	if !ok {
		return &locks.ErrUnknown{Name: lock, Registered: locks.Names()}
	}
	mdl := rmr.CC
	if *model == "dsm" {
		mdl = rmr.DSM
	} else if *model != "cc" {
		return fmt.Errorf("unknown model %q", *model)
	}
	if mdl == rmr.DSM && info.CCOnly {
		return fmt.Errorf("%s requires the CC memory model", lock)
	}
	if *aborters >= *n {
		return fmt.Errorf("aborters (%d) must be < n (%d)", *aborters, *n)
	}
	if *aborters > 0 && !info.Abortable {
		return fmt.Errorf("%s is not abortable", lock)
	}

	if *exhaustive {
		return runExhaustive(exhaustiveConfig{
			model: mdl, algo: harness.Algo(lock), w: *w, n: *n, aborters: *aborters,
			maxSteps: *exhaustSteps, cap: *exhaustCap, workers: *workers, por: *por,
			progress: *progress, ringSize: *ringSize,
		})
	}

	var totalEntered, totalAborted int
	for seed := int64(0); seed < int64(*seeds); seed++ {
		entered, aborted, err := explore(mdl, harness.Algo(lock), *w, *n, *aborters, seed, *maxSteps)
		if err != nil {
			return fmt.Errorf("seed %d: %w", seed, err)
		}
		totalEntered += entered
		totalAborted += aborted
	}
	fmt.Printf("%s: %d seeds × %d processes (%d aborters): OK\n", lock, *seeds, *n, *aborters)
	fmt.Printf("  passages completed: %d, attempts aborted: %d\n", totalEntered, totalAborted)
	fmt.Println("  mutual exclusion held in every explored schedule; every schedule terminated")
	return nil
}

// explore runs one seeded schedule and returns (entered, aborted) counts.
func explore(model rmr.Model, algo harness.Algo, w, n, aborters int, seed int64, maxSteps int) (int, int, error) {
	s := rmr.NewScheduler(n, rmr.RandomPick(seed))
	m := rmr.NewMemory(model, n, nil)
	fn, err := harness.Build(m, algo, w, n)
	if err != nil {
		return 0, 0, err
	}
	m.SetGate(s)

	var inCS, violations atomic.Int32
	var entered, aborted atomic.Int32
	for i := 0; i < n; i++ {
		p := m.Proc(i)
		if i < aborters {
			p.SignalAbort()
		}
		h := fn(p)
		s.Go(func() {
			if h.Enter() {
				if inCS.Add(1) > 1 {
					violations.Add(1)
				}
				entered.Add(1)
				inCS.Add(-1)
				h.Exit()
			} else {
				aborted.Add(1)
			}
		})
	}
	if err := s.Run(maxSteps); err != nil {
		// Release the stalled processes before reporting: deliver abort
		// signals so waiters leave their spin loops, then drain the gate.
		for i := 0; i < n; i++ {
			m.Proc(i).SignalAbort()
		}
		s.Drain()
		return 0, 0, fmt.Errorf("schedule stalled: %w", err)
	}
	if v := violations.Load(); v != 0 {
		return 0, 0, fmt.Errorf("%d mutual-exclusion violations", v)
	}
	return int(entered.Load()), int(aborted.Load()), nil
}

type exhaustiveConfig struct {
	model    rmr.Model
	algo     harness.Algo
	w        int
	n        int
	aborters int
	maxSteps int
	cap      int
	workers  int
	por      bool
	progress bool
	ringSize int
}

// runExhaustive enumerates every schedule of length ≤ maxSteps (bounded
// model checking via harness.Explore): processes in [0, aborters) receive
// their abort signal from a dedicated signal process whose single step the
// explorer places at every possible point. workers > 1 partitions the
// choice tree across that many goroutines (0 resolves to GOMAXPROCS); an
// uncapped run reports the same counts at any worker count. With por,
// schedules that only reorder commuting steps of explored ones are cut
// instead of replayed.
func runExhaustive(cfg exhaustiveConfig) error {
	workers := cfg.workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	reduction := rmr.NoReduction
	reductionName := "off"
	if cfg.por {
		reduction = rmr.SleepSets
		reductionName = "sleep-sets"
	}
	ec := harness.ExploreConfig{
		Model: cfg.model, Algo: cfg.algo, W: cfg.w, N: cfg.n, Aborters: cfg.aborters,
		MaxSteps: cfg.maxSteps, MaxSchedules: cfg.cap, Workers: workers, Reduction: reduction,
	}
	fmt.Printf("%s: bounded-exhaustive exploration: n=%d w=%d aborters=%d ≤%d steps, workers=%d, reduction=%s\n",
		cfg.algo, cfg.n, cfg.w, cfg.aborters, cfg.maxSteps, workers, reductionName)
	var stopProgress func()
	if cfg.progress {
		ec.Monitor = &rmr.Monitor{}
		stopProgress = startProgress(ec.Monitor)
	}
	start := time.Now()
	res, err := harness.Explore(ec)
	elapsed := time.Since(start)
	if stopProgress != nil {
		stopProgress()
	}
	var ee *rmr.ErrExplore
	if errors.As(err, &ee) {
		dumpViolation(cfg, ee)
		return err
	}
	if err != nil {
		return err
	}
	fmt.Printf("  %d schedules explored, %d pruned, %d cut as equivalent, exhausted=%v\n",
		res.Explored, res.Pruned, res.Equivalent, res.Exhausted)
	if secs := elapsed.Seconds(); secs > 0 {
		fmt.Printf("  throughput: %.0f replays/s over %v\n",
			float64(res.Replays())/secs, elapsed.Round(time.Millisecond))
	}
	printDepths(res.Depths)
	fmt.Println("  mutual exclusion and non-aborter completion held in every explored schedule")
	return nil
}

// startProgress prints live explored/pruned counters and throughput to
// stderr twice a second until the returned stop function is called.
func startProgress(mon *rmr.Monitor) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(500 * time.Millisecond)
		defer t.Stop()
		start := time.Now()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				explored, pruned, equivalent := mon.Counts()
				secs := time.Since(start).Seconds()
				fmt.Fprintf(os.Stderr, "\rexplored %d, pruned %d, equivalent %d (%.0f replays/s)   ",
					explored, pruned, equivalent, float64(explored+pruned+equivalent)/secs)
			}
		}
	}()
	return func() {
		close(done)
		<-finished
		fmt.Fprint(os.Stderr, "\r\033[K")
	}
}

// printDepths renders the explored-schedule depth histogram, coalescing
// empty leading buckets.
func printDepths(depths []int64) {
	var max int64
	for _, c := range depths {
		if c > max {
			max = c
		}
	}
	if max == 0 {
		return
	}
	fmt.Println("  schedule depth histogram (choice-sequence length → count):")
	for d, c := range depths {
		if c == 0 {
			continue
		}
		bar := int(c * 40 / max)
		fmt.Printf("    %3d %8d %s\n", d, c, bars(bar))
	}
}

func bars(n int) string {
	const full = "████████████████████████████████████████"
	if n < 1 {
		return "▏"
	}
	return full[:3*n] // runes are 3 bytes each
}

// dumpViolation replays the violating schedule with a flight-recorder
// tracer and prints the last events leading up to the violation.
func dumpViolation(cfg exhaustiveConfig, ee *rmr.ErrExplore) {
	fmt.Fprintf(os.Stderr, "locktest: property violation on schedule %v\n", ee.Schedule)
	ring, replayErr := harness.ReplayTraced(cfg.model, cfg.algo, cfg.w, cfg.n, cfg.aborters,
		ee.Schedule, cfg.maxSteps, cfg.ringSize)
	if replayErr == nil {
		fmt.Fprintln(os.Stderr, "locktest: replay did not reproduce the violation (nondeterministic body?)")
		return
	}
	events := ring.Events()
	fmt.Fprintf(os.Stderr, "locktest: flight recorder — last %d of %d events before the violation:\n",
		len(events), ring.Total())
	for _, ev := range events {
		fmt.Fprintf(os.Stderr, "  %s\n", ev)
	}
	fmt.Fprintf(os.Stderr, "locktest: replayed violation: %v\n", replayErr)
}
