// Command locktest stress-tests and schedule-explores the simulated lock
// algorithms: it runs one passage per process under many seeded random
// interleavings, checking mutual exclusion and termination, with optional
// abort injection — the E8 (Theorem 2 properties) entry point.
//
// Usage:
//
//	locktest [-lock paper] [-n 16] [-w 8] [-seeds 100] [-aborters 0] [-model cc]
//
// The lock is any name in the locks registry (-list-locks enumerates them;
// -algo is a deprecated alias for -lock).
//
// -cost NAME prices the seeded schedules under a deterministic latency
// model (see rmr.CostModelNames; -cost-seed seeds it) and reports the
// accrued simulated time. Pricing is observe-only — schedules, RMR counts,
// and verdicts are unchanged — and is a seeded-mode feature: combining it
// with -exhaustive or -faults is an error rather than a silently unpriced
// run.
//
// With -exhaustive, -progress prints live explored/pruned schedule counts
// and throughput to stderr, and the final report includes the depth
// histogram of explored choice sequences. When the exploration finds a
// property violation, the offending schedule is replayed with a
// flight-recorder tracer and the last events before the violation are
// dumped alongside the schedule.
//
// Exploration reductions stack: -por (sleep sets), -visited (state-hash
// caching of re-converging interleavings), -symmetry (process-id symmetry
// for locks registered id-symmetric). -shard i/n explores one top-level
// slice of the choice tree. -checkpoint FILE saves the pending frontier
// when -exhaustcap interrupts the search, and -resume FILE continues from
// a saved artifact — the deep-explore CI job chains these across pushes,
// validating the artifact version and configuration (a stale artifact
// warns and starts fresh).
//
// Fault injection (see docs/FAULTS.md): -faults runs the seeded schedules
// under a scripted fault plan ("crash:0@4,stall:1@2+15"); -crash-points
// makes -exhaustive sweep crash-stop plans at the given operation attempts
// on top of the schedule exploration; -watchdog arms the starvation
// watchdog at the given overtaking bound in either mode. -deadline bounds
// the whole run in wall-clock time — on expiry the in-flight run's fault
// report and replay schedule are dumped and the exit status is 3.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"sublock/internal/harness"
	"sublock/locks"
	"sublock/rmr"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "locktest:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("locktest", flag.ContinueOnError)
	var lock string
	fs.StringVar(&lock, "lock", "paper", "lock to test: any registered name (see -list-locks)")
	fs.StringVar(&lock, "algo", "paper", "deprecated alias for -lock")
	listLocks := fs.Bool("list-locks", false, "list the registered locks and exit")
	n := fs.Int("n", 16, "number of processes")
	w := fs.Int("w", 8, "tree arity for the paper's algorithms")
	seeds := fs.Int("seeds", 100, "number of seeded schedules to explore")
	aborters := fs.Int("aborters", 0, "processes that receive the abort signal before starting")
	model := fs.String("model", "cc", "memory model: cc or dsm")
	maxSteps := fs.Int("maxsteps", 100_000_000, "schedule step budget")
	exhaustive := fs.Bool("exhaustive", false, "bounded-exhaustive exploration instead of seeded sampling (use small -n)")
	exhaustSteps := fs.Int("exhauststeps", 24, "schedule length bound for -exhaustive")
	exhaustCap := fs.Int("exhaustcap", 200000, "schedule cap for -exhaustive (0 = none)")
	workers := fs.Int("workers", 0, "parallel exploration workers for -exhaustive (0 = GOMAXPROCS)")
	por := fs.Bool("por", false, "partial-order reduction for -exhaustive (sleep sets; prunes equivalent interleavings)")
	visited := fs.Bool("visited", false, "state-hash visited caching for -exhaustive (cuts replays that re-converge on an explored state)")
	symmetry := fs.Bool("symmetry", false, "process-id symmetry reduction for -exhaustive (id-symmetric locks only; see locks registry)")
	checkpointFile := fs.String("checkpoint", "", "write the exploration frontier checkpoint to this `file` (-exhaustive)")
	resumeFile := fs.String("resume", "", "resume -exhaustive from this checkpoint `file`; a missing or invalid artifact warns and starts fresh")
	shardSpec := fs.String("shard", "", "explore only shard `i/n` of the choice tree (-exhaustive); merge counts across shards externally")
	progress := fs.Bool("progress", false, "print live exploration counters to stderr (-exhaustive)")
	ringSize := fs.Int("ring", 64, "flight-recorder size for violation dumps (-exhaustive)")
	faultsSpec := fs.String("faults", "", "inject scripted faults into every seeded schedule: `kind:pid@op[+delay],...` (crash, stall)")
	crashPoints := fs.String("crash-points", "", "with -exhaustive, sweep crash-stop plans at these 1-based `op,op,...` attempts per victim")
	watchdog := fs.Int("watchdog", 0, "arm the starvation watchdog at this overtaking bound (0 = off)")
	costName := fs.String("cost", "", "price seeded schedules under this cost `model` (see rmr.CostModelNames) and report simulated time")
	costSeed := fs.Int64("cost-seed", 1, "seed for the deterministic cost model")
	deadline := fs.Duration("deadline", 0, "wall-clock bound for the whole run; on expiry dump the fault report and exit 3")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *listLocks {
		for _, info := range locks.Infos() {
			fmt.Printf("  %-24s %s\n", info.Name, info.Summary)
		}
		return nil
	}
	info, ok := locks.Lookup(lock)
	if !ok {
		return &locks.ErrUnknown{Name: lock, Registered: locks.Names()}
	}
	mdl := rmr.CC
	if *model == "dsm" {
		mdl = rmr.DSM
	} else if *model != "cc" {
		return fmt.Errorf("unknown model %q", *model)
	}
	if mdl == rmr.DSM && info.CCOnly {
		return fmt.Errorf("%s requires the CC memory model", lock)
	}
	if *aborters >= *n {
		return fmt.Errorf("aborters (%d) must be < n (%d)", *aborters, *n)
	}
	if *aborters > 0 && !info.Abortable {
		return fmt.Errorf("%s is not abortable", lock)
	}
	plan, err := harness.ParseFaults(*faultsSpec)
	if err != nil {
		return err
	}
	points, err := harness.ParseCrashPoints(*crashPoints)
	if err != nil {
		return err
	}
	if plan != nil && *exhaustive {
		return fmt.Errorf("-faults scripts one plan into seeded runs; with -exhaustive use -crash-points to sweep crash plans")
	}
	if points != nil && !*exhaustive {
		return fmt.Errorf("-crash-points sweeps plans under -exhaustive; for seeded runs script a plan with -faults")
	}
	var cost rmr.CostModel
	if *costName != "" {
		if *exhaustive {
			return fmt.Errorf("-cost prices plain seeded runs; it does not combine with -exhaustive")
		}
		if plan != nil || *watchdog > 0 {
			return fmt.Errorf("-cost prices plain seeded runs; it does not combine with -faults or -watchdog")
		}
		cost, err = rmr.NewCostModel(*costName, *costSeed)
		if err != nil {
			return err
		}
	}

	// current tracks the in-flight scheduler so an expired deadline can dump
	// the fault report and replay schedule of whatever run was stuck.
	var current atomic.Pointer[rmr.Scheduler]
	if *deadline > 0 {
		timer := time.AfterFunc(*deadline, func() {
			fmt.Fprintf(os.Stderr, "locktest: deadline %v exceeded\n", *deadline)
			if s := current.Load(); s != nil {
				harness.WriteFaultReport(os.Stderr, s.Faults(), s.Schedule())
			}
			os.Exit(3)
		})
		defer timer.Stop()
	}

	shard, shardCount, err := parseShard(*shardSpec)
	if err != nil {
		return err
	}
	if (*checkpointFile != "" || *resumeFile != "") && !*exhaustive {
		return fmt.Errorf("-checkpoint/-resume apply to -exhaustive runs")
	}
	if (*checkpointFile != "" || *resumeFile != "") && (points != nil || *watchdog > 0) {
		return fmt.Errorf("-checkpoint/-resume do not combine with fault sweeps (-crash-points, -watchdog)")
	}
	if *exhaustive {
		return runExhaustive(exhaustiveConfig{
			model: mdl, algo: harness.Algo(lock), w: *w, n: *n, aborters: *aborters,
			maxSteps: *exhaustSteps, cap: *exhaustCap, workers: *workers, por: *por,
			visited: *visited, symmetry: *symmetry,
			shard: shard, shardCount: shardCount,
			checkpointFile: *checkpointFile, resumeFile: *resumeFile,
			progress: *progress, ringSize: *ringSize,
			crashPoints: points, watchdog: *watchdog,
		})
	}
	if plan != nil || *watchdog > 0 {
		return runFaultedSeeds(mdl, harness.Algo(lock), *w, *n, *aborters, *seeds, *maxSteps,
			plan, *watchdog, &current)
	}

	var totalEntered, totalAborted int
	var totalSim, maxSim int64
	for seed := int64(0); seed < int64(*seeds); seed++ {
		entered, aborted, sim, err := explore(mdl, harness.Algo(lock), cost, *w, *n, *aborters, seed, *maxSteps, &current)
		if err != nil {
			return fmt.Errorf("seed %d: %w", seed, err)
		}
		totalEntered += entered
		totalAborted += aborted
		totalSim += sim.total
		if sim.max > maxSim {
			maxSim = sim.max
		}
	}
	fmt.Printf("%s: %d seeds × %d processes (%d aborters): OK\n", lock, *seeds, *n, *aborters)
	fmt.Printf("  passages completed: %d, attempts aborted: %d\n", totalEntered, totalAborted)
	if cost != nil && cost.Name() != "unit" {
		fmt.Printf("  simulated time (cost=%s, cost-seed=%d): total=%d ns, max per-process=%d ns\n",
			cost.Name(), *costSeed, totalSim, maxSim)
	}
	fmt.Println("  mutual exclusion held in every explored schedule; every schedule terminated")
	return nil
}

// simTally aggregates one seeded run's simulated time: the sum over
// processes and the per-process maximum.
type simTally struct {
	total, max int64
}

// runFaultedSeeds runs the seeded schedules with the scripted fault plan
// and/or the watchdog armed, via the fault-tolerant harness body (survivors
// must complete, crashed processes are exempt, mutual exclusion is
// unconditional). A crash can wedge survivors of a non-abortable lock past
// the step budget; those seeds are reported as wedged — with the injected
// fault attributed — rather than failing the run.
func runFaultedSeeds(model rmr.Model, algo harness.Algo, w, n, aborters, seeds, maxSteps int,
	plan *rmr.FaultPlan, watchdog int, current *atomic.Pointer[rmr.Scheduler]) error {
	nprocs := n
	if aborters > 0 {
		nprocs++ // the abort-signal process
	}
	body := harness.FaultBody(model, algo, w, n, aborters)
	var fired, wedged int
	for seed := int64(0); seed < int64(seeds); seed++ {
		s := rmr.NewScheduler(nprocs, rmr.RandomPick(seed))
		if plan != nil {
			s.SetFaultPlan(plan)
		}
		if watchdog > 0 {
			s.SetWatchdog(watchdog)
		}
		s.RecordSchedule(true)
		current.Store(s)
		err := body(s, maxSteps)
		faults := s.Faults()
		fired += len(faults)
		if err != nil {
			if errors.Is(err, rmr.ErrStepLimit) && plan != nil && len(faults) > 0 {
				wedged++
				continue
			}
			harness.WriteFaultReport(os.Stderr, faults, s.Schedule())
			return fmt.Errorf("seed %d: %w", seed, err)
		}
	}
	fmt.Printf("%s: %d seeds × %d processes (%d aborters) under faults: OK\n", algo, seeds, n, aborters)
	if plan != nil {
		fmt.Printf("  fault plan: %v\n", plan)
	}
	if watchdog > 0 {
		fmt.Printf("  watchdog bound: %d overtakes\n", watchdog)
	}
	fmt.Printf("  faults fired: %d; seeds wedged by a crash (step limit, fault attributed): %d\n", fired, wedged)
	fmt.Println("  mutual exclusion held and every survivor completed in every schedule")
	return nil
}

// explore runs one seeded schedule and returns (entered, aborted) counts
// plus the simulated-time tally (zero under the default Unit accounting's
// RMR-tick clock only in the trivial no-op case; equal to the RMR counts
// when cost is nil or Unit).
func explore(model rmr.Model, algo harness.Algo, cost rmr.CostModel, w, n, aborters int, seed int64, maxSteps int,
	current *atomic.Pointer[rmr.Scheduler]) (int, int, simTally, error) {
	s := rmr.NewScheduler(n, rmr.RandomPick(seed))
	current.Store(s)
	m := rmr.NewMemory(model, n, nil)
	fn, err := harness.Build(m, algo, w, n)
	if err != nil {
		return 0, 0, simTally{}, err
	}
	if cost != nil {
		m.SetCostModel(cost)
	}
	m.SetGate(s)

	var inCS, violations atomic.Int32
	var entered, aborted atomic.Int32
	for i := 0; i < n; i++ {
		p := m.Proc(i)
		if i < aborters {
			p.SignalAbort()
		}
		h := fn(p)
		s.Go(func() {
			if h.Enter() {
				if inCS.Add(1) > 1 {
					violations.Add(1)
				}
				entered.Add(1)
				inCS.Add(-1)
				h.Exit()
			} else {
				aborted.Add(1)
			}
		})
	}
	if err := s.Run(maxSteps); err != nil {
		// Release the stalled processes before reporting: deliver abort
		// signals so waiters leave their spin loops, then drain the gate.
		for i := 0; i < n; i++ {
			m.Proc(i).SignalAbort()
		}
		s.Drain()
		return 0, 0, simTally{}, fmt.Errorf("schedule stalled: %w", err)
	}
	if v := violations.Load(); v != 0 {
		return 0, 0, simTally{}, fmt.Errorf("%d mutual-exclusion violations", v)
	}
	var sim simTally
	for i := 0; i < n; i++ {
		st := m.Proc(i).SimTime()
		sim.total += st
		if st > sim.max {
			sim.max = st
		}
	}
	return int(entered.Load()), int(aborted.Load()), sim, nil
}

type exhaustiveConfig struct {
	model          rmr.Model
	algo           harness.Algo
	w              int
	n              int
	aborters       int
	maxSteps       int
	cap            int
	workers        int
	por            bool
	visited        bool
	symmetry       bool
	shard          int
	shardCount     int
	checkpointFile string
	resumeFile     string
	progress       bool
	ringSize       int
	crashPoints    []int
	watchdog       int
}

// parseShard parses the -shard "i/n" spec; an empty spec is unsharded.
func parseShard(spec string) (shard, count int, err error) {
	if spec == "" {
		return 0, 0, nil
	}
	if _, err := fmt.Sscanf(spec, "%d/%d", &shard, &count); err != nil {
		return 0, 0, fmt.Errorf("invalid -shard %q: want i/n", spec)
	}
	if count < 1 || shard < 0 || shard >= count {
		return 0, 0, fmt.Errorf("invalid -shard %q: want 0 <= i < n", spec)
	}
	return shard, count, nil
}

// runExhaustive enumerates every schedule of length ≤ maxSteps (bounded
// model checking via harness.Explore): processes in [0, aborters) receive
// their abort signal from a dedicated signal process whose single step the
// explorer places at every possible point. workers > 1 partitions the
// choice tree across that many goroutines (0 resolves to GOMAXPROCS); an
// uncapped run reports the same counts at any worker count. With por,
// schedules that only reorder commuting steps of explored ones are cut
// instead of replayed.
func runExhaustive(cfg exhaustiveConfig) error {
	workers := cfg.workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	reduction := rmr.NoReduction
	reductionName := "off"
	if cfg.por {
		reduction = rmr.SleepSets
		reductionName = "sleep-sets"
	}
	if cfg.visited {
		reductionName += "+visited"
	}
	if cfg.symmetry {
		reductionName += "+symmetry"
	}
	faulted := len(cfg.crashPoints) > 0 || cfg.watchdog > 0
	if faulted && (cfg.por || cfg.visited || cfg.symmetry) {
		reductionName += " (forced off by fault sweep)"
	}
	ec := harness.ExploreConfig{
		Model: cfg.model, Algo: cfg.algo, W: cfg.w, N: cfg.n, Aborters: cfg.aborters,
		MaxSteps: cfg.maxSteps, MaxSchedules: cfg.cap, Workers: workers, Reduction: reduction,
		Visited: cfg.visited, Symmetry: cfg.symmetry,
		Shard: cfg.shard, ShardCount: cfg.shardCount,
	}
	if cfg.symmetry && !faulted && ec.SymmetryClasses() == nil {
		fmt.Fprintf(os.Stderr, "locktest: %s is not registered id-symmetric (or has no interchangeable role); -symmetry has no effect\n", cfg.algo)
	}
	fmt.Printf("%s: bounded-exhaustive exploration: n=%d w=%d aborters=%d ≤%d steps, workers=%d, reduction=%s\n",
		cfg.algo, cfg.n, cfg.w, cfg.aborters, cfg.maxSteps, workers, reductionName)
	if cfg.shardCount > 0 {
		fmt.Printf("  shard %d of %d (top-level choice split; counts cover this shard's subtrees only)\n",
			cfg.shard, cfg.shardCount)
	}
	if faulted {
		fmt.Printf("  fault sweep: crash points %v, watchdog bound %d\n", cfg.crashPoints, cfg.watchdog)
	}
	var stopProgress func()
	if cfg.progress {
		ec.Monitor = &rmr.Monitor{}
		stopProgress = startProgress(ec.Monitor)
	}
	start := time.Now()
	var res rmr.Result
	var ck *rmr.Checkpoint
	var runs []rmr.FaultRun
	var err error
	switch {
	case faulted:
		f := harness.Faults{CrashPoints: cfg.crashPoints, Watchdog: cfg.watchdog}
		if len(cfg.crashPoints) == 0 {
			// Watchdog-only: explore the fault-free schedules under the
			// watchdog without injecting crashes (no victims, no crash plans).
			f.Victims = []int{}
		}
		res, runs, err = harness.ExploreFaults(ec, f)
	case cfg.checkpointFile != "" || cfg.resumeFile != "":
		resume := loadCheckpoint(cfg.resumeFile)
		res, ck, err = harness.ExploreCheckpoint(ec, resume)
		if resume != nil && (errors.Is(err, rmr.ErrCheckpointConfig) || errors.Is(err, rmr.ErrCheckpointVersion)) {
			// Cache restores are best-effort: a stale artifact (changed
			// flags, changed format) starts a fresh exploration instead of
			// failing the job.
			fmt.Fprintf(os.Stderr, "locktest: resume: %v; starting fresh\n", err)
			res, ck, err = harness.ExploreCheckpoint(ec, nil)
		}
	default:
		res, err = harness.Explore(ec)
	}
	elapsed := time.Since(start)
	if stopProgress != nil {
		stopProgress()
	}
	// ErrFaultExplore's promoted Unwrap skips the embedded ErrExplore, so it
	// must be matched before the plain-violation case.
	var fe *rmr.ErrFaultExplore
	if errors.As(err, &fe) {
		dumpFaultViolation(cfg, fe)
		return err
	}
	var ee *rmr.ErrExplore
	if errors.As(err, &ee) {
		dumpViolation(cfg, ee)
		return err
	}
	if err != nil {
		return err
	}
	fmt.Printf("  %d schedules explored, %d pruned, %d cut as equivalent, exhausted=%v\n",
		res.Explored, res.Pruned, res.Equivalent, res.Exhausted)
	if res.VisitedHits > 0 || res.SymmetryCuts > 0 || cfg.visited || cfg.symmetry {
		fmt.Printf("  cut breakdown: %d visited-state hits, %d symmetry cuts\n",
			res.VisitedHits, res.SymmetryCuts)
	}
	if res.VisitedSaturated {
		fmt.Println("  visited set saturated: caching degraded to pass-through past the capacity limit")
	}
	if ck != nil {
		if err := writeCheckpoint(cfg.checkpointFile, ck); err != nil {
			return err
		}
	}
	if faulted {
		fmt.Printf("  %d fault plans swept (fault-free baseline first)\n", len(runs))
	}
	if secs := elapsed.Seconds(); secs > 0 {
		fmt.Printf("  throughput: %.0f replays/s over %v\n",
			float64(res.Replays())/secs, elapsed.Round(time.Millisecond))
	}
	printDepths(res.Depths)
	if faulted {
		fmt.Println("  mutual exclusion and survivor completion held in every explored schedule of every plan")
	} else {
		fmt.Println("  mutual exclusion and non-aborter completion held in every explored schedule")
	}
	return nil
}

// dumpFaultViolation replays a violation found under an injected fault plan:
// the plan is reinstalled, the lexmin schedule is driven step for step, and
// the resulting fault attribution is printed alongside the schedule.
func dumpFaultViolation(cfg exhaustiveConfig, fe *rmr.ErrFaultExplore) {
	fmt.Fprintf(os.Stderr, "locktest: property violation under fault plan [%v] on schedule %v\n",
		fe.Plan, fe.Schedule)
	nprocs := cfg.n
	if cfg.aborters > 0 {
		nprocs++
	}
	s := rmr.NewScheduler(nprocs, rmr.ReplayPick(fe.Schedule))
	s.SetFaultPlan(fe.Plan)
	if cfg.watchdog > 0 {
		s.SetWatchdog(cfg.watchdog)
	}
	s.RecordSchedule(true)
	replayErr := harness.FaultBody(cfg.model, cfg.algo, cfg.w, cfg.n, cfg.aborters)(s, cfg.maxSteps)
	if replayErr == nil {
		fmt.Fprintln(os.Stderr, "locktest: replay did not reproduce the violation (nondeterministic body?)")
		return
	}
	harness.WriteFaultReport(os.Stderr, s.Faults(), fe.Schedule)
	fmt.Fprintf(os.Stderr, "locktest: replayed violation: %v\n", replayErr)
}

// loadCheckpoint reads a resume artifact. Cache restores in CI are
// best-effort — a missing or corrupt artifact warns and starts fresh
// rather than failing the job.
func loadCheckpoint(file string) *rmr.Checkpoint {
	if file == "" {
		return nil
	}
	data, err := os.ReadFile(file)
	if err != nil {
		fmt.Fprintf(os.Stderr, "locktest: resume: %v; starting fresh\n", err)
		return nil
	}
	ck, err := rmr.DecodeCheckpoint(data)
	if err != nil {
		fmt.Fprintf(os.Stderr, "locktest: resume: %v; starting fresh\n", err)
		return nil
	}
	fmt.Printf("  resuming from %s: %d prior replays, %d pending subtrees, complete=%v\n",
		file, ck.Partial.Replays(), len(ck.Frontier), ck.Complete)
	return ck
}

// writeCheckpoint reports the post-run frontier state and serializes it to
// file; an empty name (resume-only run) just reports.
func writeCheckpoint(file string, ck *rmr.Checkpoint) error {
	if ck.Complete {
		fmt.Println("  exploration complete: checkpoint closed (no pending frontier)")
	} else {
		fmt.Printf("  checkpoint: %d pending subtrees after the replay cap\n", len(ck.Frontier))
	}
	if file == "" {
		return nil
	}
	data, err := ck.Encode()
	if err != nil {
		return err
	}
	if err := os.WriteFile(file, data, 0o644); err != nil {
		return fmt.Errorf("write checkpoint: %w", err)
	}
	fmt.Printf("  checkpoint written to %s\n", file)
	return nil
}

// startProgress prints live explored/pruned counters and throughput to
// stderr twice a second until the returned stop function is called.
func startProgress(mon *rmr.Monitor) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(500 * time.Millisecond)
		defer t.Stop()
		start := time.Now()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				explored, pruned, equivalent := mon.Counts()
				visited, symmetry := mon.CutCounts()
				secs := time.Since(start).Seconds()
				total := explored + pruned + equivalent + visited + symmetry
				fmt.Fprintf(os.Stderr, "\rexplored %d, pruned %d, equivalent %d, visited %d, symmetry %d (%.0f replays/s)   ",
					explored, pruned, equivalent, visited, symmetry, float64(total)/secs)
			}
		}
	}()
	return func() {
		close(done)
		<-finished
		fmt.Fprint(os.Stderr, "\r\033[K")
	}
}

// printDepths renders the explored-schedule depth histogram, coalescing
// empty leading buckets.
func printDepths(depths []int64) {
	var max int64
	for _, c := range depths {
		if c > max {
			max = c
		}
	}
	if max == 0 {
		return
	}
	fmt.Println("  schedule depth histogram (choice-sequence length → count):")
	for d, c := range depths {
		if c == 0 {
			continue
		}
		bar := int(c * 40 / max)
		fmt.Printf("    %3d %8d %s\n", d, c, bars(bar))
	}
}

func bars(n int) string {
	const full = "████████████████████████████████████████"
	if n < 1 {
		return "▏"
	}
	return full[:3*n] // runes are 3 bytes each
}

// dumpViolation replays the violating schedule with a flight-recorder
// tracer and prints the last events leading up to the violation.
func dumpViolation(cfg exhaustiveConfig, ee *rmr.ErrExplore) {
	fmt.Fprintf(os.Stderr, "locktest: property violation on schedule %v\n", ee.Schedule)
	ring, replayErr := harness.ReplayTraced(cfg.model, cfg.algo, cfg.w, cfg.n, cfg.aborters,
		ee.Schedule, cfg.maxSteps, cfg.ringSize)
	if replayErr == nil {
		fmt.Fprintln(os.Stderr, "locktest: replay did not reproduce the violation (nondeterministic body?)")
		return
	}
	events := ring.Events()
	fmt.Fprintf(os.Stderr, "locktest: flight recorder — last %d of %d events before the violation:\n",
		len(events), ring.Total())
	for _, ev := range events {
		fmt.Fprintf(os.Stderr, "  %s\n", ev)
	}
	fmt.Fprintf(os.Stderr, "locktest: replayed violation: %v\n", replayErr)
}
