package main

import (
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"testing"

	"sublock/internal/harness"
	"sublock/locks"
	"sublock/rmr"
)

func TestRunDefaults(t *testing.T) {
	if err := run([]string{"-seeds", "5", "-n", "8"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithAborters(t *testing.T) {
	if err := run([]string{"-algo", "paper", "-n", "8", "-seeds", "5", "-aborters", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunDSM(t *testing.T) {
	if err := run([]string{"-algo", "paper", "-n", "6", "-seeds", "5", "-model", "dsm"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunLongLived(t *testing.T) {
	if err := run([]string{"-algo", "paper-longlived-bounded", "-n", "6", "-seeds", "3"}); err != nil {
		t.Fatal(err)
	}
}

// TestRunRejectsUnknownLock: -lock bogus must fail (the CLI exits non-zero
// on any run error) with the registry's sorted name list in the message —
// never a nil-factory panic.
func TestRunRejectsUnknownLock(t *testing.T) {
	err := run([]string{"-lock", "bogus"})
	if err == nil {
		t.Fatal("unknown lock accepted")
	}
	var eu *locks.ErrUnknown
	if !errors.As(err, &eu) {
		t.Fatalf("err = %T (%v), want *locks.ErrUnknown", err, err)
	}
	if !sort.StringsAreSorted(eu.Registered) {
		t.Errorf("registered list not sorted: %v", eu.Registered)
	}
	for _, name := range locks.Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list registered lock %q", err, name)
		}
	}
}

func TestRunLockFlag(t *testing.T) {
	if err := run([]string{"-lock", "scott", "-n", "6", "-seeds", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunListLocks(t *testing.T) {
	if err := run([]string{"-list-locks"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsDSMForCCOnlyLock(t *testing.T) {
	err := run([]string{"-lock", "paper-longlived", "-model", "dsm", "-n", "4", "-seeds", "1"})
	if err == nil || !strings.Contains(err.Error(), "CC memory model") {
		t.Fatalf("err = %v, want CC-only error", err)
	}
}

func TestRunRejectsBadModel(t *testing.T) {
	if err := run([]string{"-model", "numa"}); err == nil {
		t.Fatal("bad model accepted")
	}
}

func TestRunRejectsTooManyAborters(t *testing.T) {
	err := run([]string{"-n", "4", "-aborters", "4"})
	if err == nil || !strings.Contains(err.Error(), "aborters") {
		t.Fatalf("err = %v, want aborters error", err)
	}
}

func TestRunRejectsAbortingMCS(t *testing.T) {
	err := run([]string{"-algo", "mcs", "-aborters", "1", "-n", "4"})
	if err == nil || !strings.Contains(err.Error(), "not abortable") {
		t.Fatalf("err = %v, want not-abortable error", err)
	}
}

func TestExploreDetectsStall(t *testing.T) {
	// A tiny step budget must surface as a stall error, not a hang.
	var current atomic.Pointer[rmr.Scheduler]
	_, _, _, err := explore(rmr.CC, harness.AlgoPaper, nil, 4, 8, 0, 1, 3, &current)
	if err == nil || !strings.Contains(err.Error(), "stalled") {
		t.Fatalf("err = %v, want stall error", err)
	}
	if current.Load() == nil {
		t.Error("in-flight scheduler not published for the deadline dump")
	}
}

// TestRunSeededFaults: a scripted crash plan over the seeded schedules
// completes with the fault attributed on every seed.
func TestRunSeededFaults(t *testing.T) {
	out, err := captureRun(t, []string{"-lock", "tas", "-n", "4", "-seeds", "5", "-faults", "crash:0@2"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "under faults: OK") || !strings.Contains(out, "faults fired: 5") {
		t.Errorf("fault summary missing:\n%s", out)
	}
}

// TestRunSeededWatchdog: a generous watchdog bound stays silent over the
// seeded schedules.
func TestRunSeededWatchdog(t *testing.T) {
	if err := run([]string{"-lock", "tas", "-n", "3", "-seeds", "5", "-watchdog", "8"}); err != nil {
		t.Fatal(err)
	}
}

// TestRunSeededWatchdogTrips: TAS is unfair, so a bound of 1 overtake at
// n=3 must trip on some seed and exit with a starvation error.
func TestRunSeededWatchdogTrips(t *testing.T) {
	err := run([]string{"-lock", "tas", "-n", "3", "-seeds", "10", "-maxsteps", "1000", "-watchdog", "1"})
	if !errors.Is(err, rmr.ErrStarvation) {
		t.Fatalf("err = %v, want a starvation violation", err)
	}
}

func TestRunExhaustiveCrashPoints(t *testing.T) {
	out, err := captureRun(t, []string{"-exhaustive", "-lock", "tas", "-n", "2",
		"-exhauststeps", "16", "-exhaustcap", "5000", "-crash-points", "1,2"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "fault plans swept") {
		t.Errorf("fault sweep summary missing:\n%s", out)
	}
}

func TestRunRejectsFaultsWithExhaustive(t *testing.T) {
	if err := run([]string{"-exhaustive", "-faults", "crash:0@1"}); err == nil {
		t.Fatal("-faults with -exhaustive accepted")
	}
}

func TestRunRejectsCrashPointsWithoutExhaustive(t *testing.T) {
	if err := run([]string{"-crash-points", "1,2"}); err == nil {
		t.Fatal("-crash-points without -exhaustive accepted")
	}
}

func TestRunRejectsMalformedFaults(t *testing.T) {
	if err := run([]string{"-faults", "explode:0@1"}); err == nil {
		t.Fatal("malformed -faults accepted")
	}
}

func TestRunExhaustive(t *testing.T) {
	if err := run([]string{"-exhaustive", "-n", "2", "-exhauststeps", "18", "-exhaustcap", "30000"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunExhaustiveWithAborter(t *testing.T) {
	if err := run([]string{"-exhaustive", "-n", "2", "-aborters", "1", "-exhauststeps", "18", "-exhaustcap", "20000"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunExhaustiveParallel(t *testing.T) {
	if err := run([]string{"-exhaustive", "-n", "2", "-exhauststeps", "18", "-exhaustcap", "30000", "-workers", "4"}); err != nil {
		t.Fatal(err)
	}
}

// captureRun runs the CLI with stdout redirected to a pipe and returns
// what it printed, so tests can assert on the run header.
func captureRun(t *testing.T, args []string) (string, error) {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = old }()
	runErr := run(args)
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out), runErr
}

// TestRunCostSummary: -cost prices the seeded runs and reports the accrued
// simulated time without changing the verdict.
func TestRunCostSummary(t *testing.T) {
	out, err := captureRun(t, []string{"-lock", "paper", "-n", "4", "-seeds", "3",
		"-cost", "ccnuma", "-cost-seed", "7"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "simulated time (cost=ccnuma, cost-seed=7)") {
		t.Errorf("simulated-time summary missing:\n%s", out)
	}
	if !strings.Contains(out, "mutual exclusion held") {
		t.Errorf("verdict missing:\n%s", out)
	}
}

// TestRunCostUnitSilent: the unit model is the default accounting — no
// extra summary line.
func TestRunCostUnitSilent(t *testing.T) {
	out, err := captureRun(t, []string{"-lock", "tas", "-n", "4", "-seeds", "2", "-cost", "unit"})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "simulated time") {
		t.Errorf("unit cost printed a simulated-time summary:\n%s", out)
	}
}

// TestRunCostRejectsOtherModes: -cost is a seeded-mode feature.
func TestRunCostRejectsOtherModes(t *testing.T) {
	for _, args := range [][]string{
		{"-cost", "ccnuma", "-exhaustive", "-n", "2"},
		{"-cost", "ccnuma", "-faults", "crash:0@2", "-n", "4"},
		{"-cost", "ccnuma", "-watchdog", "8", "-n", "4"},
	} {
		if err := run(args); err == nil || !strings.Contains(err.Error(), "-cost prices plain seeded runs") {
			t.Errorf("run(%v) err = %v, want seeded-mode error", args, err)
		}
	}
	if err := run([]string{"-cost", "bogus", "-n", "4"}); err == nil || !strings.Contains(err.Error(), "ccnuma") {
		t.Errorf("bogus cost err = %v, want error listing known models", err)
	}
}

func TestRunExhaustivePOR(t *testing.T) {
	out, err := captureRun(t, []string{"-exhaustive", "-n", "2", "-exhauststeps", "18", "-exhaustcap", "30000", "-por", "-workers", "2"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "reduction=sleep-sets") {
		t.Errorf("header does not report the reduction:\n%s", out)
	}
	if !strings.Contains(out, "cut as equivalent") {
		t.Errorf("summary does not report equivalent cuts:\n%s", out)
	}
}

// TestRunExhaustiveWorkersDefault: -workers defaults to 0, which the run
// header must report resolved to GOMAXPROCS, never as workers=0.
func TestRunExhaustiveWorkersDefault(t *testing.T) {
	out, err := captureRun(t, []string{"-exhaustive", "-n", "2", "-exhauststeps", "16", "-exhaustcap", "10000"})
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf("workers=%d,", runtime.GOMAXPROCS(0))
	if !strings.Contains(out, want) {
		t.Errorf("header does not resolve default workers to %q:\n%s", want, out)
	}
	if strings.Contains(out, "workers=0") {
		t.Errorf("header reports unresolved workers=0:\n%s", out)
	}
}

func TestRunExhaustiveProgress(t *testing.T) {
	if err := run([]string{"-exhaustive", "-n", "2", "-exhauststeps", "16", "-progress"}); err != nil {
		t.Fatal(err)
	}
}

func TestBars(t *testing.T) {
	if got := bars(0); got != "▏" {
		t.Errorf("bars(0) = %q", got)
	}
	if got := bars(40); got != strings.Repeat("█", 40) {
		t.Errorf("bars(40) = %q", got)
	}
}
