// Command rmrtrace records and exports a shared-memory execution trace of a
// lock algorithm under a seeded deterministic schedule: every read, write,
// CAS, F&A and SWAP in linearization order, annotated with the RMR charge,
// the issuing process's passage phase, and the address's region label.
//
// Three output formats are supported. The default text format prints the
// events, validates the trace's per-word value chains (rmr.CheckTrace), and
// ends with the per-process RMR summary and the phase/label counter report.
// -format=jsonl emits one JSON object per event for offline analysis, and
// -format=chrome emits a Chrome trace-event file that loads into
// https://ui.perfetto.dev or chrome://tracing, with one track per process
// showing passage phases as spans and memory operations nested inside them.
//
// -ring N keeps only the last N events (a flight recorder), which bounds
// memory for long schedules at the price of the value-chain check.
//
// -cost NAME prices the run under a deterministic latency model (-cost-seed
// seeds it; see rmr.CostModelNames). Pricing is observe-only — the schedule
// and the RMR charges are unchanged — but every event then carries its
// simulated cost and timestamp: the Chrome trace's spans get real simulated
// durations instead of one tick per charged op, the text report adds
// per-process simulated time, and the summary's latency quantiles are in
// model nanoseconds.
//
// -faults injects a scripted fault plan ("crash:0@4,stall:1@2+15", see
// docs/FAULTS.md) into the schedule: the trace then shows exactly which
// operations a crash abandoned or a stall delayed, and the text report
// ends with the attributed fault log.
//
// Usage:
//
//	rmrtrace [-lock paper] [-n 4] [-w 8] [-seed 1] [-aborters 0] [-max 200]
//	         [-format text|jsonl|chrome] [-o file] [-ring N] [-faults spec]
//	         [-cost model] [-cost-seed S]
//
// The lock is any name in the locks registry (-list-locks enumerates them;
// -algo is a deprecated alias for -lock).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sync"
	"sync/atomic"

	"sublock/internal/harness"
	"sublock/locks"
	"sublock/rmr"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rmrtrace:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rmrtrace", flag.ContinueOnError)
	var lock string
	fs.StringVar(&lock, "lock", "paper", "lock to trace: any registered name (see -list-locks)")
	fs.StringVar(&lock, "algo", "paper", "deprecated alias for -lock")
	listLocks := fs.Bool("list-locks", false, "list the registered locks and exit")
	n := fs.Int("n", 4, "number of processes")
	w := fs.Int("w", 8, "tree arity for the paper's algorithms")
	seed := fs.Int64("seed", 1, "schedule seed")
	aborters := fs.Int("aborters", 0, "processes signalled to abort before starting")
	maxPrint := fs.Int("max", 200, "maximum events to print (the summary always covers all)")
	format := fs.String("format", "text", "output format: text, jsonl, or chrome")
	outFile := fs.String("o", "", "write output to `file` instead of stdout")
	ringSize := fs.Int("ring", 0, "keep only the last N events (0 = keep all)")
	faultsSpec := fs.String("faults", "", "inject scripted faults: `kind:pid@op[+delay],...` (crash, stall)")
	costName := fs.String("cost", "", "price the run under this cost `model` (see rmr.CostModelNames); events then carry simulated time")
	costSeed := fs.Int64("cost-seed", 1, "seed for the deterministic cost model")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cost, err := rmr.NewCostModel(*costName, *costSeed)
	if err != nil {
		return err
	}
	plan, err := harness.ParseFaults(*faultsSpec)
	if err != nil {
		return err
	}
	if *listLocks {
		for _, info := range locks.Infos() {
			fmt.Fprintf(out, "  %-24s %s\n", info.Name, info.Summary)
		}
		return nil
	}
	info, ok := locks.Lookup(lock)
	if !ok {
		return &locks.ErrUnknown{Name: lock, Registered: locks.Names()}
	}
	if *aborters >= *n {
		return fmt.Errorf("aborters (%d) must be < n (%d)", *aborters, *n)
	}
	if *aborters > 0 && !info.Abortable {
		return fmt.Errorf("%s is not abortable", lock)
	}
	switch *format {
	case "text", "jsonl", "chrome":
	default:
		return fmt.Errorf("unknown format %q (want text, jsonl, or chrome)", *format)
	}
	if *outFile != "" {
		f, err := os.Create(*outFile)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}

	s := rmr.NewScheduler(*n, rmr.RandomPick(*seed))
	if plan != nil {
		s.SetFaultPlan(plan)
		s.RecordSchedule(true)
	}
	m := rmr.NewMemory(rmr.CC, *n, nil)
	// -ring bounds memory with a flight recorder; otherwise keep the whole
	// trace so the value-chain check can run.
	var ring *rmr.Ring
	var all []rmr.Event
	var mu sync.Mutex
	if *ringSize > 0 {
		ring = rmr.NewRing(*ringSize)
		m.SetTracer(ring.Record)
	} else {
		m.SetTracer(func(ev rmr.Event) {
			mu.Lock()
			all = append(all, ev)
			mu.Unlock()
		})
	}
	fn, err := harness.Build(m, harness.Algo(lock), *w, *n)
	if err != nil {
		return err
	}
	// The cost model is installed after Build so construction ops stay
	// unpriced, matching the harness and the benchmark matrix; Unit is the
	// default accounting and needs no install.
	if cost != rmr.Unit {
		m.SetCostModel(cost)
	}
	// The stats matrix is sized to the labels the lock interned during
	// construction, so it is built after Build.
	st := rmr.NewStats(m)
	m.SetStats(st)
	// Snapshot initial values of everything allocated during construction
	// so CheckTrace can bind the first event of every address.
	inits := make(map[rmr.Addr]uint64, m.Size())
	for a := 0; a < m.Size(); a++ {
		inits[rmr.Addr(a)] = m.Peek(rmr.Addr(a))
	}
	m.SetGate(s)

	violations, err := drive(s, m, fn, *n, *aborters, plan != nil)
	if err != nil {
		return err
	}
	if violations != 0 {
		return fmt.Errorf("mutual exclusion violated")
	}

	events, truncated := all, false
	if ring != nil {
		events = ring.Events()
		truncated = ring.Total() > int64(len(events))
	}
	switch *format {
	case "jsonl":
		return rmr.WriteJSONL(out, events, m.Labels())
	case "chrome":
		return rmr.WriteChromeTrace(out, events, m.Labels())
	}
	return report(out, m, st, events, inits, reportConfig{
		algo: lock, n: *n, seed: *seed, aborters: *aborters,
		maxPrint: *maxPrint, truncated: truncated, faults: s.Faults(),
		priced: cost != rmr.Unit, costSeed: *costSeed,
	})
}

// drive runs one passage per process under the schedule and reports the
// number of mutual-exclusion violations observed. A stalled run is killed
// (an injected crash can wedge survivors beyond cooperation) before the
// error — with the attributed fault report when faults were scripted — is
// returned, so the CLI exits instead of leaking parked processes.
func drive(s *rmr.Scheduler, m *rmr.Memory, fn harness.HandleFn, n, aborters int, faulted bool) (int, error) {
	var violations, inCS atomic.Int32
	for i := 0; i < n; i++ {
		p := m.Proc(i)
		if i < aborters {
			p.SignalAbort()
		}
		h := fn(p)
		s.Go(func() {
			if h.Enter() {
				if inCS.Add(1) > 1 {
					violations.Add(1)
				}
				inCS.Add(-1)
				h.Exit()
			}
		})
	}
	if err := s.Run(100_000_000); err != nil {
		s.DrainKill()
		if faulted {
			harness.WriteFaultReport(os.Stderr, s.Faults(), s.Schedule())
		}
		return 0, fmt.Errorf("schedule stalled: %w", err)
	}
	return int(violations.Load()), nil
}

type reportConfig struct {
	algo      string
	n         int
	seed      int64
	aborters  int
	maxPrint  int
	truncated bool
	faults    []rmr.Fault
	priced    bool
	costSeed  int64
}

func report(out io.Writer, m *rmr.Memory, st *rmr.Stats, events []rmr.Event, inits map[rmr.Addr]uint64, cfg reportConfig) error {
	fmt.Fprintf(out, "%s, N=%d, seed=%d, aborters=%d: %d events\n\n",
		cfg.algo, cfg.n, cfg.seed, cfg.aborters, len(events))
	for i, ev := range events {
		if cfg.maxPrint >= 0 && i >= cfg.maxPrint {
			fmt.Fprintf(out, "  … %d more events (raise -max)\n", len(events)-i)
			break
		}
		fmt.Fprintf(out, "  %s\n", ev)
	}

	if cfg.truncated {
		fmt.Fprintf(out, "\ntrace consistency: skipped (ring dropped early events)\n")
	} else {
		if err := rmr.CheckTrace(events, inits); err != nil {
			return fmt.Errorf("trace inconsistent: %w", err)
		}
		fmt.Fprintf(out, "\ntrace consistency: OK (per-word value chains verified)\n")
	}
	fmt.Fprintf(out, "per-process RMRs (* = charged events):\n")
	for i := 0; i < cfg.n; i++ {
		var reads, updates int64
		for _, ev := range events {
			if ev.Proc == i && ev.RMR {
				if ev.Op == rmr.OpRead {
					reads++
				} else {
					updates++
				}
			}
		}
		fmt.Fprintf(out, "  p%-2d total=%-4d reads=%-4d updates=%d",
			i, m.Proc(i).RMRs(), reads, updates)
		if cfg.priced {
			fmt.Fprintf(out, " sim=%dns", m.Proc(i).SimTime())
		}
		fmt.Fprintf(out, "\n")
	}
	if cfg.priced {
		fmt.Fprintf(out, "  (simulated time priced by cost=%s, cost-seed=%d; observe-only)\n",
			m.CostModel().Name(), cfg.costSeed)
	}
	if len(cfg.faults) > 0 {
		fmt.Fprintf(out, "\ninjected faults:\n")
		for _, flt := range cfg.faults {
			fmt.Fprintf(out, "  %v\n", flt)
		}
	}
	fmt.Fprintf(out, "\n")
	return st.Snapshot().WriteText(out)
}
