// Command rmrtrace records and prints a shared-memory execution trace of a
// lock algorithm under a seeded deterministic schedule: every read, write,
// CAS, F&A and SWAP in linearization order, annotated with the RMR charge.
// It also validates the trace's per-word value chains (rmr.CheckTrace) and
// prints a per-process RMR summary — a debugging lens into exactly where
// an algorithm's remote references go.
//
// Usage:
//
//	rmrtrace [-algo paper] [-n 4] [-w 8] [-seed 1] [-aborters 0] [-max 200]
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"

	"sublock/internal/harness"
	"sublock/rmr"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rmrtrace:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("rmrtrace", flag.ContinueOnError)
	algo := fs.String("algo", "paper", "algorithm (see locktest -h for the list)")
	n := fs.Int("n", 4, "number of processes")
	w := fs.Int("w", 8, "tree arity for the paper's algorithms")
	seed := fs.Int64("seed", 1, "schedule seed")
	aborters := fs.Int("aborters", 0, "processes signalled to abort before starting")
	maxPrint := fs.Int("max", 200, "maximum events to print (the summary always covers all)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *aborters >= *n {
		return fmt.Errorf("aborters (%d) must be < n (%d)", *aborters, *n)
	}
	if *aborters > 0 && !harness.Algo(*algo).Abortable() {
		return fmt.Errorf("%s is not abortable", *algo)
	}

	s := rmr.NewScheduler(*n, rmr.RandomPick(*seed))
	m := rmr.NewMemory(rmr.CC, *n, nil)
	var mu sync.Mutex
	var events []rmr.Event
	m.SetTracer(func(ev rmr.Event) {
		mu.Lock()
		defer mu.Unlock()
		events = append(events, ev)
	})
	fn, err := harness.Build(m, harness.Algo(*algo), *w, *n)
	if err != nil {
		return err
	}
	// Snapshot initial values of everything allocated during construction
	// so CheckTrace can bind the first event of every address.
	inits := make(map[rmr.Addr]uint64, m.Size())
	for a := 0; a < m.Size(); a++ {
		inits[rmr.Addr(a)] = m.Peek(rmr.Addr(a))
	}
	m.SetGate(s)

	var violations atomic.Int32
	var inCS atomic.Int32
	for i := 0; i < *n; i++ {
		p := m.Proc(i)
		if i < *aborters {
			p.SignalAbort()
		}
		h := fn(p)
		s.Go(func() {
			if h.Enter() {
				if inCS.Add(1) > 1 {
					violations.Add(1)
				}
				inCS.Add(-1)
				h.Exit()
			}
		})
	}
	if err := s.Run(100_000_000); err != nil {
		return fmt.Errorf("schedule stalled: %w", err)
	}
	if violations.Load() != 0 {
		return fmt.Errorf("mutual exclusion violated")
	}

	fmt.Fprintf(out, "%s, N=%d, seed=%d, aborters=%d: %d events\n\n",
		*algo, *n, *seed, *aborters, len(events))
	for i, ev := range events {
		if i >= *maxPrint {
			fmt.Fprintf(out, "  … %d more events (raise -max)\n", len(events)-i)
			break
		}
		charge := " "
		if ev.RMR {
			charge = "*"
		}
		status := ""
		if !ev.OK {
			status = " (failed)"
		}
		fmt.Fprintf(out, "  %s p%-2d %-5s @%-4d %d → %d%s\n",
			charge, ev.Proc, ev.Op, ev.Addr, ev.Old, ev.New, status)
	}

	if err := rmr.CheckTrace(events, inits); err != nil {
		return fmt.Errorf("trace inconsistent: %w", err)
	}
	fmt.Fprintf(out, "\ntrace consistency: OK (per-word value chains verified)\n")
	fmt.Fprintf(out, "per-process RMRs (* = charged events):\n")
	for i := 0; i < *n; i++ {
		var reads, updates int64
		for _, ev := range events {
			if ev.Proc == i && ev.RMR {
				if ev.Op == rmr.OpRead {
					reads++
				} else {
					updates++
				}
			}
		}
		fmt.Fprintf(out, "  p%-2d total=%-4d reads=%-4d updates=%d\n",
			i, m.Proc(i).RMRs(), reads, updates)
	}
	return nil
}
