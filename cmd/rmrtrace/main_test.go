package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"sublock/locks"
)

func TestRunTrace(t *testing.T) {
	if err := run([]string{"-n", "3", "-seed", "2", "-max", "10"}, os.Stdout); err != nil {
		t.Fatal(err)
	}
}

func TestRunTraceWithAborters(t *testing.T) {
	if err := run([]string{"-n", "4", "-aborters", "2", "-seed", "5"}, os.Stdout); err != nil {
		t.Fatal(err)
	}
}

func TestRunTraceAllAlgos(t *testing.T) {
	// Every registered lock must trace cleanly — the registry is the list.
	for _, name := range locks.Names() {
		if err := run([]string{"-lock", name, "-n", "3", "-max", "0"}, os.Stdout); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestRunTraceRejectsUnknownLock(t *testing.T) {
	err := run([]string{"-lock", "bogus"}, os.Stdout)
	if err == nil || !strings.Contains(err.Error(), "unknown lock") {
		t.Fatalf("err = %v, want unknown-lock error", err)
	}
}

func TestRunTraceListLocks(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-list-locks"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, name := range locks.Names() {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("-list-locks output missing %q", name)
		}
	}
}

// TestRunTraceFaults: a scripted stall traces cleanly and the text report
// attributes the injected fault.
func TestRunTraceFaults(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-lock", "tas", "-n", "3", "-seed", "1", "-max", "0",
		"-faults", "stall:1@2+20"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "injected faults:") || !strings.Contains(out, "stall") {
		t.Errorf("text output missing the fault attribution:\n%s", out)
	}
}

func TestRunTraceFaultCrash(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-lock", "tas", "-n", "3", "-seed", "1", "-max", "0",
		"-faults", "crash:2@1"}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "crash") {
		t.Errorf("text output missing the crash attribution:\n%s", buf.String())
	}
}

func TestRunTraceRejectsBadArgs(t *testing.T) {
	if err := run([]string{"-n", "2", "-aborters", "2"}, os.Stdout); err == nil {
		t.Fatal("too many aborters accepted")
	}
	if err := run([]string{"-algo", "mcs", "-aborters", "1", "-n", "3"}, os.Stdout); err == nil {
		t.Fatal("aborting MCS accepted")
	}
	if err := run([]string{"-format", "xml"}, os.Stdout); err == nil {
		t.Fatal("unknown format accepted")
	}
	if err := run([]string{"-faults", "explode:0@1"}, os.Stdout); err == nil {
		t.Fatal("malformed -faults accepted")
	}
}

func TestRunTraceTextReportsStats(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "3", "-seed", "3", "-max", "5"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"trace consistency: OK",
		"rmr stats:",
		"per-phase RMRs",
		"oneshot/head", // the paper lock's labeled regions show up
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q", want)
		}
	}
}

// TestRunTraceCost: -cost prices the run — the text report gains the
// per-process simulated time and the pricing footer, the verdict and the
// value-chain check are unchanged, and a bad model name is rejected.
func TestRunTraceCost(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "3", "-seed", "3", "-max", "5",
		"-cost", "ccnuma", "-cost-seed", "7"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"trace consistency: OK",
		"sim=",
		"priced by cost=ccnuma, cost-seed=7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("priced text output missing %q", want)
		}
	}
	buf.Reset()
	if err := run([]string{"-n", "3", "-cost", "unit"}, &buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "priced by cost=") {
		t.Error("unit cost printed a pricing footer")
	}
	if err := run([]string{"-n", "3", "-cost", "bogus"}, &buf); err == nil ||
		!strings.Contains(err.Error(), "ccnuma") {
		t.Errorf("bogus cost err = %v, want error listing known models", err)
	}
}

// TestRunTraceChromeCostDurations: with a cost model the Chrome trace's
// operation spans carry the model's simulated durations, not one tick each.
func TestRunTraceChromeCostDurations(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "3", "-seed", "2", "-format", "chrome",
		"-cost", "dsmremote"}, &buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Ph  string `json:"ph"`
			Dur *int64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v", err)
	}
	var wide bool
	for _, ev := range trace.TraceEvents {
		if ev.Ph == "X" && ev.Dur != nil && *ev.Dur > 1 {
			wide = true
		}
	}
	if !wide {
		t.Error("no span carries a simulated duration > 1 tick under dsmremote pricing")
	}
}

// TestRunTraceChromeFormat: -format=chrome must emit valid Chrome
// trace-event JSON with phase spans, operation spans, and thread names.
func TestRunTraceChromeFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "3", "-seed", "2", "-format", "chrome"}, &buf); err != nil {
		t.Fatal(err)
	}
	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			TS   *int64 `json:"ts"`
			PID  int    `json:"pid"`
			TID  int    `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &trace); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("no trace events emitted")
	}
	var spans, meta int
	for _, ev := range trace.TraceEvents {
		switch ev.Ph {
		case "X":
			spans++
			if ev.TS == nil {
				t.Fatalf("complete event %q missing ts", ev.Name)
			}
		case "M":
			meta++
		default:
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
	}
	if spans == 0 {
		t.Error("no complete (X) events")
	}
	if meta == 0 {
		t.Error("no thread-name metadata events")
	}
}

// TestRunTraceJSONLFormat: every line must parse as a JSON object with the
// event schema's core fields.
func TestRunTraceJSONLFormat(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "3", "-seed", "2", "-format", "jsonl"}, &buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) == 0 {
		t.Fatal("no JSONL output")
	}
	sawPhase, sawLabel := false, false
	for i, line := range lines {
		var ev struct {
			T     int64  `json:"t"`
			Proc  *int   `json:"proc"`
			Op    string `json:"op"`
			Phase string `json:"phase"`
			Label string `json:"label"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d does not parse: %v\n%s", i+1, err, line)
		}
		if ev.Proc == nil || ev.Op == "" {
			t.Fatalf("line %d missing proc/op: %s", i+1, line)
		}
		if ev.Phase != "" {
			sawPhase = true
		}
		if ev.Label != "" {
			sawLabel = true
		}
	}
	if !sawPhase {
		t.Error("no event carried a phase")
	}
	if !sawLabel {
		t.Error("no event carried a label")
	}
}

// TestRunTraceRing: a bounded flight recorder truncates the trace and the
// report must say the value-chain check was skipped.
func TestRunTraceRing(t *testing.T) {
	var buf bytes.Buffer
	if err := run([]string{"-n", "4", "-seed", "1", "-ring", "8", "-max", "100"}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "trace consistency: skipped") {
		t.Errorf("ring-truncated run did not skip the consistency check:\n%s", out)
	}
}
