package main

import (
	"os"
	"testing"
)

func TestRunTrace(t *testing.T) {
	if err := run([]string{"-n", "3", "-seed", "2", "-max", "10"}, os.Stdout); err != nil {
		t.Fatal(err)
	}
}

func TestRunTraceWithAborters(t *testing.T) {
	if err := run([]string{"-n", "4", "-aborters", "2", "-seed", "5"}, os.Stdout); err != nil {
		t.Fatal(err)
	}
}

func TestRunTraceAllAlgos(t *testing.T) {
	for _, algo := range []string{"paper", "paper-plain", "paper-longlived", "scott", "tournament", "linearscan", "mcs", "tas"} {
		if err := run([]string{"-algo", algo, "-n", "3", "-max", "0"}, os.Stdout); err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
	}
}

func TestRunTraceRejectsBadArgs(t *testing.T) {
	if err := run([]string{"-n", "2", "-aborters", "2"}, os.Stdout); err == nil {
		t.Fatal("too many aborters accepted")
	}
	if err := run([]string{"-algo", "mcs", "-aborters", "1", "-n", "3"}, os.Stdout); err == nil {
		t.Fatal("aborting MCS accepted")
	}
}
