// Quickstart: the abortable lock as a drop-in mutex with an escape hatch.
//
// Eight goroutines increment a shared counter under the lock; one impatient
// goroutine gives up if it cannot acquire within a deadline.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	"sublock/abortable"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	lk := abortable.New(abortable.Config{MaxHandles: 16})

	// Plain mutual exclusion: Enter/Exit pairs, one handle per goroutine.
	const workers, increments = 8, 1000
	counter := 0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		h, err := lk.NewHandle()
		if err != nil {
			return err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < increments; i++ {
				if !h.Enter() {
					return // aborted (nobody aborts us in this demo)
				}
				counter++
				h.Exit()
			}
		}()
	}
	wg.Wait()
	fmt.Printf("counter = %d (want %d)\n", counter, workers*increments)

	// The escape hatch: a waiter that refuses to wait longer than 50µs.
	holder, err := lk.NewHandle()
	if err != nil {
		return err
	}
	impatient, err := lk.NewHandle()
	if err != nil {
		return err
	}
	if !holder.Enter() {
		return errors.New("holder failed to acquire")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Microsecond)
	defer cancel()
	switch err := impatient.EnterContext(ctx); {
	case errors.Is(err, context.DeadlineExceeded):
		fmt.Println("impatient waiter gave up cleanly (bounded abort)")
	case err == nil:
		return errors.New("impatient waiter acquired a held lock")
	default:
		return err
	}
	holder.Exit()

	// TryEnter: join the queue, abandon instantly unless already granted.
	if impatient.TryEnter() {
		fmt.Println("try-lock on the free lock: acquired")
		impatient.Exit()
	}
	return nil
}
