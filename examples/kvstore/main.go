// kvstore: a transactional in-memory key-value store whose row locks are
// abortable, demonstrating the classic database pattern the paper's §1
// cites — deadlock resolution by *wound-wait*. Older transactions wound
// (abort the lock acquisition of) younger lock holders' rivals: when an
// older transaction wants a row a younger one holds, the younger waiter is
// told to abort and restart, so waits-for cycles cannot form among equals
// and the oldest transaction always makes progress.
//
// With plain mutexes this policy is unimplementable at the lock layer —
// a waiter cannot be recalled. The abortable lock's Handle.Abort is
// exactly the recall mechanism.
//
//	go run ./examples/kvstore
//
// With -addr the row locks live in a lockd service: rows are leased as
// "row-<i>" over HTTP, and the wound is delivered by cancelling the
// victim's in-flight acquire context — the same recall, propagated through
// the service into the native lock's bounded abort.
//
//	go run ./cmd/lockd &
//	go run ./examples/kvstore -addr 127.0.0.1:7513
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sublock/abortable"
	"sublock/lockd/client"
)

const (
	rows        = 16
	transactors = 8
)

// txEach is per-transactor transaction count; remote mode trims it because
// every row lock is an HTTP round trip.
var txEach = 150

// row is one record guarded by an abortable lock.
type row struct {
	lock  *abortable.Lock
	value int64
}

// store is the table plus per-transactor lock handles.
type store struct {
	rows [rows]*row
}

// rowLocker is one transactor's view of the row locks: blocking enter,
// exit, and the wound-wait recall of an in-flight enter. Local mode recalls
// via Handle.Abort; remote mode cancels the acquire's context.
type rowLocker interface {
	enter(rowID int) bool // false when wounded (or otherwise aborted)
	exit(rowID int)
	wound(rowID int) // abort this transactor's in-flight enter of rowID
}

// localLocker drives the in-process abortable locks directly.
type localLocker struct {
	handles [rows]*abortable.Handle
}

func newLocalLocker(s *store) (*localLocker, error) {
	l := &localLocker{}
	for i := range s.rows {
		h, err := s.rows[i].lock.NewHandle()
		if err != nil {
			return nil, err
		}
		l.handles[i] = h
	}
	return l, nil
}

func (l *localLocker) enter(rowID int) bool { return l.handles[rowID].Enter() }
func (l *localLocker) exit(rowID int)       { l.handles[rowID].Exit() }
func (l *localLocker) wound(rowID int)      { l.handles[rowID].Abort() }

// remoteLocker leases rows from a lockd service. The wound cancels the
// in-flight acquire's context, which the service wires into the native
// lock's EnterContext — the recall arrives as a bounded abort server-side.
type remoteLocker struct {
	cl     *client.Client
	leases [rows]*client.Lease
	cancel [rows]atomic.Value // context.CancelFunc of the in-flight acquire
}

// MaxAttempts 1: a retried acquire whose first attempt's response was lost
// would double-grant and leave a ghost holder; wound-wait's restart loop is
// the retry policy here.
func newRemoteLocker(addr string) *remoteLocker {
	return &remoteLocker{cl: client.New(addr, client.Config{MaxAttempts: 1})}
}

func (l *remoteLocker) enter(rowID int) bool {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	l.cancel[rowID].Store(cancel)
	// A short TTL bounds the stall if a grant is orphaned by a wound that
	// lands in the response-write race window (the server rolls back the
	// common case itself; see lockd's handleAcquire).
	ls, err := l.cl.Acquire(ctx, fmt.Sprintf("row-%d", rowID), 5*time.Second, 30*time.Second)
	l.cancel[rowID].Store(context.CancelFunc(func() {}))
	if err != nil {
		return false // wounded (context cancelled) or service pushback
	}
	l.leases[rowID] = ls
	return true
}

func (l *remoteLocker) exit(rowID int) {
	if ls := l.leases[rowID]; ls != nil {
		l.leases[rowID] = nil
		switch err := l.cl.Release(context.Background(), ls); {
		case err == nil:
		case errors.Is(err, client.ErrStale), errors.Is(err, client.ErrExpired):
			// The lease lapsed while this txn queued behind a reclaim on a
			// later row. The ring transfer is delta-based, so the sum
			// invariant survives; a store with non-commutative writes would
			// have to fence on ls.Token instead of shrugging here.
			lapsedReleases.Add(1)
		default:
			log.Printf("release row-%d: %v", rowID, err)
		}
	}
}

// lapsedReleases counts remote releases rejected because the lease had
// already been reclaimed (reported once at exit, not per event).
var lapsedReleases atomic.Int64

func (l *remoteLocker) wound(rowID int) {
	if c, ok := l.cancel[rowID].Load().(context.CancelFunc); ok && c != nil {
		c()
	}
}

// txn is one transaction attempt: a timestamped participant with a row
// locker and a registry entry that lets older transactions wound it.
type txn struct {
	ts      int64 // birth timestamp: smaller = older = higher priority
	lk      rowLocker
	waiting atomic.Int64 // row the txn is currently waiting on, -1 = none
	holding atomic.Int64 // bitmask of rows currently held (single writer)
}

// registry lets a transaction find who is waiting where, to wound them.
type registry struct {
	mu   sync.Mutex
	txns map[*txn]bool
}

func (r *registry) add(t *txn) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.txns[t] = true
}

func (r *registry) remove(t *txn) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.txns, t)
}

// wound applies the wound-wait rule for one conflict: older waits on
// rowID, so every *younger* transaction holding rowID is wounded — its
// current lock acquisition (wherever it is waiting) is aborted, which
// makes its attempt fail, release everything it holds, and restart with a
// fresh (younger still) timestamp. An old transaction is never wounded,
// so the oldest always runs to commit: no waits-for cycle survives.
// It reports how many transactions were wounded.
func (r *registry) wound(older *txn, rowID int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	wounded := 0
	for t := range r.txns {
		if t.ts <= older.ts || t.holding.Load()&(1<<uint(rowID)) == 0 {
			continue
		}
		if w := t.waiting.Load(); w >= 0 {
			t.lk.wound(int(w))
			wounded++
		}
		// A younger holder that is not waiting is mid-computation and will
		// release on its own; it contributes no waits-for edge.
	}
	return wounded
}

func main() {
	addr := flag.String("addr", "", "lockd address (host:port); empty runs in-process")
	flag.Parse()
	if err := run(*addr); err != nil {
		log.Fatal(err)
	}
}

func run(addr string) error {
	s := &store{}
	for i := range s.rows {
		s.rows[i] = &row{lock: abortable.New(abortable.Config{MaxHandles: transactors})}
		s.rows[i].value = 100
	}
	// Remote mode: fewer transactions (each row lock is an HTTP round
	// trip) and a gentler wound sweep — at 100µs the cancel storm lands in
	// the grant/response race window constantly.
	sweepPeriod := 100 * time.Microsecond
	if addr != "" {
		txEach = 30
		sweepPeriod = 2 * time.Millisecond
	}
	reg := &registry{txns: map[*txn]bool{}}
	var stamp atomic.Int64
	var commits, wounds, restarts atomic.Int64

	var wg sync.WaitGroup
	for w := 0; w < transactors; w++ {
		rng := rand.New(rand.NewSource(int64(w) + 1))
		var lk rowLocker
		if addr == "" {
			var err error
			if lk, err = newLocalLocker(s); err != nil {
				return err
			}
		} else {
			lk = newRemoteLocker(addr)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < txEach; k++ {
				// Move a random amount around a random 2–3 row set,
				// locking rows in REQUEST order (deadlock-prone on
				// purpose; wound-wait resolves it).
				nset := 2 + rng.Intn(2)
				set := rng.Perm(rows)[:nset]
				amount := int64(rng.Intn(20))
				for {
					t := &txn{ts: stamp.Add(1), lk: lk}
					t.waiting.Store(-1)
					reg.add(t)
					if execute(s, t, set, amount) {
						commits.Add(1)
						reg.remove(t)
						break
					}
					reg.remove(t)
					restarts.Add(1)
					time.Sleep(time.Duration(rng.Intn(50)) * time.Microsecond)
				}
			}
		}()
	}
	go func() {
		// Periodic wounding sweep: for every transaction stuck waiting on a
		// row, wound the younger holders of that row. (A production engine
		// wounds at conflict discovery inside the lock manager; a sweep
		// keeps the example compact.)
		for {
			reg.mu.Lock()
			txns := make([]*txn, 0, len(reg.txns))
			for t := range reg.txns {
				txns = append(txns, t)
			}
			reg.mu.Unlock()
			if len(txns) == 0 && commits.Load() >= int64(transactors*txEach) {
				return
			}
			sort.Slice(txns, func(i, j int) bool { return txns[i].ts < txns[j].ts })
			for _, older := range txns {
				if rowID := older.waiting.Load(); rowID >= 0 {
					wounds.Add(int64(reg.wound(older, int(rowID))))
				}
			}
			time.Sleep(sweepPeriod)
		}
	}()
	wg.Wait()

	var total int64
	for _, r := range s.rows {
		total += r.value
	}
	fmt.Printf("committed %d transactions across %d transactors\n", commits.Load(), transactors)
	fmt.Printf("wound-wait interventions: %d sweeps wounded waiters; %d restarts\n", wounds.Load(), restarts.Load())
	if n := lapsedReleases.Load(); n > 0 {
		fmt.Printf("remote leases lapsed while queued (reclaimed before release): %d\n", n)
	}
	fmt.Printf("invariant: total balance %d (want %d): %v\n", total, int64(rows*100), total == rows*100)
	if total != rows*100 {
		return fmt.Errorf("conservation violated")
	}
	return nil
}

// execute runs one attempt of the transaction: lock the set in request
// order (announcing each wait so elders can wound us), apply the transfer,
// release everything. It reports false if any acquisition was aborted.
func execute(s *store, t *txn, set []int, amount int64) bool {
	locked := make([]int, 0, len(set))
	var held int64
	defer func() {
		for _, id := range locked {
			t.lk.exit(id)
		}
		t.holding.Store(0)
	}()
	for _, id := range set {
		t.waiting.Store(int64(id))
		ok := t.lk.enter(id)
		t.waiting.Store(-1)
		if !ok {
			return false // wounded: caller restarts with a fresh timestamp
		}
		locked = append(locked, id)
		held |= 1 << uint(id)
		t.holding.Store(held)
		// Row "processing" between acquisitions: yields widen the window
		// in which transactions genuinely conflict (without them a
		// single-CPU run serializes by accident and the demo shows no
		// deadlock pressure at all).
		for y := 0; y < 4; y++ {
			runtime.Gosched()
		}
	}
	// Ring transfer across the locked set keeps the global sum invariant.
	for i := range set {
		s.rows[set[i]].value -= amount
		s.rows[set[(i+1)%len(set)]].value += amount
	}
	return true
}
