// kvstore: a transactional in-memory key-value store whose row locks are
// abortable, demonstrating the classic database pattern the paper's §1
// cites — deadlock resolution by *wound-wait*. Older transactions wound
// (abort the lock acquisition of) younger lock holders' rivals: when an
// older transaction wants a row a younger one holds, the younger waiter is
// told to abort and restart, so waits-for cycles cannot form among equals
// and the oldest transaction always makes progress.
//
// With plain mutexes this policy is unimplementable at the lock layer —
// a waiter cannot be recalled. The abortable lock's Handle.Abort is
// exactly the recall mechanism.
//
//	go run ./examples/kvstore
package main

import (
	"fmt"
	"log"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sublock/abortable"
)

const (
	rows        = 16
	transactors = 8
	txEach      = 150
)

// row is one record guarded by an abortable lock.
type row struct {
	lock  *abortable.Lock
	value int64
}

// store is the table plus per-transactor lock handles.
type store struct {
	rows [rows]*row
}

// txn is one transaction attempt: a timestamped participant with a handle
// per row and a registry entry that lets older transactions wound it.
type txn struct {
	ts      int64 // birth timestamp: smaller = older = higher priority
	handles [rows]*abortable.Handle
	waiting atomic.Int64 // row the txn is currently waiting on, -1 = none
	holding atomic.Int64 // bitmask of rows currently held (single writer)
}

// registry lets a transaction find who is waiting where, to wound them.
type registry struct {
	mu   sync.Mutex
	txns map[*txn]bool
}

func (r *registry) add(t *txn) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.txns[t] = true
}

func (r *registry) remove(t *txn) {
	r.mu.Lock()
	defer r.mu.Unlock()
	delete(r.txns, t)
}

// wound applies the wound-wait rule for one conflict: older waits on
// rowID, so every *younger* transaction holding rowID is wounded — its
// current lock acquisition (wherever it is waiting) is aborted, which
// makes its attempt fail, release everything it holds, and restart with a
// fresh (younger still) timestamp. An old transaction is never wounded,
// so the oldest always runs to commit: no waits-for cycle survives.
// It reports how many transactions were wounded.
func (r *registry) wound(older *txn, rowID int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	wounded := 0
	for t := range r.txns {
		if t.ts <= older.ts || t.holding.Load()&(1<<uint(rowID)) == 0 {
			continue
		}
		if w := t.waiting.Load(); w >= 0 {
			t.handles[w].Abort()
			wounded++
		}
		// A younger holder that is not waiting is mid-computation and will
		// release on its own; it contributes no waits-for edge.
	}
	return wounded
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	s := &store{}
	for i := range s.rows {
		s.rows[i] = &row{lock: abortable.New(abortable.Config{MaxHandles: transactors})}
		s.rows[i].value = 100
	}
	reg := &registry{txns: map[*txn]bool{}}
	var stamp atomic.Int64
	var commits, wounds, restarts atomic.Int64

	var wg sync.WaitGroup
	for w := 0; w < transactors; w++ {
		rng := rand.New(rand.NewSource(int64(w) + 1))
		handles := [rows]*abortable.Handle{}
		for i := range s.rows {
			h, err := s.rows[i].lock.NewHandle()
			if err != nil {
				return err
			}
			handles[i] = h
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < txEach; k++ {
				// Move a random amount around a random 2–3 row set,
				// locking rows in REQUEST order (deadlock-prone on
				// purpose; wound-wait resolves it).
				nset := 2 + rng.Intn(2)
				set := rng.Perm(rows)[:nset]
				amount := int64(rng.Intn(20))
				for {
					t := &txn{ts: stamp.Add(1), handles: handles}
					t.waiting.Store(-1)
					reg.add(t)
					if execute(s, reg, t, set, amount) {
						commits.Add(1)
						reg.remove(t)
						break
					}
					reg.remove(t)
					restarts.Add(1)
					time.Sleep(time.Duration(rng.Intn(50)) * time.Microsecond)
				}
			}
		}()
	}
	go func() {
		// Periodic wounding sweep: for every transaction stuck waiting on a
		// row, wound the younger holders of that row. (A production engine
		// wounds at conflict discovery inside the lock manager; a sweep
		// keeps the example compact.)
		for {
			reg.mu.Lock()
			txns := make([]*txn, 0, len(reg.txns))
			for t := range reg.txns {
				txns = append(txns, t)
			}
			reg.mu.Unlock()
			if len(txns) == 0 && commits.Load() >= transactors*txEach {
				return
			}
			sort.Slice(txns, func(i, j int) bool { return txns[i].ts < txns[j].ts })
			for _, older := range txns {
				if rowID := older.waiting.Load(); rowID >= 0 {
					wounds.Add(int64(reg.wound(older, int(rowID))))
				}
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()
	wg.Wait()

	var total int64
	for _, r := range s.rows {
		total += r.value
	}
	fmt.Printf("committed %d transactions across %d transactors\n", commits.Load(), transactors)
	fmt.Printf("wound-wait interventions: %d sweeps wounded waiters; %d restarts\n", wounds.Load(), restarts.Load())
	fmt.Printf("invariant: total balance %d (want %d): %v\n", total, int64(rows*100), total == rows*100)
	if total != rows*100 {
		return fmt.Errorf("conservation violated")
	}
	return nil
}

// execute runs one attempt of the transaction: lock the set in request
// order (announcing each wait so elders can wound us), apply the transfer,
// release everything. It reports false if any acquisition was aborted.
func execute(s *store, reg *registry, t *txn, set []int, amount int64) bool {
	locked := make([]int, 0, len(set))
	var held int64
	defer func() {
		for _, id := range locked {
			t.handles[id].Exit()
		}
		t.holding.Store(0)
	}()
	for _, id := range set {
		t.waiting.Store(int64(id))
		ok := t.handles[id].Enter()
		t.waiting.Store(-1)
		if !ok {
			return false // wounded: caller restarts with a fresh timestamp
		}
		locked = append(locked, id)
		held |= 1 << uint(id)
		t.holding.Store(held)
		// Row "processing" between acquisitions: yields widen the window
		// in which transactions genuinely conflict (without them a
		// single-CPU run serializes by accident and the demo shows no
		// deadlock pressure at all).
		for y := 0; y < 4; y++ {
			runtime.Gosched()
		}
	}
	// Ring transfer across the locked set keeps the global sum invariant.
	for i := range set {
		s.rows[set[i]].value -= amount
		s.rows[set[(i+1)%len(set)]].value += amount
	}
	return true
}
