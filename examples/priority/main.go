// Priority handoff: §1 use case (3) — "low-priority processes can abort to
// expedite lock handoff to a high-priority process".
//
// Low-priority workers contend on a lock. When the high-priority task
// arrives it raises a flag; every waiting low-priority worker aborts its
// attempt (bounded abort), collapsing the queue in front of the
// high-priority task. The demo measures how many queued waiters the
// high-priority task had to wait for, with and without the abort protocol.
//
//	go run ./examples/priority
package main

import (
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"sublock/abortable"
)

const lowWorkers = 12

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	polite, err := scenario(true)
	if err != nil {
		return err
	}
	rude, err := scenario(false)
	if err != nil {
		return err
	}
	fmt.Printf("high-priority wait with    abort protocol: %8v\n", polite)
	fmt.Printf("high-priority wait without abort protocol: %8v\n", rude)
	if polite < rude {
		fmt.Println("aborting waiters expedited the high-priority handoff")
	} else {
		fmt.Println("(scheduling noise won this run — the protocol still bounds the queue ahead)")
	}
	return nil
}

// scenario runs low-priority churn, then times a high-priority acquisition.
// If yield is set, waiting low-priority workers abort when the
// high-priority flag goes up.
func scenario(yield bool) (time.Duration, error) {
	lk := abortable.New(abortable.Config{MaxHandles: lowWorkers + 1})
	var hiPending atomic.Bool
	stop := make(chan struct{})
	var wg sync.WaitGroup

	for w := 0; w < lowWorkers; w++ {
		h, err := lk.NewHandle()
		if err != nil {
			return 0, err
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if yield && hiPending.Load() {
					// Defer to the high-priority task: do not even queue.
					time.Sleep(10 * time.Microsecond)
					continue
				}
				if yield {
					// Queue, but bail out the moment priority is raised.
					go func() {
						for !hiPending.Load() {
							select {
							case <-stop:
								return
							default:
								time.Sleep(5 * time.Microsecond)
							}
						}
						h.Abort()
					}()
				}
				if h.Enter() {
					busyWork(2 * time.Microsecond)
					h.Exit()
				}
			}
		}()
	}

	// Let the low-priority churn build a queue, then arrive with priority.
	time.Sleep(2 * time.Millisecond)
	hi, err := lk.NewHandle()
	if err != nil {
		return 0, err
	}
	hiPending.Store(true)
	start := time.Now()
	if !hi.Enter() {
		return 0, fmt.Errorf("high-priority Enter failed")
	}
	elapsed := time.Since(start)
	hi.Exit()
	hiPending.Store(false)
	close(stop)
	wg.Wait()
	return elapsed, nil
}

// busyWork spins for roughly d without sleeping (holding a spin lock while
// sleeping would be unkind).
func busyWork(d time.Duration) {
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}
