// Workqueue: §1 use case (1) — "a process blocked on a lock may wish to
// abandon its work chunk and switch to working on a different work chunk
// not subjected to serialization".
//
// A fixed set of chunks each carries its own abortable lock. Workers sweep
// the chunks; when a chunk's lock is contended they wait only briefly
// before aborting and moving on to another chunk, so no worker is ever
// parked behind a slow peer while unclaimed work exists.
//
//	go run ./examples/workqueue
//
// With -addr the chunk locks live in a lockd service instead of in
// process: workers acquire "chunk-<i>" leases over HTTP, and the same
// abort-and-switch pattern rides on the service's bounded acquire wait
// (patience is stretched to cover network latency).
//
//	go run ./cmd/lockd &
//	go run ./examples/workqueue -addr 127.0.0.1:7513
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"
)

import (
	"sublock/abortable"
	"sublock/lockd/client"
)

const (
	chunks     = 8
	workers    = 8
	unitsEach  = 64 // work units per chunk
	patienceµs = 50
)

type chunk struct {
	lock      *abortable.Lock
	remaining atomic.Int64
}

// enterFunc tries to lock chunk i within ctx, returning the matching
// unlock on success. Local mode aborts via EnterContext; remote mode rides
// the lockd acquire wait budget.
type enterFunc func(ctx context.Context, i int) (func(), error)

func main() {
	addr := flag.String("addr", "", "lockd address (host:port); empty runs in-process")
	flag.Parse()
	if err := run(*addr); err != nil {
		log.Fatal(err)
	}
}

// localEnter gives one worker abortable handles on every chunk lock.
func localEnter(cs []*chunk) (enterFunc, error) {
	handles := make([]*abortable.Handle, len(cs))
	for i, c := range cs {
		h, err := c.lock.NewHandle()
		if err != nil {
			return nil, err
		}
		handles[i] = h
	}
	return func(ctx context.Context, i int) (func(), error) {
		if err := handles[i].EnterContext(ctx); err != nil {
			return nil, err
		}
		return handles[i].Exit, nil
	}, nil
}

// remoteEnter leases "chunk-<i>" from a lockd service. The patience
// deadline travels as the service-side wait budget, so a contended chunk
// sheds this worker with wait_timeout instead of parking it.
func remoteEnter(addr string) enterFunc {
	cl := client.New(addr, client.Config{MaxAttempts: 1})
	return func(ctx context.Context, i int) (func(), error) {
		wait := time.Second
		if dl, ok := ctx.Deadline(); ok {
			wait = time.Until(dl)
		}
		ls, err := cl.Acquire(ctx, fmt.Sprintf("chunk-%d", i), 10*time.Second, wait)
		if err != nil {
			return nil, err
		}
		return func() {
			if err := cl.Release(context.Background(), ls); err != nil &&
				!errors.Is(err, client.ErrExpired) {
				log.Printf("release chunk-%d: %v", i, err)
			}
		}, nil
	}
}

func run(addr string) error {
	cs := make([]*chunk, chunks)
	for i := range cs {
		cs[i] = &chunk{lock: abortable.New(abortable.Config{MaxHandles: workers})}
		cs[i].remaining.Store(unitsEach)
	}
	// Local aborts resolve in microseconds; an HTTP round trip does not.
	patience := patienceµs * time.Microsecond
	if addr != "" {
		patience = 5 * time.Millisecond
	}
	var done atomic.Int64
	var switches atomic.Int64 // abort-and-move-on events

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		var enter enterFunc
		if addr == "" {
			var err error
			if enter, err = localEnter(cs); err != nil {
				return err
			}
		} else {
			enter = remoteEnter(addr)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			// All workers sweep from chunk 0, so they contend at the front
			// of the queue and rely on abort-and-switch to spread out.
			for next := 0; done.Load() < chunks*unitsEach; next++ {
				i := next % chunks
				c := cs[i]
				if c.remaining.Load() == 0 {
					continue
				}
				ctx, cancel := context.WithTimeout(context.Background(), patience)
				exit, err := enter(ctx, i)
				cancel()
				if err != nil {
					// Contended: abandon this chunk and try the next one
					// instead of queueing behind the current owner.
					switches.Add(1)
					continue
				}
				// Drain a few units while holding the chunk. The yield
				// models per-unit work and hands the CPU to peers, so
				// chunk locks are genuinely contended.
				for k := 0; k < 8 && c.remaining.Load() > 0; k++ {
					c.remaining.Add(-1)
					done.Add(1)
					time.Sleep(20 * time.Microsecond)
				}
				exit()
			}
		}()
	}
	wg.Wait()

	for i, c := range cs {
		if r := c.remaining.Load(); r != 0 {
			return fmt.Errorf("chunk %d has %d unprocessed units", i, r)
		}
	}
	fmt.Printf("processed %d work units across %d chunks with %d workers\n",
		done.Load(), chunks, workers)
	fmt.Printf("abort-and-switch events: %d (waiters that moved on instead of queueing)\n",
		switches.Load())
	return nil
}
