// Workqueue: §1 use case (1) — "a process blocked on a lock may wish to
// abandon its work chunk and switch to working on a different work chunk
// not subjected to serialization".
//
// A fixed set of chunks each carries its own abortable lock. Workers sweep
// the chunks; when a chunk's lock is contended they wait only briefly
// before aborting and moving on to another chunk, so no worker is ever
// parked behind a slow peer while unclaimed work exists.
//
//	go run ./examples/workqueue
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"
)

import "sublock/abortable"

const (
	chunks     = 8
	workers    = 8
	unitsEach  = 64 // work units per chunk
	patienceµs = 50
)

type chunk struct {
	lock      *abortable.Lock
	remaining atomic.Int64
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cs := make([]*chunk, chunks)
	for i := range cs {
		cs[i] = &chunk{lock: abortable.New(abortable.Config{MaxHandles: workers})}
		cs[i].remaining.Store(unitsEach)
	}
	var done atomic.Int64
	var switches atomic.Int64 // abort-and-move-on events

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		handles := make([]*abortable.Handle, chunks)
		for i, c := range cs {
			h, err := c.lock.NewHandle()
			if err != nil {
				return err
			}
			handles[i] = h
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			// All workers sweep from chunk 0, so they contend at the front
			// of the queue and rely on abort-and-switch to spread out.
			for next := 0; done.Load() < chunks*unitsEach; next++ {
				i := next % chunks
				c := cs[i]
				if c.remaining.Load() == 0 {
					continue
				}
				ctx, cancel := context.WithTimeout(context.Background(), patienceµs*time.Microsecond)
				err := handles[i].EnterContext(ctx)
				cancel()
				if err != nil {
					// Contended: abandon this chunk and try the next one
					// instead of queueing behind the current owner.
					switches.Add(1)
					continue
				}
				// Drain a few units while holding the chunk. The yield
				// models per-unit work and hands the CPU to peers, so
				// chunk locks are genuinely contended.
				for k := 0; k < 8 && c.remaining.Load() > 0; k++ {
					c.remaining.Add(-1)
					done.Add(1)
					time.Sleep(20 * time.Microsecond)
				}
				handles[i].Exit()
			}
		}()
	}
	wg.Wait()

	for i, c := range cs {
		if r := c.remaining.Load(); r != 0 {
			return fmt.Errorf("chunk %d has %d unprocessed units", i, r)
		}
	}
	fmt.Printf("processed %d work units across %d chunks with %d workers\n",
		done.Load(), chunks, workers)
	fmt.Printf("abort-and-switch events: %d (waiters that moved on instead of queueing)\n",
		switches.Load())
	return nil
}
