// RMR demo: using the public rmr package to see the paper's cost model in
// action. Builds a two-process handoff on simulated cache-coherent memory,
// counts remote memory references for a spin-wait under CC and DSM, replays
// one adversarial interleaving deterministically, and attributes the RMRs of
// an abort storm to passage phases and memory regions — contrasting the
// paper's lock with MCS.
//
//	go run ./examples/rmrdemo
package main

import (
	"fmt"
	"log"
	"os"

	"sublock/internal/harness"
	"sublock/rmr"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ccSpinDemo()
	dsmSpinDemo()
	if err := scheduleDemo(); err != nil {
		return err
	}
	return phaseDemo()
}

// ccSpinDemo shows why spinning is cheap under cache coherence: re-reads of
// a cached word are local until the releasing write invalidates the copy.
func ccSpinDemo() {
	m := rmr.NewMemory(rmr.CC, 2, nil)
	flag := m.Alloc(0)
	waiter, owner := m.Proc(0), m.Proc(1)

	for i := 0; i < 1000; i++ {
		waiter.Read(flag) // one miss, then 999 cache hits
	}
	owner.Write(flag, 1) // invalidates the waiter's copy
	waiter.Read(flag)    // one more miss
	fmt.Printf("CC : waiter spun 1001 times, paid %d RMRs (1 cold miss + 1 invalidation)\n",
		waiter.RMRs())
}

// dsmSpinDemo shows why DSM needs the paper's §3 indirection: a remote word
// costs an RMR on every read, so waiters must spin on a word in their own
// memory partition.
func dsmSpinDemo() {
	m := rmr.NewMemory(rmr.DSM, 2, nil)
	remote := m.Alloc(0)        // in "home" memory: remote to everyone
	local := m.AllocLocal(0, 0) // in process 0's partition
	waiter := m.Proc(0)

	for i := 0; i < 1000; i++ {
		waiter.Read(remote)
	}
	remoteCost := waiter.RMRs()
	for i := 0; i < 1000; i++ {
		waiter.Read(local)
	}
	fmt.Printf("DSM: 1000 remote spins cost %d RMRs; 1000 local spins cost %d\n",
		remoteCost, waiter.RMRs()-remoteCost)
}

// scheduleDemo replays a seeded adversarial interleaving of a two-process
// CAS race deterministically: same seed, same winner, every run.
func scheduleDemo() error {
	winnerOf := func(seed int64) (uint64, error) {
		s := rmr.NewScheduler(2, rmr.RandomPick(seed))
		m := rmr.NewMemory(rmr.CC, 2, nil)
		word := m.Alloc(0)
		m.SetGate(s)
		for i := 0; i < 2; i++ {
			p := m.Proc(i)
			s.Go(func() {
				p.CAS(word, 0, uint64(p.ID())+1)
			})
		}
		if err := s.Run(1000); err != nil {
			return 0, err
		}
		return m.Peek(word), nil
	}
	for _, seed := range []int64{1, 2, 3} {
		a, err := winnerOf(seed)
		if err != nil {
			return err
		}
		b, err := winnerOf(seed)
		if err != nil {
			return err
		}
		fmt.Printf("seed %d: CAS race winner = process %d (replay agrees: %v)\n",
			seed, a-1, a == b)
		if a != b {
			return fmt.Errorf("seed %d: replays diverged", seed)
		}
	}
	return nil
}

// phaseDemo attributes RMRs to passage phases and labeled memory regions:
// the paper's lock under an abort storm (where its O(log_W A) exit-phase
// tree traversal shows up under the "tree/" labels), then MCS under the
// plain queue workload (O(1) per passage, no abort machinery at all).
func phaseDemo() error {
	const aborters = 24
	fmt.Printf("\n--- paper lock, abort storm (%d aborters): phase/label attribution ---\n", aborters)
	_, snap, err := harness.AbortStormStats(rmr.CC, harness.AlgoPaper, harness.DefaultW, aborters, false)
	if err != nil {
		return err
	}
	holderExitTree := snap.ProcPhaseLabelRMRs(0, rmr.PhaseExit, "tree/")
	holderDoorway := snap.ProcPhaseRMRs(0, rmr.PhaseDoorway)
	fmt.Printf("holder (p0): doorway=%d RMRs, exit-phase tree traversal=%d RMRs — the\n",
		holderDoorway, holderExitTree)
	fmt.Printf("O(log_W A) handoff ascent, with W=%d and A=%d aborters\n\n", harness.DefaultW, aborters)
	if err := snap.WriteText(os.Stdout); err != nil {
		return err
	}

	fmt.Printf("\n--- MCS, queue workload: phase/label attribution ---\n")
	_, snap, err = harness.QueueWorkloadStats(rmr.CC, harness.AlgoMCS, harness.DefaultW, 8)
	if err != nil {
		return err
	}
	fmt.Printf("per-passage cost stays O(1): total RMRs %d over %d passages, all on\n",
		snap.TotalRMRs(), snap.Passages)
	fmt.Printf("the %q and %q regions\n\n", "mcs/tail", "mcs/qnode")
	return snap.WriteText(os.Stdout)
}
