// Transaction locks: §1 use case (2) — "database systems use aborts to
// recover from deadlocks".
//
// Transfer transactions lock two account locks in *request* order (not a
// global order), which deadlocks under plain mutexes: T1 holds A and wants
// B while T2 holds B and wants A. With an abortable lock each transaction
// bounds its wait; on timeout it aborts the acquisition, releases what it
// holds, and retries — classic deadlock recovery by victim abort.
//
//	go run ./examples/txlocks
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"sublock/abortable"
)

const (
	accounts     = 8
	transactors  = 8
	transfersPer = 200
	patience     = 300 * time.Microsecond
)

type bank struct {
	balance [accounts]int64
	locks   [accounts]*abortable.Lock
}

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	b := &bank{}
	for i := range b.locks {
		b.locks[i] = abortable.New(abortable.Config{MaxHandles: transactors})
		b.balance[i] = 1000
	}
	var initial int64
	for _, v := range b.balance {
		initial += v
	}

	var deadlockRecoveries, commits atomic.Int64
	var wg sync.WaitGroup
	for t := 0; t < transactors; t++ {
		handles := make([]*abortable.Handle, accounts)
		for i := range handles {
			h, err := b.locks[i].NewHandle()
			if err != nil {
				return err
			}
			handles[i] = h
		}
		rng := rand.New(rand.NewSource(int64(t) + 1))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < transfersPer; k++ {
				from := rng.Intn(accounts)
				to := (from + 1 + rng.Intn(accounts-1)) % accounts
				amount := int64(rng.Intn(50))
				for {
					if transfer(b, handles, from, to, amount) {
						commits.Add(1)
						break
					}
					// Victim abort: back off and retry the transaction.
					deadlockRecoveries.Add(1)
					time.Sleep(time.Duration(rng.Intn(100)) * time.Microsecond)
				}
			}
		}()
	}
	wg.Wait()

	var final int64
	for _, v := range b.balance {
		final += v
	}
	fmt.Printf("committed %d transfers across %d transactors\n", commits.Load(), transactors)
	fmt.Printf("deadlock recoveries via lock abort: %d\n", deadlockRecoveries.Load())
	fmt.Printf("total balance: %d → %d (conserved: %v)\n", initial, final, initial == final)
	if initial != final {
		return fmt.Errorf("money was created or destroyed")
	}
	return nil
}

// transfer locks `from` then `to` in request order — deliberately NOT a
// deadlock-free order — moving the money only if both locks are acquired.
// It reports whether the transaction committed.
func transfer(b *bank, handles []*abortable.Handle, from, to int, amount int64) bool {
	ctx, cancel := context.WithTimeout(context.Background(), patience)
	defer cancel()
	if err := handles[from].EnterContext(ctx); err != nil {
		return false
	}
	defer handles[from].Exit()
	// Model per-row work between the two lock acquisitions; the yield
	// widens the window in which a peer can take `to` and want `from`.
	time.Sleep(10 * time.Microsecond)
	if err := handles[to].EnterContext(ctx); err != nil {
		return false // held `from` while waiting: the deadlock case
	}
	defer handles[to].Exit()
	b.balance[from] -= amount
	b.balance[to] += amount
	return true
}
