module sublock

go 1.22
