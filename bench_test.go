package sublock

// This file is the benchmark face of the reproduction: one testing.B
// benchmark per table/figure of the paper (see DESIGN.md's per-experiment
// index and EXPERIMENTS.md for paper-vs-measured). Each benchmark reports
// the experiment's RMR measurement via b.ReportMetric — the paper's cost
// model — alongside the usual wall-clock numbers.
//
// The cmd/rmrbench CLI runs the same experiments at full paper scale and
// prints them as tables; the benchmarks keep the sweeps moderate so
// `go test -bench=.` terminates in minutes.

import (
	"fmt"
	"testing"

	"sublock/internal/harness"
	"sublock/internal/tree"
	"sublock/rmr"
)

// BenchmarkTable1WorstCase is experiment E1: the "Worst-case" column of
// Table 1 — all but one waiter abort and the handoff passage pays each
// algorithm's worst case.
func BenchmarkTable1WorstCase(b *testing.B) {
	for _, algo := range harness.Table1Algos {
		for _, n := range []int{64, 256, 1024} {
			b.Run(fmt.Sprintf("%s/N=%d", algo, n), func(b *testing.B) {
				var holder, waiter int64
				for i := 0; i < b.N; i++ {
					res, err := harness.AbortStorm(algo, harness.DefaultW, n-2, algo == harness.AlgoScott)
					if err != nil {
						b.Fatal(err)
					}
					holder, waiter = res.HolderPassage, res.WaiterPassage
				}
				b.ReportMetric(float64(holder), "holderRMRs")
				b.ReportMetric(float64(waiter), "waiterRMRs")
			})
		}
	}
}

// BenchmarkTable1NoAborts is experiment E2: the "No aborts" column — a full
// queue drains with zero aborts; per-passage RMRs are O(1) for the queue
// locks and Θ(log N) for the tournament.
func BenchmarkTable1NoAborts(b *testing.B) {
	algos := append([]harness.Algo{harness.AlgoMCS}, harness.Table1Algos...)
	for _, algo := range algos {
		for _, n := range []int{64, 256} {
			b.Run(fmt.Sprintf("%s/N=%d", algo, n), func(b *testing.B) {
				var maxRMRs int64
				var mean float64
				for i := 0; i < b.N; i++ {
					res, err := harness.QueueWorkload(algo, harness.DefaultW, n)
					if err != nil {
						b.Fatal(err)
					}
					maxRMRs, mean = res.Passages.Max(), res.Passages.Mean()
				}
				b.ReportMetric(float64(maxRMRs), "maxRMRs/passage")
				b.ReportMetric(mean, "meanRMRs/passage")
			})
		}
	}
}

// BenchmarkTable1Adaptive is experiment E3: the "Adaptive bound" column —
// N fixed, aborts sweep; the paper's lock pays O(log_W A).
func BenchmarkTable1Adaptive(b *testing.B) {
	for _, algo := range harness.Table1Algos {
		for _, a := range []int{0, 4, 16, 64, 256} {
			b.Run(fmt.Sprintf("%s/A=%d", algo, a), func(b *testing.B) {
				var holder int64
				for i := 0; i < b.N; i++ {
					res, err := harness.AbortStorm(algo, harness.DefaultW, a, algo == harness.AlgoScott)
					if err != nil {
						b.Fatal(err)
					}
					holder = res.HolderPassage
				}
				b.ReportMetric(float64(holder), "holderRMRs")
			})
		}
	}
}

// BenchmarkTable1Space is experiment E4: the "Space" column — words of
// shared memory per algorithm after construction and after an abort storm.
func BenchmarkTable1Space(b *testing.B) {
	algos := append(append([]harness.Algo{}, harness.Table1Algos...), harness.AlgoPaperLLBounded)
	for _, algo := range algos {
		for _, n := range []int{64, 256} {
			b.Run(fmt.Sprintf("%s/N=%d", algo, n), func(b *testing.B) {
				var words int
				for i := 0; i < b.N; i++ {
					res, err := harness.AbortStorm(algo, harness.DefaultW, n-2, false)
					if err != nil {
						b.Fatal(err)
					}
					words = res.Words
				}
				b.ReportMetric(float64(words), "words")
			})
		}
	}
}

// BenchmarkWSweep is experiment E5: the §1 headline time/space tradeoff —
// RMR cost of the paper's lock as the word width W sweeps at fixed N.
func BenchmarkWSweep(b *testing.B) {
	for _, w := range []int{2, 4, 8, 16, 32, 64} {
		b.Run(fmt.Sprintf("W=%d", w), func(b *testing.B) {
			var holder int64
			for i := 0; i < b.N; i++ {
				res, err := harness.AbortStorm(harness.AlgoPaper, w, 254, false)
				if err != nil {
					b.Fatal(err)
				}
				holder = res.HolderPassage
			}
			b.ReportMetric(float64(holder), "holderRMRs")
		})
	}
}

// BenchmarkFig2Scenarios is experiment E6: the three FindNext outcomes of
// Figure 2, reproduced under scripted schedules.
func BenchmarkFig2Scenarios(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.Fig2Scenarios(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdaptiveFindNext is experiment E7 (Figure 4): the ascent cost of
// plain FindNext vs AdaptiveFindNext when the successor is adjacent across
// a subtree boundary. This is also a true hot-path micro-benchmark of the
// tree operations themselves.
func BenchmarkAdaptiveFindNext(b *testing.B) {
	for _, n := range []int{64, 4096, 32768} {
		for _, variant := range []string{"plain", "adaptive"} {
			b.Run(fmt.Sprintf("%s/N=%d", variant, n), func(b *testing.B) {
				m := rmr.NewMemory(rmr.CC, 2, nil)
				tr, err := tree.New(m, tree.Config{W: 8, N: n})
				if err != nil {
					b.Fatal(err)
				}
				leaf := n/8 - 1
				// Cold-cache RMR cost, measured once with a process that
				// has touched nothing (repeat calls hit the CC cache, so a
				// per-iteration average would read ≈0 — the model's point).
				cold := m.Proc(1)
				before := cold.RMRs()
				if variant == "plain" {
					tr.FindNext(cold, leaf)
				} else {
					tr.AdaptiveFindNext(cold, leaf)
				}
				b.ReportMetric(float64(cold.RMRs()-before), "coldRMRs")

				p := m.Proc(0)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if variant == "plain" {
						tr.FindNext(p, leaf)
					} else {
						tr.AdaptiveFindNext(p, leaf)
					}
				}
			})
		}
	}
}

// BenchmarkLongLivedOverhead is experiment E9: per-passage cost of the §6
// transformation in both memory-management modes.
func BenchmarkLongLivedOverhead(b *testing.B) {
	for _, algo := range []harness.Algo{harness.AlgoPaperLL, harness.AlgoPaperLLBounded} {
		b.Run(string(algo), func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				res, err := harness.MultiPassage(algo, harness.DefaultW, 8, 16)
				if err != nil {
					b.Fatal(err)
				}
				mean = res.Passages.Mean()
			}
			b.ReportMetric(mean, "meanRMRs/passage")
		})
	}
}

// BenchmarkDSMVariant is experiment E10: waiting cost in the DSM model with
// and without the §3 announce/spin-bit indirection.
func BenchmarkDSMVariant(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tbl, err := harness.DSMVariant([]int{100, 1000})
		if err != nil {
			b.Fatal(err)
		}
		_ = tbl
	}
}

// BenchmarkMCSAnchor is experiment E11: MCS's flat O(1) per-passage RMRs.
func BenchmarkMCSAnchor(b *testing.B) {
	for _, n := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("N=%d", n), func(b *testing.B) {
			var maxRMRs int64
			for i := 0; i < b.N; i++ {
				res, err := harness.QueueWorkload(harness.AlgoMCS, harness.DefaultW, n)
				if err != nil {
					b.Fatal(err)
				}
				maxRMRs = res.Passages.Max()
			}
			b.ReportMetric(float64(maxRMRs), "maxRMRs/passage")
		})
	}
}

// BenchmarkSpinNodeAblation is experiment E13: the cost of waiting for an
// instance switch with spin nodes vs by polling the descriptor.
func BenchmarkSpinNodeAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := harness.SpinNodeAblation([]int{16, 64}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChurn is experiment E14: the bounded long-lived lock under an
// abort-probability sweep, reporting the completed-passage RMR mean.
func BenchmarkChurn(b *testing.B) {
	for _, p := range []float64{0, 0.5, 0.95} {
		b.Run(fmt.Sprintf("pAbort=%.2f", p), func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				res, err := harness.Churn(harness.AlgoPaperLLBounded, harness.DefaultW, 8, 16, p, 42)
				if err != nil {
					b.Fatal(err)
				}
				mean = res.Successful.Mean()
			}
			b.ReportMetric(mean, "meanRMRs/passage")
		})
	}
}

// BenchmarkPointContention is experiment E15: per-passage cost as the
// number of active processes sweeps at fixed lock capacity.
func BenchmarkPointContention(b *testing.B) {
	for _, k := range []int{2, 16, 128} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := harness.PointContention(256, harness.DefaultW, []int{k}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
