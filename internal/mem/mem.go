// Package mem defines the shared-memory access interface that the simulated
// lock algorithms are written against. *rmr.Proc implements it directly; the
// reclaim package provides a versioned wrapper implementing the lazy-reset
// scheme of §6.2, which lets recycled lock instances behave as freshly
// initialized without an O(s(N))-RMR reset pass.
package mem

import "sublock/rmr"

// Ops is the set of atomic operations the paper's algorithms use
// (read, write, CAS, F&A — §2). Implementations attribute the RMR cost of
// each operation to the process on whose behalf they act.
type Ops interface {
	Read(a rmr.Addr) uint64
	Write(a rmr.Addr, v uint64)
	CAS(a rmr.Addr, old, new uint64) bool
	FAA(a rmr.Addr, delta uint64) uint64
}

var _ Ops = (*rmr.Proc)(nil)

// Allocator hands out shared words at construction time. *rmr.Memory
// implements it directly; reclaim.Region implements it with logical
// addresses backed by (version, incarnation-pair) word triples, which is
// how a recycled one-shot lock instance reads as freshly initialized
// without an O(s(N))-RMR reset (§6.2).
//
// Allocation and Poke happen during initialization only and are not charged
// RMRs, matching the paper's model (initial values are givens, not steps).
type Allocator interface {
	Alloc(init uint64) rmr.Addr
	AllocN(n int, init uint64) rmr.Addr
	Poke(a rmr.Addr, v uint64)
	Model() rmr.Model
}

var _ Allocator = (*rmr.Memory)(nil)

// Labeler is optionally implemented by an Allocator that supports RMR
// attribution labels (rmr.Memory does; reclaim.Region does not — words of
// recycled bounded-space instances stay unlabeled). Lock constructors
// type-assert for it and label their structures when available:
//
//	if lb, ok := a.(mem.Labeler); ok { lb.Label(base, n, "mcs/qnode") }
//
// Label(base, 0, name) registers the name without labeling any words, so
// a structure that allocates mid-run can still reserve its column in a
// Stats collector created before the run.
type Labeler interface {
	Label(base rmr.Addr, n int, name string)
}

var _ Labeler = (*rmr.Memory)(nil)
