package reclaim

import (
	"testing"
	"testing/quick"

	"sublock/rmr"
)

// TestQuickRegionVsModel drives random write/read/recycle sequences against
// a plain map model: after any number of recycles, unwritten words read
// their initial value and written words read the last value written in the
// current incarnation.
func TestQuickRegionVsModel(t *testing.T) {
	type step struct {
		Op   uint8 // 0: write, 1: read-check, 2: recycle, 3: faa
		Word uint8
		Val  uint16
	}
	type scenario struct {
		VBits uint8
		Inits [6]uint16
		Steps []step
	}
	f := func(s scenario) bool {
		vbits := uint(1 + s.VBits%8)
		m := rmr.NewMemory(rmr.CC, 1, nil)
		r, err := NewRegion(m, vbits)
		if err != nil {
			return false
		}
		const nwords = 6
		base := r.AllocN(nwords, 0)
		model := make([]uint64, nwords)
		inits := make([]uint64, nwords)
		for i := range inits {
			inits[i] = uint64(s.Inits[i])
			r.Poke(base+rmr.Addr(i), inits[i])
			model[i] = inits[i]
		}
		r.Seal()
		p := m.Proc(0)
		acc := r.Accessor(p)
		for _, st := range s.Steps {
			w := int(st.Word) % nwords
			a := base + rmr.Addr(w)
			switch st.Op % 4 {
			case 0:
				acc.Write(a, uint64(st.Val))
				model[w] = uint64(st.Val)
			case 1:
				if got := acc.Read(a); got != model[w] {
					return false
				}
			case 2:
				r.Recycle(p)
				copy(model, inits)
				acc = r.Accessor(p)
			case 3:
				if old := acc.FAA(a, uint64(st.Val)); old != model[w] {
					return false
				}
				model[w] += uint64(st.Val)
			}
		}
		// Final full check, including through Peek.
		for w := 0; w < nwords; w++ {
			if got := acc.Read(base + rmr.Addr(w)); got != model[w] {
				return false
			}
			if got := r.Peek(base + rmr.Addr(w)); got != model[w] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}
