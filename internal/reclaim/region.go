// Package reclaim implements the memory-management schemes of §6.2 of the
// paper, which bound the space of the long-lived lock:
//
//   - Region: versioned lazy reset for recycled one-shot lock instances.
//     Every logical word w of an instance is backed by a triple (V_w, w_0,
//     w_1): V_w holds a version number and an incarnation bit b_w, w_b is
//     the live copy, and w_{1−b} always holds w's initial value. A process
//     reading a stale version flips the incarnation with one CAS — so the
//     fresh copy (pre-loaded with the initial value) becomes live — and
//     resets the old copy for the following reuse. Recycling an instance is
//     then a version bump plus an O(s(N)/2^vbits) eager sweep that defeats
//     version wraparound, instead of an O(s(N))-RMR full reset.
//
//   - Hazards: announcement-based protection for spin nodes, replacing the
//     Aghazadeh et al. reclamation scheme with a hazard-pointer-style
//     protocol of the same safety ("never recycle a node a process may
//     still busy-wait on") and amortized O(1) RMR cost (see DESIGN.md,
//     Substitutions).
package reclaim

import (
	"fmt"

	"sublock/internal/mem"
	"sublock/rmr"
)

// Region is a set of logical shared words with versioned lazy reset.
// Addresses handed out by the Region are logical: they index the Region's
// word table and are only meaningful to accessors created by Accessor.
//
// Construct the guarded object (e.g. a one-shot lock) by passing the Region
// as its mem.Allocator, then Seal it. Thereafter:
//
//   - Accessor(p) returns the mem.Ops through which process p must perform
//     every operation on the object's words;
//   - Recycle(p) makes the object read as freshly initialized again. The
//     caller must guarantee quiescence (no process is still operating on
//     the previous incarnation), which the long-lived transformation gets
//     from its reference count (Claim 24).
type Region struct {
	m      *rmr.Memory
	vbits  uint
	vmask  uint64
	verA   rmr.Addr // physical word holding the region's current version
	words  []triple
	sealed bool
	cursor int // eager-reset cursor; touched only by the (unique) recycler
}

// triple is the physical backing of one logical word.
type triple struct {
	v    rmr.Addr // V_w: version<<1 | incarnation bit
	w0   rmr.Addr // incarnation 0
	w1   rmr.Addr // incarnation 1
	init uint64   // the word's initial value
}

var _ mem.Allocator = (*Region)(nil)

// NewRegion creates an empty region in m. vbits (1..62) is the width of the
// version field; wraparound occurs every 2^vbits recycles and is defeated by
// the eager sweep, so small values are fine (and make wraparound testable).
func NewRegion(m *rmr.Memory, vbits uint) (*Region, error) {
	if vbits < 1 || vbits > 62 {
		return nil, fmt.Errorf("reclaim: vbits=%d outside [1,62]", vbits)
	}
	return &Region{
		m:     m,
		vbits: vbits,
		vmask: (uint64(1) << vbits) - 1,
		verA:  m.Alloc(0),
	}, nil
}

// Alloc implements mem.Allocator with a logical address.
func (r *Region) Alloc(init uint64) rmr.Addr {
	return r.AllocN(1, init)
}

// AllocN implements mem.Allocator: n adjacent logical words.
func (r *Region) AllocN(n int, init uint64) rmr.Addr {
	if r.sealed {
		panic("reclaim: AllocN on a sealed region")
	}
	base := len(r.words)
	for i := 0; i < n; i++ {
		r.words = append(r.words, triple{
			v:    r.m.Alloc(0), // version 0, incarnation 0
			w0:   r.m.Alloc(init),
			w1:   r.m.Alloc(init),
			init: init,
		})
	}
	return rmr.Addr(base)
}

// Poke implements mem.Allocator: it redefines the word's initial value, so
// initialization-time Pokes (tree padding, go[0]=1) survive every recycle.
func (r *Region) Poke(a rmr.Addr, v uint64) {
	if r.sealed {
		panic("reclaim: Poke on a sealed region")
	}
	t := &r.words[a]
	t.init = v
	r.m.Poke(t.w0, v)
	r.m.Poke(t.w1, v)
}

// Model implements mem.Allocator.
func (r *Region) Model() rmr.Model { return r.m.Model() }

// Seal freezes the region's layout. It must be called after the guarded
// object is constructed and before any Accessor or Recycle call.
func (r *Region) Seal() { r.sealed = true }

// Words returns the number of logical words in the region (the instance's
// space complexity s; physical backing is 3s+1 words).
func (r *Region) Words() int { return len(r.words) }

// Peek returns the current value of logical word a without charging RMRs.
// Test/harness facility only.
func (r *Region) Peek(a rmr.Addr) uint64 {
	t := r.words[a]
	ver := r.m.Peek(r.verA)
	vw := r.m.Peek(t.v)
	if vw>>1 != ver&r.vmask {
		return t.init
	}
	if vw&1 == 0 {
		return r.m.Peek(t.w0)
	}
	return r.m.Peek(t.w1)
}

// Recycle makes the region read as freshly initialized: it advances the
// version (lazily invalidating every live copy), eagerly resets a quota of
// ⌈s/2^vbits⌉ words so that no word can survive an entire version
// wraparound unreset, and publishes the new version. p is charged the RMRs.
// The caller must guarantee no process is still using the old incarnation.
func (r *Region) Recycle(p *rmr.Proc) {
	ver := (p.Read(r.verA) + 1) & r.vmask
	quota := (len(r.words) + (1 << r.vbits) - 1) >> r.vbits
	for i := 0; i < quota; i++ {
		t := r.words[r.cursor]
		p.Write(t.v, ver<<1) // version = ver, incarnation 0
		p.Write(t.w0, t.init)
		p.Write(t.w1, t.init)
		r.cursor = (r.cursor + 1) % len(r.words)
	}
	p.Write(r.verA, ver)
}

// Accessor returns the mem.Ops through which process p operates on the
// region's current incarnation. A fresh accessor must be used for each
// acquisition (its resolution cache is only valid within one incarnation).
func (r *Region) Accessor(p *rmr.Proc) *Accessor {
	return &Accessor{r: r, p: p, resolved: make(map[rmr.Addr]rmr.Addr, 8)}
}

// Accessor resolves logical addresses to the live incarnation copy,
// performing the lazy reset protocol on first access to each word. It adds
// O(1) RMRs to a process's first access to each word (§6.2).
type Accessor struct {
	r        *Region
	p        *rmr.Proc
	ver      uint64
	haveVer  bool
	resolved map[rmr.Addr]rmr.Addr // logical → physical live copy
}

var _ mem.Ops = (*Accessor)(nil)

// resolve returns the physical address of logical word a's live copy.
func (c *Accessor) resolve(a rmr.Addr) rmr.Addr {
	if phys, ok := c.resolved[a]; ok {
		return phys
	}
	if !c.haveVer {
		c.ver = c.p.Read(c.r.verA)
		c.haveVer = true
	}
	t := c.r.words[a]
	vw := c.p.Read(t.v)
	if vw>>1 != c.ver {
		// Stale: flip to the fresh incarnation (which holds the initial
		// value) and reset the stale copy for the reuse after this one.
		b := vw & 1
		if c.p.CAS(t.v, vw, c.ver<<1|(1-b)) {
			if b == 0 {
				c.p.Write(t.w0, t.init)
			} else {
				c.p.Write(t.w1, t.init)
			}
			vw = c.ver<<1 | (1 - b)
		} else {
			// A concurrent first-accessor won the flip; its value is now
			// current for our version.
			vw = c.p.Read(t.v)
		}
	}
	phys := t.w0
	if vw&1 == 1 {
		phys = t.w1
	}
	c.resolved[a] = phys
	return phys
}

// Read implements mem.Ops.
func (c *Accessor) Read(a rmr.Addr) uint64 {
	return c.p.Read(c.resolve(a))
}

// Write implements mem.Ops.
func (c *Accessor) Write(a rmr.Addr, v uint64) {
	c.p.Write(c.resolve(a), v)
}

// CAS implements mem.Ops.
func (c *Accessor) CAS(a rmr.Addr, old, new uint64) bool {
	return c.p.CAS(c.resolve(a), old, new)
}

// FAA implements mem.Ops.
func (c *Accessor) FAA(a rmr.Addr, delta uint64) uint64 {
	return c.p.FAA(c.resolve(a), delta)
}
