package reclaim

import (
	"testing"

	"sublock/rmr"
)

func TestValidation(t *testing.T) {
	m := rmr.NewMemory(rmr.CC, 1, nil)
	if _, err := NewRegion(m, 0); err == nil {
		t.Error("vbits=0 accepted")
	}
	if _, err := NewRegion(m, 63); err == nil {
		t.Error("vbits=63 accepted")
	}
}

func TestBasicReadWrite(t *testing.T) {
	m := rmr.NewMemory(rmr.CC, 1, nil)
	r, err := NewRegion(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	a := r.Alloc(7)
	b := r.AllocN(3, 0)
	r.Seal()

	acc := r.Accessor(m.Proc(0))
	if got := acc.Read(a); got != 7 {
		t.Fatalf("initial read = %d, want 7", got)
	}
	acc.Write(b+1, 42)
	if got := acc.Read(b + 1); got != 42 {
		t.Fatalf("read-back = %d, want 42", got)
	}
	if got := acc.Read(b); got != 0 {
		t.Fatalf("neighbour = %d, want 0", got)
	}
	if got := r.Peek(b + 1); got != 42 {
		t.Fatalf("Peek = %d, want 42", got)
	}
	if !acc.CAS(a, 7, 8) {
		t.Fatal("CAS(7,8) failed")
	}
	if acc.CAS(a, 7, 9) {
		t.Fatal("stale CAS succeeded")
	}
	if got := acc.FAA(a, 5); got != 8 {
		t.Fatalf("FAA old = %d, want 8", got)
	}
	if got := acc.Read(a); got != 13 {
		t.Fatalf("after FAA = %d, want 13", got)
	}
}

func TestPokeRedefinesInitial(t *testing.T) {
	m := rmr.NewMemory(rmr.CC, 1, nil)
	r, err := NewRegion(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	a := r.AllocN(2, 0)
	r.Poke(a, 99) // like go[0] = 1 in the one-shot lock
	r.Seal()
	p := m.Proc(0)

	for cycle := 0; cycle < 5; cycle++ {
		acc := r.Accessor(p)
		if got := acc.Read(a); got != 99 {
			t.Fatalf("cycle %d: word 0 = %d, want 99 (Poked initial)", cycle, got)
		}
		if got := acc.Read(a + 1); got != 0 {
			t.Fatalf("cycle %d: word 1 = %d, want 0", cycle, got)
		}
		acc.Write(a, 1)
		acc.Write(a+1, 2)
		r.Recycle(p)
	}
}

func TestRecycleResetsLazily(t *testing.T) {
	m := rmr.NewMemory(rmr.CC, 2, nil)
	r, err := NewRegion(m, 8)
	if err != nil {
		t.Fatal(err)
	}
	base := r.AllocN(10, 5)
	r.Seal()
	p := m.Proc(0)

	acc := r.Accessor(p)
	for i := 0; i < 10; i++ {
		acc.Write(base+rmr.Addr(i), uint64(100+i))
	}
	r.Recycle(p)
	// A fresh accessor (even a different process) must see initial values.
	acc2 := r.Accessor(m.Proc(1))
	for i := 0; i < 10; i++ {
		if got := acc2.Read(base + rmr.Addr(i)); got != 5 {
			t.Fatalf("word %d after recycle = %d, want 5", i, got)
		}
	}
}

func TestManyRecyclesWithWraparound(t *testing.T) {
	// vbits=2 wraps the version every 4 recycles; the eager sweep must
	// prevent a stale value from a previous epoch reappearing. Stress by
	// writing a distinct value each cycle and touching only a subset of
	// words (so most resets are lazy or sweep-driven).
	m := rmr.NewMemory(rmr.CC, 1, nil)
	r, err := NewRegion(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	const n = 16
	base := r.AllocN(n, 0)
	r.Seal()
	p := m.Proc(0)

	for cycle := 1; cycle <= 40; cycle++ {
		acc := r.Accessor(p)
		// Touch a shifting subset of words.
		for i := 0; i < n; i += 1 + cycle%3 {
			a := base + rmr.Addr(i)
			if got := acc.Read(a); got != 0 {
				t.Fatalf("cycle %d: word %d = %d, want 0 (stale value leaked)", cycle, i, got)
			}
			acc.Write(a, uint64(cycle))
			if got := acc.Read(a); got != uint64(cycle) {
				t.Fatalf("cycle %d: read-back = %d", cycle, got)
			}
		}
		r.Recycle(p)
	}
}

func TestConcurrentFirstAccessRace(t *testing.T) {
	// Two processes race the incarnation flip on the same stale word; both
	// must end up using the same physical copy and observe the initial
	// value followed by each other's updates coherently.
	m := rmr.NewMemory(rmr.CC, 2, nil)
	r, err := NewRegion(m, 8)
	if err != nil {
		t.Fatal(err)
	}
	a := r.Alloc(3)
	r.Seal()

	// Make the word stale: use + recycle.
	setup := m.Proc(0)
	r.Accessor(setup).Write(a, 77)
	r.Recycle(setup)

	c := rmr.NewController(2)
	m.SetGate(c)
	vals := make([]uint64, 2)
	for i := 0; i < 2; i++ {
		i := i
		p := m.Proc(i)
		c.Go(i, func() {
			acc := r.Accessor(p)
			vals[i] = acc.Read(a)
			acc.FAA(a, 1)
		})
	}
	// Interleave the two resolutions step by step to hit the CAS race:
	// each resolve is verA read, V read, CAS, (reset write), value read.
	for s := 0; s < 3; s++ {
		c.Step(0)
		c.Step(1)
	}
	c.Wait()
	m.SetGate(nil)

	for i, v := range vals {
		if v != 3 && v != 4 {
			t.Fatalf("proc %d read %d, want 3 or 4 (initial or post-increment)", i, v)
		}
	}
	if got := r.Peek(a); got != 5 {
		t.Fatalf("final value = %d, want 5 (3 + two increments)", got)
	}
}

func TestAccessorRMRCost(t *testing.T) {
	// §6.2: the scheme adds O(1) RMRs to the first access of each word.
	m := rmr.NewMemory(rmr.CC, 1, nil)
	r, err := NewRegion(m, 8)
	if err != nil {
		t.Fatal(err)
	}
	a := r.Alloc(0)
	r.Seal()
	p := m.Proc(0)

	// Warm path: version current (no flip): verA read + V read + value op.
	acc := r.Accessor(p)
	before := p.RMRs()
	acc.Read(a)
	if got := p.RMRs() - before; got > 3 {
		t.Fatalf("first access (current version) = %d RMRs, want ≤ 3", got)
	}
	before = p.RMRs()
	for i := 0; i < 10; i++ {
		acc.Read(a)
	}
	if got := p.RMRs() - before; got != 0 {
		t.Fatalf("repeated reads = %d RMRs, want 0 (resolved + cached)", got)
	}

	// Stale path: flip CAS + reset write on top.
	acc.Write(a, 9)
	r.Recycle(p)
	acc2 := r.Accessor(p)
	before = p.RMRs()
	acc2.Read(a)
	if got := p.RMRs() - before; got > 5 {
		t.Fatalf("first access (stale) = %d RMRs, want ≤ 5", got)
	}
}

func TestSealDiscipline(t *testing.T) {
	m := rmr.NewMemory(rmr.CC, 1, nil)
	r, err := NewRegion(m, 4)
	if err != nil {
		t.Fatal(err)
	}
	a := r.Alloc(0)
	r.Seal()
	for name, fn := range map[string]func(){
		"alloc after seal": func() { r.Alloc(0) },
		"poke after seal":  func() { r.Poke(a, 1) },
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			fn()
		})
	}
}

func TestSpaceOverhead(t *testing.T) {
	// Physical cost: 3 words per logical word + 1 version word.
	m := rmr.NewMemory(rmr.CC, 1, nil)
	r, err := NewRegion(m, 8)
	if err != nil {
		t.Fatal(err)
	}
	r.AllocN(10, 0)
	r.Seal()
	if got := r.Words(); got != 10 {
		t.Fatalf("Words = %d, want 10", got)
	}
	if got := m.Size(); got != 31 {
		t.Fatalf("physical words = %d, want 31", got)
	}
}
