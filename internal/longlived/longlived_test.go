package longlived

import (
	"sync"
	"sync/atomic"
	"testing"

	"sublock/rmr"
)

func configs() map[string]Config {
	return map[string]Config{
		"unbounded":          {W: 4, N: 8},
		"unbounded/adaptive": {W: 4, N: 8, Adaptive: true},
		"bounded":            {W: 4, N: 8, Bounded: true},
		"bounded/adaptive":   {W: 4, N: 8, Bounded: true, Adaptive: true},
		"bounded/tinyver":    {W: 4, N: 8, Bounded: true, VersionBits: 2},
	}
}

func TestPackUnpack(t *testing.T) {
	for _, tt := range []struct{ lock, spn, ref uint64 }{
		{0, 0, 0},
		{1, 2, 3},
		{lockMask, spnMask, refcntMask},
		{12345, 67890, 999},
	} {
		l, s, r := unpack(pack(tt.lock, tt.spn, tt.ref))
		if l != tt.lock || s != tt.spn || r != tt.ref {
			t.Fatalf("roundtrip (%d,%d,%d) = (%d,%d,%d)", tt.lock, tt.spn, tt.ref, l, s, r)
		}
	}
	// Refcount field arithmetic: +1 and −1 touch only the low field.
	d := pack(5, 9, 0)
	if _, _, r := unpack(d + 1); r != 1 {
		t.Fatal("increment leaked out of the refcount field")
	}
	if l, s, r := unpack(d + 1 + decRefcnt); l != 5 || s != 9 || r != 0 {
		t.Fatal("decrement corrupted the descriptor")
	}
}

func TestValidation(t *testing.T) {
	dsm := rmr.NewMemory(rmr.DSM, 2, nil)
	if _, err := New(dsm, Config{W: 4, N: 2}); err == nil {
		t.Error("DSM memory accepted")
	}
	cc := rmr.NewMemory(rmr.CC, 2, nil)
	if _, err := New(cc, Config{W: 4, N: 0}); err == nil {
		t.Error("N=0 accepted")
	}
	if _, err := New(cc, Config{W: 4, N: 1 << 16}); err == nil {
		t.Error("N=2^16 accepted")
	}
	if _, err := New(cc, Config{W: 1, N: 2}); err == nil {
		t.Error("W=1 accepted")
	}
}

func TestSequentialPassages(t *testing.T) {
	for name, cfg := range configs() {
		t.Run(name, func(t *testing.T) {
			m := rmr.NewMemory(rmr.CC, cfg.N, nil)
			lk, err := New(m, cfg)
			if err != nil {
				t.Fatal(err)
			}
			h := lk.Handle(m.Proc(0))
			for i := 0; i < 30; i++ {
				if !h.Enter() {
					t.Fatalf("passage %d: Enter failed", i)
				}
				h.Exit()
			}
			if cfg.Bounded {
				if got := lk.Instances(); got != cfg.N+2 {
					t.Fatalf("bounded instances = %d, want %d", got, cfg.N+2)
				}
			} else if got := lk.Instances(); got != 31 {
				// Every solo passage drops the refcount to zero and switches.
				t.Fatalf("unbounded instances = %d, want 31", got)
			}
		})
	}
}

func TestInterleavedProcessesSequential(t *testing.T) {
	// Distinct processes acquire alternately with no concurrency; each
	// passage must succeed and each handle's oldSpn bookkeeping must keep
	// it out of instances it already used.
	for name, cfg := range configs() {
		t.Run(name, func(t *testing.T) {
			m := rmr.NewMemory(rmr.CC, cfg.N, nil)
			lk, err := New(m, cfg)
			if err != nil {
				t.Fatal(err)
			}
			handles := make([]*Handle, cfg.N)
			for i := range handles {
				handles[i] = lk.Handle(m.Proc(i))
			}
			for round := 0; round < 10; round++ {
				for i := 0; i < cfg.N; i++ {
					if !handles[i].Enter() {
						t.Fatalf("round %d proc %d: Enter failed", round, i)
					}
					handles[i].Exit()
				}
			}
		})
	}
}

// runConcurrent runs nprocs processes × passages acquisitions each under a
// seeded random schedule and checks mutual exclusion and completion.
func runConcurrent(t *testing.T, cfg Config, passages int, seed int64, aborters map[int]bool) (completed []int, aborted []int) {
	t.Helper()
	s := rmr.NewScheduler(cfg.N, rmr.RandomPick(seed))
	m := rmr.NewMemory(rmr.CC, cfg.N, nil)
	lk, err := New(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	handles := make([]*Handle, cfg.N)
	for i := range handles {
		handles[i] = lk.Handle(m.Proc(i))
	}
	m.SetGate(s)

	completed = make([]int, cfg.N)
	aborted = make([]int, cfg.N)
	var inCS atomic.Int32
	for i := 0; i < cfg.N; i++ {
		i := i
		p := m.Proc(i)
		s.Go(func() {
			for k := 0; k < passages; k++ {
				if aborters[i] && k%2 == 1 {
					p.SignalAbort()
				}
				if handles[i].Enter() {
					if got := inCS.Add(1); got > 1 {
						t.Errorf("seed %d: mutual exclusion violated (%d in CS)", seed, got)
					}
					completed[i]++
					inCS.Add(-1)
					handles[i].Exit()
				} else {
					aborted[i]++
				}
				p.ClearAbort()
			}
		})
	}
	if err := s.Run(200_000_000); err != nil {
		t.Fatalf("seed %d: schedule did not terminate: %v", seed, err)
	}
	return completed, aborted
}

func TestConcurrentNoAborts(t *testing.T) {
	for name, cfg := range configs() {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 8; seed++ {
				completed, _ := runConcurrent(t, cfg, 4, seed, nil)
				for i, c := range completed {
					if c != 4 {
						t.Fatalf("seed %d: process %d completed %d/4 passages", seed, i, c)
					}
				}
			}
		})
	}
}

func TestConcurrentWithAborts(t *testing.T) {
	aborters := map[int]bool{1: true, 3: true, 6: true}
	for name, cfg := range configs() {
		t.Run(name, func(t *testing.T) {
			for seed := int64(0); seed < 8; seed++ {
				completed, aborted := runConcurrent(t, cfg, 4, seed, aborters)
				for i := range completed {
					want := 4
					if aborters[i] {
						// Odd-numbered attempts run with the signal set and
						// may abort; all attempts must terminate either way.
						if completed[i]+aborted[i] != 4 {
							t.Fatalf("seed %d: aborter %d: %d+%d attempts", seed, i, completed[i], aborted[i])
						}
						continue
					}
					if completed[i] != want {
						t.Fatalf("seed %d: process %d completed %d/%d", seed, i, completed[i], want)
					}
				}
			}
		})
	}
}

func TestSpinNodeWaitPath(t *testing.T) {
	// Script the lines 57–61 wait: p uses the instance and returns while q
	// still holds a reference (no switch); p's re-entry must block on the
	// spin node until q's cleanup switches the descriptor and sets go.
	for _, bounded := range []bool{false, true} {
		name := "unbounded"
		if bounded {
			name = "bounded"
		}
		t.Run(name, func(t *testing.T) {
			cfg := Config{W: 4, N: 4, Bounded: bounded}
			c := rmr.NewController(2)
			m := rmr.NewMemory(rmr.CC, cfg.N, nil)
			lk, err := New(m, cfg)
			if err != nil {
				t.Fatal(err)
			}
			hp, hq := lk.Handle(m.Proc(0)), lk.Handle(m.Proc(1))
			m.SetGate(c)

			// p: first passage, then a second Enter that must wait.
			var pSecond atomic.Bool
			c.Go(0, func() {
				if !hp.Enter() {
					t.Error("p first Enter failed")
					return
				}
				hp.Exit()
				if !hp.Enter() {
					t.Error("p second Enter failed")
					return
				}
				pSecond.Store(true)
				hp.Exit()
			})
			// Drive p through its first passage up to the point where its
			// cleanup F&A ran. q has not entered yet, so p's own cleanup
			// switched the instance... to prevent that, let q increment
			// first.
			var qDone atomic.Bool
			c.Go(1, func() {
				if !hq.Enter() {
					t.Error("q Enter failed")
					return
				}
				hq.Exit()
				qDone.Store(true)
			})
			// q: desc read + F&A (+hazard write in bounded) + oneshot
			// doorway F&A + go read (slot 0: granted) + Head write.
			qSteps := 5
			if bounded {
				qSteps += 3 // hazard write + version read + V_w reads vary; overshoot below handles it
			}
			c.StepN(1, qSteps)
			// p: full first passage + re-entry attempt. p's cleanup sees
			// refcnt 2→1: no switch. Its second Enter reads desc: same spn
			// as oldSpn → spins. Give it a bounded number of steps; it must
			// NOT complete its second Enter.
			c.StepN(0, 400)
			if pSecond.Load() {
				t.Fatal("p re-entered the same instance without waiting for the switch")
			}
			// q finishes: exits the CS, cleanup drops refcnt to 0, switches,
			// sets the spin node; p's spin breaks and its second Enter uses
			// the fresh instance.
			c.Finish(1, 100_000)
			c.Finish(0, 100_000)
			c.Wait()
			if !pSecond.Load() {
				t.Fatal("p never completed its second passage")
			}
			if !qDone.Load() {
				t.Fatal("q never finished")
			}
		})
	}
}

func TestBoundedSpaceIsConstant(t *testing.T) {
	// The point of §6.2: memory footprint must not grow with passages.
	cfg := Config{W: 4, N: 4, Bounded: true}
	m := rmr.NewMemory(rmr.CC, cfg.N, nil)
	lk, err := New(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := lk.Handle(m.Proc(0))
	h.Enter()
	h.Exit()
	size := m.Size()
	for i := 0; i < 100; i++ {
		h.Enter()
		h.Exit()
	}
	if got := m.Size(); got != size {
		t.Fatalf("bounded mode grew from %d to %d words over 100 passages", size, got)
	}
}

func TestUnboundedSpaceGrows(t *testing.T) {
	cfg := Config{W: 4, N: 4}
	m := rmr.NewMemory(rmr.CC, cfg.N, nil)
	lk, err := New(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := lk.Handle(m.Proc(0))
	before := m.Size()
	for i := 0; i < 10; i++ {
		h.Enter()
		h.Exit()
	}
	if got := m.Size(); got <= before {
		t.Fatalf("unbounded mode did not grow (%d → %d words)", before, got)
	}
}

func TestVersionWraparoundStress(t *testing.T) {
	// VersionBits=1 wraps the version every 2 recycles; heavy reuse must
	// never leak a stale value (which would surface as a one-shot protocol
	// violation: a doorway landing on a non-zero Tail, double grants, or a
	// panic).
	cfg := Config{W: 2, N: 3, Bounded: true, VersionBits: 1}
	m := rmr.NewMemory(rmr.CC, cfg.N, nil)
	lk, err := New(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	handles := make([]*Handle, cfg.N)
	for i := range handles {
		handles[i] = lk.Handle(m.Proc(i))
	}
	for round := 0; round < 200; round++ {
		i := round % cfg.N
		if !handles[i].Enter() {
			t.Fatalf("round %d: Enter failed", round)
		}
		handles[i].Exit()
	}
}

func TestMisusePanics(t *testing.T) {
	m := rmr.NewMemory(rmr.CC, 2, nil)
	lk, err := New(m, Config{W: 4, N: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Run("exit without enter", func(t *testing.T) {
		h := lk.Handle(m.Proc(0))
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		h.Exit()
	})
	t.Run("enter while holding", func(t *testing.T) {
		h := lk.Handle(m.Proc(1))
		if !h.Enter() {
			t.Fatal("Enter failed")
		}
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
			h.Exit()
		}()
		h.Enter()
	})
}

func TestFreeRunningStress(t *testing.T) {
	// Ungated run with real goroutine concurrency (exercises the pool
	// bookkeeping under the race detector).
	for name, cfg := range map[string]Config{
		"unbounded": {W: 8, N: 6},
		"bounded":   {W: 8, N: 6, Bounded: true, VersionBits: 3},
	} {
		t.Run(name, func(t *testing.T) {
			m := rmr.NewMemory(rmr.CC, cfg.N, nil)
			lk, err := New(m, cfg)
			if err != nil {
				t.Fatal(err)
			}
			var inCS, violations atomic.Int32
			var wg sync.WaitGroup
			for i := 0; i < cfg.N; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					p := m.Proc(i)
					h := lk.Handle(p)
					for k := 0; k < 50; k++ {
						if i%3 == 0 && k%4 == 3 {
							p.SignalAbort()
						}
						if h.Enter() {
							if inCS.Add(1) > 1 {
								violations.Add(1)
							}
							inCS.Add(-1)
							h.Exit()
						}
						p.ClearAbort()
					}
				}(i)
			}
			wg.Wait()
			if v := violations.Load(); v != 0 {
				t.Fatalf("%d mutual-exclusion violations", v)
			}
		})
	}
}
