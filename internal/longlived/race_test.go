package longlived

// Scripted interleavings for the Cleanup switch race (Algorithm 6.3):
// two processes can both observe a pre-decrement refcount of 1 for the
// same instance epoch (the count dips to zero, a late arrival revives it,
// then drops it to zero again); both attempt the line-76 CAS and exactly
// one switch must happen, with the loser's allocations returned unused.

import (
	"testing"

	"sublock/rmr"
)

func TestCleanupCASRace(t *testing.T) {
	const nprocs = 3
	c := rmr.NewController(nprocs)
	m := rmr.NewMemory(rmr.CC, nprocs, nil)
	lk, err := New(m, Config{W: 2, N: 4})
	if err != nil {
		t.Fatal(err)
	}
	hp, hq, hr := lk.Handle(m.Proc(0)), lk.Handle(m.Proc(1)), lk.Handle(m.Proc(2))
	m.SetGate(c)

	// p acquires instance 0 / slot 0: desc read (1), desc F&A (2), tail
	// F&A (3), go[0] read (4), Head write (5).
	okP := make([]bool, 2)
	c.Go(0, func() {
		okP[0] = hp.Enter()
		hp.Exit()
		okP[1] = hp.Enter() // second passage must land on a fresh instance
		hp.Exit()
	})
	c.StepN(0, 5)

	// q enqueues behind p: desc read, desc F&A, tail F&A, go[1] read.
	var okQ bool
	c.Go(1, func() {
		okQ = hq.Enter()
		hq.Exit()
	})
	c.StepN(1, 4)

	// p exits fully: one-shot exit (head read, last write, FindNext(0) ≈ 1
	// read, go[1] write) then cleanup F&A with pre-decrement refcount 2 —
	// no switch. Generous budget; p then blocks at its second Enter's
	// first step… which Step() would execute, so stop exactly: p's exit is
	// 5 ops (head, last, 1 FindNext read, go write, desc F&A).
	c.StepN(0, 5)

	// q completes Enter (go[1] re-read, Head write) and exits up to the
	// moment *after* its cleanup F&A (pre-decrement 1: switch path) but
	// *before* its line-76 CAS: head read (cached, still an op), last
	// write, FindNext(1): root + node{2,3} reads (leaf 2 is unclaimed and
	// live) — its level-1 node {0,1} read comes first, so 3 reads —
	// go[2] write, desc F&A. That is 2 + 7 = 9 ops; the 10th would be the
	// CAS.
	c.StepN(1, 9)

	// r performs a complete passage on the *same* instance (slot 2 was
	// pre-granted by q's exit): it revives the refcount (0→1), drops it to
	// zero again, sees pre-decrement 1, and its CAS succeeds.
	var okR bool
	c.Go(2, func() {
		okR = hr.Enter()
		hr.Exit()
	})
	c.Finish(2, 10_000)
	if !okR {
		t.Fatal("r failed its passage")
	}
	if got := lk.Instances(); got != 3 {
		// 0 = original, 1 = q's pending allocation, 2 = r's installed one.
		t.Fatalf("instances = %d, want 3 (q allocated, r allocated+installed)", got)
	}

	// q resumes: its CAS must fail against r's switch, take the unalloc
	// path, and finish cleanly.
	c.Finish(1, 10_000)
	if !okQ {
		t.Fatal("q failed its passage")
	}

	// The switch must have been signalled exactly once: spin node 0 set.
	if got := m.Peek(lk.spinAddr(0)); got != 1 {
		t.Fatalf("original spin node = %d, want 1 (switch signalled)", got)
	}

	// p's second passage must use the freshly installed instance.
	c.Finish(0, 10_000)
	c.Wait()
	if !okP[0] || !okP[1] {
		t.Fatalf("p passages = %v, want both true", okP)
	}
}

func TestCleanupCASRaceBounded(t *testing.T) {
	// The same dip-revive-dip race in bounded mode, driven free-running
	// (step counts are mode-specific); the invariant checked is pool
	// conservation: after full quiescence every instance and spin node is
	// accounted for and the lock keeps functioning.
	m := rmr.NewMemory(rmr.CC, 3, nil)
	lk, err := New(m, Config{W: 2, N: 4, Bounded: true})
	if err != nil {
		t.Fatal(err)
	}
	handles := []*Handle{lk.Handle(m.Proc(0)), lk.Handle(m.Proc(1)), lk.Handle(m.Proc(2))}
	for round := 0; round < 50; round++ {
		h := handles[round%3]
		if !h.Enter() {
			t.Fatalf("round %d: enter failed", round)
		}
		h.Exit()
	}
	lk.mu.Lock()
	defer lk.mu.Unlock()
	// Conservation: live(1) + free + retired = N+2 instances; spin nodes
	// likewise across free/retired/live.
	if got := 1 + len(lk.freeLocks); got != lk.cfg.N+2 {
		t.Fatalf("instance pool conservation: live+free = %d, want %d", got, lk.cfg.N+2)
	}
	total := 1 + len(lk.freeSpins) + len(lk.retiredSpins)
	if total != 2*lk.cfg.N+4 {
		t.Fatalf("spin-node conservation: %d accounted, want %d", total, 2*lk.cfg.N+4)
	}
}
