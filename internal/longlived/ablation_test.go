package longlived

import (
	"testing"

	"sublock/rmr"
)

func TestNoSpinNodesValidation(t *testing.T) {
	m := rmr.NewMemory(rmr.CC, 2, nil)
	if _, err := New(m, Config{W: 4, N: 2, Bounded: true, NoSpinNodes: true}); err == nil {
		t.Fatal("NoSpinNodes + Bounded accepted")
	}
}

func TestNoSpinNodesPassages(t *testing.T) {
	// The ablation variant must still be a correct lock.
	m := rmr.NewMemory(rmr.CC, 3, nil)
	lk, err := New(m, Config{W: 4, N: 8, NoSpinNodes: true})
	if err != nil {
		t.Fatal(err)
	}
	handles := []*Handle{lk.Handle(m.Proc(0)), lk.Handle(m.Proc(1)), lk.Handle(m.Proc(2))}
	for round := 0; round < 20; round++ {
		h := handles[round%3]
		if !h.Enter() {
			t.Fatalf("round %d: Enter failed", round)
		}
		h.Exit()
	}
}

func TestNoSpinNodesDescriptorWait(t *testing.T) {
	// Force the descriptor-polling wait path: p uses the instance, q pins
	// the refcount, p re-enters and must poll until q's cleanup switches.
	c := rmr.NewController(2)
	m := rmr.NewMemory(rmr.CC, 2, nil)
	lk, err := New(m, Config{W: 4, N: 4, NoSpinNodes: true})
	if err != nil {
		t.Fatal(err)
	}
	hp, hq := lk.Handle(m.Proc(0)), lk.Handle(m.Proc(1))
	m.SetGate(c)

	okP := make([]bool, 2)
	c.Go(0, func() {
		okP[0] = hp.Enter()
		hp.Exit()
		okP[1] = hp.Enter()
		hp.Exit()
	})
	// p enters: desc read, desc F&A, doorway F&A, go read (granted), Head
	// write → 5 steps; in CS.
	c.StepN(0, 5)
	var okQ bool
	c.Go(1, func() {
		okQ = hq.Enter()
		hq.Exit()
	})
	// q pins the refcount and enqueues: desc read, F&A, doorway, go read.
	c.StepN(1, 4)
	// p exits (handoff to q, no switch: refcount 2→1) and re-enters: its
	// descriptor-poll loop must hold it (give it a bounded head start).
	c.StepN(0, 40)
	if okP[1] {
		t.Fatal("p re-entered the same instance without a switch")
	}
	// q completes: enters the CS, exits, switches; p proceeds.
	c.Finish(1, 100_000)
	c.Finish(0, 100_000)
	c.Wait()
	if !okP[0] || !okP[1] || !okQ {
		t.Fatalf("passages: p=%v q=%v", okP, okQ)
	}
}

func TestUnallocUnboundedPath(t *testing.T) {
	// unalloc in unbounded mode is a no-op; exercise it through the CAS
	// race (covered deterministically in race_test.go for unbounded; this
	// checks the bounded branch's pool restitution after a failed switch).
	m := rmr.NewMemory(rmr.CC, 3, nil)
	lk, err := New(m, Config{W: 2, N: 4, Bounded: true})
	if err != nil {
		t.Fatal(err)
	}
	// Drive the dip-revive-dip race repeatedly under free-running
	// concurrency; pool conservation afterwards proves every unalloc
	// returned its instances.
	handles := []*Handle{lk.Handle(m.Proc(0)), lk.Handle(m.Proc(1)), lk.Handle(m.Proc(2))}
	done := make(chan struct{})
	for i := 0; i < 3; i++ {
		i := i
		go func() {
			for k := 0; k < 40; k++ {
				if handles[i].Enter() {
					handles[i].Exit()
				}
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 3; i++ {
		<-done
	}
	lk.mu.Lock()
	defer lk.mu.Unlock()
	if got := 1 + len(lk.freeLocks); got != lk.cfg.N+2 {
		t.Fatalf("instance pool: live+free = %d, want %d", got, lk.cfg.N+2)
	}
}
