// Package longlived implements the generic transformation of §6 of the
// paper (Figure 5), converting the one-shot abortable lock into a long-lived
// starvation-free abortable lock with the same asymptotic RMR cost.
//
// The long-lived lock is a single word LockDesc packing a tuple (Lock, Spn,
// Refcnt): the current one-shot instance, the spin node associated with it,
// and a reference count of processes currently accessing the instance.
// Acquisition F&As the refcount up, obtaining the instance atomically;
// Cleanup F&As it down, and the process that drops it to zero switches the
// descriptor to fresh instances with a CAS. A process whose previous
// acquisition used the current instance busy-waits on the instance's spin
// node, which the switcher sets after a successful switch — establishing
// "LockDesc.Lock changed" in O(1) RMRs (§6).
//
// Two modes are provided:
//
//   - Unbounded (Figure 5 verbatim): every switch installs freshly allocated
//     instances, mirroring the paper's simplifying assumption that
//     allocation of initialized one-shot locks is free of charge.
//   - Bounded (§6.2): O(N) one-shot instances recycled through the
//     versioned lazy-reset scheme (reclaim.Region) and O(N) spin nodes
//     recycled under hazard announcements; see DESIGN.md (Substitutions)
//     for the deviations from Aghazadeh et al.'s reclamation scheme.
//
// The transformation preserves starvation freedom but not FCFS (§6).
package longlived

import (
	"fmt"
	"sync"

	"sublock/internal/oneshot"
	"sublock/internal/reclaim"
	"sublock/rmr"
)

// LockDesc field layout: [lock:24][spn:24][refcnt:16].
const (
	refcntBits = 16
	spnBits    = 24
	lockBits   = 24

	refcntMask = (uint64(1) << refcntBits) - 1
	spnShift   = refcntBits
	spnMask    = (uint64(1) << spnBits) - 1
	lockShift  = refcntBits + spnBits
	lockMask   = (uint64(1) << lockBits) - 1

	// decRefcnt is the F&A operand that decrements the refcount field
	// (two's-complement −1; the refcount is ≥ 1 whenever it is applied,
	// so the subtraction never borrows into the Spn field).
	decRefcnt = ^uint64(0)
)

func pack(lock, spn, refcnt uint64) uint64 {
	return lock<<lockShift | spn<<spnShift | refcnt
}

func unpack(d uint64) (lock, spn, refcnt uint64) {
	return d >> lockShift & lockMask, d >> spnShift & spnMask, d & refcntMask
}

// Config configures a long-lived lock.
type Config struct {
	// W is the tree arity of the underlying one-shot lock; 2 ≤ W ≤ 64.
	W int
	// N is the number of processes; N < 2^16.
	N int
	// Adaptive selects AdaptiveFindNext in the one-shot instances.
	Adaptive bool
	// Bounded enables the §6.2 memory management: O(N) recycled one-shot
	// instances and spin nodes instead of fresh allocation per switch.
	Bounded bool
	// VersionBits is the version-field width for bounded-mode lazy reset
	// (wraparound is defeated by the eager sweep; small values are valid
	// and make wraparound testable). 0 selects the default of 16.
	VersionBits uint
	// NoSpinNodes is an ablation knob: instead of waiting on the switched
	// instance's spin node, a process that already used the current
	// instance re-reads LockDesc until Lock changes. §6 argues this costs
	// up to N−1 RMRs per wait (every Refcnt change invalidates the reader's
	// copy); experiment E13 measures exactly that.
	NoSpinNodes bool
}

// Lock is a long-lived abortable lock. Obtain a per-process Handle to
// operate it.
type Lock struct {
	m    *rmr.Memory
	cfg  Config
	desc rmr.Addr // LockDesc

	hazards rmr.Addr // bounded: hazard[0..N-1], protected spn index + 1

	// Pool bookkeeping. The mutex guards only the Go-level free/retired
	// lists (the paper's "allocate" steps, which it treats as free of
	// charge); every shared-memory effect of recycling — version sweeps,
	// spin-node resets, hazard reads — goes through a Proc and is charged
	// RMRs. The mutex is never held across a Proc operation, which matters
	// under gated scheduling.
	mu           sync.Mutex
	instances    []*instance
	spins        []rmr.Addr
	freeLocks    []int // bounded
	freeSpins    []int // bounded
	retiredSpins []int // bounded: awaiting a hazard scan
}

// instance couples a one-shot lock with its recycling region (nil when the
// lock runs in unbounded mode).
type instance struct {
	os     *oneshot.Lock
	region *reclaim.Region
}

// handle returns a fresh one-shot handle for process p, routed through the
// versioned accessor in bounded mode.
func (ins *instance) handle(p *rmr.Proc) *oneshot.Handle {
	if ins.region != nil {
		return ins.os.HandleWith(p, ins.region.Accessor(p))
	}
	return ins.os.Handle(p)
}

// New allocates a long-lived lock in m. The memory must use the CC model:
// the paper's long-lived construction is for CC only (Table 1).
func New(m *rmr.Memory, cfg Config) (*Lock, error) {
	if m.Model() != rmr.CC {
		return nil, fmt.Errorf("longlived: requires the CC memory model")
	}
	if cfg.N < 1 || uint64(cfg.N) >= 1<<refcntBits {
		return nil, fmt.Errorf("longlived: N=%d outside [1, %d)", cfg.N, 1<<refcntBits)
	}
	if cfg.NoSpinNodes && cfg.Bounded {
		// Descriptor polling identifies instances by index, which bounded
		// mode reuses; the resulting ABA would let a waiter miss a switch
		// and spin past quiescence. The ablation is unbounded-only.
		return nil, fmt.Errorf("longlived: NoSpinNodes requires unbounded mode")
	}
	if cfg.VersionBits == 0 {
		cfg.VersionBits = 16
	}
	l := &Lock{m: m, cfg: cfg}

	if !cfg.Bounded {
		ins, err := l.freshInstance()
		if err != nil {
			return nil, err
		}
		l.instances = []*instance{ins}
		l.spins = []rmr.Addr{m.Alloc(0)}
		l.desc = m.Alloc(pack(0, 0, 0))
		m.Label(l.spins[0], 1, "longlived/spinnode")
		m.Label(l.desc, 1, "longlived/lockdesc")
		return l, nil
	}

	// Bounded mode: N+2 recyclable instances and 2N+4 spin nodes cover the
	// worst case of one in-flight allocation per process plus the live pair
	// plus up to N hazard-protected spin nodes.
	l.hazards = m.AllocN(cfg.N, 0)
	for i := 0; i < cfg.N+2; i++ {
		ins, err := l.freshBoundedInstance()
		if err != nil {
			return nil, err
		}
		l.instances = append(l.instances, ins)
		if i > 0 {
			l.freeLocks = append(l.freeLocks, i)
		}
	}
	nspins := 2*cfg.N + 4
	spinBase := m.AllocN(nspins, 0)
	l.spins = make([]rmr.Addr, nspins)
	for i := range l.spins {
		l.spins[i] = spinBase + rmr.Addr(i)
	}
	for i := 1; i < nspins; i++ {
		l.freeSpins = append(l.freeSpins, i)
	}
	l.desc = m.Alloc(pack(0, 0, 0))
	m.Label(l.hazards, cfg.N, "longlived/hazard")
	m.Label(spinBase, nspins, "longlived/spinnode")
	m.Label(l.desc, 1, "longlived/lockdesc")
	return l, nil
}

func (l *Lock) oneshotConfig() oneshot.Config {
	return oneshot.Config{W: l.cfg.W, N: l.cfg.N, Adaptive: l.cfg.Adaptive}
}

// freshInstance builds an unbounded-mode instance directly in the memory.
func (l *Lock) freshInstance() (*instance, error) {
	os, err := oneshot.New(l.m, l.oneshotConfig())
	if err != nil {
		return nil, fmt.Errorf("longlived: %w", err)
	}
	return &instance{os: os}, nil
}

// freshBoundedInstance builds an instance inside its own versioned region.
func (l *Lock) freshBoundedInstance() (*instance, error) {
	region, err := reclaim.NewRegion(l.m, l.cfg.VersionBits)
	if err != nil {
		return nil, fmt.Errorf("longlived: %w", err)
	}
	os, err := oneshot.New(region, l.oneshotConfig())
	if err != nil {
		return nil, fmt.Errorf("longlived: %w", err)
	}
	region.Seal()
	return &instance{os: os, region: region}, nil
}

// Handle returns process p's handle to the lock.
func (l *Lock) Handle(p *rmr.Proc) *Handle {
	return &Handle{l: l, p: p, oldSpn: -1}
}

// Handle is one process's interface to the long-lived lock. It is not safe
// for concurrent use by multiple goroutines.
type Handle struct {
	l      *Lock
	p      *rmr.Proc
	oldSpn int // spin node of the last instance this process accessed

	cur *oneshot.Handle // between a successful Enter and its Exit
}

// Enter attempts to acquire the lock (Algorithm 6.1), returning false if
// the process's abort signal arrives while waiting — either on the spin
// node guarding instance reuse or inside the one-shot instance itself.
func (h *Handle) Enter() bool {
	if h.cur != nil {
		panic("longlived: Enter while holding the lock")
	}
	h.p.EnterPhase(rmr.PhaseDoorway)
	// Lines 57–61: if the current instance is the one we used last, wait
	// for the switch (signalled through its spin node).
	lck, spn, _ := unpack(h.p.Read(h.l.desc))
	if int(spn) == h.oldSpn {
		h.p.EnterPhase(rmr.PhaseWaiting)
		if h.l.cfg.NoSpinNodes {
			// Ablation: poll the descriptor itself. Every concurrent
			// Refcnt F&A invalidates our copy, so this wait can cost up to
			// N−1 RMRs before Lock changes — the cost spin nodes avoid.
			for {
				d := h.p.Read(h.l.desc)
				l2, _, _ := unpack(d)
				if l2 != lck {
					break
				}
				if h.p.AbortSignal() {
					h.p.EnterPhase(rmr.PhaseAbort)
					h.p.EnterPhase(rmr.PhaseIdle)
					return false
				}
				// Any change to the packed descriptor (including refcount
				// churn) wakes us; only a lock-index change ends the wait.
				h.p.Wait(h.l.desc, d)
			}
		} else {
			spinAddr := h.l.spinAddr(int(spn))
			for h.p.Read(spinAddr) == 0 {
				if h.p.AbortSignal() {
					h.p.EnterPhase(rmr.PhaseAbort)
					h.p.EnterPhase(rmr.PhaseIdle)
					return false
				}
				h.p.Wait(spinAddr, 0)
			}
		}
		h.p.EnterPhase(rmr.PhaseDoorway)
	}
	// Line 62: increment Refcnt, atomically obtaining Lock and Spn.
	lockIdx, spnIdx, _ := unpack(h.p.FAA(h.l.desc, 1))
	if h.l.cfg.Bounded {
		// Announce the spin node we may later busy-wait on, so it cannot be
		// recycled while our oldSpn refers to it. Publishing while holding
		// the refcount guarantees the announcement precedes any switch.
		h.p.Write(h.l.hazards+rmr.Addr(h.p.ID()), spnIdx+1)
	}
	osh := h.l.instance(int(lockIdx)).handle(h.p)
	osh.SetNested()   // this passage ends at the wrapper's boundaries, not the instance's
	if !osh.Enter() { // line 63
		h.cleanup() // runs in PhaseAbort, where the instance's abort left us
		h.p.EnterPhase(rmr.PhaseIdle)
		return false
	}
	h.cur = osh
	return true
}

// Exit releases the lock (Algorithm 6.2). It panics if the process does not
// hold it.
func (h *Handle) Exit() {
	if h.cur == nil {
		panic("longlived: Exit without holding the lock")
	}
	h.cur.Exit() // leaves us in PhaseExit (nested handle), so cleanup is attributed there
	h.cur = nil
	h.cleanup()
	h.p.EnterPhase(rmr.PhaseIdle)
}

// cleanup is Algorithm 6.3: drop our reference and, if we were the last
// user of the instance, switch the descriptor to fresh instances and wake
// the processes waiting for the switch.
func (h *Handle) cleanup() {
	oldLock, oldSpn, refcnt := unpack(h.p.FAA(h.l.desc, decRefcnt))
	h.oldSpn = int(oldSpn)
	if refcnt != 1 {
		return
	}
	newLock := h.l.allocLock(h.p)
	newSpn := h.l.allocSpn(h.p)
	old := pack(oldLock, oldSpn, 0)
	next := pack(uint64(newLock), uint64(newSpn), 0)
	if h.p.CAS(h.l.desc, old, next) {
		h.p.Write(h.l.spinAddr(int(oldSpn)), 1) // line 77: oldSpn.go ← true
		h.l.retire(int(oldLock), int(oldSpn))
	} else {
		h.l.unalloc(newLock, newSpn)
	}
}

// spinAddr returns the shared word of spin node idx.
func (l *Lock) spinAddr(idx int) rmr.Addr {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.spins[idx]
}

// instance returns instance idx.
func (l *Lock) instance(idx int) *instance {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.instances[idx]
}

// allocLock returns a ready-to-install instance index: a recycled one in
// bounded mode (version bumped and swept by p), a freshly built one in
// unbounded mode.
func (l *Lock) allocLock(p *rmr.Proc) int {
	if !l.cfg.Bounded {
		ins, err := l.freshInstance()
		if err != nil {
			// Construction can only fail on invalid configuration, which
			// New already validated.
			panic(fmt.Sprintf("longlived: fresh instance: %v", err))
		}
		l.mu.Lock()
		defer l.mu.Unlock()
		l.instances = append(l.instances, ins)
		if uint64(len(l.instances)) > lockMask {
			panic("longlived: unbounded mode exceeded 2^24 instance switches")
		}
		return len(l.instances) - 1
	}
	l.mu.Lock()
	idx := l.freeLocks[len(l.freeLocks)-1]
	l.freeLocks = l.freeLocks[:len(l.freeLocks)-1]
	ins := l.instances[idx]
	l.mu.Unlock()
	ins.region.Recycle(p) // outside the mutex: performs gated memory writes
	return idx
}

// allocSpn returns a spin node index whose word reads 0.
func (l *Lock) allocSpn(p *rmr.Proc) int {
	if !l.cfg.Bounded {
		a := l.m.Alloc(0)
		l.m.Label(a, 1, "longlived/spinnode")
		l.mu.Lock()
		defer l.mu.Unlock()
		l.spins = append(l.spins, a)
		if uint64(len(l.spins)) > spnMask {
			panic("longlived: unbounded mode exceeded 2^24 spin nodes")
		}
		return len(l.spins) - 1
	}
	for {
		l.mu.Lock()
		if n := len(l.freeSpins); n > 0 {
			idx := l.freeSpins[n-1]
			l.freeSpins = l.freeSpins[:n-1]
			addr := l.spins[idx]
			l.mu.Unlock()
			p.Write(addr, 0) // reset the go flag left by its previous retire
			return idx
		}
		// Claim the retired list and scan hazards outside the mutex.
		retired := l.retiredSpins
		l.retiredSpins = nil
		l.mu.Unlock()
		hazarded := make(map[int]bool, l.cfg.N)
		for q := 0; q < l.cfg.N; q++ {
			if v := p.Read(l.hazards + rmr.Addr(q)); v != 0 {
				hazarded[int(v-1)] = true
			}
		}
		var freed, kept []int
		for _, idx := range retired {
			if hazarded[idx] {
				kept = append(kept, idx)
			} else {
				freed = append(freed, idx)
			}
		}
		l.mu.Lock()
		l.freeSpins = append(l.freeSpins, freed...)
		l.retiredSpins = append(l.retiredSpins, kept...)
		l.mu.Unlock()
	}
}

// retire records that a switched-out instance and spin node are done with.
func (l *Lock) retire(lockIdx, spnIdx int) {
	if !l.cfg.Bounded {
		return // unbounded: switched-out objects are simply abandoned
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	// The instance is quiescent the moment it is switched out (its refcount
	// was zero and the descriptor no longer reaches it), so it returns to
	// the free pool directly. The spin node may still be referenced by
	// processes' oldSpn, so it waits for a hazard scan.
	l.freeLocks = append(l.freeLocks, lockIdx)
	l.retiredSpins = append(l.retiredSpins, spnIdx)
}

// unalloc returns instances allocated for a switch that lost its CAS. They
// were never visible to other processes, so they are immediately reusable.
func (l *Lock) unalloc(lockIdx, spnIdx int) {
	if !l.cfg.Bounded {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.freeLocks = append(l.freeLocks, lockIdx)
	l.freeSpins = append(l.freeSpins, spnIdx)
}

// Instances reports how many one-shot instances back the lock so far: a
// constant N+2 in bounded mode, growing with switches in unbounded mode.
func (l *Lock) Instances() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.instances)
}
