package harness

import (
	"fmt"

	"sublock/rmr"
)

// PointContention regenerates experiment E15: per-passage RMR cost as the
// number of *actually contending* processes k sweeps while the lock stays
// sized for a large N. Jayanti's lock is adaptive to point contention
// (O(min(k, log N))); our tournament stand-in is not (it climbs the full
// Θ(log N) tree even for k = 2), which is the honestly-measured caveat of
// the Table 1 substitution (see DESIGN.md). The paper's lock is O(1) here
// regardless of k or N — no process aborts.
func PointContention(capacity, w int, ks []int) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("E15 — point contention: passage RMRs vs active processes k (capacity N=%d)", capacity),
		Note: "no aborts; max (mean) RMRs per passage;\n" +
			"tournament is deliberately non-adaptive here — the documented gap vs Jayanti's O(min(k, log N))",
		Columns: []string{"algorithm"},
	}
	for _, k := range ks {
		t.Columns = append(t.Columns, fmt.Sprintf("k=%d", k))
	}
	for _, algo := range append([]Algo{AlgoMCS}, Table1Algos...) {
		row := []string{string(algo)}
		for _, k := range ks {
			if k > capacity {
				row = append(row, "—")
				continue
			}
			res, err := queueAtCapacity(algo, w, capacity, k)
			if err != nil {
				return nil, err
			}
			row = append(row, res.Passages.Cell())
		}
		t.AddRow(row...)
	}
	return t, nil
}

// queueAtCapacity is QueueWorkload with the lock sized for capacity slots
// but only k processes running.
func queueAtCapacity(algo Algo, w, capacity, k int) (*QueueResult, error) {
	m := newMemory(rmr.CC, k)
	fn, err := BuildCap(m, algo, w, capacity)
	if err != nil {
		return nil, err
	}
	release := make(chan struct{})
	passages := make([]*passage, k)
	for i := 0; i < k; i++ {
		ps := launch(m.Proc(i), fn(m.Proc(i)), release)
		ps.awaitEnqueued()
		passages[i] = ps
	}
	close(release)
	res := &QueueResult{}
	for i, ps := range passages {
		<-ps.done
		if !ps.ok {
			return nil, fmt.Errorf("harness: %s process %d failed its passage", algo, i)
		}
		res.Passages = append(res.Passages, ps.rmrs)
	}
	res.Words = m.Size()
	return res, nil
}
