package harness

import (
	"fmt"
	"sync/atomic"

	"sublock/rmr"
)

// ExhaustiveBody returns an rmr.Body that builds algo fresh, runs one
// passage per process, and checks the Theorem 2 safety properties (mutual
// exclusion; every non-aborter completes). Processes in [0, aborters)
// receive their abort signal from a dedicated signal process — id n, so
// the body schedules n+1 processes when aborters > 0 — whose single step
// the explorer places at every possible point in the schedule.
//
// The body satisfies the Explorer's determinism contract (all state is
// rebuilt per run, processes are launched with GoProc) and is safe for
// Workers > 1: concurrent invocations share nothing.
func ExhaustiveBody(model rmr.Model, algo Algo, w, n, aborters int) rmr.Body {
	return func(s *rmr.Scheduler, budget int) error {
		nprocs := n
		if aborters > 0 {
			nprocs++
		}
		m := rmr.NewMemory(model, nprocs, nil)
		fn, err := Build(m, algo, w, n)
		if err != nil {
			return err
		}
		m.SetGate(s)
		var inCS, violations atomic.Int32
		entered := make([]bool, n)
		for i := 0; i < n; i++ {
			i := i
			h := fn(m.Proc(i))
			s.GoProc(i, func() {
				if h.Enter() {
					if inCS.Add(1) > 1 {
						violations.Add(1)
					}
					entered[i] = true
					inCS.Add(-1)
					h.Exit()
				}
			})
		}
		if aborters > 0 {
			p := m.Proc(nprocs - 1)
			scratch := m.Alloc(0)
			s.GoProc(nprocs-1, func() {
				p.Read(scratch)
				for v := 0; v < aborters; v++ {
					m.Proc(v).SignalAbort()
				}
			})
		}
		if err := s.Run(budget); err != nil {
			for i := 0; i < nprocs; i++ {
				m.Proc(i).SignalAbort()
			}
			s.Drain()
			return err
		}
		if violations.Load() != 0 {
			return fmt.Errorf("mutual exclusion violated")
		}
		for i := aborters; i < n; i++ {
			if !entered[i] {
				return fmt.Errorf("process %d starved", i)
			}
		}
		return nil
	}
}
