package harness

import (
	"fmt"
	"sync/atomic"

	"sublock/locks"
	"sublock/rmr"
)

// ExhaustiveBody returns an rmr.Body that builds algo fresh, runs one
// passage per process, and checks the Theorem 2 safety properties (mutual
// exclusion; every non-aborter completes). Processes in [0, aborters)
// receive their abort signal from a dedicated signal process — id n, so
// the body schedules n+1 processes when aborters > 0 — whose single step
// the explorer places at every possible point in the schedule.
//
// The body satisfies the Explorer's determinism contract (all state is
// rebuilt per run, processes are launched with GoProc) and is safe for
// Workers > 1: concurrent invocations share nothing.
func ExhaustiveBody(model rmr.Model, algo Algo, w, n, aborters int) rmr.Body {
	return exhaustiveBody(model, algo, w, n, aborters, nil)
}

// exhaustiveBody is ExhaustiveBody with an optional tracer installed on each
// run's memory before the schedule starts — the hook ReplayTraced uses to
// flight-record a violating schedule. The tracer must not change behavior,
// or the replayed run diverges from the explored one.
func exhaustiveBody(model rmr.Model, algo Algo, w, n, aborters int, tracer rmr.Tracer) rmr.Body {
	return func(s *rmr.Scheduler, budget int) error {
		nprocs := n
		if aborters > 0 {
			nprocs++
		}
		m := newMemory(model, nprocs)
		fn, err := Build(m, algo, w, n)
		if err != nil {
			return err
		}
		if tracer != nil {
			m.SetTracer(tracer)
		}
		m.SetGate(s)
		var inCS, violations atomic.Int32
		entered := make([]bool, n)
		for i := 0; i < n; i++ {
			i := i
			h := fn(m.Proc(i))
			s.GoProc(i, func() {
				if h.Enter() {
					if inCS.Add(1) > 1 {
						violations.Add(1)
					}
					entered[i] = true
					inCS.Add(-1)
					h.Exit()
				}
			})
		}
		if aborters > 0 {
			p := m.Proc(nprocs - 1)
			scratch := m.Alloc(0)
			s.GoProc(nprocs-1, func() {
				p.Read(scratch)
				for v := 0; v < aborters; v++ {
					m.Proc(v).SignalAbort()
				}
			})
		}
		if err := s.Run(budget); err != nil {
			for i := 0; i < nprocs; i++ {
				m.Proc(i).SignalAbort()
			}
			s.Drain()
			return err
		}
		if violations.Load() != 0 {
			return fmt.Errorf("mutual exclusion violated")
		}
		for i := aborters; i < n; i++ {
			if !entered[i] {
				return fmt.Errorf("process %d starved", i)
			}
		}
		return nil
	}
}

// ExploreConfig parameterizes Explore: the lock configuration (as for
// ExhaustiveBody) plus the rmr.Explorer knobs to run it under.
type ExploreConfig struct {
	Model    rmr.Model
	Algo     Algo
	W        int
	N        int
	Aborters int

	MaxSteps     int           // schedule length bound
	MaxSchedules int           // replay cap; 0 = none
	Workers      int           // parallel workers; ≤1 = sequential
	Reduction    rmr.Reduction // rmr.SleepSets enables partial-order reduction
	Monitor      *rmr.Monitor  // optional live progress counters

	Visited    bool // state-hash visited caching
	VisitedCap int  // visited-set capacity; 0 = rmr default
	// Symmetry enables the Explorer's process-id symmetry reduction. It is
	// applied only when the lock's registry entry is IDSymmetric; the
	// interchangeability classes follow the body's roles (aborters,
	// non-aborters, the signal process — see SymmetryClasses).
	Symmetry   bool
	Shard      int // shard index in [0, ShardCount)
	ShardCount int // top-level tree split; 0 = unsharded
}

// SymmetryClasses returns the process-interchangeability partition of the
// exhaustive body under cfg, or nil when the symmetry reduction must stay
// off (lock not registered id-symmetric, or unknown). Within the body,
// aborters (ids [0, Aborters)) run one program, the remaining lock
// processes another, and the dedicated signal process (id N) a third —
// ids are interchangeable exactly within those roles.
func (cfg ExploreConfig) SymmetryClasses() [][]int {
	info, ok := locks.Lookup(string(cfg.Algo))
	if !ok || !info.IDSymmetric {
		return nil
	}
	var classes [][]int
	appendRange := func(lo, hi int) {
		if hi-lo < 2 {
			return // singleton classes are implicit
		}
		ids := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			ids = append(ids, i)
		}
		classes = append(classes, ids)
	}
	appendRange(0, cfg.Aborters)
	appendRange(cfg.Aborters, cfg.N)
	return classes
}

// Procs returns the number of scheduled processes the exploration runs:
// N, plus the dedicated abort-signal process when Aborters > 0.
func (cfg ExploreConfig) Procs() int {
	if cfg.Aborters > 0 {
		return cfg.N + 1
	}
	return cfg.N
}

// Explore runs the bounded-exhaustive exploration the CLIs and the
// conformance suite share: rmr.Explorer over ExhaustiveBody with the
// config's knobs. Violations surface as *rmr.ErrExplore, replayable with
// ReplayTraced under the same config.
func Explore(cfg ExploreConfig) (rmr.Result, error) {
	e := cfg.explorer()
	body := ExhaustiveBody(cfg.Model, cfg.Algo, cfg.W, cfg.N, cfg.Aborters)
	return e.Run(cfg.Procs(), body)
}

// explorer builds the rmr.Explorer for cfg. The symmetry knob is honored
// only when the lock is registered id-symmetric and a non-trivial class
// exists; everything else passes through.
func (cfg ExploreConfig) explorer() *rmr.Explorer {
	e := &rmr.Explorer{
		MaxSteps:     cfg.MaxSteps,
		MaxSchedules: cfg.MaxSchedules,
		Workers:      cfg.Workers,
		Reduction:    cfg.Reduction,
		Monitor:      cfg.Monitor,
		Visited:      cfg.Visited,
		VisitedCap:   cfg.VisitedCap,
		Shard:        cfg.Shard,
		ShardCount:   cfg.ShardCount,
	}
	if cfg.Symmetry {
		if classes := cfg.SymmetryClasses(); classes != nil {
			e.Symmetry = true
			e.SymmetryClasses = classes
		}
	}
	return e
}

// CheckpointKey is the opaque configuration key ExploreCheckpoint stores
// in the artifact: everything outside the rmr.Explorer knobs that shapes
// the explored tree. Resuming under a different key is refused.
func (cfg ExploreConfig) CheckpointKey() string {
	return fmt.Sprintf("%s/model=%d/w=%d/n=%d/ab=%d", cfg.Algo, cfg.Model, cfg.W, cfg.N, cfg.Aborters)
}

// ExploreCheckpoint is Explore with frontier checkpointing: resume is a
// prior run's artifact (nil for a fresh start) and the returned checkpoint
// carries the pending frontier when MaxSchedules capped the search. The
// deep-explore CI job chains these across pushes.
func ExploreCheckpoint(cfg ExploreConfig, resume *rmr.Checkpoint) (rmr.Result, *rmr.Checkpoint, error) {
	e := cfg.explorer()
	body := ExhaustiveBody(cfg.Model, cfg.Algo, cfg.W, cfg.N, cfg.Aborters)
	return e.RunCheckpoint(cfg.Procs(), body, cfg.CheckpointKey(), resume)
}

// ReplayTraced re-runs one schedule of the exhaustive body — as reported by
// a *rmr.ErrExplore from an exploration over ExhaustiveBody with the same
// parameters — with a flight-recorder ring tracer installed. It returns the
// ring holding the schedule's last ringSize events and the property
// violation the replay reproduced (nil if the run unexpectedly passes,
// which indicates mismatched parameters).
func ReplayTraced(model rmr.Model, algo Algo, w, n, aborters int, schedule []int, maxSteps, ringSize int) (*rmr.Ring, error) {
	ring := rmr.NewRing(ringSize)
	body := exhaustiveBody(model, algo, w, n, aborters, ring.Record)
	nprocs := n
	if aborters > 0 {
		nprocs++
	}
	s := rmr.NewScheduler(nprocs, rmr.ReplayPick(schedule))
	return ring, body(s, maxSteps)
}
