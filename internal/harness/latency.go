package harness

import (
	"fmt"
	"strings"

	"sublock/locks"
	"sublock/rmr"
)

// LatencyTable generates E17: the simulated-latency experiment over the
// full lock registry. Every registered lock runs the gated queue-drain
// workload (the Table 1 "No aborts" configuration under a fixed-seed
// scheduler; see gated.go) under every memory model it supports, once per
// named cost model, and each cell reports the nearest-rank p50/p95/p99 of
// the per-passage simulated latency in nanoseconds. Cost models are
// observe-only — every column prices the same deterministic schedule — so
// the table isolates what each latency model makes of the same execution:
// under CC-NUMA pricing the queue locks' O(1) handoffs stay flat while the
// tournament's log-depth passages multiply, and under DSM-remote pricing
// every charged op is an order of magnitude dearer.
//
// costs names the models to price (rmr.CostModelNames() order is the
// conventional choice), seed is the shared cost-model seed, and nprocs is
// the queue depth. Each (lock, model, cost) cell is bit-deterministic in
// (seed, nprocs).
func LatencyTable(costs []string, seed int64, nprocs int) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("E17 — simulated passage latency by cost model, full queue drain, N=%d", nprocs),
		Note: fmt.Sprintf("cells: p50/p95/p99 simulated ns per passage (nearest rank); cost seed %d; "+
			"gated fixed-seed schedule — pricing is observe-only, so all columns price the same run", seed),
		Columns: []string{"algorithm", "model"},
	}
	models := make([]rmr.CostModel, len(costs))
	for i, name := range costs {
		cm, err := rmr.NewCostModel(name, seed)
		if err != nil {
			return nil, err
		}
		models[i] = cm
		t.Columns = append(t.Columns, "cost="+cm.Name())
	}
	for _, info := range locks.Infos() {
		memModels := []rmr.Model{rmr.CC}
		if !info.CCOnly {
			memModels = append(memModels, rmr.DSM)
		}
		for _, model := range memModels {
			row := []string{info.Name, strings.ToLower(model.String())}
			for _, cm := range models {
				res, err := QueueWorkloadCost(model, cm, Algo(info.Name), DefaultW, nprocs)
				if err != nil {
					return nil, fmt.Errorf("%s/%s/cost=%s: %w", info.Name, model, cm.Name(), err)
				}
				row = append(row, latencyCell(res.Sim))
			}
			t.AddRow(row...)
		}
	}
	return t, nil
}

// latencyCell formats a simulated-latency series as "p50/p95/p99".
func latencyCell(s Series) string {
	if len(s) == 0 {
		return "—"
	}
	return fmt.Sprintf("%d/%d/%d",
		s.Percentile(0.50), s.Percentile(0.95), s.Percentile(0.99))
}
