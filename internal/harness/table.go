package harness

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a formatted experiment result: a titled grid with a column
// header, printed in the plain-text style of the paper's tables.
type Table struct {
	Title   string
	Note    string // provenance / expectation note printed under the title
	Columns []string
	Rows    [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Fprint renders the table to w.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "%s\n", t.Title)
	if t.Note != "" {
		for _, line := range strings.Split(t.Note, "\n") {
			fmt.Fprintf(w, "  %s\n", line)
		}
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = runeLen(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && runeLen(cell) > widths[i] {
				widths[i] = runeLen(cell)
			}
		}
	}
	printRow := func(cells []string) {
		var b strings.Builder
		b.WriteString("  ")
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(cell, widths[i]))
		}
		fmt.Fprintln(w, strings.TrimRight(b.String(), " "))
	}
	printRow(t.Columns)
	rule := make([]string, len(t.Columns))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	printRow(rule)
	for _, row := range t.Rows {
		printRow(row)
	}
	fmt.Fprintln(w)
}

// String renders the table as a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// FprintCSV renders the table as RFC-4180 CSV (header row then data rows),
// for feeding the figure series into external plotting tools.
func (t *Table) FprintCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func runeLen(s string) int { return len([]rune(s)) }

func pad(s string, w int) string {
	if n := w - runeLen(s); n > 0 {
		return s + strings.Repeat(" ", n)
	}
	return s
}
