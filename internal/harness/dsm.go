package harness

import (
	"fmt"

	"sublock/rmr"
)

// DSMTable regenerates experiment E16: the one-shot lock's Table 1 row
// under the *DSM* cost model, where the paper also claims O(log_W N)
// worst-case and O(1) no-abort cost (the "CC/DSM" entry). Both workloads
// of E1/E2 run with every word charged by ownership instead of coherence;
// the lock automatically uses the §3 announce/spin-bit indirection so that
// all busy waiting is local. The two rows compare the adaptive and plain
// FindNext variants: under DSM the Figure 4 gap surfaces directly in the
// no-abort column's max (the boundary slot's full ascent), while the
// adaptive row stays flat. Unbounded-wait costs are E10's subject.
func DSMTable(ns []int, w int) (*Table, error) {
	t := &Table{
		Title:   "E16 — DSM model: the paper's one-shot lock (Table 1 row, CC/DSM claim)",
		Note:    "cells: no-abort queue max (mean) / all-but-one-abort holder passage RMRs",
		Columns: []string{"variant"},
	}
	for _, n := range ns {
		t.Columns = append(t.Columns, fmt.Sprintf("N=%d", n))
	}
	for _, variant := range []struct {
		name string
		algo Algo
	}{
		{"indirection (§3)", AlgoPaper},
		{"plain FindNext", AlgoPaperPlain},
	} {
		row := []string{variant.name}
		for _, n := range ns {
			queue, err := QueueWorkloadModel(rmr.DSM, variant.algo, w, n)
			if err != nil {
				return nil, err
			}
			storm, err := AbortStormModel(rmr.DSM, variant.algo, w, n-2, false)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%s / %d", queue.Passages.Cell(), storm.HolderPassage))
		}
		t.AddRow(row...)
	}
	return t, nil
}
