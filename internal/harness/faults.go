package harness

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync/atomic"

	"sublock/rmr"
)

// ParseFaults parses the CLI fault syntax — comma-separated
// "kind:pid@op[+delay]" specs, e.g. "crash:0@4,stall:1@2+15" — into a
// fault plan. Kinds are "crash" and "stall" (a stall requires a +delay
// window); restart faults need a recovery body and are scripted in code
// via rmr.FaultPlan.Restart. An empty spec yields a nil plan.
func ParseFaults(spec string) (*rmr.FaultPlan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return nil, nil
	}
	var plan rmr.FaultPlan
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		kindStr, rest, ok := strings.Cut(field, ":")
		if !ok {
			return nil, fmt.Errorf("fault %q: want kind:pid@op[+delay]", field)
		}
		var kind rmr.FaultKind
		switch kindStr {
		case "crash":
			kind = rmr.FaultCrash
		case "stall":
			kind = rmr.FaultStall
		default:
			return nil, fmt.Errorf("fault %q: unknown kind %q (want crash or stall)", field, kindStr)
		}
		pidStr, rest, ok := strings.Cut(rest, "@")
		if !ok {
			return nil, fmt.Errorf("fault %q: missing @op", field)
		}
		opStr, delayStr, hasDelay := strings.Cut(rest, "+")
		pid, err := strconv.Atoi(pidStr)
		if err != nil || pid < 0 {
			return nil, fmt.Errorf("fault %q: bad process id %q", field, pidStr)
		}
		op, err := strconv.Atoi(opStr)
		if err != nil || op < 1 {
			return nil, fmt.Errorf("fault %q: bad operation index %q (1-based)", field, opStr)
		}
		sp := rmr.FaultSpec{Proc: pid, Kind: kind, Op: op}
		if hasDelay {
			sp.Delay, err = strconv.Atoi(delayStr)
			if err != nil || sp.Delay < 1 {
				return nil, fmt.Errorf("fault %q: bad delay %q", field, delayStr)
			}
		}
		if kind == rmr.FaultStall && sp.Delay == 0 {
			return nil, fmt.Errorf("fault %q: a stall needs a +delay window", field)
		}
		plan.Faults = append(plan.Faults, sp)
	}
	return &plan, nil
}

// ParseCrashPoints parses the -crash-points CLI syntax — comma-separated
// 1-based operation attempts, e.g. "1,2,3,5,8" — into the explicit Ops
// list of an rmr.FaultSet.
func ParseCrashPoints(spec string) ([]int, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var ops []int
	for _, field := range strings.Split(spec, ",") {
		op, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil || op < 1 {
			return nil, fmt.Errorf("crash point %q: want a 1-based operation attempt", field)
		}
		ops = append(ops, op)
	}
	return ops, nil
}

// FaultBody returns the fault-tolerant variant of ExhaustiveBody: the same
// one-passage-per-process run, with the Theorem 2 completion property
// weakened to survivors only — a process the installed fault plan crashed
// (or that a restart replaced) is exempt from the "every non-aborter
// completes" check, which the body derives from the scheduler's fault log
// rather than from the plan, so only faults that actually fired count.
// Mutual exclusion remains unconditional: a crash may abandon a queue slot
// but must never let two survivors into the critical section.
//
// The body does not install a plan itself; the caller arms the scheduler
// (rmr.Explorer.RunFaults, or SetFaultPlan for a seeded run).
func FaultBody(model rmr.Model, algo Algo, w, n, aborters int) rmr.Body {
	return func(s *rmr.Scheduler, budget int) error {
		nprocs := n
		if aborters > 0 {
			nprocs++
		}
		m := newMemory(model, nprocs)
		fn, err := Build(m, algo, w, n)
		if err != nil {
			return err
		}
		m.SetGate(s)
		var inCS, violations atomic.Int32
		entered := make([]bool, n)
		for i := 0; i < n; i++ {
			i := i
			h := fn(m.Proc(i))
			s.GoProc(i, func() {
				if h.Enter() {
					if inCS.Add(1) > 1 {
						violations.Add(1)
					}
					entered[i] = true
					inCS.Add(-1)
					h.Exit()
				}
			})
		}
		if aborters > 0 {
			p := m.Proc(nprocs - 1)
			scratch := m.Alloc(0)
			s.GoProc(nprocs-1, func() {
				p.Read(scratch)
				for v := 0; v < aborters; v++ {
					m.Proc(v).SignalAbort()
				}
			})
		}
		if err := s.Run(budget); err != nil {
			// A crash can wedge survivors beyond cooperation (a non-abortable
			// spin loop over an abandoned lock never exits), so the stalled
			// run is killed rather than drained.
			s.DrainKill()
			return err
		}
		if violations.Load() != 0 {
			return fmt.Errorf("mutual exclusion violated")
		}
		gone := make(map[int]bool)
		for _, flt := range s.Faults() {
			switch flt.Kind {
			case rmr.FaultCrash, rmr.FaultRestart, rmr.FaultPanic:
				gone[flt.Proc] = true
			}
		}
		for i := aborters; i < n; i++ {
			if !entered[i] && !gone[i] {
				return fmt.Errorf("process %d starved", i)
			}
		}
		return nil
	}
}

// Faults extends ExploreConfig with the fault-injection knobs of
// ExploreFaults: the crash-point space to branch over and the starvation
// watchdog bound.
type Faults struct {
	// CrashPoints are the 1-based operation attempts at which each victim
	// is crashed (rmr.FaultSet.Ops); empty means attempt 1 only.
	CrashPoints []int
	// MaxCrashes caps crashes per plan; 0 means 1.
	MaxCrashes int
	// Victims lists candidate crash victims; nil means every process
	// (including the abort-signal process when Aborters > 0).
	Victims []int
	// Watchdog, when > 0, arms the starvation watchdog at that overtaking
	// bound for every explored schedule (forces reduction off).
	Watchdog int
}

// ExploreFaults runs the crash-robustness exploration: FaultBody under
// every crash plan in the configured space (fault-free baseline first),
// via rmr.Explorer.RunFaults. cfg's Reduction stays sound because the
// plans are crash-only; f.Watchdog > 0 forces it off. A violation
// surfaces as *rmr.ErrFaultExplore carrying the plan and lexmin schedule.
func ExploreFaults(cfg ExploreConfig, f Faults) (rmr.Result, []rmr.FaultRun, error) {
	e := &rmr.Explorer{
		MaxSteps:     cfg.MaxSteps,
		MaxSchedules: cfg.MaxSchedules,
		Workers:      cfg.Workers,
		Reduction:    cfg.Reduction,
		Monitor:      cfg.Monitor,
		Watchdog:     f.Watchdog,
	}
	body := FaultBody(cfg.Model, cfg.Algo, cfg.W, cfg.N, cfg.Aborters)
	fs := rmr.FaultSet{MaxCrashes: f.MaxCrashes, Ops: f.CrashPoints, Procs: f.Victims}
	return e.RunFaults(cfg.Procs(), body, fs)
}

// WriteFaultReport renders a fault log and the run's replay schedule in
// the fixed format the CLIs and the conformance battery share: one
// attributed line per fault, then the schedule that reproduces the run.
// A wedged run's schedule is dominated by a megastep spin tail that would
// swamp any log, so schedules past reportScheduleCap are truncated — the
// prefix up to the last fault is what matters for diagnosis, and every
// fault's own Schedule field retains its full replay prefix.
func WriteFaultReport(w io.Writer, faults []rmr.Fault, schedule []int) {
	const reportScheduleCap = 1 << 16
	if len(faults) == 0 {
		fmt.Fprintln(w, "no faults recorded")
	}
	for _, flt := range faults {
		fmt.Fprintf(w, "fault: %v\n", flt)
	}
	switch {
	case len(schedule) > reportScheduleCap:
		fmt.Fprintf(w, "replay schedule (first %d of %d choices): %v …\n",
			reportScheduleCap, len(schedule), schedule[:reportScheduleCap])
	case len(schedule) > 0:
		fmt.Fprintf(w, "replay schedule: %v\n", schedule)
	}
}
