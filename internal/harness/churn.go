package harness

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"sublock/rmr"
)

// ChurnResult reports a Churn run.
type ChurnResult struct {
	Completed, Aborted int
	// Successful holds per-passage RMRs of completed passages; AbortCosts
	// of abandoned attempts.
	Successful, AbortCosts Series
}

// Churn is the dynamic long-lived workload (experiment E14): every process
// performs `attempts` acquisitions; before each attempt it flips a seeded
// coin and with probability pAbort delivers itself the abort signal, so
// attempts abandon at whatever point the signal catches them. It measures
// how the lock behaves under sustained mixed enter/abort traffic —
// the regime the paper's adaptive bound targets.
func Churn(algo Algo, w, nprocs, attempts int, pAbort float64, seed int64) (*ChurnResult, error) {
	if !algo.Abortable() && pAbort > 0 {
		return nil, fmt.Errorf("harness: %s cannot run an abort churn", algo)
	}
	m := newMemory(rmr.CC, nprocs)
	fn, err := Build(m, algo, w, nprocs)
	if err != nil {
		return nil, err
	}
	res := &ChurnResult{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	var failure error
	for i := 0; i < nprocs; i++ {
		p := m.Proc(i)
		h := fn(p)
		rng := rand.New(rand.NewSource(seed + int64(i)*7919))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < attempts; k++ {
				willAbort := rng.Float64() < pAbort
				if willAbort {
					p.SignalAbort()
				}
				before := p.RMRs()
				ok := h.Enter()
				if ok {
					// Hold the critical section across a few scheduler
					// quanta so attempts genuinely overlap; without this,
					// single-CPU runs serialize accidentally and no waiter
					// is ever in a position to notice its signal.
					for y := 0; y < 3; y++ {
						runtime.Gosched()
					}
					h.Exit()
				}
				cost := p.RMRs() - before
				p.ClearAbort()
				mu.Lock()
				if ok {
					res.Completed++
					res.Successful = append(res.Successful, cost)
				} else {
					res.Aborted++
					res.AbortCosts = append(res.AbortCosts, cost)
				}
				if !ok && !willAbort {
					failure = fmt.Errorf("harness: %s aborted without a signal", algo)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if failure != nil {
		return nil, failure
	}
	return res, nil
}

// ChurnSweep regenerates experiment E14: the long-lived lock under abort
// probabilities from calm to storm, reporting completion mix and RMR
// distributions. seed feeds the per-process coin-flip streams, so two runs
// with the same seed deliver the same abort signals (the interleavings the
// signals catch still vary with the host scheduler).
func ChurnSweep(algo Algo, w, nprocs, attempts int, probs []float64, seed int64) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("E14 — dynamic churn: %s, N=%d, %d attempts/process", algo, nprocs, attempts),
		Note: "p = probability an attempt carries a pre-delivered abort signal;\n" +
			"cells: completed/aborted counts, then max (mean) RMRs",
		Columns: []string{"p(abort)", "completed", "aborted", "passage RMRs", "abort RMRs"},
	}
	for _, p := range probs {
		res, err := Churn(algo, w, nprocs, attempts, p, seed)
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprintf("%.2f", p),
			fmt.Sprintf("%d", res.Completed),
			fmt.Sprintf("%d", res.Aborted),
			res.Successful.Cell(),
			res.AbortCosts.Cell(),
		)
	}
	return t, nil
}
