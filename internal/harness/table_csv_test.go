package harness

import (
	"strings"
	"testing"
)

func TestFprintCSV(t *testing.T) {
	tbl := &Table{
		Title:   "t",
		Columns: []string{"a", "b"},
	}
	tbl.AddRow("1", "x,y") // comma must be quoted
	tbl.AddRow("2", "z")
	var b strings.Builder
	if err := tbl.FprintCSV(&b); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,\"x,y\"\n2,z\n"
	if b.String() != want {
		t.Fatalf("CSV = %q, want %q", b.String(), want)
	}
}

func TestCSVForRealExperiment(t *testing.T) {
	tbl, err := Fig4Adaptive([]int{64}, 8)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := tbl.FprintCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("CSV lines = %d, want header + 1 row", len(lines))
	}
	if !strings.HasPrefix(lines[0], "N,") {
		t.Fatalf("header = %q", lines[0])
	}
}
