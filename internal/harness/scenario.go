package harness

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"sublock/rmr"
)

// enqueueThreshold is the number of shared-memory steps after which a
// launched process is certainly past its doorway (every algorithm's doorway
// completes within its first few operations; a process still running past
// the threshold is spinning in its wait loop).
const enqueueThreshold = 8

// passage tracks one process's single acquisition attempt running in its
// own goroutine.
type passage struct {
	p       *rmr.Proc
	entered atomic.Bool // Enter returned true (process may be in the CS)
	ok      bool        // final Enter result
	rmrs    int64       // RMRs of the whole passage
	sim     int64       // simulated time of the whole passage (Proc.SimTime)
	done    chan struct{}
}

// launch starts one Enter(+Exit) passage for p. If release is non-nil, the
// process holds the critical section until release is closed.
func launch(p *rmr.Proc, h Handle, release <-chan struct{}) *passage {
	ps := &passage{p: p, done: make(chan struct{})}
	go func() {
		defer close(ps.done)
		before := p.RMRs()
		simBefore := p.SimTime()
		if h.Enter() {
			ps.entered.Store(true)
			if release != nil {
				<-release
			}
			h.Exit()
			ps.ok = true
		}
		ps.rmrs = p.RMRs() - before
		ps.sim = p.SimTime() - simBefore
	}()
	return ps
}

// awaitEnqueued blocks until the passage's process is either past its
// doorway (spinning), has entered the CS, or has finished.
func (ps *passage) awaitEnqueued() {
	for ps.p.Steps() < enqueueThreshold && !ps.entered.Load() {
		select {
		case <-ps.done:
			return
		default:
			runtime.Gosched()
		}
	}
}

// abortAndWait delivers the abort signal and waits for the passage to end.
func (ps *passage) abortAndWait() {
	ps.p.SignalAbort()
	<-ps.done
}

// StormResult reports an AbortStorm run.
type StormResult struct {
	// HolderPassage is the RMR cost of the complete passage that performed
	// the handoff across every aborted slot (Table 1's "complete passage"
	// with A_i aborts).
	HolderPassage int64
	// HolderExit isolates the exit-path handoff cost inside HolderPassage.
	HolderExit int64
	// WaiterPassage is the RMR cost of the successor's complete passage,
	// including any abort-chain traversal its algorithm performs on entry.
	WaiterPassage int64
	// Aborted is the per-attempt RMR cost of every aborted passage.
	Aborted Series
	// HolderSim, WaiterSim, and AbortedSim mirror HolderPassage,
	// WaiterPassage, and Aborted in simulated time under the run's cost
	// model (equal to the RMR figures under the default Unit model).
	HolderSim  int64
	WaiterSim  int64
	AbortedSim Series
	// Words is the shared-memory footprint after the run.
	Words int
	// Entered counts how many of the storm's aborters entered the CS
	// anyway (possible when a handoff raced their signal; they exit
	// normally and the run remains valid).
	Entered int
}

// AbortStorm is AbortStormModel under the CC model, the Table 1 default.
func AbortStorm(algo Algo, w, aborters int, reverse bool) (*StormResult, error) {
	return AbortStormModel(rmr.CC, algo, w, aborters, reverse)
}

// AbortStormModel drives the Table 1 adaptive/worst-case scenario on a lock:
// process 0 acquires and holds; `aborters` processes enqueue behind it and
// then abort one at a time (front-to-back, or back-to-front if reverse is
// set — the worst case for adoption-chain algorithms); one more process
// enqueues as the live waiter; the holder exits, paying the handoff across
// every abandoned slot; the waiter completes its passage.
//
// The total process count is aborters+2. MCS is rejected (not abortable).
func AbortStormModel(model rmr.Model, algo Algo, w, aborters int, reverse bool) (*StormResult, error) {
	res, _, err := abortStorm(model, algo, w, aborters, reverse, false)
	return res, err
}

// AbortStormCost is the priced abort storm: the same holder/aborters/waiter
// structure as AbortStormModel, driven under a fixed-seed scheduler gate so
// every run is bit-deterministic (see gated.go), with the cost model pricing
// the result's simulated-time fields. The gated schedule differs from the
// free-running one, so the RMR fields are deterministic but not comparable
// with AbortStormModel's.
func AbortStormCost(model rmr.Model, cost rmr.CostModel, algo Algo, w, aborters int, reverse bool) (*StormResult, error) {
	return gatedAbortStorm(model, cost, algo, w, aborters, reverse)
}

// AbortStormStats is AbortStormModel with an rmr.Stats collector installed
// for the whole run, returning the per-process × per-phase × per-label
// counter snapshot alongside the RMR result. The Stats observation path
// perturbs no RMR counts, so the StormResult matches the uninstrumented
// run's.
func AbortStormStats(model rmr.Model, algo Algo, w, aborters int, reverse bool) (*StormResult, *rmr.Snapshot, error) {
	return abortStorm(model, algo, w, aborters, reverse, true)
}

func abortStorm(model rmr.Model, algo Algo, w, aborters int, reverse, withStats bool) (*StormResult, *rmr.Snapshot, error) {
	if !algo.Abortable() {
		return nil, nil, fmt.Errorf("harness: %s cannot run an abort storm", algo)
	}
	nprocs := aborters + 2
	m := newMemory(model, nprocs)
	fn, err := Build(m, algo, w, nprocs)
	if err != nil {
		return nil, nil, err
	}
	// Install stats after Build, so every label the lock interned at
	// construction is a column of the matrix, and before any passage runs.
	var st *rmr.Stats
	if withStats {
		st = rmr.NewStats(m)
		m.SetStats(st)
	}

	holderProc := m.Proc(0)
	holder := fn(holderProc)
	holderBefore := holderProc.RMRs()
	holderSimBefore := holderProc.SimTime()
	if !holder.Enter() {
		return nil, nil, fmt.Errorf("harness: %s holder failed to acquire", algo)
	}

	// Enqueue the aborters one at a time so queue slots are deterministic.
	abortersPs := make([]*passage, aborters)
	for i := 0; i < aborters; i++ {
		ps := launch(m.Proc(1+i), fn(m.Proc(1+i)), nil)
		ps.awaitEnqueued()
		abortersPs[i] = ps
	}
	// The live waiter enqueues last.
	waiterProc := m.Proc(nprocs - 1)
	waiter := launch(waiterProc, fn(waiterProc), nil)
	waiter.awaitEnqueued()

	// Abort in the requested order, one at a time.
	order := make([]int, aborters)
	for i := range order {
		if reverse {
			order[i] = aborters - 1 - i
		} else {
			order[i] = i
		}
	}
	res := &StormResult{}
	for _, i := range order {
		abortersPs[i].abortAndWait()
		if abortersPs[i].ok {
			res.Entered++
		} else {
			res.Aborted = append(res.Aborted, abortersPs[i].rmrs)
			res.AbortedSim = append(res.AbortedSim, abortersPs[i].sim)
		}
	}

	// The holder releases, paying the adaptive handoff, and the waiter
	// completes.
	exitBefore := holderProc.RMRs()
	holder.Exit()
	res.HolderExit = holderProc.RMRs() - exitBefore
	res.HolderPassage = holderProc.RMRs() - holderBefore
	res.HolderSim = holderProc.SimTime() - holderSimBefore
	<-waiter.done
	if !waiter.ok {
		return nil, nil, fmt.Errorf("harness: %s waiter failed to acquire", algo)
	}
	res.WaiterPassage = waiter.rmrs
	res.WaiterSim = waiter.sim
	res.Words = m.Size()
	var snap *rmr.Snapshot
	if st != nil {
		snap = st.Snapshot()
	}
	return res, snap, nil
}

// QueueResult reports a QueueWorkload run.
type QueueResult struct {
	// Passages holds the per-process RMR cost of each complete passage.
	Passages Series
	// Sim holds each passage's simulated time under the run's cost model,
	// index-aligned with Passages (equal to it under the default Unit
	// model).
	Sim Series
	// Words is the shared-memory footprint after the run.
	Words int
}

// QueueWorkload is QueueWorkloadModel under the CC model.
func QueueWorkload(algo Algo, w, nprocs int) (*QueueResult, error) {
	return QueueWorkloadModel(rmr.CC, algo, w, nprocs)
}

// QueueWorkloadModel drives the Table 1 no-abort scenario: nprocs processes
// enqueue one at a time until all wait behind the first, then the queue
// drains through successive handoffs; every process performs one complete
// passage. The per-passage RMR cost is the "No aborts" column.
func QueueWorkloadModel(model rmr.Model, algo Algo, w, nprocs int) (*QueueResult, error) {
	res, _, err := queueWorkload(model, algo, w, nprocs, false)
	return res, err
}

// QueueWorkloadCost is the priced queue drain: the same enqueue-then-drain
// structure as QueueWorkloadModel, driven under a fixed-seed scheduler gate
// so every run is bit-deterministic (see gated.go), with the cost model
// pricing the result's Sim series. The gated schedule differs from the
// free-running one, so the Passages series is deterministic but not
// comparable with QueueWorkloadModel's.
func QueueWorkloadCost(model rmr.Model, cost rmr.CostModel, algo Algo, w, nprocs int) (*QueueResult, error) {
	return gatedQueueWorkload(model, cost, algo, w, nprocs)
}

// QueueWorkloadStats is QueueWorkloadModel with an rmr.Stats collector
// installed for the whole run, returning the counter snapshot alongside the
// RMR result.
func QueueWorkloadStats(model rmr.Model, algo Algo, w, nprocs int) (*QueueResult, *rmr.Snapshot, error) {
	return queueWorkload(model, algo, w, nprocs, true)
}

func queueWorkload(model rmr.Model, algo Algo, w, nprocs int, withStats bool) (*QueueResult, *rmr.Snapshot, error) {
	m := newMemory(model, nprocs)
	fn, err := Build(m, algo, w, nprocs)
	if err != nil {
		return nil, nil, err
	}
	var st *rmr.Stats
	if withStats {
		st = rmr.NewStats(m)
		m.SetStats(st)
	}
	release := make(chan struct{})
	passages := make([]*passage, nprocs)
	for i := 0; i < nprocs; i++ {
		ps := launch(m.Proc(i), fn(m.Proc(i)), release)
		ps.awaitEnqueued()
		passages[i] = ps
	}
	close(release)
	res := &QueueResult{}
	for i, ps := range passages {
		<-ps.done
		if !ps.ok {
			return nil, nil, fmt.Errorf("harness: %s process %d failed its passage", algo, i)
		}
		res.Passages = append(res.Passages, ps.rmrs)
		res.Sim = append(res.Sim, ps.sim)
	}
	res.Words = m.Size()
	var snap *rmr.Snapshot
	if st != nil {
		snap = st.Snapshot()
	}
	return res, snap, nil
}

// MultiPassageResult reports a MultiPassage run.
type MultiPassageResult struct {
	// Passages holds every passage's RMR cost across all processes.
	Passages Series
	// WordsBefore and WordsAfter bracket the workload to expose space
	// growth (Table 1's space column for the long-lived locks).
	WordsBefore, WordsAfter int
}

// MultiPassage runs `passages` complete acquisitions per process on a
// long-lived lock with free-running concurrency. It exercises instance
// switching and recycling; per-passage costs include both.
func MultiPassage(algo Algo, w, nprocs, passages int) (*MultiPassageResult, error) {
	m := newMemory(rmr.CC, nprocs)
	fn, err := Build(m, algo, w, nprocs)
	if err != nil {
		return nil, err
	}
	res := &MultiPassageResult{WordsBefore: m.Size()}
	series := make([]Series, nprocs)
	var wg sync.WaitGroup
	var failures atomic.Int32
	for i := 0; i < nprocs; i++ {
		i := i
		p := m.Proc(i)
		h := fn(p)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < passages; k++ {
				before := p.RMRs()
				if !h.Enter() {
					failures.Add(1)
					return
				}
				h.Exit()
				series[i] = append(series[i], p.RMRs()-before)
			}
		}()
	}
	wg.Wait()
	if f := failures.Load(); f != 0 {
		return nil, fmt.Errorf("harness: %s: %d processes failed", algo, f)
	}
	for _, s := range series {
		res.Passages = append(res.Passages, s...)
	}
	res.WordsAfter = m.Size()
	return res, nil
}
