package harness

import (
	"strconv"
	"strings"
	"testing"
)

func TestBuildAllAlgos(t *testing.T) {
	for _, algo := range []Algo{
		AlgoPaper, AlgoPaperPlain, AlgoPaperLL, AlgoPaperLLBounded,
		AlgoScott, AlgoTournament, AlgoLinearScan, AlgoMCS, AlgoTAS,
	} {
		res, err := QueueWorkload(algo, DefaultW, 8)
		if err != nil {
			t.Fatalf("%s: %v", algo, err)
		}
		if len(res.Passages) != 8 {
			t.Fatalf("%s: %d passages, want 8", algo, len(res.Passages))
		}
	}
}

func TestBuildUnknown(t *testing.T) {
	if _, err := QueueWorkload(Algo("nope"), DefaultW, 2); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestSeries(t *testing.T) {
	s := Series{5, 1, 3, 2, 4}
	if s.Max() != 5 {
		t.Fatalf("Max = %d", s.Max())
	}
	if s.Mean() != 3 {
		t.Fatalf("Mean = %f", s.Mean())
	}
	if got := s.Percentile(0.5); got != 3 && got != 2 {
		t.Fatalf("median = %d", got)
	}
	if got := s.Percentile(1.0); got != 5 {
		t.Fatalf("p100 = %d", got)
	}
	var empty Series
	if empty.Max() != 0 || empty.Mean() != 0 || empty.Percentile(0.5) != 0 || empty.Cell() != "—" {
		t.Fatal("empty series misbehaves")
	}
}

func TestTableFormat(t *testing.T) {
	tbl := &Table{
		Title:   "demo",
		Note:    "a note",
		Columns: []string{"x", "value"},
	}
	tbl.AddRow("1", "10")
	tbl.AddRow("2", "200")
	out := tbl.String()
	for _, want := range []string{"demo", "a note", "x", "value", "200"} {
		if !strings.Contains(out, want) {
			t.Fatalf("formatted table missing %q:\n%s", want, out)
		}
	}
}

func TestAbortStormShape(t *testing.T) {
	// The paper's lock: handoff across A aborted slots costs O(log_W A),
	// so doubling A at W=8 barely moves the cost; the linear-scan lock
	// pays ≈A.
	paper16, err := AbortStorm(AlgoPaper, 8, 16, false)
	if err != nil {
		t.Fatal(err)
	}
	paper64, err := AbortStorm(AlgoPaper, 8, 64, false)
	if err != nil {
		t.Fatal(err)
	}
	lin16, err := AbortStorm(AlgoLinearScan, 8, 16, false)
	if err != nil {
		t.Fatal(err)
	}
	lin64, err := AbortStorm(AlgoLinearScan, 8, 64, false)
	if err != nil {
		t.Fatal(err)
	}
	if paper64.HolderPassage > paper16.HolderPassage+4 {
		t.Errorf("paper handoff grew too fast: A=16 → %d, A=64 → %d",
			paper16.HolderPassage, paper64.HolderPassage)
	}
	if lin64.HolderPassage-lin16.HolderPassage < 40 {
		t.Errorf("linear-scan handoff should grow ≈linearly: A=16 → %d, A=64 → %d",
			lin16.HolderPassage, lin64.HolderPassage)
	}
}

func TestAbortStormRejectsMCS(t *testing.T) {
	if _, err := AbortStorm(AlgoMCS, 8, 4, false); err == nil {
		t.Fatal("MCS accepted in an abort storm")
	}
}

func TestQueueWorkloadO1ForPaper(t *testing.T) {
	for _, n := range []int{16, 128, 512} {
		res, err := QueueWorkload(AlgoPaper, 8, n)
		if err != nil {
			t.Fatal(err)
		}
		if max := res.Passages.Max(); max > 12 {
			t.Errorf("N=%d: max passage = %d RMRs, want O(1) ≤ 12", n, max)
		}
	}
}

func TestMultiPassage(t *testing.T) {
	res, err := MultiPassage(AlgoPaperLLBounded, 8, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Passages) != 40 {
		t.Fatalf("passages = %d, want 40", len(res.Passages))
	}
	if res.WordsAfter != res.WordsBefore {
		t.Fatalf("bounded long-lived lock grew: %d → %d", res.WordsBefore, res.WordsAfter)
	}
}

func TestExperimentsRun(t *testing.T) {
	// Every experiment must produce a non-empty table at small scale.
	for name, fn := range map[string]func() (*Table, error){
		"E1":  func() (*Table, error) { return Table1WorstCase([]int{16, 64}, 8) },
		"E2":  func() (*Table, error) { return Table1NoAborts([]int{16, 64}, 8) },
		"E3":  func() (*Table, error) { return Table1Adaptive(64, 8, []int{0, 4, 16}) },
		"E4":  func() (*Table, error) { return Table1Space([]int{16, 64}, 8) },
		"E5":  func() (*Table, error) { return WSweep(64, []int{2, 4, 8, 64}) },
		"E6":  Fig2Scenarios,
		"E7":  func() (*Table, error) { return Fig4Adaptive([]int{64, 512}, 8) },
		"E9":  func() (*Table, error) { return LongLivedOverhead(4, 8, 8) },
		"E10": func() (*Table, error) { return DSMVariant([]int{50, 200}) },
		"E11": func() (*Table, error) { return MCSAnchor([]int{8, 32}) },
		"E13": func() (*Table, error) { return SpinNodeAblation([]int{4, 16}) },
	} {
		t.Run(name, func(t *testing.T) {
			tbl, err := fn()
			if err != nil {
				t.Fatal(err)
			}
			if len(tbl.Rows) == 0 {
				t.Fatal("empty table")
			}
			if tbl.String() == "" {
				t.Fatal("empty rendering")
			}
		})
	}
}

func TestFig2Outcomes(t *testing.T) {
	tbl, err := Fig2Scenarios()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(tbl.Rows))
	}
	if got := tbl.Rows[1][1]; got != "⊥" {
		t.Errorf("scenario (b) outcome = %q, want ⊥", got)
	}
	if got := tbl.Rows[2][1]; got != "⊤" {
		t.Errorf("scenario (c) outcome = %q, want ⊤", got)
	}
}

func TestDSMVariantShape(t *testing.T) {
	tbl, err := DSMVariant([]int{100, 400})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		steps, _ := strconv.Atoi(row[0])
		naive, _ := strconv.ParseInt(row[1], 10, 64)
		indirect, _ := strconv.ParseInt(row[2], 10, 64)
		if indirect > 6 {
			t.Errorf("S=%d: indirection waiter RMRs = %d, want O(1) ≤ 6", steps, indirect)
		}
		if naive < int64(steps)/2 {
			t.Errorf("S=%d: naive waiter RMRs = %d, want ≈S remote re-reads", steps, naive)
		}
	}
}

func TestSpinNodeAblationShape(t *testing.T) {
	tbl, err := SpinNodeAblation([]int{8, 64})
	if err != nil {
		t.Fatal(err)
	}
	small, _ := strconv.ParseInt(tbl.Rows[0][1], 10, 64)
	big, _ := strconv.ParseInt(tbl.Rows[1][1], 10, 64)
	if big <= small {
		t.Errorf("descriptor polling cost should grow with churn: %d → %d", small, big)
	}
	for _, row := range tbl.Rows {
		spin, _ := strconv.ParseInt(row[2], 10, 64)
		if spin > 8 {
			t.Errorf("churn=%s: spin-node wait RMRs = %d, want O(1) ≤ 8", row[0], spin)
		}
	}
}

func TestFig4Shape(t *testing.T) {
	tbl, err := Fig4Adaptive([]int{64, 512, 4096}, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		adaptive, _ := strconv.ParseInt(row[3], 10, 64)
		if adaptive != 1 {
			t.Errorf("N=%s: adaptive ascent = %s RMRs, want 1", row[0], row[3])
		}
	}
	plainFirst, _ := strconv.ParseInt(tbl.Rows[0][2], 10, 64)
	plainLast, _ := strconv.ParseInt(tbl.Rows[len(tbl.Rows)-1][2], 10, 64)
	if plainLast <= plainFirst {
		t.Errorf("plain ascent should grow with N: %d → %d", plainFirst, plainLast)
	}
}

func TestWSweepShape(t *testing.T) {
	// N=1024 keeps the test fast; cmd/rmrbench runs the paper-scale N=4096.
	tbl, err := WSweep(1024, []int{2, 8, 64})
	if err != nil {
		t.Fatal(err)
	}
	h2, _ := strconv.Atoi(tbl.Rows[0][1])
	h64, _ := strconv.Atoi(tbl.Rows[2][1])
	if h2 != 10 || h64 != 2 {
		t.Errorf("tree heights W=2:%d (want 10), W=64:%d (want 2)", h2, h64)
	}
	c2, _ := strconv.ParseInt(tbl.Rows[0][2], 10, 64)
	c64, _ := strconv.ParseInt(tbl.Rows[2][2], 10, 64)
	if c64 >= c2 {
		t.Errorf("holder passage should shrink as W grows: W=2:%d, W=64:%d", c2, c64)
	}
}
