// Package harness builds the locks under comparison, drives the paper's
// workloads against them on the RMR-metered memory, and formats the results
// as the tables and figure series of the paper's evaluation (Table 1 and
// the §4/§6 figures). It backs both the root-level benchmark suite and the
// cmd/rmrbench CLI.
//
// Every lock is built through the locks registry (sublock/locks): the
// harness carries no per-lock code and drives any registered name. The
// blank import of locks/all below wires in every implementation.
package harness

import (
	"sublock/locks"
	_ "sublock/locks/all"
	"sublock/rmr"
)

// Handle is the uniform per-process lock interface the drivers operate on:
// the canonical locks.Abortable seam.
type Handle = locks.Abortable

// HandleFn produces process p's handle to a built lock.
type HandleFn = locks.HandleFunc

// Algo identifies a lock algorithm in experiments: a name in the locks
// registry.
type Algo string

// The algorithms under comparison. The four "table1" algorithms correspond
// to the rows of the paper's Table 1; the rest are anchors and ablations.
// The constants exist for compile-checked experiment code; any registered
// name is equally valid.
const (
	// AlgoPaper is the paper's one-shot lock (§3) with AdaptiveFindNext.
	AlgoPaper Algo = "paper"
	// AlgoPaperPlain is the one-shot lock with the non-adaptive FindNext
	// (Algorithm 4.1), the ablation target of Figure 4.
	AlgoPaperPlain Algo = "paper-plain"
	// AlgoPaperLL is the long-lived transformation (§6), unbounded variant.
	AlgoPaperLL Algo = "paper-longlived"
	// AlgoPaperLLBounded is the long-lived transformation with the §6.2
	// bounded memory management.
	AlgoPaperLLBounded Algo = "paper-longlived-bounded"
	// AlgoScott is the Scott-style abortable CLH queue lock (Table 1 row 1).
	AlgoScott Algo = "scott"
	// AlgoTournament is the Jayanti-shaped Θ(log N) arbitration-tree lock
	// (Table 1 row 2).
	AlgoTournament Algo = "tournament"
	// AlgoLinearScan is the Lee-shaped linear-skip queue lock (Table 1 row 3).
	AlgoLinearScan Algo = "linearscan"
	// AlgoMCS is the non-abortable MCS lock (§1 anchor).
	AlgoMCS Algo = "mcs"
	// AlgoTAS is the abortable test-and-test-and-set lock (unfair anchor).
	AlgoTAS Algo = "tas"
)

// Table1Algos are the abortable algorithms of the paper's Table 1, in the
// paper's row order, with the paper's lock last.
var Table1Algos = []Algo{AlgoScott, AlgoTournament, AlgoLinearScan, AlgoPaper}

// Abortable reports whether the algorithm supports aborting waiters (per
// its registry entry); workloads that deliver abort signals must skip
// non-abortable locks. Unknown names report true so the error surfaces at
// Build with the full registry listing instead of here.
func (a Algo) Abortable() bool {
	info, ok := locks.Lookup(string(a))
	return !ok || info.Abortable
}

// Build constructs algo in m for nprocs processes and returns the handle
// factory. w is the tree arity for the paper's algorithms (ignored by the
// baselines). The lock is sized for exactly nprocs participants; use
// BuildCap to size it for more participants than will actually run.
func Build(m *rmr.Memory, algo Algo, w, nprocs int) (HandleFn, error) {
	return BuildCap(m, algo, w, nprocs)
}

// BuildCap constructs algo sized for capacity processes (queue slots, tree
// leaves, arbitration-tree width) in a memory that may host fewer actual
// runners — the point-contention experiment's configuration. The build is
// resolved through the locks registry; an unknown name yields a
// *locks.ErrUnknown listing the registered set.
func BuildCap(m *rmr.Memory, algo Algo, w, capacity int) (HandleFn, error) {
	return locks.Build(m, string(algo), w, capacity)
}
