package harness

import "sublock/rmr"

// newMemory builds the shared memory for an RMR-measurement scenario. The
// wait policy is pinned to dense yielding (rmr.WaitYield): the Table 1
// columns count RMRs in the analytic CC/DSM model, where a waiter observes
// every invalidation of its spin location. The default adaptive policy may
// park a waiter through several mutations and coalesce those observations,
// which undercounts — and makes the counts schedule-dependent. Dense
// yielding keeps every measured passage's RMR count exact and
// deterministic. (Gated runs are unaffected either way: Wait is a no-op
// under a gate.)
func newMemory(model rmr.Model, nprocs int) *rmr.Memory {
	m := rmr.NewMemory(model, nprocs, nil)
	m.SetWaitPolicy(rmr.WaitYield)
	return m
}
