package harness

import (
	"testing"

	"sublock/rmr"
)

func TestStormReverseOrderScott(t *testing.T) {
	// Reverse abort order preserves Scott's adoption chain; forward order
	// collapses it (each aborter adopts past the already-aborted prefix
	// before publishing). The waiter's passage cost must reflect that.
	fwd, err := AbortStorm(AlgoScott, DefaultW, 32, false)
	if err != nil {
		t.Fatal(err)
	}
	rev, err := AbortStorm(AlgoScott, DefaultW, 32, true)
	if err != nil {
		t.Fatal(err)
	}
	if rev.WaiterPassage < fwd.WaiterPassage+16 {
		t.Fatalf("reverse-order waiter = %d RMRs vs forward %d; expected a preserved chain ≈ +32",
			rev.WaiterPassage, fwd.WaiterPassage)
	}
}

func TestStormZeroAborters(t *testing.T) {
	// A storm with A=0 degenerates to a two-process handoff.
	res, err := AbortStorm(AlgoPaper, DefaultW, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Aborted) != 0 {
		t.Fatalf("aborted series = %v, want empty", res.Aborted)
	}
	if res.HolderPassage > 8 || res.WaiterPassage > 8 {
		t.Fatalf("degenerate storm costs %d/%d, want small constants",
			res.HolderPassage, res.WaiterPassage)
	}
}

func TestStormHolderExitIsolated(t *testing.T) {
	res, err := AbortStorm(AlgoPaper, DefaultW, 16, false)
	if err != nil {
		t.Fatal(err)
	}
	if res.HolderExit <= 0 || res.HolderExit >= res.HolderPassage {
		t.Fatalf("HolderExit = %d of passage %d, want a proper sub-interval",
			res.HolderExit, res.HolderPassage)
	}
}

func TestQueueWorkloadDSMPaper(t *testing.T) {
	res, err := QueueWorkloadModel(rmr.DSM, AlgoPaper, DefaultW, 32)
	if err != nil {
		t.Fatal(err)
	}
	if max := res.Passages.Max(); max > 14 {
		t.Fatalf("DSM no-abort passage max = %d, want O(1) ≤ 14", max)
	}
}

func TestBuildCapTournamentHeight(t *testing.T) {
	// BuildCap must size the structures by capacity, not by runner count.
	m := rmr.NewMemory(rmr.CC, 2, nil)
	fn, err := BuildCap(m, AlgoTournament, DefaultW, 1024)
	if err != nil {
		t.Fatal(err)
	}
	p := m.Proc(0)
	h := fn(p)
	before := p.RMRs()
	if !h.Enter() {
		t.Fatal("Enter failed")
	}
	h.Exit()
	// Uncontended passage pays 3 RMRs per level of the capacity-sized tree.
	if got := p.RMRs() - before; got != 3*10 {
		t.Fatalf("passage RMRs = %d, want 30 (capacity-height tree)", got)
	}
}
