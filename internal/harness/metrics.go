package harness

import (
	"fmt"
	"math"
	"sort"
)

// Series is a collection of per-passage RMR samples.
type Series []int64

// Max returns the largest sample, or 0 for an empty series.
func (s Series) Max() int64 {
	var m int64
	for _, v := range s {
		if v > m {
			m = v
		}
	}
	return m
}

// Mean returns the arithmetic mean, or 0 for an empty series.
func (s Series) Mean() float64 {
	if len(s) == 0 {
		return 0
	}
	var sum int64
	for _, v := range s {
		sum += v
	}
	return float64(sum) / float64(len(s))
}

// Percentile returns the q-quantile (0 ≤ q ≤ 1) by nearest rank.
func (s Series) Percentile(q float64) int64 {
	if len(s) == 0 {
		return 0
	}
	sorted := make([]int64, len(s))
	copy(sorted, s)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q*float64(len(sorted))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Cell formats a series as "max (mean)", the cell format of the generated
// tables.
func (s Series) Cell() string {
	if len(s) == 0 {
		return "—"
	}
	return fmt.Sprintf("%d (%.1f)", s.Max(), s.Mean())
}

// Repeat runs a (typically free-running, hence noisy) experiment r times
// and reports the mean and sample standard deviation of its scalar metric.
// Deterministic gated experiments do not need it; the E9/E14 style
// workloads quote it when variance matters.
func Repeat(r int, metric func() (float64, error)) (mean, stddev float64, err error) {
	if r < 1 {
		return 0, 0, fmt.Errorf("harness: Repeat needs r ≥ 1, got %d", r)
	}
	vals := make([]float64, r)
	for i := range vals {
		v, err := metric()
		if err != nil {
			return 0, 0, err
		}
		vals[i] = v
		mean += v
	}
	mean /= float64(r)
	if r == 1 {
		return mean, 0, nil
	}
	var ss float64
	for _, v := range vals {
		d := v - mean
		ss += d * d
	}
	return mean, math.Sqrt(ss / float64(r-1)), nil
}
