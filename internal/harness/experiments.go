package harness

import (
	"fmt"
	"runtime"

	"sublock/internal/longlived"
	"sublock/internal/oneshot"
	"sublock/internal/tree"
	"sublock/rmr"
)

// DefaultW is the tree arity used by experiments that do not sweep W. The
// paper's analysis assumes W = Θ(log N); W=8 keeps tree heights in the 2–4
// range over the Ns the experiments sweep, so the log_W shapes are visible.
const DefaultW = 8

// Table1WorstCase regenerates Table 1's "Worst-case" column (E1): all but
// one waiter abort, so A_i = N−2, and the handoff passage pays each
// algorithm's worst case — O(log_W N) for the paper's lock, Θ(log₂ N) for
// the tournament, Θ(N) for the linear scan, and Θ(N) adoption for the
// Scott-style lock (aborts delivered back-to-front, its worst order).
func Table1WorstCase(ns []int, w int) (*Table, error) {
	t := &Table{
		Title:   "E1 — Table 1 “Worst-case” column: RMRs of the handoff passage, all-but-one abort",
		Note:    fmt.Sprintf("cells: holder-passage / waiter-passage RMRs; W=%d for the paper's lock", w),
		Columns: []string{"algorithm"},
	}
	for _, n := range ns {
		t.Columns = append(t.Columns, fmt.Sprintf("N=%d", n))
	}
	for _, algo := range Table1Algos {
		row := []string{string(algo)}
		for _, n := range ns {
			res, err := AbortStorm(algo, w, n-2, algo == AlgoScott)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%d / %d", res.HolderPassage, res.WaiterPassage))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Table1NoAborts regenerates Table 1's "No aborts" column (E2): a full
// queue drains with nobody aborting. Every queue lock pays O(1) per
// passage; the tournament pays Θ(log₂ N) — the gap the paper's lock closes.
func Table1NoAborts(ns []int, w int) (*Table, error) {
	t := &Table{
		Title:   "E2 — Table 1 “No aborts” column: RMRs per complete passage, full queue, zero aborts",
		Note:    fmt.Sprintf("cells: max (mean) over all passages; W=%d for the paper's lock", w),
		Columns: []string{"algorithm"},
	}
	for _, n := range ns {
		t.Columns = append(t.Columns, fmt.Sprintf("N=%d", n))
	}
	algos := append([]Algo{AlgoMCS}, Table1Algos...)
	for _, algo := range algos {
		row := []string{string(algo)}
		for _, n := range ns {
			res, err := QueueWorkload(algo, w, n)
			if err != nil {
				return nil, err
			}
			row = append(row, res.Passages.Cell())
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Table1Adaptive regenerates Table 1's "Adaptive bound" column (E3): N is
// fixed and the number of aborters A sweeps, exposing O(log_W A) for the
// paper's lock against Θ(A) for the linear scan and the flat Θ(log N) of
// the tournament.
func Table1Adaptive(n, w int, as []int) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("E3 — Table 1 “Adaptive bound” column: handoff passage RMRs vs aborts, N=%d", n),
		Note: "cells: holder-passage RMRs (max aborted-attempt RMRs); " +
			fmt.Sprintf("W=%d for the paper's lock", w),
		Columns: []string{"algorithm"},
	}
	for _, a := range as {
		t.Columns = append(t.Columns, fmt.Sprintf("A=%d", a))
	}
	for _, algo := range Table1Algos {
		row := []string{string(algo)}
		for _, a := range as {
			if a > n-2 {
				row = append(row, "—")
				continue
			}
			res, err := AbortStorm(algo, w, a, algo == AlgoScott)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%d (%d)", res.HolderPassage, res.Aborted.Max()))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// Table1Space regenerates Table 1's "Space" column (E4): words allocated
// per algorithm, before and after a churn workload — O(N) for the one-shot
// locks, growth without bound for Scott-style allocation and the unbounded
// long-lived variant, constant O(N²)-bounded for the §6.2 variant.
func Table1Space(ns []int, w int) (*Table, error) {
	t := &Table{
		Title:   "E4 — Table 1 “Space” column: shared words after construction → after one storm",
		Note:    fmt.Sprintf("aborters=N−2; W=%d for the paper's locks", w),
		Columns: []string{"algorithm"},
	}
	for _, n := range ns {
		t.Columns = append(t.Columns, fmt.Sprintf("N=%d", n))
	}
	for _, algo := range append([]Algo{}, AlgoScott, AlgoTournament, AlgoLinearScan, AlgoPaper, AlgoPaperLLBounded) {
		row := []string{string(algo)}
		for _, n := range ns {
			m := newMemory(rmr.CC, n)
			if _, err := Build(m, algo, w, n); err != nil {
				return nil, err
			}
			before := m.Size()
			res, err := AbortStorm(algo, w, n-2, false)
			if err != nil {
				return nil, err
			}
			row = append(row, fmt.Sprintf("%d → %d", before, res.Words))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// WSweep regenerates the §1 headline tradeoff (E5): with N fixed and all
// but one waiter aborting, the handoff cost tracks log_W N as W sweeps —
// the time/space tradeoff that makes the lock's RMR cost O(log N/log log N)
// at W=Θ(log N) and O(1) at W=N^ε.
func WSweep(n int, ws []int) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("E5 — RMR cost vs word width W (N=%d, all-but-one abort)", n),
		Note:    "paper's one-shot lock; tree height H = ⌈log_W N⌉ drives the cost",
		Columns: []string{"W", "tree height", "holder passage", "waiter passage", "max aborted"},
	}
	for _, w := range ws {
		res, err := AbortStorm(AlgoPaper, w, n-2, false)
		if err != nil {
			return nil, err
		}
		m := newMemory(rmr.CC, 1)
		tr, err := tree.New(m, tree.Config{W: w, N: n})
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprintf("%d", w),
			fmt.Sprintf("%d", tr.Height()),
			fmt.Sprintf("%d", res.HolderPassage),
			fmt.Sprintf("%d", res.WaiterPassage),
			fmt.Sprintf("%d", res.Aborted.Max()),
		)
	}
	return t, nil
}

// Fig2Scenarios reproduces the three FindNext outcomes of Figure 2 (E6)
// with scripted schedules on a bare tree and reports outcome plus RMR cost.
func Fig2Scenarios() (*Table, error) {
	t := &Table{
		Title:   "E6 — Figure 2: the three FindNext(p) scenarios (W=2, N=8, p=0)",
		Columns: []string{"scenario", "outcome", "FindNext RMRs"},
	}

	// (a) Normal: leaves 1,2 removed; FindNext(0) ascends and returns 3.
	{
		m := newMemory(rmr.CC, 2)
		tr, err := tree.New(m, tree.Config{W: 2, N: 8})
		if err != nil {
			return nil, err
		}
		setup := m.Proc(1)
		tr.Remove(setup, 1)
		tr.Remove(setup, 2)
		p := m.Proc(0)
		before := p.RMRs()
		q, out := tr.FindNext(p, 0)
		t.AddRow("(a) successor found", fmt.Sprintf("%v (leaf %d)", out, q),
			fmt.Sprintf("%d", p.RMRs()-before))
	}

	// (b) ⊥: every leaf right of 0 removed; the ascent reaches the root
	// without finding a clear bit.
	{
		m := newMemory(rmr.CC, 2)
		tr, err := tree.New(m, tree.Config{W: 2, N: 8})
		if err != nil {
			return nil, err
		}
		setup := m.Proc(1)
		for leaf := 1; leaf < 8; leaf++ {
			tr.Remove(setup, leaf)
		}
		p := m.Proc(0)
		before := p.RMRs()
		_, out := tr.FindNext(p, 0)
		t.AddRow("(b) all abandoned", out.String(), fmt.Sprintf("%d", p.RMRs()-before))
	}

	// (c) ⊤: the searcher descends into a subtree that a concurrent Remove
	// empties mid-flight (the crossed-paths case).
	{
		c := rmr.NewController(2)
		m := newMemory(rmr.CC, 2)
		tr, err := tree.New(m, tree.Config{W: 2, N: 8})
		if err != nil {
			return nil, err
		}
		m.SetGate(c)
		// Leaf 1 pre-removed so FindNext(0) must leave the first subtree.
		var rmrs int64
		var out tree.Outcome
		c.Go(1, func() {
			p := m.Proc(1)
			tr.Remove(p, 1)
			tr.Remove(p, 2) // test-style: one proc plays several removers
			tr.Remove(p, 3)
		})
		c.StepN(1, 2) // Remove(1) (1 F&A, stops) + Remove(2)'s first F&A
		c.Go(0, func() {
			p := m.Proc(0)
			before := p.RMRs()
			_, out = tr.FindNext(p, 0)
			rmrs = p.RMRs() - before
		})
		// Searcher ascends: node{0,1} (bit1 set), node{0..3} (bit for {2,3}
		// clear — Remove(3) not there yet), then pauses before descending.
		c.StepN(0, 2)
		// Remove(3): its F&A empties node {2,3}; pause before it ascends.
		c.Step(1)
		// Searcher descends into node {2,3}: EMPTY → ⊤.
		c.Finish(0, 100)
		c.Wait()
		t.AddRow("(c) crossed paths", out.String(), fmt.Sprintf("%d", rmrs))
	}
	return t, nil
}

// Fig4Adaptive regenerates the Figure 4 comparison (E7): plain FindNext
// ascends to the lowest common ancestor (the root here) while the adaptive
// ascent sidesteps to the right cousin, independent of N.
func Fig4Adaptive(ns []int, w int) (*Table, error) {
	t := &Table{
		Title:   fmt.Sprintf("E7 — Figure 4: FindNext vs AdaptiveFindNext ascent cost (W=%d)", w),
		Note:    "p = rightmost leaf of the leftmost level-(H−1) subtree; successor is adjacent",
		Columns: []string{"N", "tree height", "FindNext RMRs", "AdaptiveFindNext RMRs"},
	}
	for _, n := range ns {
		m := newMemory(rmr.CC, 2)
		tr, err := tree.New(m, tree.Config{W: w, N: n})
		if err != nil {
			return nil, err
		}
		p := n/w - 1
		plainProc, adaptProc := m.Proc(0), m.Proc(1)
		before := plainProc.RMRs()
		if q, out := tr.FindNext(plainProc, p); out != tree.Found || q != p+1 {
			return nil, fmt.Errorf("fig4: FindNext(%d) = (%d,%v)", p, q, out)
		}
		plain := plainProc.RMRs() - before
		before = adaptProc.RMRs()
		if q, out := tr.AdaptiveFindNext(adaptProc, p); out != tree.Found || q != p+1 {
			return nil, fmt.Errorf("fig4: AdaptiveFindNext(%d) = (%d,%v)", p, q, out)
		}
		adaptive := adaptProc.RMRs() - before
		t.AddRow(fmt.Sprintf("%d", n), fmt.Sprintf("%d", tr.Height()),
			fmt.Sprintf("%d", plain), fmt.Sprintf("%d", adaptive))
	}
	return t, nil
}

// LongLivedOverhead prices the §6 transformation (E9): per-passage RMRs of
// the raw one-shot lock vs the long-lived lock in both memory-management
// modes, under a multi-passage workload that forces instance switching.
func LongLivedOverhead(nprocs, passages, w int) (*Table, error) {
	t := &Table{
		Title: fmt.Sprintf("E9 — §6 transformation overhead: per-passage RMRs (N=%d, %d passages/process)", nprocs, passages),
		Note: "one-shot row: single passage per process (by definition);\n" +
			"long-lived rows include instance switching and (bounded) recycling",
		Columns: []string{"variant", "max (mean)", "p99", "words before → after"},
	}
	{
		res, err := QueueWorkload(AlgoPaper, w, nprocs)
		if err != nil {
			return nil, err
		}
		t.AddRow("one-shot (§3)", res.Passages.Cell(),
			fmt.Sprintf("%d", res.Passages.Percentile(0.99)),
			fmt.Sprintf("%d → %d", res.Words, res.Words))
	}
	for _, algo := range []Algo{AlgoPaperLL, AlgoPaperLLBounded} {
		res, err := MultiPassage(algo, w, nprocs, passages)
		if err != nil {
			return nil, err
		}
		t.AddRow(string(algo), res.Passages.Cell(),
			fmt.Sprintf("%d", res.Passages.Percentile(0.99)),
			fmt.Sprintf("%d → %d", res.WordsBefore, res.WordsAfter))
	}
	return t, nil
}

// DSMVariant prices the §3 DSM indirection (E10): a waiter spins for a
// fixed number of scheduler steps before the holder releases. With the
// announce/spin-bit indirection the wait costs O(1) RMRs; spinning directly
// on the (remote) go slot costs one RMR per re-read.
func DSMVariant(spinSteps []int) (*Table, error) {
	t := &Table{
		Title:   "E10 — §3 DSM variant: waiter RMRs after S spin steps",
		Note:    "naive = spin directly on the remote go slot; indirection = announce + local spin bit",
		Columns: []string{"S (spin steps)", "naive DSM spin", "announce indirection"},
	}
	run := func(naive bool, steps int) (int64, error) {
		c := rmr.NewController(2)
		m := newMemory(rmr.DSM, 2)
		lk, err := oneshot.New(m, oneshot.Config{W: 8, N: 2, NaiveDSM: naive})
		if err != nil {
			return 0, err
		}
		h0, h1 := lk.Handle(m.Proc(0)), lk.Handle(m.Proc(1))
		m.SetGate(c)
		c.Go(0, func() {
			h0.Enter()
			h0.Exit()
		})
		c.StepN(0, 3) // in the CS
		var ok bool
		c.Go(1, func() { ok = h1.Enter() })
		c.StepN(1, steps)
		waiting := m.Proc(1).RMRs()
		c.Finish(0, 10_000)
		c.Finish(1, 10_000)
		c.Wait()
		if !ok {
			return 0, fmt.Errorf("dsm: waiter failed")
		}
		return waiting, nil
	}
	for _, s := range spinSteps {
		naive, err := run(true, s)
		if err != nil {
			return nil, err
		}
		indirect, err := run(false, s)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", s), fmt.Sprintf("%d", naive), fmt.Sprintf("%d", indirect))
	}
	return t, nil
}

// MCSAnchor verifies the §1 calibration (E11): MCS pays O(1) RMRs per
// passage at every N, the bar the abortable lock is measured against.
func MCSAnchor(ns []int) (*Table, error) {
	t := &Table{
		Title:   "E11 — MCS anchor: per-passage RMRs of the non-abortable MCS queue lock",
		Columns: []string{"N", "max (mean)"},
	}
	for _, n := range ns {
		res, err := QueueWorkload(AlgoMCS, DefaultW, n)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", n), res.Passages.Cell())
	}
	return t, nil
}

// SpinNodeAblation measures the §6 spin-node argument (E13): a process
// waiting for the current instance to be switched pays O(1) RMRs with spin
// nodes, but one RMR per descriptor change without them. Churners cycle
// abort attempts to shake LockDesc while the measured process waits.
func SpinNodeAblation(churns []int) (*Table, error) {
	t := &Table{
		Title:   "E13 — §6 ablation: RMRs of a process waiting for an instance switch",
		Note:    "churn = LockDesc refcount changes while waiting (2 per aborted attempt)",
		Columns: []string{"churn cycles", "descriptor polling", "spin nodes (paper)"},
	}
	run := func(noSpinNodes bool, churn int) (int64, error) {
		// One process per churn cycle: a process that already used the
		// current instance is itself gated by the lines 57–61 wait, so it
		// cannot churn the descriptor twice within one instance epoch.
		nprocs := churn + 2
		m := newMemory(rmr.CC, nprocs)
		lk, err := longlived.New(m, longlived.Config{
			W: 8, N: nprocs, NoSpinNodes: noSpinNodes,
		})
		if err != nil {
			return 0, err
		}
		waiterP, blockerP := m.Proc(0), m.Proc(1)
		waiter, blocker := lk.Handle(waiterP), lk.Handle(blockerP)

		// The waiter completes a passage on the current instance while the
		// blocker pins the refcount: blocker enqueues behind the waiter and
		// will hold the CS until released.
		if !waiter.Enter() {
			return 0, fmt.Errorf("ablation: waiter enter failed")
		}
		release := make(chan struct{})
		blocked := launch(blockerP, blocker, release)
		blocked.awaitEnqueued()
		waiter.Exit() // refcount stays > 0: no switch; oldSpn = current spn
		for !blocked.entered.Load() {
			runtime.Gosched()
		}

		// The waiter re-enters: the descriptor still names the instance it
		// used, so it waits for the switch. Measure its RMRs from here.
		waitStart := waiterP.RMRs()
		reenter := launch(waiterP, waiter, nil)
		reenter.awaitEnqueued()

		// Churn the descriptor: each aborted attempt F&As the refcount up
		// and down, invalidating a descriptor-polling waiter's cached copy
		// twice. Yield between cycles so the waiter actually polls.
		for i := 0; i < churn; i++ {
			churnP := m.Proc(2 + i)
			churnP.SignalAbort()
			if lk.Handle(churnP).Enter() {
				return 0, fmt.Errorf("ablation: churner entered the held lock")
			}
			for k := 0; k < 4; k++ {
				runtime.Gosched()
			}
		}
		waitCost := waiterP.RMRs() - waitStart

		// Release the blocker: its cleanup drops the refcount to zero,
		// switches instances, and the waiter completes on the fresh one.
		close(release)
		<-blocked.done
		<-reenter.done
		if !blocked.ok || !reenter.ok {
			return 0, fmt.Errorf("ablation: blocker ok=%v, waiter ok=%v", blocked.ok, reenter.ok)
		}
		return waitCost, nil
	}
	for _, churn := range churns {
		polling, err := run(true, churn)
		if err != nil {
			return nil, err
		}
		spinNodes, err := run(false, churn)
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", churn), fmt.Sprintf("%d", polling), fmt.Sprintf("%d", spinNodes))
	}
	return t, nil
}
