package harness

import (
	"errors"
	"strings"
	"testing"

	"sublock/rmr"
)

// TestReplayTracedRecordsEvents: replaying a (non-violating) schedule of
// the exhaustive body must flight-record its events — phases included —
// and complete without a property violation.
func TestReplayTracedRecordsEvents(t *testing.T) {
	// An empty schedule makes ReplayPick take the first alternative at
	// every step: the leftmost schedule of the exploration tree.
	ring, err := ReplayTraced(rmr.CC, AlgoPaper, 4, 2, 0, nil, 4096, 32)
	if err != nil {
		t.Fatalf("leftmost schedule violated a property: %v", err)
	}
	events := ring.Events()
	if len(events) == 0 {
		t.Fatal("flight recorder captured no events")
	}
	if ring.Total() <= int64(len(events)) && len(events) == 32 {
		t.Fatal("ring reports no overflow yet is full") // impossible: Total ≥ len
	}
	sawPhase, sawLabel := false, false
	for _, ev := range events {
		if ev.Op == rmr.OpPhase {
			sawPhase = true
		}
		if ev.Label != 0 {
			sawLabel = true
		}
	}
	if !sawPhase {
		t.Error("no phase-transition events in the flight recording")
	}
	if !sawLabel {
		t.Error("no labeled addresses in the flight recording")
	}
}

// TestReplayTracedStall: a replay that runs out of budget surfaces the
// step-limit error the exploration would have pruned.
func TestReplayTracedStall(t *testing.T) {
	_, err := ReplayTraced(rmr.CC, AlgoPaper, 4, 2, 0, nil, 3, 16)
	if err == nil || !errors.Is(err, rmr.ErrStepLimit) && !strings.Contains(err.Error(), "step limit") {
		t.Fatalf("err = %v, want step-limit error", err)
	}
}
