package harness

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"sublock/rmr"
)

func TestParseFaults(t *testing.T) {
	plan, err := ParseFaults("crash:0@4,stall:1@2+15")
	if err != nil {
		t.Fatal(err)
	}
	want := []rmr.FaultSpec{
		{Proc: 0, Kind: rmr.FaultCrash, Op: 4},
		{Proc: 1, Kind: rmr.FaultStall, Op: 2, Delay: 15},
	}
	if !reflect.DeepEqual(plan.Faults, want) {
		t.Fatalf("ParseFaults = %+v, want %+v", plan.Faults, want)
	}
	if plan.CrashOnly() {
		t.Fatal("a plan with a stall reported crash-only")
	}

	for _, empty := range []string{"", "  ", "none"} {
		if p, err := ParseFaults(empty); err != nil || p != nil {
			t.Fatalf("ParseFaults(%q) = %v, %v; want nil plan", empty, p, err)
		}
	}

	for _, bad := range []string{
		"crash0@4",        // missing kind separator
		"restart:0@4",     // restarts need a recovery body
		"crash:x@4",       // bad pid
		"crash:0@0",       // ops are 1-based
		"stall:0@1",       // stall without a window
		"stall:0@1+0",     // empty window
		"crash:0@4,,",     // empty spec
		"explode:0@1+2",   // unknown kind
		"crash:0@4 extra", // trailing junk in op
	} {
		if _, err := ParseFaults(bad); err == nil {
			t.Errorf("ParseFaults(%q) accepted a malformed spec", bad)
		}
	}
}

// CrashOnly must treat a parsed crash-only plan as reduction-safe.
func TestParseFaultsCrashOnlyKeepsReduction(t *testing.T) {
	plan, err := ParseFaults("crash:0@1,crash:1@3")
	if err != nil {
		t.Fatal(err)
	}
	if !plan.CrashOnly() {
		t.Fatal("crash-only plan not recognized as crash-only")
	}
}

func TestParseCrashPoints(t *testing.T) {
	ops, err := ParseCrashPoints(" 1, 3,8 ")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ops, []int{1, 3, 8}) {
		t.Fatalf("ParseCrashPoints = %v, want [1 3 8]", ops)
	}
	if ops, err := ParseCrashPoints(""); err != nil || ops != nil {
		t.Fatalf("ParseCrashPoints(\"\") = %v, %v; want nil", ops, err)
	}
	for _, bad := range []string{"0", "x", "1,-2"} {
		if _, err := ParseCrashPoints(bad); err == nil {
			t.Errorf("ParseCrashPoints(%q) accepted a malformed spec", bad)
		}
	}
}

// TestFaultBodySeededCrash: FaultBody run under a seeded scheduler with a
// crash plan completes without a starvation report for the victim, and the
// fault is attributed.
func TestFaultBodySeededCrash(t *testing.T) {
	body := FaultBody(rmr.CC, AlgoTAS, 4, 3, 0)
	s := rmr.NewScheduler(3, rmr.RandomPick(1))
	s.SetFaultPlan(&rmr.FaultPlan{Faults: []rmr.FaultSpec{{Proc: 0, Kind: rmr.FaultCrash, Op: 1}}})
	if err := body(s, 500_000); err != nil {
		t.Fatalf("FaultBody under a doorway crash: %v", err)
	}
	faults := s.Faults()
	if len(faults) != 1 || faults[0].Kind != rmr.FaultCrash || faults[0].Proc != 0 {
		t.Fatalf("faults = %v, want the injected crash", faults)
	}
}

// TestExploreFaultsSmall: a tiny crash sweep over the TAS lock terminates,
// covers baseline + per-victim plans, and stays clean.
func TestExploreFaultsSmall(t *testing.T) {
	res, runs, err := ExploreFaults(ExploreConfig{
		Model: rmr.CC, Algo: AlgoTAS, W: 4, N: 2,
		MaxSteps: 16, MaxSchedules: 2000, Workers: 2, Reduction: rmr.SleepSets,
	}, Faults{CrashPoints: []int{1, 2}})
	if err != nil {
		t.Fatalf("ExploreFaults: %v", err)
	}
	// Baseline + 2 victims × 2 crash points.
	if len(runs) != 5 {
		t.Fatalf("%d fault runs, want 5", len(runs))
	}
	if runs[0].Plan != nil {
		t.Fatalf("first run's plan = %v, want fault-free baseline", runs[0].Plan)
	}
	if res.Explored == 0 {
		t.Fatal("nothing explored")
	}
}

// TestExploreFaultsWatchdogClean: with a bound a single-passage workload
// cannot legitimately cross, the watchdog-armed crash sweep stays silent.
func TestExploreFaultsWatchdogClean(t *testing.T) {
	res, _, err := ExploreFaults(ExploreConfig{
		Model: rmr.CC, Algo: AlgoTAS, W: 4, N: 2,
		MaxSteps: 16, MaxSchedules: 2000, Workers: 1,
	}, Faults{Watchdog: 3, CrashPoints: []int{1}})
	if err != nil {
		t.Fatalf("ExploreFaults: %v", err)
	}
	if res.Explored == 0 {
		t.Fatal("nothing explored")
	}
}

// TestFaultBodyWatchdogTripReplays: a seeded watchdog violation on a real
// lock (TAS is unfair: bound 1 trips when both competitors pass a waiting
// process) is deterministic and replays step for step from the recorded
// schedule.
func TestFaultBodyWatchdogTripReplays(t *testing.T) {
	body := FaultBody(rmr.CC, AlgoTAS, 4, 3, 0)
	run := func(pick rmr.PickFunc) (error, *rmr.Scheduler) {
		s := rmr.NewScheduler(3, pick)
		s.SetWatchdog(1)
		return body(s, 1000), s
	}
	// Seed 3 trips the bound (pinned; the schedule is fully deterministic).
	err, _ := run(rmr.RandomPick(3))
	if !errors.Is(err, rmr.ErrStarvation) {
		t.Fatalf("seeded run = %v, want a starvation violation", err)
	}
	var fe *rmr.FaultError
	if !errors.As(err, &fe) || len(fe.Fault.Schedule) == 0 {
		t.Fatalf("violation carries no replay schedule: %v", err)
	}
	err2, _ := run(rmr.RandomPick(3))
	var fe2 *rmr.FaultError
	if !errors.As(err2, &fe2) || !reflect.DeepEqual(fe2.Fault, fe.Fault) {
		t.Fatalf("re-run diverged:\n%+v\n%+v", fe2, fe)
	}
	err3, _ := run(rmr.ReplayPick(fe.Fault.Schedule))
	var fe3 *rmr.FaultError
	if !errors.As(err3, &fe3) || fe3.Fault.Step != fe.Fault.Step || fe3.Fault.Proc != fe.Fault.Proc {
		t.Fatalf("replay = %v, want the same starvation at step %d", err3, fe.Fault.Step)
	}
}

func TestWriteFaultReport(t *testing.T) {
	var b strings.Builder
	WriteFaultReport(&b, []rmr.Fault{{Proc: 1, Kind: rmr.FaultCrash, Op: 2, Step: 7}}, []int{0, 1, 0})
	out := b.String()
	if !strings.Contains(out, "fault:") || !strings.Contains(out, "replay schedule: [0 1 0]") {
		t.Fatalf("report missing fault or schedule:\n%s", out)
	}
	b.Reset()
	WriteFaultReport(&b, nil, nil)
	if !strings.Contains(b.String(), "no faults recorded") {
		t.Fatalf("empty report = %q", b.String())
	}
}
