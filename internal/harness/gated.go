package harness

import (
	"fmt"
	"math/rand"
	"sync/atomic"

	"sublock/rmr"
)

// The priced (cost-model) workloads run under a seeded scheduler gate, not
// free-running goroutines. Free-running spin loops make the per-process
// operation sequences timing-dependent — under DSM a CC-optimal lock charges
// one RMR per remote spin re-read, so even its RMR counts vary run to run —
// and the latency matrix must be byte-identical across runs and -workers
// counts. The gate serializes every shared-memory step through a PickFunc
// whose choices depend only on its own deterministic state, so the schedule,
// the RMR counts, and the priced simulated times are all bit-reproducible.
//
// The scheduling seed is fixed: the drain schedule is part of the workload's
// definition, so -cost-seed varies only the pricing, never the interleaving.
const (
	costScheduleSeed = 1
	gatedStepBudget  = 20_000_000
)

// gatedPassages collects one Enter/CS/Exit passage per process under a
// gate. The entered/done flags are read by the PickFunc: picks happen only
// at quiescent points where every live process is blocked at the gate, so
// flag values observed there are settled and the schedule stays
// deterministic.
type gatedPassages struct {
	entered  []atomic.Bool
	done     []atomic.Bool
	ok       []bool
	rmrs     []int64
	sim      []int64
	exitRMRs []int64
}

func newGatedPassages(nprocs int) *gatedPassages {
	return &gatedPassages{
		entered:  make([]atomic.Bool, nprocs),
		done:     make([]atomic.Bool, nprocs),
		ok:       make([]bool, nprocs),
		rmrs:     make([]int64, nprocs),
		sim:      make([]int64, nprocs),
		exitRMRs: make([]int64, nprocs),
	}
}

// body returns process i's passage body. The holder "holds" the critical
// section without any release channel: between Enter returning and Exit's
// first shared-memory operation the process blocks at the gate, so the CS
// lasts exactly as long as the PickFunc declines to grant it a step.
func (g *gatedPassages) body(p *rmr.Proc, h Handle, i int) func() {
	return func() {
		before, simBefore := p.RMRs(), p.SimTime()
		if h.Enter() {
			g.entered[i].Store(true)
			exitBefore := p.RMRs()
			h.Exit()
			g.exitRMRs[i] = p.RMRs() - exitBefore
			g.ok[i] = true
		}
		g.rmrs[i] = p.RMRs() - before
		g.sim[i] = p.SimTime() - simBefore
		g.done[i].Store(true)
	}
}

// indexOf returns pid's index in the id-sorted waiting set, or -1.
func indexOf(waiting []int, pid int) int {
	for i, p := range waiting {
		if p == pid {
			return i
		}
	}
	return -1
}

// enqueued reports whether process pid is certainly past its doorway: it
// entered the CS, finished, or has taken enqueueThreshold steps (the same
// heuristic the free-running workloads use via awaitEnqueued).
func (g *gatedPassages) enqueued(m *rmr.Memory, pid int) bool {
	return g.done[pid].Load() || g.entered[pid].Load() ||
		m.Proc(pid).Steps() >= enqueueThreshold
}

// queueDrainPick enforces the queue-drain structure: process 0 runs alone
// until it holds the lock, then processes 1..n-1 are each run alone until
// past their doorway (so the queue forms in id order behind the holder),
// then the drain interleaves every waiting process under the seeded RNG
// until all passages complete.
func (g *gatedPassages) queueDrainPick(m *rmr.Memory, rng *rand.Rand) rmr.PickFunc {
	cursor := 0
	n := len(g.done)
	return func(_ int, waiting []int) int {
		for cursor < n {
			pid := cursor
			ready := g.enqueued(m, pid)
			if pid == 0 {
				ready = g.entered[0].Load() || g.done[0].Load()
			}
			if ready {
				cursor++
				continue
			}
			if i := indexOf(waiting, pid); i >= 0 {
				return i
			}
			break
		}
		return rng.Intn(len(waiting))
	}
}

// stormStep is one stage of the gated abort storm's schedule script.
type stormStep struct {
	kind     stormStepKind
	pid      int
	signaled bool
}

type stormStepKind int

const (
	stepEnter   stormStepKind = iota // run pid alone until it holds the lock
	stepEnqueue                      // run pid alone until past its doorway
	stepAbort                        // signal pid and run it until its passage ends
)

// stormPick drives the abort-storm script: the holder acquires, the
// aborters and then the live waiter enqueue in order, each aborter is
// signaled and unwound one at a time while the holder is withheld, and the
// final drain releases the holder's exit handoff and the waiter's passage
// under the seeded RNG. Abort signals are delivered inside the pick — a
// quiescent point — so delivery lands at the same step in every run.
func (g *gatedPassages) stormPick(m *rmr.Memory, script []*stormStep, rng *rand.Rand) rmr.PickFunc {
	idx, ticks := 0, 0
	return func(_ int, waiting []int) int {
		for idx < len(script) {
			st := script[idx]
			if g.done[st.pid].Load() {
				idx++
				continue
			}
			switch st.kind {
			case stepEnter:
				if g.entered[st.pid].Load() {
					idx++
					continue
				}
			case stepEnqueue:
				if g.enqueued(m, st.pid) {
					idx++
					continue
				}
			case stepAbort:
				if !st.signaled {
					st.signaled = true
					m.Proc(st.pid).SignalAbort()
				}
				// Prefer the aborter, but hand every fourth step to a
				// non-holder peer: an abort path that needs a peer's
				// cooperation must not livelock the stage, and the holder
				// must not exit before the storm is assembled.
				ticks++
				if ticks%4 == 0 {
					if i := pickPeer(waiting, st.pid, rng); i >= 0 {
						return i
					}
				}
			}
			if i := indexOf(waiting, st.pid); i >= 0 {
				return i
			}
			break
		}
		return rng.Intn(len(waiting))
	}
}

// pickPeer picks a seeded-random waiting process that is neither the
// holder (pid 0) nor skip, or -1 when there is none.
func pickPeer(waiting []int, skip int, rng *rand.Rand) int {
	n := 0
	for _, pid := range waiting {
		if pid != 0 && pid != skip {
			n++
		}
	}
	if n == 0 {
		return -1
	}
	k := rng.Intn(n)
	for i, pid := range waiting {
		if pid != 0 && pid != skip {
			if k == 0 {
				return i
			}
			k--
		}
	}
	return -1
}

// buildGated constructs the memory, lock, and per-passage collector shared
// by the gated workloads, installing the cost model after Build — so
// construction operations stay unpriced, matching the free-running
// harnesses — and before the gate.
func buildGated(model rmr.Model, cost rmr.CostModel, algo Algo, w, nprocs int) (*gatedPassages, *rmr.Memory, HandleFn, error) {
	m := newMemory(model, nprocs)
	fn, err := Build(m, algo, w, nprocs)
	if err != nil {
		return nil, nil, nil, err
	}
	if cost != nil {
		m.SetCostModel(cost)
	}
	return newGatedPassages(nprocs), m, fn, nil
}

// runGated launches one passage per process under the scheduler and drives
// it to completion, draining on a stall so the caller gets an error instead
// of a leaked schedule.
func runGated(g *gatedPassages, m *rmr.Memory, fn HandleFn, s *rmr.Scheduler, algo Algo, nprocs int) error {
	m.SetGate(s)
	for i := 0; i < nprocs; i++ {
		p := m.Proc(i)
		s.Go(g.body(p, fn(p), i))
	}
	if err := s.Run(gatedStepBudget); err != nil {
		for i := 0; i < nprocs; i++ {
			m.Proc(i).SignalAbort()
		}
		s.Drain()
		return fmt.Errorf("harness: %s gated run stalled: %w", algo, err)
	}
	return nil
}

// gatedQueueWorkload is the deterministic priced queue drain behind
// QueueWorkloadCost.
func gatedQueueWorkload(model rmr.Model, cost rmr.CostModel, algo Algo, w, nprocs int) (*QueueResult, error) {
	g, m, fn, err := buildGated(model, cost, algo, w, nprocs)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(costScheduleSeed))
	s := rmr.NewScheduler(nprocs, g.queueDrainPick(m, rng))
	if err := runGated(g, m, fn, s, algo, nprocs); err != nil {
		return nil, err
	}
	res := &QueueResult{Words: m.Size()}
	for i := 0; i < nprocs; i++ {
		if !g.ok[i] {
			return nil, fmt.Errorf("harness: %s process %d failed its priced passage", algo, i)
		}
		res.Passages = append(res.Passages, g.rmrs[i])
		res.Sim = append(res.Sim, g.sim[i])
	}
	return res, nil
}

// gatedAbortStorm is the deterministic priced abort storm behind
// AbortStormCost.
func gatedAbortStorm(model rmr.Model, cost rmr.CostModel, algo Algo, w, aborters int, reverse bool) (*StormResult, error) {
	if !algo.Abortable() {
		return nil, fmt.Errorf("harness: %s cannot run an abort storm", algo)
	}
	nprocs := aborters + 2
	g, m, fn, err := buildGated(model, cost, algo, w, nprocs)
	if err != nil {
		return nil, err
	}
	script := []*stormStep{{kind: stepEnter, pid: 0}}
	for i := 1; i <= aborters; i++ {
		script = append(script, &stormStep{kind: stepEnqueue, pid: i})
	}
	script = append(script, &stormStep{kind: stepEnqueue, pid: nprocs - 1})
	order := make([]int, aborters)
	for i := range order {
		if reverse {
			order[i] = aborters - i
		} else {
			order[i] = 1 + i
		}
	}
	for _, pid := range order {
		script = append(script, &stormStep{kind: stepAbort, pid: pid})
	}
	rng := rand.New(rand.NewSource(costScheduleSeed))
	s := rmr.NewScheduler(nprocs, g.stormPick(m, script, rng))
	if err := runGated(g, m, fn, s, algo, nprocs); err != nil {
		return nil, err
	}
	if !g.ok[0] {
		return nil, fmt.Errorf("harness: %s holder failed to acquire", algo)
	}
	waiter := nprocs - 1
	if !g.ok[waiter] {
		return nil, fmt.Errorf("harness: %s waiter failed to acquire", algo)
	}
	res := &StormResult{
		HolderPassage: g.rmrs[0],
		HolderExit:    g.exitRMRs[0],
		HolderSim:     g.sim[0],
		WaiterPassage: g.rmrs[waiter],
		WaiterSim:     g.sim[waiter],
		Words:         m.Size(),
	}
	for _, pid := range order {
		if g.ok[pid] {
			res.Entered++
		} else {
			res.Aborted = append(res.Aborted, g.rmrs[pid])
			res.AbortedSim = append(res.AbortedSim, g.sim[pid])
		}
	}
	return res, nil
}
