package harness

import (
	"fmt"
	"strings"
	"testing"
)

func TestChurnNoAborts(t *testing.T) {
	res, err := Churn(AlgoPaperLL, 8, 4, 10, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != 40 || res.Aborted != 0 {
		t.Fatalf("completed=%d aborted=%d, want 40/0", res.Completed, res.Aborted)
	}
}

func TestChurnMixed(t *testing.T) {
	for _, algo := range []Algo{AlgoPaperLL, AlgoPaperLLBounded} {
		res, err := Churn(algo, 8, 6, 20, 0.5, 3)
		if err != nil {
			t.Fatal(err)
		}
		if res.Completed+res.Aborted != 120 {
			t.Fatalf("%s: %d+%d attempts, want 120", algo, res.Completed, res.Aborted)
		}
		if res.Completed == 0 {
			t.Fatalf("%s: nothing completed under 50%% churn", algo)
		}
	}
}

func TestChurnRejectsMCSWithAborts(t *testing.T) {
	if _, err := Churn(AlgoMCS, 8, 2, 5, 0.5, 1); err == nil {
		t.Fatal("MCS churn with aborts accepted")
	}
	if _, err := Churn(AlgoMCS, 8, 2, 5, 0, 1); err != nil {
		t.Fatalf("MCS churn without aborts failed: %v", err)
	}
}

func TestChurnSweepTable(t *testing.T) {
	tbl, err := ChurnSweep(AlgoPaperLLBounded, 8, 4, 10, []float64{0, 0.5}, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tbl.Rows))
	}
}

func TestChart(t *testing.T) {
	tbl := &Table{
		Title:   "demo",
		Columns: []string{"x", "cost"},
	}
	tbl.AddRow("a", "10")
	tbl.AddRow("bb", "20 (5.0)")
	tbl.AddRow("c", "—")
	var b strings.Builder
	if err := tbl.FprintChart(&b, 1); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "demo — cost") {
		t.Fatalf("missing chart header:\n%s", out)
	}
	if strings.Count(out, "█") == 0 {
		t.Fatal("no bars rendered")
	}
	// The 20-valued row must have roughly twice the bar of the 10-valued.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header + 2 bars (the dash row is skipped)
		t.Fatalf("lines = %d, want 3:\n%s", len(lines), out)
	}
	barA := strings.Count(lines[1], "█")
	barB := strings.Count(lines[2], "█")
	if barB != 2*barA {
		t.Fatalf("bars %d vs %d, want 1:2", barA, barB)
	}
}

func TestChartErrors(t *testing.T) {
	tbl := &Table{Columns: []string{"x", "y"}}
	tbl.AddRow("a", "not-a-number")
	var b strings.Builder
	if err := tbl.FprintChart(&b, 0); err == nil {
		t.Fatal("column 0 accepted")
	}
	if err := tbl.FprintChart(&b, 5); err == nil {
		t.Fatal("out-of-range column accepted")
	}
	if err := tbl.FprintChart(&b, 1); err == nil {
		t.Fatal("non-numeric column accepted")
	}
}

func TestLeadingNumber(t *testing.T) {
	for cell, want := range map[string]float64{
		"12":       12,
		"3.5":      3.5,
		"12 (3.4)": 12,
		"-2":       -2,
		"  7 ":     7,
		"1027 (3)": 1027,
	} {
		got, ok := leadingNumber(cell)
		if !ok || got != want {
			t.Errorf("leadingNumber(%q) = %v,%v want %v", cell, got, ok, want)
		}
	}
	if _, ok := leadingNumber("—"); ok {
		t.Error("dash parsed as number")
	}
}

func TestPointContention(t *testing.T) {
	tbl, err := PointContention(64, 8, []int{2, 16})
	if err != nil {
		t.Fatal(err)
	}
	// Row order: mcs, scott, tournament, linearscan, paper.
	if len(tbl.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(tbl.Rows))
	}
	// The paper's lock must be flat and small across k.
	paper := tbl.Rows[4]
	a, _ := leadingNumber(paper[1])
	b, _ := leadingNumber(paper[2])
	if a > 10 || b > 10 {
		t.Errorf("paper passage costs %v, want O(1) ≤ 10", paper[1:])
	}
	// The tournament must pay its full height even at k=2 (the documented
	// non-adaptivity of the substitution): 3·log2(64) = 18.
	tournament := tbl.Rows[2]
	if v, _ := leadingNumber(tournament[1]); v < 15 {
		t.Errorf("tournament at k=2 = %v RMRs, expected full-height ≈ 18+", v)
	}
	// Oversized k yields a dash.
	tbl2, err := PointContention(4, 8, []int{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if tbl2.Rows[0][2] != "—" {
		t.Errorf("k > capacity cell = %q, want —", tbl2.Rows[0][2])
	}
}

func TestDSMTable(t *testing.T) {
	tbl, err := DSMTable([]int{16, 64}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(tbl.Rows))
	}
	// No-abort passage in DSM stays O(1): the leading number of each cell
	// is the queue max, which must be small and flat.
	for _, row := range tbl.Rows {
		a, _ := leadingNumber(row[1])
		b, _ := leadingNumber(row[2])
		if a > 14 || b > 14 {
			t.Errorf("%s: DSM no-abort max RMRs %v/%v, want ≤ 14", row[0], a, b)
		}
	}
}

func TestRepeat(t *testing.T) {
	n := 0.0
	mean, std, err := Repeat(4, func() (float64, error) {
		n += 2
		return n, nil // 2, 4, 6, 8
	})
	if err != nil {
		t.Fatal(err)
	}
	if mean != 5 {
		t.Fatalf("mean = %v, want 5", mean)
	}
	if std < 2.5 || std > 2.6 { // sample stddev of {2,4,6,8} ≈ 2.582
		t.Fatalf("stddev = %v, want ≈ 2.58", std)
	}
	if _, _, err := Repeat(0, nil); err == nil {
		t.Fatal("r=0 accepted")
	}
	if m, s2, err := Repeat(1, func() (float64, error) { return 7, nil }); err != nil || m != 7 || s2 != 0 {
		t.Fatalf("single trial: %v %v %v", m, s2, err)
	}
	wantErr := func() (float64, error) { return 0, fmt.Errorf("boom") }
	if _, _, err := Repeat(2, wantErr); err == nil {
		t.Fatal("metric error swallowed")
	}
}
