package harness

import (
	"bytes"
	"strings"
	"testing"

	"sublock/rmr"
)

// TestAbortStormStatsPhases is the observability acceptance check: the
// per-phase, per-label attribution of the paper's lock under the abort
// storm must exhibit the paper's cost structure — an O(1) doorway
// regardless of contention, and an exit-path handoff whose tree-traversal
// cost grows like O(log_W A) in the number of aborters A, far below
// linearly.
func TestAbortStormStatsPhases(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	const holder = 0
	run := func(aborters int) *rmr.Snapshot {
		res, snap, err := AbortStormStats(rmr.CC, AlgoPaper, DefaultW, aborters, false)
		if err != nil {
			t.Fatalf("aborters=%d: %v", aborters, err)
		}
		if snap == nil {
			t.Fatalf("aborters=%d: nil snapshot", aborters)
		}
		// The instrumented run must report the same RMR totals an
		// uninstrumented run does: observation must not perturb the metric.
		plain, err := AbortStorm(AlgoPaper, DefaultW, aborters, false)
		if err != nil {
			t.Fatalf("aborters=%d plain: %v", aborters, err)
		}
		if plain.HolderPassage != res.HolderPassage || plain.HolderExit != res.HolderExit {
			t.Fatalf("aborters=%d: instrumented holder cost (%d, %d) != plain (%d, %d)",
				aborters, res.HolderPassage, res.HolderExit, plain.HolderPassage, plain.HolderExit)
		}
		return snap
	}

	small := run(6)
	large := run(384) // 64× the aborters

	// The holder's doorway is contention-independent: O(1) RMRs.
	dSmall := small.ProcPhaseRMRs(holder, rmr.PhaseDoorway)
	dLarge := large.ProcPhaseRMRs(holder, rmr.PhaseDoorway)
	if dSmall > 10 || dLarge > 10 {
		t.Errorf("holder doorway RMRs = %d (small), %d (large); want O(1) ≤ 10", dSmall, dLarge)
	}
	if dLarge > dSmall+2 {
		t.Errorf("holder doorway RMRs grew with contention: %d → %d", dSmall, dLarge)
	}

	// The holder's exit-phase tree traversal (the FindNext ascent/descent
	// over the abandonment tree) is the adaptive part: with 64× the
	// aborters it may grow by about one extra tree level — far less than
	// linearly. Allow a generous constant factor; a linear baseline would
	// grow ~64×.
	exitTreeSmall := small.ProcPhaseLabelRMRs(holder, rmr.PhaseExit, "tree/")
	exitTreeLarge := large.ProcPhaseLabelRMRs(holder, rmr.PhaseExit, "tree/")
	if exitTreeLarge == 0 {
		t.Fatal("no exit-phase tree RMRs attributed to the holder; labeling or phase plumbing broken")
	}
	if exitTreeSmall > 0 && exitTreeLarge > 8*exitTreeSmall {
		t.Errorf("holder exit-phase tree RMRs grew %d → %d (>8×) for 64× aborters; want O(log_W A)",
			exitTreeSmall, exitTreeLarge)
	}

	// Every aborter's passage is accounted: passages = aborters' attempts
	// + holder + waiter, each finishing exactly once.
	if got, want := large.Passages+large.AbortedPassages, int64(384+2); got != want {
		t.Errorf("finished passages = %d, want %d", got, want)
	}
	if large.AbortedPassages == 0 {
		t.Error("no aborted passages recorded in an abort storm")
	}

	// The text report renders and mentions the phases and tree labels.
	var buf bytes.Buffer
	if err := large.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"doorway", "exit", "tree/level1", "passages:"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("text report missing %q:\n%s", want, buf.String())
		}
	}
}

// TestQueueWorkloadStats checks the no-abort scenario's attribution: every
// passage completes, none aborts, and the per-phase split accounts for the
// whole RMR total.
func TestQueueWorkloadStats(t *testing.T) {
	const nprocs = 16
	res, snap, err := QueueWorkloadStats(rmr.CC, AlgoPaper, DefaultW, nprocs)
	if err != nil {
		t.Fatal(err)
	}
	if snap.AbortedPassages != 0 {
		t.Errorf("aborted passages = %d, want 0", snap.AbortedPassages)
	}
	if snap.Passages != int64(nprocs) {
		t.Errorf("completed passages = %d, want %d", snap.Passages, nprocs)
	}
	var phaseSum int64
	for ph := rmr.Phase(0); ph < rmr.NumPhases; ph++ {
		phaseSum += snap.PhaseRMRs(ph)
	}
	if phaseSum != snap.TotalRMRs() {
		t.Errorf("per-phase RMRs sum to %d, total is %d", phaseSum, snap.TotalRMRs())
	}
	var total int64
	for _, c := range res.Passages {
		total += c
	}
	// Passage costs measured by the harness equal the stats histogram sum.
	if snap.PassageRMRSum != total {
		t.Errorf("stats passage RMR sum = %d, harness total = %d", snap.PassageRMRSum, total)
	}
}
