package harness

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// FprintChart renders one numeric column of the table as a horizontal
// ASCII bar chart — the "figure" view of an experiment series. col selects
// the column index; rows whose cell does not parse as a number (or whose
// leading integer is taken when the cell is "12 (3.4)"-shaped) are skipped.
func (t *Table) FprintChart(w io.Writer, col int) error {
	if col <= 0 || col >= len(t.Columns) {
		return fmt.Errorf("harness: chart column %d out of range [1,%d)", col, len(t.Columns))
	}
	type bar struct {
		label string
		value float64
	}
	var bars []bar
	maxVal := 0.0
	for _, row := range t.Rows {
		if col >= len(row) {
			continue
		}
		v, ok := leadingNumber(row[col])
		if !ok {
			continue
		}
		label := row[0]
		bars = append(bars, bar{label, v})
		if v > maxVal {
			maxVal = v
		}
	}
	if len(bars) == 0 {
		return fmt.Errorf("harness: no numeric cells in column %q", t.Columns[col])
	}
	fmt.Fprintf(w, "%s — %s\n", t.Title, t.Columns[col])
	labelW := 0
	for _, b := range bars {
		if len(b.label) > labelW {
			labelW = len(b.label)
		}
	}
	const width = 48
	for _, b := range bars {
		n := 0
		if maxVal > 0 {
			n = int(b.value / maxVal * width)
		}
		if n == 0 && b.value > 0 {
			n = 1
		}
		fmt.Fprintf(w, "  %-*s | %-*s %g\n", labelW, b.label, width, strings.Repeat("█", n), b.value)
	}
	fmt.Fprintln(w)
	return nil
}

// leadingNumber parses the leading numeric token of a cell like "12",
// "3.5", or "12 (3.4)".
func leadingNumber(cell string) (float64, bool) {
	cell = strings.TrimSpace(cell)
	end := 0
	for end < len(cell) && (cell[end] == '.' || cell[end] == '-' || (cell[end] >= '0' && cell[end] <= '9')) {
		end++
	}
	if end == 0 {
		return 0, false
	}
	v, err := strconv.ParseFloat(cell[:end], 64)
	return v, err == nil
}
