// Package linearizability implements a Wing–Gong-style linearizability
// checker for histories of operations on a single shared word supporting
// read, write, CAS, F&A, and SWAP — the primitive set of the paper's
// machine model (§2).
//
// It is used to validate the rmr simulator itself: under free-running real
// concurrency, recorded invocation/response histories of rmr.Memory
// operations must be linearizable with respect to the sequential
// specification of an atomic word. The checker performs an exhaustive
// search over linearization orders with memoization, which is exponential
// in the worst case but fast for the small, highly-concurrent histories
// the tests generate.
package linearizability

import (
	"fmt"
	"sort"
)

// Kind is the operation type of a history entry.
type Kind int

// Operation kinds, mirroring the §2 primitive set.
const (
	Read Kind = iota + 1
	Write
	CAS
	FAA
	Swap
)

// String returns the mnemonic of the kind.
func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Write:
		return "write"
	case CAS:
		return "cas"
	case FAA:
		return "faa"
	case Swap:
		return "swap"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Op is one completed operation in a concurrent history. Invoke and Return
// are logical timestamps: Invoke is taken before the operation starts,
// Return after it completes, from a single monotonic counter shared by all
// recording goroutines.
type Op struct {
	Proc   int
	Kind   Kind
	Invoke int64
	Return int64

	// Arg is the written value (Write, Swap), the addend (FAA), or the
	// proposed new value (CAS).
	Arg uint64
	// Expect is CAS's comparison value.
	Expect uint64
	// Out is the value returned: the read value (Read), the previous value
	// (FAA, Swap), or 0/1 for a failed/successful CAS.
	Out uint64
}

// apply runs op's sequential specification on state v, returning the new
// state and whether op's recorded output matches.
func (op Op) apply(v uint64) (uint64, bool) {
	switch op.Kind {
	case Read:
		return v, op.Out == v
	case Write:
		return op.Arg, true
	case CAS:
		if v == op.Expect {
			return op.Arg, op.Out == 1
		}
		return v, op.Out == 0
	case FAA:
		return v + op.Arg, op.Out == v
	case Swap:
		return op.Arg, op.Out == v
	default:
		return v, false
	}
}

// Check reports whether the history is linearizable with respect to an
// atomic word initialized to init. The history must consist of completed
// operations (every Op has both timestamps) with Invoke < Return.
func Check(init uint64, history []Op) bool {
	n := len(history)
	if n == 0 {
		return true
	}
	if n > 64 {
		// The memoization key is a 64-bit set; histories larger than 64
		// operations must be checked piecewise by the caller.
		panic("linearizability: history longer than 64 operations")
	}
	ops := make([]Op, n)
	copy(ops, history)
	// Sorting by invocation keeps the "minimal pending" frontier cheap.
	sort.Slice(ops, func(i, j int) bool { return ops[i].Invoke < ops[j].Invoke })

	// Depth-first search over linearization prefixes: state = (set of
	// linearized ops, word value). An op may linearize next iff every op
	// that *returned* before this op was *invoked* has already linearized
	// (real-time order) and its output matches the sequential spec.
	type key struct {
		done uint64
		val  uint64
	}
	seen := make(map[key]bool)
	var dfs func(done uint64, val uint64) bool
	dfs = func(done uint64, val uint64) bool {
		if done == uint64(1)<<n-1 {
			return true
		}
		k := key{done, val}
		if seen[k] {
			return false
		}
		seen[k] = true
		// earliestReturn of not-yet-linearized ops: an op whose invocation
		// is after some pending op's return cannot linearize next.
		earliest := int64(1<<62 - 1)
		for i := 0; i < n; i++ {
			if done&(1<<i) == 0 && ops[i].Return < earliest {
				earliest = ops[i].Return
			}
		}
		for i := 0; i < n; i++ {
			if done&(1<<i) != 0 {
				continue
			}
			if ops[i].Invoke > earliest {
				// Some pending op returned before this one was invoked:
				// real-time order forbids linearizing this one first.
				continue
			}
			next, ok := ops[i].apply(val)
			if !ok {
				continue
			}
			if dfs(done|1<<i, next) {
				return true
			}
		}
		return false
	}
	return dfs(0, init)
}
