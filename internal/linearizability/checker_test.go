package linearizability

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"sublock/rmr"
)

func TestSequentialHistories(t *testing.T) {
	// A strictly sequential history matching the spec linearizes.
	h := []Op{
		{Proc: 0, Kind: Write, Arg: 5, Invoke: 1, Return: 2},
		{Proc: 0, Kind: Read, Out: 5, Invoke: 3, Return: 4},
		{Proc: 0, Kind: FAA, Arg: 2, Out: 5, Invoke: 5, Return: 6},
		{Proc: 0, Kind: Swap, Arg: 1, Out: 7, Invoke: 7, Return: 8},
		{Proc: 0, Kind: CAS, Expect: 1, Arg: 9, Out: 1, Invoke: 9, Return: 10},
		{Proc: 0, Kind: CAS, Expect: 1, Arg: 9, Out: 0, Invoke: 11, Return: 12},
	}
	if !Check(0, h) {
		t.Fatal("valid sequential history rejected")
	}
}

func TestRejectsWrongRead(t *testing.T) {
	h := []Op{
		{Proc: 0, Kind: Write, Arg: 5, Invoke: 1, Return: 2},
		{Proc: 0, Kind: Read, Out: 6, Invoke: 3, Return: 4}, // impossible
	}
	if Check(0, h) {
		t.Fatal("impossible read accepted")
	}
}

func TestRejectsStaleReadAfterReturn(t *testing.T) {
	// The write returned before the read was invoked, so the read cannot
	// see the initial value: real-time order must be enforced.
	h := []Op{
		{Proc: 0, Kind: Write, Arg: 5, Invoke: 1, Return: 2},
		{Proc: 1, Kind: Read, Out: 0, Invoke: 3, Return: 4},
	}
	if Check(0, h) {
		t.Fatal("stale read accepted despite real-time order")
	}
}

func TestAcceptsConcurrentEitherOrder(t *testing.T) {
	// Overlapping write and read: the read may see either value.
	for _, out := range []uint64{0, 5} {
		h := []Op{
			{Proc: 0, Kind: Write, Arg: 5, Invoke: 1, Return: 10},
			{Proc: 1, Kind: Read, Out: out, Invoke: 2, Return: 9},
		}
		if !Check(0, h) {
			t.Fatalf("concurrent read of %d rejected", out)
		}
	}
}

func TestRejectsDoubleCASWin(t *testing.T) {
	// Two CAS(0→x) can't both succeed.
	h := []Op{
		{Proc: 0, Kind: CAS, Expect: 0, Arg: 1, Out: 1, Invoke: 1, Return: 10},
		{Proc: 1, Kind: CAS, Expect: 0, Arg: 2, Out: 1, Invoke: 2, Return: 9},
	}
	if Check(0, h) {
		t.Fatal("double CAS win accepted")
	}
}

func TestFAAConcurrent(t *testing.T) {
	// Two overlapping FAA(+1) from 0 must return 0 and 1 in some order.
	ok := []Op{
		{Proc: 0, Kind: FAA, Arg: 1, Out: 0, Invoke: 1, Return: 10},
		{Proc: 1, Kind: FAA, Arg: 1, Out: 1, Invoke: 2, Return: 9},
	}
	if !Check(0, ok) {
		t.Fatal("valid FAA pair rejected")
	}
	bad := []Op{
		{Proc: 0, Kind: FAA, Arg: 1, Out: 0, Invoke: 1, Return: 10},
		{Proc: 1, Kind: FAA, Arg: 1, Out: 0, Invoke: 2, Return: 9},
	}
	if Check(0, bad) {
		t.Fatal("duplicate FAA return accepted")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		Read: "read", Write: "write", CAS: "cas", FAA: "faa", Swap: "swap", Kind(9): "Kind(9)",
	} {
		if k.String() != want {
			t.Errorf("Kind %d → %q, want %q", int(k), k.String(), want)
		}
	}
}

// recordOps drives `procs` goroutines performing random operations on one
// rmr word concurrently and records the invocation/response history.
func recordOps(t *testing.T, seed int64, procs, perProc int) []Op {
	t.Helper()
	m := rmr.NewMemory(rmr.CC, procs, nil)
	a := m.Alloc(0)
	var clock atomic.Int64
	history := make([][]Op, procs)
	var wg sync.WaitGroup
	for i := 0; i < procs; i++ {
		i := i
		rng := rand.New(rand.NewSource(seed + int64(i)*997))
		p := m.Proc(i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < perProc; k++ {
				op := Op{Proc: i, Invoke: clock.Add(1)}
				switch rng.Intn(5) {
				case 0:
					op.Kind = Read
					op.Out = p.Read(a)
				case 1:
					op.Kind = Write
					op.Arg = uint64(rng.Intn(8))
					p.Write(a, op.Arg)
				case 2:
					op.Kind = CAS
					op.Expect = uint64(rng.Intn(8))
					op.Arg = uint64(rng.Intn(8))
					if p.CAS(a, op.Expect, op.Arg) {
						op.Out = 1
					}
				case 3:
					op.Kind = FAA
					op.Arg = uint64(rng.Intn(4))
					op.Out = p.FAA(a, op.Arg)
				case 4:
					op.Kind = Swap
					op.Arg = uint64(rng.Intn(8))
					op.Out = p.Swap(a, op.Arg)
				}
				op.Return = clock.Add(1)
				history[i] = append(history[i], op)
			}
		}()
	}
	wg.Wait()
	var all []Op
	for _, h := range history {
		all = append(all, h...)
	}
	return all
}

// TestSimulatorPrimitivesLinearizable validates the rmr memory under real
// concurrency: every recorded history must linearize against the atomic
// word specification.
func TestSimulatorPrimitivesLinearizable(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		h := recordOps(t, seed, 4, 10)
		if len(h) > 64 {
			t.Fatal("history too long for the checker")
		}
		if !Check(0, h) {
			t.Fatalf("seed %d: rmr.Memory produced a non-linearizable history: %+v", seed, h)
		}
	}
}

func TestEmptyAndOversizedHistories(t *testing.T) {
	if !Check(7, nil) {
		t.Fatal("empty history rejected")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for >64 ops")
		}
	}()
	Check(0, make([]Op, 65))
}
