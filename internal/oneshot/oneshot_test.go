package oneshot

import (
	"sync/atomic"
	"testing"

	"sublock/rmr"
)

// runPassages runs one Enter/CS/Exit passage per process under a seeded
// random schedule. Processes in aborters receive the abort signal before
// they start. It verifies mutual exclusion and that the schedule completes,
// and returns for each process whether it entered the CS, plus its slot.
func runPassages(t *testing.T, model rmr.Model, cfg Config, nprocs int, aborters map[int]bool, seed int64) (entered []bool, slots []int) {
	t.Helper()
	s := rmr.NewScheduler(nprocs, rmr.RandomPick(seed))
	m := rmr.NewMemory(model, nprocs, nil)
	lk, err := New(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.SetGate(s)

	entered = make([]bool, nprocs)
	slots = make([]int, nprocs)
	var inCS atomic.Int32
	var maxCS atomic.Int32
	for i := 0; i < nprocs; i++ {
		p := m.Proc(i)
		if aborters[i] {
			p.SignalAbort()
		}
		h := lk.Handle(p)
		i := i
		s.Go(func() {
			if !h.Enter() {
				slots[i] = h.Slot()
				return
			}
			cur := inCS.Add(1)
			for {
				old := maxCS.Load()
				if cur <= old || maxCS.CompareAndSwap(old, cur) {
					break
				}
			}
			inCS.Add(-1)
			entered[i] = true
			slots[i] = h.Slot()
			h.Exit()
		})
	}
	if err := s.Run(50_000_000); err != nil {
		t.Fatalf("seed %d: schedule did not complete: %v", seed, err)
	}
	if got := maxCS.Load(); got > 1 {
		t.Fatalf("seed %d: mutual exclusion violated: %d processes in CS", seed, got)
	}
	return entered, slots
}

func TestSingleProcess(t *testing.T) {
	m := rmr.NewMemory(rmr.CC, 1, nil)
	lk, err := New(m, Config{W: 4, N: 1})
	if err != nil {
		t.Fatal(err)
	}
	h := lk.Handle(m.Proc(0))
	if !h.Enter() {
		t.Fatal("Enter failed with no contention")
	}
	if h.Slot() != 0 {
		t.Fatalf("Slot = %d, want 0", h.Slot())
	}
	h.Exit()
}

func TestSequentialChain(t *testing.T) {
	// Processes enter strictly one after another (no concurrency): each
	// must acquire immediately after its predecessor exits.
	const n = 8
	m := rmr.NewMemory(rmr.CC, n, nil)
	lk, err := New(m, Config{W: 2, N: n})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		h := lk.Handle(m.Proc(i))
		if !h.Enter() {
			t.Fatalf("process %d failed to enter", i)
		}
		h.Exit()
	}
}

func TestMutualExclusionNoAborts(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		entered, _ := runPassages(t, rmr.CC, Config{W: 4, N: 16}, 16, nil, seed)
		for i, e := range entered {
			if !e {
				t.Fatalf("seed %d: process %d never entered (starvation)", seed, i)
			}
		}
	}
}

func TestMutualExclusionWithAborts(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		aborters := map[int]bool{1: true, 3: true, 4: true, 7: true, 11: true}
		entered, _ := runPassages(t, rmr.CC, Config{W: 4, N: 16}, 16, aborters, seed)
		// An aborter may still enter if it was handed the lock before
		// noticing the signal (paper footnote 2) — runPassages verifies it
		// then exits correctly. The hard requirements are mutual exclusion
		// (checked inside runPassages) and that no non-aborter starves.
		for i, e := range entered {
			if !aborters[i] && !e {
				t.Fatalf("seed %d: non-aborter %d starved", seed, i)
			}
		}
	}
}

func TestAllAbort(t *testing.T) {
	// Everybody receives the signal before starting. The process that draws
	// slot 0 always enters (its go flag is pre-set, so it is granted before
	// it can notice the signal); others abort unless a handoff raced ahead
	// of their signal check. The critical liveness property is that the
	// schedule terminates: nobody may hang waiting for a handoff that no
	// remaining process is responsible for.
	for seed := int64(0); seed < 25; seed++ {
		all := make(map[int]bool, 12)
		for i := 0; i < 12; i++ {
			all[i] = true
		}
		entered, slots := runPassages(t, rmr.CC, Config{W: 2, N: 12}, 12, all, seed)
		for i, e := range entered {
			if slots[i] == 0 && !e {
				t.Fatalf("seed %d: slot-0 process %d did not enter", seed, i)
			}
		}
	}
}

func TestAdaptiveVariantPassages(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		aborters := map[int]bool{2: true, 5: true, 6: true}
		entered, _ := runPassages(t, rmr.CC, Config{W: 4, N: 16, Adaptive: true}, 16, aborters, seed)
		for i, e := range entered {
			if !aborters[i] && !e {
				t.Fatalf("seed %d: non-aborter %d starved (adaptive)", seed, i)
			}
		}
	}
}

func TestDSMVariant(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		aborters := map[int]bool{1: true, 4: true}
		entered, _ := runPassages(t, rmr.DSM, Config{W: 4, N: 12}, 12, aborters, seed)
		for i, e := range entered {
			if !aborters[i] && !e {
				t.Fatalf("seed %d: non-aborter %d starved (DSM)", seed, i)
			}
		}
	}
}

func TestFCFS(t *testing.T) {
	// FCFS (Lemma 17): among non-aborting processes, CS entry order equals
	// doorway (slot) order. Entry order is observed inside the CS, where
	// mutual exclusion makes the observation race-free.
	for seed := int64(0); seed < 25; seed++ {
		const n = 12
		s := rmr.NewScheduler(n, rmr.RandomPick(seed))
		m := rmr.NewMemory(rmr.CC, n, nil)
		lk, err := New(m, Config{W: 2, N: n})
		if err != nil {
			t.Fatal(err)
		}
		m.SetGate(s)
		var order []int
		for i := 0; i < n; i++ {
			h := lk.Handle(m.Proc(i))
			s.Go(func() {
				if h.Enter() {
					order = append(order, h.Slot()) // safe: inside the CS
					h.Exit()
				}
			})
		}
		if err := s.Run(50_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for k := 1; k < len(order); k++ {
			if order[k] < order[k-1] {
				t.Fatalf("seed %d: FCFS violated: CS order %v", seed, order)
			}
		}
		if len(order) != n {
			t.Fatalf("seed %d: only %d of %d entered", seed, len(order), n)
		}
	}
}

func TestNoAbortPassageIsO1(t *testing.T) {
	// Table 1 "No aborts" column: with no aborts a complete passage incurs
	// O(1) RMRs regardless of N — here sequential, so the count is exact
	// and identical for every N.
	for _, n := range []int{8, 64, 512, 4096} {
		m := rmr.NewMemory(rmr.CC, 2, nil)
		lk, err := New(m, Config{W: 8, N: n})
		if err != nil {
			t.Fatal(err)
		}
		p := m.Proc(0)
		before := p.RMRs()
		h := lk.Handle(p)
		if !h.Enter() {
			t.Fatal("Enter failed")
		}
		h.Exit()
		cost := p.RMRs() - before
		// Doorway F&A + go read + Head write + LastExited write +
		// FindNext's reads + (no successor: ⊥ after ascending…) — with
		// nobody else in the queue FindNext(0) ascends to the root. To keep
		// this truly O(1) independent of N we assert a small constant bound
		// only for the adaptive variant below; plain FindNext pays its
		// ascent here. Sanity: cost must not exceed 4 + 2·height.
		maxCost := int64(4 + 2*lk.Tree().Height())
		if cost > maxCost {
			t.Errorf("N=%d: passage RMRs = %d, want ≤ %d", n, cost, maxCost)
		}
	}
}

func TestNoAbortPassageAdaptiveExactlyConstant(t *testing.T) {
	// With AdaptiveFindNext, the exit's successor search costs O(1) when no
	// process aborted, so the whole passage is a constant independent of N.
	var costs []int64
	for _, n := range []int{8, 64, 512, 4096} {
		m := rmr.NewMemory(rmr.CC, 2, nil)
		lk, err := New(m, Config{W: 8, N: n, Adaptive: true})
		if err != nil {
			t.Fatal(err)
		}
		p := m.Proc(0)
		before := p.RMRs()
		h := lk.Handle(p)
		if !h.Enter() {
			t.Fatal("Enter failed")
		}
		h.Exit()
		costs = append(costs, p.RMRs()-before)
	}
	for i := 1; i < len(costs); i++ {
		if costs[i] != costs[0] {
			t.Fatalf("adaptive no-abort passage cost varies with N: %v", costs)
		}
	}
	if costs[0] > 8 {
		t.Fatalf("adaptive no-abort passage cost = %d, want small constant", costs[0])
	}
}

func TestHandoffUnderContentionIsO1PerPassage(t *testing.T) {
	// Queue of n processes, no aborts, concurrent: every passage (including
	// the handoff to the next waiter) costs O(1) — at most a fixed constant
	// independent of n. FindNext(i) finds i+1 after reading one node.
	const n = 32
	s := rmr.NewScheduler(n, rmr.RandomPick(9))
	m := rmr.NewMemory(rmr.CC, n, nil)
	lk, err := New(m, Config{W: 8, N: n})
	if err != nil {
		t.Fatal(err)
	}
	m.SetGate(s)
	costs := make([]int64, n)
	for i := 0; i < n; i++ {
		p := m.Proc(i)
		h := lk.Handle(p)
		i := i
		s.Go(func() {
			before := p.RMRs()
			if h.Enter() {
				h.Exit()
			}
			costs[i] = p.RMRs() - before
		})
	}
	if err := s.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	for i, c := range costs {
		// Enter: F&A + spin (1 initial read + 1 re-read after the grant's
		// invalidation) + Head write. Exit: LastExited write + FindNext
		// (≤ 2 reads at W=8 … next slot is a sibling or one sidestep away,
		// plain variant may ascend: bound by 2H) + go write + an extra
		// cached read. Generous constant:
		if c > 12 {
			t.Errorf("process %d passage RMRs = %d, want ≤ 12", i, c)
		}
	}
}

func TestAbortCostBounded(t *testing.T) {
	// Bounded abort: an abort completes within O(height) of the aborter's
	// own steps once signalled, and an aborted attempt costs O(log_W A_t)
	// RMRs (Corollary 22).
	const n = 64
	m := rmr.NewMemory(rmr.CC, n, nil)
	lk, err := New(m, Config{W: 4, N: n})
	if err != nil {
		t.Fatal(err)
	}
	// Process 0 takes slot 0 and holds the lock.
	h0 := lk.Handle(m.Proc(0))
	if !h0.Enter() {
		t.Fatal("holder failed to enter")
	}
	// Processes 1..40 enqueue then abort, one by one (sequentially).
	for i := 1; i <= 40; i++ {
		p := m.Proc(i)
		p.SignalAbort()
		h := lk.Handle(p)
		before, beforeSteps := p.RMRs(), p.Steps()
		if h.Enter() {
			t.Fatalf("aborter %d entered", i)
		}
		rmrs := p.RMRs() - before
		steps := p.Steps() - beforeSteps
		// Abort: doorway F&A + one go read + Remove ascent (≤H F&As) +
		// Head/LastExited reads [+ a handoff that cannot apply here].
		maxCost := int64(5 + lk.Tree().Height())
		if rmrs > maxCost {
			t.Errorf("aborter %d: RMRs = %d, want ≤ %d", i, rmrs, maxCost)
		}
		if steps > maxCost+4 {
			t.Errorf("aborter %d: steps = %d, want ≤ %d (bounded abort)", i, steps, maxCost+4)
		}
	}
	h0.Exit()
}

func TestResponsibilityHandoff(t *testing.T) {
	// The ⊤ scenario of §3: the exiter's FindNext crosses paths with an
	// aborter's Remove and returns ⊤ without signalling anybody; the
	// aborter must then complete the handoff on the exiter's behalf, or a
	// live waiter is stranded forever.
	//
	// Geometry (W=2, N=8, tree of height 3): slot 0 holds the lock; slots
	// 1, 2, 3 abort; slot 4 waits. Remove(3) is paused after its F&A makes
	// node {2,3} EMPTY but before it sets {2,3}'s bit in node {0..3}. The
	// exiter's FindNext(0) then sees a clear bit for {2,3}, descends into
	// it, reads EMPTY, and returns ⊤. When Remove(3) resumes and finishes,
	// process 3 observes Head = LastExited = 0, assumes responsibility, and
	// its own FindNext(0) locates slot 4.
	const n = 5
	c := rmr.NewController(n)
	m := rmr.NewMemory(rmr.CC, n, nil)
	lk, err := New(m, Config{W: 2, N: 8})
	if err != nil {
		t.Fatal(err)
	}
	m.SetGate(c)

	handles := make([]*Handle, n)
	results := make([]bool, n)
	for i := 0; i < n; i++ {
		handles[i] = lk.Handle(m.Proc(i))
	}

	// proc0 enters the CS (slot 0 is pre-granted): F&A, read go[0]=1,
	// write Head.
	c.Go(0, func() {
		results[0] = handles[0].Enter()
		handles[0].Exit()
	})
	c.StepN(0, 3)

	// procs 1..4 enqueue in slot order: doorway F&A + first go read each.
	for i := 1; i < n; i++ {
		i := i
		c.Go(i, func() {
			results[i] = handles[i].Enter()
			if results[i] {
				handles[i].Exit()
			}
		})
		c.StepN(i, 2)
	}

	// Slots 1 and 2 abort to completion. The holder has not exited, so
	// Head=0 ≠ LastExited=−1 and neither attempts a handoff.
	for _, i := range []int{1, 2} {
		m.Proc(i).SignalAbort()
		c.Finish(i, 1000)
		if results[i] {
			t.Fatalf("aborter %d entered the CS", i)
		}
	}

	// Slot 3 aborts but is paused mid-Remove: one spin re-read (notices the
	// signal), then the F&A that makes node {2,3} EMPTY — and stops before
	// the F&A that would set {2,3}'s bit in node {0..3}.
	m.Proc(3).SignalAbort()
	c.StepN(3, 2)

	// The holder exits: reads Head, writes LastExited=0, then FindNext(0):
	// node {0,1} (bit 1 set → ascend), node {0..3} (bit for {2,3} still
	// clear → descend), node {2,3} = EMPTY → ⊤ → Exit returns without
	// signalling anyone.
	c.Finish(0, 1000)
	if got := m.Peek(lk.goB + rmr.Addr(4)); got != 0 {
		t.Fatalf("go[4] = %d after ⊤ exit, want 0 (exiter must not have signalled)", got)
	}

	// Process 3 resumes: completes Remove(3), reads Head=0 = LastExited=0,
	// assumes responsibility, and its FindNext(0) finds slot 4.
	c.Finish(3, 1000)
	if results[3] {
		t.Fatal("aborter 3 entered the CS")
	}
	if got := m.Peek(lk.goB + rmr.Addr(4)); got != 1 {
		t.Fatalf("go[4] = %d after responsible abort, want 1", got)
	}

	// The waiter acquires and exits.
	c.Finish(4, 1000)
	c.Wait()
	if !results[0] {
		t.Fatal("holder failed to enter")
	}
	if !results[4] {
		t.Fatal("waiter was stranded: responsibility handoff failed")
	}
}

func TestAbortAfterGrantStillSignalsSuccessor(t *testing.T) {
	// A process whose go flag is already set but that detects the abort
	// signal first must pass the lock on so a later waiter is not stranded.
	// proc0 enters/exits handing to slot1; slot1's process aborts without
	// ever reading go[1]=1; slot2's process must still acquire.
	const n = 3
	c := rmr.NewController(n)
	m := rmr.NewMemory(rmr.CC, n, nil)
	lk, err := New(m, Config{W: 2, N: n})
	if err != nil {
		t.Fatal(err)
	}
	m.SetGate(c)

	h := []*Handle{lk.Handle(m.Proc(0)), lk.Handle(m.Proc(1)), lk.Handle(m.Proc(2))}
	res := make([]bool, n)

	c.Go(0, func() {
		res[0] = h[0].Enter()
		h[0].Exit()
	})
	c.StepN(0, 3) // enter CS
	c.Go(1, func() { res[1] = h[1].Enter() })
	c.StepN(1, 2) // doorway + first go read (go[1]=0): now spinning
	c.Go(2, func() { res[2] = h[2].Enter() })
	c.StepN(2, 2) // doorway + first go read: spinning on go[2]

	// Deliver proc1's abort signal, then let it take one more spin read:
	// go[1] is still 0, so it notices the signal and commits to aborting —
	// its next operation will be Remove(1)'s F&A.
	m.Proc(1).SignalAbort()
	c.Step(1)

	// Now proc0 exits: FindNext(0) = 1 (Remove(1) has not started), so it
	// grants go[1] — a grant its recipient will never use.
	c.Finish(0, 1000)
	if !res[0] {
		t.Fatal("proc0 failed")
	}

	// proc1 aborts despite the pending grant: Remove(1); then it reads
	// Head = 0 = LastExited, assumes responsibility for the handoff, and
	// its FindNext(0) finds slot 2.
	c.Finish(1, 1000)
	if res[1] {
		t.Fatal("proc1 should have aborted")
	}
	c.Finish(2, 1000)
	if !res[2] {
		t.Fatal("proc2 was stranded: abort-after-grant did not hand off")
	}
	c.Wait()
}

func TestMisusePanics(t *testing.T) {
	m := rmr.NewMemory(rmr.CC, 2, nil)
	lk, err := New(m, Config{W: 2, N: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Run("double enter", func(t *testing.T) {
		h := lk.Handle(m.Proc(0))
		if !h.Enter() {
			t.Fatal("enter failed")
		}
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		h.Enter()
	})
	t.Run("exit without enter", func(t *testing.T) {
		h := lk.Handle(m.Proc(1))
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic")
			}
		}()
		h.Exit()
	})
}

func TestTooManyEntrantsPanics(t *testing.T) {
	m := rmr.NewMemory(rmr.CC, 2, nil)
	lk, err := New(m, Config{W: 2, N: 1})
	if err != nil {
		t.Fatal(err)
	}
	h0 := lk.Handle(m.Proc(0))
	if !h0.Enter() {
		t.Fatal("enter failed")
	}
	h0.Exit()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	lk.Handle(m.Proc(1)).Enter()
}

func TestDSMSpinIsLocal(t *testing.T) {
	// In the DSM model a waiting process must incur O(1) RMRs no matter how
	// long it waits (the §3 DSM variant's whole point). Let proc1 spin for
	// many scheduler steps before proc0 releases, then compare RMR counts.
	const n = 2
	c := rmr.NewController(n)
	m := rmr.NewMemory(rmr.DSM, n, nil)
	lk, err := New(m, Config{W: 2, N: n})
	if err != nil {
		t.Fatal(err)
	}
	m.SetGate(c)

	h0, h1 := lk.Handle(m.Proc(0)), lk.Handle(m.Proc(1))
	c.Go(0, func() {
		h0.Enter()
		h0.Exit()
	})
	c.StepN(0, 3) // proc0 in CS
	var ok bool
	c.Go(1, func() { ok = h1.Enter() })
	c.StepN(1, 400) // doorway, announce publish, go read, long local spin
	spinRMRs := m.Proc(1).RMRs()
	if spinRMRs > 4 {
		t.Fatalf("DSM waiter RMRs while spinning = %d, want ≤ 4", spinRMRs)
	}
	c.Finish(0, 1000)
	c.Finish(1, 1000)
	c.Wait()
	if !ok {
		t.Fatal("waiter did not acquire")
	}
	if total := m.Proc(1).RMRs(); total > 6 {
		t.Fatalf("DSM waiter total RMRs = %d, want ≤ 6", total)
	}
}
