package oneshot

// Focused tests for the §3 DSM variant: the announce/spin-bit indirection
// must preserve every lock property while keeping waiting local.

import (
	"sync/atomic"
	"testing"

	"sublock/rmr"
)

func TestDSMFCFS(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		const n = 10
		s := rmr.NewScheduler(n, rmr.RandomPick(seed))
		m := rmr.NewMemory(rmr.DSM, n, nil)
		lk, err := New(m, Config{W: 2, N: n})
		if err != nil {
			t.Fatal(err)
		}
		m.SetGate(s)
		var order []int
		for i := 0; i < n; i++ {
			h := lk.Handle(m.Proc(i))
			s.Go(func() {
				if h.Enter() {
					order = append(order, h.Slot()) // safe: inside the CS
					h.Exit()
				}
			})
		}
		if err := s.Run(50_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(order) != n {
			t.Fatalf("seed %d: %d of %d entered", seed, len(order), n)
		}
		for k := 1; k < n; k++ {
			if order[k] < order[k-1] {
				t.Fatalf("seed %d: DSM FCFS violated: %v", seed, order)
			}
		}
	}
}

func TestDSMAbortHandoff(t *testing.T) {
	// Slot 1 aborts after publishing its spin bit; the signaller's grant
	// path (go write, announce read, spin-bit write) must still wake the
	// live waiter at slot 2 through its own indirection.
	const n = 3
	c := rmr.NewController(n)
	m := rmr.NewMemory(rmr.DSM, n, nil)
	lk, err := New(m, Config{W: 2, N: n})
	if err != nil {
		t.Fatal(err)
	}
	h := []*Handle{lk.Handle(m.Proc(0)), lk.Handle(m.Proc(1)), lk.Handle(m.Proc(2))}
	m.SetGate(c)

	res := make([]bool, n)
	c.Go(0, func() {
		res[0] = h[0].Enter()
		h[0].Exit()
	})
	c.StepN(0, 4) // F&A, announce publish, go[0] read (=1), Head write → CS

	c.Go(1, func() { res[1] = h[1].Enter() })
	c.StepN(1, 4) // F&A, announce publish, go read (=0), first local spin read
	c.Go(2, func() { res[2] = h[2].Enter() })
	c.StepN(2, 4)

	// Slot 1 aborts fully while the holder is inside the CS.
	m.Proc(1).SignalAbort()
	c.Finish(1, 1000)
	if res[1] {
		t.Fatal("aborter entered")
	}

	// Holder exits: FindNext(0) skips the abandoned slot 1, grants slot 2
	// via announce indirection; the waiter wakes from its local spin.
	c.Finish(0, 1000)
	c.Finish(2, 1000)
	c.Wait()
	if !res[0] || !res[2] {
		t.Fatalf("results = %v, want holder and waiter true", res)
	}
}

func TestDSMNaiveVariantStillCorrect(t *testing.T) {
	// NaiveDSM changes costs, not semantics: mutual exclusion and
	// progress must hold.
	for seed := int64(0); seed < 15; seed++ {
		const n = 8
		s := rmr.NewScheduler(n, rmr.RandomPick(seed))
		m := rmr.NewMemory(rmr.DSM, n, nil)
		lk, err := New(m, Config{W: 4, N: n, NaiveDSM: true})
		if err != nil {
			t.Fatal(err)
		}
		m.SetGate(s)
		var inCS, violations atomic.Int32
		entered := make([]bool, n)
		for i := 0; i < n; i++ {
			i := i
			h := lk.Handle(m.Proc(i))
			s.Go(func() {
				if h.Enter() {
					if inCS.Add(1) > 1 {
						violations.Add(1)
					}
					entered[i] = true
					inCS.Add(-1)
					h.Exit()
				}
			})
		}
		if err := s.Run(50_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if violations.Load() != 0 {
			t.Fatalf("seed %d: mutual exclusion violated", seed)
		}
		for i, e := range entered {
			if !e {
				t.Fatalf("seed %d: process %d starved", seed, i)
			}
		}
	}
}

func TestDSMGrantBeforePublishRace(t *testing.T) {
	// The §3 handshake: the waiter publishes announce[i] then re-checks
	// go[i]; the signaller writes go[i] then reads announce[i]. Force the
	// order where the grant lands before the publish: the waiter must
	// catch it on its go re-check rather than spin forever.
	const n = 2
	c := rmr.NewController(n)
	m := rmr.NewMemory(rmr.DSM, n, nil)
	lk, err := New(m, Config{W: 2, N: n})
	if err != nil {
		t.Fatal(err)
	}
	h0, h1 := lk.Handle(m.Proc(0)), lk.Handle(m.Proc(1))
	m.SetGate(c)

	var ok0, ok1 bool
	c.Go(0, func() {
		ok0 = h0.Enter()
		h0.Exit()
	})
	c.StepN(0, 4) // in CS

	// Waiter performs only its doorway F&A, pausing before the announce
	// publish.
	c.Go(1, func() { ok1 = h1.Enter() })
	c.StepN(1, 1)

	// Holder exits completely: its FindNext grants slot 1 — go[1] ← 1 and
	// announce[1] read as ⊥ (not yet published), so no spin-bit write.
	c.Finish(0, 1000)
	if !ok0 {
		t.Fatal("holder failed")
	}

	// Waiter resumes: publish announce[1], then re-check go[1] — it must
	// see the grant and enter without waiting on its never-to-be-written
	// spin bit.
	c.Finish(1, 1000)
	c.Wait()
	if !ok1 {
		t.Fatal("waiter missed the pre-publish grant")
	}
}
