package oneshot

// Trace-derived invariant checks: the proofs in §5 lean on structural
// facts about the shared variables ("It is easy to verify that LastExited
// and Head are both strictly increasing", Lemma 18; LastExited ≤ Head).
// These tests observe every write through the rmr tracer during seeded
// concurrent runs and verify the facts directly.

import (
	"sync"
	"sync/atomic"
	"testing"

	"sublock/rmr"
)

func TestHeadAndLastExitedMonotonic(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		const n = 12
		s := rmr.NewScheduler(n, rmr.RandomPick(seed))
		m := rmr.NewMemory(rmr.CC, n, nil)
		lk, err := New(m, Config{W: 4, N: n, Adaptive: seed%2 == 0})
		if err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		var headWrites, lastWrites []uint64
		m.SetTracer(func(ev rmr.Event) {
			if ev.Op != rmr.OpWrite {
				return
			}
			mu.Lock()
			defer mu.Unlock()
			switch ev.Addr {
			case lk.head:
				headWrites = append(headWrites, ev.New)
			case lk.last:
				lastWrites = append(lastWrites, ev.New)
			}
		})
		m.SetGate(s)

		aborters := map[int]bool{2: true, 5: true, 9: true}
		for i := 0; i < n; i++ {
			p := m.Proc(i)
			if aborters[i] {
				p.SignalAbort()
			}
			h := lk.Handle(p)
			s.Go(func() {
				if h.Enter() {
					h.Exit()
				}
			})
		}
		if err := s.Run(50_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		check := func(name string, writes []uint64) {
			for i := 1; i < len(writes); i++ {
				if writes[i] <= writes[i-1] {
					t.Fatalf("seed %d: %s not strictly increasing: %v", seed, name, writes)
				}
			}
		}
		check("Head", headWrites)
		check("LastExited", lastWrites)
		// LastExited trails Head: every LastExited value must have been a
		// Head value already (the exiter copies Head into LastExited).
		headSet := map[uint64]bool{}
		for _, v := range headWrites {
			headSet[v] = true
		}
		for _, v := range lastWrites {
			if !headSet[v] {
				t.Fatalf("seed %d: LastExited=%d never appeared in Head %v", seed, v, headWrites)
			}
		}
	}
}

func TestEachGoSlotGrantedIsJustified(t *testing.T) {
	// Every write of 1 to go[j] (beyond the initial go[0]) must name a
	// slot that was actually allocated by the doorway or lies directly
	// ahead of it (pre-grants to the next arrival are legal), and no slot
	// is granted twice by *different* processes unless a responsibility
	// handoff raced — in which case values written are identical (1), so
	// we only verify the target-range invariant here.
	for seed := int64(0); seed < 20; seed++ {
		const n = 10
		s := rmr.NewScheduler(n, rmr.RandomPick(seed*13+1))
		m := rmr.NewMemory(rmr.CC, n, nil)
		lk, err := New(m, Config{W: 2, N: n, Adaptive: true})
		if err != nil {
			t.Fatal(err)
		}
		var grants atomic.Int64
		bad := atomic.Bool{}
		m.SetTracer(func(ev rmr.Event) {
			if ev.Op == rmr.OpWrite && ev.Addr >= lk.goB && ev.Addr < lk.goB+rmr.Addr(n) && ev.New == 1 {
				grants.Add(1)
				slot := int(ev.Addr - lk.goB)
				if slot <= 0 || slot >= n {
					bad.Store(true)
				}
			}
		})
		m.SetGate(s)
		for i := 0; i < n; i++ {
			p := m.Proc(i)
			if i%3 == 1 {
				p.SignalAbort()
			}
			h := lk.Handle(p)
			s.Go(func() {
				if h.Enter() {
					h.Exit()
				}
			})
		}
		if err := s.Run(50_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if bad.Load() {
			t.Fatalf("seed %d: grant outside the valid slot range", seed)
		}
		if grants.Load() == 0 {
			t.Fatalf("seed %d: no grants recorded (tracer broken?)", seed)
		}
	}
}
