package oneshot

// Bounded exhaustive verification (model checking): every schedule of
// length ≤ MaxSteps of small configurations is explored via rmr.Explorer,
// not sampled. Schedules longer than the bound — necessarily containing
// long busy-wait runs, since honest completions are much shorter — are
// pruned and counted. This is the strongest correctness evidence in the
// suite for the one-shot lock's mutual exclusion and safety under
// adversarial scheduling.

import (
	"fmt"
	"slices"
	"sync/atomic"
	"testing"

	"sublock/rmr"
)

// passageBody builds a fresh lock and runs one passage per process, with
// processes whose id is in aborters receiving the abort signal as a
// *scheduled* event: a dedicated signal process performs one shared-memory
// step and then delivers the signal, so the exploration covers every
// possible timing of the abort relative to the victims' steps.
func passageBody(nlock int, w int, adaptive bool, aborters []int) (int, rmr.Body) {
	nprocs := nlock
	signalProc := -1
	if len(aborters) > 0 {
		signalProc = nprocs
		nprocs++
	}
	body := func(s *rmr.Scheduler, maxSteps int) error {
		m := rmr.NewMemory(rmr.CC, nprocs, nil)
		lk, err := New(m, Config{W: w, N: nlock, Adaptive: adaptive})
		if err != nil {
			return err
		}
		m.SetGate(s)
		var inCS atomic.Int32
		var meViolation atomic.Bool
		entered := make([]bool, nlock)
		for i := 0; i < nlock; i++ {
			i := i
			h := lk.Handle(m.Proc(i))
			s.Go(func() {
				if h.Enter() {
					if inCS.Add(1) > 1 {
						meViolation.Store(true)
					}
					entered[i] = true
					inCS.Add(-1)
					h.Exit()
				}
			})
		}
		if signalProc >= 0 {
			p := m.Proc(signalProc)
			scratch := m.Alloc(0)
			s.Go(func() {
				// One dummy step places the delivery at every possible
				// point of the explored schedule.
				p.Read(scratch)
				for _, victim := range aborters {
					m.Proc(victim).SignalAbort()
				}
			})
		}
		if err := s.Run(maxSteps); err != nil {
			// Pruned schedule: release everyone and report the step limit.
			for i := 0; i < nprocs; i++ {
				m.Proc(i).SignalAbort()
			}
			s.Drain()
			return err
		}
		if meViolation.Load() {
			return fmt.Errorf("mutual exclusion violated")
		}
		// At termination every non-aborter must have completed a passage.
		for i := 0; i < nlock; i++ {
			isAborter := false
			for _, a := range aborters {
				if a == i {
					isAborter = true
				}
			}
			if !isAborter && !entered[i] {
				return fmt.Errorf("process %d starved", i)
			}
		}
		return nil
	}
	return nprocs, body
}

func TestExhaustiveTwoProcsNoAborts(t *testing.T) {
	// Honest completion ≈ 17 steps (two passages + spin re-reads); bound
	// at 20 so only spin-unfair schedules are pruned. Calibration: this
	// exhausts ~88k length-bounded schedules in ~2s.
	nprocs, body := passageBody(2, 2, true, nil)
	e := &rmr.Explorer{MaxSteps: 20}
	res, err := e.Run(nprocs, body)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted {
		t.Fatal("choice tree not exhausted")
	}
	t.Logf("2 procs, no aborts: %d schedules explored, %d pruned", res.Explored, res.Pruned)
	if res.Explored < 100 {
		t.Fatalf("suspiciously few schedules: %+v", res)
	}
}

func TestExhaustiveTwoProcsOneAborter(t *testing.T) {
	// Process 1 receives the signal at a schedule-controlled instant; all
	// timings relative to its doorway/spin/abort within the length bound
	// are covered. It may still enter (granted before noticing) — the body
	// demands mutual exclusion, termination, and process 0's completion.
	nprocs, body := passageBody(2, 2, true, []int{1})
	e := &rmr.Explorer{MaxSteps: 22, MaxSchedules: 80000}
	res, err := e.Run(nprocs, body)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("2 procs + aborter: %d schedules explored, %d pruned (exhausted=%v)",
		res.Explored, res.Pruned, res.Exhausted)
}

func TestExhaustiveThreeProcsCapped(t *testing.T) {
	// Three processes explode combinatorially; cover a 60k-schedule
	// depth-first prefix (every explored schedule is still a full run),
	// explored in parallel to exercise the Workers path on a real lock.
	nprocs, body := passageBody(3, 2, true, nil)
	e := &rmr.Explorer{MaxSteps: 30, MaxSchedules: 50000, Workers: 4}
	res, err := e.Run(nprocs, body)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("3 procs: %d schedules explored, %d pruned (exhausted=%v)",
		res.Explored, res.Pruned, res.Exhausted)
}

func TestExhaustiveParallelEquivalence(t *testing.T) {
	// The Explorer's parallel determinism contract on the real lock: an
	// uncapped exploration must produce exactly the sequential
	// Explored/Pruned/Exhausted at every worker count. The bound is kept
	// below the honest completion length so the tree stays small; pruned
	// schedules dominate, which stresses the accounting equally.
	for _, cfg := range []struct {
		name     string
		nlock    int
		aborters []int
		maxSteps int
	}{
		{"2procs", 2, nil, 17},
		{"2procs+aborter", 2, []int{1}, 14},
		{"3procs", 3, nil, 10},
	} {
		t.Run(cfg.name, func(t *testing.T) {
			nprocs, body := passageBody(cfg.nlock, 2, true, cfg.aborters)
			seq := &rmr.Explorer{MaxSteps: cfg.maxSteps}
			want, err := seq.Run(nprocs, body)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{2, 4, 8} {
				par := &rmr.Explorer{MaxSteps: cfg.maxSteps, Workers: workers}
				got, err := par.Run(nprocs, body)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if got.Explored != want.Explored || got.Pruned != want.Pruned ||
					got.Exhausted != want.Exhausted || !slices.Equal(got.Depths, want.Depths) {
					t.Errorf("workers=%d: Result = %+v, want %+v", workers, got, want)
				}
			}
		})
	}
}

func TestExhaustivePORReduction(t *testing.T) {
	// The reduction's acceptance bar on the E8 aborter configuration: with
	// sleep sets on, the explorer must reach the identical Exhausted verdict
	// and the identical pass/violation outcome while exploring at least 10×
	// fewer complete schedules. The leverage comes from the signal process:
	// its single private read commutes with every lock step, so the full
	// tree repeats the whole contention tree once per placement of that
	// read while the reduced tree keeps one placement per equivalence class.
	nprocs, body := passageBody(2, 4, true, []int{1})
	const maxSteps = 16
	full := &rmr.Explorer{MaxSteps: maxSteps}
	want, err := full.Run(nprocs, body)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Exhausted {
		t.Fatal("full exploration did not exhaust the tree")
	}
	por := &rmr.Explorer{MaxSteps: maxSteps, Reduction: rmr.SleepSets}
	got, err := por.Run(nprocs, body)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Exhausted {
		t.Fatal("reduced exploration did not exhaust the tree")
	}
	t.Logf("full: %d explored (%d replays); por: %d explored (%d replays) — %.1fx fewer",
		want.Explored, want.Replays(), got.Explored, got.Replays(),
		float64(want.Explored)/float64(got.Explored))
	if got.Explored*10 > want.Explored {
		t.Errorf("reduction below 10x: full explored %d, por explored %d", want.Explored, got.Explored)
	}
	if got.Replays() > want.Replays() {
		t.Errorf("por replayed %d > full %d", got.Replays(), want.Replays())
	}
}

func TestExhaustiveVisitedReduction(t *testing.T) {
	// The visited-caching acceptance bar on the same E8 aborter
	// configuration as TestExhaustivePORReduction: stacking the state-hash
	// cache on top of sleep sets must reach the identical Exhausted verdict
	// and pass/violation outcome while replaying at least 2× fewer
	// schedules than POR alone. The leverage comes from re-convergence:
	// different interleavings of the abort race funnel into identical
	// (memory, observation, depth) states, and the cache cuts each
	// re-converged subtree at its root. Measured leverage on this
	// configuration is >100×; the pin is kept at the 2× acceptance bar so
	// fingerprint refinements (which lower hit rates) don't flake the test.
	nprocs, body := passageBody(2, 4, true, []int{1})
	const maxSteps = 16
	por := &rmr.Explorer{MaxSteps: maxSteps, Reduction: rmr.SleepSets}
	want, err := por.Run(nprocs, body)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Exhausted {
		t.Fatal("POR exploration did not exhaust the tree")
	}
	vis := &rmr.Explorer{MaxSteps: maxSteps, Reduction: rmr.SleepSets, Visited: true}
	got, err := vis.Run(nprocs, body)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Exhausted {
		t.Fatal("POR+visited exploration did not exhaust the tree")
	}
	t.Logf("por: %d replays; por+visited: %d replays (%d hits) — %.1fx fewer",
		want.Replays(), got.Replays(), got.VisitedHits,
		float64(want.Replays())/float64(got.Replays()))
	if got.VisitedHits == 0 {
		t.Error("visited cache recorded no hits on the E8 configuration")
	}
	if got.Replays()*2 > want.Replays() {
		t.Errorf("visited caching below 2x: por replayed %d, por+visited %d",
			want.Replays(), got.Replays())
	}
}

func TestExhaustivePlainFindNextVariant(t *testing.T) {
	nprocs, body := passageBody(2, 2, false, []int{0})
	e := &rmr.Explorer{MaxSteps: 22, MaxSchedules: 80000}
	res, err := e.Run(nprocs, body)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("plain variant + aborter: %d schedules explored, %d pruned (exhausted=%v)",
		res.Explored, res.Pruned, res.Exhausted)
}
