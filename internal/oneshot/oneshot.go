// Package oneshot implements the one-shot abortable lock of §3 of the paper
// (Figure 1): an array-based queue lock in which each process may attempt to
// acquire the lock at most once, augmented with the Tree data structure that
// tracks which queue slots were abandoned by aborting processes.
//
// The lock satisfies mutual exclusion, starvation freedom, bounded exit,
// bounded abort, and FCFS (Theorem 2). A complete passage incurs
// O(log_W A_i) RMRs, where A_i is the number of processes that abort during
// the passage — O(1) if nobody aborts; an aborted attempt incurs
// O(log_W A_t) RMRs, where A_t is the number of aborts in the execution.
//
// Both the CC variant (processes spin on their go slot) and the DSM variant
// (§3, "DSM variant": processes publish a local spin bit in an announce
// array and spin locally) are provided; the variant is chosen by the memory
// model of the rmr.Memory the lock is built in.
package oneshot

import (
	"fmt"

	"sublock/internal/mem"
	"sublock/internal/tree"
	"sublock/rmr"
)

// noProc is the out-of-band value of LastExited before any process exits
// (the paper's −1).
const noProc = ^uint64(0)

// Config configures a one-shot lock.
type Config struct {
	// W is the Tree arity; 2 ≤ W ≤ 64.
	W int
	// N is the maximum number of processes that will call Enter.
	N int
	// Adaptive selects AdaptiveFindNext (Algorithm 4.3) instead of the
	// plain FindNext (Algorithm 4.1) for lock handoffs.
	Adaptive bool
	// NaiveDSM disables the §3 announce/spin-bit indirection in the DSM
	// model, making waiters spin directly on their (remote) go slot. It
	// exists only for the E10 experiment, which prices the indirection:
	// with it a wait costs O(1) RMRs, without it every re-read is remote.
	NaiveDSM bool
}

// Lock is a one-shot abortable lock living in a simulated shared memory.
// Obtain a per-process Handle to operate it.
type Lock struct {
	cfg  Config
	tr   *tree.Tree
	head rmr.Addr // id of the process currently in (or last in) the CS
	tail rmr.Addr // next free queue slot
	last rmr.Addr // LastExited: id of the last process to release the lock
	goB  rmr.Addr // go[0..N-1]: go[i] set means slot i owns the lock

	// DSM variant state.
	dsm  bool
	annB rmr.Addr // announce[0..N-1]: published spin-word address + 1, 0 = ⊥
}

// New allocates a one-shot lock via a. The DSM spin-bit indirection is used
// automatically when a allocates in a DSM-model memory.
func New(a mem.Allocator, cfg Config) (*Lock, error) {
	tr, err := tree.New(a, tree.Config{W: cfg.W, N: cfg.N})
	if err != nil {
		return nil, fmt.Errorf("oneshot: %w", err)
	}
	l := &Lock{
		cfg:  cfg,
		tr:   tr,
		head: a.Alloc(0),
		tail: a.Alloc(0),
		last: a.Alloc(noProc),
		goB:  a.AllocN(cfg.N, 0),
		dsm:  a.Model() == rmr.DSM,
	}
	a.Poke(l.goB, 1) // go = [1, 0, …, 0]: slot 0 owns the lock initially
	if l.dsm {
		l.annB = a.AllocN(cfg.N, 0)
	}
	if lb, ok := a.(mem.Labeler); ok {
		lb.Label(l.head, 1, "oneshot/head")
		lb.Label(l.tail, 1, "oneshot/tail")
		lb.Label(l.last, 1, "oneshot/last")
		lb.Label(l.goB, cfg.N, "oneshot/go")
		if l.dsm {
			lb.Label(l.annB, cfg.N, "oneshot/announce")
			lb.Label(0, 0, "oneshot/spin") // interned now; spin words are per-handle
		}
	}
	return l, nil
}

// Tree exposes the underlying abandonment tree (for tests and metrics).
func (l *Lock) Tree() *tree.Tree { return l.tr }

// Handle returns process p's handle to the lock, issuing memory operations
// directly through p.
func (l *Lock) Handle(p *rmr.Proc) *Handle {
	return l.HandleWith(p, p)
}

// HandleWith returns a handle that issues memory operations through acc on
// behalf of p. It exists so the long-lived transformation can interpose the
// §6.2 versioned lazy-reset accessor.
func (l *Lock) HandleWith(p *rmr.Proc, acc mem.Ops) *Handle {
	h := &Handle{l: l, p: p, acc: acc, slot: -1}
	if pp, ok := acc.(*rmr.Proc); ok && pp == p {
		h.direct = true
	}
	if l.dsm && !l.cfg.NaiveDSM {
		// The spin word is local to the process in the DSM model; it is
		// allocated per handle because a one-shot lock is used once.
		h.spin = p.Memory().AllocLocal(p.ID(), 0)
		p.Memory().Label(h.spin, 1, "oneshot/spin")
	}
	return h
}

// SetNested marks the handle as wrapped by an outer lock (the long-lived
// transformation): the handle still declares the doorway/waiting/CS/exit/
// abort phases, but leaves the closing transition to rmr.PhaseIdle to the
// wrapper, whose passage extends beyond the inner lock's protocol.
func (h *Handle) SetNested() { h.nested = true }

// Handle is a single process's interface to the one-shot lock. A Handle is
// not safe for concurrent use: it represents one process's program order.
type Handle struct {
	l    *Lock
	p    *rmr.Proc
	acc  mem.Ops
	slot int // queue slot obtained by the doorway F&A; -1 before Enter

	spin    rmr.Addr // DSM: local spin word
	direct  bool     // acc is p itself: addresses are physical, waits may park
	entered bool     // between successful Enter and Exit
	done    bool     // Enter has returned (the one shot is spent)
	nested  bool     // wrapped by longlived: the wrapper owns the idle transition
}

// Slot returns the queue slot the doorway assigned, or -1 before Enter.
// The doorway order defines the FCFS order (Lemma 17).
func (h *Handle) Slot() int { return h.slot }

// Enter attempts to acquire the lock (Algorithm 3.1). It returns true when
// the process has entered the critical section, or false if the attempt was
// abandoned after the process received an abort signal (rmr.Proc.SignalAbort).
// Each handle may call Enter at most once; a second call panics, as does
// calling it after the lock has seen N doorway entries.
func (h *Handle) Enter() bool {
	if h.done || h.entered {
		panic("oneshot: Enter called twice on a one-shot handle")
	}
	h.p.EnterPhase(rmr.PhaseDoorway)
	i := int(h.acc.FAA(h.l.tail, 1)) // doorway
	if i >= h.l.cfg.N {
		panic(fmt.Sprintf("oneshot: %d processes entered a lock configured for N=%d", i+1, h.l.cfg.N))
	}
	h.slot = i
	h.p.EnterPhase(rmr.PhaseWaiting)
	if !h.await(i) {
		h.p.EnterPhase(rmr.PhaseAbort)
		h.abort(i)
		h.done = true
		if !h.nested {
			h.p.EnterPhase(rmr.PhaseIdle)
		}
		return false
	}
	h.p.EnterPhase(rmr.PhaseCS)
	h.acc.Write(h.l.head, uint64(i))
	h.entered = true
	return true
}

// await waits until slot i is granted the lock, returning false if the
// abort signal arrived first. In the CC model the process spins on go[i]
// (cache-coherent: re-reads are local until a signaler's write invalidates
// the copy). In the DSM model it publishes a local spin bit in announce[i]
// and spins on that bit, which is in its own memory partition.
func (h *Handle) await(i int) bool {
	if !h.l.dsm || h.l.cfg.NaiveDSM {
		a := h.l.goB + rmr.Addr(i)
		for h.acc.Read(a) == 0 {
			if h.p.AbortSignal() {
				return false
			}
			h.wait(a)
		}
		return true
	}
	// DSM variant: publish spin bit, re-check go once, then spin locally.
	h.acc.Write(h.l.annB+rmr.Addr(i), uint64(h.spin)+1)
	if h.acc.Read(h.l.goB+rmr.Addr(i)) != 0 {
		return true
	}
	for h.acc.Read(h.spin) == 0 {
		if h.p.AbortSignal() {
			return false
		}
		h.wait(h.spin)
	}
	return true
}

// wait pauses one spin-loop iteration on the word at a, which is still 0.
// A direct handle's addresses are physical, so it may use the adaptive
// Wait (and park, in free-running mode). An accessor-mediated handle (the
// §6.2 lazy-reset region remaps logical slots onto versioned word triples)
// falls back to plain yielding: the address the algorithm names is not the
// word a signaller mutates, so a parked waiter could miss its wake.
func (h *Handle) wait(a rmr.Addr) {
	if h.direct {
		h.p.Wait(a, 0)
		return
	}
	h.p.Yield()
}

// Exit releases the lock (Algorithm 3.2) and hands it to the next
// non-abandoned queue slot. It panics if the process is not in the CS.
func (h *Handle) Exit() {
	if !h.entered {
		panic("oneshot: Exit without a successful Enter")
	}
	h.p.EnterPhase(rmr.PhaseExit)
	head := h.acc.Read(h.l.head)
	h.acc.Write(h.l.last, head)
	h.signalNext(head)
	h.entered = false
	h.done = true
	if !h.nested {
		h.p.EnterPhase(rmr.PhaseIdle)
	}
}

// abort abandons queue slot i (Algorithm 3.3). If the process that last
// exited the CS may have crossed paths with our Tree.Remove — detected by
// Head = LastExited — we assume responsibility for its lock handoff.
func (h *Handle) abort(i int) {
	h.l.tr.Remove(h.acc, i)
	head := h.acc.Read(h.l.head)
	if head != h.acc.Read(h.l.last) {
		return
	}
	h.signalNext(head)
}

// signalNext performs the lock handoff (Algorithm 3.4): find the next
// non-abandoned slot after head and set its go flag. Returning without
// signalling is correct when FindNext yields ⊥ (no successor exists) or ⊤
// (an aborting process crossed our path and assumes responsibility).
func (h *Handle) signalNext(head uint64) {
	var j int
	var out tree.Outcome
	if h.l.cfg.Adaptive {
		j, out = h.l.tr.AdaptiveFindNext(h.acc, int(head))
	} else {
		j, out = h.l.tr.FindNext(h.acc, int(head))
	}
	if out != tree.Found {
		return
	}
	h.setGo(j)
}

// setGo grants the lock to slot j. In the DSM model the grant additionally
// follows the announce indirection so the waiter's local spin bit is set.
func (h *Handle) setGo(j int) {
	h.acc.Write(h.l.goB+rmr.Addr(j), 1)
	if !h.l.dsm || h.l.cfg.NaiveDSM {
		return
	}
	s := h.acc.Read(h.l.annB + rmr.Addr(j))
	if s != 0 {
		h.acc.Write(rmr.Addr(s-1), 1)
	}
}
