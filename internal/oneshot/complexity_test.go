package oneshot

// Complexity-bound tests for Corollary 22: a complete passage costs
// O(log_W A_i) RMRs where A_i is the number of aborts during the passage,
// and an aborted attempt costs O(log_W A_t). These drive concrete workloads
// and check the measured counts against the analytical bounds with explicit
// constants.

import (
	"fmt"
	"math"
	"runtime"
	"sync/atomic"
	"testing"

	"sublock/rmr"
)

// logW returns ⌈log_w(max(2,a))⌉, the height-like bound used in assertions.
func logW(w, a int) int {
	if a < 2 {
		a = 2
	}
	return int(math.Ceil(math.Log(float64(a)) / math.Log(float64(w))))
}

// stormPassage runs: holder enters; A waiters enqueue and then abort (in
// enqueue order, concurrently signalled one at a time); one live waiter
// enqueues; holder exits. Returns (holder passage RMRs, waiter passage
// RMRs, max aborted-attempt RMRs).
func stormPassage(t *testing.T, w, n, aborts int, adaptive bool) (int64, int64, int64) {
	t.Helper()
	m := rmr.NewMemory(rmr.CC, n, nil)
	lk, err := New(m, Config{W: w, N: n, Adaptive: adaptive})
	if err != nil {
		t.Fatal(err)
	}
	holderP := m.Proc(0)
	holder := lk.Handle(holderP)
	holderStart := holderP.RMRs()
	if !holder.Enter() {
		t.Fatal("holder failed")
	}

	type attempt struct {
		p    *rmr.Proc
		ok   bool
		rmrs int64
		done chan struct{}
		in   atomic.Bool
	}
	run := func(id int) *attempt {
		a := &attempt{p: m.Proc(id), done: make(chan struct{})}
		h := lk.Handle(a.p)
		go func() {
			defer close(a.done)
			before := a.p.RMRs()
			if h.Enter() {
				a.in.Store(true)
				h.Exit()
				a.ok = true
			}
			a.rmrs = a.p.RMRs() - before
		}()
		for a.p.Steps() < 4 && !a.in.Load() {
			select {
			case <-a.done:
				return a
			default:
				runtime.Gosched()
			}
		}
		return a
	}

	aborters := make([]*attempt, aborts)
	for i := range aborters {
		aborters[i] = run(1 + i)
	}
	waiter := run(n - 1)
	var maxAborted int64
	for _, a := range aborters {
		a.p.SignalAbort()
		<-a.done
		if !a.ok && a.rmrs > maxAborted {
			maxAborted = a.rmrs
		}
	}
	holder.Exit()
	holderRMRs := holderP.RMRs() - holderStart
	<-waiter.done
	if !waiter.ok {
		t.Fatal("waiter failed")
	}
	return holderRMRs, waiter.rmrs, maxAborted
}

func TestCompletePassageBoundAdaptive(t *testing.T) {
	// Corollary 22 with explicit constants: passage ≤ base + perLevel·⌈log_W A⌉.
	const w, n = 4, 1026
	for _, aborts := range []int{0, 1, 3, 15, 63, 255, 1023} {
		holder, waiter, aborted := stormPassage(t, w, n, aborts, true)
		bound := int64(6 + 4*logW(w, aborts+1))
		if holder > bound {
			t.Errorf("A=%d: holder passage = %d RMRs, bound %d", aborts, holder, bound)
		}
		if waiter > bound {
			t.Errorf("A=%d: waiter passage = %d RMRs, bound %d", aborts, waiter, bound)
		}
		if aborted > bound {
			t.Errorf("A=%d: aborted attempt = %d RMRs, bound %d", aborts, aborted, bound)
		}
	}
}

func TestPlainFindNextPaysFullHeight(t *testing.T) {
	// The non-adaptive variant's handoff is Θ(height) even for A_i=1 when
	// the exiting slot sits at a subtree boundary — the gap
	// AdaptiveFindNext closes (§4.1). Drive the lock until the holder
	// occupies slot n/W−1 (rightmost leaf of the leftmost level-(H−1)
	// subtree), abort its immediate successor, and measure the exit.
	const w = 2
	exitCost := func(n int, adaptive bool) int64 {
		// One process per slot: the lock is one-shot, so the chain that
		// burns slots 0..k-1 needs a fresh process for each passage.
		m := rmr.NewMemory(rmr.CC, n, nil)
		lk, err := New(m, Config{W: w, N: n, Adaptive: adaptive})
		if err != nil {
			t.Fatal(err)
		}
		k := n/w - 1
		for i := 0; i < k; i++ {
			h := lk.Handle(m.Proc(i))
			if !h.Enter() {
				t.Fatalf("chain slot %d failed", i)
			}
			h.Exit()
		}
		holderP := m.Proc(k)
		holder := lk.Handle(holderP)
		if !holder.Enter() {
			t.Fatal("holder failed")
		}
		// Aborter takes slot k+1 and abandons it (signal pre-set: it
		// enqueues, reads its go slot once, and aborts synchronously).
		abP := m.Proc(k + 1)
		abP.SignalAbort()
		if lk.Handle(abP).Enter() {
			t.Fatal("aborter entered")
		}
		before := holderP.RMRs()
		holder.Exit()
		return holderP.RMRs() - before
	}
	type cost struct{ plain, adaptive int64 }
	var costs []cost
	for _, n := range []int{8, 64, 512} {
		costs = append(costs, cost{exitCost(n, false), exitCost(n, true)})
	}
	for i, c := range costs {
		if c.adaptive != costs[0].adaptive {
			t.Errorf("adaptive cost changed with N: %v (index %d)", costs, i)
		}
	}
	if costs[len(costs)-1].plain <= costs[0].plain {
		t.Errorf("plain cost should grow with N: %v", costs)
	}
}

func TestWSweepMonotonicity(t *testing.T) {
	// Larger W strictly helps once the height actually drops (the §1
	// time/space tradeoff).
	const n, aborts = 257, 255
	var prev int64 = 1 << 60
	for _, w := range []int{2, 4, 16, 64} {
		holder, _, _ := stormPassage(t, w, n, aborts, true)
		if holder > prev {
			t.Errorf("W=%d: holder passage %d RMRs > previous width's %d", w, holder, prev)
		}
		prev = holder
	}
}

func TestAbortedAttemptIndependentOfN(t *testing.T) {
	// An aborted attempt costs O(log_W A_t) — independent of N when the
	// abort count is fixed.
	const w, aborts = 4, 7
	var base int64
	for i, n := range []int{16, 256, 1024} {
		_, _, aborted := stormPassage(t, w, n, aborts, true)
		if i == 0 {
			base = aborted
			continue
		}
		if aborted > base+2 {
			t.Errorf("N=%d: aborted attempt = %d RMRs vs %d at N=16 (should not scale with N)", n, aborted, base)
		}
	}
}

func TestNamingTheConstant(t *testing.T) {
	// Document the actual constant for the abort-free fast path: with
	// AdaptiveFindNext an uncontended complete passage costs exactly 6 RMRs
	// (doorway F&A, go-slot read, Head write, LastExited write, one tree
	// read, go-grant write); this pins the fast path against regressions.
	m := rmr.NewMemory(rmr.CC, 1, nil)
	lk, err := New(m, Config{W: 8, N: 64, Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	p := m.Proc(0)
	h := lk.Handle(p)
	before := p.RMRs()
	if !h.Enter() {
		t.Fatal("enter failed")
	}
	h.Exit()
	if got := p.RMRs() - before; got != 6 {
		t.Fatalf("uncontended adaptive passage = %d RMRs, want exactly 6", got)
	}
}

func TestStormDeterminism(t *testing.T) {
	// The storm driver serializes aborts, so measured costs are stable
	// run-to-run — the property the benchmark suite relies on.
	for i := 0; i < 3; i++ {
		h1, w1, a1 := stormPassage(t, 8, 66, 64, true)
		h2, w2, a2 := stormPassage(t, 8, 66, 64, true)
		if h1 != h2 || w1 != w2 || a1 != a2 {
			t.Fatalf("storm run %d not deterministic: (%d,%d,%d) vs (%d,%d,%d)",
				i, h1, w1, a1, h2, w2, a2)
		}
	}
}

func TestManyArities(t *testing.T) {
	// Cross-arity sanity sweep of the full storm at small scale.
	for _, w := range []int{2, 3, 5, 8, 17, 64} {
		t.Run(fmt.Sprintf("W=%d", w), func(t *testing.T) {
			holder, waiter, _ := stormPassage(t, w, 34, 32, true)
			bound := int64(6 + 4*logW(w, 33))
			if holder > bound || waiter > bound {
				t.Errorf("W=%d: holder=%d waiter=%d exceed bound %d", w, holder, waiter, bound)
			}
		})
	}
}
