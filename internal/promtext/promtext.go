// Package promtext writes and lints the Prometheus text exposition format
// (version 0.0.4). It is the single formatting seam shared by the
// simulator-side exporter (rmr.Snapshot.WritePrometheus) and the native
// lock metrics endpoint (abortable/obs), so the two cannot drift: one
// escaping rule, one sample syntax, one linter that CI runs against both.
//
// The writer is deliberately tiny — metric header, sample, histogram —
// and folds write errors in the errWriter style so exporters stay linear.
package promtext

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Label is one name="value" pair attached to a sample.
type Label struct {
	Name, Value string
}

// Writer emits exposition text. Create with NewWriter; check Err once at
// the end — after the first failed write every later call is a no-op.
type Writer struct {
	w   io.Writer
	err error
}

// NewWriter wraps w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w} }

// Err returns the first write error, if any.
func (p *Writer) Err() error { return p.err }

func (p *Writer) printf(format string, args ...any) {
	if p.err == nil {
		_, p.err = fmt.Fprintf(p.w, format, args...)
	}
}

// Metric writes the # HELP and # TYPE header for a metric family. typ is
// one of "counter", "gauge", "histogram", "summary", "untyped".
func (p *Writer) Metric(name, help, typ string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, EscapeHelp(help), name, typ)
}

// Sample writes one integer sample line: name{labels} value.
func (p *Writer) Sample(name string, labels []Label, value int64) {
	p.printf("%s%s %d\n", name, formatLabels(labels), value)
}

// SampleFloat writes one floating-point sample line.
func (p *Writer) SampleFloat(name string, labels []Label, value float64) {
	p.printf("%s%s %s\n", name, formatLabels(labels), strconv.FormatFloat(value, 'g', -1, 64))
}

// Bucket is one cumulative histogram bucket: the upper bound rendered as
// its le label value ("255" or "+Inf") and the cumulative count.
type Bucket struct {
	LE  string
	Cum int64
}

// Histogram writes a full conventional histogram family: the _bucket
// series (which must end with the +Inf bucket), then _sum and _count
// (count is the +Inf bucket's cumulative value). labels are attached to
// every line, with le appended on the buckets.
func (p *Writer) Histogram(name string, labels []Label, buckets []Bucket, sum int64) {
	var count int64
	for _, b := range buckets {
		bl := append(append([]Label{}, labels...), Label{"le", b.LE})
		p.Sample(name+"_bucket", bl, b.Cum)
		count = b.Cum
	}
	p.Sample(name+"_sum", labels, sum)
	p.Sample(name+"_count", labels, count)
}

func formatLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var sb strings.Builder
	sb.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(l.Name)
		sb.WriteString(`="`)
		sb.WriteString(EscapeValue(l.Value))
		sb.WriteByte('"')
	}
	sb.WriteByte('}')
	return sb.String()
}

var valueEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// EscapeValue escapes a label value for inclusion in double quotes.
func EscapeValue(v string) string { return valueEscaper.Replace(v) }

// EscapeHelp escapes HELP text (backslash and newline only, per the spec).
func EscapeHelp(v string) string { return helpEscaper.Replace(v) }
