package promtext

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriterOutput(t *testing.T) {
	var buf bytes.Buffer
	p := NewWriter(&buf)
	p.Metric("x_total", "An example counter.", "counter")
	p.Sample("x_total", []Label{{"kind", "a"}, {"q", `he said "hi"` + "\n"}}, 3)
	p.SampleFloat("x_total", nil, 1.5)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "# HELP x_total An example counter.\n" +
		"# TYPE x_total counter\n" +
		`x_total{kind="a",q="he said \"hi\"\n"} 3` + "\n" +
		"x_total 1.5\n"
	if got != want {
		t.Errorf("writer output:\n%q\nwant:\n%q", got, want)
	}
}

func TestWriterHistogram(t *testing.T) {
	var buf bytes.Buffer
	p := NewWriter(&buf)
	p.Metric("lat_ns", "Latency.", "histogram")
	p.Histogram("lat_ns", []Label{{"lock", "l"}}, []Bucket{
		{"255", 2}, {"511", 5}, {"+Inf", 7},
	}, 1234)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`lat_ns_bucket{lock="l",le="255"} 2`,
		`lat_ns_bucket{lock="l",le="+Inf"} 7`,
		`lat_ns_sum{lock="l"} 1234`,
		`lat_ns_count{lock="l"} 7`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("histogram output missing %q:\n%s", want, out)
		}
	}
	if errs := Lint(strings.NewReader(out)); errs != nil {
		t.Errorf("lint rejects writer histogram output: %v", errs)
	}
}

func TestLintAcceptsWriterOutput(t *testing.T) {
	var buf bytes.Buffer
	p := NewWriter(&buf)
	p.Metric("a_total", "A.", "counter")
	p.Sample("a_total", []Label{{"x", "1"}}, 1)
	p.Sample("a_total", []Label{{"x", "2"}}, 2)
	p.Metric("h_ns", "H.", "histogram")
	p.Histogram("h_ns", []Label{{"lock", "a"}}, []Bucket{{"1", 1}, {"+Inf", 4}}, 9)
	p.Histogram("h_ns", []Label{{"lock", "b"}}, []Bucket{{"1", 0}, {"+Inf", 2}}, 3)
	if errs := Lint(bytes.NewReader(buf.Bytes())); errs != nil {
		t.Fatalf("lint errors on clean document: %v", errs)
	}
}

func TestLintCatches(t *testing.T) {
	cases := []struct {
		name, doc, wantSub string
	}{
		{"bad metric name", "2bad 1\n", "invalid metric name"},
		{"bad name in TYPE", "# TYPE 2bad counter\n", "invalid metric name"},
		{"unknown type", "# TYPE x sometype\n", "unknown TYPE"},
		{"duplicate type", "# TYPE x counter\n# TYPE x counter\n", "duplicate TYPE"},
		{"type after samples", "x 1\n# TYPE x counter\n", "after its samples"},
		{"interleaved families", "a 1\nb 1\na 2\n", "not contiguous"},
		{"bad label name", `x{2bad="v"} 1` + "\n", "invalid label name"},
		{
			"decreasing buckets",
			"# TYPE h histogram\n" +
				`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="+Inf"} 3` + "\n" +
				"h_sum 0\nh_count 3\n",
			"decrease",
		},
		{
			"missing inf",
			"# TYPE h histogram\n" + `h_bucket{le="1"} 5` + "\n" + "h_sum 0\nh_count 5\n",
			"no +Inf bucket",
		},
		{
			"count mismatch",
			"# TYPE h histogram\n" + `h_bucket{le="+Inf"} 5` + "\n" + "h_sum 0\nh_count 4\n",
			"_count",
		},
		{
			"missing sum",
			"# TYPE h histogram\n" + `h_bucket{le="+Inf"} 5` + "\n" + "h_count 5\n",
			"missing _sum",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			errs := Lint(strings.NewReader(c.doc))
			found := false
			for _, e := range errs {
				if strings.Contains(e.Error(), c.wantSub) {
					found = true
				}
			}
			if !found {
				t.Errorf("lint missed %q; got %v", c.wantSub, errs)
			}
		})
	}
}

func TestLintSampleParsing(t *testing.T) {
	name, labels, v, ok := parseSample(`m{a="x\"y",b="z"} 42 1700000000`)
	if !ok || name != "m" || v != 42 {
		t.Fatalf("parseSample = %q %v %v %v", name, labels, v, ok)
	}
	if len(labels) != 2 || labels[0].Value != `x"y` || labels[1].Value != "z" {
		t.Fatalf("labels = %v", labels)
	}
}
