package promtext

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"strconv"
	"strings"
)

// Lint validates a text exposition document: metric and label name syntax,
// known TYPE values, HELP/TYPE headers preceding their samples, samples of
// one family staying contiguous, and histogram conventions (le-labeled
// cumulative non-decreasing _bucket series ending at +Inf, with matching
// _sum and _count). It returns every problem found, or nil.
//
// This is the check CI runs against both the simulator exporter output and
// a live scrape of the native metrics endpoint.
func Lint(r io.Reader) []error {
	var errs []error
	fail := func(line int, format string, args ...any) {
		errs = append(errs, fmt.Errorf("line %d: %s", line, fmt.Sprintf(format, args...)))
	}

	types := map[string]string{}    // family → TYPE
	sealed := map[string]bool{}     // family whose sample block has ended
	sampled := map[string]bool{}    // family that has emitted at least one sample
	hist := map[string]*histCheck{} // family (TYPE histogram) → bucket state
	current := ""                   // family of the open sample block
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	n := 0
	for sc.Scan() {
		n++
		line := sc.Text()
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			f := strings.SplitN(line, " ", 4)
			if len(f) < 3 || (f[1] != "HELP" && f[1] != "TYPE") {
				continue // free-form comment
			}
			name := f[2]
			if !nameRe.MatchString(name) {
				fail(n, "invalid metric name %q in %s comment", name, f[1])
				continue
			}
			if f[1] == "TYPE" {
				if len(f) != 4 || !knownTypes[f[3]] {
					fail(n, "unknown TYPE for %s", name)
					continue
				}
				if _, dup := types[name]; dup {
					fail(n, "duplicate TYPE for %s", name)
				}
				if sampled[name] {
					fail(n, "TYPE for %s after its samples", name)
				}
				types[name] = f[3]
				if f[3] == "histogram" {
					hist[name] = &histCheck{series: map[string]*seriesCheck{}}
				}
			}
			continue
		}
		name, labels, value, ok := parseSample(line)
		if !ok {
			fail(n, "unparseable sample %q", line)
			continue
		}
		if !nameRe.MatchString(name) {
			fail(n, "invalid metric name %q", name)
		}
		for _, l := range labels {
			if !labelRe.MatchString(l.Name) {
				fail(n, "invalid label name %q on %s", l.Name, name)
			}
		}
		fam := family(name, types)
		sampled[fam] = true
		if fam != current {
			if sealed[fam] {
				fail(n, "samples of %s are not contiguous", fam)
			}
			if current != "" {
				sealed[current] = true
			}
			current = fam
		}
		if h, isHist := hist[fam]; isHist {
			h.sample(name, fam, labels, value, n, fail)
		}
	}
	if err := sc.Err(); err != nil {
		errs = append(errs, err)
	}
	for fam, h := range hist {
		h.finish(fam, &errs)
	}
	return errs
}

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

var knownTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true, "summary": true, "untyped": true,
}

// family maps a sample name to its metric family: histogram (and summary)
// series drop the _bucket/_sum/_count suffix when the base name has a TYPE.
func family(name string, types map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if t := types[base]; t == "histogram" || t == "summary" {
				return base
			}
		}
	}
	return name
}

// parseSample splits `name{a="b",...} value [timestamp]`. It tolerates
// escaped quotes and backslashes inside label values.
func parseSample(line string) (name string, labels []Label, value float64, ok bool) {
	rest := line
	if i := strings.IndexAny(rest, "{ "); i < 0 {
		return "", nil, 0, false
	} else {
		name, rest = rest[:i], rest[i:]
	}
	if strings.HasPrefix(rest, "{") {
		rest = rest[1:]
		for !strings.HasPrefix(rest, "}") {
			eq := strings.Index(rest, "=")
			if eq < 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
				return "", nil, 0, false
			}
			ln := rest[:eq]
			rest = rest[eq+2:]
			var val strings.Builder
			for {
				if rest == "" {
					return "", nil, 0, false
				}
				c := rest[0]
				if c == '\\' && len(rest) >= 2 {
					val.WriteByte(rest[1])
					rest = rest[2:]
					continue
				}
				rest = rest[1:]
				if c == '"' {
					break
				}
				val.WriteByte(c)
			}
			labels = append(labels, Label{ln, val.String()})
			rest = strings.TrimPrefix(rest, ",")
		}
		rest = rest[1:]
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, false
	}
	v, err := strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, false
	}
	return name, labels, v, true
}

// histCheck accumulates one histogram family's consistency state, one
// seriesCheck per distinct non-le label set (a family can carry several
// series, e.g. one per lock).
type histCheck struct {
	series map[string]*seriesCheck
}

type seriesCheck struct {
	last     float64 // previous cumulative value (monotonicity)
	lastLE   float64 // previous le bound
	sawInf   bool
	infCum   float64
	sum, cnt *float64
	started  bool
}

// signature keys a series by its labels minus le.
func signature(labels []Label) string {
	var sb strings.Builder
	for _, l := range labels {
		if l.Name == "le" {
			continue
		}
		sb.WriteString(l.Name)
		sb.WriteByte('=')
		sb.WriteString(l.Value)
		sb.WriteByte(';')
	}
	return sb.String()
}

func (h *histCheck) at(labels []Label) *seriesCheck {
	sig := signature(labels)
	s := h.series[sig]
	if s == nil {
		s = &seriesCheck{}
		h.series[sig] = s
	}
	return s
}

func (h *histCheck) sample(name, fam string, labels []Label, value float64, n int, fail func(int, string, ...any)) {
	s := h.at(labels)
	switch name {
	case fam + "_bucket":
		le := ""
		for _, l := range labels {
			if l.Name == "le" {
				le = l.Value
			}
		}
		if le == "" {
			fail(n, "%s_bucket sample without le label", fam)
			return
		}
		bound := math.Inf(1)
		if le != "+Inf" {
			var err error
			bound, err = strconv.ParseFloat(le, 64)
			if err != nil {
				fail(n, "%s_bucket has unparseable le=%q", fam, le)
				return
			}
		}
		if s.started {
			if bound <= s.lastLE {
				fail(n, "%s buckets out of order (le=%q)", fam, le)
			}
			if value < s.last {
				fail(n, "%s cumulative bucket counts decrease at le=%q", fam, le)
			}
		}
		s.started, s.last, s.lastLE = true, value, bound
		if le == "+Inf" {
			s.sawInf, s.infCum = true, value
		}
	case fam + "_sum":
		v := value
		s.sum = &v
	case fam + "_count":
		v := value
		s.cnt = &v
	}
}

func (h *histCheck) finish(fam string, errs *[]error) {
	for _, s := range h.series {
		if !s.started && s.sum == nil && s.cnt == nil {
			continue // declared but never sampled: all-zero families may be omitted
		}
		if !s.sawInf {
			*errs = append(*errs, fmt.Errorf("histogram %s has no +Inf bucket", fam))
		}
		if s.sum == nil || s.cnt == nil {
			*errs = append(*errs, fmt.Errorf("histogram %s is missing _sum or _count", fam))
			continue
		}
		if s.sawInf && *s.cnt != s.infCum {
			*errs = append(*errs, fmt.Errorf("histogram %s: _count %g != +Inf bucket %g", fam, *s.cnt, s.infCum))
		}
	}
}
