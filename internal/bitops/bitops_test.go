package bitops

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// naive reference implementations, written directly from the paper's prose.

func naiveBit(v uint64, w, offset int) bool {
	return (v>>uint(w-1-offset))&1 == 1
}

func naiveFirstZeroToTheRight(v uint64, w, offset int) int {
	for o := offset + 1; o < w; o++ {
		if !naiveBit(v, w, o) {
			return o
		}
	}
	return -1
}

func TestEmpty(t *testing.T) {
	for _, tt := range []struct {
		w    int
		want uint64
	}{
		{1, 1},
		{2, 3},
		{3, 7},
		{8, 0xFF},
		{63, (1 << 63) - 1},
		{64, ^uint64(0)},
	} {
		if got := Empty(tt.w); got != tt.want {
			t.Errorf("Empty(%d) = %#x, want %#x", tt.w, got, tt.want)
		}
	}
}

func TestMaskMSBFirst(t *testing.T) {
	// For W=8: offset 0 is the MSB (0x80), offset 7 the LSB (0x01).
	if got := Mask(8, 0); got != 0x80 {
		t.Errorf("Mask(8,0) = %#x, want 0x80", got)
	}
	if got := Mask(8, 7); got != 0x01 {
		t.Errorf("Mask(8,7) = %#x, want 0x01", got)
	}
	if got := Mask(64, 0); got != 1<<63 {
		t.Errorf("Mask(64,0) = %#x, want 1<<63", got)
	}
	if got := Mask(64, 63); got != 1 {
		t.Errorf("Mask(64,63) = %#x, want 1", got)
	}
}

func TestExhaustiveSmallW(t *testing.T) {
	// For every width up to 10 bits, every value, every offset (including
	// -1), the fast implementations must agree with the naive ones.
	for w := 1; w <= 10; w++ {
		for v := uint64(0); v < uint64(1)<<uint(w); v++ {
			for offset := -1; offset < w; offset++ {
				wantIdx := naiveFirstZeroToTheRight(v, w, offset)
				if got := FirstZeroToTheRight(v, w, offset); got != wantIdx {
					t.Fatalf("FirstZeroToTheRight(%#x, %d, %d) = %d, want %d",
						v, w, offset, got, wantIdx)
				}
				if got := HasZeroToTheRight(v, w, offset); got != (wantIdx >= 0) {
					t.Fatalf("HasZeroToTheRight(%#x, %d, %d) = %v, want %v",
						v, w, offset, got, wantIdx >= 0)
				}
				if offset >= 0 {
					if got := Bit(v, w, offset); got != naiveBit(v, w, offset) {
						t.Fatalf("Bit(%#x, %d, %d) = %v", v, w, offset, got)
					}
				}
			}
		}
	}
}

func TestQuickW64(t *testing.T) {
	// Property test at full width, where shift edge cases live.
	f := func(v uint64, off uint8) bool {
		offset := int(off%65) - 1 // -1..63
		return FirstZeroToTheRight(v, 64, offset) ==
			naiveFirstZeroToTheRight(v, 64, offset)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRandomWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20000; i++ {
		w := 1 + rng.Intn(64)
		v := rng.Uint64() & Empty(w)
		offset := rng.Intn(w+1) - 1
		if got, want := FirstZeroToTheRight(v, w, offset), naiveFirstZeroToTheRight(v, w, offset); got != want {
			t.Fatalf("FirstZeroToTheRight(%#x, %d, %d) = %d, want %d", v, w, offset, got, want)
		}
	}
}

func TestFirstZero(t *testing.T) {
	for _, tt := range []struct {
		v    uint64
		w    int
		want int
	}{
		{0x00, 8, 0},  // all clear: leftmost offset
		{0x80, 8, 1},  // MSB set: next offset
		{0xFE, 8, 7},  // only LSB clear
		{0xFF, 8, -1}, // EMPTY
		{^uint64(0), 64, -1},
		{^uint64(1), 64, 63},
	} {
		if got := FirstZero(tt.v, tt.w); got != tt.want {
			t.Errorf("FirstZero(%#x, %d) = %d, want %d", tt.v, tt.w, got, tt.want)
		}
	}
}

func TestFirstZeroIsLeftmost(t *testing.T) {
	// 0b0101 with W=4: zeros at offsets 0 and 2; "first" must be 0.
	if got := FirstZero(0b0101, 4); got != 0 {
		t.Fatalf("FirstZero(0b0101, 4) = %d, want 0", got)
	}
	// To the right of offset 0, the first zero is at 2.
	if got := FirstZeroToTheRight(0b0101, 4, 0); got != 2 {
		t.Fatalf("FirstZeroToTheRight(0b0101, 4, 0) = %d, want 2", got)
	}
}

func TestOnesCount(t *testing.T) {
	if got := OnesCount(0xF0F0, 16); got != 8 {
		t.Fatalf("OnesCount(0xF0F0, 16) = %d, want 8", got)
	}
	// Bits above width w are ignored.
	if got := OnesCount(0xFF00, 8); got != 0 {
		t.Fatalf("OnesCount(0xFF00, 8) = %d, want 0", got)
	}
}

func TestRemoveAccumulation(t *testing.T) {
	// Simulate a node whose children abandon one by one (the Remove F&A
	// pattern): adding Mask(w, o) for each distinct o must reach EMPTY
	// exactly after w additions, never overflowing into neighbours.
	for w := 1; w <= 64; w++ {
		var v uint64
		perm := rand.New(rand.NewSource(int64(w))).Perm(w)
		for i, o := range perm {
			v += Mask(w, o)
			if full := v == Empty(w); full != (i == w-1) {
				t.Fatalf("w=%d: after %d removes value=%#x empty=%v", w, i+1, v, full)
			}
		}
	}
}
