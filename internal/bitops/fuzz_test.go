package bitops

import "testing"

// FuzzFirstZeroToTheRight cross-checks the bit-twiddling implementation
// against the naive scan for arbitrary inputs (run with `go test -fuzz` to
// search beyond the seed corpus; seeds alone already cover the edges).
func FuzzFirstZeroToTheRight(f *testing.F) {
	f.Add(uint64(0), uint8(1), int8(-1))
	f.Add(^uint64(0), uint8(64), int8(63))
	f.Add(uint64(0xAAAA_AAAA_AAAA_AAAA), uint8(64), int8(0))
	f.Add(uint64(0x7F), uint8(8), int8(0))
	f.Add(uint64(1)<<63, uint8(64), int8(-1))
	f.Fuzz(func(t *testing.T, v uint64, wRaw uint8, offRaw int8) {
		w := 1 + int(wRaw)%64
		offset := int(offRaw)
		if offset < -1 {
			offset = -1
		}
		if offset >= w {
			offset = w - 1
		}
		v &= Empty(w)
		want := naiveFirstZeroToTheRight(v, w, offset)
		if got := FirstZeroToTheRight(v, w, offset); got != want {
			t.Fatalf("FirstZeroToTheRight(%#x, %d, %d) = %d, want %d", v, w, offset, got, want)
		}
		if got := HasZeroToTheRight(v, w, offset); got != (want >= 0) {
			t.Fatalf("HasZeroToTheRight(%#x, %d, %d) = %v, want %v", v, w, offset, got, want >= 0)
		}
	})
}

// FuzzMaskAccumulation checks that summing distinct child masks behaves
// like setting bits (the Remove F&A invariant): no overflow between
// neighbouring positions, EMPTY reached exactly when all offsets added.
func FuzzMaskAccumulation(f *testing.F) {
	f.Add(uint8(2), uint16(0b01))
	f.Add(uint8(64), uint16(0xFFFF))
	f.Fuzz(func(t *testing.T, wRaw uint8, picks uint16) {
		w := 1 + int(wRaw)%64
		var v uint64
		var set []int
		for o := 0; o < w && o < 16; o++ {
			if picks&(1<<o) != 0 {
				v += Mask(w, o)
				set = append(set, o)
			}
		}
		for o := 0; o < w && o < 16; o++ {
			want := false
			for _, s := range set {
				if s == o {
					want = true
				}
			}
			if got := Bit(v, w, o); got != want {
				t.Fatalf("w=%d picks=%#x: Bit(%d) = %v, want %v", w, picks, o, got, want)
			}
		}
	})
}
