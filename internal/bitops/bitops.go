// Package bitops implements the W-bit word operations that the paper's Tree
// data structure is defined in terms of (Figure 3, footnotes).
//
// A node value stores W bits in the low W bits of a uint64. Bit offsets are
// counted MSB-first, following the paper: offset 0 is the most significant
// of the W bits (the leftmost child), offset W-1 the least significant (the
// rightmost child). "To the right of offset o" therefore means offsets
// strictly greater than o, i.e. strictly less significant positions.
package bitops

import "math/bits"

// MaxW is the largest supported word width, the width of the simulated
// machine word.
const MaxW = 64

// Empty returns the all-ones W-bit word, the paper's EMPTY constant
// (2^W − 1): the value of a node all of whose children have been abandoned.
func Empty(w int) uint64 {
	if w >= MaxW {
		return ^uint64(0)
	}
	return (uint64(1) << uint(w)) - 1
}

// Mask returns the W-bit word with only the offset-th MSB set, the operand
// of the F&A in Tree.Remove (Algorithm 4.2, line 38).
func Mask(w, offset int) uint64 {
	return uint64(1) << uint(w-1-offset)
}

// Bit reports whether the offset-th MSB of v is set.
func Bit(v uint64, w, offset int) bool {
	return v&Mask(w, offset) != 0
}

// rightMask returns the mask covering all offsets strictly greater than
// offset (strictly to the right). offset = -1 covers the entire word and is
// how GetFirstZero is expressed; offset = w-1 yields the empty mask.
func rightMask(w, offset int) uint64 {
	k := w - 1 - offset // number of positions to the right of offset
	if k <= 0 {
		return 0
	}
	if k >= MaxW {
		return ^uint64(0)
	}
	return (uint64(1) << uint(k)) - 1
}

// HasZeroToTheRight reports whether v has a zero bit at an offset strictly
// greater than offset. offset may be -1 to test the whole word.
func HasZeroToTheRight(v uint64, w, offset int) bool {
	m := rightMask(w, offset)
	return ^v&m != 0
}

// FirstZeroToTheRight returns the smallest offset greater than offset at
// which v has a zero bit, or -1 if there is none. ("First" is leftmost,
// i.e. most significant, matching the paper's left-to-right child order.)
func FirstZeroToTheRight(v uint64, w, offset int) int {
	z := ^v & rightMask(w, offset)
	if z == 0 {
		return -1
	}
	return w - bits.Len64(z)
}

// FirstZero returns the smallest offset at which v has a zero bit, or -1 if
// v is EMPTY.
func FirstZero(v uint64, w int) int {
	return FirstZeroToTheRight(v, w, -1)
}

// OnesCount returns the number of set bits among the low w bits of v.
func OnesCount(v uint64, w int) int {
	return bits.OnesCount64(v & Empty(w))
}
