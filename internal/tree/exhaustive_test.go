package tree

// Bounded exhaustive verification of the Tree's concurrent semantics: all
// interleavings (up to the step bound) of concurrent Remove and FindNext
// operations on small trees, checked against the §5.1.2 properties. The
// Tree's operations are wait-free — no spinning — so these configurations
// exhaust completely with no pruning.

import (
	"fmt"
	"sync/atomic"
	"testing"

	"sublock/rmr"
)

// removeSearchBody runs one FindNext(from) by a searcher concurrently with
// Removes of the given leaves (one process per leaf) and validates the
// §5.1.2 properties that are checkable per run:
//
//   - Found q ⇒ q > from, q not a removed leaf whose Remove completed
//     before the search started, and every leaf strictly between from and
//     q must be one of the removing leaves (Property 9's sound shadow).
//   - ⊥ ⇒ every leaf > from is one of the removing leaves.
//   - ⊤ ⇒ at least one Remove was incomplete when the search started or
//     running concurrently (always true here; nothing to check).
func removeSearchBody(w, n, from int, removes []int) (int, rmr.Body) {
	nprocs := len(removes) + 1
	body := func(s *rmr.Scheduler, maxSteps int) error {
		m := rmr.NewMemory(rmr.CC, nprocs, nil)
		tr, err := New(m, Config{W: w, N: n})
		if err != nil {
			return err
		}
		m.SetGate(s)
		removeDone := make([]atomic.Bool, n)
		for i, leaf := range removes {
			p := m.Proc(i)
			leaf := leaf
			s.Go(func() {
				tr.Remove(p, leaf)
				removeDone[leaf].Store(true)
			})
		}
		var q int
		var out Outcome
		var preDone []bool
		searcher := m.Proc(nprocs - 1)
		s.Go(func() {
			preDone = make([]bool, n)
			for leaf := 0; leaf < n; leaf++ {
				preDone[leaf] = removeDone[leaf].Load()
			}
			q, out = tr.AdaptiveFindNext(searcher, from)
		})
		if err := s.Run(maxSteps); err != nil {
			s.Drain() // wait-free ops: everyone finishes once released
			return err
		}
		isRemover := make(map[int]bool, len(removes))
		for _, leaf := range removes {
			isRemover[leaf] = true
		}
		switch out {
		case Found:
			if q <= from {
				return fmt.Errorf("Found %d ≤ from %d", q, from)
			}
			if preDone[q] {
				return fmt.Errorf("returned %d whose Remove completed before the search", q)
			}
			for leaf := from + 1; leaf < q; leaf++ {
				if !isRemover[leaf] {
					return fmt.Errorf("skipped live leaf %d to return %d", leaf, q)
				}
			}
		case None:
			for leaf := from + 1; leaf < n; leaf++ {
				if !isRemover[leaf] {
					return fmt.Errorf("⊥ despite live leaf %d", leaf)
				}
			}
		case Crossed:
			// Legal whenever removers run concurrently.
		default:
			return fmt.Errorf("invalid outcome %v", out)
		}
		return nil
	}
	return nprocs, body
}

func TestExhaustiveSearchVsOneRemove(t *testing.T) {
	// W=2, N=4: search from 0 while leaf 1 is removed concurrently.
	nprocs, body := removeSearchBody(2, 4, 0, []int{1})
	e := &rmr.Explorer{}
	res, err := e.Run(nprocs, body)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted || res.Pruned != 0 {
		t.Fatalf("res = %+v, want full exhaustion with no pruning", res)
	}
	t.Logf("search vs 1 remove: %d schedules", res.Explored)
}

func TestExhaustiveSearchVsTwoRemoves(t *testing.T) {
	// W=2, N=4: both leaves of the right subtree removed concurrently with
	// the search — the configuration that produces ⊤ crossings.
	nprocs, body := removeSearchBody(2, 4, 0, []int{2, 3})
	e := &rmr.Explorer{}
	res, err := e.Run(nprocs, body)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted || res.Pruned != 0 {
		t.Fatalf("res = %+v, want full exhaustion with no pruning", res)
	}
	t.Logf("search vs 2 removes: %d schedules", res.Explored)
}

func TestExhaustiveSearchVsThreeRemoves(t *testing.T) {
	// Everything right of 0 removed: outcomes can be Found (early search),
	// ⊤ (crossing), or ⊥ (late search).
	nprocs, body := removeSearchBody(2, 4, 0, []int{1, 2, 3})
	e := &rmr.Explorer{MaxSchedules: 200000}
	res, err := e.Run(nprocs, body)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("search vs 3 removes: %d schedules (exhausted=%v)", res.Explored, res.Exhausted)
	if !res.Exhausted {
		t.Fatalf("expected exhaustion for wait-free ops, got %+v", res)
	}
}

func TestExhaustiveWiderTree(t *testing.T) {
	// W=3, N=9, search from 1 with removes straddling a subtree boundary.
	nprocs, body := removeSearchBody(3, 9, 1, []int{2, 3})
	e := &rmr.Explorer{MaxSchedules: 200000}
	res, err := e.Run(nprocs, body)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("W=3 search vs 2 removes: %d schedules (exhausted=%v)", res.Explored, res.Exhausted)
}
