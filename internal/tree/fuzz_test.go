package tree

import (
	"testing"

	"sublock/rmr"
)

// FuzzTreeAgainstModel decodes the fuzz input as an operation tape and
// replays it sequentially against the ordered-set model: byte pairs
// (op, leaf) where even ops remove and odd ops query, over a tree whose
// geometry is taken from the first two bytes.
func FuzzTreeAgainstModel(f *testing.F) {
	f.Add([]byte{2, 10, 0, 3, 1, 0, 1, 9})
	f.Add([]byte{64, 200, 0, 0, 1, 100})
	f.Add([]byte{3, 27, 0, 1, 0, 2, 0, 3, 1, 0})
	f.Fuzz(func(t *testing.T, tape []byte) {
		if len(tape) < 2 {
			return
		}
		w := 2 + int(tape[0])%63
		n := 1 + int(tape[1])%150
		m := rmr.NewMemory(rmr.CC, 1, nil)
		tr, err := New(m, Config{W: w, N: n})
		if err != nil {
			t.Fatal(err)
		}
		ref := newRefModel(n)
		acc := m.Proc(0)
		removed := make([]bool, n)
		for i := 2; i+1 < len(tape); i += 2 {
			leaf := int(tape[i+1]) % n
			if tape[i]%2 == 0 {
				if removed[leaf] {
					continue
				}
				removed[leaf] = true
				tr.Remove(acc, leaf)
				ref.remove(leaf)
				continue
			}
			q, out := tr.FindNext(acc, leaf)
			wantQ, wantOut := ref.findNext(leaf)
			if q != wantQ || out != wantOut {
				t.Fatalf("W=%d N=%d FindNext(%d) = (%d,%v), want (%d,%v)",
					w, n, leaf, q, out, wantQ, wantOut)
			}
			q, out = tr.AdaptiveFindNext(acc, leaf)
			if q != wantQ || out != wantOut {
				t.Fatalf("W=%d N=%d AdaptiveFindNext(%d) = (%d,%v), want (%d,%v)",
					w, n, leaf, q, out, wantQ, wantOut)
			}
		}
	})
}
