package tree

import (
	"math/rand"
	"testing"

	"sublock/rmr"
)

func newTree(t *testing.T, w, n int) (*rmr.Memory, *Tree) {
	t.Helper()
	m := rmr.NewMemory(rmr.CC, n+1, nil) // +1: an extra proc for observer roles
	tr, err := New(m, Config{W: w, N: n})
	if err != nil {
		t.Fatal(err)
	}
	return m, tr
}

// refModel is the sequential specification: the set {0..n-1} minus removals.
type refModel struct {
	live []bool
}

func newRefModel(n int) *refModel {
	live := make([]bool, n)
	for i := range live {
		live[i] = true
	}
	return &refModel{live: live}
}

func (r *refModel) remove(p int) { r.live[p] = false }

func (r *refModel) findNext(p int) (int, Outcome) {
	for q := p + 1; q < len(r.live); q++ {
		if r.live[q] {
			return q, Found
		}
	}
	return 0, None
}

func TestNewValidation(t *testing.T) {
	m := rmr.NewMemory(rmr.CC, 1, nil)
	if _, err := New(m, Config{W: 1, N: 4}); err == nil {
		t.Error("W=1 accepted")
	}
	if _, err := New(m, Config{W: 65, N: 4}); err == nil {
		t.Error("W=65 accepted")
	}
	if _, err := New(m, Config{W: 2, N: 0}); err == nil {
		t.Error("N=0 accepted")
	}
}

func TestGeometry(t *testing.T) {
	for _, tt := range []struct {
		w, n, wantH, wantWords int
	}{
		{2, 2, 1, 1},
		{2, 3, 2, 3},    // 4 leaves, levels of 2 and 1 nodes
		{2, 8, 3, 7},    // perfect binary tree of 8 leaves
		{4, 16, 2, 5},   // 4 + 1
		{8, 8, 1, 1},    // single node
		{8, 9, 2, 9},    // 64 leaves padded, 8 + 1 nodes
		{64, 64, 1, 1},  // full word
		{64, 65, 2, 65}, // 4096 leaves padded
		{3, 10, 3, 13},  // 27 leaves padded, 9+3+1
	} {
		m := rmr.NewMemory(rmr.CC, 1, nil)
		tr, err := New(m, Config{W: tt.w, N: tt.n})
		if err != nil {
			t.Fatal(err)
		}
		if tr.Height() != tt.wantH {
			t.Errorf("W=%d N=%d: Height = %d, want %d", tt.w, tt.n, tr.Height(), tt.wantH)
		}
		if tr.Words() != tt.wantWords {
			t.Errorf("W=%d N=%d: Words = %d, want %d", tt.w, tt.n, tr.Words(), tt.wantWords)
		}
		if got := m.Size(); got != tt.wantWords {
			t.Errorf("W=%d N=%d: memory Size = %d, want %d", tt.w, tt.n, got, tt.wantWords)
		}
	}
}

func TestFindNextInitial(t *testing.T) {
	// With nothing removed, FindNext(p) = p+1 for p < n-1, ⊥ for p = n-1.
	for _, w := range []int{2, 3, 8, 64} {
		for _, n := range []int{1, 2, 5, 17, 64, 100} {
			m, tr := newTree(t, w, n)
			acc := m.Proc(0)
			for p := 0; p < n; p++ {
				q, out := tr.FindNext(acc, p)
				wantQ, wantOut := newRefModel(n).findNext(p)
				if q != wantQ || out != wantOut {
					t.Fatalf("W=%d N=%d FindNext(%d) = (%d,%v), want (%d,%v)",
						w, n, p, q, out, wantQ, wantOut)
				}
			}
		}
	}
}

func TestSequentialAgainstModel(t *testing.T) {
	// Random interleaved Remove/FindNext calls executed sequentially must
	// match the reference set model exactly; sequentially, Crossed cannot
	// occur. Exercised across arities including non-power-of-two.
	for _, w := range []int{2, 3, 5, 8, 16, 64} {
		for _, n := range []int{1, 2, 7, 33, 100} {
			rng := rand.New(rand.NewSource(int64(w*1000 + n)))
			m, tr := newTree(t, w, n)
			ref := newRefModel(n)
			acc := m.Proc(0)
			removed := make([]bool, n)
			for step := 0; step < 4*n; step++ {
				p := rng.Intn(n)
				if rng.Intn(2) == 0 && !removed[p] {
					removed[p] = true
					tr.Remove(acc, p)
					ref.remove(p)
					continue
				}
				q, out := tr.FindNext(acc, p)
				wantQ, wantOut := ref.findNext(p)
				if q != wantQ || out != wantOut {
					t.Fatalf("W=%d N=%d FindNext(%d) = (%d,%v), want (%d,%v)",
						w, n, p, q, out, wantQ, wantOut)
				}
			}
		}
	}
}

func TestAdaptiveEquivalentSequentially(t *testing.T) {
	// Lemma 1: in any sequential execution AdaptiveFindNext returns exactly
	// what FindNext returns.
	for _, w := range []int{2, 3, 8, 64} {
		for _, n := range []int{1, 2, 9, 50, 128} {
			rng := rand.New(rand.NewSource(int64(w*7919 + n)))
			m, tr := newTree(t, w, n)
			acc := m.Proc(0)
			removed := make([]bool, n)
			for step := 0; step < 6*n; step++ {
				if p := rng.Intn(n); !removed[p] && rng.Intn(3) == 0 {
					removed[p] = true
					tr.Remove(acc, p)
				}
				p := rng.Intn(n)
				q1, o1 := tr.FindNext(acc, p)
				q2, o2 := tr.AdaptiveFindNext(acc, p)
				if q1 != q2 || o1 != o2 {
					t.Fatalf("W=%d N=%d p=%d: FindNext=(%d,%v) AdaptiveFindNext=(%d,%v)",
						w, n, p, q1, o1, q2, o2)
				}
			}
		}
	}
}

func TestRemoveAllYieldsBottom(t *testing.T) {
	m, tr := newTree(t, 4, 20)
	acc := m.Proc(0)
	for p := 1; p < 20; p++ {
		tr.Remove(acc, p)
	}
	if _, out := tr.FindNext(acc, 0); out != None {
		t.Fatalf("FindNext(0) after removing all successors = %v, want ⊥", out)
	}
	if _, out := tr.AdaptiveFindNext(acc, 0); out != None {
		t.Fatalf("AdaptiveFindNext(0) = %v, want ⊥", out)
	}
}

func TestLive(t *testing.T) {
	m, tr := newTree(t, 4, 8)
	acc := m.Proc(0)
	if !tr.Live(m, 3) {
		t.Fatal("leaf 3 should start live")
	}
	tr.Remove(acc, 3)
	if tr.Live(m, 3) {
		t.Fatal("leaf 3 should be dead after Remove")
	}
}

func TestOutcomeString(t *testing.T) {
	if Found.String() != "found" || None.String() != "⊥" || Crossed.String() != "⊤" {
		t.Fatalf("outcome strings: %v %v %v", Found, None, Crossed)
	}
	if got := Outcome(42).String(); got != "Outcome(42)" {
		t.Fatalf("unknown outcome: %q", got)
	}
}

// TestCrossedPathsScenario reproduces Figure 2(c)/the ⊤ scenario with a
// scripted schedule: a FindNext descends toward a subtree while a Remove
// empties it, and the FindNext must return ⊤ (Crossed).
func TestCrossedPathsScenario(t *testing.T) {
	// W=2, N=4: two level-1 nodes (leaves {0,1}, {2,3}), one root.
	// Searcher runs FindNext(0); leaf 1 is already removed, so the search
	// ascends to the root, sees the right subtree's bit clear, and descends
	// into node {2,3}. Before it reads that node, removers empty it.
	const n = 4
	c := rmr.NewController(3) // 0: searcher, 1: remover of 2, 2: remover of 3
	m := rmr.NewMemory(rmr.CC, 3, c)
	tr, err := New(m, Config{W: 2, N: n})
	if err != nil {
		t.Fatal(err)
	}

	// Pre-remove leaf 1 sequentially (free-running proc would need gate
	// steps; use Poke-free path: run it under the controller).
	var preDone bool
	c.Go(1, func() {
		tr.Remove(m.Proc(1), 1)
		preDone = true
	})
	c.Finish(1, 100)
	if !preDone {
		t.Fatal("pre-removal did not finish")
	}

	var q int
	var out Outcome
	c.Go(0, func() { q, out = tr.FindNext(m.Proc(0), 0) })
	// Searcher: reads level-1 node {0,1} (bit of 1 set, no zero right of 0),
	// then reads root (zero at right subtree) — 2 steps. It is now about to
	// descend into node {2,3}.
	c.StepN(0, 2)

	// Remover empties node {2,3}: Remove(2) sets bit, Remove(3) sets bit
	// and ascends to the root.
	c.Go(2, func() {
		p := m.Proc(2)
		tr.Remove(p, 2)
		tr.Remove(p, 3) // test-only: same proc removes both leaves
	})
	c.Step(2) // Remove(2): F&A on node {2,3}
	c.Step(2) // Remove(3): F&A on node {2,3} -> EMPTY; remover will ascend

	// Searcher descends into node {2,3}, reads EMPTY, returns ⊤.
	c.Finish(0, 100)
	if out != Crossed {
		t.Fatalf("FindNext outcome = %v (q=%d), want ⊤", out, q)
	}
	c.Wait()
}

// TestDescentNeverCrossesWithoutRemove checks that in the absence of any
// concurrent Remove, Crossed is impossible even under adversarial
// scheduling of multiple concurrent FindNext calls.
func TestConcurrentFindNextsAgree(t *testing.T) {
	const n = 16
	for seed := int64(0); seed < 30; seed++ {
		s := rmr.NewScheduler(4, rmr.RandomPick(seed))
		m := rmr.NewMemory(rmr.CC, 4, nil)
		tr, err := New(m, Config{W: 4, N: n})
		if err != nil {
			t.Fatal(err)
		}
		// Statically remove some leaves before the concurrency starts,
		// ungated; then attach the scheduler for the concurrent phase.
		rng := rand.New(rand.NewSource(seed))
		ref := newRefModel(n)
		pre := m.Proc(3)
		for p := 1; p < n; p++ {
			if rng.Intn(2) == 0 {
				ref.remove(p)
				tr.Remove(pre, p)
			}
		}
		m.SetGate(s)
		results := make([]int, 3)
		outs := make([]Outcome, 3)
		for i := 0; i < 3; i++ {
			p := m.Proc(i)
			from := rng.Intn(n)
			wantQ, wantOut := ref.findNext(from)
			s.Go(func() { results[i], outs[i] = tr.FindNext(p, from) })
			// Capture expectations eagerly; no Removes run concurrently, so
			// every interleaving must agree with the static model.
			i := i
			defer func() {
				if results[i] != wantQ || outs[i] != wantOut {
					t.Errorf("seed %d: FindNext(%d) = (%d,%v), want (%d,%v)",
						seed, from, results[i], outs[i], wantQ, wantOut)
				}
			}()
		}
		if err := s.Run(1_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestConcurrentRemoveFindNextProperties checks the §5.1.2 properties under
// seeded random schedules: any Found result q satisfies q > p, q was not
// removed before the FindNext began, and results of non-overlapping calls
// by the same searcher are monotonically increasing (Property 11).
func TestConcurrentRemoveFindNextProperties(t *testing.T) {
	const n = 32
	for seed := int64(0); seed < 50; seed++ {
		nprocs := 8
		s := rmr.NewScheduler(nprocs, rmr.RandomPick(seed))
		m := rmr.NewMemory(rmr.CC, nprocs, s)
		tr, err := New(m, Config{W: 4, N: n})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(seed * 31))

		// Procs 0..5 each remove a distinct random leaf; procs 6,7 run
		// repeated FindNext(p) for a fixed p and record result sequences.
		removedLeaves := rng.Perm(n)[:6]
		for i := 0; i < 6; i++ {
			p := m.Proc(i)
			leaf := removedLeaves[i]
			s.Go(func() { tr.Remove(p, leaf) })
		}
		from := rng.Intn(n / 2)
		type obs struct {
			q   int
			out Outcome
		}
		seqs := make([][]obs, 2)
		for i := 0; i < 2; i++ {
			p := m.Proc(6 + i)
			i := i
			s.Go(func() {
				for k := 0; k < 4; k++ {
					q, out := tr.FindNext(p, from)
					seqs[i] = append(seqs[i], obs{q, out})
				}
			})
		}
		if err := s.Run(10_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		wasRemoved := make(map[int]bool, 6)
		for _, l := range removedLeaves {
			wasRemoved[l] = true
		}
		for i, seq := range seqs {
			last := -1
			for _, o := range seq {
				switch o.out {
				case Found:
					if o.q <= from {
						t.Errorf("seed %d searcher %d: Found %d ≤ from %d", seed, i, o.q, from)
					}
					if o.q < last {
						t.Errorf("seed %d searcher %d: non-monotonic %d after %d", seed, i, o.q, last)
					}
					last = o.q
				case None:
					// ⊥ requires every leaf > from to be removable in this
					// run; with only 6 removers over 32 leaves and from in
					// the lower half, that cannot happen.
					t.Errorf("seed %d searcher %d: impossible ⊥", seed, i)
				case Crossed:
					// Legal only while removers are active; always possible
					// here, nothing to check.
				}
			}
		}
	}
}

// TestRemoveRMRCost verifies Claim 20's shape: a Remove ascends only
// through levels it fills, so its RMR cost is O(log_W A_t), and a single
// isolated Remove costs exactly 1 update RMR.
func TestRemoveRMRCost(t *testing.T) {
	m, tr := newTree(t, 8, 512) // H = 3
	acc := m.Proc(0)
	before := acc.RMRs()
	tr.Remove(acc, 100)
	if got := acc.RMRs() - before; got != 1 {
		t.Fatalf("isolated Remove RMRs = %d, want 1", got)
	}
	// Remove leaves 0..6 (same level-1 node as 7, which stays); none ascend.
	for p := 0; p < 7; p++ {
		before = acc.RMRs()
		tr.Remove(acc, p)
		if got := acc.RMRs() - before; got != 1 {
			t.Fatalf("Remove(%d) RMRs = %d, want 1", p, got)
		}
	}
	// Removing 7 fills the node: ascends exactly one level.
	before = acc.RMRs()
	tr.Remove(acc, 7)
	if got := acc.RMRs() - before; got != 2 {
		t.Fatalf("filling Remove RMRs = %d, want 2", got)
	}
}

// TestAdaptiveFindNextO1AcrossSubtreeBoundary is the §4.1 motivating case
// (Figure 4): p is the rightmost leaf of its level-1 node and the next live
// leaf is immediately to its right in the next subtree. Plain FindNext
// ascends to the lowest common ancestor (here the root); the adaptive
// variant sidesteps and pays O(1).
func TestAdaptiveFindNextO1AcrossSubtreeBoundary(t *testing.T) {
	const w = 8
	for _, n := range []int{64, 512, 4096} { // H = 2, 3, 4
		m, tr := newTree(t, w, n)
		// Rightmost leaf of the leftmost level-(H−1) subtree: the lowest
		// common ancestor of p and p+1 is the root, forcing plain FindNext
		// through a full ascent.
		p := n/w - 1

		// Use distinct processes for the two measurements so the second
		// search does not benefit from the first one's cached words.
		plainAcc, adaptiveAcc := m.Proc(0), m.Proc(1)

		beforeP := plainAcc.RMRs()
		q, out := tr.FindNext(plainAcc, p)
		plain := plainAcc.RMRs() - beforeP
		if q != p+1 || out != Found {
			t.Fatalf("N=%d: FindNext(%d) = (%d,%v)", n, p, q, out)
		}

		beforeA := adaptiveAcc.RMRs()
		q, out = tr.AdaptiveFindNext(adaptiveAcc, p)
		adaptive := adaptiveAcc.RMRs() - beforeA
		if q != p+1 || out != Found {
			t.Fatalf("N=%d: AdaptiveFindNext(%d) = (%d,%v)", n, p, q, out)
		}

		// Plain pays the full ascent (H reads) plus the descent (H−1 reads),
		// H = log_W N. Adaptive pays exactly 1: the sidestep read of the
		// right cousin, independent of N.
		wantPlain := int64(2*tr.Height() - 1)
		if plain != wantPlain {
			t.Errorf("N=%d: plain FindNext RMRs = %d, want %d", n, plain, wantPlain)
		}
		if adaptive != 1 {
			t.Errorf("N=%d: adaptive FindNext RMRs = %d, want 1", n, adaptive)
		}
	}
}

// TestAdaptiveBoundedByRemovals verifies the adaptive bound of Claim 21:
// the loop runs at most 2 + log_W R_p iterations, so RMRs stay bounded by
// a function of the number of removals to the right of p even as N grows.
func TestAdaptiveBoundedByRemovals(t *testing.T) {
	const w = 4
	for _, n := range []int{64, 1024, 4096} {
		m, tr := newTree(t, w, n)
		acc := m.Proc(0)
		// Remove a fixed small set of leaves right of p=1: R_p = 3.
		for _, leaf := range []int{2, 3, 4} {
			tr.Remove(acc, leaf)
		}
		before := acc.RMRs()
		q, out := tr.AdaptiveFindNext(acc, 1)
		cost := acc.RMRs() - before
		if q != 5 || out != Found {
			t.Fatalf("N=%d: AdaptiveFindNext(1) = (%d,%v), want (5,found)", n, q, out)
		}
		// Bound: ascent ≤ 2+log_W(R_p) reads plus the same again descending.
		// With R_p=3, W=4: ≤ 2*(2+1)=6 for every N. The point is that it
		// must not grow with N.
		if cost > 6 {
			t.Errorf("N=%d: adaptive cost = %d RMRs, want ≤ 6 (independent of N)", n, cost)
		}
	}
}

func TestQuickSequentialModel(t *testing.T) {
	// Randomized model check: larger random workloads, many seeds.
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		w := []int{2, 3, 4, 8, 16, 32, 64}[rng.Intn(7)]
		n := 1 + rng.Intn(200)
		m, tr := newTree(t, w, n)
		ref := newRefModel(n)
		acc := m.Proc(0)
		perm := rng.Perm(n)
		for _, p := range perm[:rng.Intn(n+1)] {
			tr.Remove(acc, p)
			ref.remove(p)
		}
		for p := 0; p < n; p++ {
			q, out := tr.FindNext(acc, p)
			wantQ, wantOut := ref.findNext(p)
			if q != wantQ || out != wantOut {
				t.Fatalf("seed=%d W=%d N=%d FindNext(%d) = (%d,%v), want (%d,%v)",
					seed, w, n, p, q, out, wantQ, wantOut)
			}
			q, out = tr.AdaptiveFindNext(acc, p)
			if q != wantQ || out != wantOut {
				t.Fatalf("seed=%d W=%d N=%d AdaptiveFindNext(%d) = (%d,%v), want (%d,%v)",
					seed, w, n, p, q, out, wantQ, wantOut)
			}
		}
	}
}

// TestClaim20AggregateRemoveCost drives random removal orders and checks
// Claim 20's bound per call: the RMR cost of each Remove is at most
// 1 + ⌈log_W R⌉ where R is the number of Removes invoked so far (each
// ascent level beyond the first requires an entire W-wide subtree of
// earlier removers).
func TestClaim20AggregateRemoveCost(t *testing.T) {
	logW := func(w, a int) int {
		h, pow := 0, 1
		for pow < a {
			pow *= w
			h++
		}
		return h
	}
	for _, w := range []int{2, 4, 8} {
		for seed := int64(0); seed < 10; seed++ {
			const n = 256
			m := rmr.NewMemory(rmr.CC, 1, nil)
			tr, err := New(m, Config{W: w, N: n})
			if err != nil {
				t.Fatal(err)
			}
			acc := m.Proc(0)
			perm := rand.New(rand.NewSource(seed)).Perm(n)
			for r, leaf := range perm {
				before := acc.RMRs()
				tr.Remove(acc, leaf)
				cost := acc.RMRs() - before
				bound := int64(1 + logW(w, r+1))
				if cost > bound {
					t.Fatalf("W=%d seed=%d: remove #%d cost %d RMRs, Claim 20 bound %d",
						w, seed, r+1, cost, bound)
				}
			}
		}
	}
}
