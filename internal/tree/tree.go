// Package tree implements the W-ary Tree ordered set of §4 of the paper:
// the data structure that tracks which queue slots have been abandoned by
// aborting processes and finds, for a releasing process, the next slot that
// is still waiting.
//
// The tree is static: it has H = ⌈log_W N⌉ levels of internal nodes above N
// (padded to W^H) leaves. Only internal nodes occupy shared memory — one
// W-bit word each, in which the j-th most significant bit is associated with
// the node's j-th child counting from the left. A set bit means every leaf
// in that child's subtree has been abandoned. Leaves are implicit sentinels:
// leaf p "contains" the value p.
//
// The semantics are intentionally not linearizable (§3): FindNext may return
// Crossed (the paper's ⊤) when its descent crosses paths with a concurrent
// Remove ascending the same subtree, in which case the aborting process
// assumes responsibility for the lock handoff.
package tree

import (
	"fmt"

	"sublock/internal/bitops"
	"sublock/internal/mem"
	"sublock/rmr"
)

// Outcome classifies the result of a FindNext search.
type Outcome int

const (
	// Found means a live successor leaf was located.
	Found Outcome = iota + 1
	// None is the paper's ⊥: every possible successor has been abandoned,
	// so the lock has no one to hand off to.
	None
	// Crossed is the paper's ⊤: the search crossed paths with a concurrent
	// Remove and the remover assumes responsibility for the handoff.
	Crossed
)

// String returns the paper's symbol for the outcome.
func (o Outcome) String() string {
	switch o {
	case Found:
		return "found"
	case None:
		return "⊥"
	case Crossed:
		return "⊤"
	default:
		return fmt.Sprintf("Outcome(%d)", int(o))
	}
}

// Tree is a W-ary abandonment-tracking tree over n leaves. All methods are
// safe for concurrent use by distinct processes; the required usage
// discipline (well-formedness, §5.1) is that each process invokes Remove on
// its own leaf at most once.
type Tree struct {
	w     int   // arity (bits per node word)
	n     int   // live leaves: initially the set is {0,…,n-1}
	h     int   // height: number of internal levels, ≥ 1
	pow   []int // pow[i] = w^i, i in [0, h]
	empty uint64

	// base[l] is the address of the first node word of level l (1-based;
	// base[0] is unused). Level l has w^(h-l) nodes.
	base []rmr.Addr
}

// Config configures a Tree.
type Config struct {
	W int // node arity; 2 ≤ W ≤ 64
	N int // number of processes / queue slots; N ≥ 1
}

// New allocates and initializes a Tree via a. Initialization pre-sets the
// bits of all padding subtrees (leaves ≥ n), so the initial set is exactly
// {0,…,N−1}; per the paper's model, initialization is not charged RMRs.
func New(a mem.Allocator, cfg Config) (*Tree, error) {
	if cfg.W < 2 || cfg.W > bitops.MaxW {
		return nil, fmt.Errorf("tree: arity W=%d outside [2,%d]", cfg.W, bitops.MaxW)
	}
	if cfg.N < 1 {
		return nil, fmt.Errorf("tree: N=%d must be positive", cfg.N)
	}
	t := &Tree{w: cfg.W, n: cfg.N, empty: bitops.Empty(cfg.W)}
	// Height: smallest h ≥ 1 with w^h ≥ n.
	t.h = 1
	size := cfg.W
	for size < cfg.N {
		size *= cfg.W
		t.h++
	}
	t.pow = make([]int, t.h+1)
	t.pow[0] = 1
	for i := 1; i <= t.h; i++ {
		t.pow[i] = t.pow[i-1] * cfg.W
	}
	t.base = make([]rmr.Addr, t.h+1)
	for l := 1; l <= t.h; l++ {
		t.base[l] = a.AllocN(t.nodesAt(l), 0)
	}
	if lb, ok := a.(mem.Labeler); ok {
		for l := 1; l <= t.h; l++ {
			lb.Label(t.base[l], t.nodesAt(l), fmt.Sprintf("tree/level%d", l))
		}
	}
	t.initPadding(a)
	return t, nil
}

// initPadding pre-sets every bit whose child subtree contains no live leaf.
func (t *Tree) initPadding(a mem.Allocator) {
	for l := 1; l <= t.h; l++ {
		span := t.pow[l-1] // leaves per child subtree at this level
		for idx := 0; idx < t.nodesAt(l); idx++ {
			var v uint64
			for o := 0; o < t.w; o++ {
				firstLeaf := (idx*t.w + o) * span
				if firstLeaf >= t.n {
					v |= bitops.Mask(t.w, o)
				}
			}
			if v != 0 {
				a.Poke(t.addr(l, idx), v)
			}
		}
	}
}

// W returns the node arity.
func (t *Tree) W() int { return t.w }

// N returns the number of leaves in the initial set.
func (t *Tree) N() int { return t.n }

// Height returns H = ⌈log_W N⌉, the number of internal levels.
func (t *Tree) Height() int { return t.h }

// Words returns the number of shared-memory words the tree occupies,
// (W^H − 1)/(W − 1) = O(N/W).
func (t *Tree) Words() int {
	total := 0
	for l := 1; l <= t.h; l++ {
		total += t.nodesAt(l)
	}
	return total
}

// nodesAt returns the number of nodes at internal level l (1-based).
func (t *Tree) nodesAt(l int) int { return t.pow[t.h-l] }

// addr returns the shared word of node idx at level l.
func (t *Tree) addr(l, idx int) rmr.Addr { return t.base[l] + rmr.Addr(idx) }

// nodeOf returns the index, within level l, of leaf p's ancestor
// (the paper's Node(p, l)).
func (t *Tree) nodeOf(p, l int) int { return p / t.pow[l] }

// offsetOf returns the offset of leaf p's level-(l−1) ancestor within its
// level-l ancestor (the paper's Offset(p, l)).
func (t *Tree) offsetOf(p, l int) int { return (p / t.pow[l-1]) % t.w }

// Remove abandons leaf p (Algorithm 4.2). The caller must be the process
// that owns leaf p, and may call it at most once; acc attributes its RMRs.
// Its RMR cost is O(log_W A_t) where A_t is the number of removers so far
// (Claim 20): the ascent continues only while entire subtrees are empty.
func (t *Tree) Remove(acc mem.Ops, p int) {
	for lvl := 1; lvl <= t.h; lvl++ {
		j := bitops.Mask(t.w, t.offsetOf(p, lvl))
		snap := acc.FAA(t.addr(lvl, t.nodeOf(p, lvl)), j)
		if snap+j != t.empty {
			break
		}
	}
}

// FindNext locates the first leaf q > p that has not been abandoned
// (Algorithm 4.1). It returns (q, Found); or (0, None) if all leaves right
// of p are abandoned (⊥); or (0, Crossed) if the descent met a node made
// EMPTY by a Remove it crossed paths with (⊤).
func (t *Tree) FindNext(acc mem.Ops, p int) (int, Outcome) {
	var (
		node, offset, lvl int
		snap              uint64
		found             bool
	)
	for lvl = 1; lvl <= t.h; lvl++ {
		node = t.nodeOf(p, lvl)
		offset = t.offsetOf(p, lvl)
		snap = acc.Read(t.addr(lvl, node))
		if bitops.HasZeroToTheRight(snap, t.w, offset) {
			found = true
			break
		}
	}
	if !found {
		return 0, None // reached the root and found no candidate
	}
	return t.descend(acc, lvl, node, snap, offset)
}

// descend walks from the zero bit found at (lvl, node) down to the leaf,
// shared by FindNext and AdaptiveFindNext (Algorithm 4.1, lines 26–36).
func (t *Tree) descend(acc mem.Ops, lvl, node int, snap uint64, offset int) (int, Outcome) {
	index := bitops.FirstZeroToTheRight(snap, t.w, offset)
	child := node*t.w + index // node index at level lvl-1 (or leaf if lvl==1)
	for l := lvl - 1; l >= 1; l-- {
		snap = acc.Read(t.addr(l, child))
		if snap == t.empty {
			return 0, Crossed // crossed paths with an ascending Remove
		}
		index = bitops.FirstZero(snap, t.w)
		child = child*t.w + index
	}
	return child, Found
}

// AdaptiveFindNext is the sidestepping variant of FindNext (Algorithm 4.3,
// §4.1) whose RMR cost is O(log_W R_p) where R_p is the number of processes
// ≥ p that have invoked Remove (Claim 21): instead of ascending to the root
// when positioned at the rightmost child, it sidesteps to the right cousin
// and only keeps ascending if that cousin's whole subtree is abandoned.
func (t *Tree) AdaptiveFindNext(acc mem.Ops, p int) (int, Outcome) {
	node := t.nodeOf(p, 1)
	offset := t.offsetOf(p, 1)
	var (
		lvl   int
		snap  uint64
		found bool
	)
	for lvl = 1; lvl <= t.h; lvl++ {
		// Invariant: node is the index of a level-lvl node; offset is the
		// position inside it right of which we search (−1 = everywhere).
		if offset == t.w-1 {
			if node == t.nodesAt(lvl)-1 {
				// No right cousin: p's bit is rightmost at this level, so
				// nothing exists to the right of p anywhere in the tree.
				return 0, None
			}
			node++ // sidestep (RightCousin)
			offset = -1
		}
		snap = acc.Read(t.addr(lvl, node))
		if bitops.HasZeroToTheRight(snap, t.w, offset) {
			found = true
			break
		}
		if offset == -1 {
			// We sidestepped into node and found it fully abandoned. Resume
			// the ascent at the parent, but include node's own bit in the
			// search: the Remove that emptied node may not have set node's
			// bit in the parent yet, and plain FindNext would descend into
			// node and return ⊤ in that case — mimic it (§4.1).
			offset = node%t.w - 1
		} else {
			offset = node % t.w // offsetAtParent(node)
		}
		node /= t.w
	}
	if !found {
		return 0, None
	}
	return t.descend(acc, lvl, node, snap, offset)
}

// Live reports whether leaf p's bit at level 1 is clear. It inspects memory
// without charging RMRs and is meant for tests and assertions, not for
// algorithm code (the information is stale the moment it is returned).
func (t *Tree) Live(m *rmr.Memory, p int) bool {
	v := m.Peek(t.addr(1, t.nodeOf(p, 1)))
	return !bitops.Bit(v, t.w, t.offsetOf(p, 1))
}
