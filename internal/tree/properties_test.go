package tree

// Concurrent checks for the §5.1.2 FindNext properties, driven by seeded
// random schedules. Each property is checked with observations that are
// sound under the gate's serialization (no false failures):
//
//   - Property 6:  a Found result q satisfies q > p.
//   - Corollary 8: FindNext(p) never returns a q whose Remove completed
//     before the FindNext was invoked.
//   - Property 10: ⊥ implies every leaf right of p had started removing.
//   - Property 11: results of non-overlapping same-p searches by one
//     process are monotonically non-decreasing.

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"

	"sublock/rmr"
)

func TestConcurrentProperty6And8And10(t *testing.T) {
	const n = 24
	for seed := int64(0); seed < 60; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nremovers := 1 + rng.Intn(8)
		nsearchers := 1 + rng.Intn(3)
		nprocs := nremovers + nsearchers
		s := rmr.NewScheduler(nprocs, rmr.RandomPick(seed))
		m := rmr.NewMemory(rmr.CC, nprocs, nil)
		tr, err := New(m, Config{W: 3, N: n})
		if err != nil {
			t.Fatal(err)
		}
		m.SetGate(s)

		// removeDone[q] is set (with release semantics through the atomic)
		// after Remove(q) returns.
		var removeDone [n]atomic.Bool
		var removeStarted [n]atomic.Bool
		leaves := rng.Perm(n)[:nremovers]
		for i := 0; i < nremovers; i++ {
			p := m.Proc(i)
			leaf := leaves[i]
			s.Go(func() {
				removeStarted[leaf].Store(true)
				tr.Remove(p, leaf)
				removeDone[leaf].Store(true)
			})
		}
		type result struct {
			from, q   int
			out       Outcome
			doneAtQ   bool // removeDone[q] observed before invocation
			preStarts [n]bool
		}
		results := make([][]result, nsearchers)
		for i := 0; i < nsearchers; i++ {
			p := m.Proc(nremovers + i)
			i := i
			from := rng.Intn(n)
			s.Go(func() {
				for k := 0; k < 3; k++ {
					var r result
					r.from = from
					for leaf := 0; leaf < n; leaf++ {
						r.preStarts[leaf] = removeStarted[leaf].Load()
					}
					// Capture the done-flags snapshot before invoking.
					var preDone [n]bool
					for leaf := 0; leaf < n; leaf++ {
						preDone[leaf] = removeDone[leaf].Load()
					}
					r.q, r.out = tr.AdaptiveFindNext(p, from)
					if r.out == Found {
						r.doneAtQ = preDone[r.q]
					}
					results[i] = append(results[i], r)
				}
			})
		}
		if err := s.Run(10_000_000); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		removerSet := map[int]bool{}
		for _, l := range leaves {
			removerSet[l] = true
		}
		for i, rs := range results {
			last := -1
			for _, r := range rs {
				switch r.out {
				case Found:
					if r.q <= r.from {
						t.Errorf("seed %d searcher %d: Property 6 violated: FindNext(%d) = %d", seed, i, r.from, r.q)
					}
					if r.doneAtQ {
						t.Errorf("seed %d searcher %d: Corollary 8 violated: returned %d after its Remove completed", seed, i, r.q)
					}
					if r.q < last {
						t.Errorf("seed %d searcher %d: Property 11 violated: %d after %d", seed, i, r.q, last)
					}
					last = r.q
				case None:
					// Property 10 (sound direction): every leaf right of
					// `from` must at least be a designated remover; leaves
					// that are not removers can never be absent.
					for leaf := r.from + 1; leaf < n; leaf++ {
						if !removerSet[leaf] {
							t.Errorf("seed %d searcher %d: Property 10 violated: ⊥ with live leaf %d", seed, i, leaf)
						}
					}
				case Crossed:
					// Legal while removers run.
				}
			}
		}
	}
}

func TestQuickGeneratedOpSequences(t *testing.T) {
	// testing/quick drives sequential op sequences against the ordered-set
	// model across random arities and sizes.
	type opSeq struct {
		W, N    uint8
		Removes []uint16
		Queries []uint16
	}
	f := func(s opSeq) bool {
		w := 2 + int(s.W)%63  // 2..64
		n := 1 + int(s.N)%120 // 1..120
		m := rmr.NewMemory(rmr.CC, 1, nil)
		tr, err := New(m, Config{W: w, N: n})
		if err != nil {
			return false
		}
		ref := newRefModel(n)
		acc := m.Proc(0)
		seen := map[int]bool{}
		for _, r := range s.Removes {
			leaf := int(r) % n
			if seen[leaf] {
				continue
			}
			seen[leaf] = true
			tr.Remove(acc, leaf)
			ref.remove(leaf)
		}
		for _, qy := range s.Queries {
			p := int(qy) % n
			q1, o1 := tr.FindNext(acc, p)
			q2, o2 := tr.AdaptiveFindNext(acc, p)
			wantQ, wantO := ref.findNext(p)
			if q1 != wantQ || o1 != wantO || q2 != wantQ || o2 != wantO {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDSMModelCosts(t *testing.T) {
	// In the DSM model tree words are global (owned by no process), so
	// every node access is an RMR; the op-count bounds of §5.4 turn into
	// exact RMR counts.
	m := rmr.NewMemory(rmr.DSM, 1, nil)
	tr, err := New(m, Config{W: 4, N: 64}) // H = 3
	if err != nil {
		t.Fatal(err)
	}
	p := m.Proc(0)

	before := p.RMRs()
	tr.Remove(p, 5) // no full node: single F&A
	if got := p.RMRs() - before; got != 1 {
		t.Fatalf("DSM Remove RMRs = %d, want 1", got)
	}
	before = p.RMRs()
	q, out := tr.FindNext(p, 5)
	if q != 6 || out != Found {
		t.Fatalf("FindNext(5) = (%d,%v)", q, out)
	}
	if got := p.RMRs() - before; got != 1 {
		t.Fatalf("DSM FindNext RMRs = %d, want 1 (sibling found at level 1)", got)
	}
}
