// Package locktest provides a deterministic correctness harness shared by
// the test suites of every simulated lock in this repository. It runs one
// passage per process under a seeded random schedule and checks the two
// universal properties: mutual exclusion and schedule termination
// (deadlock/livelock freedom for the given workload).
package locktest

import (
	"sync/atomic"
	"testing"

	"sublock/rmr"
)

// Handle is the per-process interface every simulated lock exposes.
type Handle interface {
	// Enter acquires the lock, returning false if the attempt was aborted.
	Enter() bool
	// Exit releases the lock after a successful Enter.
	Exit()
}

// Factory builds a lock in m and returns a function producing per-process
// handles. nprocs is the number of processes that will participate.
type Factory func(m *rmr.Memory, nprocs int) (func(p *rmr.Proc) Handle, error)

// Result reports what happened during a Run.
type Result struct {
	// Entered[i] reports whether process i's Enter returned true.
	Entered []bool
	// MaxInCS is the maximum number of processes observed inside the
	// critical section simultaneously; mutual exclusion requires ≤ 1
	// (Run already fails the test otherwise).
	MaxInCS int32
	// RMRs[i] is the number of RMRs process i incurred for its passage.
	RMRs []int64
}

// Run executes one Enter/CS/Exit passage per process under a seeded random
// schedule, delivering the abort signal to the processes in aborters before
// they start. It fails t on mutual-exclusion violations and on schedules
// that do not terminate within the step budget.
func Run(t *testing.T, model rmr.Model, nprocs int, seed int64, factory Factory, aborters map[int]bool) Result {
	t.Helper()
	s := rmr.NewScheduler(nprocs, rmr.RandomPick(seed))
	m := rmr.NewMemory(model, nprocs, nil)
	handleFor, err := factory(m, nprocs)
	if err != nil {
		t.Fatalf("seed %d: factory: %v", seed, err)
	}
	m.SetGate(s)

	res := Result{
		Entered: make([]bool, nprocs),
		RMRs:    make([]int64, nprocs),
	}
	var inCS, maxCS atomic.Int32
	for i := 0; i < nprocs; i++ {
		p := m.Proc(i)
		if aborters[i] {
			p.SignalAbort()
		}
		h := handleFor(p)
		i := i
		s.Go(func() {
			before := p.RMRs()
			if h.Enter() {
				cur := inCS.Add(1)
				for {
					old := maxCS.Load()
					if cur <= old || maxCS.CompareAndSwap(old, cur) {
						break
					}
				}
				res.Entered[i] = true
				inCS.Add(-1)
				h.Exit()
			}
			res.RMRs[i] = p.RMRs() - before
		})
	}
	if err := s.Run(100_000_000); err != nil {
		t.Fatalf("seed %d: schedule did not terminate: %v", seed, err)
	}
	res.MaxInCS = maxCS.Load()
	if res.MaxInCS > 1 {
		t.Fatalf("seed %d: mutual exclusion violated: %d processes in CS", seed, res.MaxInCS)
	}
	return res
}

// RequireAllEntered fails t unless every process not in aborters entered.
func RequireAllEntered(t *testing.T, res Result, seed int64, aborters map[int]bool) {
	t.Helper()
	for i, e := range res.Entered {
		if !aborters[i] && !e {
			t.Fatalf("seed %d: non-aborting process %d never entered", seed, i)
		}
	}
}
