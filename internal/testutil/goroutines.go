// Package testutil holds small helpers shared across the repository's
// test suites.
package testutil

import (
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"
	"time"
)

// SettleSlack is the tolerance WaitGoroutinesSettle allows above the
// baseline: the runtime (finalizers, netpoll, timer goroutines) may keep
// a couple of transient goroutines alive with no leak involved.
const SettleSlack = 2

// WaitGoroutinesSettle asserts that the process goroutine count returns
// to base+SettleSlack within the deadline, polling with a backoff so a
// promptly-reaped waiter passes on the first checks. On timeout it fails
// the test with a full goroutine dump, which is the artifact needed to
// find the leaked park site.
//
// Record base with runtime.NumGoroutine() before spawning the goroutines
// under test.
func WaitGoroutinesSettle(t testing.TB, base int, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	var n int
	for pause := time.Millisecond; ; pause *= 2 {
		if n = runtime.NumGoroutine(); n <= base+SettleSlack {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		if pause > 100*time.Millisecond {
			pause = 100 * time.Millisecond
		}
		time.Sleep(pause)
	}
	var dump strings.Builder
	pprof.Lookup("goroutine").WriteTo(&dump, 1)
	t.Fatalf("goroutines did not settle: %d live, want <= %d (base %d + slack %d)\n%s",
		n, base+SettleSlack, base, SettleSlack, dump.String())
}
