package rmr

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Adaptive waiting for free-running memories.
//
// Under a schedule gate (Scheduler or Controller) a busy-wait loop needs no
// pacing: the gate serializes steps and waiting costs nothing, so Wait is a
// no-op there, exactly like Yield — gated schedules, the explorer, and the
// E-series experiments are bit-identical with this file compiled in.
//
// In free-running mode (gate == nil: the native benchmark matrix, race
// tests, examples) a waiting process escalates through three tiers:
// bounded spin (skipped when GOMAXPROCS(0) == 1, where spinning only
// delays the holder), cooperative yield, then a futex-like park: the
// process registers in the memory's wait table keyed by the watched
// address, re-checks the word and the abort signal, and sleeps on a
// one-slot wake-hint channel. Mutating operations (Write, successful CAS,
// FAA, Swap) wake every process parked on the mutated address, and
// SignalAbort wakes its target directly, so abort delivery unparks a
// waiter within a bounded number of steps.
//
// The pre-park re-check reads the word's raw value without charging an
// RMR: it is the runtime's futex compare, part of the waiting
// implementation, not an algorithm step — the paper's RMR accounting is
// about the algorithm's shared-memory operations, which remain exactly the
// Read/Write/CAS/FAA/Swap calls the lock issues.

const (
	waitSpinRounds  = 4  // tier-1 rounds (multi-P hosts only)
	waitSpinCycles  = 40 // empty iterations per tier-1 round
	waitYieldRounds = 8  // tier-2 Gosched rounds before parking
	futexBuckets    = 64
)

// WaitPolicy selects how Wait behaves on a free-running memory.
type WaitPolicy uint8

const (
	// WaitAdaptive escalates spin → yield → park (the default).
	WaitAdaptive WaitPolicy = iota
	// WaitYield makes every Wait a single cooperative yield, exactly like
	// the Yield-loop idiom the locks used before Wait existed. RMR-counting
	// experiments use it: a parked waiter sleeps through intermediate
	// states and so observes fewer cache invalidations than the analytic
	// CC model charges, which would undercount the Table 1 columns. Dense
	// yielding keeps every waiter observing every invalidation — and keeps
	// the E-series outputs bit-identical to the pre-parking harness.
	WaitYield
)

// SetWaitPolicy sets the memory's wait policy. Call it before any process
// waits; it is not synchronized with concurrent Wait calls.
func (m *Memory) SetWaitPolicy(pol WaitPolicy) { m.waitPolicy = pol }

// procParker is a process's park/unpark primitive: a one-slot channel of
// wake hints. Wakes never block; sleeps tolerate spurious tokens.
type procParker struct {
	ch chan struct{}
}

func (pk *procParker) wake() {
	select {
	case pk.ch <- struct{}{}:
	default:
	}
}

// procWait is the per-process adaptive waiting state. Only the owning
// goroutine touches rounds/spin/pk; parked is read by SignalAbort callers.
type procWait struct {
	rounds int
	spin   int
	pk     *procParker                // allocated on first park
	parked atomic.Pointer[procParker] // non-nil while parked (abort wake target)
}

// futexTable is the memory's wait table: processes parked per address,
// hashed over buckets. parked is the fast-path gate — mutating operations
// check it with one atomic load and skip the table entirely while it is
// zero, which it always is under a gate.
type futexTable struct {
	parked  atomic.Int64
	buckets [futexBuckets]futexBucket
}

type futexBucket struct {
	mu      sync.Mutex
	waiters map[Addr][]*procParker
}

func (t *futexTable) bucket(a Addr) *futexBucket {
	return &t.buckets[uint64(a)%futexBuckets]
}

// park blocks p until the word at a is mutated, the abort signal arrives,
// or a spurious hint lands. The caller re-checks its condition.
func (t *futexTable) park(p *Proc, a Addr, old uint64) {
	if p.wait.pk == nil {
		p.wait.pk = &procParker{ch: make(chan struct{}, 1)}
	}
	pk := p.wait.pk
	select { // drain a stale hint from an earlier wait
	case <-pk.ch:
	default:
	}
	b := t.bucket(a)
	b.mu.Lock()
	if b.waiters == nil {
		b.waiters = make(map[Addr][]*procParker)
	}
	b.waiters[a] = append(b.waiters[a], pk)
	b.mu.Unlock()
	t.parked.Add(1)
	p.wait.parked.Store(pk)
	// Re-check after registering: a mutation or abort signal that landed
	// before the registration published would otherwise be missed. The
	// seq-cst total order makes this sound: a waker that saw parked == 0
	// ordered its mutation before our registration, so this load sees it.
	if p.m.word(a).val.Load() != old || p.abort.Load() {
		p.wait.parked.Store(nil)
		t.remove(b, a, pk)
		return
	}
	<-pk.ch
	p.wait.parked.Store(nil)
	t.remove(b, a, pk) // deregister if a non-address wake left us enrolled
}

// remove deregisters pk from a's wait list if still enrolled. Whoever
// removes an entry from the table decrements parked — either the waker
// (wake) or the waiter itself here.
func (t *futexTable) remove(b *futexBucket, a Addr, pk *procParker) {
	b.mu.Lock()
	ws := b.waiters[a]
	for i, w := range ws {
		if w == pk {
			ws[i] = ws[len(ws)-1]
			ws = ws[:len(ws)-1]
			if len(ws) == 0 {
				delete(b.waiters, a)
			} else {
				b.waiters[a] = ws
			}
			t.parked.Add(-1)
			break
		}
	}
	b.mu.Unlock()
}

// wake unparks every process parked on a. Callers pre-check parked != 0.
func (t *futexTable) wake(a Addr) {
	b := t.bucket(a)
	b.mu.Lock()
	ws := b.waiters[a]
	if len(ws) != 0 {
		delete(b.waiters, a)
		t.parked.Add(-int64(len(ws)))
	}
	b.mu.Unlock()
	for _, pk := range ws {
		pk.wake()
	}
}

// wakeAll unparks every parked process (used when a gate is installed on a
// memory that had free-running waiters).
func (t *futexTable) wakeAll() {
	if t.parked.Load() == 0 {
		return
	}
	for i := range t.buckets {
		b := &t.buckets[i]
		b.mu.Lock()
		for a, ws := range b.waiters {
			delete(b.waiters, a)
			t.parked.Add(-int64(len(ws)))
			for _, pk := range ws {
				pk.wake()
			}
		}
		b.mu.Unlock()
	}
}

// wakeup is the mutating operations' hook: wake anyone parked on a. The
// parked counter keeps this a single always-taken-branch-free atomic load
// whenever nothing is parked (in particular under a gate, where Wait
// never parks).
func (m *Memory) wakeup(a Addr) {
	if m.ftab.parked.Load() != 0 {
		m.ftab.wake(a)
	}
}

// Wait adaptively pauses the process until the word at a is observed to
// differ from old, the abort signal arrives, or spuriously — callers
// re-check their wait condition and call Wait again, exactly as they
// would call Yield in a spin loop. Under a schedule gate it is a no-op
// (the gate already serializes steps), so gated runs are unchanged.
//
// Wait is not a shared-memory operation: it charges no RMR, takes no
// schedule step, and mutates nothing the model observes. In free-running
// mode it escalates bounded spin → cooperative yield → futex-like park on
// a (see the file comment), so oversubscribed waiters stop burning CPU
// while wakeups from the mutating operations stay O(1) per handoff.
func (p *Proc) Wait(a Addr, old uint64) {
	if p.m.gate != nil {
		return
	}
	if p.m.waitPolicy == WaitYield {
		osyield()
		return
	}
	if p.m.word(a).val.Load() != old {
		p.wait.rounds = 0
		return
	}
	r := p.wait.rounds
	p.wait.rounds++
	if r == 0 {
		p.wait.spin = 0
		if runtime.GOMAXPROCS(0) > 1 {
			p.wait.spin = waitSpinRounds
		}
	}
	switch {
	case r < p.wait.spin:
		waitRelax(waitSpinCycles)
	case r < p.wait.spin+waitYieldRounds:
		osyield()
	default:
		p.m.ftab.park(p, a, old)
		p.wait.rounds = 0
	}
}

// waitRelax spins for n empty iterations — a portable PAUSE stand-in; the
// gc compiler does not eliminate counted empty loops.
//
//go:noinline
func waitRelax(n int) {
	for i := 0; i < n; i++ {
	}
}
