package rmr_test

import (
	"fmt"

	"sublock/rmr"
)

// The CC model in two lines: cached re-reads are free; an update by
// another process invalidates the copy.
func ExampleMemory() {
	m := rmr.NewMemory(rmr.CC, 2, nil)
	flag := m.Alloc(0)
	waiter, owner := m.Proc(0), m.Proc(1)

	for i := 0; i < 100; i++ {
		waiter.Read(flag)
	}
	owner.Write(flag, 1)
	waiter.Read(flag)
	fmt.Println("waiter RMRs:", waiter.RMRs())
	// Output: waiter RMRs: 2
}

// A seeded scheduler makes a concurrent execution a pure function of its
// seed: the same interleaving, every run.
func ExampleScheduler() {
	s := rmr.NewScheduler(2, rmr.RandomPick(7))
	m := rmr.NewMemory(rmr.CC, 2, nil)
	word := m.Alloc(0)
	m.SetGate(s)
	for i := 0; i < 2; i++ {
		p := m.Proc(i)
		s.Go(func() {
			p.CAS(word, 0, uint64(p.ID())+1)
		})
	}
	if err := s.Run(100); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("CAS winner:", m.Peek(word)-1)
	// Output: CAS winner: 0
}

// The explorer enumerates every interleaving of a small deterministic
// body — exhaustive verification rather than sampling.
func ExampleExplorer() {
	e := &rmr.Explorer{}
	res, err := e.Run(2, func(s *rmr.Scheduler, maxSteps int) error {
		m := rmr.NewMemory(rmr.CC, 2, s)
		a := m.Alloc(0)
		for i := 0; i < 2; i++ {
			p := m.Proc(i)
			s.Go(func() {
				p.FAA(a, 1)
			})
		}
		if err := s.Run(maxSteps); err != nil {
			return err
		}
		if got := m.Peek(a); got != 2 {
			return fmt.Errorf("lost update: %d", got)
		}
		return nil
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("explored %d schedules, exhausted=%v\n", res.Explored, res.Exhausted)
	// Output: explored 2 schedules, exhausted=true
}
