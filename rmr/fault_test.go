package rmr

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"testing"
)

// faultCounters builds the standard crash-test body: n processes FAA a
// shared counter per times each under the given scheduler.
func faultCounters(s *Scheduler, n, per int) (*Memory, Addr) {
	m := NewMemory(CC, n, s)
	a := m.Alloc(0)
	for i := 0; i < n; i++ {
		p := m.Proc(i)
		s.Go(func() {
			for j := 0; j < per; j++ {
				p.FAA(a, 1)
			}
		})
	}
	return m, a
}

// TestFaultCrashStopDeterministicReplay: a scripted crash-stop removes
// exactly the victim's remaining operations, is attributed in the fault
// log with a replay schedule, and reproduces step for step — both by
// re-running the plan under the same pick and by replaying the recorded
// schedule prefix.
func TestFaultCrashStopDeterministicReplay(t *testing.T) {
	plan := &FaultPlan{Faults: []FaultSpec{{Proc: 0, Kind: FaultCrash, Op: 4}}}
	run := func(pick PickFunc) (uint64, Fault, *Scheduler) {
		s := NewScheduler(3, pick)
		s.SetFaultPlan(plan)
		m, a := faultCounters(s, 3, 10)
		if err := s.Run(1000); err != nil {
			t.Fatalf("Run: %v", err)
		}
		faults := s.Faults()
		if len(faults) != 1 {
			t.Fatalf("faults = %v, want exactly the injected crash", faults)
		}
		return m.Peek(a), faults[0], s
	}
	got, flt, _ := run(RoundRobinPick())
	// The victim attempted its 4th operation, so it performed 3 of its 10.
	if want := uint64(3 + 10 + 10); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
	if flt.Proc != 0 || flt.Kind != FaultCrash || flt.Op != 4 {
		t.Fatalf("fault = %+v, want crash of process 0 at op 4", flt)
	}
	if len(flt.Schedule) == 0 {
		t.Fatal("injected fault carries no replay schedule")
	}

	// Same plan, same pick: bit-identical execution.
	got2, flt2, _ := run(RoundRobinPick())
	if got2 != got || !reflect.DeepEqual(flt2, flt) {
		t.Fatalf("re-run diverged: counter %d vs %d, fault %+v vs %+v", got2, got, flt2, flt)
	}

	// Replaying the recorded prefix reproduces the fault at the same step.
	_, flt3, _ := run(ReplayPick(flt.Schedule))
	if flt3.Step != flt.Step || flt3.Op != flt.Op || !reflect.DeepEqual(flt3.Schedule, flt.Schedule) {
		t.Fatalf("replay fault = %+v, want %+v", flt3, flt)
	}
}

// TestFaultStallDelaysNotKills: a stalled process is only delayed — every
// operation still completes — and the stall is attributed.
func TestFaultStallDelaysNotKills(t *testing.T) {
	s := NewScheduler(2, RoundRobinPick())
	s.SetFaultPlan(&FaultPlan{Faults: []FaultSpec{{Proc: 0, Kind: FaultStall, Op: 2, Delay: 15}}})
	m, a := faultCounters(s, 2, 5)
	if err := s.Run(200); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := m.Peek(a); got != 10 {
		t.Fatalf("counter = %d, want 10 (stall must not lose operations)", got)
	}
	faults := s.Faults()
	if len(faults) != 1 || faults[0].Kind != FaultStall || faults[0].Proc != 0 || faults[0].Delay != 15 {
		t.Fatalf("faults = %v, want the injected stall", faults)
	}
}

// TestFaultStallFastForward: when every waiting process is stalled the
// scheduler fast-forwards the global step to the window's expiry instead
// of deadlocking, and the window consumes step budget.
func TestFaultStallFastForward(t *testing.T) {
	s := NewScheduler(1, RoundRobinPick())
	s.SetFaultPlan(&FaultPlan{Faults: []FaultSpec{{Proc: 0, Kind: FaultStall, Op: 2, Delay: 50}}})
	m, a := faultCounters(s, 1, 3)
	if err := s.Run(60); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := m.Peek(a); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	if got := s.Steps(); got < 51 {
		t.Fatalf("Steps() = %d, want >= 51 (stall window must consume budget)", got)
	}

	// A window larger than the remaining budget ends the run as a stall.
	s2 := NewScheduler(1, RoundRobinPick())
	s2.SetFaultPlan(&FaultPlan{Faults: []FaultSpec{{Proc: 0, Kind: FaultStall, Op: 2, Delay: 50}}})
	_, _ = faultCounters(s2, 1, 3)
	if err := s2.Run(20); !errors.Is(err, ErrStepLimit) {
		t.Fatalf("Run = %v, want ErrStepLimit when the window exceeds the budget", err)
	}
	s2.Drain()
}

// TestFaultCrashRestart: a crash-restart victim is re-dispatched with the
// plan's Restart body after the scripted delay, under the same pid.
func TestFaultCrashRestart(t *testing.T) {
	s := NewScheduler(2, RoundRobinPick())
	m := NewMemory(CC, 2, s)
	a := m.Alloc(0)
	rest := m.Alloc(0)
	var restartedAt int64 = -1
	plan := &FaultPlan{
		Faults: []FaultSpec{{Proc: 0, Kind: FaultRestart, Op: 3, Delay: 5}},
		Restart: func(pid int) func() {
			p := m.Proc(pid)
			return func() {
				restartedAt = s.Steps()
				p.FAA(rest, 1)
			}
		},
	}
	s.SetFaultPlan(plan)
	for i := 0; i < 2; i++ {
		p := m.Proc(i)
		s.Go(func() {
			for j := 0; j < 5; j++ {
				p.FAA(a, 1)
			}
		})
	}
	if err := s.Run(200); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := m.Peek(rest); got != 1 {
		t.Fatalf("restart body ran %d times, want 1", got)
	}
	if got := m.Peek(a); got != 2+5 {
		t.Fatalf("counter = %d, want 7 (victim performed 2 before crashing)", got)
	}
	faults := s.Faults()
	if len(faults) != 1 || faults[0].Kind != FaultRestart || faults[0].Op != 3 {
		t.Fatalf("faults = %v, want the crash-restart record", faults)
	}
	if restartedAt < faults[0].Step+5 {
		t.Fatalf("restart ran at step %d, want >= crash step %d + delay 5", restartedAt, faults[0].Step)
	}
}

// TestPanicContainmentScheduler: a panic inside a scheduled process must
// not kill the test binary or deadlock the gate — Run returns a
// *FaultError wrapping ErrPanicked that attributes the panic and carries a
// schedule prefix reproducing it.
func TestPanicContainmentScheduler(t *testing.T) {
	body := func(pick PickFunc) (*Scheduler, error) {
		s := NewScheduler(2, pick)
		s.RecordSchedule(true)
		m := NewMemory(CC, 2, s)
		a := m.Alloc(0)
		p0, p1 := m.Proc(0), m.Proc(1)
		s.Go(func() {
			for j := 0; j < 5; j++ {
				p0.FAA(a, 1)
			}
		})
		s.Go(func() {
			p1.FAA(a, 1)
			p1.FAA(a, 1)
			panic("boom")
		})
		return s, s.Run(1000)
	}
	s, err := body(RoundRobinPick())
	if !errors.Is(err, ErrPanicked) {
		t.Fatalf("Run = %v, want ErrPanicked", err)
	}
	var fe *FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("Run = %T, want *FaultError", err)
	}
	flt := fe.Fault
	if flt.Proc != 1 || flt.Kind != FaultPanic || flt.Value != "boom" {
		t.Fatalf("fault = %+v, want panic \"boom\" in process 1", flt)
	}
	if !strings.Contains(flt.Stack, "fault_test") {
		t.Fatalf("fault stack does not point at the panic site:\n%s", flt.Stack)
	}
	if len(flt.Schedule) == 0 {
		t.Fatal("contained panic carries no replay schedule")
	}
	if got := s.Err(); got != err {
		t.Fatalf("Err() = %v, want the Run failure", got)
	}

	// The schedule prefix replays to the same panic at the same step.
	_, err2 := body(ReplayPick(flt.Schedule))
	var fe2 *FaultError
	if !errors.As(err2, &fe2) || fe2.Fault.Step != flt.Step || fe2.Fault.Proc != 1 {
		t.Fatalf("replay = %v, want the same contained panic at step %d", err2, flt.Step)
	}
}

// TestExplorePanicIsViolation: during exploration a contained panic is a
// property violation — reported with a lexmin schedule, not pruned — and
// the report is identical at every worker count.
func TestExplorePanicIsViolation(t *testing.T) {
	body := func(s *Scheduler, maxSteps int) error {
		m := NewMemory(CC, 2, s)
		a := m.Alloc(0)
		p0, p1 := m.Proc(0), m.Proc(1)
		s.Go(func() {
			p0.FAA(a, 1)
			p0.FAA(a, 1)
		})
		s.Go(func() {
			p1.FAA(a, 1)
			if p1.Read(a) == 3 { // both p0 ops already done: schedule-dependent
				panic("interleaving-dependent boom")
			}
		})
		if err := s.Run(maxSteps); err != nil {
			s.Drain()
			return err
		}
		return nil
	}
	var schedules [][]int
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		e := &Explorer{Workers: workers}
		_, err := e.Run(2, body)
		var ee *ErrExplore
		if !errors.As(err, &ee) {
			t.Fatalf("workers=%d: err = %v, want *ErrExplore", workers, err)
		}
		if !errors.Is(err, ErrPanicked) {
			t.Fatalf("workers=%d: err = %v, want to wrap ErrPanicked", workers, err)
		}
		schedules = append(schedules, ee.Schedule)
	}
	if !reflect.DeepEqual(schedules[0], schedules[1]) {
		t.Fatalf("lexmin schedule differs across worker counts: %v vs %v", schedules[0], schedules[1])
	}
}

// wdBody builds the rigged starvation body: process 0 completes its
// doorway and spins; process 1 enters the critical section repeatedly,
// overtaking it. Returns the scheduler for fault inspection.
func wdBody(pick PickFunc, bound int) (*Scheduler, error) {
	s := NewScheduler(2, pick)
	s.SetWatchdog(bound)
	m := NewMemory(CC, 2, s)
	a := m.Alloc(0)
	p0, p1 := m.Proc(0), m.Proc(1)
	s.Go(func() {
		p0.Read(a) // first gated op serializes the phase declarations below
		p0.EnterPhase(PhaseWaiting)
		for j := 0; j < 20; j++ {
			p0.Read(a)
		}
		p0.EnterPhase(PhaseIdle)
	})
	s.Go(func() {
		p1.Read(a)
		for j := 0; j < 6; j++ {
			p1.EnterPhase(PhaseCS)
			p1.Read(a)
			p1.EnterPhase(PhaseIdle)
		}
	})
	err := s.Run(1000)
	if err != nil {
		s.Drain()
	}
	return s, err
}

// TestWatchdogFlagsStarvation: overtaking a doorway-complete process
// beyond the bound fails the run like a safety violation, deterministically
// and with a schedule that replays to the same violation.
func TestWatchdogFlagsStarvation(t *testing.T) {
	s, err := wdBody(RoundRobinPick(), 3)
	if !errors.Is(err, ErrStarvation) {
		t.Fatalf("Run = %v, want ErrStarvation", err)
	}
	var fe *FaultError
	if !errors.As(err, &fe) {
		t.Fatalf("Run = %T, want *FaultError", err)
	}
	flt := fe.Fault
	if flt.Proc != 0 || flt.Kind != FaultStarvation || flt.Op != 4 {
		t.Fatalf("fault = %+v, want process 0 overtaken 4 times", flt)
	}
	if len(flt.Schedule) == 0 {
		t.Fatal("watchdog violation carries no replay schedule")
	}
	_ = s

	// Deterministic: the same pick reproduces the identical fault.
	s2, err2 := wdBody(RoundRobinPick(), 3)
	var fe2 *FaultError
	if !errors.As(err2, &fe2) || !reflect.DeepEqual(fe2.Fault, flt) {
		t.Fatalf("re-run fault = %v, want %+v", err2, flt)
	}
	_ = s2

	// Replaying the recorded prefix reproduces the violation.
	_, err3 := wdBody(ReplayPick(flt.Schedule), 3)
	var fe3 *FaultError
	if !errors.As(err3, &fe3) || fe3.Fault.Step != flt.Step || fe3.Fault.Proc != 0 {
		t.Fatalf("replay = %v, want the same starvation at step %d", err3, flt.Step)
	}

	// A generous bound stays clean on the same body.
	if _, err := wdBody(RoundRobinPick(), 10); err != nil {
		t.Fatalf("bound 10: Run = %v, want nil (only 6 overtakes possible)", err)
	}
}

// TestExploreWatchdogLexminAcrossWorkers: a seeded watchdog violation
// under exploration reports the lexicographically smallest offending
// schedule, identically at workers=1 and workers=GOMAXPROCS.
func TestExploreWatchdogLexminAcrossWorkers(t *testing.T) {
	body := func(s *Scheduler, maxSteps int) error {
		m := NewMemory(CC, 2, s)
		a := m.Alloc(0)
		p0, p1 := m.Proc(0), m.Proc(1)
		s.Go(func() {
			p0.Read(a)
			p0.EnterPhase(PhaseWaiting)
			for j := 0; j < 6; j++ {
				p0.Read(a)
			}
			p0.EnterPhase(PhaseIdle)
		})
		s.Go(func() {
			p1.Read(a)
			for j := 0; j < 3; j++ {
				p1.EnterPhase(PhaseCS)
				p1.Read(a)
				p1.EnterPhase(PhaseIdle)
			}
		})
		if err := s.Run(maxSteps); err != nil {
			s.Drain()
			return err
		}
		return nil
	}
	var schedules [][]int
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		e := &Explorer{Workers: workers, Watchdog: 2, MaxSteps: 24}
		_, err := e.Run(2, body)
		var ee *ErrExplore
		if !errors.As(err, &ee) {
			t.Fatalf("workers=%d: err = %v, want a watchdog violation", workers, err)
		}
		if !errors.Is(err, ErrStarvation) {
			t.Fatalf("workers=%d: err = %v, want to wrap ErrStarvation", workers, err)
		}
		schedules = append(schedules, ee.Schedule)
	}
	if !reflect.DeepEqual(schedules[0], schedules[1]) {
		t.Fatalf("lexmin schedule differs across worker counts: %v vs %v", schedules[0], schedules[1])
	}
}

// faultTolerantBody is the RunFaults test body: 2 processes FAA a counter
// twice each, with the final-count assertion corrected by the crashes that
// actually fired (read back from the scheduler's fault log).
func faultTolerantBody(s *Scheduler, maxSteps int) error {
	m := NewMemory(CC, 2, s)
	a := m.Alloc(0)
	for i := 0; i < 2; i++ {
		p := m.Proc(i)
		s.Go(func() {
			p.FAA(a, 1)
			p.FAA(a, 1)
		})
	}
	if err := s.Run(maxSteps); err != nil {
		s.Drain()
		return err
	}
	want := uint64(4)
	for _, flt := range s.Faults() {
		if flt.Kind == FaultCrash {
			want -= uint64(2 - (flt.Op - 1)) // the victim performed Op-1 of its 2
		}
	}
	if got := m.Peek(a); got != want {
		return fmt.Errorf("counter = %d, want %d", got, want)
	}
	return nil
}

// TestRunFaultsDeterministicAcrossWorkers: the crash-point sweep's
// aggregate counts and per-plan results are identical at every worker
// count, with and without sleep-set reduction (crash-only plans keep
// reduction sound), and the reduced sweep never replays more.
func TestRunFaultsDeterministicAcrossWorkers(t *testing.T) {
	fs := FaultSet{MaxCrashes: 2, MaxOp: 3}
	results := map[Reduction][]Result{}
	for _, red := range []Reduction{NoReduction, SleepSets} {
		for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
			e := &Explorer{Workers: workers, Reduction: red}
			res, runs, err := e.RunFaults(2, faultTolerantBody, fs)
			if err != nil {
				t.Fatalf("red=%v workers=%d: %v", red, workers, err)
			}
			if !res.Exhausted {
				t.Fatalf("red=%v workers=%d: sweep not exhausted", red, workers)
			}
			// nil baseline + 6 single-crash + 9 double-crash plans.
			if len(runs) != 16 {
				t.Fatalf("red=%v workers=%d: %d plans, want 16", red, workers, len(runs))
			}
			if runs[0].Plan != nil {
				t.Fatalf("first plan = %v, want the fault-free baseline", runs[0].Plan)
			}
			results[red] = append(results[red], res)
		}
	}
	for red, pair := range results {
		if !reflect.DeepEqual(pair[0], pair[1]) {
			t.Fatalf("red=%v: results differ across worker counts:\n%+v\n%+v", red, pair[0], pair[1])
		}
	}
	if por, full := results[SleepSets][0].Replays(), results[NoReduction][0].Replays(); por > full {
		t.Fatalf("reduced sweep replayed %d > unreduced %d", por, full)
	}
}

// TestRunFaultsLexminViolation: a body whose property breaks under crashes
// is caught at the first (deterministically ordered) faulty plan, with the
// lexmin schedule, identically across worker counts.
func TestRunFaultsLexminViolation(t *testing.T) {
	fragile := func(s *Scheduler, maxSteps int) error {
		m := NewMemory(CC, 2, s)
		a := m.Alloc(0)
		for i := 0; i < 2; i++ {
			p := m.Proc(i)
			s.Go(func() {
				p.FAA(a, 1)
				p.FAA(a, 1)
			})
		}
		if err := s.Run(maxSteps); err != nil {
			s.Drain()
			return err
		}
		if got := m.Peek(a); got != 4 {
			return fmt.Errorf("counter = %d, want 4", got)
		}
		return nil
	}
	type report struct {
		plan     string
		schedule []int
	}
	var reports []report
	for _, workers := range []int{1, runtime.GOMAXPROCS(0)} {
		e := &Explorer{Workers: workers}
		_, _, err := e.RunFaults(2, fragile, FaultSet{MaxOp: 2})
		var fe *ErrFaultExplore
		if !errors.As(err, &fe) {
			t.Fatalf("workers=%d: err = %v, want *ErrFaultExplore", workers, err)
		}
		reports = append(reports, report{fe.Plan.String(), fe.Schedule})
	}
	if reports[0].plan != "crash:0@1" {
		t.Fatalf("violating plan = %q, want the first enumerated crash point crash:0@1", reports[0].plan)
	}
	if !reflect.DeepEqual(reports[0], reports[1]) {
		t.Fatalf("violation report differs across worker counts: %+v vs %+v", reports[0], reports[1])
	}
}

// TestControllerScriptedFaults: Crash, StallNext, Stalled, Restart and
// FinishBudget compose into a deterministic hand-driven fault script.
func TestControllerScriptedFaults(t *testing.T) {
	c := NewController(2)
	m := NewMemory(CC, 2, c)
	a := m.Alloc(0)
	p0, p1 := m.Proc(0), m.Proc(1)
	c.Go(0, func() {
		for j := 0; j < 4; j++ {
			p0.FAA(a, 1)
		}
	})
	c.Go(1, func() {
		for j := 0; j < 4; j++ {
			p1.FAA(a, 1)
		}
	})
	c.StepN(0, 2)

	c.StallNext(1, 3)
	for i := 0; i < 3; i++ {
		if !c.Step(1) {
			t.Fatalf("stall tick %d: process 1 reported finished", i)
		}
	}
	if c.Stalled(1) {
		t.Fatal("process 1 still stalled after its window")
	}
	if got := m.Peek(a); got != 2 {
		t.Fatalf("counter = %d after stall ticks, want 2 (no operation may run)", got)
	}
	if !c.Step(1) {
		t.Fatal("process 1 finished early")
	}
	if got := m.Peek(a); got != 3 {
		t.Fatalf("counter = %d, want 3 (stall over, operation performed)", got)
	}

	// Crash process 0 at its next attempt: one more operation lands (the
	// one it is parked before), then the attempt after unwinds it.
	c.Crash(0)
	if c.Step(0) {
		t.Fatal("process 0 survived its crash")
	}
	if got := m.Peek(a); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if !c.Finished(0) {
		t.Fatal("crashed process not finished")
	}

	// Scripted recovery: relaunch under the same pid.
	c.Restart(0, func() { p0.FAA(a, 10) })
	if _, err := c.FinishBudget(0, 100); err != nil {
		t.Fatalf("FinishBudget(restarted): %v", err)
	}
	if _, err := c.FinishBudget(1, 100); err != nil {
		t.Fatalf("FinishBudget(1): %v", err)
	}
	if got := m.Peek(a); got != 17 {
		t.Fatalf("final counter = %d, want 17", got)
	}
	if err := c.Err(); err != nil {
		t.Fatalf("Err() = %v, want nil (injected faults are not failures)", err)
	}
	var kinds []FaultKind
	for _, flt := range c.Faults() {
		kinds = append(kinds, flt.Kind)
	}
	if !reflect.DeepEqual(kinds, []FaultKind{FaultStall, FaultCrash}) {
		t.Fatalf("fault kinds = %v, want [stall crash]", kinds)
	}
}

// TestControllerPlanFaults: a FaultPlan installed on a Controller triggers
// at the scripted per-process operation attempts.
func TestControllerPlanFaults(t *testing.T) {
	c := NewController(2)
	c.SetFaultPlan(&FaultPlan{Faults: []FaultSpec{
		{Proc: 0, Kind: FaultCrash, Op: 2},
		{Proc: 1, Kind: FaultStall, Op: 1, Delay: 2},
	}})
	m := NewMemory(CC, 2, c)
	a := m.Alloc(0)
	p0, p1 := m.Proc(0), m.Proc(1)
	c.Go(0, func() {
		for j := 0; j < 3; j++ {
			p0.FAA(a, 1)
		}
	})
	c.Go(1, func() {
		p1.FAA(a, 1)
		p1.FAA(a, 1)
	})
	if n, err := c.FinishBudget(0, 10); err != nil || n != 1 {
		t.Fatalf("FinishBudget(0) = %d, %v; want crash after 1 grant", n, err)
	}
	if n, err := c.FinishBudget(1, 10); err != nil || n != 4 {
		t.Fatalf("FinishBudget(1) = %d, %v; want 2 stall ticks + 2 operations", n, err)
	}
	if got := m.Peek(a); got != 3 {
		t.Fatalf("counter = %d, want 3", got)
	}
	faults := c.Faults()
	if len(faults) != 2 {
		t.Fatalf("faults = %v, want stall then crash", faults)
	}
}

// TestControllerFinishBudgetLivelock is the satellite fix: a livelocked
// spin loop used to make Finish panic (and Wait hang); FinishBudget now
// degrades to an error wrapping ErrStepLimit with the process recoverable.
func TestControllerFinishBudgetLivelock(t *testing.T) {
	c := NewController(1)
	m := NewMemory(CC, 1, c)
	a := m.Alloc(0)
	p := m.Proc(0)
	c.Go(0, func() {
		for p.Read(a) == 0 && !p.AbortSignal() {
		}
	})
	if _, err := c.FinishBudget(0, 50); !errors.Is(err, ErrStepLimit) {
		t.Fatalf("FinishBudget = %v, want ErrStepLimit", err)
	}
	p.SignalAbort()
	if _, err := c.FinishBudget(0, 50); err != nil {
		t.Fatalf("FinishBudget after abort: %v", err)
	}
}

// TestControllerWaitBudgetLivelock: WaitBudget ends a livelocked wait with
// an error instead of hanging, leaving the survivors recoverable.
func TestControllerWaitBudgetLivelock(t *testing.T) {
	c := NewController(2)
	m := NewMemory(CC, 2, c)
	a := m.Alloc(0)
	p0, p1 := m.Proc(0), m.Proc(1)
	c.Go(0, func() { p0.FAA(a, 1) })
	c.Go(1, func() {
		for p1.Read(a) < 100 && !p1.AbortSignal() {
		}
	})
	if err := c.WaitBudget(40); !errors.Is(err, ErrStepLimit) {
		t.Fatalf("WaitBudget = %v, want ErrStepLimit", err)
	}
	p1.SignalAbort()
	if err := c.WaitBudget(100); err != nil {
		t.Fatalf("WaitBudget after abort: %v", err)
	}
}

// TestControllerPanicContainment: a panic inside a Controller-driven
// process retires the process and surfaces through Err instead of killing
// the test binary (the satellite containment fix at the Go spawn site).
func TestControllerPanicContainment(t *testing.T) {
	c := NewController(2)
	m := NewMemory(CC, 2, c)
	a := m.Alloc(0)
	p0, p1 := m.Proc(0), m.Proc(1)
	c.Go(0, func() {
		p0.FAA(a, 1)
		panic("kaboom")
	})
	c.Go(1, func() { p1.FAA(a, 1) })
	if c.Step(0) {
		c.Step(0) // the panic lands on the attempt after the operation
	}
	if !c.Finished(0) {
		t.Fatal("panicking process not retired")
	}
	if err := c.WaitBudget(100); !errors.Is(err, ErrPanicked) {
		t.Fatalf("WaitBudget = %v, want ErrPanicked", err)
	}
	var fe *FaultError
	if err := c.Err(); !errors.As(err, &fe) || fe.Fault.Proc != 0 || fe.Fault.Value != "kaboom" {
		t.Fatalf("Err() = %v, want the contained panic of process 0", c.Err())
	}
	c.Wait() // must not hang
}

// TestFaultOffOpPathDoesNotAllocate is the CI guard that the fault layer
// costs the fault-off operation path nothing: with no plan and no watchdog
// installed, gated operations stay zero-alloc exactly as before.
func TestFaultOffOpPathDoesNotAllocate(t *testing.T) {
	for _, model := range []Model{CC, DSM} {
		t.Run(model.String(), func(t *testing.T) {
			s := NewScheduler(1, func(_ int, _ []int) int { return 0 })
			if s.FaultPlan() != nil {
				t.Fatal("fresh scheduler has a fault plan")
			}
			m := NewMemory(model, 1, s)
			own := m.AllocLocal(0, 0)
			shared := m.Alloc(0)
			p := m.Proc(0)
			s.Go(func() { checkOpsDoNotAllocate(t, p, own, shared) })
			if err := s.Run(1 << 30); err != nil {
				t.Fatal(err)
			}
		})
	}
}
