package rmr

import (
	"errors"
	"fmt"
	"strings"
)

// Deterministic fault injection for the simulated machine.
//
// The paper's model (§2) assumes processes never fail. The strongest
// related results — recoverable mutual exclusion (RME) — are defined on
// exactly this machine with crash faults added, and a robust harness must
// also survive bugs in the code under test: a panic inside a simulated
// process, or a livelocked lock that would otherwise hang the host.
//
// This file adds three layers:
//
//   - FaultPlan: scripted crash-stop, stall, and crash-restart faults that
//     Scheduler and Controller apply deterministically at the gate. A fault
//     triggers when its victim attempts a specific shared-memory operation
//     (counted per process), so the same plan under the same schedule
//     reproduces the same execution step for step.
//   - Panic containment: a panic inside a simulated process is recovered at
//     the spawn site, recorded as a Fault carrying the schedule prefix for
//     replay, and surfaced as a failed run — instead of killing the host
//     test binary or deadlocking the gate.
//   - Liveness watchdog: Scheduler.SetWatchdog flags starvation/livelock
//     when a doorway-complete process (one that declared PhaseWaiting) is
//     overtaken by more critical-section entries than the bound, reported
//     like a safety violation with a replayable schedule.
//
// Replays: a Fault's Schedule is the choice-index prefix recorded up to the
// fault (see Scheduler.RecordSchedule). Re-running the same body with the
// same FaultPlan under ReplayPick(fault.Schedule) reproduces the execution;
// without the plan the choice tree differs and the replay is meaningless.

// FaultKind classifies an injected or observed fault.
type FaultKind int

const (
	// FaultCrash is crash-stop: the victim halts permanently just before
	// performing the triggering operation (the operation never happens).
	FaultCrash FaultKind = iota + 1
	// FaultStall deschedules the victim for Delay global steps before the
	// triggering operation: it stays blocked at the gate and is ineligible
	// for scheduling until the window has passed, then proceeds normally.
	FaultStall
	// FaultRestart is crash-and-restart: crash-stop at the trigger, then —
	// Delay global steps later — the process body produced by
	// FaultPlan.Restart is dispatched under the same pid (the RME model's
	// recovery semantics). Without a Restart hook it degrades to FaultCrash.
	FaultRestart
	// FaultPanic records a panic inside a simulated process, recovered and
	// contained at the spawn site instead of crashing the host.
	FaultPanic
	// FaultStarvation records a liveness-watchdog violation: a
	// doorway-complete process was overtaken beyond the configured bound.
	FaultStarvation
)

// String returns the fault-kind mnemonic.
func (k FaultKind) String() string {
	switch k {
	case FaultCrash:
		return "crash"
	case FaultStall:
		return "stall"
	case FaultRestart:
		return "restart"
	case FaultPanic:
		return "panic"
	case FaultStarvation:
		return "starvation"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// FaultSpec is one scripted fault: Kind strikes process Proc when it
// attempts its Op-th (1-based) gated shared-memory operation. Op counts
// are cumulative across a restart, so a restarted process is not re-struck
// by the spec that killed it.
type FaultSpec struct {
	Proc int
	Kind FaultKind // FaultCrash, FaultStall, or FaultRestart
	Op   int       // 1-based operation attempt that triggers the fault
	// Delay is the stall window (FaultStall) or the delay before the
	// restarted body is dispatched (FaultRestart), in global steps.
	Delay int
}

// String formats the spec in the CLI's -faults syntax (kind:pid@op[+delay]).
func (sp FaultSpec) String() string {
	s := fmt.Sprintf("%s:%d@%d", sp.Kind, sp.Proc, sp.Op)
	if sp.Delay > 0 {
		s += fmt.Sprintf("+%d", sp.Delay)
	}
	return s
}

// FaultPlan is a deterministic fault script applied at the gate: install it
// with Scheduler.SetFaultPlan or Controller.SetFaultPlan before the run.
// The same plan under the same schedule reproduces the same execution.
type FaultPlan struct {
	Faults []FaultSpec
	// Restart, when non-nil, rebuilds the process body dispatched for a
	// FaultRestart victim: it is called at crash time and the returned
	// function is scheduled Delay global steps later under the victim's
	// pid. When nil, FaultRestart specs degrade to FaultCrash.
	Restart func(pid int) func()
}

// CrashOnly reports whether the plan injects only crash-stop faults. Stalls
// and restarts make a process's eligibility depend on the global step
// count, which breaks the trace-equivalence argument behind sleep-set
// partial-order reduction; the Explorer therefore disables reduction for
// plans that are not crash-only.
func (p *FaultPlan) CrashOnly() bool {
	if p == nil {
		return true
	}
	for _, sp := range p.Faults {
		if sp.Kind == FaultStall {
			return false
		}
		if sp.Kind == FaultRestart && p.Restart != nil {
			return false
		}
	}
	return true
}

// String summarizes the plan in the CLI's -faults syntax.
func (p *FaultPlan) String() string {
	if p == nil || len(p.Faults) == 0 {
		return "none"
	}
	parts := make([]string, len(p.Faults))
	for i, sp := range p.Faults {
		parts[i] = sp.String()
	}
	return strings.Join(parts, ",")
}

// validate panics on a malformed plan — a plan is test configuration, and
// failing loudly at install time beats silently skipping a fault.
func (p *FaultPlan) validate(n int) {
	for _, sp := range p.Faults {
		if sp.Proc < 0 || sp.Proc >= n {
			panic(fmt.Sprintf("rmr: fault %v: process out of range [0,%d)", sp, n))
		}
		if sp.Op < 1 {
			panic(fmt.Sprintf("rmr: fault %v: op must be >= 1 (1-based attempt index)", sp))
		}
		if sp.Delay < 0 {
			panic(fmt.Sprintf("rmr: fault %v: negative delay", sp))
		}
		switch sp.Kind {
		case FaultCrash, FaultStall, FaultRestart:
		default:
			panic(fmt.Sprintf("rmr: fault %v: kind %v is not injectable", sp, sp.Kind))
		}
	}
}

// Fault records one fault that occurred during a run: an injected crash or
// stall taking effect, a contained panic, or a watchdog violation. Gates
// accumulate them; read the log with Scheduler.Faults or Controller.Faults
// after the run.
type Fault struct {
	// Proc is the victim process id; -1 when a panic could not be
	// attributed (it unwound before the schedule started).
	Proc int
	Kind FaultKind
	// Op is the victim's 1-based operation-attempt index at the trigger.
	// For FaultStarvation it is the overtake count that crossed the bound.
	Op int
	// Step is the number of global steps granted when the fault struck.
	Step int64
	// Delay echoes the spec's stall/restart window for injected faults.
	Delay int
	// Value and Stack capture a contained panic.
	Value any
	Stack string
	// Schedule is the choice-index prefix recorded up to the fault when
	// schedule recording was active (it is, whenever a plan or watchdog is
	// installed): replay with ReplayPick under the same plan to reproduce
	// the execution step for step.
	Schedule []int
}

// String formats the fault record on one line.
func (f Fault) String() string {
	switch f.Kind {
	case FaultPanic:
		return fmt.Sprintf("panic in process %d at step %d (op %d): %v", f.Proc, f.Step, f.Op, f.Value)
	case FaultStarvation:
		return fmt.Sprintf("starvation: process %d overtaken %d times while doorway-complete (step %d)",
			f.Proc, f.Op, f.Step)
	default:
		return fmt.Sprintf("%s: process %d at its op %d (step %d, delay %d)",
			f.Kind, f.Proc, f.Op, f.Step, f.Delay)
	}
}

// Sentinel errors for fault-layer run failures. Run wraps them in a
// *FaultError; match with errors.Is.
var (
	// ErrPanicked reports that a simulated process panicked; the panic was
	// contained and converted into a Fault instead of crashing the host.
	ErrPanicked = errors.New("rmr: simulated process panicked")
	// ErrStarvation reports a liveness-watchdog violation: a
	// doorway-complete process was overtaken beyond the configured bound.
	ErrStarvation = errors.New("rmr: liveness watchdog: doorway-complete process overtaken beyond bound")
)

// FaultError is the run failure Scheduler.Run returns for a contained panic
// or a watchdog violation. It wraps ErrPanicked or ErrStarvation (never
// ErrStepLimit), so explorations report it as a property violation with a
// lexmin schedule rather than pruning it as a stall. After Run returns a
// FaultError the caller should release any parked processes exactly as for
// ErrStepLimit: deliver abort signals and call Drain (both are no-ops when
// every process already returned).
type FaultError struct {
	Fault    Fault
	sentinel error
}

// Error implements error.
func (e *FaultError) Error() string {
	if len(e.Fault.Schedule) > 0 {
		return fmt.Sprintf("%v [replay schedule %v]", e.Fault, e.Fault.Schedule)
	}
	return e.Fault.String()
}

// Unwrap exposes the sentinel (ErrPanicked or ErrStarvation).
func (e *FaultError) Unwrap() error { return e.sentinel }

// procCrash is the panic value an injected crash uses to unwind a process
// body; the spawn-site containment recognizes and swallows it. Any body
// defer still runs during the unwind — simulated crash-stop cannot suppress
// host-language defers — so bodies under crash testing should not register
// defers that mutate shared state.
type procCrash struct{ pid int }

// faultState is a gate's per-run fault bookkeeping, allocated only when a
// FaultPlan is installed so the fault-off path costs one nil check.
type faultState struct {
	specs      [][]FaultSpec // per-pid triggers
	ops        []int32       // per-pid operation attempts so far
	stallUntil []int         // per-pid global step before which it is ineligible (0 = none)
	numStalled int           // pids with an active stall window
	restartFn  []func()      // pending restart body per pid
	restartAt  []int         // global step at which to dispatch it
	pending    int           // pending restarts
	elig       []int         // scratch: eligible waiting pids
}

func newFaultState(n int, plan *FaultPlan) *faultState {
	f := &faultState{
		specs:      make([][]FaultSpec, n),
		ops:        make([]int32, n),
		stallUntil: make([]int, n),
		restartFn:  make([]func(), n),
		restartAt:  make([]int, n),
		elig:       make([]int, 0, n),
	}
	for _, sp := range plan.Faults {
		if sp.Kind == FaultRestart && plan.Restart == nil {
			sp.Kind = FaultCrash
		}
		f.specs[sp.Proc] = append(f.specs[sp.Proc], sp)
	}
	return f
}

// reset clears the per-run state, keeping the spec tables.
func (f *faultState) reset() {
	for i := range f.ops {
		f.ops[i] = 0
		f.stallUntil[i] = 0
		f.restartFn[i] = nil
		f.restartAt[i] = 0
	}
	f.numStalled = 0
	f.pending = 0
}

// wdState is the liveness watchdog's bookkeeping (see
// Scheduler.SetWatchdog), allocated only when a bound is set.
type wdState struct {
	waiting []bool  // pid has declared PhaseWaiting and not left it
	over    []int32 // CS entries by others since it did
}

func newWdState(n int) *wdState {
	return &wdState{waiting: make([]bool, n), over: make([]int32, n)}
}

func (w *wdState) reset() {
	for i := range w.waiting {
		w.waiting[i] = false
		w.over[i] = 0
	}
}
