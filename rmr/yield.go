package rmr

import "runtime"

// osyield yields the processor to let other goroutines run. Busy-wait loops
// in free-running mode call it so that spinning processes cannot starve the
// process that would release them, which matters on low-core-count hosts.
func osyield() {
	runtime.Gosched()
}
