package rmr

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Explorer systematically enumerates schedules of a deterministic
// concurrent body by depth-first search over the scheduling-choice tree:
// at every step the set of runnable processes is a choice point, and the
// explorer replays the body once per distinct sequence of choices. For
// small configurations this is exhaustive verification of all
// interleavings — a much stronger statement than sampling seeded schedules.
//
// Requirements on the body: it must be deterministic given the schedule
// (no wall-clock time, no math/rand without a fixed seed, no free-running
// goroutines besides the scheduled processes), and every process must
// issue its shared-memory operations through a Memory gated by the
// scheduler the body receives.
type Explorer struct {
	// MaxSchedules caps the number of replays (explored + pruned +
	// equivalent-cut); 0 means no cap. When the cap stops the search, Run
	// reports exhausted=false.
	MaxSchedules int
	// MaxSteps bounds each schedule's length. Busy-wait loops make the
	// full choice tree infinite (a spinner can be rescheduled forever), so
	// exploration is exhaustive *up to this length*: schedules that hit
	// the bound are pruned — counted in Result.Pruned, not treated as
	// violations — which is the standard bounded-model-checking trade-off.
	// Choose it comfortably above the longest honest completion so that
	// only unfair spin-heavy schedules are pruned. 0 selects 512.
	MaxSteps int
	// Workers is the number of goroutines exploring disjoint prefix
	// subtrees of the choice tree concurrently; 0 or 1 selects the
	// sequential depth-first search.
	//
	// The parallel search is deterministic where it matters: an uncapped
	// run (MaxSchedules == 0) produces exactly the sequential
	// Explored/Pruned/Equivalent/Exhausted counts, and a violating run
	// reports the lexicographically smallest offending schedule — which is
	// precisely the schedule the sequential DFS would report first, so
	// replays are stable across worker counts. Two caveats: when
	// MaxSchedules stops a parallel search the counts depend on worker
	// timing (up to Workers−1 schedules beyond the cap may complete), and
	// on a violating run only the reported schedule — not the counts — is
	// deterministic. With Workers > 1 the body must additionally be safe
	// to invoke from several goroutines at once (each invocation already
	// has to build its state from scratch; it must not write shared
	// test state outside its own run).
	Workers int
	// Reduction selects partial-order reduction. SleepSets skips
	// schedules that only reorder commuting steps of schedules already
	// explored (see por.go and docs/MODEL.md): exhaustiveness, the
	// deterministic counts and the lexmin-violation guarantee then hold
	// over equivalence classes of schedules — every class with a length-
	// bounded representative is still visited, and the reported violating
	// schedule is still the lexicographically smallest one of the full
	// tree. Configurations with more than 64 processes fall back to
	// NoReduction.
	Reduction Reduction
	// Visited enables state-hash visited caching (see visited.go): replays
	// reaching an already-visited fingerprinted state are cut and counted
	// in Result.VisitedHits. Sound for bodies whose verdict is a function
	// of the reachable state (the Body contract's trace-invariance,
	// strengthened to state-invariance); forced off when a watchdog or a
	// non-crash-only fault plan makes verdicts depend on global step
	// counts, and above 64 processes.
	Visited bool
	// VisitedCap bounds the visited set to this many fingerprints
	// (rounded up to a power of two); 0 selects 1<<20. When the set fills
	// up, new states stop being recorded — sound, but counts lose their
	// worker-count independence; Result.VisitedSaturated reports it.
	VisitedCap int
	// Symmetry enables process-ID symmetry reduction (see visited.go): a
	// never-granted process is only granted when it is the smallest
	// never-granted id of its role class, cutting schedules that are id
	// permutations of canonical ones. Sound only for bodies that treat the
	// ids within a class interchangeably (locks.Info.IDSymmetric for the
	// registry locks) and launch every process with GoProc before Run so
	// the full waiting set is visible from the first pick. Forced off
	// under any fault plan (crash points name specific ids), a watchdog,
	// and above 64 processes.
	Symmetry bool
	// SymmetryClasses partitions the process ids into interchangeable role
	// classes for Symmetry; ids not listed get singleton classes and are
	// never restricted. nil puts every id in one class.
	SymmetryClasses [][]int
	// Shard/ShardCount select sharded mode: of the root-level choice
	// indices, this exploration only descends those with index ≡ Shard
	// (mod ShardCount), so ShardCount explorations with Shard = 0..
	// ShardCount-1 partition the schedule tree and their Results Merge
	// into the whole-tree counts. ShardCount 0 disables sharding. Each
	// shard keeps its own sleep seeds and visited set, so under reduction
	// the merged counts may differ from an unsharded run's — the verdicts
	// and the union of covered equivalence classes do not.
	Shard      int
	ShardCount int
	// Monitor, when non-nil, receives live progress counts so a driver
	// can report throughput while a long exploration runs.
	Monitor *Monitor
	// Watchdog, when positive, arms each replay's liveness watchdog with
	// this overtaking bound (Scheduler.SetWatchdog): starvation then
	// surfaces as a property violation with a lexmin schedule. The
	// watchdog's verdict depends on the order of independent steps, so it
	// forces Reduction off.
	Watchdog int

	// plan, when non-nil, is the fault script every replay runs under;
	// RunFaults sets it per enumerated plan. Plans that are not crash-only
	// force Reduction off (see FaultPlan.CrashOnly).
	plan *FaultPlan
}

// Monitor exposes an exploration's progress counters for concurrent
// readers (progress printers); the Explorer updates it after every replay.
type Monitor struct {
	explored   atomic.Int64
	pruned     atomic.Int64
	equivalent atomic.Int64
	visited    atomic.Int64
	symmetry   atomic.Int64
}

// Counts returns the schedules explored, pruned at the step bound, and
// cut as equivalent to explored ones so far.
func (mn *Monitor) Counts() (explored, pruned, equivalent int64) {
	return mn.explored.Load(), mn.pruned.Load(), mn.equivalent.Load()
}

// CutCounts returns the visited-hit and symmetry-cut replays so far, the
// PR-9 reductions' share of the cut breakdown.
func (mn *Monitor) CutCounts() (visited, symmetry int64) {
	return mn.visited.Load(), mn.symmetry.Load()
}

// Result summarizes an exploration.
type Result struct {
	// Explored counts completed schedules (each a full run of the body).
	Explored int
	// Pruned counts schedules cut off at MaxSteps.
	Pruned int
	// Equivalent counts replays the partial-order reduction cut at a
	// sleep-blocked choice point: every continuation from such a point
	// only reorders commuting steps of a schedule explored elsewhere.
	// Always 0 with Reduction == NoReduction.
	Equivalent int
	// VisitedHits counts replays the visited-state reduction cut at a
	// choice point whose fingerprinted state was already reached at the
	// same depth under the same sleep set: the continuations are replicas
	// of subtrees covered elsewhere. Always 0 without Explorer.Visited.
	// Deterministic at Workers <= 1; with racing workers the
	// hit-vs-pruned split depends on which worker records a state first,
	// so only Explored, Exhausted, and the verdict are invariant.
	VisitedHits int
	// SymmetryCuts counts replays the symmetry reduction cut at a choice
	// point whose only non-sleeping continuations grant a non-canonical
	// fresh process id: an id-permuted canonical schedule covers them.
	// Always 0 without Explorer.Symmetry.
	SymmetryCuts int
	// Exhausted reports whether the whole (length-bounded) choice tree —
	// up to equivalence when reduction is on — was covered; false when
	// MaxSchedules stopped the search early.
	Exhausted bool
	// VisitedSaturated reports that the visited set reached VisitedCap and
	// stopped recording new states. Cuts stay sound (only genuinely
	// visited states are ever cut) but the counts may then vary across
	// worker counts and runs.
	VisitedSaturated bool
	// Depths is the schedule-length histogram: Depths[d] counts replays
	// whose choice sequence had length d (pruned and equivalent-cut
	// replays count at the step they were cut at). Deterministic for
	// uncapped runs at any worker count without visited caching; with
	// Explorer.Visited and Workers > 1 the cut depths shift with the
	// hit-vs-pruned split (see VisitedHits).
	Depths []int64
}

// Replays returns the total number of body replays the exploration
// performed: explored + pruned + cut (equivalent, visited, symmetry).
func (r Result) Replays() int {
	return r.Explored + r.Pruned + r.Equivalent + r.VisitedHits + r.SymmetryCuts
}

// add accumulates o into r: counts and depth histograms sum, exhaustion
// ANDs, saturation ORs.
func (r *Result) add(o Result) {
	r.Explored += o.Explored
	r.Pruned += o.Pruned
	r.Equivalent += o.Equivalent
	r.VisitedHits += o.VisitedHits
	r.SymmetryCuts += o.SymmetryCuts
	if !o.Exhausted {
		r.Exhausted = false
	}
	if o.VisitedSaturated {
		r.VisitedSaturated = true
	}
	for d, n := range o.Depths {
		for len(r.Depths) <= d {
			r.Depths = append(r.Depths, 0)
		}
		r.Depths[d] += n
	}
}

// Merge combines the Results of a sharded exploration's shards (Explorer.
// Shard/ShardCount) — or of any disjoint sub-explorations — into the
// aggregate: counts and depth histograms sum, Exhausted holds iff every
// shard exhausted its subtree. The shard subtrees partition the root
// branches, so the merge of all ShardCount results covers exactly the
// whole tree and the merged verdict set equals an unsharded run's.
func Merge(rs ...Result) Result {
	var out Result
	out.Exhausted = true
	for _, r := range rs {
		out.add(r)
	}
	return out
}

// noteDepth bumps the length-d bucket, growing the histogram as needed.
func noteDepth(depths *[]int64, d int) {
	for len(*depths) <= d {
		*depths = append(*depths, 0)
	}
	(*depths)[d]++
}

// ErrExplore wraps a property violation with the schedule that produced
// it, so the failure can be replayed.
type ErrExplore struct {
	Schedule []int // the choice indices taken at each step
	Err      error
}

// Error implements error.
func (e *ErrExplore) Error() string {
	return fmt.Sprintf("schedule %v: %v", e.Schedule, e.Err)
}

// Unwrap exposes the underlying property violation.
func (e *ErrExplore) Unwrap() error { return e.Err }

// ReplayPick returns a PickFunc that follows the choice indices of a
// schedule reported by ErrExplore, taking the first alternative once the
// schedule is exhausted. It reproduces a violating run outside the Explorer
// — for example with a tracer installed to capture the events leading up to
// the violation. It panics if a choice index exceeds the branching width,
// which can only happen when the body is nondeterministic or differs from
// the one explored. Schedules reported by reduced explorations replay
// identically: reduction only prunes sibling subtrees, it never alters the
// meaning of a choice sequence.
func ReplayPick(schedule []int) PickFunc {
	return func(step int, waiting []int) int {
		choice := 0
		if step < len(schedule) {
			choice = schedule[step]
		}
		if choice >= len(waiting) {
			panic(fmt.Sprintf("rmr: replay schedule invalid at step %d (choice %d of %d): nondeterministic body?",
				step, choice, len(waiting)))
		}
		return choice
	}
}

// Body is one deterministic run under exploration: it must construct its
// state from scratch, gate its Memory with s, launch its processes with
// s.Go, call s.Run(maxSteps), and return nil iff all properties held. If
// s.Run returns ErrStepLimit the body must release its processes (deliver
// abort signals as appropriate and call s.Drain) and return an error
// wrapping ErrStepLimit, which the explorer prunes rather than reports.
// (Schedules the reduction cuts surface to the body as ErrStepLimit too,
// so the same drain protocol covers them.)
//
// Under SleepSets the body's verdict must additionally be trace-invariant:
// it may depend on each process's own operation results and on the final
// memory state — both preserved by reordering commuting steps — but not on
// the global order of independent operations (e.g. a schedule-dependent
// log of which process went first).
type Body func(s *Scheduler, maxSteps int) error

// exploreConfig is a run's resolved configuration: the step bound and the
// effective reductions after capability forcing, plus the shared visited
// set every replayer of the run consults.
type exploreConfig struct {
	maxSteps   int
	workers    int
	red        Reduction
	vis, sym   bool
	classes    [][]int
	set        *visitedSet
	shard      int
	shardCount int
}

// visitedCapacity resolves the VisitedCap knob.
func (e *Explorer) visitedCapacity() int {
	if e.VisitedCap > 0 {
		return e.VisitedCap
	}
	return defaultVisitedCap
}

// config resolves the explorer's knobs against what the run can soundly
// support, forcing ineligible reductions off (see the knob comments).
func (e *Explorer) config(nprocs int) exploreConfig {
	cfg := exploreConfig{
		maxSteps:   e.MaxSteps,
		workers:    e.Workers,
		red:        e.Reduction,
		classes:    e.SymmetryClasses,
		shard:      e.Shard,
		shardCount: e.ShardCount,
	}
	if cfg.maxSteps == 0 {
		cfg.maxSteps = 512
	}
	if nprocs <= porMaxProcs {
		cfg.vis = e.Visited
		cfg.sym = e.Symmetry
	} else {
		cfg.red = NoReduction
	}
	if e.Watchdog > 0 || !e.plan.CrashOnly() {
		// Stalls key eligibility off the global step count and the watchdog
		// keys its verdict off the order of independent CS entries: both
		// break the trace-invariance sleep sets rely on — and the state-
		// invariance visited caching and symmetry rely on, since neither
		// the watchdog's overtaking counters nor a stall scripts' step
		// coordinates are part of the state fingerprint. Crash-only plans
		// are safe for sleep sets and visited caching — a crash fires at a
		// per-process attempt count, which is preserved by reordering
		// commuting steps and is folded into the fingerprint.
		cfg.red = NoReduction
		cfg.vis = false
		cfg.sym = false
	}
	if e.plan != nil {
		// Any fault plan names specific victim ids, so processes of a class
		// are no longer interchangeable.
		cfg.sym = false
	}
	if cfg.shardCount > 0 && (cfg.shard < 0 || cfg.shard >= cfg.shardCount) {
		cfg.shardCount = 0 // invalid shard spec: explore the whole tree
	}
	if cfg.vis {
		cfg.set = newVisitedSet(e.visitedCapacity())
	}
	return cfg
}

// Run explores schedules of body depth-first — in lexicographic order of
// the choice sequences when sequential, over disjoint prefix subtrees when
// Workers > 1. A property violation aborts the search with an *ErrExplore
// carrying the offending schedule for replay; see Workers for what is
// deterministic in parallel mode.
func (e *Explorer) Run(nprocs int, body Body) (Result, error) {
	cfg := e.config(nprocs)
	if cfg.workers > 1 {
		res, _, err := e.runParallel(nprocs, body, cfg, nil, false)
		var ee *ErrExplore
		if err != nil && cfg.set != nil && errors.As(err, &ee) {
			// Visited-set insertions race across workers, so the parallel
			// winner need not be the lex-least violation of the reduced
			// tree. A sequential confirmatory rerun over a fresh visited
			// set restores the lexmin guarantee: its DFS discovery order is
			// the lexicographic order. If the rerun's schedule cap stops it
			// short of a violation, keep the parallel report.
			cfg2 := cfg
			cfg2.set = newVisitedSet(e.visitedCapacity())
			if _, seqErr := e.runSequential(nprocs, body, cfg2); seqErr != nil {
				return res, seqErr
			}
		}
		return res, err
	}
	return e.runSequential(nprocs, body, cfg)
}

// runSequential is the sequential depth-first search over the choice tree.
func (e *Explorer) runSequential(nprocs int, body Body, cfg exploreConfig) (res Result, err error) {
	maxSteps := cfg.maxSteps
	defer func() {
		if cfg.set != nil && cfg.set.sat.Load() {
			res.VisitedSaturated = true
		}
	}()
	rp := newReplayer(nprocs, cfg)
	e.arm(rp)
	defer rp.close()
	// prefix holds the choice index forced at each step. It is a buffer
	// distinct from the recorder's choice log, so both can be reused
	// across replays without aliasing. seedMask/seedOp carry the sleep set
	// computed for the branch the prefix forces.
	var prefix []int
	var seedMask uint64
	var seedOp []stepAccess
	rec := &rp.rec
	if rec.por.on {
		seedOp = make([]stepAccess, nprocs)
	}
	for {
		if rec.por.on {
			rec.por.seedMask = seedMask
			copy(rec.por.seedOp, seedOp)
		}
		runErr := rp.run(prefix, body, maxSteps)
		if !rec.vis.shardSkip {
			// A shard-skipped root replay is not a replay of this shard's
			// subtree at all; everything else counts.
			noteDepth(&res.Depths, len(rec.taken))
		}
		switch {
		case runErr == nil:
			res.Explored++
			if mn := e.Monitor; mn != nil {
				mn.explored.Add(1)
			}
		case errors.Is(runErr, ErrStepLimit):
			switch {
			case rec.vis.shardSkip:
				// Not counted: the root branches belong to other shards.
			case rec.vis.vcut:
				res.VisitedHits++
				if mn := e.Monitor; mn != nil {
					mn.visited.Add(1)
				}
			case rec.vis.scut:
				res.SymmetryCuts++
				if mn := e.Monitor; mn != nil {
					mn.symmetry.Add(1)
				}
			case rec.por.cut:
				res.Equivalent++
				if mn := e.Monitor; mn != nil {
					mn.equivalent.Add(1)
				}
			default:
				res.Pruned++
				if mn := e.Monitor; mn != nil {
					mn.pruned.Add(1)
				}
			}
		default:
			res.Explored++
			if mn := e.Monitor; mn != nil {
				mn.explored.Add(1)
			}
			return res, &ErrExplore{Schedule: append([]int(nil), rec.taken...), Err: runErr}
		}
		if e.MaxSchedules > 0 && res.Replays() >= e.MaxSchedules {
			return res, nil
		}
		if rec.por.on {
			rec.backfill()
		}
		// Backtrack: find the deepest step with an untried alternative
		// whose sibling subtree is not reduced away at its node (sleep
		// set, symmetry, shard ownership).
		next := rec.taken
		found := false
		for i := len(next) - 1; i >= 0 && !found; i-- {
			for c := next[i] + 1; c < rec.width[i]; c++ {
				if rec.skipSibling(i, c) {
					continue
				}
				if rec.por.on {
					seedMask = rec.childSleep(i, c, seedOp)
				}
				prefix = append(append(prefix[:0], next[:i]...), c)
				found = true
				break
			}
		}
		if !found {
			res.Exhausted = true
			return res, nil
		}
	}
}

// arm installs the exploration's fault plan and watchdog on a replayer's
// scheduler; both persist across the scheduler's per-replay reset.
func (e *Explorer) arm(rp *replayer) {
	if e.plan != nil {
		rp.s.SetFaultPlan(e.plan)
	}
	if e.Watchdog > 0 {
		rp.s.SetWatchdog(e.Watchdog)
	}
}

// FaultSet bounds the crash-point space RunFaults branches over: plans
// injecting up to MaxCrashes crash-stop faults per run (at most one per
// victim), each striking at one of the victim's first MaxOp operation
// attempts. Crash-stop only — stalls and restarts would force reduction
// off and need per-run state; script those with SetFaultPlan directly.
type FaultSet struct {
	// MaxCrashes caps the crashes injected per plan; 0 means 1.
	MaxCrashes int
	// MaxOp is the number of crash points tried per victim (operation
	// attempts 1..MaxOp); 0 means 1.
	MaxOp int
	// Ops lists explicit crash points (1-based operation attempts) tried
	// per victim instead of the 1..MaxOp range; when set, MaxOp is ignored.
	Ops []int
	// Procs lists the candidate victims; nil means every process.
	Procs []int
}

// FaultRun pairs one explored fault plan (nil = fault-free) with the
// sub-exploration's result.
type FaultRun struct {
	Plan   *FaultPlan
	Result Result
}

// ErrFaultExplore is ErrExplore found under an injected fault plan: the
// plan that exposed the violation plus the offending schedule. Replaying
// requires both — install the plan with SetFaultPlan, then drive the
// schedule with ReplayPick.
type ErrFaultExplore struct {
	Plan *FaultPlan
	*ErrExplore
}

// Error implements error.
func (e *ErrFaultExplore) Error() string {
	return fmt.Sprintf("under faults [%v]: %v", e.Plan, e.ErrExplore.Error())
}

// RunFaults explores body under every fault plan in the FaultSet's
// crash-point space — the fault-free plan first, then single and larger
// crash combinations in deterministic order (victims ascending, crash
// points ascending, smaller combinations first). Each plan gets a full
// bounded exploration; the first plan whose exploration finds a violation
// stops the sweep with an *ErrFaultExplore. The aggregate Result sums the
// sub-explorations (MaxSchedules caps the total across plans); the
// returned FaultRun slice itemizes them in plan order. Both plan order and
// each sub-exploration are deterministic, so uncapped aggregate counts and
// the reported (plan, schedule) pair are identical at every worker count.
func (e *Explorer) RunFaults(nprocs int, body Body, fs FaultSet) (Result, []FaultRun, error) {
	victims := fs.Procs
	if victims == nil {
		victims = make([]int, nprocs)
		for pid := range victims {
			victims[pid] = pid
		}
	}
	maxCrashes := fs.MaxCrashes
	if maxCrashes <= 0 {
		maxCrashes = 1
	}
	if maxCrashes > len(victims) {
		maxCrashes = len(victims)
	}
	ops := fs.Ops
	if len(ops) == 0 {
		maxOp := fs.MaxOp
		if maxOp <= 0 {
			maxOp = 1
		}
		ops = make([]int, maxOp)
		for i := range ops {
			ops[i] = i + 1
		}
	}

	plans := []*FaultPlan{nil} // the fault-free baseline comes first
	var build func(k, start int, cur []FaultSpec)
	build = func(k, start int, cur []FaultSpec) {
		if k == 0 {
			plans = append(plans, &FaultPlan{Faults: append([]FaultSpec(nil), cur...)})
			return
		}
		for i := start; i <= len(victims)-k; i++ {
			for _, op := range ops {
				build(k-1, i+1, append(cur, FaultSpec{Proc: victims[i], Kind: FaultCrash, Op: op}))
			}
		}
	}
	for k := 1; k <= maxCrashes; k++ {
		build(k, 0, nil)
	}

	var total Result
	var runs []FaultRun
	total.Exhausted = true
	for _, plan := range plans {
		sub := *e
		sub.plan = plan
		if e.MaxSchedules > 0 {
			remaining := e.MaxSchedules - total.Replays()
			if remaining <= 0 {
				total.Exhausted = false
				break
			}
			sub.MaxSchedules = remaining
		}
		res, err := sub.Run(nprocs, body)
		total.add(res)
		runs = append(runs, FaultRun{Plan: plan, Result: res})
		if err != nil {
			var ee *ErrExplore
			if plan != nil && errors.As(err, &ee) {
				return total, runs, &ErrFaultExplore{Plan: plan, ErrExplore: ee}
			}
			return total, runs, err
		}
	}
	return total, runs, nil
}

// exTask is a pending subtree root of a parallel exploration: the forced
// choice prefix plus — under reduction — the subtree's sleep set (pid mask
// and the pending-op footprints of the sleeping pids, indexed by pid).
type exTask struct {
	prefix []int
	mask   uint64
	pend   []stepAccess
}

// runParallel fans the choice tree out over a pool of workers. Tasks are
// subtree roots (choice prefixes); replaying a task's leftmost schedule
// discovers the branching widths along it, and every untried alternative
// on that path becomes a new task. The subtrees rooted at distinct pending
// tasks are pairwise disjoint and jointly cover exactly the unexplored
// remainder of the tree, so the Explored/Pruned/Equivalent sums of an
// uncapped run are independent of scheduling — they equal the sequential
// counts. (Under reduction this relies on sibling sleep sets being
// computed from the same data in both modes: the replay that generates a
// node's siblings is the leftmost replay through that node, sequentially
// and in a worker alike.)
//
// Workers keep the tasks they generate on a private LIFO stack (so the
// steady state costs no locks, only a handful of atomic operations per
// replay) and donate the shallower half to the shared pool whenever some
// worker is starved.
//
// seed, when non-nil, replaces the root task with a saved frontier
// (checkpoint resume); with collect true a capped run returns the pending
// frontier — workers then drain their local stacks into the shared pool
// before exiting, so counted replays and returned frontier subtrees
// exactly partition the tree and a resume chain covers exactly what an
// uninterrupted run covers (byte-identical totals with one worker; see
// the checkpoint.go package comment for the racing-worker caveat).
func (e *Explorer) runParallel(nprocs int, body Body, cfg exploreConfig, seed []exTask, collect bool) (Result, []exTask, error) {
	stack := []exTask{{}} // the root subtree: no forced choices
	if seed != nil {
		// Checkpoint frontiers are stored lexicographically ascending; the
		// shared pool is a LIFO popped from the end, so reverse the seed to
		// process tasks in lex order. A Workers=1 resume then replays the
		// exact continuation of the interrupted DFS, which keeps its final
		// counts identical to an uninterrupted run's (visited-cut depths —
		// and so truncated-replay counts — depend on processing order).
		stack = seed
		for i, j := 0, len(stack)-1; i < j; i, j = i+1, j-1 {
			stack[i], stack[j] = stack[j], stack[i]
		}
	}
	st := &parState{
		maxSchedules: e.MaxSchedules,
		workers:      cfg.workers,
		mon:          e.Monitor,
		stack:        stack,
	}
	st.work = sync.NewCond(&st.mu)
	var wg sync.WaitGroup
	for i := 0; i < st.workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rp := newReplayer(nprocs, cfg)
			e.arm(rp)
			defer rp.close()
			depths := st.worker(rp, body, cfg.maxSteps)
			st.mu.Lock()
			for d, n := range depths {
				for len(st.depths) <= d {
					st.depths = append(st.depths, 0)
				}
				st.depths[d] += n
			}
			st.mu.Unlock()
		}()
	}
	wg.Wait()

	res := Result{
		Explored:     int(st.explored.Load()),
		Pruned:       int(st.pruned.Load()),
		Equivalent:   int(st.equivalent.Load()),
		VisitedHits:  int(st.visited.Load()),
		SymmetryCuts: int(st.symmetry.Load()),
		Depths:       st.depths,
	}
	if cfg.set != nil && cfg.set.sat.Load() {
		res.VisitedSaturated = true
	}
	if b := st.best.Load(); b != nil {
		return res, nil, b
	}
	res.Exhausted = !st.capped.Load()
	var frontier []exTask
	if collect && !res.Exhausted {
		frontier = st.stack
		sortTasks(frontier)
	}
	return res, frontier, nil
}

// parState is the shared state of a parallel exploration. The hot fields
// are all atomics; mu guards only the shared task pool and the idle count,
// which steady-state replays never touch.
type parState struct {
	maxSchedules int
	workers      int
	mon          *Monitor

	explored   atomic.Int64
	pruned     atomic.Int64
	equivalent atomic.Int64
	visited    atomic.Int64
	symmetry   atomic.Int64
	capped     atomic.Bool
	best       atomic.Pointer[ErrExplore] // lexicographically smallest violation

	mu     sync.Mutex
	work   *sync.Cond
	stack  []exTask     // shared pool of pending subtree roots
	idle   int          // workers parked in steal
	hungry atomic.Int32 // mirrors idle, read lock-free by producers
	depths []int64      // merged per-worker depth histograms
}

// worker is one exploration loop: pop a task (locally when possible),
// replay it, account for it, and push the sibling subtrees branching off
// the replayed schedule. Siblings are pushed deepest-last so the local
// LIFO pop order matches the sequential DFS and stays depth-bounded.
func (st *parState) worker(rp *replayer, body Body, maxSteps int) []int64 {
	// Task slices are carved with a fixed capacity and recycled through a
	// worker-local freelist once consumed, so steady-state sibling pushes
	// allocate nothing. Ownership is transferred by the pop: a donated
	// task retires into the freelist of the worker that ran it.
	hint := maxSteps + 1
	if hint > 4096 {
		hint = 4096
	}
	rec := &rp.rec
	por := rec.por.on
	nprocs := rec.por.nprocs
	var local, free []exTask
	var depths []int64
	for {
		if st.capped.Load() {
			// Donate the unexplored local subtrees before exiting so a
			// checkpoint's frontier plus the counted replays exactly
			// partition the tree.
			st.drainLocal(&local)
			return depths
		}
		var task exTask
		ok := false
		for n := len(local); n > 0; n = len(local) {
			t := local[n-1]
			local = local[:n-1]
			// Discard subtrees that cannot contain a smaller violation
			// than the best one found: every schedule in them compares
			// greater, so exploring them cannot change the result.
			if b := st.best.Load(); b != nil && lexCompare(t.prefix, b.Schedule) > 0 {
				if cap(t.prefix) >= hint {
					free = append(free, t)
				}
				continue
			}
			task, ok = t, true
			break
		}
		if !ok {
			if task, ok = st.steal(); !ok {
				return depths
			}
		}

		if por {
			rec.por.seedMask = task.mask
			if task.pend != nil {
				copy(rec.por.seedOp, task.pend)
			}
		}
		runErr := rp.run(task.prefix, body, maxSteps)
		if !rec.vis.shardSkip {
			noteDepth(&depths, len(rec.taken))
		}
		violation := false
		switch {
		case runErr == nil:
			st.explored.Add(1)
			if st.mon != nil {
				st.mon.explored.Add(1)
			}
		case errors.Is(runErr, ErrStepLimit):
			switch {
			case rec.vis.shardSkip:
				// Not a replay of this shard's subtree; uncounted.
			case rec.vis.vcut:
				st.visited.Add(1)
				if st.mon != nil {
					st.mon.visited.Add(1)
				}
			case rec.vis.scut:
				st.symmetry.Add(1)
				if st.mon != nil {
					st.mon.symmetry.Add(1)
				}
			case rec.por.cut:
				st.equivalent.Add(1)
				if st.mon != nil {
					st.mon.equivalent.Add(1)
				}
			default:
				st.pruned.Add(1)
				if st.mon != nil {
					st.mon.pruned.Add(1)
				}
			}
		default:
			st.explored.Add(1)
			if st.mon != nil {
				st.mon.explored.Add(1)
			}
			violation = true
			st.noteViolation(rec.taken, runErr)
		}
		if !violation {
			if por {
				rec.backfill()
			}
			// Sibling subtrees of a violating schedule compare greater
			// than it, so on a violation there is nothing worth pushing.
			// Pushing before the cap check below keeps the partition
			// invariant: a capped exit leaves every unexplored subtree of
			// this replay in some stack.
			for d := len(task.prefix); d < len(rec.taken); d++ {
				for c := rec.width[d] - 1; c > rec.taken[d]; c-- {
					if rec.skipSibling(d, c) {
						continue
					}
					var t exTask
					if n := len(free); n > 0 && cap(free[n-1].prefix) > d {
						t = free[n-1]
						t.prefix = t.prefix[:d+1]
						free = free[:n-1]
					} else {
						t = exTask{prefix: make([]int, d+1, max(hint, d+1))}
					}
					copy(t.prefix, rec.taken[:d])
					t.prefix[d] = c
					if por {
						if t.pend == nil {
							t.pend = make([]stepAccess, nprocs)
						}
						t.mask = rec.childSleep(d, c, t.pend)
					}
					local = append(local, t)
				}
			}
			if h := st.hungry.Load(); h > 0 && len(local) > 1 {
				st.share(&local, int(h))
			}
		}
		if st.maxSchedules > 0 && st.replays() >= int64(st.maxSchedules) {
			st.capped.Store(true)
			st.wakeAll()
			st.drainLocal(&local)
			return depths
		}
		// The replayed task is dead: rec.prefix still aliases it, but the
		// next run overwrites that before any pick reads it.
		if cap(task.prefix) >= hint {
			free = append(free, task)
		}
	}
}

// replays totals the counted replays so far.
func (st *parState) replays() int64 {
	return st.explored.Load() + st.pruned.Load() + st.equivalent.Load() +
		st.visited.Load() + st.symmetry.Load()
}

// drainLocal donates a worker's whole local stack to the shared pool, for
// frontier collection at a capped exit.
func (st *parState) drainLocal(local *[]exTask) {
	if len(*local) == 0 {
		return
	}
	st.mu.Lock()
	st.stack = append(st.stack, *local...)
	st.mu.Unlock()
	*local = (*local)[:0]
}

// share donates the shallowest tasks of a worker's local stack — the
// larger subtrees, which sit at the bottom of the LIFO — to the shared
// pool, one per starved worker, and wakes exactly that many.
func (st *parState) share(local *[]exTask, hungry int) {
	l := *local
	k := len(l) - 1 // always keep one task to continue on
	if k > hungry {
		k = hungry
	}
	st.mu.Lock()
	st.stack = append(st.stack, l[:k]...)
	st.mu.Unlock()
	for i := 0; i < k; i++ {
		st.work.Signal()
	}
	n := copy(l, l[k:])
	*local = l[:n]
}

// steal pops a task from the shared pool, blocking while other workers may
// still donate work. It returns false when the search is over: every
// worker is starved (the tree is fully claimed), or the schedule cap was
// hit.
func (st *parState) steal() (exTask, bool) {
	st.mu.Lock()
	st.idle++
	st.hungry.Store(int32(st.idle))
	for {
		for n := len(st.stack); n > 0; n = len(st.stack) {
			t := st.stack[n-1]
			st.stack = st.stack[:n-1]
			if b := st.best.Load(); b != nil && lexCompare(t.prefix, b.Schedule) > 0 {
				continue
			}
			st.idle--
			st.hungry.Store(int32(st.idle))
			st.mu.Unlock()
			return t, true
		}
		if st.idle == st.workers || st.capped.Load() {
			st.work.Broadcast()
			st.mu.Unlock()
			return exTask{}, false
		}
		st.work.Wait()
	}
}

// noteViolation records a violating schedule, keeping the
// lexicographically smallest one. The schedule is copied: the worker
// reuses its choice log on the next replay.
func (st *parState) noteViolation(schedule []int, err error) {
	e := &ErrExplore{Schedule: append([]int(nil), schedule...), Err: err}
	for {
		cur := st.best.Load()
		if cur != nil && lexCompare(cur.Schedule, e.Schedule) <= 0 {
			return
		}
		if st.best.CompareAndSwap(cur, e) {
			return
		}
	}
}

func (st *parState) wakeAll() {
	st.mu.Lock()
	st.work.Broadcast()
	st.mu.Unlock()
}

// lexCompare orders choice sequences lexicographically, with a proper
// prefix ordered before its extensions.
func lexCompare(a, b []int) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// recorder is a PickFunc that follows a forced prefix of choice indices
// and then always takes the first alternative — the first one not reduced
// away (asleep, visited, symmetry-blocked, or shard-unowned) — recording
// the choices made and the branching width at every step. Its por state is
// described in por.go, its vis state in visited.go.
type recorder struct {
	prefix []int
	taken  []int
	width  []int
	por    porState
	vis    visState
}

// replayer bundles a recorder with a scheduler that is reset and reused
// across replays, so that a replay allocates nothing beyond what the body
// itself allocates: the choice log, the grant channels, the waiting buffer,
// the reduction's access log and snapshots, and the process goroutines
// (via the pool) all persist from run to run.
type replayer struct {
	rec  recorder
	s    *Scheduler
	pool procPool
}

// newReplayer pre-sizes the choice log (and, under reduction, the access
// log and per-depth snapshots) to the step bound so that steady replays do
// not grow slices while holding the scheduler lock. The caller must
// close() the replayer when the exploration is over to release the pooled
// goroutines.
func newReplayer(nprocs int, cfg exploreConfig) *replayer {
	maxSteps := cfg.maxSteps
	hint := maxSteps + 1
	if hint > 4096 {
		hint = 4096
	}
	rp := &replayer{rec: recorder{
		taken: make([]int, 0, hint),
		width: make([]int, 0, hint),
	}}
	rp.s = NewScheduler(nprocs, rp.rec.pick)
	rp.s.spawn = rp.pool.spawn
	if cfg.red == SleepSets && nprocs <= porMaxProcs {
		p := &rp.rec.por
		p.on = true
		p.nprocs = nprocs
		p.acc = make([]stepAccess, maxSteps)
		p.seedOp = make([]stepAccess, nprocs)
		p.sleepOp = make([]stepAccess, nprocs)
		p.pend = make([]stepAccess, nprocs)
		p.sleepAt = make([]uint64, hint)
		p.pidAt = make([]int32, hint*nprocs)
		p.pendAt = make([]stepAccess, hint*nprocs)
		rp.s.acc = p.acc
	}
	v := &rp.rec.vis
	v.nprocs = nprocs
	v.shard, v.shardCount = cfg.shard, cfg.shardCount
	if cfg.vis {
		v.on = true
		v.set = cfg.set
		v.s = rp.s
		rp.s.hist = make([]uint64, nprocs)
	}
	if cfg.sym {
		v.sym = true
		v.initSym(nprocs, cfg.classes)
		v.grantedAt = make([]uint64, 0, hint)
		if !rp.rec.por.on {
			v.pidAt = make([]int32, 0, hint*nprocs)
		}
	}
	return rp
}

// run replays the leftmost schedule of the subtree rooted at prefix.
func (rp *replayer) run(prefix []int, body Body, maxSteps int) error {
	rp.rec.prefix = prefix
	rp.rec.taken = rp.rec.taken[:0]
	rp.rec.width = rp.rec.width[:0]
	rp.rec.por.cut = false
	v := &rp.rec.vis
	v.vcut, v.scut, v.shardSkip = false, false, false
	v.granted = 0
	rp.s.reset()
	return body(rp.s, maxSteps)
}

func (rp *replayer) close() { rp.pool.close() }

// procPool reuses goroutines across the thousands of short-lived process
// launches an exploration performs: spawning and retiring a goroutine per
// process per replay is a measurable fraction of a replay on small
// configurations. A pooled goroutine parks on its own channel between
// launches; dispatching to it costs the same wakeup a fresh goroutine
// would, minus the creation and teardown.
//
// The free list is a lock-free Treiber stack over an append-only node
// table: head packs a 32-bit ABA version with a 32-bit node index (+1; 0
// terminates), so the steady-state dispatch — pop, run, re-enlist — takes
// a handful of atomics and no locks. The mutex only guards goroutine
// creation (free list empty) and close.
type procPool struct {
	head  atomic.Uint64               // {version:32, node index+1:32}
	nodes atomic.Pointer[[]*poolNode] // append-only; republished on growth
	mu    sync.Mutex
	all   []chan procTask
}

// poolNode is one pooled goroutine's stack entry: its dispatch channel and
// the intrusive next link (a node index+1, 0 terminating the list).
type poolNode struct {
	c    chan procTask
	next atomic.Uint32
}

// procTask is a pooled launch: the goroutine runs s.runProc(fn). Shipping
// the pair instead of a closure keeps the dispatch path allocation-free.
type procTask struct {
	s  *Scheduler
	fn func()
}

func (pp *procPool) spawn(s *Scheduler, fn func()) {
	for {
		h := pp.head.Load()
		idx := uint32(h)
		if idx == 0 {
			break
		}
		n := (*pp.nodes.Load())[idx-1]
		next := n.next.Load()
		if pp.head.CompareAndSwap(h, (h>>32+1)<<32|uint64(next)) {
			n.c <- procTask{s, fn}
			return
		}
	}
	// Free list empty: enlist a fresh goroutine. The pool may briefly
	// over-provision when a launch races a goroutine's re-enlistment;
	// growth is bounded by the processes in flight.
	pp.mu.Lock()
	var nodes []*poolNode
	if old := pp.nodes.Load(); old != nil {
		nodes = make([]*poolNode, len(*old), len(*old)+1)
		copy(nodes, *old)
	}
	n := &poolNode{c: make(chan procTask, 1)}
	nodes = append(nodes, n)
	pp.nodes.Store(&nodes)
	idx := uint32(len(nodes)) // this node's index+1
	pp.all = append(pp.all, n.c)
	pp.mu.Unlock()
	go pp.loop(n, idx)
	n.c <- procTask{s, fn}
}

// push re-enlists a parked goroutine's node. The version in the head's
// high half makes the CAS safe against ABA: every successful push or pop
// bumps it, so a head observed before an interleaved pop/push sequence
// never matches again.
func (pp *procPool) push(n *poolNode, idx uint32) {
	for {
		h := pp.head.Load()
		n.next.Store(uint32(h))
		if pp.head.CompareAndSwap(h, (h>>32+1)<<32|uint64(idx)) {
			return
		}
	}
}

// loop runs dispatched tasks, re-enlisting in the free list after each.
func (pp *procPool) loop(n *poolNode, idx uint32) {
	for t := range n.c {
		t.s.runProc(t.fn)
		pp.push(n, idx)
	}
}

// close retires the pooled goroutines. Pending launches have all returned
// by the time the explorer calls it, so every loop is parked (or about to
// park) on its channel receive.
func (pp *procPool) close() {
	pp.mu.Lock()
	all := pp.all
	pp.all = nil
	pp.mu.Unlock()
	pp.head.Store(0)
	for _, c := range all {
		close(c)
	}
}

func (r *recorder) pick(step int, waiting []int) int {
	if r.por.on {
		return r.porPick(step, waiting)
	}
	if r.vis.active() {
		return r.visPick(step, waiting)
	}
	choice := 0
	if step < len(r.prefix) {
		choice = r.prefix[step]
	}
	if choice >= len(waiting) {
		panic(badPrefix(step, choice, len(waiting)))
	}
	r.taken = append(r.taken, choice)
	r.width = append(r.width, len(waiting))
	return choice
}

// badPrefix reports a forced choice exceeding the branching width: the
// tree shifted under a stale prefix, which is possible only if the body is
// nondeterministic, violating the contract.
func badPrefix(step, choice, width int) string {
	return fmt.Sprintf("rmr: exploration prefix invalid at step %d (choice %d of %d): nondeterministic body?",
		step, choice, width)
}
