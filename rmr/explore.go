package rmr

import (
	"errors"
	"fmt"
)

// Explorer systematically enumerates schedules of a deterministic
// concurrent body by depth-first search over the scheduling-choice tree:
// at every step the set of runnable processes is a choice point, and the
// explorer replays the body once per distinct sequence of choices. For
// small configurations this is exhaustive verification of all
// interleavings — a much stronger statement than sampling seeded schedules.
//
// Requirements on the body: it must be deterministic given the schedule
// (no wall-clock time, no math/rand without a fixed seed, no free-running
// goroutines besides the scheduled processes), and every process must
// issue its shared-memory operations through a Memory gated by the
// scheduler the body receives.
type Explorer struct {
	// MaxSchedules caps the number of schedules explored; 0 means no cap.
	// When the cap stops the search, Run reports exhausted=false.
	MaxSchedules int
	// MaxSteps bounds each schedule's length. Busy-wait loops make the
	// full choice tree infinite (a spinner can be rescheduled forever), so
	// exploration is exhaustive *up to this length*: schedules that hit
	// the bound are pruned — counted in Result.Pruned, not treated as
	// violations — which is the standard bounded-model-checking trade-off.
	// Choose it comfortably above the longest honest completion so that
	// only unfair spin-heavy schedules are pruned. 0 selects 512.
	MaxSteps int
}

// Result summarizes an exploration.
type Result struct {
	// Explored counts completed schedules (each a full run of the body).
	Explored int
	// Pruned counts schedules cut off at MaxSteps.
	Pruned int
	// Exhausted reports whether the whole (length-bounded) choice tree was
	// covered; false when MaxSchedules stopped the search early.
	Exhausted bool
}

// ErrExplore wraps a property violation with the schedule that produced
// it, so the failure can be replayed.
type ErrExplore struct {
	Schedule []int // the choice indices taken at each step
	Err      error
}

// Error implements error.
func (e *ErrExplore) Error() string {
	return fmt.Sprintf("schedule %v: %v", e.Schedule, e.Err)
}

// Unwrap exposes the underlying property violation.
func (e *ErrExplore) Unwrap() error { return e.Err }

// Body is one deterministic run under exploration: it must construct its
// state from scratch, gate its Memory with s, launch its processes with
// s.Go, call s.Run(maxSteps), and return nil iff all properties held. If
// s.Run returns ErrStepLimit the body must release its processes (deliver
// abort signals as appropriate and call s.Drain) and return an error
// wrapping ErrStepLimit, which the explorer prunes rather than reports.
type Body func(s *Scheduler, maxSteps int) error

// Run explores schedules of body depth-first. The first property violation
// aborts the search with an *ErrExplore carrying the offending schedule
// for replay.
func (e *Explorer) Run(nprocs int, body Body) (Result, error) {
	maxSteps := e.MaxSteps
	if maxSteps == 0 {
		maxSteps = 512
	}
	var res Result
	// prefix holds the choice index forced at each step.
	var prefix []int
	for {
		rec := &recorder{prefix: prefix}
		s := NewScheduler(nprocs, rec.pick)
		runErr := body(s, maxSteps)
		switch {
		case runErr == nil:
			res.Explored++
		case errors.Is(runErr, ErrStepLimit):
			res.Pruned++
		default:
			res.Explored++
			return res, &ErrExplore{Schedule: rec.taken, Err: runErr}
		}
		if e.MaxSchedules > 0 && res.Explored+res.Pruned >= e.MaxSchedules {
			return res, nil
		}
		// Backtrack: find the deepest step with an untried alternative.
		next := rec.taken
		i := len(next) - 1
		for ; i >= 0; i-- {
			if next[i]+1 < rec.width[i] {
				break
			}
		}
		if i < 0 {
			res.Exhausted = true
			return res, nil
		}
		prefix = append(next[:i:i], next[i]+1)
	}
}

// recorder is a PickFunc that follows a forced prefix of choice indices
// and then always takes the first alternative, recording the choices made
// and the branching width at every step.
type recorder struct {
	prefix []int
	taken  []int
	width  []int
}

func (r *recorder) pick(step int, waiting []int) int {
	choice := 0
	if step < len(r.prefix) {
		choice = r.prefix[step]
	}
	if choice >= len(waiting) {
		// The tree shifted under a stale prefix — possible only if the
		// body is nondeterministic, which violates the contract.
		panic(fmt.Sprintf("rmr: exploration prefix invalid at step %d (choice %d of %d): nondeterministic body?",
			step, choice, len(waiting)))
	}
	r.taken = append(r.taken, choice)
	r.width = append(r.width, len(waiting))
	return choice
}
