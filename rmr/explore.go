package rmr

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
)

// Explorer systematically enumerates schedules of a deterministic
// concurrent body by depth-first search over the scheduling-choice tree:
// at every step the set of runnable processes is a choice point, and the
// explorer replays the body once per distinct sequence of choices. For
// small configurations this is exhaustive verification of all
// interleavings — a much stronger statement than sampling seeded schedules.
//
// Requirements on the body: it must be deterministic given the schedule
// (no wall-clock time, no math/rand without a fixed seed, no free-running
// goroutines besides the scheduled processes), and every process must
// issue its shared-memory operations through a Memory gated by the
// scheduler the body receives.
type Explorer struct {
	// MaxSchedules caps the number of schedules explored; 0 means no cap.
	// When the cap stops the search, Run reports exhausted=false.
	MaxSchedules int
	// MaxSteps bounds each schedule's length. Busy-wait loops make the
	// full choice tree infinite (a spinner can be rescheduled forever), so
	// exploration is exhaustive *up to this length*: schedules that hit
	// the bound are pruned — counted in Result.Pruned, not treated as
	// violations — which is the standard bounded-model-checking trade-off.
	// Choose it comfortably above the longest honest completion so that
	// only unfair spin-heavy schedules are pruned. 0 selects 512.
	MaxSteps int
	// Workers is the number of goroutines exploring disjoint prefix
	// subtrees of the choice tree concurrently; 0 or 1 selects the
	// sequential depth-first search.
	//
	// The parallel search is deterministic where it matters: an uncapped
	// run (MaxSchedules == 0) produces exactly the sequential
	// Explored/Pruned/Exhausted counts, and a violating run reports the
	// lexicographically smallest offending schedule — which is precisely
	// the schedule the sequential DFS would report first, so replays are
	// stable across worker counts. Two caveats: when MaxSchedules stops a
	// parallel search the counts depend on worker timing (up to
	// Workers−1 schedules beyond the cap may complete), and on a
	// violating run only the reported schedule — not the counts — is
	// deterministic. With Workers > 1 the body must additionally be safe
	// to invoke from several goroutines at once (each invocation already
	// has to build its state from scratch; it must not write shared
	// test state outside its own run).
	Workers int
	// Monitor, when non-nil, receives live progress counts so a driver
	// can report throughput while a long exploration runs.
	Monitor *Monitor
}

// Monitor exposes an exploration's progress counters for concurrent
// readers (progress printers); the Explorer updates it after every replay.
type Monitor struct {
	explored atomic.Int64
	pruned   atomic.Int64
}

// Counts returns the schedules explored and pruned so far.
func (mn *Monitor) Counts() (explored, pruned int64) {
	return mn.explored.Load(), mn.pruned.Load()
}

// Result summarizes an exploration.
type Result struct {
	// Explored counts completed schedules (each a full run of the body).
	Explored int
	// Pruned counts schedules cut off at MaxSteps.
	Pruned int
	// Exhausted reports whether the whole (length-bounded) choice tree was
	// covered; false when MaxSchedules stopped the search early.
	Exhausted bool
	// Depths is the schedule-length histogram: Depths[d] counts replays
	// whose choice sequence had length d (pruned replays count at the
	// step bound they were cut at). Like Explored/Pruned it is
	// deterministic for uncapped runs at any worker count.
	Depths []int64
}

// noteDepth bumps the length-d bucket, growing the histogram as needed.
func noteDepth(depths *[]int64, d int) {
	for len(*depths) <= d {
		*depths = append(*depths, 0)
	}
	(*depths)[d]++
}

// ErrExplore wraps a property violation with the schedule that produced
// it, so the failure can be replayed.
type ErrExplore struct {
	Schedule []int // the choice indices taken at each step
	Err      error
}

// Error implements error.
func (e *ErrExplore) Error() string {
	return fmt.Sprintf("schedule %v: %v", e.Schedule, e.Err)
}

// Unwrap exposes the underlying property violation.
func (e *ErrExplore) Unwrap() error { return e.Err }

// ReplayPick returns a PickFunc that follows the choice indices of a
// schedule reported by ErrExplore, taking the first alternative once the
// schedule is exhausted. It reproduces a violating run outside the Explorer
// — for example with a tracer installed to capture the events leading up to
// the violation. It panics if a choice index exceeds the branching width,
// which can only happen when the body is nondeterministic or differs from
// the one explored.
func ReplayPick(schedule []int) PickFunc {
	return func(step int, waiting []int) int {
		choice := 0
		if step < len(schedule) {
			choice = schedule[step]
		}
		if choice >= len(waiting) {
			panic(fmt.Sprintf("rmr: replay schedule invalid at step %d (choice %d of %d): nondeterministic body?",
				step, choice, len(waiting)))
		}
		return choice
	}
}

// Body is one deterministic run under exploration: it must construct its
// state from scratch, gate its Memory with s, launch its processes with
// s.Go, call s.Run(maxSteps), and return nil iff all properties held. If
// s.Run returns ErrStepLimit the body must release its processes (deliver
// abort signals as appropriate and call s.Drain) and return an error
// wrapping ErrStepLimit, which the explorer prunes rather than reports.
type Body func(s *Scheduler, maxSteps int) error

// Run explores schedules of body depth-first — in lexicographic order of
// the choice sequences when sequential, over disjoint prefix subtrees when
// Workers > 1. A property violation aborts the search with an *ErrExplore
// carrying the offending schedule for replay; see Workers for what is
// deterministic in parallel mode.
func (e *Explorer) Run(nprocs int, body Body) (Result, error) {
	maxSteps := e.MaxSteps
	if maxSteps == 0 {
		maxSteps = 512
	}
	if e.Workers > 1 {
		return e.runParallel(nprocs, body, maxSteps)
	}
	var res Result
	rp := newReplayer(nprocs, maxSteps)
	defer rp.close()
	// prefix holds the choice index forced at each step. It is a buffer
	// distinct from the recorder's choice log, so both can be reused
	// across replays without aliasing.
	var prefix []int
	for {
		runErr := rp.run(prefix, body, maxSteps)
		rec := &rp.rec
		noteDepth(&res.Depths, len(rec.taken))
		switch {
		case runErr == nil:
			res.Explored++
			if mn := e.Monitor; mn != nil {
				mn.explored.Add(1)
			}
		case errors.Is(runErr, ErrStepLimit):
			res.Pruned++
			if mn := e.Monitor; mn != nil {
				mn.pruned.Add(1)
			}
		default:
			res.Explored++
			if mn := e.Monitor; mn != nil {
				mn.explored.Add(1)
			}
			return res, &ErrExplore{Schedule: append([]int(nil), rec.taken...), Err: runErr}
		}
		if e.MaxSchedules > 0 && res.Explored+res.Pruned >= e.MaxSchedules {
			return res, nil
		}
		// Backtrack: find the deepest step with an untried alternative.
		next := rec.taken
		i := len(next) - 1
		for ; i >= 0; i-- {
			if next[i]+1 < rec.width[i] {
				break
			}
		}
		if i < 0 {
			res.Exhausted = true
			return res, nil
		}
		prefix = append(append(prefix[:0], next[:i]...), next[i]+1)
	}
}

// runParallel fans the choice tree out over a pool of workers. Tasks are
// subtree roots (choice prefixes); replaying a task's leftmost schedule
// discovers the branching widths along it, and every untried alternative
// on that path becomes a new task. The subtrees rooted at distinct pending
// tasks are pairwise disjoint and jointly cover exactly the unexplored
// remainder of the tree, so the Explored/Pruned sums of an uncapped run
// are independent of scheduling — they equal the sequential counts.
//
// Workers keep the tasks they generate on a private LIFO stack (so the
// steady state costs no locks, only a handful of atomic operations per
// replay) and donate the shallower half to the shared pool whenever some
// worker is starved.
func (e *Explorer) runParallel(nprocs int, body Body, maxSteps int) (Result, error) {
	st := &parState{
		maxSchedules: e.MaxSchedules,
		workers:      e.Workers,
		mon:          e.Monitor,
		stack:        [][]int{nil}, // the root subtree: no forced choices
	}
	st.work = sync.NewCond(&st.mu)
	var wg sync.WaitGroup
	for i := 0; i < e.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rp := newReplayer(nprocs, maxSteps)
			defer rp.close()
			depths := st.worker(rp, body, maxSteps)
			st.mu.Lock()
			for d, n := range depths {
				for len(st.depths) <= d {
					st.depths = append(st.depths, 0)
				}
				st.depths[d] += n
			}
			st.mu.Unlock()
		}()
	}
	wg.Wait()

	res := Result{Explored: int(st.explored.Load()), Pruned: int(st.pruned.Load()), Depths: st.depths}
	if b := st.best.Load(); b != nil {
		return res, b
	}
	res.Exhausted = !st.capped.Load()
	return res, nil
}

// parState is the shared state of a parallel exploration. The hot fields
// are all atomics; mu guards only the shared task pool and the idle count,
// which steady-state replays never touch.
type parState struct {
	maxSchedules int
	workers      int
	mon          *Monitor

	explored atomic.Int64
	pruned   atomic.Int64
	capped   atomic.Bool
	best     atomic.Pointer[ErrExplore] // lexicographically smallest violation

	mu     sync.Mutex
	work   *sync.Cond
	stack  [][]int      // shared pool of pending subtree roots
	idle   int          // workers parked in steal
	hungry atomic.Int32 // mirrors idle, read lock-free by producers
	depths []int64      // merged per-worker depth histograms
}

// worker is one exploration loop: pop a task (locally when possible),
// replay it, account for it, and push the sibling subtrees branching off
// the replayed schedule. Siblings are pushed deepest-last so the local
// LIFO pop order matches the sequential DFS and stays depth-bounded.
func (st *parState) worker(rp *replayer, body Body, maxSteps int) []int64 {
	// Task slices are carved with a fixed capacity and recycled through a
	// worker-local freelist once consumed, so steady-state sibling pushes
	// allocate nothing. Ownership is transferred by the pop: a donated
	// task retires into the freelist of the worker that ran it.
	hint := maxSteps + 1
	if hint > 4096 {
		hint = 4096
	}
	var local, free [][]int
	var depths []int64
	for {
		if st.capped.Load() {
			return depths
		}
		var task []int
		ok := false
		for n := len(local); n > 0; n = len(local) {
			t := local[n-1]
			local = local[:n-1]
			// Discard subtrees that cannot contain a smaller violation
			// than the best one found: every schedule in them compares
			// greater, so exploring them cannot change the result.
			if b := st.best.Load(); b != nil && lexCompare(t, b.Schedule) > 0 {
				if cap(t) >= hint {
					free = append(free, t)
				}
				continue
			}
			task, ok = t, true
			break
		}
		if !ok {
			if task, ok = st.steal(); !ok {
				return depths
			}
		}

		runErr := rp.run(task, body, maxSteps)
		rec := &rp.rec
		noteDepth(&depths, len(rec.taken))
		violation := false
		switch {
		case runErr == nil:
			st.explored.Add(1)
			if st.mon != nil {
				st.mon.explored.Add(1)
			}
		case errors.Is(runErr, ErrStepLimit):
			st.pruned.Add(1)
			if st.mon != nil {
				st.mon.pruned.Add(1)
			}
		default:
			st.explored.Add(1)
			if st.mon != nil {
				st.mon.explored.Add(1)
			}
			violation = true
			st.noteViolation(rec.taken, runErr)
		}
		if st.maxSchedules > 0 && st.explored.Load()+st.pruned.Load() >= int64(st.maxSchedules) {
			st.capped.Store(true)
			st.wakeAll()
			return depths
		}
		if !violation {
			// Sibling subtrees of a violating schedule compare greater
			// than it, so on a violation there is nothing worth pushing.
			for d := len(task); d < len(rec.taken); d++ {
				for c := rec.width[d] - 1; c > rec.taken[d]; c-- {
					var t []int
					if n := len(free); n > 0 && cap(free[n-1]) > d {
						t = free[n-1][:d+1]
						free = free[:n-1]
					} else {
						t = make([]int, d+1, max(hint, d+1))
					}
					copy(t, rec.taken[:d])
					t[d] = c
					local = append(local, t)
				}
			}
			if h := st.hungry.Load(); h > 0 && len(local) > 1 {
				st.share(&local, int(h))
			}
		}
		// The replayed task is dead: rec.prefix still aliases it, but the
		// next run overwrites that before any pick reads it.
		if cap(task) >= hint {
			free = append(free, task)
		}
	}
}

// share donates the shallowest tasks of a worker's local stack — the
// larger subtrees, which sit at the bottom of the LIFO — to the shared
// pool, one per starved worker, and wakes exactly that many.
func (st *parState) share(local *[][]int, hungry int) {
	l := *local
	k := len(l) - 1 // always keep one task to continue on
	if k > hungry {
		k = hungry
	}
	st.mu.Lock()
	st.stack = append(st.stack, l[:k]...)
	st.mu.Unlock()
	for i := 0; i < k; i++ {
		st.work.Signal()
	}
	n := copy(l, l[k:])
	*local = l[:n]
}

// steal pops a task from the shared pool, blocking while other workers may
// still donate work. It returns false when the search is over: every
// worker is starved (the tree is fully claimed), or the schedule cap was
// hit.
func (st *parState) steal() ([]int, bool) {
	st.mu.Lock()
	st.idle++
	st.hungry.Store(int32(st.idle))
	for {
		for n := len(st.stack); n > 0; n = len(st.stack) {
			t := st.stack[n-1]
			st.stack = st.stack[:n-1]
			if b := st.best.Load(); b != nil && lexCompare(t, b.Schedule) > 0 {
				continue
			}
			st.idle--
			st.hungry.Store(int32(st.idle))
			st.mu.Unlock()
			return t, true
		}
		if st.idle == st.workers || st.capped.Load() {
			st.work.Broadcast()
			st.mu.Unlock()
			return nil, false
		}
		st.work.Wait()
	}
}

// noteViolation records a violating schedule, keeping the
// lexicographically smallest one. The schedule is copied: the worker
// reuses its choice log on the next replay.
func (st *parState) noteViolation(schedule []int, err error) {
	e := &ErrExplore{Schedule: append([]int(nil), schedule...), Err: err}
	for {
		cur := st.best.Load()
		if cur != nil && lexCompare(cur.Schedule, e.Schedule) <= 0 {
			return
		}
		if st.best.CompareAndSwap(cur, e) {
			return
		}
	}
}

func (st *parState) wakeAll() {
	st.mu.Lock()
	st.work.Broadcast()
	st.mu.Unlock()
}

// lexCompare orders choice sequences lexicographically, with a proper
// prefix ordered before its extensions.
func lexCompare(a, b []int) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// recorder is a PickFunc that follows a forced prefix of choice indices
// and then always takes the first alternative, recording the choices made
// and the branching width at every step.
type recorder struct {
	prefix []int
	taken  []int
	width  []int
}

// replayer bundles a recorder with a scheduler that is reset and reused
// across replays, so that a replay allocates nothing beyond what the body
// itself allocates: the choice log, the grant channels, the waiting buffer
// and the process goroutines (via the pool) all persist from run to run.
type replayer struct {
	rec  recorder
	s    *Scheduler
	pool procPool
}

// newReplayer pre-sizes the choice log to the step bound so that steady
// replays do not grow slices while holding the scheduler lock. The caller
// must close() the replayer when the exploration is over to release the
// pooled goroutines.
func newReplayer(nprocs, maxSteps int) *replayer {
	hint := maxSteps + 1
	if hint > 4096 {
		hint = 4096
	}
	rp := &replayer{rec: recorder{
		taken: make([]int, 0, hint),
		width: make([]int, 0, hint),
	}}
	rp.s = NewScheduler(nprocs, rp.rec.pick)
	rp.s.spawn = rp.pool.spawn
	return rp
}

// run replays the leftmost schedule of the subtree rooted at prefix.
func (rp *replayer) run(prefix []int, body Body, maxSteps int) error {
	rp.rec.prefix = prefix
	rp.rec.taken = rp.rec.taken[:0]
	rp.rec.width = rp.rec.width[:0]
	rp.s.reset()
	return body(rp.s, maxSteps)
}

func (rp *replayer) close() { rp.pool.close() }

// procPool reuses goroutines across the thousands of short-lived process
// launches an exploration performs: spawning and retiring a goroutine per
// process per replay is a measurable fraction of a replay on small
// configurations. A pooled goroutine parks on its own channel between
// launches; dispatching to it costs the same wakeup a fresh goroutine
// would, minus the creation and teardown.
type procPool struct {
	mu   sync.Mutex
	free []chan procTask
	all  []chan procTask
}

// procTask is a pooled launch: the goroutine runs s.runProc(fn). Shipping
// the pair instead of a closure keeps the dispatch path allocation-free.
type procTask struct {
	s  *Scheduler
	fn func()
}

func (pp *procPool) spawn(s *Scheduler, fn func()) {
	pp.mu.Lock()
	var c chan procTask
	if n := len(pp.free); n > 0 {
		c = pp.free[n-1]
		pp.free = pp.free[:n-1]
		pp.mu.Unlock()
	} else {
		c = make(chan procTask, 1)
		pp.all = append(pp.all, c)
		pp.mu.Unlock()
		go pp.loop(c)
	}
	c <- procTask{s, fn}
}

// loop runs dispatched tasks, re-enlisting in the free list after each.
// The pool may briefly over-provision when a launch races a goroutine's
// re-enlistment; growth is bounded by the processes in flight.
func (pp *procPool) loop(c chan procTask) {
	for t := range c {
		t.s.runProc(t.fn)
		pp.mu.Lock()
		pp.free = append(pp.free, c)
		pp.mu.Unlock()
	}
}

// close retires the pooled goroutines. Pending launches have all returned
// by the time the explorer calls it, so every loop is parked (or about to
// park) on its channel receive.
func (pp *procPool) close() {
	pp.mu.Lock()
	all := pp.all
	pp.all = nil
	pp.free = nil
	pp.mu.Unlock()
	for _, c := range all {
		close(c)
	}
}

func (r *recorder) pick(step int, waiting []int) int {
	choice := 0
	if step < len(r.prefix) {
		choice = r.prefix[step]
	}
	if choice >= len(waiting) {
		// The tree shifted under a stale prefix — possible only if the
		// body is nondeterministic, which violates the contract.
		panic(fmt.Sprintf("rmr: exploration prefix invalid at step %d (choice %d of %d): nondeterministic body?",
			step, choice, len(waiting)))
	}
	r.taken = append(r.taken, choice)
	r.width = append(r.width, len(waiting))
	return choice
}
