package rmr

import (
	"math/bits"
	"sync/atomic"
)

// bitset is a fixed-capacity set of small non-negative integers, used to
// track which processes hold a cached copy of a word in the CC model when
// the memory serves more than 64 processes.
type bitset []uint64

func newBitset(n int) bitset {
	return make(bitset, (n+63)/64)
}

func (b bitset) has(i int) bool {
	return b[i>>6]&(1<<uint(i&63)) != 0
}

func (b bitset) add(i int) {
	b[i>>6] |= 1 << uint(i&63)
}

// clearExcept removes every element except keep.
func (b bitset) clearExcept(keep int) {
	for i := range b {
		b[i] = 0
	}
	b.add(keep)
}

func (b bitset) clear() {
	for i := range b {
		b[i] = 0
	}
}

func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// cacheSet is the per-word set of processes holding a valid cached copy
// (CC model). Memories with nprocs ≤ 64 — every configuration the schedule
// explorer and most experiments use — store the set inline in a single
// atomic uint64, so allocating a word allocates nothing and a reader can
// test its bit lock-free; wider memories spill to a heap bitset chosen
// once at allocation time (spill == nil selects the inline representation).
//
// Mutators require external serialization (the word mutex or the gate's
// step token); only the inline bit test may race with them, guarded by the
// word's seqlock.
type cacheSet struct {
	inline atomic.Uint64
	spill  *bitset
}

func (c *cacheSet) has(i int) bool {
	if c.spill == nil {
		return c.inline.Load()&(1<<uint(i)) != 0
	}
	return c.spill.has(i)
}

func (c *cacheSet) add(i int) {
	if c.spill == nil {
		c.inline.Store(c.inline.Load() | 1<<uint(i))
		return
	}
	c.spill.add(i)
}

// clearExcept removes every element except keep.
func (c *cacheSet) clearExcept(keep int) {
	if c.spill == nil {
		c.inline.Store(1 << uint(keep))
		return
	}
	c.spill.clearExcept(keep)
}

func (c *cacheSet) clear() {
	if c.spill == nil {
		c.inline.Store(0)
		return
	}
	c.spill.clear()
}

// count returns the number of processes holding a cached copy. Like the
// other accessors it requires external serialization against mutators.
func (c *cacheSet) count() int {
	if c.spill == nil {
		return bits.OnesCount64(c.inline.Load())
	}
	return c.spill.count()
}
