package rmr

// bitset is a fixed-capacity set of small non-negative integers, used to
// track which processes hold a cached copy of a word in the CC model.
type bitset []uint64

func newBitset(n int) bitset {
	return make(bitset, (n+63)/64)
}

func (b bitset) has(i int) bool {
	return b[i>>6]&(1<<uint(i&63)) != 0
}

func (b bitset) add(i int) {
	b[i>>6] |= 1 << uint(i&63)
}

// clearExcept removes every element except keep.
func (b bitset) clearExcept(keep int) {
	for i := range b {
		b[i] = 0
	}
	b.add(keep)
}

func (b bitset) clear() {
	for i := range b {
		b[i] = 0
	}
}
