package rmr

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"sublock/internal/promtext"
)

// --- misuse hardening -------------------------------------------------------

// mustPanicInSchedule runs fn on a scheduled process and asserts it panics
// with a message containing want.
func mustPanicInSchedule(t *testing.T, m *Memory, s *Scheduler, want string, fn func()) {
	t.Helper()
	var recovered any
	p := m.Proc(0)
	a := m.Alloc(0)
	s.Go(func() {
		p.Read(a) // take at least one step so the schedule is live
		func() {
			defer func() { recovered = recover() }()
			fn()
		}()
		p.Read(a)
	})
	if err := s.Run(1000); err != nil {
		t.Fatal(err)
	}
	msg, ok := recovered.(string)
	if !ok || !strings.Contains(msg, want) {
		t.Fatalf("recovered %v, want panic containing %q", recovered, want)
	}
}

func TestSetTracerMidSchedulePanics(t *testing.T) {
	s := NewScheduler(1, RoundRobinPick())
	m := NewMemory(CC, 1, s)
	mustPanicInSchedule(t, m, s, "mid-schedule", func() {
		m.SetTracer(func(Event) {})
	})
}

func TestSetStatsMidSchedulePanics(t *testing.T) {
	s := NewScheduler(1, RoundRobinPick())
	m := NewMemory(CC, 1, s)
	st := NewStats(m)
	mustPanicInSchedule(t, m, s, "mid-schedule", func() {
		m.SetStats(st)
	})
}

func TestSetGateMidSchedulePanics(t *testing.T) {
	s := NewScheduler(1, RoundRobinPick())
	m := NewMemory(CC, 1, s)
	mustPanicInSchedule(t, m, s, "mid-schedule", func() {
		m.SetGate(nil)
	})
}

func TestSetStatsWrongMemoryPanics(t *testing.T) {
	m1 := NewMemory(CC, 1, nil)
	m2 := NewMemory(CC, 1, nil)
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("SetStats accepted a collector built for another memory")
		}
	}()
	m1.SetStats(NewStats(m2))
}

func TestObserverInstallBetweenSchedules(t *testing.T) {
	// Installing between Run calls (scheduler quiescent) is legal.
	s := NewScheduler(1, RoundRobinPick())
	m := NewMemory(CC, 1, s)
	a := m.Alloc(0)
	p := m.Proc(0)
	s.Go(func() { p.Write(a, 1) })
	if err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	var events []Event
	m.SetTracer(func(ev Event) { events = append(events, ev) })
	s.Go(func() { p.Write(a, 2) })
	if err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 || events[0].New != 2 {
		t.Fatalf("events = %v, want the single second-schedule write", events)
	}
}

// --- golden formatting ------------------------------------------------------

func TestPhaseStringGolden(t *testing.T) {
	for ph, want := range map[Phase]string{
		PhaseIdle:    "idle",
		PhaseDoorway: "doorway",
		PhaseWaiting: "waiting",
		PhaseCS:      "cs",
		PhaseExit:    "exit",
		PhaseAbort:   "abort",
		Phase(42):    "Phase(42)",
	} {
		if got := ph.String(); got != want {
			t.Errorf("Phase(%d).String() = %q, want %q", int32(ph), got, want)
		}
	}
}

func TestEventStringGolden(t *testing.T) {
	for _, tc := range []struct {
		ev   Event
		want string
	}{
		{
			Event{Time: 12, Proc: 3, Op: OpFAA, Addr: 7, Old: 5, New: 6, OK: true, RMR: true, Phase: PhaseDoorway},
			"[   12] p3  faa   @7    5 → 6 (rmr, doorway)",
		},
		{
			Event{Time: 2, Proc: 0, Op: OpCAS, Addr: 11, Old: 4, New: 4, OK: false, Phase: PhaseWaiting},
			"[    2] p0  cas   @11   4 → 4 (failed) (waiting)",
		},
		{
			Event{Time: 1, Proc: 9, Op: OpRead, Addr: 0, Old: 0, New: 0, OK: true},
			"[    1] p9  read  @0    0 → 0 (idle)",
		},
		{
			Event{Time: 77, Proc: 2, Op: OpPhase, Addr: -1, Old: uint64(PhaseIdle), New: uint64(PhaseDoorway), OK: true},
			"[   77] p2  phase idle → doorway",
		},
	} {
		if got := tc.ev.String(); got != tc.want {
			t.Errorf("Event.String() = %q, want %q", got, tc.want)
		}
	}
}

// --- CheckTrace and OpPhase -------------------------------------------------

func TestCheckTraceSkipsPhaseEvents(t *testing.T) {
	events := []Event{
		{Proc: 0, Op: OpPhase, Addr: -1, Old: uint64(PhaseIdle), New: uint64(PhaseDoorway), OK: true},
		{Proc: 0, Op: OpWrite, Addr: 0, Old: 0, New: 1, OK: true},
		{Proc: 0, Op: OpPhase, Addr: -1, Old: uint64(PhaseDoorway), New: uint64(PhaseCS), OK: true},
		{Proc: 0, Op: OpRead, Addr: 0, Old: 1, New: 1, OK: true},
	}
	if err := CheckTrace(events, map[Addr]uint64{0: 0}); err != nil {
		t.Fatalf("CheckTrace rejected a trace with phase events: %v", err)
	}
}

// --- Ring -------------------------------------------------------------------

func TestRingWraparound(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Record(Event{Time: int64(i)})
	}
	if got := r.Total(); got != 10 {
		t.Errorf("Total() = %d, want 10", got)
	}
	events := r.Events()
	if len(events) != 4 {
		t.Fatalf("len(Events()) = %d, want 4", len(events))
	}
	for i, ev := range events {
		if want := int64(6 + i); ev.Time != want {
			t.Errorf("Events()[%d].Time = %d, want %d (oldest-first)", i, ev.Time, want)
		}
	}
	r.Reset()
	if r.Total() != 0 || len(r.Events()) != 0 {
		t.Error("Reset did not clear the ring")
	}
	r.Record(Event{Time: 99})
	if got := r.Events(); len(got) != 1 || got[0].Time != 99 {
		t.Errorf("post-Reset Events() = %v", got)
	}
}

func TestRingUnderfill(t *testing.T) {
	r := NewRing(8)
	r.Record(Event{Time: 1})
	r.Record(Event{Time: 2})
	events := r.Events()
	if len(events) != 2 || events[0].Time != 1 || events[1].Time != 2 {
		t.Errorf("Events() = %v, want times [1 2]", events)
	}
}

func TestNewRingRejectsZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRing(0) did not panic")
		}
	}()
	NewRing(0)
}

// --- Stats ------------------------------------------------------------------

func TestStatsAttribution(t *testing.T) {
	m := NewMemory(CC, 2, nil)
	tree := m.AllocN(4, 0)
	m.Label(tree, 4, "tree/level1")
	spin := m.Alloc(0)
	m.Label(spin, 1, "spin")
	st := NewStats(m)
	m.SetStats(st)

	p0, p1 := m.Proc(0), m.Proc(1)
	p0.EnterPhase(PhaseDoorway)
	p0.FAA(tree, 1)   // rmr (first access)
	p0.Write(spin, 1) // rmr
	p0.EnterPhase(PhaseCS)
	p0.Read(spin) // cached after own write: hit, no rmr
	p0.EnterPhase(PhaseExit)
	p0.Swap(tree+1, 7) // rmr
	p0.EnterPhase(PhaseIdle)

	p1.EnterPhase(PhaseWaiting)
	p1.CAS(spin, 1, 2) // rmr, invalidates p0's copy
	p1.EnterPhase(PhaseAbort)
	p1.EnterPhase(PhaseIdle)

	s := st.Snapshot()
	treeID := m.LabelID("tree/level1")
	spinID := m.LabelID("spin")

	c := s.Cell(0, PhaseDoorway, treeID)
	if c.Ops[OpFAA-1] != 1 || c.RMRs != 1 {
		t.Errorf("p0 doorway tree cell = %+v, want one charged FAA", c)
	}
	c = s.Cell(0, PhaseDoorway, spinID)
	if c.Ops[OpWrite-1] != 1 || c.RMRs != 1 {
		t.Errorf("p0 doorway spin cell = %+v, want one charged write", c)
	}
	c = s.Cell(0, PhaseCS, spinID)
	if c.Ops[OpRead-1] != 1 || c.RMRs != 0 || c.Hits != 1 {
		t.Errorf("p0 cs spin cell = %+v, want one un-charged cached read", c)
	}
	c = s.Cell(0, PhaseExit, treeID)
	if c.Ops[OpSwap-1] != 1 || c.RMRs != 1 {
		t.Errorf("p0 exit tree cell = %+v, want one charged swap", c)
	}
	c = s.Cell(1, PhaseWaiting, spinID)
	if c.Ops[OpCAS-1] != 1 || c.RMRs != 1 || c.Invals != 1 {
		t.Errorf("p1 waiting spin cell = %+v, want one charged CAS invalidating one copy", c)
	}

	if got := s.LabelRMRs("tree/level1"); got != 2 {
		t.Errorf("LabelRMRs(tree/level1) = %d, want 2", got)
	}
	if got := s.ProcPhaseLabelRMRs(0, PhaseExit, "tree/"); got != 1 {
		t.Errorf("ProcPhaseLabelRMRs(0, exit, tree/) = %d, want 1", got)
	}
	if got := s.PhaseRMRs(PhaseDoorway); got != 2 {
		t.Errorf("PhaseRMRs(doorway) = %d, want 2", got)
	}
	if got := s.TotalRMRs(); got != 4 {
		t.Errorf("TotalRMRs() = %d, want 4", got)
	}

	// Passage accounting: p0 completed (cost 3), p1 aborted (cost 1).
	if s.Passages != 1 || s.AbortedPassages != 1 {
		t.Errorf("passages = %d completed, %d aborted; want 1, 1", s.Passages, s.AbortedPassages)
	}
	if s.PassageRMRSum != 4 {
		t.Errorf("PassageRMRSum = %d, want 4", s.PassageRMRSum)
	}
	// Cost 3 lands in bucket ⌈log2⌉=2 ([2,3]); cost 1 in bucket 1.
	if s.PassageHist[1] != 1 || s.PassageHist[2] != 1 {
		t.Errorf("PassageHist = %v, want one passage each in buckets 1 and 2", s.PassageHist)
	}
}

func TestStatsLateLabelClampsToUnlabeled(t *testing.T) {
	m := NewMemory(CC, 1, nil)
	a := m.Alloc(0)
	st := NewStats(m)
	m.SetStats(st)
	// Interned after NewStats froze the dimension: out of range for st.
	m.Label(a, 1, "late/label")
	p := m.Proc(0)
	p.Write(a, 1)
	s := st.Snapshot()
	if got := s.Cell(0, PhaseIdle, 0).Ops[OpWrite-1]; got != 1 {
		t.Errorf("late-labeled write not clamped to the unlabeled column: %d", got)
	}
}

func TestSnapshotWritePrometheus(t *testing.T) {
	m := NewMemory(CC, 1, nil)
	a := m.Alloc(0)
	m.Label(a, 1, "region")
	st := NewStats(m)
	m.SetStats(st)
	p := m.Proc(0)
	p.EnterPhase(PhaseDoorway)
	p.Write(a, 1)
	p.EnterPhase(PhaseIdle)

	var buf bytes.Buffer
	if err := st.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`rmr_ops_total{proc="0",phase="doorway",label="region",op="write"} 1`,
		`rmr_remote_total{proc="0",phase="doorway",label="region"} 1`,
		`rmr_passages_total{result="completed"} 1`,
		`rmr_passage_cost_rmrs_bucket{le="+Inf"} 1`,
		`rmr_passage_cost_rmrs_sum 1`,
		"# TYPE rmr_passage_cost_rmrs histogram",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Determinism: a second rendering is byte-identical.
	var buf2 bytes.Buffer
	if err := st.Snapshot().WritePrometheus(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Error("prometheus output not deterministic")
	}
	// The shared exposition linter must accept the exporter's own output.
	if errs := promtext.Lint(bytes.NewReader(buf.Bytes())); errs != nil {
		t.Errorf("promtext.Lint rejects WritePrometheus output: %v", errs)
	}
}

// --- exporters --------------------------------------------------------------

func traceSample(t *testing.T) ([]Event, []string) {
	t.Helper()
	m := NewMemory(CC, 2, nil)
	a := m.Alloc(0)
	m.Label(a, 1, "word")
	var events []Event
	m.SetTracer(func(ev Event) { events = append(events, ev) })
	p0, p1 := m.Proc(0), m.Proc(1)
	p0.EnterPhase(PhaseDoorway)
	p0.Write(a, 1)
	p0.EnterPhase(PhaseCS)
	p1.EnterPhase(PhaseWaiting)
	p1.CAS(a, 0, 2) // fails
	p0.EnterPhase(PhaseIdle)
	p1.EnterPhase(PhaseIdle)
	return events, m.Labels()
}

func TestWriteJSONL(t *testing.T) {
	events, labels := traceSample(t)
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, events, labels); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(events) {
		t.Fatalf("%d lines for %d events", len(lines), len(events))
	}
	var sawFailedCAS, sawPhaseEvent bool
	for _, line := range lines {
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			t.Fatalf("line does not parse: %v\n%s", err, line)
		}
		if obj["op"] == "cas" && obj["ok"] == false {
			sawFailedCAS = true
			if obj["label"] != "word" {
				t.Errorf("cas line label = %v, want word", obj["label"])
			}
		}
		if obj["op"] == "phase" {
			sawPhaseEvent = true
		}
	}
	if !sawFailedCAS {
		t.Error("no failed-CAS line")
	}
	if !sawPhaseEvent {
		t.Error("no phase-transition line")
	}
}

func TestWriteChromeTraceDeterministic(t *testing.T) {
	events, labels := traceSample(t)
	var a, b bytes.Buffer
	if err := WriteChromeTrace(&a, events, labels); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&b, events, labels); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("chrome trace output not deterministic")
	}
	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(a.Bytes(), &trace); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Fatal("no trace events")
	}
	var phaseSpans, opSpans, metas int
	for _, ev := range trace.TraceEvents {
		switch ev["ph"] {
		case "X":
			if ev["cat"] == "phase" {
				phaseSpans++
			} else {
				opSpans++
			}
		case "M":
			metas++
		}
	}
	if phaseSpans == 0 || opSpans == 0 || metas != 2 {
		t.Errorf("spans: phase=%d op=%d meta=%d; want >0, >0, 2", phaseSpans, opSpans, metas)
	}
}
