package rmr

import (
	"bytes"
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"testing"
)

// TestVisitedReduction: state-hash caching must cut re-converging
// interleavings of the spin-lock tree without changing the verdict or
// exhaustiveness, both with and without sleep sets underneath.
func TestVisitedReduction(t *testing.T) {
	const maxSteps = 14
	full, err := (&Explorer{MaxSteps: maxSteps}).Run(3, spinLockBody)
	if err != nil {
		t.Fatal(err)
	}
	for _, red := range []Reduction{NoReduction, SleepSets} {
		base, err := (&Explorer{MaxSteps: maxSteps, Reduction: red}).Run(3, spinLockBody)
		if err != nil {
			t.Fatal(err)
		}
		vis, err := (&Explorer{MaxSteps: maxSteps, Reduction: red, Visited: true}).Run(3, spinLockBody)
		if err != nil {
			t.Fatalf("red=%v visited: %v", red, err)
		}
		if !vis.Exhausted {
			t.Fatalf("red=%v visited: tree not exhausted", red)
		}
		if vis.VisitedSaturated {
			t.Fatalf("red=%v visited: set saturated on a toy tree", red)
		}
		if vis.VisitedHits == 0 {
			t.Errorf("red=%v visited: no visited hits on a re-converging tree", red)
		}
		if vis.Replays() >= base.Replays() {
			t.Errorf("red=%v visited: replays %d, want < %d", red, vis.Replays(), base.Replays())
		}
		if vis.Explored >= full.Explored {
			t.Errorf("red=%v visited: explored %d, want < full %d", red, vis.Explored, full.Explored)
		}
	}
}

// TestSymmetryReduction: the three spin-lock processes are interchangeable,
// so restricting fresh grants to the smallest fresh id must cut the
// explored schedules roughly by the 3! id permutations while staying
// exhaustive over the canonical tree.
func TestSymmetryReduction(t *testing.T) {
	const maxSteps = 14
	for _, red := range []Reduction{NoReduction, SleepSets} {
		base, err := (&Explorer{MaxSteps: maxSteps, Reduction: red}).Run(3, spinLockBody)
		if err != nil {
			t.Fatal(err)
		}
		sym, err := (&Explorer{MaxSteps: maxSteps, Reduction: red, Symmetry: true}).Run(3, spinLockBody)
		if err != nil {
			t.Fatalf("red=%v symmetry: %v", red, err)
		}
		if !sym.Exhausted {
			t.Fatalf("red=%v symmetry: tree not exhausted", red)
		}
		if sym.Replays()*2 >= base.Replays() {
			t.Errorf("red=%v symmetry: replays %d, want < half of %d", red, sym.Replays(), base.Replays())
		}
	}
}

// TestReductionLatticeViolation: every point of the reduction lattice must
// still find a violation in the buggy lock, and the reported schedule must
// reproduce it under a plain replay.
func TestReductionLatticeViolation(t *testing.T) {
	const maxSteps = 12
	cases := []Explorer{
		{MaxSteps: maxSteps},
		{MaxSteps: maxSteps, Reduction: SleepSets},
		{MaxSteps: maxSteps, Reduction: SleepSets, Visited: true},
		{MaxSteps: maxSteps, Reduction: SleepSets, Visited: true, Symmetry: true},
		{MaxSteps: maxSteps, Visited: true, Symmetry: true},
	}
	for i, e := range cases {
		_, err := e.Run(2, buggyLockBody)
		var ee *ErrExplore
		if !errors.As(err, &ee) {
			t.Fatalf("case %d (vis=%v sym=%v red=%v): no violation: %v",
				i, e.Visited, e.Symmetry, e.Reduction, err)
		}
		rp := newReplayer(2, exploreConfig{maxSteps: maxSteps})
		if rerr := rp.run(ee.Schedule, buggyLockBody, maxSteps); rerr == nil {
			t.Errorf("case %d: reported schedule %v does not reproduce", i, ee.Schedule)
		}
		rp.close()
	}
}

// TestVisitedParallelDeterminism: with visited caching and symmetry on,
// Workers=1 must reproduce the sequential counts exactly (the one-worker
// engine pops tasks in DFS order), and at every worker count the coverage
// guarantees must hold: same Explored representatives and an exhausted
// tree. The Pruned/VisitedHits split and the depth histogram are NOT
// asserted for racing workers — whether a replay is cut at a revisited
// state or runs on to the step limit depends on which of two equal-key
// nodes a concurrent worker keyed first, so those counts are bookkeeping
// of the particular interleaving of workers, not properties of the tree.
func TestVisitedParallelDeterminism(t *testing.T) {
	const maxSteps = 14
	e := &Explorer{MaxSteps: maxSteps, Reduction: SleepSets, Visited: true, Symmetry: true}
	want, err := e.Run(3, spinLockBody)
	if err != nil {
		t.Fatal(err)
	}
	one := *e
	one.Workers = 1
	got, err := one.Run(3, spinLockBody)
	if err != nil {
		t.Fatal(err)
	}
	if !resultsEqual(want, got) {
		t.Errorf("workers=1: %+v, want sequential %+v", got, want)
	}
	for _, workers := range []int{2, 4, 8} {
		ep := *e
		ep.Workers = workers
		got, err := ep.Run(3, spinLockBody)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got.Explored != want.Explored || got.Exhausted != want.Exhausted {
			t.Errorf("workers=%d: explored=%d exhausted=%v, want %d, %v",
				workers, got.Explored, got.Exhausted, want.Explored, want.Exhausted)
		}
		if got.VisitedHits == 0 {
			t.Errorf("workers=%d: visited caching cut nothing", workers)
		}
	}
}

// TestCheckpointResumeDeterministic: chaining capped checkpointed runs to
// completion must cover the tree exactly. At Workers=1 the resumed runs
// replay the exact continuation of the interrupted DFS, so the final
// totals — and the final serialized artifact — must be byte-identical to
// an uninterrupted run's. At higher worker counts the invariant subset is
// asserted (see TestVisitedParallelDeterminism for why the cut split is
// order-dependent under racing workers).
func TestCheckpointResumeDeterministic(t *testing.T) {
	const maxSteps, config = 14, "spinlock/cc/n=3"
	for _, workers := range []int{1, 2, 4} {
		e := &Explorer{MaxSteps: maxSteps, Reduction: SleepSets, Visited: true, Workers: workers}
		want, wantCk, err := e.RunCheckpoint(3, spinLockBody, config, nil)
		if err != nil {
			t.Fatal(err)
		}
		if !wantCk.Complete || !want.Exhausted {
			t.Fatalf("workers=%d: uninterrupted run did not complete: %+v", workers, want)
		}

		var resume *Checkpoint
		var got Result
		for hops := 0; ; hops++ {
			if hops > 10000 {
				t.Fatal("resume chain does not terminate")
			}
			step := *e
			step.MaxSchedules = got.Replays() + 50
			res, ck, err := step.RunCheckpoint(3, spinLockBody, config, resume)
			if err != nil {
				t.Fatal(err)
			}
			// Round-trip through the serialized form, as the CLI does.
			data, err := ck.Encode()
			if err != nil {
				t.Fatal(err)
			}
			if resume, err = DecodeCheckpoint(data); err != nil {
				t.Fatal(err)
			}
			got = res
			if ck.Complete {
				if hops == 0 {
					t.Fatalf("workers=%d: cap did not interrupt the run", workers)
				}
				break
			}
		}
		if workers == 1 {
			if !resultsEqual(want, got) {
				t.Errorf("workers=1: resumed totals %+v, want %+v", got, want)
			}
			wantData, _ := wantCk.Encode()
			gotData, _ := resume.Encode()
			if !bytes.Equal(wantData, gotData) {
				t.Errorf("workers=1: final checkpoint differs from uninterrupted run's:\n%s\nvs\n%s",
					gotData, wantData)
			}
		} else {
			if got.Explored != want.Explored || !got.Exhausted {
				t.Errorf("workers=%d: resumed explored=%d exhausted=%v, want %d, true",
					workers, got.Explored, got.Exhausted, want.Explored)
			}
			if !resume.Complete {
				t.Errorf("workers=%d: final checkpoint not marked complete", workers)
			}
		}
	}
}

// TestCheckpointValidation: version and configuration mismatches must be
// rejected with the sentinel errors, not silently resumed.
func TestCheckpointValidation(t *testing.T) {
	const maxSteps, config = 14, "spinlock/cc/n=3"
	e := &Explorer{MaxSteps: maxSteps, Reduction: SleepSets, MaxSchedules: 20}
	_, ck, err := e.RunCheckpoint(3, spinLockBody, config, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Complete {
		t.Fatal("cap did not interrupt the run")
	}

	bad := *ck
	bad.Version = CheckpointVersion + 1
	if _, _, err := e.RunCheckpoint(3, spinLockBody, config, &bad); !errors.Is(err, ErrCheckpointVersion) {
		t.Errorf("version mismatch: err = %v, want ErrCheckpointVersion", err)
	}
	data, _ := bad.Encode()
	if _, err := DecodeCheckpoint(data); !errors.Is(err, ErrCheckpointVersion) {
		t.Errorf("decode of v%d: err = %v, want ErrCheckpointVersion", bad.Version, err)
	}
	if _, _, err := e.RunCheckpoint(3, spinLockBody, "other/config", ck); !errors.Is(err, ErrCheckpointConfig) {
		t.Errorf("config mismatch: err = %v, want ErrCheckpointConfig", err)
	}
	e2 := *e
	e2.MaxSteps = maxSteps + 2
	if _, _, err := e2.RunCheckpoint(3, spinLockBody, config, ck); !errors.Is(err, ErrCheckpointConfig) {
		t.Errorf("max-steps mismatch: err = %v, want ErrCheckpointConfig", err)
	}
	e3 := *e
	e3.Visited = true
	if _, _, err := e3.RunCheckpoint(3, spinLockBody, config, ck); !errors.Is(err, ErrCheckpointConfig) {
		t.Errorf("reduction mismatch: err = %v, want ErrCheckpointConfig", err)
	}
}

// TestShardMerge: without reduction the shards partition the tree exactly,
// so the merged counts must equal the unsharded run's; under reduction each
// shard must still exhaust its subtree, and a violation must surface in at
// least one shard.
func TestShardMerge(t *testing.T) {
	const maxSteps, shards = 14, 3
	want, err := (&Explorer{MaxSteps: maxSteps}).Run(3, spinLockBody)
	if err != nil {
		t.Fatal(err)
	}
	var parts []Result
	for shard := 0; shard < shards; shard++ {
		res, err := (&Explorer{MaxSteps: maxSteps, Shard: shard, ShardCount: shards}).Run(3, spinLockBody)
		if err != nil {
			t.Fatalf("shard %d: %v", shard, err)
		}
		if !res.Exhausted {
			t.Fatalf("shard %d: subtree not exhausted", shard)
		}
		parts = append(parts, res)
	}
	if got := Merge(parts...); !resultsEqual(want, got) {
		t.Errorf("merged shards %+v, want unsharded %+v", got, want)
	}

	found := 0
	for shard := 0; shard < shards; shard++ {
		e := &Explorer{MaxSteps: 12, Reduction: SleepSets, Visited: true, Shard: shard, ShardCount: shards}
		_, err := e.Run(2, buggyLockBody)
		var ee *ErrExplore
		if errors.As(err, &ee) {
			found++
		} else if err != nil {
			t.Fatalf("shard %d: %v", shard, err)
		}
	}
	if found == 0 {
		t.Error("no shard found the buggy-lock violation")
	}
}

// TestVisitedSetSaturation: the set must keep answering correctly after the
// insertion limit, only losing the recording of new states.
func TestVisitedSetSaturation(t *testing.T) {
	vs := newVisitedSet(8) // limit 7 of 8 slots
	for i := uint64(1); i <= 7; i++ {
		if vs.seen(i * 0x1111111111111111) {
			t.Fatalf("fresh fingerprint %d reported seen", i)
		}
	}
	if vs.sat.Load() {
		t.Fatal("saturated below the limit")
	}
	if vs.seen(0xdeadbeef) {
		t.Fatal("first over-limit insert reported seen")
	}
	if !vs.sat.Load() {
		t.Fatal("saturation not flagged")
	}
	for i := uint64(1); i <= 7; i++ {
		if !vs.seen(i * 0x1111111111111111) {
			t.Errorf("recorded fingerprint %d lost after saturation", i)
		}
	}
	if vs.seen(0xdeadbeef) {
		t.Error("unrecorded fingerprint reported seen after saturation")
	}
}

// TestVisitedSetDumpLoad: dump/load must round-trip the recorded set in
// canonical (sorted) order.
func TestVisitedSetDumpLoad(t *testing.T) {
	vs := newVisitedSet(64)
	fps := []uint64{42, 7, 0x8000000000000000, 3, 99999}
	for _, fp := range fps {
		vs.seen(fp)
	}
	dump := vs.dump()
	if !sort.SliceIsSorted(dump, func(i, j int) bool { return dump[i] < dump[j] }) {
		t.Fatalf("dump not sorted: %v", dump)
	}
	if len(dump) != len(fps) {
		t.Fatalf("dump has %d entries, want %d", len(dump), len(fps))
	}
	re := newVisitedSet(64)
	re.load(dump)
	for _, fp := range fps {
		if !re.seen(fp) {
			t.Errorf("fingerprint %#x lost in round-trip", fp)
		}
	}
}

// symCounterBody returns a fully id-symmetric body over nprocs processes:
// shared words only, no per-id branching, so any id permutation of a
// schedule is again a valid schedule with permuted histories.
func symCounterBody(nprocs, maxSteps int, s *Scheduler) *Memory {
	m := NewMemory(CC, nprocs, s)
	lock := m.Alloc(0)
	count := m.Alloc(0)
	for i := 0; i < nprocs; i++ {
		p := m.Proc(i)
		s.GoProc(i, func() {
			for !p.CAS(lock, 0, 1) {
				if p.AbortSignal() {
					return
				}
			}
			p.FAA(count, 1)
			p.Write(lock, 0)
		})
	}
	return m
}

// canonicalFingerprint hashes the id-independent view of a finished run:
// per-word values, the *sizes* of the per-word coherence sets (the sets
// themselves are pid bitmasks, so only their cardinality is id-invariant),
// and the sorted multiset of per-process observation histories. Two runs
// that are id permutations of each other must agree on it.
func canonicalFingerprint(s *Scheduler, m *Memory) uint64 {
	h := uint64(0x8c9da6b1f8d3a7e5)
	n := m.size.Load()
	var a int64
	for k := 0; a < n; k++ {
		seg := *m.segs[k].Load()
		lim := int64(len(seg))
		if n-a < lim {
			lim = n - a
		}
		for i := int64(0); i < lim; i++ {
			w := &seg[i]
			h = mix(h, w.val.Load())
			h = mix(h, uint64(bits.OnesCount64(w.cached.inline.Load())))
		}
		a += lim
	}
	hists := append([]uint64(nil), s.hist...)
	sort.Slice(hists, func(i, j int) bool { return hists[i] < hists[j] })
	for _, lh := range hists {
		h = mix(h, lh)
	}
	return h
}

// FuzzSymmetryFingerprint drives a fuzz-chosen schedule over a symmetric
// body, then replays the same schedule with every process id permuted, and
// asserts both runs converge to the same canonical state fingerprint —
// the invariance the symmetry reduction's soundness rests on.
func FuzzSymmetryFingerprint(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0, 1, 2, 0})
	f.Add([]byte{2, 2, 1, 0, 0, 1})
	f.Fuzz(func(t *testing.T, choices []byte) {
		const nprocs, maxSteps = 3, 16
		perms := [][]int{{1, 2, 0}, {2, 1, 0}, {0, 2, 1}}

		// Base run: the fuzz bytes choose a pid at every quiescent point.
		var pids []int
		run := func(choose func(step int, waiting []int) int) (uint64, error) {
			var s *Scheduler
			s = NewScheduler(nprocs, func(step int, waiting []int) int {
				return choose(step, waiting)
			})
			s.hist = make([]uint64, nprocs)
			m := symCounterBody(nprocs, maxSteps, s)
			err := s.Run(maxSteps)
			// Fingerprint at the quiescent point before any drain: drained
			// steps run in fixed pid order, so they are not covariant under
			// id permutation — only the scheduled portion is.
			fp := canonicalFingerprint(s, m)
			if err != nil {
				for i := 0; i < nprocs; i++ {
					m.Proc(i).SignalAbort()
				}
				s.Drain()
			}
			return fp, err
		}

		baseFp, baseErr := run(func(step int, waiting []int) int {
			var c int
			if step < len(choices) {
				c = int(choices[step]) % len(waiting)
			}
			pids = append(pids, waiting[c])
			return c
		})

		for _, perm := range perms {
			permFp, permErr := run(func(step int, waiting []int) int {
				if step >= len(pids) {
					t.Fatalf("permuted run outlived the base schedule at step %d", step)
				}
				want := perm[pids[step]]
				for i, pid := range waiting {
					if pid == want {
						return i
					}
				}
				t.Fatalf("permuted pid %d not waiting at step %d (waiting %v): body not id-symmetric?",
					want, step, waiting)
				return 0
			})
			if (baseErr == nil) != (permErr == nil) {
				t.Fatalf("perm %v: verdict differs: base %v, permuted %v", perm, baseErr, permErr)
			}
			if permFp != baseFp {
				t.Errorf("perm %v: canonical fingerprint %#x, want %#x", perm, permFp, baseFp)
			}
		}
	})
}

// TestExploreCountsVisitedExact pins the visited-caching cut exactly on a
// two-process tree of two Writes each to distinct words: interleaving
// states form a 3x3 progress grid (word values reveal only how far each
// process got), so the 6-leaf choice tree collapses onto the grid's
// diagonal sweep. Hand-traced: the leftmost replay [0,0,1,1] is explored;
// prefix [0,1] re-converges with it at depth 3 (hit); [0,1,1,...] is
// explored as the second representative; prefixes [1] and [1,1] both hit
// states already keyed from the p0-first branches (depths 2 and 3). The
// counts below are an exact regression anchor. A second run pins the
// symmetry cut on the fully id-symmetric shared-FAA body, where the
// canonical tree grants fresh ids smallest-first: 3 replays cover the 6
// leaves.
func TestExploreCountsVisitedExact(t *testing.T) {
	grid := func(s *Scheduler, maxSteps int) error {
		m := NewMemory(CC, 2, s)
		words := []Addr{m.Alloc(0), m.Alloc(0)}
		for i := 0; i < 2; i++ {
			p := m.Proc(i)
			w := words[i]
			s.GoProc(i, func() {
				p.Write(w, 1)
				p.Write(w, 2)
			})
		}
		if err := s.Run(maxSteps); err != nil {
			return err
		}
		for i, w := range words {
			if got := m.Peek(w); got != 2 {
				return fmt.Errorf("word %d = %d, want 2", i, got)
			}
		}
		return nil
	}
	res, err := (&Explorer{Visited: true}).Run(2, grid)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted {
		t.Fatalf("grid run not exhausted: %+v", res)
	}
	if res.Explored != 2 || res.VisitedHits != 3 {
		t.Errorf("grid counts explored=%d hits=%d, want 2 and 3 (full tree has 6 leaves)",
			res.Explored, res.VisitedHits)
	}

	// Shared-word FAAs are id-symmetric: with 2 interchangeable processes
	// the canonical tree keeps only grant orders whose first grant goes to
	// the smallest fresh id — 3 replays instead of the full tree's 6.
	faa := func(s *Scheduler, maxSteps int) error {
		m := NewMemory(CC, 2, s)
		a := m.Alloc(0)
		for i := 0; i < 2; i++ {
			p := m.Proc(i)
			s.GoProc(i, func() {
				p.FAA(a, 1)
				p.FAA(a, 1)
			})
		}
		if err := s.Run(maxSteps); err != nil {
			return err
		}
		if got := m.Peek(a); got != 4 {
			return fmt.Errorf("counter = %d, want 4", got)
		}
		return nil
	}
	full, err := (&Explorer{}).Run(2, faa)
	if err != nil {
		t.Fatal(err)
	}
	if full.Explored != 6 {
		t.Fatalf("full FAA tree explored %d leaves, want 6", full.Explored)
	}
	sym, err := (&Explorer{Symmetry: true}).Run(2, faa)
	if err != nil {
		t.Fatal(err)
	}
	if !sym.Exhausted {
		t.Fatal("symmetry run not exhausted")
	}
	if sym.Replays() != 3 {
		t.Errorf("symmetry replays %d, want 3 (canonical half of the 6-leaf tree)", sym.Replays())
	}
}
