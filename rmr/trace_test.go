package rmr

import (
	"sync"
	"testing"
)

// collector is a concurrency-safe tracer for tests.
type collector struct {
	mu     sync.Mutex
	events []Event
}

func (c *collector) trace(ev Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events = append(c.events, ev)
}

func TestTraceRecordsOperations(t *testing.T) {
	m := NewMemory(CC, 2, nil)
	c := &collector{}
	m.SetTracer(c.trace)
	a := m.Alloc(10)
	p := m.Proc(0)

	p.Read(a)
	p.Write(a, 20)
	p.FAA(a, 5)
	p.Swap(a, 1)
	if p.CAS(a, 1, 2) != true {
		t.Fatal("CAS failed")
	}
	p.CAS(a, 99, 0) // fails

	// Sequential operations get consecutive timestamps starting at 1, and
	// with no EnterPhase call every event is attributed to PhaseIdle and
	// the unlabeled region. Under the default Unit cost model every charged
	// op costs one tick and STime tracks the process's cumulative RMRs.
	want := []Event{
		{Proc: 0, Op: OpRead, Addr: a, Old: 10, New: 10, OK: true, RMR: true, Time: 1, Cost: 1, STime: 1},
		{Proc: 0, Op: OpWrite, Addr: a, Old: 10, New: 20, OK: true, RMR: true, Time: 2, Cost: 1, STime: 2},
		{Proc: 0, Op: OpFAA, Addr: a, Old: 20, New: 25, OK: true, RMR: true, Time: 3, Cost: 1, STime: 3},
		{Proc: 0, Op: OpSwap, Addr: a, Old: 25, New: 1, OK: true, RMR: true, Time: 4, Cost: 1, STime: 4},
		{Proc: 0, Op: OpCAS, Addr: a, Old: 1, New: 2, OK: true, RMR: true, Time: 5, Cost: 1, STime: 5},
		{Proc: 0, Op: OpCAS, Addr: a, Old: 2, New: 2, OK: false, RMR: true, Time: 6, Cost: 1, STime: 6},
	}
	if len(c.events) != len(want) {
		t.Fatalf("recorded %d events, want %d", len(c.events), len(want))
	}
	for i, ev := range c.events {
		if ev != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, ev, want[i])
		}
	}
}

// TestTraceRMRConsistency recomputes every process's RMR counter from the
// trace and checks it matches the live accounting — the tracer and the
// cost model must agree by construction.
func TestTraceRMRConsistency(t *testing.T) {
	for _, model := range []Model{CC, DSM} {
		t.Run(model.String(), func(t *testing.T) {
			const nprocs = 4
			s := NewScheduler(nprocs, RandomPick(7))
			m := NewMemory(model, nprocs, nil)
			c := &collector{}
			m.SetTracer(c.trace)
			shared := m.AllocN(4, 0)
			locals := make([]Addr, nprocs)
			for i := range locals {
				locals[i] = m.AllocLocal(i, 0)
			}
			m.SetGate(s)
			for i := 0; i < nprocs; i++ {
				p := m.Proc(i)
				local := locals[i]
				s.Go(func() {
					for k := 0; k < 25; k++ {
						switch k % 5 {
						case 0:
							p.FAA(shared+Addr(k%4), 1)
						case 1:
							p.Read(shared + Addr(k%4))
						case 2:
							p.Write(local, uint64(k))
						case 3:
							p.Read(local)
						case 4:
							p.CAS(shared, uint64(k), uint64(k+1))
						}
					}
				})
			}
			if err := s.Run(1_000_000); err != nil {
				t.Fatal(err)
			}
			counted := make([]int64, nprocs)
			for _, ev := range c.events {
				if ev.RMR {
					counted[ev.Proc]++
				}
			}
			for i := 0; i < nprocs; i++ {
				if got := m.Proc(i).RMRs(); got != counted[i] {
					t.Errorf("proc %d: live RMRs = %d, trace says %d", i, got, counted[i])
				}
			}
		})
	}
}

func TestTraceOpString(t *testing.T) {
	for op, want := range map[Op]string{
		OpRead: "read", OpWrite: "write", OpCAS: "cas", OpFAA: "faa", OpSwap: "swap",
		Op(42): "Op(42)",
	} {
		if got := op.String(); got != want {
			t.Errorf("Op(%d).String() = %q, want %q", int(op), got, want)
		}
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	m := NewMemory(CC, 1, nil)
	a := m.Alloc(0)
	m.Proc(0).Write(a, 1) // must not panic with no tracer
	m.SetTracer(nil)
	m.Proc(0).Write(a, 2)
}

func TestCheckTraceDetectsCorruption(t *testing.T) {
	a := Addr(0)
	good := []Event{
		{Proc: 0, Op: OpWrite, Addr: a, Old: 5, New: 7, OK: true},
		{Proc: 1, Op: OpRead, Addr: a, Old: 7, New: 7, OK: true},
		{Proc: 1, Op: OpFAA, Addr: a, Old: 7, New: 9, OK: true},
	}
	if err := CheckTrace(good, map[Addr]uint64{a: 5}); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
	t.Run("broken chain", func(t *testing.T) {
		bad := append([]Event{}, good...)
		bad[1].Old, bad[1].New = 99, 99
		if CheckTrace(bad, map[Addr]uint64{a: 5}) == nil {
			t.Fatal("broken value chain accepted")
		}
	})
	t.Run("wrong initial", func(t *testing.T) {
		if CheckTrace(good, map[Addr]uint64{a: 6}) == nil {
			t.Fatal("wrong initial value accepted")
		}
	})
	t.Run("mutating read", func(t *testing.T) {
		bad := []Event{{Proc: 0, Op: OpRead, Addr: a, Old: 5, New: 6, OK: true}}
		if CheckTrace(bad, map[Addr]uint64{a: 5}) == nil {
			t.Fatal("mutating read accepted")
		}
	})
	t.Run("mutating failed CAS", func(t *testing.T) {
		bad := []Event{{Proc: 0, Op: OpCAS, Addr: a, Old: 5, New: 6, OK: false}}
		if CheckTrace(bad, map[Addr]uint64{a: 5}) == nil {
			t.Fatal("mutating failed CAS accepted")
		}
	})
	t.Run("unknown op", func(t *testing.T) {
		bad := []Event{{Proc: 0, Op: Op(42), Addr: a, Old: 5, New: 5, OK: true}}
		if CheckTrace(bad, map[Addr]uint64{a: 5}) == nil {
			t.Fatal("unknown op accepted")
		}
	})
	t.Run("unknown address unchecked first event", func(t *testing.T) {
		// Without an init entry the first event's Old is taken on faith.
		loose := []Event{{Proc: 0, Op: OpWrite, Addr: Addr(9), Old: 123, New: 1, OK: true}}
		if err := CheckTrace(loose, nil); err != nil {
			t.Fatalf("first-event-without-init rejected: %v", err)
		}
	})
}
