package rmr

import "fmt"

// Op identifies a shared-memory operation kind in a trace.
type Op int

// Operation kinds.
const (
	OpRead Op = iota + 1
	OpWrite
	OpCAS
	OpFAA
	OpSwap
)

// String returns the operation mnemonic.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpCAS:
		return "cas"
	case OpFAA:
		return "faa"
	case OpSwap:
		return "swap"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Event records one shared-memory operation for offline analysis. Events
// on the same word are emitted in linearization order; events on different
// words may invoke the tracer concurrently from different goroutines, so
// tracers must be safe for concurrent use (under a gated memory, operations
// are serialized and the global event order is total).
type Event struct {
	Proc int
	Op   Op
	Addr Addr
	// Old and New are the word's value before and after the operation
	// (equal for reads and failed CASes).
	Old, New uint64
	// OK is false only for a failed CAS.
	OK bool
	// RMR reports whether the operation was charged as remote.
	RMR bool
}

// Tracer consumes events. Implementations must not operate on the traced
// Memory from inside the callback (the word's lock is held) and must be
// fast; tracing is a debugging/verification facility, not a hot path.
type Tracer func(Event)

// SetTracer installs (or removes, with nil) a tracer. Like SetGate it must
// not be called while processes are issuing operations.
func (m *Memory) SetTracer(t Tracer) { m.tracer = t }

// trace emits an event. The operation path only constructs an Event — and
// only calls trace — when a tracer is installed, so the untraced hot path
// pays a single nil check per operation and allocates nothing. Called with
// the word lock held, so events are in linearization order per word and
// globally consistent with the values recorded.
func (m *Memory) trace(ev Event) {
	if m.tracer != nil {
		m.tracer(ev)
	}
}

// CheckTrace validates the internal consistency of a totally-ordered event
// sequence (as recorded under a gated memory): per address, each event's
// Old value must equal the previous event's New value, failed CASes must
// not change the value, and successful operations must transform it as
// their kind dictates. It is a self-check of the simulator and of
// hand-built schedules; inits supplies the initial value of any address
// whose first event should be checked against it.
func CheckTrace(events []Event, inits map[Addr]uint64) error {
	last := make(map[Addr]uint64, len(inits))
	have := make(map[Addr]bool, len(inits))
	for a, v := range inits {
		last[a], have[a] = v, true
	}
	for i, ev := range events {
		if have[ev.Addr] && ev.Old != last[ev.Addr] {
			return fmt.Errorf("event %d (%s on %d by proc %d): Old=%d but previous New=%d",
				i, ev.Op, ev.Addr, ev.Proc, ev.Old, last[ev.Addr])
		}
		switch ev.Op {
		case OpRead:
			if ev.New != ev.Old {
				return fmt.Errorf("event %d: read changed the value", i)
			}
		case OpCAS:
			if !ev.OK && ev.New != ev.Old {
				return fmt.Errorf("event %d: failed CAS changed the value", i)
			}
		case OpFAA, OpWrite, OpSwap:
			// Any transformation is legal; the chain check above binds it.
		default:
			return fmt.Errorf("event %d: unknown op %v", i, ev.Op)
		}
		last[ev.Addr], have[ev.Addr] = ev.New, true
	}
	return nil
}
