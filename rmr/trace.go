package rmr

import "fmt"

// Op identifies a shared-memory operation kind in a trace.
type Op int

// Operation kinds.
const (
	OpRead Op = iota + 1
	OpWrite
	OpCAS
	OpFAA
	OpSwap
	// OpPhase marks a passage-phase transition (Proc.EnterPhase), not a
	// shared-memory operation: Old and New carry the previous and the new
	// Phase, Addr is -1, and no RMR is charged. CheckTrace skips it.
	OpPhase
)

// String returns the operation mnemonic.
func (o Op) String() string {
	switch o {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpCAS:
		return "cas"
	case OpFAA:
		return "faa"
	case OpSwap:
		return "swap"
	case OpPhase:
		return "phase"
	default:
		return fmt.Sprintf("Op(%d)", int(o))
	}
}

// Phase classifies where in a lock passage a process currently is. Locks
// declare their position with Proc.EnterPhase so that traces and Stats can
// attribute RMRs to the doorway, the waiting room, the critical section,
// the exit protocol, or the abort path. PhaseIdle (the zero value) means
// "not in a passage".
type Phase int32

// Passage phases, in the order a normal passage visits them.
const (
	PhaseIdle Phase = iota
	PhaseDoorway
	PhaseWaiting
	PhaseCS
	PhaseExit
	PhaseAbort

	// NumPhases is the number of distinct Phase values.
	NumPhases = 6
)

// String returns the phase name.
func (ph Phase) String() string {
	switch ph {
	case PhaseIdle:
		return "idle"
	case PhaseDoorway:
		return "doorway"
	case PhaseWaiting:
		return "waiting"
	case PhaseCS:
		return "cs"
	case PhaseExit:
		return "exit"
	case PhaseAbort:
		return "abort"
	default:
		return fmt.Sprintf("Phase(%d)", int32(ph))
	}
}

// Event records one shared-memory operation for offline analysis. Events
// on the same word are emitted in linearization order; events on different
// words may invoke the tracer concurrently from different goroutines, so
// tracers must be safe for concurrent use (under a gated memory, operations
// are serialized and the global event order is total).
type Event struct {
	Proc int
	Op   Op
	Addr Addr
	// Old and New are the word's value before and after the operation
	// (equal for reads and failed CASes). For OpPhase they carry the
	// previous and the new Phase.
	Old, New uint64
	// OK is false only for a failed CAS.
	OK bool
	// RMR reports whether the operation was charged as remote.
	RMR bool
	// Time is a global logical timestamp: each observed event increments
	// the memory's event clock. Timestamps of events on the same word are
	// strictly increasing; across words they form a total order consistent
	// with each word's linearization.
	Time int64
	// Phase is the issuing process's passage phase at the operation.
	Phase Phase
	// Label is the label id of the addressed word (see Memory.Label);
	// 0 means unlabeled. Resolve names with Memory.LabelName.
	Label int32
	// Cost is the simulated-time cost the memory's cost model assigned to
	// the operation (cost.go): simulated nanoseconds under the built-in
	// non-unit models, one tick per charged operation under Unit. OpPhase
	// events carry 0.
	Cost int64
	// STime is the issuing process's cumulative simulated time after the
	// operation (Proc.SimTime) — a per-process virtual clock that gives
	// exported traces real durations.
	STime int64
}

// String formats the event on one line, e.g.
//
//	"[   12] p3  faa   @7    5 → 6 (rmr, doorway)".
func (ev Event) String() string {
	rmr := ""
	if ev.RMR {
		rmr = "rmr, "
	}
	if ev.Op == OpPhase {
		return fmt.Sprintf("[%5d] p%-2d phase %v → %v", ev.Time, ev.Proc, Phase(ev.Old), Phase(ev.New))
	}
	fail := ""
	if !ev.OK {
		fail = " (failed)"
	}
	return fmt.Sprintf("[%5d] p%-2d %-5s @%-4d %d → %d%s (%s%v)",
		ev.Time, ev.Proc, ev.Op, ev.Addr, ev.Old, ev.New, fail, rmr, ev.Phase)
}

// Tracer consumes events. Implementations must not operate on the traced
// Memory from inside the callback (the word's lock is held) and must be
// fast; tracing is a debugging/verification facility, not a hot path.
type Tracer func(Event)

// observer bundles everything the operation slow path consults: the
// installed tracer and/or stats collector. A single atomic pointer on the
// Memory is nil when neither is installed, so the untraced hot path pays
// one pointer load per operation and allocates nothing.
type observer struct {
	tracer Tracer
	stats  *Stats
}

// SetTracer installs (or removes, with nil) a tracer. The installation
// itself is atomic — a concurrent operation observes either the old or the
// new observer, never a torn mix — but events in flight on other processes
// may still reach the old tracer; install tracers before launching the
// concurrent phase when a complete trace is required. SetTracer panics if
// the memory is gated by a scheduler that is mid-schedule, since a trace
// that starts at an uncontrolled point cannot be replayed.
func (m *Memory) SetTracer(t Tracer) {
	m.install(func(o *observer) { o.tracer = t })
}

// SetStats installs (or removes, with nil) a Stats collector, with the same
// atomicity and mid-schedule restrictions as SetTracer. The collector must
// have been built for this memory by NewStats.
func (m *Memory) SetStats(st *Stats) {
	if st != nil && st.m != m {
		panic("rmr: SetStats with a Stats built for a different Memory")
	}
	m.install(func(o *observer) { o.stats = st })
}

// install atomically swaps in a new observer derived from the current one.
func (m *Memory) install(mut func(o *observer)) {
	if s := m.sched; s != nil && s.active() {
		panic("rmr: observer installed mid-schedule (install tracers and stats before Scheduler.Run)")
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	var o observer
	if old := m.obs.Load(); old != nil {
		o = *old
	}
	mut(&o)
	if o.tracer == nil && o.stats == nil {
		m.obs.Store(nil)
		return
	}
	m.obs.Store(&o)
}

// observe timestamps, attributes, and dispatches an operation event. Called
// with the word lock held, so events are in linearization order per word
// and globally consistent with the values recorded.
func (m *Memory) observe(o *observer, p *Proc, w *word, ev Event, hit bool, invals int) {
	ev.Time = m.clock.Add(1)
	ev.Phase = p.phase
	ev.Label = w.label.Load()
	ev.STime = p.SimTime()
	if o.stats != nil {
		o.stats.record(ev.Proc, ev.Phase, ev.Label, ev.Op, ev.RMR, ev.Cost, hit, invals)
	}
	if o.tracer != nil {
		o.tracer(ev)
	}
}

// cacheState reports observability detail about the addressed word from the
// issuing process's viewpoint, before coherence state is mutated: whether
// the access hits (CC: a valid cached copy; DSM: the word is local) and,
// for updates under CC, how many other processes' copies it invalidates.
func (p *Proc) cacheState(w *word, update bool) (hit bool, invals int) {
	switch p.m.model {
	case CC:
		hit = w.cached.has(p.id)
		if update {
			invals = w.cached.count()
			if hit {
				invals--
			}
		}
	case DSM:
		hit = int(w.owner) == p.id
	}
	return hit, invals
}

// CheckTrace validates the internal consistency of a totally-ordered event
// sequence (as recorded under a gated memory): per address, each event's
// Old value must equal the previous event's New value, failed CASes must
// not change the value, and successful operations must transform it as
// their kind dictates. OpPhase events are skipped: they mark passage-phase
// transitions, not memory operations. It is a self-check of the simulator
// and of hand-built schedules; inits supplies the initial value of any
// address whose first event should be checked against it.
func CheckTrace(events []Event, inits map[Addr]uint64) error {
	last := make(map[Addr]uint64, len(inits))
	have := make(map[Addr]bool, len(inits))
	for a, v := range inits {
		last[a], have[a] = v, true
	}
	for i, ev := range events {
		if ev.Op == OpPhase {
			continue
		}
		if have[ev.Addr] && ev.Old != last[ev.Addr] {
			return fmt.Errorf("event %d (%s on %d by proc %d): Old=%d but previous New=%d",
				i, ev.Op, ev.Addr, ev.Proc, ev.Old, last[ev.Addr])
		}
		switch ev.Op {
		case OpRead:
			if ev.New != ev.Old {
				return fmt.Errorf("event %d: read changed the value", i)
			}
		case OpCAS:
			if !ev.OK && ev.New != ev.Old {
				return fmt.Errorf("event %d: failed CAS changed the value", i)
			}
		case OpFAA, OpWrite, OpSwap:
			// Any transformation is legal; the chain check above binds it.
		default:
			return fmt.Errorf("event %d: unknown op %v", i, ev.Op)
		}
		last[ev.Addr], have[ev.Addr] = ev.New, true
	}
	return nil
}
