package rmr

import (
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
)

// Frontier checkpoint/resume: a capped exploration serializes its pending
// work — the unexplored subtree roots of the parallel engine's task pool,
// plus the visited-set contents — into a versioned artifact, and a later
// run resumes from it instead of restarting. Counted replays and frontier
// subtrees exactly partition the choice tree at every checkpoint (workers
// drain their local stacks before a capped exit), so a resume chain covers
// exactly what one uninterrupted run covers: same verdict, same lexmin
// violation, same Explored representatives, same exhaustiveness. At
// Workers=1 the guarantee is total — resumed runs replay the exact
// continuation of the interrupted DFS, so every count and the final
// artifact are byte-identical to an uninterrupted run's. With racing
// workers the Pruned/VisitedHits split and the depth histogram depend on
// which of two equal-key nodes was keyed first and are not reproducible
// run to run. The deep-explore CI job uses checkpoints to accumulate
// depth across pushes.

// CheckpointVersion is the artifact format version; Decode rejects other
// versions with ErrCheckpointVersion so incompatible cached artifacts are
// discarded rather than misread.
const CheckpointVersion = 1

// ErrCheckpointVersion reports a checkpoint artifact with an incompatible
// format version.
var ErrCheckpointVersion = errors.New("rmr: incompatible checkpoint version")

// ErrCheckpointConfig reports a checkpoint saved under a different
// exploration configuration: its frontier describes another tree.
var ErrCheckpointConfig = errors.New("rmr: checkpoint configuration mismatch")

// Checkpoint is a serialized exploration frontier. Config is an opaque
// caller-chosen key describing everything that shapes the tree outside the
// Explorer knobs (lock, model, process count, ...); RunCheckpoint refuses
// to resume under a different key. The embedded knobs guard the rest.
type Checkpoint struct {
	Version   int    `json:"version"`
	Config    string `json:"config"`
	MaxSteps  int    `json:"max_steps"`
	Reduction int    `json:"reduction"`
	Visited   bool   `json:"visited"`
	Symmetry  bool   `json:"symmetry"`
	Shard     int    `json:"shard"`
	Count     int    `json:"shard_count"`

	// Partial is the accumulated Result over every run so far.
	Partial Result `json:"partial"`
	// Complete marks an exhausted exploration: the frontier is empty and
	// resuming returns Partial unchanged.
	Complete bool `json:"complete"`
	// Frontier lists the pending subtree roots in lexicographic order.
	Frontier []CheckpointTask `json:"frontier,omitempty"`
	// VisitedSet is the base64 little-endian uint64 dump of the visited
	// set, in ascending fingerprint order.
	VisitedSet string `json:"visited_set,omitempty"`
}

// CheckpointTask is one pending subtree root: the forced choice prefix
// and, under sleep sets, the subtree's sleep seed — the sleeping pid mask
// with the sleepers' pending-op footprints listed in ascending pid order.
type CheckpointTask struct {
	Prefix []int          `json:"prefix"`
	Mask   uint64         `json:"mask,omitempty"`
	Pend   []CheckpointOp `json:"pend,omitempty"`
}

// CheckpointOp is a serialized pending-op footprint.
type CheckpointOp struct {
	Addr int32 `json:"addr"`
	Mut  bool  `json:"mut,omitempty"`
}

// Encode serializes the checkpoint.
func (c *Checkpoint) Encode() ([]byte, error) {
	return json.MarshalIndent(c, "", " ")
}

// DecodeCheckpoint parses and validates a checkpoint artifact.
func DecodeCheckpoint(data []byte) (*Checkpoint, error) {
	var probe struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return nil, fmt.Errorf("rmr: malformed checkpoint: %w", err)
	}
	if probe.Version != CheckpointVersion {
		return nil, fmt.Errorf("%w: artifact v%d, supported v%d",
			ErrCheckpointVersion, probe.Version, CheckpointVersion)
	}
	var c Checkpoint
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("rmr: malformed checkpoint: %w", err)
	}
	return &c, nil
}

// RunCheckpoint is Run with frontier checkpointing. config keys the
// checkpoint to this exploration (see Checkpoint.Config); resume is a
// prior run's checkpoint or nil for a fresh start. When MaxSchedules caps
// the search the returned Checkpoint carries the pending frontier for a
// later resume; when the search exhausts the tree it is marked Complete.
// The returned Result accumulates every chained run's counts (it equals
// the checkpoint's Partial); a completed resume chain covers exactly what
// an uninterrupted run covers, and at Workers=1 its final counts and
// artifact are byte-identical to an uninterrupted run's (see the package
// comment above for the Workers>1 caveat). A property violation returns
// the error and no checkpoint. Checkpointing always runs the parallel
// engine — Workers <= 1 selects one worker, preserving sequential DFS
// order — because the frontier is the engine's task pool.
func (e *Explorer) RunCheckpoint(nprocs int, body Body, config string, resume *Checkpoint) (Result, *Checkpoint, error) {
	cfg := e.config(nprocs)
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	var prior Result
	var seed []exTask
	if resume != nil {
		if resume.Version != CheckpointVersion {
			return Result{}, nil, fmt.Errorf("%w: artifact v%d, supported v%d",
				ErrCheckpointVersion, resume.Version, CheckpointVersion)
		}
		if err := e.checkResume(config, cfg, resume); err != nil {
			return Result{}, nil, err
		}
		if resume.Complete {
			return resume.Partial, resume, nil
		}
		prior = resume.Partial
		prior.Exhausted = false
		seed = decodeTasks(resume.Frontier, nprocs)
		if cfg.set != nil {
			cfg.set.load(decodeVisitedDump(resume.VisitedSet))
		}
		if e.MaxSchedules > 0 && prior.Replays() >= e.MaxSchedules {
			// The budget was already spent in prior runs; hand the
			// checkpoint back unchanged rather than replaying nothing.
			return prior, resume, nil
		}
	}
	sub := *e
	if sub.MaxSchedules > 0 {
		sub.MaxSchedules -= prior.Replays()
	}
	res, frontier, err := sub.runParallel(nprocs, body, cfg, seed, true)
	total := prior
	total.Exhausted = true
	total.add(res)
	if err != nil {
		return total, nil, err
	}
	if !total.Exhausted && len(frontier) == 0 {
		// The cap fired exactly as the last pending subtree was counted:
		// the counted replays partition the whole tree, so the exploration
		// is in fact exhausted. Without this, a resume would fall back to
		// re-replaying the root and double-count its cut.
		total.Exhausted = true
	}
	ck := &Checkpoint{
		Version:   CheckpointVersion,
		Config:    config,
		MaxSteps:  cfg.maxSteps,
		Reduction: int(cfg.red),
		Visited:   cfg.vis,
		Symmetry:  cfg.sym,
		Shard:     cfg.shard,
		Count:     cfg.shardCount,
		Partial:   total,
		Complete:  total.Exhausted,
		Frontier:  encodeTasks(frontier),
	}
	if cfg.set != nil && !ck.Complete {
		ck.VisitedSet = encodeVisitedDump(cfg.set.dump())
	}
	return total, ck, nil
}

// checkResume validates that a checkpoint was saved under this exact
// exploration configuration.
func (e *Explorer) checkResume(config string, cfg exploreConfig, resume *Checkpoint) error {
	switch {
	case resume.Config != config:
		return fmt.Errorf("%w: artifact config %q, run config %q",
			ErrCheckpointConfig, resume.Config, config)
	case resume.MaxSteps != cfg.maxSteps:
		return fmt.Errorf("%w: artifact max-steps %d, run max-steps %d",
			ErrCheckpointConfig, resume.MaxSteps, cfg.maxSteps)
	case resume.Reduction != int(cfg.red) || resume.Visited != cfg.vis || resume.Symmetry != cfg.sym:
		return fmt.Errorf("%w: artifact reductions (red=%d vis=%v sym=%v), run (red=%d vis=%v sym=%v)",
			ErrCheckpointConfig, resume.Reduction, resume.Visited, resume.Symmetry,
			int(cfg.red), cfg.vis, cfg.sym)
	case resume.Shard != cfg.shard || resume.Count != cfg.shardCount:
		return fmt.Errorf("%w: artifact shard %d/%d, run shard %d/%d",
			ErrCheckpointConfig, resume.Shard, resume.Count, cfg.shard, cfg.shardCount)
	}
	return nil
}

// encodeTasks serializes frontier tasks, compacting each sleep seed to
// the sleepers' footprints in ascending pid order.
func encodeTasks(tasks []exTask) []CheckpointTask {
	out := make([]CheckpointTask, 0, len(tasks))
	for _, t := range tasks {
		ct := CheckpointTask{Prefix: append([]int(nil), t.prefix...), Mask: t.mask}
		if t.mask != 0 && t.pend != nil {
			for pid := 0; pid < len(t.pend); pid++ {
				if t.mask&(1<<uint(pid)) != 0 {
					ct.Pend = append(ct.Pend, CheckpointOp{Addr: int32(t.pend[pid].addr), Mut: t.pend[pid].mut})
				}
			}
		}
		out = append(out, ct)
	}
	return out
}

// decodeTasks rebuilds engine tasks from a serialized frontier.
func decodeTasks(tasks []CheckpointTask, nprocs int) []exTask {
	out := make([]exTask, 0, len(tasks))
	for _, ct := range tasks {
		t := exTask{prefix: append([]int(nil), ct.Prefix...), mask: ct.Mask}
		if ct.Mask != 0 {
			t.pend = make([]stepAccess, nprocs)
			for i := range t.pend {
				t.pend[i] = unknownAccess
			}
			i := 0
			for pid := 0; pid < nprocs && pid < 64; pid++ {
				if ct.Mask&(1<<uint(pid)) != 0 && i < len(ct.Pend) {
					t.pend[pid] = stepAccess{addr: Addr(ct.Pend[i].Addr), mut: ct.Pend[i].Mut}
					i++
				}
			}
		}
		out = append(out, t)
	}
	if len(out) == 0 {
		// An empty non-complete frontier can only come from a hand-edited
		// artifact; fall back to the whole tree rather than exploring
		// nothing.
		out = append(out, exTask{})
	}
	return out
}

// sortTasks orders frontier tasks lexicographically by prefix so the
// serialized artifact is canonical regardless of worker timing.
func sortTasks(tasks []exTask) {
	sort.Slice(tasks, func(i, j int) bool {
		return lexCompare(tasks[i].prefix, tasks[j].prefix) < 0
	})
}

// encodeVisitedDump packs sorted fingerprints as base64(little-endian
// uint64s).
func encodeVisitedDump(fps []uint64) string {
	buf := make([]byte, 8*len(fps))
	for i, fp := range fps {
		binary.LittleEndian.PutUint64(buf[8*i:], fp)
	}
	return base64.StdEncoding.EncodeToString(buf)
}

// decodeVisitedDump is the inverse of encodeVisitedDump; malformed input
// yields a truncated (never invalid) fingerprint list.
func decodeVisitedDump(s string) []uint64 {
	buf, err := base64.StdEncoding.DecodeString(s)
	if err != nil {
		return nil
	}
	fps := make([]uint64, 0, len(buf)/8)
	for i := 0; i+8 <= len(buf); i += 8 {
		fps = append(fps, binary.LittleEndian.Uint64(buf[i:]))
	}
	return fps
}
