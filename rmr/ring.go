package rmr

import "sync"

// Ring is a flight recorder: a fixed-capacity ring buffer of the most
// recent trace events. Long or exploratory runs install Ring.Record as the
// tracer so that tracing stays O(capacity) in memory, and dump the tail of
// the trace only when something goes wrong (see the locktest violation
// replay). Recording is mutex-serialized — cheap next to the traced
// (mutex) operation path — and allocation-free after construction.
type Ring struct {
	mu    sync.Mutex
	buf   []Event
	next  int   // index of the slot the next event lands in
	total int64 // events ever recorded
}

// NewRing creates a flight recorder keeping the last n events (n ≥ 1).
func NewRing(n int) *Ring {
	if n < 1 {
		panic("rmr: NewRing capacity must be at least 1")
	}
	return &Ring{buf: make([]Event, 0, n)}
}

// Record stores ev, evicting the oldest event when full. It is the Tracer
// to install: m.SetTracer(ring.Record).
func (r *Ring) Record(ev Event) {
	r.mu.Lock()
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, ev)
	} else {
		r.buf[r.next] = ev
		r.next++
		if r.next == len(r.buf) {
			r.next = 0
		}
	}
	r.total++
	r.mu.Unlock()
}

// Events returns the recorded events, oldest first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// Total reports how many events were recorded over the ring's lifetime,
// including evicted ones.
func (r *Ring) Total() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// PassageSimLatencies extracts the simulated duration of every passage that
// both opened and closed inside the buffered window, in completion order:
// per process, a passage opens on an OpPhase event leaving PhaseIdle and
// closes on the one returning to it, and its latency is the process's
// simulated-clock delta (Event.STime) between the two. Passages truncated
// by eviction at either end are skipped.
func (r *Ring) PassageSimLatencies() []int64 {
	type openPassage struct {
		active bool
		start  int64
	}
	open := map[int]openPassage{}
	var out []int64
	for _, ev := range r.Events() {
		if ev.Op != OpPhase {
			continue
		}
		oldPh, newPh := Phase(ev.Old), Phase(ev.New)
		o := open[ev.Proc]
		switch {
		case oldPh == PhaseIdle && newPh != PhaseIdle:
			open[ev.Proc] = openPassage{active: true, start: ev.STime}
		case newPh == PhaseIdle && o.active:
			out = append(out, ev.STime-o.start)
			open[ev.Proc] = openPassage{}
		}
	}
	return out
}

// PassageSimSummary reports nearest-rank p50/p95/p99 of the simulated
// passage latencies in the buffered window, and how many complete passages
// they summarize (all zero when none).
func (r *Ring) PassageSimSummary() (p50, p95, p99 int64, n int) {
	lats := r.PassageSimLatencies()
	return SimQuantile(lats, 0.50), SimQuantile(lats, 0.95), SimQuantile(lats, 0.99), len(lats)
}

// Reset discards the buffered events (capacity is retained).
func (r *Ring) Reset() {
	r.mu.Lock()
	r.buf = r.buf[:0]
	r.next = 0
	r.total = 0
	r.mu.Unlock()
}
