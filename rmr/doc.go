// Package rmr provides a simulated asynchronous shared-memory multiprocessor
// that counts remote memory references (RMRs) exactly as defined in the
// complexity model of Alon & Morrison (PODC 2018), §2.
//
// The machine consists of W-bit (here: 64-bit) shared words supporting
// atomic read, write, CAS, Fetch-And-Add, and Fetch-And-Store (SWAP)
// operations. Two memory models are supported:
//
//   - CC (cache-coherent): each process keeps local copies of the shared
//     variables it accesses. A read is an RMR if it is the process's first
//     access to the word, or if another process updated the word since the
//     process's last access. Every write, CAS, F&A, and SWAP is an RMR and
//     invalidates all other processes' cached copies.
//   - DSM (distributed shared memory): every word is local to exactly one
//     process; any operation by another process is an RMR.
//
// Processes are represented by Proc handles. All shared-memory operations go
// through a Proc so that RMRs can be attributed per process and, via
// Proc.RMRs snapshots, per passage.
//
// For reproducible concurrency testing, a Memory may be constructed with a
// Gate. A gated Memory serializes shared-memory steps: before each operation
// the calling process blocks until a Scheduler grants it the next step.
// Schedulers can replay seeded pseudo-random interleavings, round-robin
// orders, or fully scripted adversarial schedules. Without a gate the memory
// is an ordinary linearizable concurrent object and processes run freely.
package rmr
