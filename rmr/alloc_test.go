package rmr

import (
	"fmt"
	"testing"
)

// TestOperationsDoNotAllocate asserts the zero-allocation guarantee of the
// operation path: Read/Write/CAS/FAA/Swap allocate nothing in steady state,
// with no tracer installed, on every data path — free-running CC (seqlock),
// free-running DSM (bare atomics), wide CC (mutex + spilled cache set), and
// gated CC/DSM (lock elision under the scheduler's step token).
func TestOperationsDoNotAllocate(t *testing.T) {
	for _, tc := range []struct {
		name   string
		model  Model
		nprocs int
	}{
		{"CC", CC, 2},
		{"DSM", DSM, 2},
		{"CC-wide", CC, 65},
	} {
		t.Run("free-running/"+tc.name, func(t *testing.T) {
			m := NewMemory(tc.model, tc.nprocs, nil)
			own := m.AllocLocal(0, 0)
			shared := m.Alloc(0)
			p := m.Proc(0)
			checkOpsDoNotAllocate(t, p, own, shared)
		})
	}
	for _, model := range []Model{CC, DSM} {
		t.Run(fmt.Sprintf("gated/%v", model), func(t *testing.T) {
			s := NewScheduler(1, func(_ int, _ []int) int { return 0 })
			m := NewMemory(model, 1, s)
			own := m.AllocLocal(0, 0)
			shared := m.Alloc(0)
			p := m.Proc(0)
			s.Go(func() { checkOpsDoNotAllocate(t, p, own, shared) })
			if err := s.Run(1 << 30); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func checkOpsDoNotAllocate(t *testing.T, p *Proc, own, shared Addr) {
	got := testing.AllocsPerRun(100, func() {
		p.Read(own)
		p.Write(own, 1)
		p.CAS(own, 1, 2)
		p.FAA(shared, 1)
		p.Swap(shared, 0)
		p.Read(shared)
	})
	if got != 0 {
		t.Errorf("operations allocate %v objects per run, want 0", got)
	}
}

// TestCostModelPathDoesNotAllocate: the cost-model seam must not cost the
// zero-allocation guarantee on any data path — neither under the default
// Unit model (installed explicitly, which Memory normalizes to the nil fast
// path) nor under the built-in sampling models, whose Cost is a pure table
// lookup.
func TestCostModelPathDoesNotAllocate(t *testing.T) {
	for _, cm := range []CostModel{Unit, NewCCNuma(1), NewDsmRemote(1)} {
		for _, model := range []Model{CC, DSM} {
			t.Run(fmt.Sprintf("%s/%v", cm.Name(), model), func(t *testing.T) {
				m := NewMemory(model, 2, nil)
				own := m.AllocLocal(0, 0)
				shared := m.Alloc(0)
				m.SetCostModel(cm)
				checkOpsDoNotAllocate(t, m.Proc(0), own, shared)
			})
		}
	}
}

// TestEnterPhaseDoesNotAllocate: phase transitions are part of every lock's
// operation path, so they share the zero-allocation guarantee — with no
// observer, and with a Stats collector installed (Stats records into
// preallocated atomic cells).
func TestEnterPhaseDoesNotAllocate(t *testing.T) {
	m := NewMemory(CC, 1, nil)
	p := m.Proc(0)
	phases := []Phase{PhaseDoorway, PhaseWaiting, PhaseCS, PhaseExit, PhaseIdle}
	check := func(name string) {
		got := testing.AllocsPerRun(100, func() {
			for _, ph := range phases {
				p.EnterPhase(ph)
			}
		})
		if got != 0 {
			t.Errorf("%s: EnterPhase allocates %v objects per run, want 0", name, got)
		}
	}
	check("no observer")
	m.SetStats(NewStats(m))
	check("stats installed")
}

// TestStatsPathDoesNotAllocate: the observed operation path with only a
// Stats collector installed (no tracer) stays allocation-free — counters
// are preallocated and recording passes no events around.
func TestStatsPathDoesNotAllocate(t *testing.T) {
	m := NewMemory(CC, 2, nil)
	own := m.AllocLocal(0, 0)
	shared := m.Alloc(0)
	m.SetStats(NewStats(m))
	checkOpsDoNotAllocate(t, m.Proc(0), own, shared)
}
