package rmr

import (
	"fmt"
	"testing"
)

// TestCacheSetBoundaries exercises the CC coherence bookkeeping at the
// inline/spill representation boundary: nprocs = 63 and 64 use the inline
// uint64 cache set (64 occupying the top bit), nprocs = 65 spills to the
// heap bitset. The charged RMRs must be identical on both representations.
func TestCacheSetBoundaries(t *testing.T) {
	for _, n := range []int{63, 64, 65} {
		t.Run(fmt.Sprintf("nprocs=%d", n), func(t *testing.T) {
			m := NewMemory(CC, n, nil)
			a := m.Alloc(0)
			hi := m.Proc(n - 1) // highest id: the boundary bit
			lo := m.Proc(0)

			// First read charges and caches; repeat reads are free.
			for _, p := range []*Proc{lo, hi} {
				if got := charged(p, func() { p.Read(a) }); got != 1 {
					t.Fatalf("proc %d first read charged %d RMRs, want 1", p.ID(), got)
				}
				if got := charged(p, func() { p.Read(a) }); got != 0 {
					t.Fatalf("proc %d cached read charged %d RMRs, want 0", p.ID(), got)
				}
			}

			// Peek is neutral: it must neither charge nor disturb caches.
			if got := charged(hi, func() { m.Peek(a) }); got != 0 {
				t.Fatalf("Peek charged %d RMRs", got)
			}
			if got := charged(hi, func() { hi.Read(a) }); got != 0 {
				t.Fatalf("read after Peek charged %d RMRs, want 0", got)
			}

			// An update by the highest process clears every other copy
			// (clearExcept at the boundary bit) but keeps its own.
			if got := charged(hi, func() { hi.Write(a, 7) }); got != 1 {
				t.Fatalf("update charged %d RMRs, want 1", got)
			}
			if got := charged(hi, func() { hi.Read(a) }); got != 0 {
				t.Fatalf("updater re-read charged %d RMRs, want 0", got)
			}
			if got := charged(lo, func() { lo.Read(a) }); got != 1 {
				t.Fatalf("invalidated read charged %d RMRs, want 1", got)
			}

			// Poke invalidates everyone, including the last updater.
			m.Poke(a, 9)
			for _, p := range []*Proc{lo, hi} {
				if got := charged(p, func() {
					if v := p.Read(a); v != 9 {
						t.Fatalf("read %d after Poke, want 9", v)
					}
				}); got != 1 {
					t.Fatalf("proc %d read after Poke charged %d RMRs, want 1", p.ID(), got)
				}
			}
		})
	}
}

// charged runs fn and returns the RMRs it cost p.
func charged(p *Proc, fn func()) int64 {
	before := p.RMRs()
	fn()
	return p.RMRs() - before
}
