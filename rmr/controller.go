package rmr

import (
	"fmt"
	"sync/atomic"
)

// Controller is a Gate that a test drives by hand, one shared-memory step at
// a time. Unlike Scheduler, which owns the schedule, Controller lets the
// test decide exactly which process advances and by how many steps — the
// tool for reproducing the paper's "crossed paths" (⊤) interleavings.
//
//	c := rmr.NewController(2)
//	m := rmr.NewMemory(rmr.CC, 2, c)
//	c.Go(0, func() { ... })
//	c.Go(1, func() { ... })
//	c.Step(0)     // process 0 performs exactly one shared-memory operation
//	c.StepN(1, 3) // process 1 performs three
//	c.Finish(0, 1000) // run process 0 to completion (budget 1000 steps)
//	c.Wait()          // all processes must be done
type Controller struct {
	ready chan int
	done  chan int
	grant []chan struct{}
	open  atomic.Bool

	launched []bool
	finished []bool
	waiting  []bool // waiting[pid]: pid is blocked at the gate
	live     int
}

var _ Gate = (*Controller)(nil)

// NewController creates a controller for processes with ids in [0, n).
func NewController(n int) *Controller {
	c := &Controller{
		ready:    make(chan int),
		done:     make(chan int),
		grant:    make([]chan struct{}, n),
		launched: make([]bool, n),
		finished: make([]bool, n),
		waiting:  make([]bool, n),
	}
	for i := range c.grant {
		c.grant[i] = make(chan struct{})
	}
	return c
}

// Await implements Gate.
func (c *Controller) Await(pid int) {
	if c.open.Load() {
		return
	}
	c.ready <- pid
	<-c.grant[pid]
}

// Go launches fn as process pid. fn must issue its shared-memory operations
// as Proc pid of a Memory gated by this controller.
func (c *Controller) Go(pid int, fn func()) {
	if c.launched[pid] {
		panic(fmt.Sprintf("rmr: process %d launched twice", pid))
	}
	c.launched[pid] = true
	c.live++
	go func() {
		defer func() { c.done <- pid }()
		fn()
	}()
}

// collect blocks until process pid is either waiting at the gate or
// finished, absorbing events from other processes along the way.
func (c *Controller) collect(pid int) {
	for !c.waiting[pid] && !c.finished[pid] {
		select {
		case p := <-c.ready:
			c.waiting[p] = true
		case p := <-c.done:
			c.finished[p] = true
			c.live--
		}
	}
}

// Step lets process pid perform exactly one shared-memory operation. It
// returns false if pid had already finished.
func (c *Controller) Step(pid int) bool {
	c.collect(pid)
	if c.finished[pid] {
		return false
	}
	c.waiting[pid] = false
	c.grant[pid] <- struct{}{}
	// Wait until the step's effects are visible: pid is back at the gate or
	// done, so its operation has completed.
	c.collect(pid)
	return !c.finished[pid]
}

// StepN lets process pid perform up to n shared-memory operations,
// returning how many it performed before finishing.
func (c *Controller) StepN(pid, n int) int {
	for i := 0; i < n; i++ {
		if !c.Step(pid) {
			return i + 1
		}
	}
	return n
}

// Finish runs process pid until it returns, then reports the number of
// shared-memory steps it took. The budget guards against livelock; Finish
// panics if the process does not return within budget steps.
func (c *Controller) Finish(pid, budget int) int {
	for i := 0; i < budget; i++ {
		if !c.Step(pid) {
			return i + 1
		}
	}
	if c.finished[pid] {
		return budget
	}
	panic(fmt.Sprintf("rmr: process %d did not finish within %d steps", pid, budget))
}

// Wait opens the gate and blocks until every launched process has returned.
// Use it at the end of a scripted test when the remaining interleaving does
// not matter.
func (c *Controller) Wait() {
	c.open.Store(true)
	for pid, w := range c.waiting {
		if w {
			c.waiting[pid] = false
			c.grant[pid] <- struct{}{}
		}
	}
	for c.live > 0 {
		select {
		case pid := <-c.ready:
			c.grant[pid] <- struct{}{}
		case pid := <-c.done:
			c.finished[pid] = true
			c.live--
		}
	}
}

// Finished reports whether process pid has returned.
func (c *Controller) Finished(pid int) bool {
	return c.finished[pid]
}
