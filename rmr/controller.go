package rmr

import (
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// Controller is a Gate that a test drives by hand, one shared-memory step at
// a time. Unlike Scheduler, which owns the schedule, Controller lets the
// test decide exactly which process advances and by how many steps — the
// tool for reproducing the paper's "crossed paths" (⊤) interleavings.
//
//	c := rmr.NewController(2)
//	m := rmr.NewMemory(rmr.CC, 2, c)
//	c.Go(0, func() { ... })
//	c.Go(1, func() { ... })
//	c.Step(0)     // process 0 performs exactly one shared-memory operation
//	c.StepN(1, 3) // process 1 performs three
//	c.Finish(0, 1000) // run process 0 to completion (budget 1000 steps)
//	c.Wait()          // all processes must be done
type Controller struct {
	ready chan int
	done  chan int
	grant []chan struct{}
	open  atomic.Bool

	launched []bool
	finished []bool
	waiting  []bool // waiting[pid]: pid is blocked at the gate
	live     int

	// Fault injection (fault.go): scripted crashes and stalls, plan-driven
	// triggers, contained panics. fmu guards everything below — process
	// goroutines append faults concurrently with the test goroutine before
	// the schedule serializes them.
	fmu       sync.Mutex
	specs     [][]FaultSpec // per-pid plan triggers (SetFaultPlan)
	ops       []int32       // per-pid gated operation attempts so far
	crashNext []bool        // Crash: crash-stop at pid's next attempt
	stallLeft []int         // stall ticks pending per pid
	steps     int           // step grants (including stall ticks) so far
	faults    []Fault
	failure   *FaultError
}

var _ Gate = (*Controller)(nil)

// NewController creates a controller for processes with ids in [0, n).
func NewController(n int) *Controller {
	c := &Controller{
		ready:     make(chan int),
		done:      make(chan int),
		grant:     make([]chan struct{}, n),
		launched:  make([]bool, n),
		finished:  make([]bool, n),
		waiting:   make([]bool, n),
		specs:     make([][]FaultSpec, n),
		ops:       make([]int32, n),
		crashNext: make([]bool, n),
		stallLeft: make([]int, n),
	}
	for i := range c.grant {
		c.grant[i] = make(chan struct{})
	}
	return c
}

// Await implements Gate.
func (c *Controller) Await(pid int) {
	if c.open.Load() {
		return
	}
	c.faultCheck(pid) // may panic(procCrash) to unwind a crash victim
	c.ready <- pid
	<-c.grant[pid]
}

// faultCheck counts pid's gated operation attempt and applies any crash
// scripted for it — by Crash or by the installed plan — unwinding the
// process body with a procCrash panic that launch's containment swallows.
// Plan-scripted stalls install their tick window here; FaultRestart specs
// degrade to crash-stop on a Controller (scripted tests relaunch the
// process explicitly with Restart).
func (c *Controller) faultCheck(pid int) {
	c.fmu.Lock()
	op := c.ops[pid] + 1
	c.ops[pid] = op
	crash := false
	if c.crashNext[pid] {
		c.crashNext[pid] = false
		crash = true
		c.faults = append(c.faults, Fault{Proc: pid, Kind: FaultCrash, Op: int(op), Step: int64(c.steps)})
	}
	for _, sp := range c.specs[pid] {
		if sp.Op != int(op) {
			continue
		}
		if sp.Kind == FaultStall {
			c.stallLeft[pid] += sp.Delay
			c.faults = append(c.faults, Fault{Proc: pid, Kind: FaultStall, Op: int(op), Step: int64(c.steps), Delay: sp.Delay})
			continue
		}
		crash = true
		c.faults = append(c.faults, Fault{Proc: pid, Kind: FaultCrash, Op: int(op), Step: int64(c.steps), Delay: sp.Delay})
	}
	c.fmu.Unlock()
	if crash {
		panic(procCrash{pid})
	}
}

// Go launches fn as process pid. fn must issue its shared-memory operations
// as Proc pid of a Memory gated by this controller. A panic inside fn —
// including an injected crash — is contained at this spawn site: the
// process retires normally (collect sees it finish) and a real panic is
// recorded as a FaultPanic surfaced through Err, instead of killing the
// test binary with the gate locked.
func (c *Controller) Go(pid int, fn func()) {
	if c.launched[pid] {
		panic(fmt.Sprintf("rmr: process %d launched twice", pid))
	}
	c.launched[pid] = true
	c.live++
	c.launch(pid, fn)
}

// launch starts the contained process goroutine shared by Go and Restart.
func (c *Controller) launch(pid int, fn func()) {
	go func() {
		defer func() {
			if r := recover(); r != nil {
				c.contain(pid, r)
			}
			c.done <- pid
		}()
		fn()
	}()
}

// contain records a recovered process panic; injected crashes were already
// recorded at the gate and pass silently.
func (c *Controller) contain(pid int, r any) {
	if _, ok := r.(procCrash); ok {
		return
	}
	stack := string(debug.Stack())
	c.fmu.Lock()
	flt := Fault{Proc: pid, Kind: FaultPanic, Op: int(c.ops[pid]), Step: int64(c.steps), Value: r, Stack: stack}
	c.faults = append(c.faults, flt)
	if c.failure == nil {
		c.failure = &FaultError{Fault: flt, sentinel: ErrPanicked}
	}
	c.fmu.Unlock()
}

// collect blocks until process pid is either waiting at the gate or
// finished, absorbing events from other processes along the way.
func (c *Controller) collect(pid int) {
	for !c.waiting[pid] && !c.finished[pid] {
		select {
		case p := <-c.ready:
			c.waiting[p] = true
		case p := <-c.done:
			c.finished[p] = true
			c.live--
		}
	}
}

// Step lets process pid perform exactly one shared-memory operation. It
// returns false if pid had already finished. While pid is inside a stall
// window (StallNext or a plan-scripted stall) the grant is consumed as a
// stall tick instead: the process stays parked at the gate, performs no
// operation, and Step still returns true.
func (c *Controller) Step(pid int) bool {
	c.collect(pid)
	if c.finished[pid] {
		return false
	}
	c.fmu.Lock()
	c.steps++
	if c.stallLeft[pid] > 0 {
		c.stallLeft[pid]--
		c.fmu.Unlock()
		return true
	}
	c.fmu.Unlock()
	c.waiting[pid] = false
	c.grant[pid] <- struct{}{}
	// Wait until the step's effects are visible: pid is back at the gate or
	// done, so its operation has completed.
	c.collect(pid)
	return !c.finished[pid]
}

// StepN lets process pid perform up to n shared-memory operations,
// returning how many it performed before finishing.
func (c *Controller) StepN(pid, n int) int {
	for i := 0; i < n; i++ {
		if !c.Step(pid) {
			return i + 1
		}
	}
	return n
}

// FinishBudget runs process pid until it returns, reporting how many step
// grants (operations plus stall ticks) it consumed. If the process does
// not return within budget grants — a livelocked spin loop, a stall window
// larger than the budget — it returns an error wrapping ErrStepLimit, with
// the process left parked at the gate (deliver an abort signal and call it
// again, or fall through to Wait/WaitBudget).
func (c *Controller) FinishBudget(pid, budget int) (int, error) {
	for i := 0; i < budget; i++ {
		if !c.Step(pid) {
			return i + 1, nil
		}
	}
	if c.finished[pid] {
		return budget, nil
	}
	return budget, fmt.Errorf("rmr: process %d did not finish within %d steps: %w", pid, budget, ErrStepLimit)
}

// Finish runs process pid until it returns, then reports the number of
// shared-memory steps it took. The budget guards against livelock; Finish
// panics if the process does not return within budget steps. FinishBudget
// is the error-returning form.
func (c *Controller) Finish(pid, budget int) int {
	n, err := c.FinishBudget(pid, budget)
	if err != nil {
		panic(err.Error())
	}
	return n
}

// WaitBudget drives every unfinished process round-robin — with the gate
// still closed — until all have returned or the total grant budget is
// exhausted, in which case it returns an error wrapping ErrStepLimit
// instead of hanging the way Wait does when a process livelocks in a spin
// loop. On error the survivors stay parked at the gate: deliver abort
// signals and call WaitBudget again, or abandon the controller. When all
// processes finish it returns Err — a contained panic still fails the run.
func (c *Controller) WaitBudget(budget int) error {
	spent := 0
	for {
		progress := false
		for pid := range c.launched {
			if !c.launched[pid] || c.finished[pid] {
				continue
			}
			progress = true
			if spent >= budget {
				live := 0
				for q := range c.launched {
					if c.launched[q] && !c.finished[q] {
						live++
					}
				}
				return fmt.Errorf("rmr: %d process(es) still live after %d steps: %w", live, budget, ErrStepLimit)
			}
			c.Step(pid)
			spent++
		}
		if !progress {
			return c.Err()
		}
	}
}

// Wait opens the gate and blocks until every launched process has returned.
// Use it at the end of a scripted test when the remaining interleaving does
// not matter. Wait has no budget: a process that livelocks keeps it blocked
// forever — use WaitBudget when the code under test is not trusted to
// terminate. A panicking process does not block it (containment retires the
// process); check Err afterwards.
func (c *Controller) Wait() {
	c.open.Store(true)
	for pid, w := range c.waiting {
		if w {
			c.waiting[pid] = false
			c.grant[pid] <- struct{}{}
		}
	}
	for c.live > 0 {
		select {
		case pid := <-c.ready:
			c.grant[pid] <- struct{}{}
		case pid := <-c.done:
			c.finished[pid] = true
			c.live--
		}
	}
}

// Finished reports whether process pid has returned.
func (c *Controller) Finished(pid int) bool {
	return c.finished[pid]
}

// SetFaultPlan installs a deterministic fault script (fault.go) keyed by
// per-process operation-attempt indices, mirroring Scheduler.SetFaultPlan.
// It must be called before any process is launched. FaultRestart specs
// degrade to crash-stop: scripted tests model recovery explicitly with
// Restart. Passing nil clears the plan.
func (c *Controller) SetFaultPlan(plan *FaultPlan) {
	for pid := range c.launched {
		if c.launched[pid] {
			panic("rmr: SetFaultPlan after a process was launched")
		}
	}
	c.fmu.Lock()
	defer c.fmu.Unlock()
	for pid := range c.specs {
		c.specs[pid] = nil
	}
	if plan == nil {
		return
	}
	plan.validate(len(c.grant))
	for _, sp := range plan.Faults {
		c.specs[sp.Proc] = append(c.specs[sp.Proc], sp)
	}
}

// Crash schedules a crash-stop for process pid at its next gated operation
// attempt: the attempt unwinds the process body instead of performing the
// operation, and the next Step observes the process finished. Call it
// before Go(pid) or while pid is parked at the gate (after one of its
// Steps) for a deterministic trigger point.
func (c *Controller) Crash(pid int) {
	c.fmu.Lock()
	c.crashNext[pid] = true
	c.fmu.Unlock()
}

// StallNext opens (or extends) a stall window for process pid: its next d
// Step grants are consumed as stall ticks — the process stays parked at
// the gate, mid-protocol, performing no operation — before it can proceed.
// The scripted analogue of a FaultStall spec, for tests like
// "abort-while-stalled".
func (c *Controller) StallNext(pid, d int) {
	c.fmu.Lock()
	c.stallLeft[pid] += d
	c.faults = append(c.faults, Fault{Proc: pid, Kind: FaultStall, Op: int(c.ops[pid]), Step: int64(c.steps), Delay: d})
	c.fmu.Unlock()
}

// Stalled reports whether process pid has stall ticks pending.
func (c *Controller) Stalled(pid int) bool {
	c.fmu.Lock()
	defer c.fmu.Unlock()
	return c.stallLeft[pid] > 0
}

// Restart relaunches a finished (typically crashed) process with a new body
// under the same pid — the scripted analogue of FaultPlan.Restart, for
// RME-style recovery scripts. The restarted process's operation attempts
// keep counting from where the crashed incarnation stopped.
func (c *Controller) Restart(pid int, fn func()) {
	if !c.launched[pid] || !c.finished[pid] {
		panic(fmt.Sprintf("rmr: Restart(%d): process has not finished", pid))
	}
	c.finished[pid] = false
	c.live++
	c.launch(pid, fn)
}

// Faults returns a copy of the faults recorded so far, in occurrence order.
func (c *Controller) Faults() []Fault {
	c.fmu.Lock()
	defer c.fmu.Unlock()
	if len(c.faults) == 0 {
		return nil
	}
	return append([]Fault(nil), c.faults...)
}

// Err returns the failure recorded so far — the *FaultError for a contained
// panic — or nil.
func (c *Controller) Err() error {
	c.fmu.Lock()
	defer c.fmu.Unlock()
	if c.failure == nil {
		return nil
	}
	return c.failure
}
