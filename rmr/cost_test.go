package rmr

import (
	"strings"
	"testing"
)

// costWorkload drives a small gated two-process contention pattern and
// returns the memory, for tests that need a deterministic charged-op
// sequence under an arbitrary cost model.
func costWorkload(t *testing.T, model Model, cm CostModel, seed int64) *Memory {
	t.Helper()
	const nprocs = 2
	s := NewScheduler(nprocs, RandomPick(seed))
	m := NewMemory(model, nprocs, nil)
	lock := m.Alloc(0)
	count := m.Alloc(0)
	locals := [nprocs]Addr{}
	for i := range locals {
		locals[i] = m.AllocLocal(i, 0)
	}
	if cm != nil {
		m.SetCostModel(cm)
	}
	m.SetGate(s)
	for i := 0; i < nprocs; i++ {
		p := m.Proc(i)
		local := locals[i]
		s.GoProc(i, func() {
			for k := 0; k < 3; k++ {
				for !p.CAS(lock, 0, 1) {
					p.Read(lock)
				}
				p.FAA(count, 1)
				p.Write(local, uint64(k))
				p.Swap(lock, 0)
			}
		})
	}
	if err := s.Run(1 << 30); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestUnitCostMatchesRMRs: under the default model SimTime is the RMR
// count — installing Unit explicitly must behave exactly like installing
// nothing.
func TestUnitCostMatchesRMRs(t *testing.T) {
	for _, model := range []Model{CC, DSM} {
		for _, cm := range []CostModel{nil, Unit} {
			m := costWorkload(t, model, cm, 1)
			for i := 0; i < m.NumProcs(); i++ {
				p := m.Proc(i)
				if p.SimTime() != p.RMRs() {
					t.Errorf("%v cm=%v proc %d: SimTime=%d, RMRs=%d",
						model, cm, i, p.SimTime(), p.RMRs())
				}
			}
		}
	}
}

// TestCostDeterminism: the built-in sampling models are pure functions of
// (seed, proc, attempt, class), so two identical gated runs accrue
// bit-identical simulated time, and a different cost seed prices the same
// run differently.
func TestCostDeterminism(t *testing.T) {
	for _, model := range []Model{CC, DSM} {
		for _, name := range []string{"ccnuma", "dsmremote"} {
			mk := func(costSeed int64) []int64 {
				cm, err := NewCostModel(name, costSeed)
				if err != nil {
					t.Fatal(err)
				}
				m := costWorkload(t, model, cm, 1)
				out := make([]int64, m.NumProcs())
				for i := range out {
					out[i] = m.Proc(i).SimTime()
				}
				return out
			}
			a, b, c := mk(7), mk(7), mk(8)
			for i := range a {
				if a[i] != b[i] {
					t.Errorf("%v %s proc %d: same seed gave %d then %d", model, name, i, a[i], b[i])
				}
				if a[i] == 0 {
					t.Errorf("%v %s proc %d: accrued no simulated time", model, name, i)
				}
			}
			same := true
			for i := range a {
				if a[i] != c[i] {
					same = false
				}
			}
			if same {
				t.Errorf("%v %s: seeds 7 and 8 priced the run identically", model, name)
			}
		}
	}
}

// TestCostObserveOnly: a cost model never changes what is counted — RMRs,
// steps, and final memory contents are identical with and without one
// (the registry-wide version of this check is the conformance
// cost-transparency subtest).
func TestCostObserveOnly(t *testing.T) {
	for _, model := range []Model{CC, DSM} {
		base := costWorkload(t, model, nil, 3)
		priced := costWorkload(t, model, NewCCNuma(11), 3)
		for i := 0; i < base.NumProcs(); i++ {
			if base.Proc(i).RMRs() != priced.Proc(i).RMRs() {
				t.Errorf("%v proc %d: RMRs %d with cost model, %d without",
					model, i, priced.Proc(i).RMRs(), base.Proc(i).RMRs())
			}
			if base.Proc(i).Steps() != priced.Proc(i).Steps() {
				t.Errorf("%v proc %d: Steps %d with cost model, %d without",
					model, i, priced.Proc(i).Steps(), base.Proc(i).Steps())
			}
		}
		for a := Addr(0); int(a) < base.Size(); a++ {
			if base.Peek(a) != priced.Peek(a) {
				t.Errorf("%v word %d: value %d with cost model, %d without",
					model, a, priced.Peek(a), base.Peek(a))
			}
		}
	}
}

// TestCostModelLookup exercises the name registry.
func TestCostModelLookup(t *testing.T) {
	for _, name := range CostModelNames() {
		cm, err := NewCostModel(name, 1)
		if err != nil {
			t.Fatalf("NewCostModel(%q): %v", name, err)
		}
		if cm.Name() != name {
			t.Errorf("NewCostModel(%q).Name() = %q", name, cm.Name())
		}
	}
	if cm, err := NewCostModel("", 1); err != nil || cm != Unit {
		t.Errorf("NewCostModel(\"\") = %v, %v; want Unit", cm, err)
	}
	if _, err := NewCostModel("bogus", 1); err == nil {
		t.Error("NewCostModel(\"bogus\") did not fail")
	} else if !strings.Contains(err.Error(), "ccnuma") {
		t.Errorf("error %q does not list the known models", err)
	}
}

// TestCostClassesPriced: every non-hit class of the built-in models has a
// positive price, local hits are free, and costs are never negative.
func TestCostClassesPriced(t *testing.T) {
	for _, cm := range []CostModel{Unit, NewCCNuma(1), NewDsmRemote(1)} {
		for class := OpClass(0); class < NumOpClasses; class++ {
			for attempt := int64(1); attempt <= 64; attempt++ {
				c := cm.Cost(0, attempt, class)
				if c < 0 {
					t.Fatalf("%s: Cost(0,%d,%v) = %d < 0", cm.Name(), attempt, class, c)
				}
				if class == ClassLocalHit && c != 0 {
					t.Fatalf("%s: local hit priced at %d", cm.Name(), c)
				}
				if class != ClassLocalHit && c == 0 {
					t.Fatalf("%s: Cost(0,%d,%v) = 0", cm.Name(), attempt, class)
				}
			}
		}
	}
}

// TestStatsSimAttribution: with a cost model and Stats installed, the
// per-cell simulated-time matrix sums to each process's SimTime, exactly
// like the RMR attribution invariant.
func TestStatsSimAttribution(t *testing.T) {
	const nprocs = 2
	m := NewMemory(CC, nprocs, nil)
	lock := m.Alloc(0)
	m.SetCostModel(NewCCNuma(5))
	st := NewStats(m)
	m.SetStats(st)
	for i := 0; i < nprocs; i++ {
		p := m.Proc(i)
		p.EnterPhase(PhaseDoorway)
		p.FAA(lock, 1)
		p.EnterPhase(PhaseCS)
		p.Write(lock, uint64(i))
		p.Read(lock)
		p.EnterPhase(PhaseIdle)
	}
	snap := st.Snapshot()
	if snap.Cost != "ccnuma" {
		t.Errorf("snapshot cost = %q, want ccnuma", snap.Cost)
	}
	var total int64
	for i := 0; i < nprocs; i++ {
		var procSum int64
		for ph := Phase(0); ph < NumPhases; ph++ {
			procSum += snap.ProcPhaseSimNS(i, ph)
		}
		if got := m.Proc(i).SimTime(); procSum != got {
			t.Errorf("proc %d: cells sum to %d sim ns, SimTime is %d", i, procSum, got)
		}
		total += procSum
	}
	if snap.TotalSimNS() != total {
		t.Errorf("TotalSimNS = %d, want %d", snap.TotalSimNS(), total)
	}
	if snap.PassageSimSum != total {
		t.Errorf("PassageSimSum = %d, want %d (every op happened inside a passage)", snap.PassageSimSum, total)
	}
	if q := snap.PassageSimQuantile(1.0); q == 0 {
		t.Error("PassageSimQuantile(1.0) = 0 for priced passages")
	}
}

// TestRingPassageSimLatencies: the flight recorder extracts per-passage
// simulated latencies from buffered OpPhase events.
func TestRingPassageSimLatencies(t *testing.T) {
	r := NewRing(16)
	// Two complete passages (procs 0, 1) and one truncated (proc 2: close
	// without its open in the window).
	r.Record(Event{Proc: 0, Op: OpPhase, Old: uint64(PhaseIdle), New: uint64(PhaseDoorway), STime: 100})
	r.Record(Event{Proc: 1, Op: OpPhase, Old: uint64(PhaseIdle), New: uint64(PhaseDoorway), STime: 10})
	r.Record(Event{Proc: 2, Op: OpPhase, Old: uint64(PhaseCS), New: uint64(PhaseIdle), STime: 99})
	r.Record(Event{Proc: 0, Op: OpRead, STime: 350})
	r.Record(Event{Proc: 0, Op: OpPhase, Old: uint64(PhaseCS), New: uint64(PhaseIdle), STime: 400})
	r.Record(Event{Proc: 1, Op: OpPhase, Old: uint64(PhaseExit), New: uint64(PhaseIdle), STime: 25})
	lats := r.PassageSimLatencies()
	want := []int64{300, 15}
	if len(lats) != len(want) {
		t.Fatalf("latencies = %v, want %v", lats, want)
	}
	for i := range want {
		if lats[i] != want[i] {
			t.Fatalf("latencies = %v, want %v", lats, want)
		}
	}
	p50, p95, p99, n := r.PassageSimSummary()
	if n != 2 || p50 != 15 || p95 != 300 || p99 != 300 {
		t.Errorf("summary = p50=%d p95=%d p99=%d n=%d, want 15/300/300 over 2", p50, p95, p99, n)
	}
}

// TestSimQuantile pins the nearest-rank convention.
func TestSimQuantile(t *testing.T) {
	if q := SimQuantile(nil, 0.5); q != 0 {
		t.Errorf("empty quantile = %d", q)
	}
	s := []int64{40, 10, 30, 20}
	for _, tc := range []struct {
		q    float64
		want int64
	}{{0.25, 10}, {0.5, 20}, {0.75, 30}, {0.95, 40}, {1, 40}} {
		if got := SimQuantile(s, tc.q); got != tc.want {
			t.Errorf("SimQuantile(%v) = %d, want %d", tc.q, got, tc.want)
		}
	}
	if s[0] != 40 {
		t.Error("SimQuantile mutated its input")
	}
}
