package rmr

import (
	"sync/atomic"
	"testing"
	"time"
)

// pollParked waits until the memory's futex table reports want parked
// processes, failing t after a generous deadline.
func pollParked(t *testing.T, m *Memory, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for m.ftab.parked.Load() != want {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d parked processes (have %d)", want, m.ftab.parked.Load())
		}
		time.Sleep(time.Millisecond)
	}
}

// TestWaitParksAndWakes: on a free-running memory a waiter escalates to a
// park on the watched address, and the mutating write unparks it.
func TestWaitParksAndWakes(t *testing.T) {
	m := NewMemory(CC, 2, nil)
	a := m.Alloc(0)
	done := make(chan struct{})
	go func() {
		defer close(done)
		p := m.Proc(1)
		for p.Read(a) == 0 {
			p.Wait(a, 0)
		}
	}()
	pollParked(t, m, 1)

	m.Proc(0).Write(a, 1)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("write did not unpark the waiter")
	}
	pollParked(t, m, 0)
}

// TestSignalAbortUnparksWait: the abort signal reaches a parked waiter
// directly — the watched word never changes, yet the waiter returns.
func TestSignalAbortUnparksWait(t *testing.T) {
	m := NewMemory(CC, 2, nil)
	a := m.Alloc(0)
	var aborted atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		p := m.Proc(1)
		for p.Read(a) == 0 {
			if p.AbortSignal() {
				aborted.Store(true)
				return
			}
			p.Wait(a, 0)
		}
	}()
	pollParked(t, m, 1)

	m.Proc(1).SignalAbort()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("SignalAbort did not unpark the waiter")
	}
	if !aborted.Load() {
		t.Fatal("waiter returned without observing the abort signal")
	}
	pollParked(t, m, 0)
}

// TestWaitStaleValueReturnsImmediately: Wait with an old value the word no
// longer holds is a cheap no-op — the waiter's loop re-reads instead of
// parking on a condition that already flipped.
func TestWaitStaleValueReturnsImmediately(t *testing.T) {
	m := NewMemory(CC, 1, nil)
	a := m.Alloc(7)
	p := m.Proc(0)
	for i := 0; i < 1000; i++ {
		p.Wait(a, 0) // word holds 7, not 0: must not park or yield-escalate
	}
	if got := m.ftab.parked.Load(); got != 0 {
		t.Fatalf("%d processes parked on an already-satisfied wait", got)
	}
}

// TestGatedWaitIsNoOp: under a schedule gate, Wait neither parks nor
// blocks — a gated spin loop terminates exactly as it did before the
// adaptive waiter existed, with the futex table untouched.
func TestGatedWaitIsNoOp(t *testing.T) {
	c := NewController(2)
	m := NewMemory(CC, 2, nil)
	a := m.Alloc(0)
	m.SetGate(c)

	c.Go(0, func() {
		p := m.Proc(0)
		for p.Read(a) == 0 {
			p.Wait(a, 0)
		}
	})
	// 50 gated spin iterations, each Read followed by a Wait that must
	// return immediately without touching the futex table.
	c.StepN(0, 50)
	if got := m.ftab.parked.Load(); got != 0 {
		t.Fatalf("gated Wait parked %d processes mid-spin", got)
	}
	c.Go(1, func() { m.Proc(1).Write(a, 1) })
	c.Finish(1, 100)
	c.Finish(0, 100)
	c.Wait()
	if got := m.ftab.parked.Load(); got != 0 {
		t.Fatalf("gated Wait parked %d processes", got)
	}
}

// TestWaitYieldPolicy: under rmr.WaitYield every Wait is a plain yield —
// the waiter stays runnable (dense observation for RMR measurement) and
// the futex table is never used.
func TestWaitYieldPolicy(t *testing.T) {
	m := NewMemory(CC, 2, nil)
	m.SetWaitPolicy(WaitYield)
	a := m.Alloc(0)
	done := make(chan struct{})
	go func() {
		defer close(done)
		p := m.Proc(1)
		for p.Read(a) == 0 {
			p.Wait(a, 0)
		}
	}()
	// Give the waiter far more iterations than the adaptive park budget.
	deadline := time.Now().Add(100 * time.Millisecond)
	for time.Now().Before(deadline) {
		if got := m.ftab.parked.Load(); got != 0 {
			t.Fatalf("WaitYield parked %d processes", got)
		}
		time.Sleep(time.Millisecond)
	}
	m.Proc(0).Write(a, 1)
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("yielding waiter missed the release write")
	}
	if got := m.ftab.parked.Load(); got != 0 {
		t.Fatalf("WaitYield parked %d processes", got)
	}
}
