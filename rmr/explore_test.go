package rmr

import (
	"errors"
	"fmt"
	"testing"
)

// TestExploreCountsInterleavings: two processes issuing 2 ops each have
// C(4,2) = 6 interleavings; the explorer must enumerate exactly those.
func TestExploreCountsInterleavings(t *testing.T) {
	e := &Explorer{}
	res, err := e.Run(2, func(s *Scheduler, maxSteps int) error {
		m := NewMemory(CC, 2, s)
		a := m.Alloc(0)
		for i := 0; i < 2; i++ {
			p := m.Proc(i)
			s.Go(func() {
				p.FAA(a, 1)
				p.FAA(a, 1)
			})
		}
		if err := s.Run(maxSteps); err != nil {
			return err
		}
		if got := m.Peek(a); got != 4 {
			return fmt.Errorf("counter = %d, want 4", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exhausted {
		t.Fatal("tree not exhausted")
	}
	if res.Explored != 6 || res.Pruned != 0 {
		t.Fatalf("explored %d (pruned %d) schedules, want 6 (0)", res.Explored, res.Pruned)
	}
}

// TestExploreFindsViolation: a property that fails only in one specific
// interleaving must be found, and the reported schedule must reproduce it.
func TestExploreFindsViolation(t *testing.T) {
	body := func(s *Scheduler, maxSteps int) error {
		m := NewMemory(CC, 2, s)
		a := m.Alloc(0)
		var observed [2]uint64
		for i := 0; i < 2; i++ {
			i := i
			p := m.Proc(i)
			s.Go(func() {
				p.Write(a, uint64(i)+1)
				observed[i] = p.Read(a)
			})
		}
		if err := s.Run(maxSteps); err != nil {
			return err
		}
		// "Violation": both processes saw their own write survive — true
		// in some interleavings only.
		if observed[0] == 1 && observed[1] == 2 {
			return errors.New("both writes survived")
		}
		return nil
	}
	e := &Explorer{}
	_, err := e.Run(2, body)
	var ee *ErrExplore
	if !errors.As(err, &ee) {
		t.Fatalf("err = %v, want *ErrExplore", err)
	}
	if len(ee.Schedule) == 0 {
		t.Fatal("violation schedule empty")
	}
	// Replay: forcing the reported schedule must reproduce the violation.
	rec := &recorder{prefix: ee.Schedule}
	s := NewScheduler(2, rec.pick)
	if replayErr := body(s, 100000); replayErr == nil {
		t.Fatal("replaying the reported schedule did not reproduce the violation")
	}
}

// TestExploreMaxSchedules: the cap stops the search unexhausted.
func TestExploreMaxSchedules(t *testing.T) {
	e := &Explorer{MaxSchedules: 3}
	res, err := e.Run(2, func(s *Scheduler, maxSteps int) error {
		m := NewMemory(CC, 2, s)
		a := m.Alloc(0)
		for i := 0; i < 2; i++ {
			p := m.Proc(i)
			s.Go(func() {
				p.FAA(a, 1)
				p.FAA(a, 1)
			})
		}
		return s.Run(maxSteps)
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exhausted {
		t.Fatal("reported exhausted despite the cap")
	}
	if res.Explored != 3 {
		t.Fatalf("explored %d, want 3", res.Explored)
	}
}

// TestExploreSingleProcess: one process has exactly one schedule.
func TestExploreSingleProcess(t *testing.T) {
	e := &Explorer{}
	res, err := e.Run(1, func(s *Scheduler, maxSteps int) error {
		m := NewMemory(CC, 1, s)
		a := m.Alloc(0)
		p := m.Proc(0)
		s.Go(func() {
			p.Write(a, 1)
			p.Write(a, 2)
			p.Write(a, 3)
		})
		return s.Run(maxSteps)
	})
	if err != nil || !res.Exhausted || res.Explored != 1 {
		t.Fatalf("res=%+v err=%v, want 1 explored, exhausted, nil", res, err)
	}
}

// TestExploreStepLimit: schedules that hit the step bound are pruned —
// counted, backtracked past, and never reported as violations.
func TestExploreStepLimit(t *testing.T) {
	e := &Explorer{MaxSteps: 16}
	res, err := e.Run(1, func(s *Scheduler, maxSteps int) error {
		m := NewMemory(CC, 1, s)
		a := m.Alloc(0)
		p := m.Proc(0)
		s.Go(func() {
			for p.Read(a) == 0 { // spins until aborted; nobody writes a
				if p.AbortSignal() {
					return
				}
			}
		})
		err := s.Run(maxSteps)
		if err != nil {
			p.SignalAbort()
			s.Drain()
		}
		return err
	})
	if err != nil {
		t.Fatalf("pruning must not report a violation, got %v", err)
	}
	if res.Pruned != 1 || res.Explored != 0 || !res.Exhausted {
		t.Fatalf("res = %+v, want exactly one pruned schedule and exhaustion", res)
	}
}
