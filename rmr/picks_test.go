package rmr

import (
	"testing"
)

func TestBitset(t *testing.T) {
	b := newBitset(130)
	if b.has(0) || b.has(129) {
		t.Fatal("fresh bitset not empty")
	}
	b.add(0)
	b.add(63)
	b.add(64)
	b.add(129)
	for _, i := range []int{0, 63, 64, 129} {
		if !b.has(i) {
			t.Fatalf("bit %d missing", i)
		}
	}
	if b.has(1) || b.has(65) {
		t.Fatal("unexpected bits set")
	}
	b.clearExcept(64)
	if !b.has(64) || b.has(0) || b.has(63) || b.has(129) {
		t.Fatal("clearExcept misbehaved")
	}
	b.clear()
	if b.has(64) {
		t.Fatal("clear missed a bit")
	}
}

func TestRoundRobinPickCycles(t *testing.T) {
	pick := RoundRobinPick()
	waiting := []int{0, 1, 2}
	var order []int
	for i := 0; i < 6; i++ {
		idx := pick(i, waiting)
		order = append(order, waiting[idx])
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestRoundRobinPickPartialWaiters(t *testing.T) {
	pick := RoundRobinPick()
	// Only process 2 waiting: must be chosen (wrap).
	if idx := pick(0, []int{2}); idx != 0 {
		t.Fatalf("idx = %d", idx)
	}
	// last=2; processes 0 and 1 waiting: wrap to 0.
	if got := []int{0, 1}[pick(1, []int{0, 1})]; got != 0 {
		t.Fatalf("after wrap got %d, want 0", got)
	}
}

func TestPreferPickFallsBack(t *testing.T) {
	calls := 0
	fallback := func(step int, waiting []int) int {
		calls++
		return len(waiting) - 1
	}
	pick := PreferPick([]int{7}, fallback)
	// Preferred process waiting: chosen without fallback.
	if idx := pick(0, []int{3, 7, 5}); idx != 1 {
		t.Fatalf("idx = %d, want 1 (pid 7)", idx)
	}
	if calls != 0 {
		t.Fatal("fallback called unnecessarily")
	}
	// Preferred absent: fallback decides.
	if idx := pick(1, []int{3, 5}); idx != 1 {
		t.Fatalf("fallback idx = %d", idx)
	}
	if calls != 1 {
		t.Fatal("fallback not called")
	}
}

func TestSchedulerStepsClock(t *testing.T) {
	s := NewScheduler(2, RoundRobinPick())
	m := NewMemory(CC, 2, s)
	a := m.Alloc(0)
	stamps := make([]int64, 2)
	for i := 0; i < 2; i++ {
		i := i
		p := m.Proc(i)
		s.Go(func() {
			p.FAA(a, 1)
			stamps[i] = s.Steps()
		})
	}
	if err := s.Run(100); err != nil {
		t.Fatal(err)
	}
	if s.Steps() != 2 {
		t.Fatalf("final clock = %d, want 2", s.Steps())
	}
	for i, st := range stamps {
		if st < 1 || st > 2 {
			t.Fatalf("stamp[%d] = %d, want within [1,2]", i, st)
		}
	}
}

func TestControllerFinishedBeforeLaunch(t *testing.T) {
	c := NewController(2)
	if c.Finished(0) {
		t.Fatal("unlaunched process reported finished")
	}
	c.Go(0, func() {})
	c.Finish(0, 10)
	if !c.Finished(0) {
		t.Fatal("finished process not reported")
	}
	c.Wait()
}

func TestControllerStepFinishedProcess(t *testing.T) {
	c := NewController(1)
	c.Go(0, func() {})
	c.Finish(0, 10)
	if c.Step(0) {
		t.Fatal("Step on a finished process returned true")
	}
	c.Wait()
}
